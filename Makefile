GO ?= go

.PHONY: all build test race vet tabslint lockorder-gate staticcheck lint bench-smoke fuzz-smoke torture-smoke

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# tabslint is the repo's domain-aware analyzer suite: five per-unit
# passes (spanleak, lockhold, durcheck, sleepsync, poolmisuse) plus three
# whole-program SSA passes (lockorder, cowviol, bufown) checked against
# LOCK_ORDER.txt. It needs no dependencies beyond the toolchain. The
# binary is built once into bin/ so repeated lint runs reuse the build
# cache instead of re-linking under `go run`.
bin/tabslint: FORCE
	$(GO) build -o $@ ./tools/tabslint

tabslint: bin/tabslint
	bin/tabslint ./...

# Re-verifies just the lock hierarchy: fails on any acquisition edge not
# declared in LOCK_ORDER.txt, any declared edge no longer observed, and
# any cycle. CI runs this as a separate step so a lock-order break is
# named in the job summary rather than buried in the lint log.
lockorder-gate: bin/tabslint
	bin/tabslint -json ./... > tabslint.json || { cat tabslint.json; exit 1; }

# staticcheck covers ./... including tools/tabslint and tools/allocgate
# (the pre-v2 lint target never exercised staticcheck.conf against
# tools/). The binary is not vendored — offline checkouts skip with a
# notice; CI installs it and fails for real.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck: not installed; skipping (CI runs it over ./...)"; \
	fi

lint: vet tabslint staticcheck

FORCE:

# Mirrors the CI bench smoke: one iteration of the group-commit sweep, a
# 2-node 2-shard mini scale-out sweep (asserts steady-state lookups are
# pure cache hits with zero broadcasts), a reduced commit-availability A/B
# (asserts 2pc blocks and paxos resolves under coordinator kill, the shape
# behind the checked-in BENCH_commit_availability.json), then the
# allocation-regression gate — hot-path benchmarks run with -benchmem and
# must stay within the checked-in ALLOC_BUDGET.txt.
bench-smoke:
	$(GO) test -bench=GroupCommit -benchtime=1x ./internal/wal ./internal/bench
	$(GO) test ./internal/bench -run TestShardingSmoke -count=1 -timeout 120s
	$(GO) test ./internal/bench -run TestCommitAvailabilitySmoke -count=1 -timeout 120s
	$(GO) test ./internal/bench -run TestMigrationSmoke -count=1 -timeout 120s
	$(GO) run ./tools/allocgate -budget ALLOC_BUDGET.txt -bench 'AppendForce|EnvelopeEncode|LookUpCached' ./internal/wal ./internal/comm ./internal/nameserver

# Short fuzz of the WAL record codec; CI runs the same invocation.
fuzz-smoke:
	$(GO) test ./internal/wal -run '^$$' -fuzz FuzzRecordRoundTrip -fuzztime 10s

# Fixed-seed fault-injection torture runs (3 nodes, crashes + partitions +
# disk faults) under both commit protocols, plus the coordinator-kill
# pin: 2pc must demonstrate the blocking window, paxos must resolve every
# prepared transaction with the coordinator permanently dead — and the
# online-migration torture: shards migrating between crash/rebooting data
# nodes under live load, with zero lost client writes. Failures print the
# seed (and fault trace) for reproduction. CI runs the same invocation.
torture-smoke:
	$(GO) test ./internal/fault -run 'TestTortureSmoke|TestTorturePaxosSmoke|TestCoordKillBlockingWindow|TestTortureMigrateSmoke' -count=1 -timeout 300s -v
