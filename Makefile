GO ?= go

.PHONY: all build test race vet tabslint lint bench-smoke fuzz-smoke torture-smoke

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# tabslint is the repo's domain-aware analyzer suite (spanleak, lockhold,
# durcheck, sleepsync, poolmisuse). It needs no dependencies beyond the
# toolchain.
tabslint:
	$(GO) run ./tools/tabslint ./...

lint: vet tabslint

# Mirrors the CI bench smoke: one iteration of the group-commit sweep, a
# 2-node 2-shard mini scale-out sweep (asserts steady-state lookups are
# pure cache hits with zero broadcasts), then the allocation-regression
# gate — hot-path benchmarks run with -benchmem and must stay within the
# checked-in ALLOC_BUDGET.txt.
bench-smoke:
	$(GO) test -bench=GroupCommit -benchtime=1x ./internal/wal ./internal/bench
	$(GO) test ./internal/bench -run TestShardingSmoke -count=1 -timeout 120s
	$(GO) run ./tools/allocgate -budget ALLOC_BUDGET.txt -bench 'AppendForce|EnvelopeEncode|LookUpCached' ./internal/wal ./internal/comm ./internal/nameserver

# Short fuzz of the WAL record codec; CI runs the same invocation.
fuzz-smoke:
	$(GO) test ./internal/wal -run '^$$' -fuzz FuzzRecordRoundTrip -fuzztime 10s

# Fixed-seed fault-injection torture run (3 nodes, crashes + partitions +
# disk faults); failures print the seed and fault trace for reproduction.
# CI runs the same invocation.
torture-smoke:
	$(GO) test ./internal/fault -run TestTortureSmoke -count=1 -timeout 300s -v
