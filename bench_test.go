// Package tabs holds the top-level testing.B benchmark entry points: one
// benchmark family per table of the paper's Section 5 evaluation. Each
// Table 5-4 benchmark reports, besides Go ns/op, the regenerated
// "predicted_ms" figure (instrumented primitive counts × Table 5-1 times)
// so `go test -bench` output can be compared with the paper directly.
//
// The full tables, with paper values side by side, come from
// `go run ./cmd/tabsbench`.
package tabs

import (
	"sync"
	"testing"

	"tabs/internal/bench"
	"tabs/internal/simclock"
	"tabs/internal/stats"
)

var (
	envOnce sync.Once
	envVal  *bench.Env
	envErr  error
)

func benchEnv(b *testing.B) *bench.Env {
	envOnce.Do(func() {
		envVal, envErr = bench.NewEnv(3)
	})
	if envErr != nil {
		b.Fatalf("bench env: %v", envErr)
	}
	return envVal
}

// runPaperBenchmark is the common Table 5-4 driver.
func runPaperBenchmark(b *testing.B, name string) {
	env := benchEnv(b)
	var bm bench.Benchmark
	found := false
	for _, cand := range bench.Paper14() {
		if cand.Name == name {
			bm, found = cand, true
			break
		}
	}
	if !found {
		b.Fatalf("unknown paper benchmark %q", name)
	}
	// Warm-up.
	if err := env.RunOnce(bm); err != nil {
		b.Fatalf("warm-up: %v", err)
	}
	env.Cluster.Registry.ResetAll()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := env.RunOnce(bm); err != nil {
			b.Fatalf("iteration %d: %v", i, err)
		}
	}
	b.StopTimer()
	total := env.Cluster.Registry.TotalCounts(stats.PreCommit).
		Add(env.Cluster.Registry.TotalCounts(stats.Commit)).
		Scale(1 / float64(b.N))
	b.ReportMetric(total.Predict(simclock.PerqT2()), "predicted_ms")
	b.ReportMetric(total.Predict(simclock.Achievable()), "achievable_ms")
	b.ReportMetric(total[simclock.Datagram], "datagrams")
	b.ReportMetric(total[simclock.StableWrite], "stable_writes")
}

// --- Table 5-4 rows -----------------------------------------------------------

func BenchmarkTable54_1LocalRead_NoPaging(b *testing.B) {
	runPaperBenchmark(b, "1 Local Read, No Paging")
}

func BenchmarkTable54_5LocalRead_NoPaging(b *testing.B) {
	runPaperBenchmark(b, "5 Local Read, No Paging")
}

func BenchmarkTable54_1LocalRead_SeqPaging(b *testing.B) {
	runPaperBenchmark(b, "1 Local Read, Seq. Paging")
}

func BenchmarkTable54_1LocalRead_RandomPaging(b *testing.B) {
	runPaperBenchmark(b, "1 Local Read, Random Paging")
}

func BenchmarkTable54_1LocalWrite_NoPaging(b *testing.B) {
	runPaperBenchmark(b, "1 Local Write, No Paging")
}

func BenchmarkTable54_5LocalWrite_NoPaging(b *testing.B) {
	runPaperBenchmark(b, "5 Local Write, No Paging")
}

func BenchmarkTable54_1LocalWrite_SeqPaging(b *testing.B) {
	runPaperBenchmark(b, "1 Local Write, Seq. Paging")
}

func BenchmarkTable54_1LclRd_1RemRd_NoPaging(b *testing.B) {
	runPaperBenchmark(b, "1 Lcl Rd, 1 Rem Rd, No Page")
}

func BenchmarkTable54_1LclRd_5RemRd_NoPaging(b *testing.B) {
	runPaperBenchmark(b, "1 Lcl Rd, 5 Rem Rd, No Page")
}

func BenchmarkTable54_1LclRd_1RemRd_SeqPaging(b *testing.B) {
	runPaperBenchmark(b, "1 Lcl Rd, 1 Rem Rd, Seq. Page")
}

func BenchmarkTable54_1LclWr_1RemWr_NoPaging(b *testing.B) {
	runPaperBenchmark(b, "1 Lcl Wr, 1 Rem Wr, No Page")
}

func BenchmarkTable54_1LclWr_1RemWr_SeqPaging(b *testing.B) {
	runPaperBenchmark(b, "1 Lcl Wr, 1 Rem Wr, Seq. Page")
}

func BenchmarkTable54_1LclRd_2RemRd_NoPaging(b *testing.B) {
	runPaperBenchmark(b, "1 Lcl Rd, 1 Rem Rd, 1 Rem Rd, NP")
}

func BenchmarkTable54_1LclWr_2RemWr_NoPaging(b *testing.B) {
	runPaperBenchmark(b, "1 Lcl Wr, 1 Rem Wr, 1 Rem Wr, NP")
}

// --- Table 5-1 micro primitives -------------------------------------------------

func BenchmarkTable51_MicroPrimitives(b *testing.B) {
	for i := 0; i < b.N; i++ {
		micro, err := bench.MeasureMicro()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(micro.SimDiskMs[simclock.RandomPageIO], "sim_random_ms")
		b.ReportMetric(micro.SimDiskMs[simclock.SequentialRead], "sim_seq_ms")
		b.ReportMetric(micro.SimDiskMs[simclock.StableWrite], "sim_stable_ms")
		b.ReportMetric(micro.GoMicros[simclock.DataServerCall], "go_dscall_us")
		b.ReportMetric(micro.GoMicros[simclock.InterNodeCall], "go_remcall_us")
	}
}

// --- Ablations (design choices of DESIGN.md / paper §7) ---------------------------

func BenchmarkAblationValueVsOperationLogging(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lg, err := bench.MeasureLoggingAblation(100)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(lg.ValueLogBytes)/float64(lg.Updates), "value_bytes/update")
		b.ReportMetric(float64(lg.OpLogBytes)/float64(lg.Updates), "op_bytes/update")
		b.ReportMetric(float64(lg.ValuePasses), "value_recovery_passes")
		b.ReportMetric(float64(lg.OpPasses), "op_recovery_passes")
	}
}

func BenchmarkAblationTypeSpecificLocking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lk, err := bench.MeasureLockingAblation(6)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(lk.RWGranted), "rw_granted")
		b.ReportMetric(float64(lk.RWTimeouts), "rw_timeouts")
		b.ReportMetric(float64(lk.TSGranted), "ts_granted")
		b.ReportMetric(float64(lk.TSTimeouts), "ts_timeouts")
	}
}

// --- Tables 5-2 / 5-3: count regeneration as a test -------------------------------

// TestTables52and53ShapeAgainstPaper asserts the count shapes the paper's
// analysis depends on: read-only commits write nothing stable, each commit
// protocol's datagram count matches the paper's longest path exactly, and
// each added local operation adds exactly one data server call.
func TestTables52and53ShapeAgainstPaper(t *testing.T) {
	env, err := bench.NewEnv(3)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()

	measure := func(name string) bench.Result {
		for _, cand := range bench.Paper14() {
			if cand.Name == name {
				r, err := env.Measure(cand, 5)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				return r
			}
		}
		t.Fatalf("unknown benchmark %q", name)
		return bench.Result{}
	}

	r1 := measure("1 Local Read, No Paging")
	r5 := measure("5 Local Read, No Paging")
	if got := r5.PreCommit[simclock.DataServerCall] - r1.PreCommit[simclock.DataServerCall]; got != 4 {
		t.Errorf("5 reads - 1 read should differ by 4 data server calls, got %.1f", got)
	}
	if r1.Commit[simclock.StableWrite] != 0 {
		t.Errorf("read-only commit forced the log: %v", r1.Commit)
	}

	w1 := measure("1 Local Write, No Paging")
	if w1.Commit[simclock.StableWrite] != 1 {
		t.Errorf("local write commit should force exactly once, got %.1f", w1.Commit[simclock.StableWrite])
	}
	if w1.PreCommit[simclock.LargeMsg] != 1 {
		t.Errorf("local write should send one large log-data message, got %.1f", w1.PreCommit[simclock.LargeMsg])
	}

	for _, tc := range []struct {
		name      string
		datagrams float64
	}{
		{"1 Lcl Rd, 1 Rem Rd, No Page", 2},
		{"1 Lcl Wr, 1 Rem Wr, No Page", 4},
		{"1 Lcl Rd, 1 Rem Rd, 1 Rem Rd, NP", 2.5},
		{"1 Lcl Wr, 1 Rem Wr, 1 Rem Wr, NP", 5},
	} {
		r := measure(tc.name)
		if got := r.Commit[simclock.Datagram]; got != tc.datagrams {
			t.Errorf("%s: commit datagrams = %.1f, want %.1f (Table 5-3)", tc.name, got, tc.datagrams)
		}
	}
}

// TestTable54OrderingAgainstPaper asserts the relative ordering the paper
// reports: writes slower than reads, remote slower than local, 3-node
// slower than 2-node, and paging slower than no paging — under the
// regenerated predicted times.
func TestTable54OrderingAgainstPaper(t *testing.T) {
	env, err := bench.NewEnv(3)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	results, err := env.MeasureAll(5)
	if err != nil {
		t.Fatal(err)
	}
	pred := map[string]float64{}
	perq := simclock.PerqT2()
	for _, r := range results {
		pred[r.Benchmark.Name] = r.PredictMs(perq)
	}
	gt := func(a, b string) {
		if pred[a] <= pred[b] {
			t.Errorf("expected %q (%.0f ms) > %q (%.0f ms)", a, pred[a], b, pred[b])
		}
	}
	gt("1 Local Write, No Paging", "1 Local Read, No Paging")
	gt("5 Local Read, No Paging", "1 Local Read, No Paging")
	gt("1 Local Read, Random Paging", "1 Local Read, No Paging")
	gt("1 Lcl Rd, 1 Rem Rd, No Page", "1 Local Read, No Paging")
	gt("1 Lcl Wr, 1 Rem Wr, No Page", "1 Lcl Rd, 1 Rem Rd, No Page")
	gt("1 Lcl Rd, 1 Rem Rd, 1 Rem Rd, NP", "1 Lcl Rd, 1 Rem Rd, No Page")
	gt("1 Lcl Wr, 1 Rem Wr, 1 Rem Wr, NP", "1 Lcl Wr, 1 Rem Wr, No Page")
}
