// Command tabsbench regenerates the tables of the paper's Section 5
// evaluation: primitive operation times (Table 5-1), pre-commit and commit
// primitive counts (Tables 5-2, 5-3), benchmark times with the Improved
// Architecture and New Primitive Times projections (Table 5-4), and the
// achievable primitive parameter set (Table 5-5).
//
// Usage:
//
//	tabsbench                  # all tables
//	tabsbench -table 5-4       # one table
//	tabsbench -iters 30        # more iterations per benchmark
//	tabsbench -metrics-json m.json   # also dump per-node trace metrics
//	tabsbench -concurrency 16  # WAL group-commit throughput sweep instead
//	tabsbench -group-commit=false    # paper-faithful synchronous log forces
//	tabsbench -fault-seed 42 -fault-profile chaos   # deterministic torture run
//	tabsbench -fault-seed 42 -fault-profile partition -commit-protocol paxos
//	tabsbench -fault-seed 42 -fault-profile migrate  # online-migration torture
//	tabsbench -migrate                 # migrate a shard under live load
//	tabsbench -commit-avail 200    # 2pc-vs-paxos availability/latency A/B
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"tabs/internal/bench"
	"tabs/internal/fault"
	"tabs/internal/trace"
)

func main() {
	table := flag.String("table", "all", "which table to regenerate: 5-1, 5-2, 5-3, 5-4, 5-5, ablations, or all")
	iters := flag.Int("iters", 10, "measured transactions per benchmark")
	metricsJSON := flag.String("metrics-json", "", "after the benchmarks, write per-node trace-layer metrics as JSON to this file ('-' for stdout)")
	concurrency := flag.Int("concurrency", 0, "run the WAL group-commit throughput sweep up to this many concurrent committers (skips the tables)")
	groupCommit := flag.Bool("group-commit", true, "enable WAL group commit; false forces one synchronous Stable Storage Write per log force, as the paper's TABS did")
	benchJSON := flag.String("bench-json", "BENCH_wal_group_commit.json", "where -concurrency writes its sweep results as JSON")
	benchTxns := flag.Int("bench-txns", 50, "transactions per committer goroutine in the -concurrency sweep")
	hotpath := flag.Int("hotpath", 0, "run the CPU-bound hot-path throughput sweep up to this many workers (skips the tables)")
	hotpathJSON := flag.String("hotpath-json", "BENCH_hotpath.json", "where -hotpath writes its sweep results as JSON")
	hotpathBaseline := flag.String("hotpath-baseline", "", "prior -hotpath JSON to compute speedups against")
	runs := flag.Int("runs", 3, "independent runs per sweep point (-hotpath, -shards); the median is reported")
	shards := flag.Int("shards", 0, "run the sharded-namespace scale-out sweep up to this many nodes, one shard each (skips the tables)")
	multiShardRatio := flag.Float64("multi-shard-ratio", 0.1, "fraction of transactions touching a second shard in the -shards sweep")
	keys := flag.Uint64("keys", 1<<20, "global key-space size the -shards sweep partitions")
	shardWorkers := flag.Int("shard-workers", 4, "worker goroutines homed on each node in the -shards sweep")
	shardingJSON := flag.String("sharding-json", "BENCH_sharding.json", "where -shards writes its sweep results as JSON")
	migrate := flag.Bool("migrate", false, "run the migrate-under-load benchmark (skips the tables)")
	migrateJSON := flag.String("migrate-json", "BENCH_migration.json", "where -migrate writes its results as JSON")
	migratePhase := flag.Duration("migrate-phase", 600*time.Millisecond, "baseline and recovery workload window around the -migrate move")
	faultSeed := flag.Int64("fault-seed", 0, "run the fault-injection torture harness with this seed (skips the tables; 0 disables)")
	faultProfile := flag.String("fault-profile", "chaos", "torture fault profile: "+strings.Join(append(fault.ProfileNames(), "migrate"), ", "))
	faultNodes := flag.Int("fault-nodes", 3, "torture cluster size")
	faultTxns := flag.Int("fault-txns", 200, "torture workload transactions")
	commitProtocol := flag.String("commit-protocol", "2pc", "commit protocol for the torture harness: 2pc or paxos")
	commitAvail := flag.Int("commit-avail", 0, "run the commit-availability A/B sweep (2pc vs paxos) with this many healthy transactions per protocol (skips the tables)")
	commitAvailJSON := flag.String("commit-avail-json", "BENCH_commit_availability.json", "where -commit-avail writes its results as JSON")
	resolveWait := flag.Duration("resolve-wait", 5*time.Second, "how long each -commit-avail coordinator-kill scenario waits for the survivors to resolve")
	flag.Parse()

	if *faultSeed != 0 {
		if err := runTorture(*faultSeed, *faultProfile, *faultNodes, *faultTxns, *commitProtocol); err != nil {
			fmt.Fprintln(os.Stderr, "tabsbench:", err)
			os.Exit(1)
		}
		return
	}
	if *migrate {
		if err := runMigration(*faultNodes, *shardWorkers, *migratePhase, *migrateJSON); err != nil {
			fmt.Fprintln(os.Stderr, "tabsbench:", err)
			os.Exit(1)
		}
		return
	}
	if *commitAvail > 0 {
		if err := runCommitAvail(*commitAvail, *resolveWait, *commitAvailJSON); err != nil {
			fmt.Fprintln(os.Stderr, "tabsbench:", err)
			os.Exit(1)
		}
		return
	}
	if *shards > 0 {
		if err := runSharding(*shards, *keys, *shardWorkers, *benchTxns, *runs, *multiShardRatio, *shardingJSON); err != nil {
			fmt.Fprintln(os.Stderr, "tabsbench:", err)
			os.Exit(1)
		}
		return
	}
	if *hotpath > 0 {
		if err := runHotPath(*hotpath, *benchTxns, *runs, *hotpathJSON, *hotpathBaseline); err != nil {
			fmt.Fprintln(os.Stderr, "tabsbench:", err)
			os.Exit(1)
		}
		return
	}
	if *concurrency > 0 {
		if err := runGroupCommit(*concurrency, *benchTxns, *benchJSON); err != nil {
			fmt.Fprintln(os.Stderr, "tabsbench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*table, *iters, *metricsJSON, *groupCommit); err != nil {
		fmt.Fprintln(os.Stderr, "tabsbench:", err)
		os.Exit(1)
	}
}

// runTorture drives the deterministic crash/partition torture harness and
// reports the outcome; a failing run exits nonzero with the seed and fault
// trace so the exact schedule reproduces.
func runTorture(seed int64, profile string, nodes, txns int, protocol string) error {
	fmt.Fprintf(os.Stderr, "torture: seed=%d profile=%s nodes=%d txns=%d protocol=%s\n", seed, profile, nodes, txns, protocol)
	if profile == "migrate" {
		return runMigrateTorture(seed, nodes)
	}
	start := time.Now()
	rep, err := fault.RunTorture(fault.TortureOptions{
		Seed:           seed,
		Nodes:          nodes,
		Txns:           txns,
		Profile:        profile,
		CommitProtocol: protocol,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "  "+format+"\n", args...)
		},
	})
	if rep != nil {
		fmt.Println(rep.String())
	}
	if err != nil {
		return err
	}
	fmt.Printf("all invariants held in %s\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// runMigrateTorture drives the online-migration torture profile: shards
// migrate between data nodes, data nodes crash and reboot, and every
// worker write must commit (at worst after redirect retries).
func runMigrateTorture(seed int64, nodes int) error {
	start := time.Now()
	rep, err := fault.RunMigrate(fault.MigrateOptions{
		Seed:  seed,
		Nodes: nodes,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "  "+format+"\n", args...)
		},
	})
	if rep != nil {
		fmt.Println(rep.String())
	}
	if err != nil {
		return err
	}
	fmt.Printf("all invariants held in %s\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// runMigration runs the migrate-under-load benchmark and records text +
// JSON output (the throughput dip and redirect latency evidence).
func runMigration(nodes, workers int, phase time.Duration, jsonPath string) error {
	fmt.Fprintf(os.Stderr, "migrating a shard under live load (%d nodes, %d workers, %s windows)...\n", nodes, workers, phase)
	res, err := bench.MeasureMigration(nodes, 0, workers, phase)
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatMigration(res))
	if jsonPath == "" {
		return nil
	}
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", jsonPath)
	return nil
}

// runCommitAvail runs the commit-availability A/B (2pc vs paxos: healthy
// latency plus coordinator-kill resolution) and records text + JSON output.
func runCommitAvail(txns int, resolveWait time.Duration, jsonPath string) error {
	fmt.Fprintf(os.Stderr, "commit-availability A/B: %d healthy txns per protocol, %s kill wait...\n", txns, resolveWait)
	res, err := bench.MeasureCommitAvailability(txns, resolveWait)
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatCommitAvail(res))
	if jsonPath == "" {
		return nil
	}
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", jsonPath)
	return nil
}

// runSharding sweeps the sharded-namespace scale-out benchmark and
// records text + JSON output.
func runSharding(maxNodes int, keys uint64, workersPerNode, txnsPerWorker, runs int, ratio float64, jsonPath string) error {
	fmt.Fprintf(os.Stderr, "sweeping sharded scale-out up to %d nodes (%d keys, ratio %g)...\n", maxNodes, keys, ratio)
	res, err := bench.MeasureSharding(maxNodes, keys, workersPerNode, txnsPerWorker, runs, ratio)
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatSharding(res))
	if jsonPath == "" {
		return nil
	}
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", jsonPath)
	return nil
}

// runHotPath sweeps the CPU-bound hot-path benchmark, optionally merging a
// prior sweep's numbers as the baseline, and records text + JSON output.
func runHotPath(maxConc, txnsPerWorker, runs int, jsonPath, baselinePath string) error {
	fmt.Fprintf(os.Stderr, "sweeping hot-path throughput up to %d workers (median of %d runs)...\n", maxConc, runs)
	res, err := bench.MeasureHotPath(maxConc, txnsPerWorker, runs)
	if err != nil {
		return err
	}
	if baselinePath != "" {
		blob, err := os.ReadFile(baselinePath)
		if err != nil {
			return fmt.Errorf("reading baseline: %w", err)
		}
		var baseline bench.HotPathResult
		if err := json.Unmarshal(blob, &baseline); err != nil {
			return fmt.Errorf("parsing baseline: %w", err)
		}
		bench.MergeHotPathBaseline(res, &baseline)
	}
	fmt.Print(bench.FormatHotPath(res))
	if jsonPath == "" {
		return nil
	}
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", jsonPath)
	return nil
}

// runGroupCommit sweeps the concurrent-commit benchmark and records the
// result both as a text table on stdout and as JSON for regression
// tracking.
func runGroupCommit(maxConc, txnsPerWorker int, jsonPath string) error {
	fmt.Fprintf(os.Stderr, "sweeping WAL group commit up to %d concurrent committers...\n", maxConc)
	res, err := bench.MeasureGroupCommit(maxConc, txnsPerWorker)
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatGroupCommit(res))
	if jsonPath == "" {
		return nil
	}
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", jsonPath)
	return nil
}

// dumpMetrics writes every cluster node's trace.Export (metrics only) as
// a JSON array, sorted by node name for stable output.
func dumpMetrics(env *bench.Env, path string) error {
	exports := make([]trace.Export, 0, 4)
	for _, n := range env.Cluster.Nodes() {
		if tr := n.Tracer(); tr != nil {
			exports = append(exports, tr.Export(false))
		}
	}
	sort.Slice(exports, func(i, j int) bool { return exports[i].Node < exports[j].Node })
	blob, err := trace.MarshalExports(exports)
	if err != nil {
		return err
	}
	if path == "-" {
		_, err = fmt.Println(string(blob))
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

func run(table string, iters int, metricsJSON string, groupCommit bool) error {
	needMicro := table == "all" || table == "5-1"
	needBench := table == "all" || table == "5-2" || table == "5-3" || table == "5-4"

	var micro *bench.MicroResults
	if needMicro {
		fmt.Fprintln(os.Stderr, "measuring primitive micro-benchmarks...")
		var err error
		micro, err = bench.MeasureMicro()
		if err != nil {
			return err
		}
	}

	var results []bench.Result
	if needBench {
		fmt.Fprintln(os.Stderr, "running the fourteen Section 5 benchmarks (3 nodes)...")
		env, err := bench.NewEnvWith(3, !groupCommit)
		if err != nil {
			return err
		}
		defer env.Close()
		results, err = env.MeasureAll(iters)
		if err != nil {
			return err
		}
		if metricsJSON != "" {
			if err := dumpMetrics(env, metricsJSON); err != nil {
				return fmt.Errorf("writing metrics JSON: %w", err)
			}
		}
	} else if metricsJSON != "" {
		return fmt.Errorf("-metrics-json needs a benchmark run (table %q runs none)", table)
	}

	runAblations := func() error {
		fmt.Fprintln(os.Stderr, "running ablation studies...")
		lg, err := bench.MeasureLoggingAblation(200)
		if err != nil {
			return err
		}
		lk, err := bench.MeasureLockingAblation(6)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatAblations(lg, lk))
		return nil
	}

	switch table {
	case "5-1":
		fmt.Print(bench.Table51(micro))
	case "5-2":
		fmt.Print(bench.Table52(results))
	case "5-3":
		fmt.Print(bench.Table53(results))
	case "5-4":
		fmt.Print(bench.Table54(results))
	case "5-5":
		fmt.Print(bench.Table55())
	case "ablations":
		return runAblations()
	case "all":
		fmt.Print(bench.Table51(micro))
		fmt.Println()
		fmt.Print(bench.Table52(results))
		fmt.Println()
		fmt.Print(bench.Table53(results))
		fmt.Println()
		fmt.Print(bench.Table54(results))
		fmt.Println()
		fmt.Print(bench.Table55())
		fmt.Println()
		if err := runAblations(); err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(bench.FormatWallSummary(micro))
	default:
		return fmt.Errorf("unknown table %q", table)
	}
	return nil
}
