// Command tabsctl is an interactive TABS application: it joins the
// cluster as a (diskless-application) node, looks servers up by name, and
// runs operations inside transactions — begin/commit/abort under user
// control, exactly the application role of Figure 3-1.
//
// Examples, against a cluster of tabsnode processes:
//
//	tabsctl -peer a=localhost:7001 set a array 5 42
//	tabsctl -peer a=localhost:7001 get a array 5
//	tabsctl -peer a=localhost:7001 -peer b=localhost:7002 \
//	    txn 'set a array 1 10' 'set b array 1 20'      # distributed txn
//	tabsctl -peer a=localhost:7001 enqueue a queue 7
//	tabsctl -peer a=localhost:7001 dequeue a queue
//	tabsctl -peer a=localhost:7001 insert a rep /etc/passwd users
//	tabsctl -peer a=localhost:7001 lookup a rep /etc/passwd
//	tabsctl -peer a=localhost:7001 placement a    # placement maps + NS tables
//	tabsctl -peer a=localhost:7001 acp a          # commit-protocol + acceptor state
//	tabsctl -peer a=localhost:7001 -peer b=localhost:7002 -commit-protocol paxos \
//	    txn 'set a array 1 10' 'set b array 1 20'  # replicated (Paxos Commit) txn
//	tabsctl -peer a=localhost:7001 migrate a array 0 b   # move shard 0 to node b
//	tabsctl -peer a=localhost:7001 -peer b=localhost:7002 rebalance a array
//	tabsctl -peer a=localhost:7001 metrics a      # live trace-layer metrics
//	tabsctl -peer a=localhost:7001 trace a        # recent spans
//	tabsctl -peer a=localhost:7001 -json trace a  # raw trace.Export JSON
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"tabs/internal/comm"
	"tabs/internal/core"
	"tabs/internal/disk"
	"tabs/internal/servers/btree"
	"tabs/internal/servers/intarray"
	"tabs/internal/servers/weakqueue"
	"tabs/internal/trace"
	"tabs/internal/types"
)

type peerList map[types.NodeID]string

func (p peerList) String() string { return fmt.Sprintf("%v", map[types.NodeID]string(p)) }

func (p peerList) Set(v string) error {
	name, addr, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("peer must be name=host:port, got %q", v)
	}
	p[types.NodeID(name)] = addr
	return nil
}

func main() {
	id := flag.String("id", "ctl", "this client's node name")
	listen := flag.String("listen", "127.0.0.1:0", "TCP listen address for replies")
	jsonOut := flag.Bool("json", false, "emit trace/metrics replies as raw JSON")
	protocol := flag.String("commit-protocol", "2pc", "atomic commit protocol for transactions this client coordinates: 2pc or paxos")
	acceptors := flag.String("acceptors", "", "comma-separated acceptor node names for -commit-protocol paxos (default: all peers plus this client)")
	peers := peerList{}
	flag.Var(peers, "peer", "peer node as name=host:port (repeatable)")
	flag.Parse()

	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: tabsctl [-peer n=addr]... <command> [args...]")
		fmt.Fprintln(os.Stderr, "commands: get set enqueue dequeue insert lookup update delete txn trace metrics placement acp migrate rebalance")
		os.Exit(2)
	}
	if err := run(*id, *listen, peers, *jsonOut, *protocol, *acceptors, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "tabsctl:", err)
		os.Exit(1)
	}
}

func run(id, listen string, peers peerList, jsonOut bool, protocol, acceptors string, args []string) error {
	transport, err := comm.NewTCP(types.NodeID(id), listen, peers)
	if err != nil {
		return err
	}
	var acceptorSet []types.NodeID
	if acceptors != "" {
		for _, name := range strings.Split(acceptors, ",") {
			if name = strings.TrimSpace(name); name != "" {
				acceptorSet = append(acceptorSet, types.NodeID(name))
			}
		}
	} else if protocol == core.ProtocolPaxos {
		// Transactions coordinated here need a quorum that survives this
		// (ephemeral) client: default to every server peer plus the client.
		for name := range peers {
			acceptorSet = append(acceptorSet, name)
		}
		sort.Slice(acceptorSet, func(i, j int) bool { return acceptorSet[i] < acceptorSet[j] })
		acceptorSet = append(acceptorSet, types.NodeID(id))
	}
	// The client node is an application host: tiny disk, no data servers.
	node, err := core.NewNode(core.Config{
		ID:             types.NodeID(id),
		Disk:           disk.New(disk.DefaultGeometry(512)),
		LogSectors:     64,
		PoolPages:      16,
		Transport:      transport,
		LockTimeout:    5 * time.Second,
		CommitProtocol: protocol,
		Acceptors:      acceptorSet,
	})
	if err != nil {
		return err
	}
	if _, err := node.Recover(); err != nil {
		return err
	}
	defer func() { _ = node.Shutdown() }()

	switch args[0] {
	case "txn":
		return runTxn(node, args[1:])
	case "trace", "metrics", "trace-reset":
		return runTraceQuery(node, jsonOut, args)
	case "placement":
		return runPlacementQuery(node, jsonOut, args, peers)
	case "acp":
		return runACPQuery(node, jsonOut, args, peers)
	case "migrate":
		return runMigrate(node, jsonOut, args)
	case "rebalance":
		return runRebalance(node, jsonOut, args, peers)
	}
	return node.App.Run(func(tid types.TransID) error {
		out, err := execute(node, tid, args)
		if err != nil {
			return err
		}
		if out != "" {
			fmt.Println(out)
		}
		return nil
	})
}

// runTraceQuery asks a live node for its trace-layer state through the
// "tracectl" Communication Manager service.
func runTraceQuery(node *core.Node, jsonOut bool, args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("%s needs a target node name", args[0])
	}
	target := types.NodeID(args[1])
	cmd := args[0]
	if cmd == "trace-reset" {
		cmd = "reset"
	}
	body, err := node.CM.Call(target, core.TraceControlService, types.NilTransID, []byte(cmd))
	if err != nil {
		return err
	}
	if cmd == "reset" {
		fmt.Println(string(body))
		return nil
	}
	if jsonOut {
		fmt.Println(string(body))
		return nil
	}
	var exports []trace.Export
	if err := json.Unmarshal(body, &exports); err != nil {
		return fmt.Errorf("decoding %s reply: %w", cmd, err)
	}
	for _, ex := range exports {
		fmt.Printf("node %s (spans dropped: %d)\n", ex.Node, ex.Dropped)
		fmt.Print(trace.FormatMetrics(ex.Metrics))
		for _, sp := range ex.Spans {
			fmt.Println(sp.String())
		}
	}
	return nil
}

// runPlacementQuery dumps placement maps and Name Server table sizes
// through the "placectl" Communication Manager service. With a target
// node it queries just that node; without one it sweeps every -peer.
func runPlacementQuery(node *core.Node, jsonOut bool, args []string, peers peerList) error {
	targets := make([]types.NodeID, 0, len(peers))
	if len(args) > 1 {
		targets = append(targets, types.NodeID(args[1]))
	} else {
		for name := range peers {
			targets = append(targets, name)
		}
		sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
	}
	if len(targets) == 0 {
		return fmt.Errorf("placement needs a target node or -peer flags")
	}
	for _, target := range targets {
		body, err := node.CM.Call(target, core.PlacementControlService, types.NilTransID, []byte("placement"))
		if err != nil {
			return fmt.Errorf("querying %s: %w", target, err)
		}
		if jsonOut {
			fmt.Println(string(body))
			continue
		}
		var rep core.PlacementReport
		if err := json.Unmarshal(body, &rep); err != nil {
			return fmt.Errorf("decoding placement reply from %s: %w", target, err)
		}
		fmt.Printf("node %s: %d local names, %d local bindings, %d cached routes, %d negative entries\n",
			rep.Node, rep.Stats.LocalNames, rep.Stats.LocalBindings, rep.Stats.CachedNames, rep.Stats.NegEntries)
		if len(rep.Stats.CachedByNode) > 0 {
			nodes := make([]types.NodeID, 0, len(rep.Stats.CachedByNode))
			for n := range rep.Stats.CachedByNode {
				nodes = append(nodes, n)
			}
			sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
			for _, n := range nodes {
				fmt.Printf("  cached bindings -> %s: %d\n", n, rep.Stats.CachedByNode[n])
			}
		}
		for _, p := range rep.Placements {
			fmt.Printf("  family %q v%d: %d shards\n", p.Family, p.Version, len(p.Shards))
			for i, sh := range p.Shards {
				fmt.Printf("    shard %-3d %s @ %s\n", i, sh.Server, sh.Node)
			}
		}
	}
	return nil
}

// runACPQuery dumps per-node commit-protocol state — protocol, acceptor
// set, the acceptor's Paxos Commit instances (ballot/acceptance/decision
// per transaction), and the in-doubt list — through the "acpctl"
// Communication Manager service. With a target node it queries just that
// node; without one it sweeps every -peer.
func runACPQuery(node *core.Node, jsonOut bool, args []string, peers peerList) error {
	targets := make([]types.NodeID, 0, len(peers))
	if len(args) > 1 {
		targets = append(targets, types.NodeID(args[1]))
	} else {
		for name := range peers {
			targets = append(targets, name)
		}
		sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
	}
	if len(targets) == 0 {
		return fmt.Errorf("acp needs a target node or -peer flags")
	}
	for _, target := range targets {
		body, err := node.CM.Call(target, core.ACPControlService, types.NilTransID, []byte("acp"))
		if err != nil {
			return fmt.Errorf("querying %s: %w", target, err)
		}
		if jsonOut {
			fmt.Println(string(body))
			continue
		}
		var rep core.ACPReport
		if err := json.Unmarshal(body, &rep); err != nil {
			return fmt.Errorf("decoding acp reply from %s: %w", target, err)
		}
		fmt.Printf("node %s: protocol=%s acceptors=%v\n", rep.Node, rep.Protocol, rep.Acceptors)
		for _, inst := range rep.Instances {
			state := "open"
			if inst.Decided {
				state = "decided " + inst.Outcome
			} else if inst.Accepted {
				state = "accepted@" + inst.AcceptedAt
			}
			fmt.Printf("  instance %-12s promised=%s %s", inst.TID, inst.Promised, state)
			if len(inst.Members) > 0 {
				fmt.Printf(" members=%v", inst.Members)
			}
			fmt.Println()
		}
		for _, tid := range rep.InDoubt {
			fmt.Printf("  in doubt: %v\n", tid)
		}
	}
	return nil
}

// migrateCtlMsg mirrors core's migratectl wire request (JSON keys must
// match; the struct itself is core-internal).
type migrateCtlMsg struct {
	Cmd    string         `json:"cmd"`
	Family string         `json:"family,omitempty"`
	Shard  int            `json:"shard"`
	Dest   types.NodeID   `json:"dest,omitempty"`
	Nodes  []types.NodeID `json:"nodes,omitempty"`
}

// printMigrateReport renders one completed shard move.
func printMigrateReport(rep *core.MigrateReport) {
	fmt.Printf("moved %s#%d %s -> %s: %d pages (%d bytes) in %s, placement now v%d\n",
		rep.Family, rep.Shard, rep.From, rep.To, rep.Pages, rep.Bytes,
		rep.Duration.Round(time.Millisecond), rep.Version)
}

// runMigrate asks a node to migrate one shard:
// migrate <node> <family> <shard> <dest>. Any live node may be addressed;
// the request forwards to the shard's current home, which drives the copy
// inside a system transaction and publishes the bumped placement.
func runMigrate(node *core.Node, jsonOut bool, args []string) error {
	if len(args) != 5 {
		return fmt.Errorf("usage: migrate <node> <family> <shard> <dest>")
	}
	target := types.NodeID(args[1])
	shard, err := strconv.Atoi(args[3])
	if err != nil {
		return fmt.Errorf("bad shard number %q: %w", args[3], err)
	}
	blob, err := json.Marshal(migrateCtlMsg{Cmd: "migrate", Family: args[2], Shard: shard, Dest: types.NodeID(args[4])})
	if err != nil {
		return err
	}
	body, err := node.CM.Call(target, core.MigrateControlService, types.NilTransID, blob)
	if err != nil {
		return err
	}
	if jsonOut {
		fmt.Println(string(body))
		return nil
	}
	var rep core.MigrateReport
	if err := json.Unmarshal(body, &rep); err != nil {
		return fmt.Errorf("decoding migrate reply: %w", err)
	}
	printMigrateReport(&rep)
	return nil
}

// runRebalance asks a node to even a family's shard counts:
// rebalance <node> <family> [home...]. Candidate homes default to the
// -peer list (the addressed node drives one migration per planned move).
func runRebalance(node *core.Node, jsonOut bool, args []string, peers peerList) error {
	if len(args) < 3 {
		return fmt.Errorf("usage: rebalance <node> <family> [home...]")
	}
	target := types.NodeID(args[1])
	var homes []types.NodeID
	for _, h := range args[3:] {
		homes = append(homes, types.NodeID(h))
	}
	if len(homes) == 0 {
		for name := range peers {
			homes = append(homes, name)
		}
		sort.Slice(homes, func(i, j int) bool { return homes[i] < homes[j] })
	}
	if len(homes) == 0 {
		return fmt.Errorf("rebalance needs candidate homes (arguments or -peer flags)")
	}
	blob, err := json.Marshal(migrateCtlMsg{Cmd: "rebalance", Family: args[2], Nodes: homes})
	if err != nil {
		return err
	}
	body, err := node.CM.Call(target, core.MigrateControlService, types.NilTransID, blob)
	if err != nil {
		return err
	}
	if jsonOut {
		fmt.Println(string(body))
		return nil
	}
	var reps []*core.MigrateReport
	if err := json.Unmarshal(body, &reps); err != nil {
		return fmt.Errorf("decoding rebalance reply: %w", err)
	}
	if len(reps) == 0 {
		fmt.Println("already balanced: no moves needed")
		return nil
	}
	for _, rep := range reps {
		printMigrateReport(rep)
	}
	return nil
}

// runTxn executes several commands inside one (distributed) transaction.
func runTxn(node *core.Node, cmds []string) error {
	return node.App.Run(func(tid types.TransID) error {
		for _, c := range cmds {
			out, err := execute(node, tid, strings.Fields(c))
			if err != nil {
				return fmt.Errorf("%q: %w", c, err)
			}
			if out != "" {
				fmt.Println(out)
			}
		}
		return nil
	})
}

// execute runs one command within tid.
func execute(node *core.Node, tid types.TransID, args []string) (string, error) {
	if len(args) < 3 {
		return "", fmt.Errorf("command %q needs <node> <server> arguments", args[0])
	}
	target := types.NodeID(args[1])
	server := types.ServerID(args[2])
	rest := args[3:]
	switch args[0] {
	case "get":
		cell, err := atou32(rest, 0)
		if err != nil {
			return "", err
		}
		v, err := intarray.NewClient(node, target, server).Get(tid, cell)
		return fmt.Sprintf("%d", v), err
	case "set":
		cell, err := atou32(rest, 0)
		if err != nil {
			return "", err
		}
		val, err := atoi64(rest, 1)
		if err != nil {
			return "", err
		}
		return "", intarray.NewClient(node, target, server).Set(tid, cell, val)
	case "enqueue":
		val, err := atoi64(rest, 0)
		if err != nil {
			return "", err
		}
		return "", weakqueue.NewClient(node, target, server).Enqueue(tid, val)
	case "dequeue":
		v, err := weakqueue.NewClient(node, target, server).Dequeue(tid)
		return fmt.Sprintf("%d", v), err
	case "insert":
		if len(rest) < 2 {
			return "", fmt.Errorf("insert needs key and value")
		}
		return "", btree.NewClient(node, target, server).Insert(tid, []byte(rest[0]), []byte(rest[1]))
	case "update":
		if len(rest) < 2 {
			return "", fmt.Errorf("update needs key and value")
		}
		return "", btree.NewClient(node, target, server).Update(tid, []byte(rest[0]), []byte(rest[1]))
	case "delete":
		if len(rest) < 1 {
			return "", fmt.Errorf("delete needs a key")
		}
		return "", btree.NewClient(node, target, server).Delete(tid, []byte(rest[0]))
	case "lookup":
		if len(rest) < 1 {
			return "", fmt.Errorf("lookup needs a key")
		}
		v, err := btree.NewClient(node, target, server).Lookup(tid, []byte(rest[0]))
		return string(v), err
	default:
		return "", fmt.Errorf("unknown command %q", args[0])
	}
}

func atou32(args []string, i int) (uint32, error) {
	if i >= len(args) {
		return 0, fmt.Errorf("missing argument %d", i)
	}
	v, err := strconv.ParseUint(args[i], 10, 32)
	return uint32(v), err
}

func atoi64(args []string, i int) (int64, error) {
	if i >= len(args) {
		return 0, fmt.Errorf("missing argument %d", i)
	}
	return strconv.ParseInt(args[i], 10, 64)
}
