package main_test

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestClusterEndToEnd builds tabsnode and tabsctl, boots a two-node TABS
// cluster as real OS processes talking TCP, runs a distributed
// transaction plus single-node operations through tabsctl, restarts a
// node from its persisted disk image, and verifies the data survived —
// the full deployment story, end to end.
func TestClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level e2e skipped in -short mode")
	}
	dir := t.TempDir()
	nodeBin := filepath.Join(dir, "tabsnode")
	ctlBin := filepath.Join(dir, "tabsctl")
	for bin, pkg := range map[string]string{nodeBin: "tabs/cmd/tabsnode", ctlBin: "tabs/cmd/tabsctl"} {
		cmd := exec.Command("go", "build", "-o", bin, pkg)
		cmd.Dir = repoRoot(t)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}

	portA, portB := freePort(t), freePort(t)
	addrA := fmt.Sprintf("127.0.0.1:%d", portA)
	addrB := fmt.Sprintf("127.0.0.1:%d", portB)
	diskA := filepath.Join(dir, "a.disk")
	diskB := filepath.Join(dir, "b.disk")

	startNode := func(id, listen, peerName, peerAddr, disk string) *exec.Cmd {
		cmd := exec.Command(nodeBin,
			"-id", id, "-listen", listen,
			"-peer", peerName+"="+peerAddr,
			"-state", disk)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting node %s: %v", id, err)
		}
		return cmd
	}
	nodeA := startNode("a", addrA, "b", addrB, diskA)
	nodeB := startNode("b", addrB, "a", addrA, diskB)
	stop := func(c *exec.Cmd) {
		if c != nil && c.Process != nil {
			_ = c.Process.Signal(syscall.SIGINT)
			_, _ = c.Process.Wait()
		}
	}
	// nodeA is reassigned when the node restarts, so the deferred stop
	// must read the variable at exit time, not capture today's process.
	defer func() { stop(nodeA) }()
	defer func() { stop(nodeB) }()
	waitListening(t, addrA)
	waitListening(t, addrB)

	ctl := func(args ...string) (string, error) {
		full := append([]string{"-peer", "a=" + addrA, "-peer", "b=" + addrB}, args...)
		out, err := exec.Command(ctlBin, full...).CombinedOutput()
		return strings.TrimSpace(string(out)), err
	}

	// Distributed transaction across both processes.
	if out, err := ctl("txn", "set a array 1 10", "set b array 1 20"); err != nil {
		t.Fatalf("distributed txn: %v\n%s", err, out)
	}
	if out, err := ctl("get", "a", "array", "1"); err != nil || out != "10" {
		t.Fatalf("get a: %q %v", out, err)
	}
	if out, err := ctl("get", "b", "array", "1"); err != nil || out != "20" {
		t.Fatalf("get b: %q %v", out, err)
	}
	// A directory entry and a queue item on node a.
	if out, err := ctl("insert", "a", "rep", "/etc/motd", "hello"); err != nil {
		t.Fatalf("insert: %v\n%s", err, out)
	}
	if out, err := ctl("enqueue", "a", "queue", "7"); err != nil {
		t.Fatalf("enqueue: %v\n%s", err, out)
	}

	// Restart node a from its disk image.
	stop(nodeA)
	nodeA = startNode("a", addrA, "b", addrB, diskA)
	waitListening(t, addrA)

	if out, err := ctl("get", "a", "array", "1"); err != nil || out != "10" {
		t.Fatalf("get a after restart: %q %v", out, err)
	}
	if out, err := ctl("lookup", "a", "rep", "/etc/motd"); err != nil || out != "hello" {
		t.Fatalf("lookup after restart: %q %v", out, err)
	}
	if out, err := ctl("dequeue", "a", "queue"); err != nil || out != "7" {
		t.Fatalf("dequeue after restart: %q %v", out, err)
	}
}

// repoRoot walks up from the test's working directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

// freePort grabs an OS-assigned TCP port and releases it for the node.
func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port
}

// waitListening polls until the address accepts connections.
func waitListening(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		c, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			c.Close()
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("node at %s never came up", addr)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
