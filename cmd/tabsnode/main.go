// Command tabsnode runs one TABS node as an OS process, reachable over
// TCP — the deployment analogue of one Perq workstation in the paper's
// cluster. It attaches the four Section 4 data servers usable over the
// wire (integer array, weak queue, B-tree directory representative, IO
// server), performs crash recovery against its persisted disk image, and
// serves until interrupted, saving the disk image on shutdown.
//
// A three-node cluster on one machine:
//
//	tabsnode -id a -listen :7001 -peer b=localhost:7002 -peer c=localhost:7003 -state a.disk &
//	tabsnode -id b -listen :7002 -peer a=localhost:7001 -peer c=localhost:7003 -state b.disk &
//	tabsnode -id c -listen :7003 -peer a=localhost:7001 -peer b=localhost:7002 -state c.disk &
//
// then drive it with cmd/tabsctl.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tabs/internal/comm"
	"tabs/internal/core"
	"tabs/internal/disk"
	"tabs/internal/servers/btree"
	"tabs/internal/servers/intarray"
	"tabs/internal/servers/ioserver"
	"tabs/internal/servers/weakqueue"
	"tabs/internal/types"
)

type peerList map[types.NodeID]string

func (p peerList) String() string {
	parts := make([]string, 0, len(p))
	for id, addr := range p {
		parts = append(parts, fmt.Sprintf("%s=%s", id, addr))
	}
	return strings.Join(parts, ",")
}

func (p peerList) Set(v string) error {
	name, addr, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("peer must be name=host:port, got %q", v)
	}
	p[types.NodeID(name)] = addr
	return nil
}

func main() {
	id := flag.String("id", "node1", "this node's name")
	listen := flag.String("listen", ":7001", "TCP listen address")
	state := flag.String("state", "", "disk image file (empty: volatile disk)")
	sectors := flag.Int64("sectors", 16384, "disk capacity in sectors")
	logSectors := flag.Int64("log", 2048, "log region size in sectors")
	pool := flag.Int("pool", 512, "buffer pool pages")
	protocol := flag.String("commit-protocol", "2pc", "commit protocol for transactions this node coordinates: 2pc or paxos")
	acceptors := flag.String("acceptors", "", "comma-separated node names forming the Paxos Commit acceptor quorum (2F+1 names; every node must agree on the set)")
	peers := peerList{}
	flag.Var(peers, "peer", "peer node as name=host:port (repeatable)")
	flag.Parse()

	if err := run(*id, *listen, *state, *sectors, *logSectors, *pool, *protocol, *acceptors, peers); err != nil {
		fmt.Fprintln(os.Stderr, "tabsnode:", err)
		os.Exit(1)
	}
}

func run(id, listen, state string, sectors, logSectors int64, pool int, protocol, acceptors string, peers peerList) error {
	d := disk.New(disk.DefaultGeometry(sectors))
	if state != "" {
		if _, err := os.Stat(state); err == nil {
			if err := d.LoadFrom(state); err != nil {
				return fmt.Errorf("loading disk image: %w", err)
			}
			fmt.Printf("loaded disk image %s\n", state)
		}
	}

	transport, err := comm.NewTCP(types.NodeID(id), listen, peers)
	if err != nil {
		return err
	}
	var acceptorSet []types.NodeID
	for _, name := range strings.Split(acceptors, ",") {
		if name = strings.TrimSpace(name); name != "" {
			acceptorSet = append(acceptorSet, types.NodeID(name))
		}
	}
	node, err := core.NewNode(core.Config{
		ID:             types.NodeID(id),
		Disk:           d,
		LogSectors:     logSectors,
		PoolPages:      pool,
		Transport:      transport,
		LockTimeout:    5 * time.Second,
		CommitProtocol: protocol,
		Acceptors:      acceptorSet,
	})
	if err != nil {
		return err
	}

	// Attach the standard data servers with well-known names; attaching
	// registers each with the Name Server so lookups resolve remotely.
	if _, err := intarray.Attach(node, "array", 1, 4096, 5*time.Second); err != nil {
		return err
	}
	if _, err := weakqueue.Attach(node, "queue", 2, 512, 5*time.Second); err != nil {
		return err
	}
	if _, err := btree.Attach(node, "rep", 3, 512, 5*time.Second); err != nil {
		return err
	}
	if _, err := ioserver.Attach(node, "display", 4, 5*time.Second); err != nil {
		return err
	}

	report, err := node.Recover()
	if err != nil {
		return fmt.Errorf("crash recovery: %w", err)
	}
	fmt.Printf("node %s up on %s: recovery scanned %d records (%d redone, %d undone, %d in doubt)\n",
		id, transport.Addr(), report.RecordsScanned, report.Redone, report.Undone, len(report.InDoubt))

	// Serve until interrupted.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down...")
	if err := node.Shutdown(); err != nil {
		return err
	}
	if state != "" {
		if err := d.SaveTo(state); err != nil {
			return fmt.Errorf("saving disk image: %w", err)
		}
		fmt.Printf("saved disk image %s\n", state)
	}
	return nil
}
