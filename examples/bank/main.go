// Bank: the paper's Figure 4-1 demonstration — "a trivial bank
// implementation" combining the integer array server (account balances)
// with the IO server (a transactional display).
//
// Three interactions are shown, exactly as in the figure:
//
//  1. a deposit that commits — its output turns black;
//
//  2. a withdrawal interrupted by a node failure — after restart, its
//     output is struck through and the balance is intact;
//
//  3. a retry that is still in progress — its output renders gray.
//
//     go run ./examples/bank
package main

import (
	"fmt"
	"log"
	"time"

	"tabs/internal/core"
	"tabs/internal/servers/intarray"
	"tabs/internal/servers/ioserver"
	"tabs/internal/types"
)

const checkingAccount = 1 // array cell holding the checking balance

func attach(node *core.Node) (*intarray.Client, *ioserver.Client) {
	if _, err := intarray.Attach(node, "accounts", 1, 100, time.Second); err != nil {
		log.Fatal(err)
	}
	if _, err := ioserver.Attach(node, "display", 2, time.Second); err != nil {
		log.Fatal(err)
	}
	if _, err := node.Recover(); err != nil {
		log.Fatal(err)
	}
	return intarray.NewClient(node, "bank", "accounts"), ioserver.NewClient(node, "bank", "display")
}

func main() {
	cluster, err := core.NewCluster(core.DefaultClusterOptions(), "bank")
	if err != nil {
		log.Fatal(err)
	}
	node := cluster.Node("bank")
	accounts, display := attach(node)

	// One IO area per interaction, as in Figure 4-1.
	var area1, area2 uint32
	if err := node.App.Run(func(tid types.TransID) error {
		var err error
		if area1, err = display.ObtainIOArea(tid); err != nil {
			return err
		}
		area2, err = display.ObtainIOArea(tid)
		return err
	}); err != nil {
		log.Fatal(err)
	}

	// Area 1: deposit $35 — commits, so the output turns black.
	if err := node.App.Run(func(tid types.TransID) error {
		bal, err := accounts.Get(tid, checkingAccount)
		if err != nil {
			return err
		}
		if err := accounts.Set(tid, checkingAccount, bal+35); err != nil {
			return err
		}
		return display.WritelnToArea(tid, area1, "deposited $35 to checking")
	}); err != nil {
		log.Fatal(err)
	}

	// Area 2: withdraw $80 — the node fails during the transaction.
	tid, err := node.App.BeginTransaction(types.NilTransID)
	if err != nil {
		log.Fatal(err)
	}
	bal, err := accounts.Get(tid, checkingAccount)
	if err != nil {
		log.Fatal(err)
	}
	if err := accounts.Set(tid, checkingAccount, bal-80); err != nil {
		log.Fatal(err)
	}
	if err := display.WritelnToArea(tid, area2, "withdraw $80 from checking"); err != nil {
		log.Fatal(err)
	}
	// Push the uncommitted state to disk, then the node crashes.
	if err := node.Kernel.FlushAll(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("*** node failure during the withdrawal ***")
	cluster.Crash("bank")

	// The system becomes available again: reboot, recover; the IO server
	// restores the screen (§4.3).
	node, err = cluster.Reboot("bank")
	if err != nil {
		log.Fatal(err)
	}
	accounts, display = attach(node)

	// Area 2 again: the user tries once more; this transaction is still
	// in progress when we render, so its line is gray.
	retry, err := node.App.BeginTransaction(types.NilTransID)
	if err != nil {
		log.Fatal(err)
	}
	if err := display.WritelnToArea(retry, area2, "withdraw $80 from checking (retry)"); err != nil {
		log.Fatal(err)
	}

	screen, err := display.Render()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("----- display (~ gray / ' ' black / - struck through) -----")
	fmt.Print(screen)
	fmt.Println("------------------------------------------------------------")

	// Finish the retry and show the final balance.
	b2, err := accounts.Get(retry, checkingAccount)
	if err != nil {
		log.Fatal(err)
	}
	if err := accounts.Set(retry, checkingAccount, b2-80); err != nil {
		log.Fatal(err)
	}
	if ok, err := node.App.EndTransaction(retry); err != nil || !ok {
		log.Fatalf("retry commit: ok=%v err=%v", ok, err)
	}
	if err := node.App.Run(func(tid types.TransID) error {
		final, err := accounts.Get(tid, checkingAccount)
		if err != nil {
			return err
		}
		fmt.Printf("final checking balance: $%d (35 deposited, 80 withdrawn once)\n", final)
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	cluster.Shutdown()
}
