// Counters: the accumulator server — operation logging and type-specific
// locking, the extension path the paper's Section 7 lays out ("the server
// library should provide a better set of primitives, including some for
// operation logging and type-specific locking").
//
// Several clients increment shared counters concurrently. Because
// increments commute, the accumulator defines a type-specific increment
// lock mode: all the clients proceed at once where exclusive write locks
// would serialize them. Because two uncommitted increments can interleave
// on one counter, value logging cannot describe an undo — so the server
// logs operations ("add +n" / "add -n"), and aborting one client reverses
// exactly its own deltas.
//
//	go run ./examples/counters
package main

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"tabs/internal/core"
	"tabs/internal/servers/accum"
	"tabs/internal/types"
)

func main() {
	cluster, err := core.NewCluster(core.DefaultClusterOptions(), "stats")
	if err != nil {
		log.Fatal(err)
	}
	node := cluster.Node("stats")
	if _, err := accum.Attach(node, "counters", 1, 16, 2*time.Second); err != nil {
		log.Fatal(err)
	}
	if _, err := node.Recover(); err != nil {
		log.Fatal(err)
	}
	counters := accum.NewClient(node, "stats", "counters")

	const pageViews = 1 // counter cell

	// Eight concurrent clients, each incrementing the same counter in its
	// own transaction — simultaneously, thanks to commuting increment
	// locks.
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if err := node.App.Run(func(tid types.TransID) error {
					return counters.Increment(tid, pageViews, 1)
				}); err != nil {
					log.Fatal(err)
				}
			}
		}()
	}
	wg.Wait()

	// One more client increments by a thousand... and changes its mind.
	oops := errors.New("misclick")
	err = node.App.Run(func(tid types.TransID) error {
		if err := counters.Increment(tid, pageViews, 1000); err != nil {
			return err
		}
		return oops // abort: the operation log undoes exactly this +1000
	})
	if !errors.Is(err, oops) {
		log.Fatalf("unexpected: %v", err)
	}

	// Crash and recover: the committed increments are replayed from the
	// operation log (three-pass recovery with the page-sequence guard).
	cluster.Crash("stats")
	node, err = cluster.Reboot("stats")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := accum.Attach(node, "counters", 1, 16, 2*time.Second); err != nil {
		log.Fatal(err)
	}
	report, err := node.Recover()
	if err != nil {
		log.Fatal(err)
	}
	counters = accum.NewClient(node, "stats", "counters")

	if err := node.App.Run(func(tid types.TransID) error {
		v, err := counters.Get(tid, pageViews)
		if err != nil {
			return err
		}
		fmt.Printf("page views after crash recovery: %d (want 200: 8 clients × 25)\n", v)
		fmt.Printf("recovery: %d passes over the log, %d operations redone, %d undone\n",
			report.Passes, report.Redone, report.Undone)
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	cluster.Shutdown()
}
