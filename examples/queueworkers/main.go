// Queueworkers: a transactional producer/consumer pipeline over the weak
// queue server (§4.2). Producers enqueue work items; consumers dequeue
// and process them; a consumer that fails aborts, and its item —
// protected by failure atomicity — reappears in the queue for another
// consumer. The weak (non-FIFO) semantics are what let several workers
// drain the queue concurrently without serializing on queue order.
//
//	go run ./examples/queueworkers
package main

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"tabs/internal/core"
	"tabs/internal/servers/weakqueue"
	"tabs/internal/types"
)

const (
	items   = 40
	workers = 4
)

func main() {
	cluster, err := core.NewCluster(core.DefaultClusterOptions(), "hub")
	if err != nil {
		log.Fatal(err)
	}
	node := cluster.Node("hub")
	if _, err := weakqueue.Attach(node, "jobs", 1, 256, 2*time.Second); err != nil {
		log.Fatal(err)
	}
	if _, err := node.Recover(); err != nil {
		log.Fatal(err)
	}
	queue := weakqueue.NewClient(node, "hub", "jobs")

	// Producer: one transaction per item, so each item is individually
	// permanent once enqueued.
	for i := 1; i <= items; i++ {
		if err := node.App.Run(func(tid types.TransID) error {
			return queue.Enqueue(tid, int64(i))
		}); err != nil {
			log.Fatalf("enqueue %d: %v", i, err)
		}
	}
	fmt.Printf("producer enqueued %d jobs\n", items)

	// Consumers: each dequeues one item per transaction. Every 7th
	// processing attempt "fails", aborting the transaction — the item
	// goes back for someone else.
	var processed sync.Map
	var count, retries atomic.Int64
	flaky := errors.New("worker hiccup")
	var wg sync.WaitGroup
	var attempts atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for count.Load() < items {
				err := node.App.Run(func(tid types.TransID) error {
					v, err := queue.Dequeue(tid)
					if err != nil {
						return err
					}
					if attempts.Add(1)%7 == 0 {
						retries.Add(1)
						return flaky // abort: the item is restored
					}
					processed.Store(v, id)
					count.Add(1)
					return nil
				})
				if err != nil && !errors.Is(err, flaky) {
					// Queue empty from this worker's view: someone else
					// may still abort and put an item back, so re-check.
					time.Sleep(time.Millisecond)
				}
			}
		}(w)
	}
	wg.Wait()

	// Every item was processed exactly once despite the induced aborts.
	missing := 0
	for i := 1; i <= items; i++ {
		if _, ok := processed.Load(int64(i)); !ok {
			missing++
		}
	}
	fmt.Printf("workers processed %d jobs (%d aborted attempts were retried, %d missing)\n",
		count.Load(), retries.Load(), missing)

	if err := node.App.Run(func(tid types.TransID) error {
		empty, err := queue.IsEmpty(tid)
		if err != nil {
			return err
		}
		fmt.Printf("queue empty: %v\n", empty)
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	cluster.Shutdown()
}
