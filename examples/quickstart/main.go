// Quickstart: a single TABS node with one data server — transactions,
// aborts, and crash recovery in about a page of code.
//
//	go run ./examples/quickstart
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"tabs/internal/core"
	"tabs/internal/servers/intarray"
	"tabs/internal/types"
)

func main() {
	// A cluster of one node: its own simulated disk, log, kernel, and the
	// four TABS system components.
	cluster, err := core.NewCluster(core.DefaultClusterOptions(), "alpha")
	if err != nil {
		log.Fatal(err)
	}
	node := cluster.Node("alpha")

	// Attach the integer array data server (paper §4.1): 1000 recoverable
	// cells. Then run crash recovery (a no-op on a fresh disk) — servers
	// must be attached first so their undo/redo code is registered.
	if _, err := intarray.Attach(node, "array", 1, 1000, time.Second); err != nil {
		log.Fatal(err)
	}
	if _, err := node.Recover(); err != nil {
		log.Fatal(err)
	}
	array := intarray.NewClient(node, "alpha", "array")

	// A committing transaction: all-or-nothing updates of two cells.
	err = node.App.Run(func(tid types.TransID) error {
		if err := array.Set(tid, 1, 100); err != nil {
			return err
		}
		return array.Set(tid, 2, 200)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("committed: cell1=100 cell2=200")

	// An aborting transaction: returning an error undoes everything.
	failed := errors.New("changed my mind")
	err = node.App.Run(func(tid types.TransID) error {
		if err := array.Set(tid, 1, 999); err != nil {
			return err
		}
		return failed
	})
	if !errors.Is(err, failed) {
		log.Fatalf("unexpected: %v", err)
	}

	// Crash the node: every piece of volatile state is lost; the disk
	// survives. Reboot, re-attach the server, recover.
	cluster.Crash("alpha")
	node, err = cluster.Reboot("alpha")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := intarray.Attach(node, "array", 1, 1000, time.Second); err != nil {
		log.Fatal(err)
	}
	report, err := node.Recover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered in %d pass(es): %d records scanned, %d redone, %d undone\n",
		report.Passes, report.RecordsScanned, report.Redone, report.Undone)

	// The committed values survived; the aborted write never happened.
	array = intarray.NewClient(node, "alpha", "array")
	err = node.App.Run(func(tid types.TransID) error {
		v1, err := array.Get(tid, 1)
		if err != nil {
			return err
		}
		v2, err := array.Get(tid, 2)
		if err != nil {
			return err
		}
		fmt.Printf("after crash: cell1=%d cell2=%d\n", v1, v2)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	cluster.Shutdown()
}
