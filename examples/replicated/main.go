// Replicated: the paper's replicated directory demonstration (§4.5) —
// three nodes, a directory representative (B-tree server) on each,
// weighted voting with read and write quorums of two, so one node can
// fail and the directory stays available.
//
//	go run ./examples/replicated
package main

import (
	"fmt"
	"log"
	"time"

	"tabs/internal/core"
	"tabs/internal/servers/btree"
	"tabs/internal/servers/repdir"
	"tabs/internal/types"
)

func main() {
	cluster, err := core.NewCluster(core.DefaultClusterOptions(), "a", "b", "c")
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range []types.NodeID{"a", "b", "c"} {
		n := cluster.Node(name)
		if _, err := btree.Attach(n, "rep", 1, 256, time.Second); err != nil {
			log.Fatal(err)
		}
		if _, err := n.Recover(); err != nil {
			log.Fatal(err)
		}
	}

	// The global coordination module links into the client (node a).
	client := cluster.Node("a")
	dir, err := repdir.New(client, []repdir.Rep{
		{Node: "a", Server: "rep", Votes: 1},
		{Node: "b", Server: "rep", Votes: 1},
		{Node: "c", Server: "rep", Votes: 1},
	}, 2, 2)
	if err != nil {
		log.Fatal(err)
	}
	r, w, total := dir.Quorums()
	fmt.Printf("replicated directory: %d representatives, read quorum %d, write quorum %d\n", total, r, w)

	// Populate the directory. Each Insert is one distributed transaction
	// committing on (at least) two nodes via tree-structured 2PC.
	entries := map[string]string{
		"/etc/passwd": "users",
		"/etc/hosts":  "machines",
		"/var/mail":   "mailboxes",
	}
	for k, v := range entries {
		if err := client.App.Run(func(tid types.TransID) error {
			return dir.Insert(tid, []byte(k), []byte(v))
		}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("inserted %d entries across the representatives\n", len(entries))

	// Kill node c. Reads and writes still gather a quorum of two.
	fmt.Println("*** node c fails ***")
	cluster.Crash("c")

	if err := client.App.Run(func(tid types.TransID) error {
		v, err := dir.Lookup(tid, []byte("/etc/passwd"))
		if err != nil {
			return err
		}
		fmt.Printf("lookup with one node down: /etc/passwd -> %q\n", v)
		return dir.Update(tid, []byte("/etc/passwd"), []byte("users-v2"))
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("updated /etc/passwd with one node down (quorum 2 of 2 live)")

	// Node c comes back with a stale copy; version numbers outvote it.
	nc, err := cluster.Reboot("c")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := btree.Attach(nc, "rep", 1, 256, time.Second); err != nil {
		log.Fatal(err)
	}
	if _, err := nc.Recover(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("*** node c rebooted (its copy of /etc/passwd is stale) ***")

	if err := client.App.Run(func(tid types.TransID) error {
		v, err := dir.Lookup(tid, []byte("/etc/passwd"))
		if err != nil {
			return err
		}
		fmt.Printf("lookup after recovery: /etc/passwd -> %q (the newer version won the vote)\n", v)
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	cluster.Shutdown()
}
