module tabs

go 1.22
