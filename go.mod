module tabs

go 1.24
