// Package acp implements the atomic-commit-protocol abstraction: the
// pluggable "how does the top-level transaction's outcome become durable
// and learnable" step of distributed commit.
//
// Two implementations exist. TwoPhase is the paper's tree-structured
// two-phase commit (§3.2.3): the coordinator's forced commit record IS the
// decision, and in-doubt participants resolve by asking their parent. It
// blocks forever if the coordinator dies after participants prepare.
// Manager is Paxos Commit after Gray & Lamport's "Consensus on Transaction
// Commit": each resource manager's Prepared/Aborted vote is the value of a
// Paxos instance decided by 2F+1 acceptor replicas, so the decision
// survives the coordinator as long as F+1 acceptors live. 2PC is exactly
// the degenerate F=0 case — one acceptor, colocated with the coordinator.
//
// This package deliberately owns only the *decision*: vote collection, the
// session tree, lock release and the commit/abort fan-out all stay in
// internal/txn, which calls through the Protocol interface at the single
// point where the outcome is established.
package acp

import (
	"tabs/internal/types"
	"tabs/internal/wal"
)

// Protocol is the commit-decision strategy used by the Transaction
// Manager. Implementations must be safe for concurrent use.
type Protocol interface {
	// Name identifies the protocol ("2pc" or "paxos") in reports and traces.
	Name() string

	// Replicated reports whether the decision is replicated outside the
	// coordinator. When true the coordinator must force a prepare record
	// (naming Acceptors()) before calling DecideCommit, and must never
	// unilaterally abort once DecideCommit has been attempted: the
	// transaction is in doubt until ResolveInDoubt learns the outcome.
	Replicated() bool

	// Acceptors returns the replica set new transactions should be decided
	// by. Empty for unreplicated protocols.
	Acceptors() []types.NodeID

	// DecideCommit durably establishes the Committed outcome for tid, whose
	// writer set (coordinator included when it wrote) is members. For 2PC
	// this forces the coordinator's commit record; for Paxos Commit it gets
	// the all-Prepared vote vector accepted by a quorum of acceptors. An
	// error means the outcome was NOT established here — but for replicated
	// protocols it may still have been established by a competing recovery
	// proposer, so the caller must treat an error as "in doubt", not abort.
	DecideCommit(tid types.TransID, members []types.NodeID) error

	// ResolveInDoubt determines the outcome of a prepared transaction whose
	// coordinator is silent. prep is the participant's prepare record. It
	// returns StatusCommitted or StatusAborted when an outcome was
	// established, or StatusPrepared when the protocol could not (yet)
	// decide — the caller stays in doubt and retries later. It never
	// returns a guess: an outcome returned here is durable cluster-wide.
	ResolveInDoubt(tid types.TransID, prep *wal.PrepareBody) types.Status

	// Finished tells the protocol every participant has durably applied the
	// outcome of tid, so replicated decision state may be discarded.
	Finished(tid types.TransID, acceptors []types.NodeID)
}

// TwoPhase adapts the paper's two-phase commit to the Protocol interface.
// It is constructed by the Transaction Manager from two closures so this
// package needs no dependency on txn internals.
type TwoPhase struct {
	commit func(types.TransID) error
	query  func(types.TransID, *wal.PrepareBody) types.Status
}

// NewTwoPhase builds the unreplicated protocol. commit must force the
// coordinator's commit record; query must ask the parent/coordinator for
// the outcome of an in-doubt transaction (returning StatusPrepared when it
// cannot be reached — the 2PC blocking window).
func NewTwoPhase(commit func(types.TransID) error, query func(types.TransID, *wal.PrepareBody) types.Status) *TwoPhase {
	return &TwoPhase{commit: commit, query: query}
}

// Name implements Protocol.
func (t *TwoPhase) Name() string { return "2pc" }

// Replicated implements Protocol: 2PC is the F=0 case, nothing outlives
// the coordinator.
func (t *TwoPhase) Replicated() bool { return false }

// Acceptors implements Protocol.
func (t *TwoPhase) Acceptors() []types.NodeID { return nil }

// DecideCommit implements Protocol by forcing the coordinator's commit
// record — the classic single point of decision.
func (t *TwoPhase) DecideCommit(tid types.TransID, _ []types.NodeID) error { return t.commit(tid) }

// ResolveInDoubt implements Protocol by asking the coordinator.
func (t *TwoPhase) ResolveInDoubt(tid types.TransID, prep *wal.PrepareBody) types.Status {
	return t.query(tid, prep)
}

// Finished implements Protocol; 2PC keeps no replicated state.
func (t *TwoPhase) Finished(types.TransID, []types.NodeID) {}

// --- Ballots and values ----------------------------------------------------

// Ballot orders competing proposers of one transaction's decision. The
// zero ballot is reserved: the transaction's own coordinator proposes at
// Ballot{0, root} (the fast path needs no phase 1 because no acceptor can
// have accepted at a lower ballot), and recovery proposers use N >= 1 with
// their node name breaking ties.
type Ballot struct {
	N    uint32
	Node types.NodeID
}

// Less orders ballots lexicographically.
func (b Ballot) Less(o Ballot) bool {
	if b.N != o.N {
		return b.N < o.N
	}
	return b.Node < o.Node
}

// Votes carried per member in a Value.
const (
	VotePrepared byte = 1
	VoteAborted  byte = 2
)

// Member is one resource manager's vote inside a proposed decision.
type Member struct {
	Node types.NodeID
	Vote byte
}

// Value is a proposed (or decided) outcome for one transaction: the vote
// vector of its writer set. Gray & Lamport run one Paxos instance per RM;
// here all instances of a transaction share one ballot and are batched
// into a single value, which is equivalent because the coordinator always
// proposes the complete vector at once. The empty vector is the Aborted
// sentinel proposed by recovery for instances no coordinator got to.
type Value struct {
	Members []Member
}

// Outcome maps a decided value to the transaction outcome: Committed iff
// the vector is non-empty and every vote is Prepared.
func (v Value) Outcome() types.Status {
	if len(v.Members) == 0 {
		return types.StatusAborted
	}
	for _, m := range v.Members {
		if m.Vote != VotePrepared {
			return types.StatusAborted
		}
	}
	return types.StatusCommitted
}
