package acp

import (
	"bytes"
	"reflect"
	"sync"
	"testing"
	"time"

	"tabs/internal/types"
	"tabs/internal/wal"
)

// testNet is an in-memory datagram fabric for acp managers: asynchronous
// delivery, silent drops to downed nodes — the same contract the real
// Communication Manager's datagram path offers.
type testNet struct {
	mu       sync.Mutex
	handlers map[types.NodeID]func(types.NodeID, types.TransID, []byte) ([]byte, error)
	down     map[types.NodeID]bool
}

func newTestNet() *testNet {
	return &testNet{
		handlers: make(map[types.NodeID]func(types.NodeID, types.TransID, []byte) ([]byte, error)),
		down:     make(map[types.NodeID]bool),
	}
}

func (n *testNet) kill(node types.NodeID) {
	n.mu.Lock()
	n.down[node] = true
	n.mu.Unlock()
}

type testEP struct {
	net  *testNet
	node types.NodeID
}

func (e *testEP) RegisterService(_ string, h func(types.NodeID, types.TransID, []byte) ([]byte, error)) {
	e.net.mu.Lock()
	e.net.handlers[e.node] = h
	e.net.mu.Unlock()
}

func (e *testEP) SendDatagram(peer types.NodeID, _ string, tid types.TransID, payload []byte, _ float64) error {
	e.net.mu.Lock()
	h := e.net.handlers[peer]
	dead := e.net.down[peer] || e.net.down[e.node]
	e.net.mu.Unlock()
	if h == nil || dead {
		return nil // datagrams are best-effort
	}
	cp := append([]byte(nil), payload...)
	go func() { _, _ = h(e.node, tid, cp) }()
	return nil
}

// memLogger captures LogACP bodies, standing in for the Recovery Manager.
type memLogger struct {
	mu     sync.Mutex
	bodies [][]byte
	forced int
}

func (l *memLogger) LogACP(body []byte, force bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.bodies = append(l.bodies, append([]byte(nil), body...))
	if force {
		l.forced++
	}
	return nil
}

func (l *memLogger) records() [][]byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([][]byte, len(l.bodies))
	copy(out, l.bodies)
	return out
}

// bootACP builds one manager per name on a shared fabric, each with its
// own logger, all configured for fast test rounds.
func bootACP(net *testNet, names ...types.NodeID) (map[types.NodeID]*Manager, map[types.NodeID]*memLogger) {
	ms := make(map[types.NodeID]*Manager, len(names))
	logs := make(map[types.NodeID]*memLogger, len(names))
	for _, name := range names {
		m := New(name, &testEP{net: net, node: name})
		m.Configure(25*time.Millisecond, 2)
		lg := &memLogger{}
		m.SetLogger(lg)
		m.SetAcceptors(names)
		ms[name], logs[name] = m, lg
	}
	return ms, logs
}

func testTID(root types.NodeID, seq uint64) types.TransID {
	return types.TransID{Node: root, Seq: seq, RootNode: root, RootSeq: seq}
}

func TestMsgCodecRoundTrip(t *testing.T) {
	cases := []dgram{
		{op: opP1a, nonce: 3, bal: Ballot{N: 7, Node: "b"}},
		{op: opP1b, flags: fAccepted, nonce: 3, bal: Ballot{N: 7, Node: "b"}, abal: Ballot{N: 2, Node: "a"},
			val: Value{Members: []Member{{Node: "a", Vote: VotePrepared}, {Node: "c", Vote: VoteAborted}}}},
		{op: opP2b, flags: fOK, nonce: ^uint32(0), bal: Ballot{N: 1, Node: "z"}},
		{op: opDecide, flags: fDecided, val: Value{}},
		{op: opStatus},
	}
	for _, want := range cases {
		got, err := decodeMsg(encodeMsg(&want))
		if err != nil {
			t.Fatalf("decode(%+v): %v", want, err)
		}
		if !reflect.DeepEqual(*got, want) {
			t.Fatalf("round trip: got %+v want %+v", *got, want)
		}
	}
	// Strictness: trailing garbage and truncation must be rejected.
	full := encodeMsg(&cases[1])
	if _, err := decodeMsg(append(full, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	for i := 0; i < len(full); i++ {
		if _, err := decodeMsg(full[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
}

func TestEntryStateCodecRoundTrip(t *testing.T) {
	tid := testTID("node-a", 42)
	e := &entry{
		promised: Ballot{N: 3, Node: "b"},
		accepted: true,
		abal:     Ballot{N: 2, Node: "a"},
		aval:     Value{Members: []Member{{Node: "a", Vote: VotePrepared}}},
		decided:  true,
		dval:     Value{Members: []Member{{Node: "a", Vote: VotePrepared}}},
	}
	// Two concatenated entries must parse back in sequence.
	blob := appendEntryState(nil, tid, e)
	tid2 := testTID("node-b", 7)
	blob = appendEntryState(blob, tid2, &entry{promised: Ballot{N: 1, Node: "c"}})
	gt, ge, rest, err := takeEntryState(blob)
	if err != nil || gt != tid {
		t.Fatalf("first entry: tid %v err %v", gt, err)
	}
	if !reflect.DeepEqual(ge, e) {
		t.Fatalf("first entry state: got %+v want %+v", ge, e)
	}
	gt2, _, rest, err := takeEntryState(rest)
	if err != nil || gt2 != tid2 || len(rest) != 0 {
		t.Fatalf("second entry: tid %v rest %d err %v", gt2, len(rest), err)
	}
}

// TestDecideThenLearn: the coordinator's fast-path decision is learnable
// by any node that asks the quorum.
func TestDecideThenLearn(t *testing.T) {
	net := newTestNet()
	ms, _ := bootACP(net, "a", "b", "c")
	tid := testTID("a", 1)
	if err := ms["a"].DecideCommit(tid, []types.NodeID{"a", "b"}); err != nil {
		t.Fatalf("DecideCommit: %v", err)
	}
	prep := &wal.PrepareBody{Parent: "a", Acceptors: []types.NodeID{"a", "b", "c"}}
	if st := ms["b"].ResolveInDoubt(tid, prep); st != types.StatusCommitted {
		t.Fatalf("resolve after decide = %v, want committed", st)
	}
}

// TestDecideSurvivesCoordinatorDeath is the availability property 2PC
// lacks: the coordinator decides commit and dies before telling anyone;
// a participant still learns Committed from the surviving quorum.
func TestDecideSurvivesCoordinatorDeath(t *testing.T) {
	net := newTestNet()
	ms, _ := bootACP(net, "a", "b", "c")
	tid := testTID("a", 1)
	if err := ms["a"].DecideCommit(tid, []types.NodeID{"a", "b", "c"}); err != nil {
		t.Fatalf("DecideCommit: %v", err)
	}
	net.kill("a")
	prep := &wal.PrepareBody{Parent: "a", Acceptors: []types.NodeID{"a", "b", "c"}}
	if st := ms["c"].ResolveInDoubt(tid, prep); st != types.StatusCommitted {
		t.Fatalf("resolve with dead coordinator = %v, want committed", st)
	}
}

// TestRecoveryAbortsUnproposed: the coordinator died before proposing
// anything. Recovery must conclude Aborted (the abort sentinel), every
// other resolver must agree, and a late coordinator proposal at the zero
// ballot must fail — the quorum's promises fence it out.
func TestRecoveryAbortsUnproposed(t *testing.T) {
	net := newTestNet()
	ms, _ := bootACP(net, "a", "b", "c")
	tid := testTID("a", 1)
	prep := &wal.PrepareBody{Parent: "a", Acceptors: []types.NodeID{"a", "b", "c"}}
	if st := ms["b"].ResolveInDoubt(tid, prep); st != types.StatusAborted {
		t.Fatalf("recovery resolve = %v, want aborted", st)
	}
	if st := ms["c"].ResolveInDoubt(tid, prep); st != types.StatusAborted {
		t.Fatalf("second resolver = %v, want aborted", st)
	}
	if err := ms["a"].DecideCommit(tid, []types.NodeID{"a"}); err == nil {
		t.Fatal("late fast-path proposal succeeded after recovery decided abort")
	}
}

// TestNoQuorumStaysInDoubt: with only F of 2F+1 acceptors alive neither
// the coordinator nor recovery may decide anything.
func TestNoQuorumStaysInDoubt(t *testing.T) {
	net := newTestNet()
	ms, _ := bootACP(net, "a", "b", "c")
	net.kill("b")
	net.kill("c")
	tid := testTID("a", 1)
	if err := ms["a"].DecideCommit(tid, []types.NodeID{"a"}); err == nil {
		t.Fatal("DecideCommit succeeded without a quorum")
	}
	prep := &wal.PrepareBody{Parent: "x", Acceptors: []types.NodeID{"a", "b", "c"}}
	if st := ms["a"].ResolveInDoubt(tid, prep); st != types.StatusPrepared {
		t.Fatalf("resolve without quorum = %v, want prepared (in doubt)", st)
	}
}

// TestAcceptorBallotRules drives one acceptor directly through handle():
// promises fence lower ballots, acceptance is forced-logged before the
// reply, and a decision short-circuits later prepares.
func TestAcceptorBallotRules(t *testing.T) {
	m := New("acc", nil)
	lg := &memLogger{}
	m.SetLogger(lg)
	tid := testTID("root", 9)
	val := Value{Members: []Member{{Node: "root", Vote: VotePrepared}}}

	feed := func(d *dgram) {
		_, _ = m.handle("acc", tid, encodeMsg(d))
	}

	// Promise at ballot 5.
	feed(&dgram{op: opP1a, bal: Ballot{N: 5, Node: "p1"}})
	m.mu.Lock()
	e := m.entries[tid]
	m.mu.Unlock()
	if e == nil || (e.promised != Ballot{N: 5, Node: "p1"}) {
		t.Fatalf("promise not recorded: %+v", e)
	}
	if len(lg.records()) != 1 || lg.forced != 1 {
		t.Fatalf("promise not force-logged: %d records, %d forced", len(lg.records()), lg.forced)
	}

	// A lower-ballot accept must be refused (state unchanged).
	feed(&dgram{op: opP2a, bal: Ballot{N: 2, Node: "p0"}, val: val})
	m.mu.Lock()
	accepted := m.entries[tid].accepted
	m.mu.Unlock()
	if accepted {
		t.Fatal("acceptor took a value below its promise")
	}

	// An equal-or-higher accept lands and is force-logged.
	feed(&dgram{op: opP2a, bal: Ballot{N: 5, Node: "p1"}, val: val})
	m.mu.Lock()
	e = m.entries[tid]
	ok := e.accepted && e.abal == Ballot{N: 5, Node: "p1"} && len(e.aval.Members) == 1
	m.mu.Unlock()
	if !ok {
		t.Fatalf("accept not recorded: %+v", e)
	}

	// Decide is sticky and lazily logged.
	feed(&dgram{op: opDecide, flags: fDecided, val: val})
	m.mu.Lock()
	decided := m.entries[tid].decided
	m.mu.Unlock()
	if !decided {
		t.Fatal("decision not recorded")
	}

	// Forget drops only decided entries.
	feed(&dgram{op: opForget})
	m.mu.Lock()
	gone := m.entries[tid] == nil
	m.mu.Unlock()
	if !gone {
		t.Fatal("decided entry not dropped by forget")
	}
}

// TestCrashRestoreFromRecords: replaying the logger's captured RecACP
// bodies into a fresh manager reproduces the acceptor's promises, so a
// rebooted acceptor still fences the ballots it promised against.
func TestCrashRestoreFromRecords(t *testing.T) {
	m := New("acc", nil)
	lg := &memLogger{}
	m.SetLogger(lg)
	tid := testTID("root", 1)
	val := Value{Members: []Member{{Node: "root", Vote: VotePrepared}}}
	_, _ = m.handle("acc", tid, encodeMsg(&dgram{op: opP1a, bal: Ballot{N: 4, Node: "p"}}))
	_, _ = m.handle("acc", tid, encodeMsg(&dgram{op: opP2a, bal: Ballot{N: 4, Node: "p"}, val: val}))

	reborn := New("acc", nil)
	for _, body := range lg.records() {
		reborn.RestoreRecord(body)
	}
	reborn.mu.Lock()
	e := reborn.entries[tid]
	reborn.mu.Unlock()
	if e == nil || (e.promised != Ballot{N: 4, Node: "p"}) || !e.accepted {
		t.Fatalf("restore lost acceptor state: %+v", e)
	}
	// Records may also replay in reverse (analysis order is not
	// guaranteed relative to the checkpoint blob): the merge must converge
	// to the same state.
	rev := New("acc", nil)
	recs := lg.records()
	for i := len(recs) - 1; i >= 0; i-- {
		rev.RestoreRecord(recs[i])
	}
	rev.mu.Lock()
	e2 := rev.entries[tid]
	rev.mu.Unlock()
	if e2 == nil || e2.promised != e.promised || e2.accepted != e.accepted || e2.abal != e.abal {
		t.Fatalf("order-sensitive restore: %+v vs %+v", e2, e)
	}
}

// TestCheckpointStateRoundTrip: the checkpoint blob carries entries within
// the limit, overflow entries spill into their own bodies, and restoring
// blob + overflow reproduces the table.
func TestCheckpointStateRoundTrip(t *testing.T) {
	m := New("acc", nil)
	for i := 0; i < 40; i++ {
		tid := testTID("root", uint64(i+1))
		_, _ = m.handle("acc", tid, encodeMsg(&dgram{op: opP1a, bal: Ballot{N: 1, Node: "p"}}))
	}
	one := len(appendEntryState(nil, testTID("root", 1), &entry{promised: Ballot{N: 1, Node: "p"}}))
	blob, overflow := m.CheckpointState(one * 10)
	if len(blob) > one*10 {
		t.Fatalf("blob %d exceeds limit %d", len(blob), one*10)
	}
	if len(overflow) != 30 {
		t.Fatalf("overflow = %d entries, want 30", len(overflow))
	}
	reborn := New("acc", nil)
	reborn.RestoreState(blob)
	for _, body := range overflow {
		reborn.RestoreRecord(body)
	}
	reborn.mu.Lock()
	n := len(reborn.entries)
	reborn.mu.Unlock()
	if n != 40 {
		t.Fatalf("restored %d entries, want 40", n)
	}
	// A zero limit forces everything into overflow; nothing may be lost.
	blob0, over0 := m.CheckpointState(0)
	if len(blob0) != 0 || len(over0) != 40 {
		t.Fatalf("limit 0: blob %d bytes, overflow %d", len(blob0), len(over0))
	}
}

// TestBallotCounterSurvivesCrash: a recovery proposer's ballot counter is
// forced to the log before a ballot's first use and restored at restart,
// so a crashed-and-rebooted proposer can never reuse a ballot number (two
// values accepted at one ballot would let later ballots learn conflicting
// decisions).
func TestBallotCounterSurvivesCrash(t *testing.T) {
	m := New("r", nil)
	lg := &memLogger{}
	m.SetLogger(lg)
	var last Ballot
	for i := 0; i < 3; i++ {
		bal, ok := m.nextBallot()
		if !ok {
			t.Fatalf("nextBallot %d failed", i)
		}
		last = bal
	}
	if last.N != 3 {
		t.Fatalf("last ballot = %v, want N=3", last)
	}
	m.Crash()
	m.mu.Lock()
	ctr := m.balCtr
	m.mu.Unlock()
	if ctr != 0 {
		t.Fatalf("crash did not clear volatile counter: %d", ctr)
	}
	// Replay the RecACP stream, in reverse too — restore order must not
	// matter.
	for _, dir := range []int{1, -1} {
		reborn := New("r", nil)
		recs := lg.records()
		if dir < 0 {
			for i := len(recs) - 1; i >= 0; i-- {
				reborn.RestoreRecord(recs[i])
			}
		} else {
			for _, body := range recs {
				reborn.RestoreRecord(body)
			}
		}
		bal, ok := reborn.nextBallot()
		if !ok || bal.N <= last.N {
			t.Fatalf("restored proposer reused ballot space: %v ok=%v (last %v)", bal, ok, last)
		}
	}
	// The checkpoint blob must carry the counter as well, so reclamation of
	// the original records cannot lose it.
	blob, _ := m.CheckpointState(1 << 20)
	m.RestoreRecord(lg.records()[len(lg.records())-1]) // bring m's counter back
	fromCkp := New("r", nil)
	fromCkp.RestoreState(blob)
	fromCkp.mu.Lock()
	got := fromCkp.balCtr
	fromCkp.mu.Unlock()
	if got != 0 {
		t.Fatalf("checkpoint of crashed node carried counter %d, want 0", got)
	}
	blob2, _ := m.CheckpointState(1 << 20)
	fromCkp2 := New("r", nil)
	fromCkp2.RestoreState(blob2)
	fromCkp2.mu.Lock()
	got2 := fromCkp2.balCtr
	fromCkp2.mu.Unlock()
	if got2 != 3 {
		t.Fatalf("checkpoint blob lost ballot counter: %d, want 3", got2)
	}
}

// TestEvictionSparesRecentDecisions: a decided-but-unforgotten entry is
// immune from bounded-table eviction until its decision ages past the
// TTL — dropping it early would be the same atomicity hazard as a
// premature Forget. The table is allowed to exceed its bound instead.
func TestEvictionSparesRecentDecisions(t *testing.T) {
	m := New("acc", nil)
	val := Value{Members: []Member{{Node: "r", Vote: VotePrepared}}}
	for i := 0; i < maxEntries; i++ {
		_, _ = m.handle("acc", testTID("r", uint64(i+1)), encodeMsg(&dgram{op: opDecide, flags: fDecided, val: val}))
	}
	// One more entry: the table is full of freshly decided entries; none
	// may be evicted.
	_, _ = m.handle("acc", testTID("r", maxEntries+1), encodeMsg(&dgram{op: opP1a, bal: Ballot{N: 1, Node: "p"}}))
	m.mu.Lock()
	n := len(m.entries)
	m.mu.Unlock()
	if n != maxEntries+1 {
		t.Fatalf("table has %d entries, want %d (a fresh decision was evicted)", n, maxEntries+1)
	}
	// Age one decision past the TTL: it becomes the eviction victim.
	victim := testTID("r", 7)
	m.mu.Lock()
	m.entries[victim].decidedAt = time.Now().Add(-2 * evictTTL)
	m.mu.Unlock()
	_, _ = m.handle("acc", testTID("r", maxEntries+2), encodeMsg(&dgram{op: opP1a, bal: Ballot{N: 1, Node: "p"}}))
	m.mu.Lock()
	_, stillThere := m.entries[victim]
	n = len(m.entries)
	m.mu.Unlock()
	if stillThere || n != maxEntries+1 {
		t.Fatalf("TTL-aged entry not evicted: present=%v table=%d", stillThere, n)
	}
}

// TestCompetingRecoverers: two nodes resolve the same unproposed
// transaction concurrently; both must land on the same outcome.
func TestCompetingRecoverers(t *testing.T) {
	net := newTestNet()
	ms, _ := bootACP(net, "a", "b", "c")
	tid := testTID("a", 3)
	prep := &wal.PrepareBody{Parent: "a", Acceptors: []types.NodeID{"a", "b", "c"}}
	results := make(chan types.Status, 2)
	for _, n := range []types.NodeID{"b", "c"} {
		go func(m *Manager) { results <- m.ResolveInDoubt(tid, prep) }(ms[n])
	}
	st1, st2 := <-results, <-results
	terminal := func(s types.Status) bool {
		return s == types.StatusCommitted || s == types.StatusAborted
	}
	if terminal(st1) && terminal(st2) && st1 != st2 {
		t.Fatalf("recoverers disagree: %v vs %v", st1, st2)
	}
	if !terminal(st1) && !terminal(st2) {
		// Both contended into stuckness is possible but should be rare
		// with 3 attempts; a follow-up resolve must then settle it.
		if st := ms["b"].ResolveInDoubt(tid, prep); st != types.StatusAborted {
			t.Fatalf("follow-up resolve = %v, want aborted", st)
		}
	}
}

// TestSnapshotReportsInstances: the inspection surface used by tabsctl.
func TestSnapshotReportsInstances(t *testing.T) {
	net := newTestNet()
	ms, _ := bootACP(net, "a", "b", "c")
	tid := testTID("a", 1)
	if err := ms["a"].DecideCommit(tid, []types.NodeID{"a"}); err != nil {
		t.Fatalf("DecideCommit: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		snap := ms["b"].Snapshot()
		if len(snap) == 1 && snap[0].Decided && snap[0].Outcome == "committed" && snap[0].TID != "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("acceptor b never decided: %+v", snap)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestBallotOrdering pins the lexicographic ballot order the protocol
// depends on.
func TestBallotOrdering(t *testing.T) {
	a := Ballot{N: 1, Node: "a"}
	b := Ballot{N: 1, Node: "b"}
	z := Ballot{N: 0, Node: "z"}
	if !z.Less(a) || !a.Less(b) || b.Less(a) {
		t.Fatal("ballot ordering broken")
	}
	if bytes.Compare([]byte("a"), []byte("b")) >= 0 {
		t.Fatal("tie-break assumption broken")
	}
}
