package acp

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"tabs/internal/trace"
	"tabs/internal/types"
	"tabs/internal/wal"
)

// Service is the Communication Manager service name for acceptor traffic.
const Service = "acp"

// CommManager is the slice of the Communication Manager the acp layer
// uses: unreliable datagrams and service registration, exactly like txn.
type CommManager interface {
	SendDatagram(peer types.NodeID, service string, tid types.TransID, payload []byte, charge float64) error
	RegisterService(service string, handler func(from types.NodeID, tid types.TransID, payload []byte) ([]byte, error))
}

// Logger persists acceptor state. body is a self-contained entry encoding
// (appendEntryState); force must not return until the record is stable.
// Implemented by recovery.Manager.LogACP; nil disables durability (tests).
type Logger interface {
	LogACP(body []byte, force bool) error
}

// entry is one transaction's acceptor state: the batched Paxos instance
// group for that transaction's vote vector.
type entry struct {
	promised  Ballot // highest ballot promised (zero = none)
	accepted  bool
	abal      Ballot // ballot at which aval was accepted
	aval      Value
	decided   bool
	dval      Value
	stamp     uint64    // creation order, for bounded-table eviction
	decidedAt time.Time // when decided was set; gates eviction
}

// maxEntries bounds the acceptor table. Only decided entries whose
// decision is older than evictTTL may be evicted past the bound (a
// participant that never sent Forget); everything else — undecided
// entries, whose promises are safety-critical facts, and recently decided
// entries, which a slow participant may still need to learn from — is
// kept even if that pushes the table over the bound.
const maxEntries = 4096

// evictTTL is how long a decided-but-unforgotten entry is immune from
// eviction. Dropping such an entry early is the same atomicity hazard as
// a premature Forget: if every acceptor loses a committed transaction's
// decision, a still-prepared participant's recovery ballot concludes
// Abort. The TTL is generous relative to retry windows so only a
// participant that is gone for good pays it.
const evictTTL = time.Minute

type waitKey struct {
	tid   types.TransID
	op    byte
	nonce uint32
}

type reply struct {
	from types.NodeID
	d    *dgram
}

// Manager is one node's acp endpoint: acceptor for the cluster's commit
// decisions, proposer for transactions this node coordinates, and
// recovery proposer/learner for in-doubt transactions it participates in.
// It implements Protocol (Paxos Commit) and is wired as recovery's
// ACPSource and acp traffic handler by core.NewNode.
type Manager struct {
	node types.NodeID
	cm   CommManager
	tr   *trace.Tracer

	mu        sync.Mutex
	logger    Logger
	acceptors []types.NodeID
	entries   map[types.TransID]*entry
	waiters   map[waitKey]chan reply
	stamp     uint64
	// balCtr is the highest recovery ballot number used as proposer. It is
	// forced to the log before a new ballot's first use and restored at
	// restart, so a crashed-and-rebooted proposer can never reuse a ballot
	// number with a different value.
	balCtr   uint32
	nonceCtr uint32
	timeout  time.Duration
	retries  int
}

// New creates the manager and registers the "acp" service with cm. The
// acceptor role is always on — a node answers acceptor traffic even when
// its own transactions use 2PC — but it participates in no decision until
// SetAcceptors names it in some transaction's replica set.
func New(node types.NodeID, cm CommManager) *Manager {
	m := &Manager{
		node:    node,
		cm:      cm,
		entries: make(map[types.TransID]*entry),
		waiters: make(map[waitKey]chan reply),
		timeout: 150 * time.Millisecond,
		retries: 3,
	}
	if cm != nil {
		cm.RegisterService(Service, m.handle)
	}
	return m
}

// AttachTracer points acp.* spans and counters at tr (nil disables).
func (m *Manager) AttachTracer(tr *trace.Tracer) { m.tr = tr }

// SetLogger installs the WAL-backed persistence hook.
func (m *Manager) SetLogger(l Logger) {
	m.mu.Lock()
	m.logger = l
	m.mu.Unlock()
}

// SetAcceptors installs the replica set used for transactions this node
// coordinates from now on. In-flight transactions are unaffected: they
// carry their acceptor set in prepare records and messages, which is what
// makes between-transaction reconfiguration safe.
func (m *Manager) SetAcceptors(acceptors []types.NodeID) {
	cp := append([]types.NodeID(nil), acceptors...)
	m.mu.Lock()
	m.acceptors = cp
	m.mu.Unlock()
}

// Configure sets the per-round reply timeout and retransmit count.
func (m *Manager) Configure(timeout time.Duration, retries int) {
	m.mu.Lock()
	m.timeout, m.retries = timeout, retries
	m.mu.Unlock()
}

// Crash discards all volatile state, simulating node failure. Durable
// acceptor state — including the proposer ballot counter — comes back
// through RestoreState/RestoreRecord at restart.
func (m *Manager) Crash() {
	m.mu.Lock()
	m.entries = make(map[types.TransID]*entry)
	m.waiters = make(map[waitKey]chan reply)
	m.balCtr = 0
	m.mu.Unlock()
}

func quorum(n int) int { return n/2 + 1 }

// String renders a ballot for reports.
func (b Ballot) String() string { return fmt.Sprintf("%d.%s", b.N, b.Node) }

// --- Protocol implementation (the Paxos Commit side) ------------------------

// Name implements Protocol.
func (m *Manager) Name() string { return "paxos" }

// Replicated implements Protocol.
func (m *Manager) Replicated() bool { return true }

// Acceptors implements Protocol.
func (m *Manager) Acceptors() []types.NodeID {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]types.NodeID(nil), m.acceptors...)
}

// ErrNoQuorum reports that a proposal round could not reach a quorum of
// acceptors; the transaction outcome is in doubt, not aborted.
var ErrNoQuorum = errors.New("acp: no acceptor quorum")

// DecideCommit implements Protocol: propose the all-Prepared vote vector
// for members at the fast-path zero ballot. No phase 1 is needed — ballot
// zero is reserved for the coordinator, so no acceptor can have accepted
// a competing value below it. An error means no quorum accepted *here*;
// the outcome is in doubt until ResolveInDoubt learns it.
func (m *Manager) DecideCommit(tid types.TransID, members []types.NodeID) error {
	acceptors := m.Acceptors()
	if len(acceptors) == 0 {
		return errors.New("acp: no acceptors configured")
	}
	val := Value{Members: make([]Member, len(members))}
	for i, n := range members {
		val.Members[i] = Member{Node: n, Vote: VotePrepared}
	}
	sp := m.tr.Begin("acp", "decide").SetTID(tid)
	err := m.phase2(tid, Ballot{N: 0, Node: m.node}, val, acceptors)
	if err != nil {
		sp.Annotate("outcome=in-doubt").End()
		m.tr.Count("acp.decide.noquorum", 1)
		return err
	}
	m.broadcast(tid, &dgram{op: opDecide, flags: fDecided, val: val}, acceptors)
	sp.End()
	m.tr.Count("acp.decide.commit", 1)
	return nil
}

// ResolveInDoubt implements Protocol: learn or force the outcome of a
// prepared transaction against its acceptor set. Returns StatusPrepared
// when no quorum is reachable — still in doubt, the caller retries.
func (m *Manager) ResolveInDoubt(tid types.TransID, prep *wal.PrepareBody) types.Status {
	var acceptors []types.NodeID
	if prep != nil {
		acceptors = prep.Acceptors
	}
	if len(acceptors) == 0 {
		acceptors = m.Acceptors()
	}
	if len(acceptors) == 0 {
		return types.StatusPrepared
	}
	sp := m.tr.Begin("acp", "resolve").SetTID(tid)
	defer sp.End()
	// Cheap learn first: if any acceptor already knows the decision, take
	// it without running a ballot.
	if v, ok := m.learn(tid, acceptors); ok {
		sp.Annotate("via=learn")
		return m.resolved(tid, v, acceptors)
	}
	// Recovery proposer: run full Paxos rounds at fresh ballots, proposing
	// the highest accepted value seen — or the Aborted sentinel for a vote
	// vector no coordinator got accepted anywhere.
	for attempt := 0; attempt <= 2; attempt++ {
		bal, ok := m.nextBallot()
		if !ok {
			// The ballot could not be made durable; using it anyway could
			// repeat a ballot number after a crash. Stay in doubt.
			continue
		}
		promises, prev, decided, seen := m.phase1(tid, bal, acceptors)
		if decided != nil {
			sp.Annotate("via=phase1-decided")
			return m.resolved(tid, *decided, acceptors)
		}
		m.observeBallot(seen)
		if promises < quorum(len(acceptors)) {
			continue
		}
		val := Value{} // aborted sentinel
		if prev != nil {
			val = *prev
		}
		if m.phase2(tid, bal, val, acceptors) != nil {
			continue
		}
		sp.Annotate("via=recovery-ballot")
		return m.resolved(tid, val, acceptors)
	}
	m.tr.Count("acp.resolve.stuck", 1)
	return types.StatusPrepared
}

// resolved broadcasts the decision and maps it to a status.
func (m *Manager) resolved(tid types.TransID, v Value, acceptors []types.NodeID) types.Status {
	m.broadcast(tid, &dgram{op: opDecide, flags: fDecided, val: v}, acceptors)
	st := v.Outcome()
	if st == types.StatusCommitted {
		m.tr.Count("acp.resolve.commit", 1)
	} else {
		m.tr.Count("acp.resolve.abort", 1)
	}
	return st
}

// Finished implements Protocol: every participant has durably applied the
// outcome, so acceptors may drop their entry.
func (m *Manager) Finished(tid types.TransID, acceptors []types.NodeID) {
	if len(acceptors) == 0 {
		return
	}
	m.broadcast(tid, &dgram{op: opForget}, acceptors)
}

// --- Proposer rounds ---------------------------------------------------------

func (m *Manager) config() (time.Duration, int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.timeout, m.retries
}

// nextBallot allocates a fresh recovery ballot, force-logging the counter
// before the ballot is handed out. The order matters: if the log write
// wins and the crash follows, a number is skipped (harmless); if the
// ballot were used first, a restarted proposer could propose a different
// value at the same ballot {N,node} to a disjoint quorum — two values
// accepted at one ballot. Returns ok=false when durability failed; the
// caller must not run a round then.
func (m *Manager) nextBallot() (Ballot, bool) {
	m.mu.Lock()
	m.balCtr++
	n := m.balCtr
	m.mu.Unlock()
	if !m.persist(appendBalCtrState(nil, n), true) {
		return Ballot{}, false
	}
	return Ballot{N: n, Node: m.node}, true
}

// observeBallot raises the ballot counter above a competitor's, so the
// next round is not doomed to rejection.
func (m *Manager) observeBallot(seen Ballot) {
	m.mu.Lock()
	if m.balCtr < seen.N {
		m.balCtr = seen.N
	}
	m.mu.Unlock()
}

// phase1 runs prepare(bal) against acceptors. It returns the number of
// promises at bal, the highest-ballot previously accepted value (nil if
// none), a decided value if any acceptor short-circuited, and the highest
// competing ballot observed in rejections.
func (m *Manager) phase1(tid types.TransID, bal Ballot, acceptors []types.NodeID) (int, *Value, *Value, Ballot) {
	need := quorum(len(acceptors))
	replies := m.collect(tid, acceptors, &dgram{op: opP1a, bal: bal}, opP1b, func(got map[types.NodeID]*dgram) bool {
		n := 0
		for _, r := range got {
			if r.flags&fDecided != 0 {
				return true
			}
			if r.bal == bal {
				n++
			}
		}
		return n >= need
	})
	promises := 0
	var best *Value
	var bestBal, seen Ballot
	for _, r := range replies {
		if r.flags&fDecided != 0 {
			v := r.val
			return 0, nil, &v, seen
		}
		if r.bal == bal {
			promises++
			if r.flags&fAccepted != 0 && (best == nil || bestBal.Less(r.abal)) {
				v := r.val
				best, bestBal = &v, r.abal
			}
		} else if seen.Less(r.bal) {
			seen = r.bal
		}
	}
	return promises, best, nil, seen
}

// phase2 runs accept(bal, val) against acceptors and returns nil once a
// quorum has accepted.
func (m *Manager) phase2(tid types.TransID, bal Ballot, val Value, acceptors []types.NodeID) error {
	need := quorum(len(acceptors))
	count := func(got map[types.NodeID]*dgram) int {
		n := 0
		for _, r := range got {
			if r.flags&fOK != 0 && r.bal == bal {
				n++
			}
		}
		return n
	}
	replies := m.collect(tid, acceptors, &dgram{op: opP2a, bal: bal, val: val}, opP2b, func(got map[types.NodeID]*dgram) bool {
		return count(got) >= need
	})
	if count(replies) >= need {
		return nil
	}
	return fmt.Errorf("%w: %d/%d accepted at %v", ErrNoQuorum, count(replies), len(acceptors), bal)
}

// learn asks the acceptors whether the outcome is already decided.
func (m *Manager) learn(tid types.TransID, acceptors []types.NodeID) (Value, bool) {
	replies := m.collect(tid, acceptors, &dgram{op: opQuery}, opStatus, func(got map[types.NodeID]*dgram) bool {
		for _, r := range got {
			if r.flags&fDecided != 0 {
				return true
			}
		}
		return false
	})
	for _, r := range replies {
		if r.flags&fDecided != 0 {
			return r.val, true
		}
	}
	return Value{}, false
}

// collect sends req to every peer and gathers one reply (kind replyOp)
// per peer, retransmitting at the reply timeout, until done reports the
// round can stop, every peer has replied, or the overall deadline passes.
// The first transmission is charged as a real datagram; retransmits are
// free, mirroring txn's accounting. Each round gets a fresh nonce that
// acceptors echo in replies: the waiter key includes it, so a stale reply
// from an earlier round cannot mark a peer as answered, and concurrent
// rounds for the same transaction (the coordinator's DecideCommit racing
// the orphan sweeper's ResolveInDoubt) never share a channel.
func (m *Manager) collect(tid types.TransID, peers []types.NodeID, req *dgram, replyOp byte, done func(map[types.NodeID]*dgram) bool) map[types.NodeID]*dgram {
	timeout, retries := m.config()
	m.mu.Lock()
	m.nonceCtr++
	req.nonce = m.nonceCtr
	m.mu.Unlock()
	key := waitKey{tid: tid, op: replyOp, nonce: req.nonce}
	ch := make(chan reply, len(peers)*(retries+2))
	m.mu.Lock()
	m.waiters[key] = ch
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		if m.waiters[key] == ch {
			delete(m.waiters, key)
		}
		m.mu.Unlock()
	}()
	payload := encodeMsg(req)
	got := make(map[types.NodeID]*dgram, len(peers))
	deadline := time.Now().Add(time.Duration(retries+1) * timeout)
	for attempt := 0; ; attempt++ {
		for _, p := range peers {
			if _, ok := got[p]; ok {
				continue
			}
			charge := 0.0
			if attempt == 0 {
				charge = 1
			}
			m.sendPayload(p, tid, payload, charge)
		}
		tick := time.Now().Add(timeout)
		if tick.After(deadline) {
			tick = deadline
		}
		for len(got) < len(peers) {
			wait := time.Until(tick)
			if wait <= 0 {
				break
			}
			select {
			case r := <-ch:
				if r.d.op == replyOp {
					got[r.from] = r.d
				}
				if done != nil && done(got) {
					return got
				}
			case <-time.After(wait):
			}
			if time.Until(tick) <= 0 {
				break
			}
		}
		if len(got) == len(peers) || (done != nil && done(got)) || !time.Now().Before(deadline) {
			return got
		}
	}
}

// broadcast sends one best-effort datagram to every peer.
func (m *Manager) broadcast(tid types.TransID, d *dgram, peers []types.NodeID) {
	payload := encodeMsg(d)
	for _, p := range peers {
		m.sendPayload(p, tid, payload, 1)
	}
}

func (m *Manager) send(peer types.NodeID, tid types.TransID, d *dgram, charge float64) {
	m.sendPayload(peer, tid, encodeMsg(d), charge)
}

// sendPayload delivers one acp datagram. Messages to this node short-
// circuit straight into the handler: a node is routinely both proposer
// and acceptor, and the loopback must work even when the transport has no
// self-addressed path. Loopback carries no datagram charge.
func (m *Manager) sendPayload(peer types.NodeID, tid types.TransID, payload []byte, charge float64) {
	if peer == m.node {
		_, _ = m.handle(m.node, tid, payload)
		return
	}
	if m.cm != nil {
		_ = m.cm.SendDatagram(peer, Service, tid, payload, charge)
	}
}

// --- Acceptor / handler ------------------------------------------------------

// handle is the CM dispatch entry for the acp service.
func (m *Manager) handle(from types.NodeID, tid types.TransID, payload []byte) ([]byte, error) {
	d, err := decodeMsg(payload)
	if err != nil {
		m.tr.Count("acp.bad_message", 1)
		return nil, nil // datagram service: drop, never error the transport
	}
	switch d.op {
	case opP1a:
		m.onP1a(from, tid, d)
	case opP2a:
		m.onP2a(from, tid, d)
	case opDecide:
		m.onDecide(tid, d)
	case opQuery:
		m.onQuery(from, tid, d)
	case opForget:
		m.onForget(tid)
	case opP1b, opP2b, opStatus:
		m.route(from, tid, d)
	}
	return nil, nil
}

// route hands a proposer-bound reply to the waiting collect round. The
// key includes the echoed nonce, so replies to abandoned or concurrent
// rounds find no waiter and are dropped.
func (m *Manager) route(from types.NodeID, tid types.TransID, d *dgram) {
	m.mu.Lock()
	ch := m.waiters[waitKey{tid: tid, op: d.op, nonce: d.nonce}]
	m.mu.Unlock()
	if ch == nil {
		return
	}
	select {
	case ch <- reply{from: from, d: d}:
	default:
	}
}

// entryLocked returns (creating if needed) the state for tid. Caller
// holds m.mu. Past the table bound the oldest decided entry whose
// decision has aged past evictTTL is evicted; a decided entry that was
// never Forgotten is re-logged before it is dropped (so a restart still
// answers for it) and the drop is surfaced loudly — if every acceptor
// sheds such an entry, a still-prepared participant's recovery ballot
// would conclude Abort for a transaction the cluster committed. With no
// TTL-eligible victim the table simply exceeds the bound.
func (m *Manager) entryLocked(tid types.TransID) *entry {
	if e, ok := m.entries[tid]; ok {
		return e
	}
	if len(m.entries) >= maxEntries {
		var victim types.TransID
		var victimE *entry
		var oldest uint64 = ^uint64(0)
		for t, e := range m.entries {
			if e.decided && e.stamp < oldest && time.Since(e.decidedAt) > evictTTL {
				victim, victimE, oldest = t, e, e.stamp
			}
		}
		if victimE != nil {
			delete(m.entries, victim)
			state := appendEntryState(nil, victim, victimE)
			// Unforced and off this goroutine: the entry was already lazily
			// logged at decide time, this write only refreshes it against
			// checkpoint truncation (checkpoints snapshot the in-memory
			// table, which no longer holds it).
			go m.persist(state, false)
			m.tr.Count("acp.evicted_unforgotten", 1)
		} else {
			m.tr.Count("acp.table_overflow", 1)
		}
	}
	m.stamp++
	e := &entry{stamp: m.stamp}
	m.entries[tid] = e
	return e
}

// persist force-logs a snapshot of e taken under m.mu. It is called with
// the lock released — acceptor state is snapshot-encoded under the lock
// and written outside it, so acp.Manager.mu never nests over the
// recovery/WAL stack. Returns false if the state could not be made
// durable, in which case the caller must not reply: volatile state may
// then be *stricter* than disk, which is safe precisely because no
// proposer was told.
func (m *Manager) persist(state []byte, force bool) bool {
	m.mu.Lock()
	logger := m.logger
	m.mu.Unlock()
	if logger == nil {
		return true
	}
	if err := logger.LogACP(state, force); err != nil {
		m.tr.Count("acp.log_failure", 1)
		return false
	}
	return true
}

// onP1a: phase 1a prepare(bal). Promise if bal is the highest seen, and
// report any previously accepted value; reply with our promised ballot
// either way so a rejected proposer learns what to beat. Decided entries
// short-circuit: consensus is over, here is the answer.
func (m *Manager) onP1a(from types.NodeID, tid types.TransID, d *dgram) {
	m.mu.Lock()
	e := m.entryLocked(tid)
	if e.decided {
		rep := &dgram{op: opP1b, flags: fDecided, nonce: d.nonce, bal: d.bal, val: e.dval}
		m.mu.Unlock()
		m.send(from, tid, rep, 0)
		return
	}
	if d.bal.Less(e.promised) {
		rep := &dgram{op: opP1b, nonce: d.nonce, bal: e.promised}
		m.mu.Unlock()
		m.tr.Count("acp.reject", 1)
		m.send(from, tid, rep, 0)
		return
	}
	needLog := e.promised.Less(d.bal)
	e.promised = d.bal
	rep := &dgram{op: opP1b, nonce: d.nonce, bal: d.bal}
	if e.accepted {
		rep.flags |= fAccepted
		rep.abal = e.abal
		rep.val = e.aval
	}
	var state []byte
	if needLog {
		state = appendEntryState(nil, tid, e)
	}
	m.mu.Unlock()
	if needLog && !m.persist(state, true) {
		return
	}
	m.tr.Count("acp.promise", 1)
	m.send(from, tid, rep, 0)
}

// onP2a: phase 2a accept?(bal, val). Accept unless a higher ballot was
// promised. The acceptance is forced to the log before the ack: an acked
// acceptance must survive this node's crash, that is the whole point.
func (m *Manager) onP2a(from types.NodeID, tid types.TransID, d *dgram) {
	m.mu.Lock()
	e := m.entryLocked(tid)
	if d.bal.Less(e.promised) {
		rep := &dgram{op: opP2b, nonce: d.nonce, bal: e.promised}
		m.mu.Unlock()
		m.tr.Count("acp.reject", 1)
		m.send(from, tid, rep, 0)
		return
	}
	needLog := !e.accepted || e.abal.Less(d.bal) || e.promised.Less(d.bal)
	e.promised = d.bal
	e.accepted = true
	e.abal = d.bal
	e.aval = d.val
	var state []byte
	if needLog {
		state = appendEntryState(nil, tid, e)
	}
	m.mu.Unlock()
	if needLog && !m.persist(state, true) {
		return
	}
	m.tr.Count("acp.accept", 1)
	m.send(from, tid, &dgram{op: opP2b, flags: fOK, nonce: d.nonce, bal: d.bal}, 0)
}

// onDecide records the decided value. Logged lazily: losing it costs a
// re-learn or one recovery ballot, never safety.
func (m *Manager) onDecide(tid types.TransID, d *dgram) {
	m.mu.Lock()
	e := m.entryLocked(tid)
	if e.decided {
		m.mu.Unlock()
		return
	}
	e.decided = true
	e.dval = d.val
	e.decidedAt = time.Now()
	state := appendEntryState(nil, tid, e)
	m.mu.Unlock()
	m.persist(state, false)
	m.tr.Count("acp.decide", 1)
}

// onQuery answers a learner: the decided value if known, else "unknown".
// Crucially there is no presumed abort here — an acceptor that has not
// decided says so, and only a recovery ballot may conclude Aborted.
func (m *Manager) onQuery(from types.NodeID, tid types.TransID, d *dgram) {
	m.mu.Lock()
	e, ok := m.entries[tid]
	rep := &dgram{op: opStatus, nonce: d.nonce}
	if ok && e.decided {
		rep.flags = fDecided
		rep.val = e.dval
	}
	m.mu.Unlock()
	m.send(from, tid, rep, 0)
}

// onForget drops a decided entry: every participant has durably applied
// the outcome. Undecided entries are kept — a Forget can only legally
// chase a decision, so one without is stale or hostile.
func (m *Manager) onForget(tid types.TransID) {
	m.mu.Lock()
	if e, ok := m.entries[tid]; ok && e.decided {
		delete(m.entries, tid)
	}
	m.mu.Unlock()
	m.tr.Count("acp.forget", 1)
}

// --- Durability: checkpoint + restore ---------------------------------------

// CheckpointState snapshots the acceptor table for a checkpoint record.
// Entries are packed into one blob up to limit bytes, undecided entries
// first (they are the safety-critical ones and the checkpoint must not
// strand them behind the log's low-water mark); entries that do not fit
// are returned individually for the caller to re-log as RecACP records
// after the checkpoint.
func (m *Manager) CheckpointState(limit int) (blob []byte, overflow [][]byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	// The proposer ballot counter rides first: it must survive reclamation
	// of the RecACP records that originally forced it, or a restarted node
	// could reuse a ballot number.
	if m.balCtr > 0 {
		enc := appendBalCtrState(nil, m.balCtr)
		if len(enc) <= limit {
			blob = append(blob, enc...)
		} else {
			overflow = append(overflow, enc)
		}
	}
	type kv struct {
		tid types.TransID
		e   *entry
	}
	all := make([]kv, 0, len(m.entries))
	for tid, e := range m.entries {
		all = append(all, kv{tid, e})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].e.decided != all[j].e.decided {
			return !all[i].e.decided
		}
		return all[i].e.stamp < all[j].e.stamp
	})
	for _, it := range all {
		enc := appendEntryState(nil, it.tid, it.e)
		if len(blob)+len(enc) <= limit {
			blob = append(blob, enc...)
		} else {
			overflow = append(overflow, enc)
		}
	}
	return blob, overflow
}

// RestoreState replays a checkpoint blob: a concatenation of entry and
// ballot-counter encodings, merged in order-insensitive fashion with
// whatever RecACP records have already been applied.
func (m *Manager) RestoreState(blob []byte) {
	for len(blob) > 0 {
		if n, rest, ok := takeBalCtrState(blob); ok {
			m.restoreBalCtr(n)
			blob = rest
			continue
		}
		tid, e, rest, err := takeEntryState(blob)
		if err != nil {
			m.tr.Count("acp.restore.corrupt", 1)
			return
		}
		m.merge(tid, e)
		blob = rest
	}
}

// RestoreRecord replays one RecACP record body.
func (m *Manager) RestoreRecord(body []byte) {
	if n, rest, ok := takeBalCtrState(body); ok {
		if len(rest) != 0 {
			m.tr.Count("acp.restore.corrupt", 1)
			return
		}
		m.restoreBalCtr(n)
		return
	}
	tid, e, rest, err := takeEntryState(body)
	if err != nil || len(rest) != 0 {
		m.tr.Count("acp.restore.corrupt", 1)
		return
	}
	m.merge(tid, e)
}

// restoreBalCtr folds a durably recorded ballot counter back in; the max
// wins, so replay order is irrelevant.
func (m *Manager) restoreBalCtr(n uint32) {
	m.mu.Lock()
	if m.balCtr < n {
		m.balCtr = n
	}
	m.mu.Unlock()
}

// merge folds a restored entry into the table. The rules make replay
// order irrelevant: decided is sticky, promises take the max, and the
// accepted value at the highest ballot wins — exactly the monotone facts
// the protocol itself maintains.
func (m *Manager) merge(tid types.TransID, in *entry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.entryLocked(tid)
	if in.decided && !e.decided {
		e.decided = true
		e.dval = in.dval
		e.decidedAt = time.Now()
	}
	if e.promised.Less(in.promised) {
		e.promised = in.promised
	}
	if in.accepted && (!e.accepted || e.abal.Less(in.abal)) {
		e.accepted = true
		e.abal = in.abal
		e.aval = in.aval
	}
}

// --- Inspection (tabsctl acp) -------------------------------------------------

// InstanceState is one transaction's acceptor state, for reports.
type InstanceState struct {
	TID        string   `json:"tid"`
	Promised   string   `json:"promised"`
	Accepted   bool     `json:"accepted"`
	AcceptedAt string   `json:"accepted_at,omitempty"`
	Decided    bool     `json:"decided"`
	Outcome    string   `json:"outcome,omitempty"`
	Members    []string `json:"members,omitempty"`
}

// Snapshot returns the acceptor table in stamp order.
func (m *Manager) Snapshot() []InstanceState {
	m.mu.Lock()
	defer m.mu.Unlock()
	type kv struct {
		tid types.TransID
		e   *entry
	}
	all := make([]kv, 0, len(m.entries))
	for tid, e := range m.entries {
		all = append(all, kv{tid, e})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].e.stamp < all[j].e.stamp })
	out := make([]InstanceState, 0, len(all))
	for _, it := range all {
		is := InstanceState{
			TID:      fmt.Sprintf("%s/%d", it.tid.Node, it.tid.Seq),
			Promised: it.e.promised.String(),
			Accepted: it.e.accepted,
			Decided:  it.e.decided,
		}
		val := it.e.aval
		if it.e.accepted {
			is.AcceptedAt = it.e.abal.String()
		}
		if it.e.decided {
			val = it.e.dval
			is.Outcome = val.Outcome().String()
		}
		for _, mem := range val.Members {
			vote := "prepared"
			if mem.Vote != VotePrepared {
				vote = "aborted"
			}
			is.Members = append(is.Members, fmt.Sprintf("%s=%s", mem.Node, vote))
		}
		out = append(out, is)
	}
	return out
}
