package acp

import (
	"encoding/binary"
	"errors"

	"tabs/internal/comm"
	"tabs/internal/types"
)

// Acceptor message codec. Messages ride the Communication Manager's
// zero-alloc envelope codec as datagrams on the "acp" service; this file
// encodes only the acp payload, composed from the same length-prefixed
// framing primitives the envelope itself uses (comm.AppendLen*/TakeLen*).
//
// One layout serves every operation — the messages are tiny and a single
// strict decoder is easier to harden than eight:
//
//	op byte | flags byte | nonce u32 | bal(u32 N, lenstr node) |
//	abal(u32, lenstr) | value(u16 count, count x (lenstr node, vote byte))
//
// nonce identifies one proposer round: requests carry the round's nonce
// and acceptors echo it in replies, so a proposer's collect() only counts
// replies to the round it is running — a stale reply from an abandoned
// earlier round, or a reply bound for a concurrent round on the same
// transaction, cannot be mistaken for an answer.

// Operations on the acp service.
const (
	opP1a    byte = iota + 1 // phase 1a: prepare(bal)
	opP1b                    // phase 1b: promise(bal) [+ accepted value] [+ decided]
	opP2a                    // phase 2a: accept?(bal, val)
	opP2b                    // phase 2b: accepted(bal) / rejected(promised)
	opDecide                 // decision broadcast (lazily logged)
	opQuery                  // learner asks for a decided outcome
	opStatus                 // reply to opQuery
	opForget                 // all participants durable; drop the entry
)

// Flag bits.
const (
	fAccepted byte = 1 << iota // p1b carries an accepted value in (abal, val)
	fDecided                   // p1b/status: val is the decided value
	fOK                        // p2b: accepted; clear = rejected, bal = promised
)

// errBadMsg reports a malformed acp payload; the datagram is dropped.
var errBadMsg = errors.New("acp: malformed message")

// dgram is the decoded form of one acp datagram.
type dgram struct {
	op    byte
	flags byte
	nonce uint32 // round correlator; replies echo the request's nonce
	bal   Ballot
	abal  Ballot
	val   Value
}

func appendBallot(dst []byte, b Ballot) []byte {
	dst = binary.BigEndian.AppendUint32(dst, b.N)
	return comm.AppendLenString(dst, string(b.Node))
}

func takeBallot(b []byte) (Ballot, []byte, error) {
	if len(b) < 4 {
		return Ballot{}, nil, errBadMsg
	}
	bal := Ballot{N: binary.BigEndian.Uint32(b)}
	node, rest, err := comm.TakeLenString(b[4:])
	if err != nil {
		return Ballot{}, nil, errBadMsg
	}
	bal.Node = types.NodeID(node)
	return bal, rest, nil
}

func appendValue(dst []byte, v Value) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(v.Members)))
	for _, m := range v.Members {
		dst = comm.AppendLenString(dst, string(m.Node))
		dst = append(dst, m.Vote)
	}
	return dst
}

func takeValue(b []byte) (Value, []byte, error) {
	if len(b) < 2 {
		return Value{}, nil, errBadMsg
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	var v Value
	if n > 0 {
		v.Members = make([]Member, 0, n)
	}
	for i := 0; i < n; i++ {
		node, rest, err := comm.TakeLenString(b)
		if err != nil || len(rest) < 1 {
			return Value{}, nil, errBadMsg
		}
		v.Members = append(v.Members, Member{Node: types.NodeID(node), Vote: rest[0]})
		b = rest[1:]
	}
	return v, b, nil
}

// encodeMsg serializes d into a fresh payload buffer.
func encodeMsg(d *dgram) []byte {
	b := make([]byte, 0, 32+24*len(d.val.Members))
	b = append(b, d.op, d.flags)
	b = binary.BigEndian.AppendUint32(b, d.nonce)
	b = appendBallot(b, d.bal)
	b = appendBallot(b, d.abal)
	b = appendValue(b, d.val)
	return b
}

// decodeMsg parses one acp payload; strict, including trailing bytes.
func decodeMsg(b []byte) (*dgram, error) {
	if len(b) < 2 {
		return nil, errBadMsg
	}
	d := &dgram{op: b[0], flags: b[1]}
	b = b[2:]
	if len(b) < 4 {
		return nil, errBadMsg
	}
	d.nonce = binary.BigEndian.Uint32(b)
	b = b[4:]
	var err error
	if d.bal, b, err = takeBallot(b); err != nil {
		return nil, err
	}
	if d.abal, b, err = takeBallot(b); err != nil {
		return nil, err
	}
	if d.val, b, err = takeValue(b); err != nil {
		return nil, err
	}
	if len(b) != 0 {
		return nil, errBadMsg
	}
	return d, nil
}

// --- Durable entry state ----------------------------------------------------
//
// An acceptor's per-transaction state is persisted two ways with one
// codec: as the body of a RecACP log record (forced before any promise or
// acceptance is sent, lazily after a decision), and concatenated into the
// opaque ACP blob of a checkpoint record so reclamation cannot strand
// state behind the log's low-water mark. Entries are self-contained (TID
// embedded) and the restore merge is order-insensitive, so replaying any
// interleaving of checkpoint blob and later records converges.

func appendTID(dst []byte, tid types.TransID) []byte {
	dst = comm.AppendLenString(dst, string(tid.Node))
	dst = binary.BigEndian.AppendUint64(dst, tid.Seq)
	dst = comm.AppendLenString(dst, string(tid.RootNode))
	return binary.BigEndian.AppendUint64(dst, tid.RootSeq)
}

func takeTID(b []byte) (types.TransID, []byte, error) {
	var tid types.TransID
	node, b, err := comm.TakeLenString(b)
	if err != nil || len(b) < 8 {
		return tid, nil, errBadMsg
	}
	tid.Node = types.NodeID(node)
	tid.Seq = binary.BigEndian.Uint64(b)
	root, b, err := comm.TakeLenString(b[8:])
	if err != nil || len(b) < 8 {
		return tid, nil, errBadMsg
	}
	tid.RootNode = types.NodeID(root)
	tid.RootSeq = binary.BigEndian.Uint64(b)
	return tid, b[8:], nil
}

// balCtrMark prefixes a proposer ballot-counter state blob in the RecACP
// stream and checkpoint blob. Entry-state blobs start with a TID whose
// leading field is a length-prefixed node name; 0xFFFF is impossible as
// that length (node names are bounded far below it by the WAL's 255-byte
// name limit), so the two encodings share the stream unambiguously.
const balCtrMark = 0xFFFF

// appendBalCtrState serializes the highest recovery ballot number this
// node has used as proposer. Forced to the log before the ballot's first
// use, it guarantees a restarted node never reuses a ballot number — two
// values accepted at one ballot would let later ballots learn conflicting
// decisions.
func appendBalCtrState(dst []byte, n uint32) []byte {
	dst = binary.BigEndian.AppendUint16(dst, balCtrMark)
	return binary.BigEndian.AppendUint32(dst, n)
}

// takeBalCtrState reports whether b starts with a ballot-counter blob
// and, if so, parses it and returns the remainder.
func takeBalCtrState(b []byte) (uint32, []byte, bool) {
	if len(b) < 6 || binary.BigEndian.Uint16(b) != balCtrMark {
		return 0, b, false
	}
	return binary.BigEndian.Uint32(b[2:6]), b[6:], true
}

// appendEntryState serializes one acceptor entry (TID included).
func appendEntryState(dst []byte, tid types.TransID, e *entry) []byte {
	dst = appendTID(dst, tid)
	var flags byte
	if e.accepted {
		flags |= fAccepted
	}
	if e.decided {
		flags |= fDecided
	}
	dst = append(dst, flags)
	dst = appendBallot(dst, e.promised)
	dst = appendBallot(dst, e.abal)
	dst = appendValue(dst, e.aval)
	return appendValue(dst, e.dval)
}

// takeEntryState parses one serialized entry, returning the remainder so
// callers can walk a concatenated blob.
func takeEntryState(b []byte) (types.TransID, *entry, []byte, error) {
	tid, b, err := takeTID(b)
	if err != nil {
		return tid, nil, nil, err
	}
	if len(b) < 1 {
		return tid, nil, nil, errBadMsg
	}
	flags := b[0]
	e := &entry{accepted: flags&fAccepted != 0, decided: flags&fDecided != 0}
	b = b[1:]
	if e.promised, b, err = takeBallot(b); err != nil {
		return tid, nil, nil, err
	}
	if e.abal, b, err = takeBallot(b); err != nil {
		return tid, nil, nil, err
	}
	if e.aval, b, err = takeValue(b); err != nil {
		return tid, nil, nil, err
	}
	if e.dval, b, err = takeValue(b); err != nil {
		return tid, nil, nil, err
	}
	return tid, e, b, nil
}
