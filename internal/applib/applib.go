// Package applib is the TABS transaction management library (paper
// §3.1.2, Table 3-2): the standard interface applications use to control
// transaction execution. Applications initiate transactions with it and
// then call data servers to perform operations on objects.
package applib

import (
	"errors"
	"fmt"

	"tabs/internal/txn"
	"tabs/internal/types"
)

// TransactionIsAborted is the library's rendering of the paper's
// TransactionIsAborted exception: the transaction was aborted by some
// other process (Table 3-2).
var TransactionIsAborted = errors.New("applib: transaction is aborted")

// Lib is an application's handle on the Transaction Manager of its node.
type Lib struct {
	tm *txn.Manager
}

// New returns the library bound to a Transaction Manager.
func New(tm *txn.Manager) *Lib { return &Lib{tm: tm} }

// BeginTransaction creates a subtransaction of the specified transaction;
// the null TransID creates a new top-level transaction (Table 3-2).
func (l *Lib) BeginTransaction(parent types.TransID) (types.TransID, error) {
	return l.tm.Begin(parent)
}

// EndTransaction initiates commit and reports whether the transaction
// (tree) committed (Table 3-2).
func (l *Lib) EndTransaction(tid types.TransID) (bool, error) {
	return l.tm.End(tid)
}

// AbortTransaction forces the transaction to abort (Table 3-2).
func (l *Lib) AbortTransaction(tid types.TransID) error {
	return l.tm.Abort(tid)
}

// CheckAborted returns TransactionIsAborted if the transaction has been
// aborted by some other process — the exception-raising check of
// Table 3-2, rendered as an error for Go.
func (l *Lib) CheckAborted(tid types.TransID) error {
	if l.tm.IsAborted(tid) {
		return fmt.Errorf("%w: %v", TransactionIsAborted, tid)
	}
	return nil
}

// Run executes proc inside a new top-level transaction: commit on nil,
// abort on error. It is the common application idiom built from the
// Table 3-2 routines.
func (l *Lib) Run(proc func(tid types.TransID) error) error {
	tid, err := l.BeginTransaction(types.NilTransID)
	if err != nil {
		return err
	}
	if err := proc(tid); err != nil {
		if aerr := l.AbortTransaction(tid); aerr != nil {
			return fmt.Errorf("applib: abort after %v failed: %w", err, aerr)
		}
		return err
	}
	committed, err := l.EndTransaction(tid)
	if err != nil {
		return err
	}
	if !committed {
		return fmt.Errorf("applib: transaction %v aborted at commit", tid)
	}
	return nil
}
