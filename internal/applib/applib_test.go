package applib_test

import (
	"errors"
	"testing"

	"tabs/internal/applib"
	"tabs/internal/disk"
	"tabs/internal/kernel"
	"tabs/internal/recovery"
	"tabs/internal/txn"
	"tabs/internal/types"
	"tabs/internal/wal"
)

func newLib(t *testing.T) (*applib.Lib, *txn.Manager) {
	t.Helper()
	d := disk.New(disk.DefaultGeometry(256))
	k := kernel.New(kernel.Config{Disk: d, PoolPages: 16})
	lg, err := wal.Open(wal.Config{Disk: d, Base: 0, Sectors: 64})
	if err != nil {
		t.Fatal(err)
	}
	rm := recovery.New(recovery.Config{Log: lg, Kernel: k})
	tm := txn.New("app", rm, nil, nil)
	return applib.New(tm), tm
}

func TestBeginEnd(t *testing.T) {
	lib, _ := newLib(t)
	tid, err := lib.BeginTransaction(types.NilTransID)
	if err != nil {
		t.Fatal(err)
	}
	if tid.IsNil() || !tid.IsTopLevel() {
		t.Errorf("tid %v", tid)
	}
	ok, err := lib.EndTransaction(tid)
	if err != nil || !ok {
		t.Fatalf("end: ok=%v err=%v", ok, err)
	}
}

func TestBeginSubtransaction(t *testing.T) {
	lib, _ := newLib(t)
	top, _ := lib.BeginTransaction(types.NilTransID)
	sub, err := lib.BeginTransaction(top)
	if err != nil {
		t.Fatal(err)
	}
	if sub.IsTopLevel() || sub.TopLevel() != top {
		t.Errorf("sub %v", sub)
	}
	if ok, err := lib.EndTransaction(sub); err != nil || !ok {
		t.Fatalf("sub end: %v", err)
	}
	if ok, err := lib.EndTransaction(top); err != nil || !ok {
		t.Fatalf("top end: %v", err)
	}
}

func TestAbortAndCheckAborted(t *testing.T) {
	lib, _ := newLib(t)
	tid, _ := lib.BeginTransaction(types.NilTransID)
	if err := lib.CheckAborted(tid); err != nil {
		t.Errorf("live transaction: %v", err)
	}
	if err := lib.AbortTransaction(tid); err != nil {
		t.Fatal(err)
	}
	err := lib.CheckAborted(tid)
	if !errors.Is(err, applib.TransactionIsAborted) {
		t.Errorf("want TransactionIsAborted, got %v", err)
	}
}

func TestRunCommits(t *testing.T) {
	lib, tm := newLib(t)
	var inside types.TransID
	if err := lib.Run(func(tid types.TransID) error {
		inside = tid
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if tm.Status(inside) != types.StatusCommitted {
		t.Errorf("status %v", tm.Status(inside))
	}
}

func TestRunAbortsOnError(t *testing.T) {
	lib, tm := newLib(t)
	boom := errors.New("boom")
	var inside types.TransID
	err := lib.Run(func(tid types.TransID) error {
		inside = tid
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	if tm.Status(inside) != types.StatusAborted {
		t.Errorf("status %v", tm.Status(inside))
	}
}
