package bench

import (
	"fmt"
	"strings"
	"time"

	"tabs/internal/core"
	"tabs/internal/servers/accum"
	"tabs/internal/servers/intarray"
	"tabs/internal/types"
)

// This file implements the ablation studies DESIGN.md calls out — the
// design-choice comparisons the paper names as open work (§7: "we plan to
// empirically compare the relative merits of value and operation logging")
// or motivates qualitatively (§2.1.3: type-specific lock modes "obtain
// increased concurrency").

// LoggingAblation compares value logging and operation logging for the
// same workload: n updates of one 8-byte counter, one transaction each.
type LoggingAblation struct {
	Updates        int
	ValueLogBytes  int64 // log growth under value logging (intarray)
	OpLogBytes     int64 // log growth under operation logging (accum)
	ValuePasses    int   // recovery passes after a crash
	OpPasses       int
	ValueElapsedNs int64
	OpElapsedNs    int64
}

// MeasureLoggingAblation runs the comparison.
func MeasureLoggingAblation(updates int) (*LoggingAblation, error) {
	if updates <= 0 {
		updates = 100
	}
	out := &LoggingAblation{Updates: updates}

	// Value logging: the integer array logs old/new values.
	{
		c, err := core.NewCluster(core.DefaultClusterOptions(), "v")
		if err != nil {
			return nil, err
		}
		n := c.Node("v")
		if _, err := intarray.Attach(n, "arr", 1, 16, time.Second); err != nil {
			return nil, err
		}
		if _, err := n.Recover(); err != nil {
			return nil, err
		}
		arr := intarray.NewClient(n, "v", "arr")
		before := n.Log.SpaceUsed()
		start := time.Now()
		for i := 0; i < updates; i++ {
			if err := n.App.Run(func(tid types.TransID) error {
				return arr.Set(tid, 1, int64(i))
			}); err != nil {
				return nil, err
			}
		}
		out.ValueElapsedNs = time.Since(start).Nanoseconds()
		out.ValueLogBytes = n.Log.SpaceUsed() - before
		c.Crash("v")
		n2, err := c.Reboot("v")
		if err != nil {
			return nil, err
		}
		if _, err := intarray.Attach(n2, "arr", 1, 16, time.Second); err != nil {
			return nil, err
		}
		report, err := n2.Recover()
		if err != nil {
			return nil, err
		}
		out.ValuePasses = report.Passes
		c.Shutdown()
	}

	// Operation logging: the accumulator logs redo/undo scripts.
	{
		c, err := core.NewCluster(core.DefaultClusterOptions(), "o")
		if err != nil {
			return nil, err
		}
		n := c.Node("o")
		if _, err := accum.Attach(n, "acc", 1, 16, time.Second); err != nil {
			return nil, err
		}
		if _, err := n.Recover(); err != nil {
			return nil, err
		}
		acc := accum.NewClient(n, "o", "acc")
		before := n.Log.SpaceUsed()
		start := time.Now()
		for i := 0; i < updates; i++ {
			if err := n.App.Run(func(tid types.TransID) error {
				return acc.Increment(tid, 1, 1)
			}); err != nil {
				return nil, err
			}
		}
		out.OpElapsedNs = time.Since(start).Nanoseconds()
		out.OpLogBytes = n.Log.SpaceUsed() - before
		c.Crash("o")
		n2, err := c.Reboot("o")
		if err != nil {
			return nil, err
		}
		if _, err := accum.Attach(n2, "acc", 1, 16, time.Second); err != nil {
			return nil, err
		}
		report, err := n2.Recover()
		if err != nil {
			return nil, err
		}
		out.OpPasses = report.Passes
		c.Shutdown()
	}
	return out, nil
}

// LockingAblation compares read/write locking with type-specific
// increment locking under deliberate contention: k concurrent
// transactions all update one cell and stay open until all have updated.
type LockingAblation struct {
	Transactions int
	// RW: plain write locks (integer array): all but one transaction must
	// wait or time out.
	RWGranted  int
	RWTimeouts int64
	RWWaits    int64
	// TS: type-specific increment locks (accumulator): all proceed.
	TSGranted  int
	TSTimeouts int64
	TSWaits    int64
}

// MeasureLockingAblation runs the comparison with k concurrent holders.
func MeasureLockingAblation(k int) (*LockingAblation, error) {
	if k <= 1 {
		k = 4
	}
	out := &LockingAblation{Transactions: k}

	// Read/write locking (integer array).
	{
		c, err := core.NewCluster(core.DefaultClusterOptions(), "rw")
		if err != nil {
			return nil, err
		}
		n := c.Node("rw")
		if _, err := intarray.Attach(n, "arr", 1, 16, 100*time.Millisecond); err != nil {
			return nil, err
		}
		if _, err := n.Recover(); err != nil {
			return nil, err
		}
		arr := intarray.NewClient(n, "rw", "arr")
		tids := make([]types.TransID, k)
		for i := range tids {
			tids[i], err = n.App.BeginTransaction(types.NilTransID)
			if err != nil {
				return nil, err
			}
		}
		results := make(chan error, k)
		for i := range tids {
			go func(tid types.TransID) {
				results <- arr.Set(tid, 1, 42)
			}(tids[i])
		}
		for range tids {
			if err := <-results; err == nil {
				out.RWGranted++
			}
		}
		if srv, ok := n.Server("arr"); ok {
			s := srv.Locks().Stats()
			out.RWTimeouts, out.RWWaits = s.Timeouts, s.Waits
		}
		for _, tid := range tids {
			_ = n.App.AbortTransaction(tid)
		}
		c.Shutdown()
	}

	// Type-specific increment locking (accumulator).
	{
		c, err := core.NewCluster(core.DefaultClusterOptions(), "ts")
		if err != nil {
			return nil, err
		}
		n := c.Node("ts")
		if _, err := accum.Attach(n, "acc", 1, 16, 100*time.Millisecond); err != nil {
			return nil, err
		}
		if _, err := n.Recover(); err != nil {
			return nil, err
		}
		acc := accum.NewClient(n, "ts", "acc")
		tids := make([]types.TransID, k)
		for i := range tids {
			tids[i], err = n.App.BeginTransaction(types.NilTransID)
			if err != nil {
				return nil, err
			}
		}
		results := make(chan error, k)
		for i := range tids {
			go func(tid types.TransID) {
				results <- acc.Increment(tid, 1, 1)
			}(tids[i])
		}
		for range tids {
			if err := <-results; err == nil {
				out.TSGranted++
			}
		}
		if srv, ok := n.Server("acc"); ok {
			s := srv.Locks().Stats()
			out.TSTimeouts, out.TSWaits = s.Timeouts, s.Waits
		}
		for _, tid := range tids {
			_, _ = n.App.EndTransaction(tid)
		}
		c.Shutdown()
	}
	return out, nil
}

// FormatAblations renders both ablations.
func FormatAblations(lg *LoggingAblation, lk *LockingAblation) string {
	var b strings.Builder
	b.WriteString("Ablation: value vs. operation logging (paper §2.1.3, §7)\n")
	fmt.Fprintf(&b, "  %d single-cell updates, one transaction each\n", lg.Updates)
	fmt.Fprintf(&b, "  %-20s %12s %14s %10s\n", "technique", "log bytes", "bytes/update", "recovery")
	fmt.Fprintf(&b, "  %-20s %12d %14.1f %7d pass\n", "value logging", lg.ValueLogBytes, float64(lg.ValueLogBytes)/float64(lg.Updates), lg.ValuePasses)
	fmt.Fprintf(&b, "  %-20s %12d %14.1f %7d pass\n", "operation logging", lg.OpLogBytes, float64(lg.OpLogBytes)/float64(lg.Updates), lg.OpPasses)
	b.WriteString("  (operation records trade smaller multi-page updates and more concurrency\n")
	b.WriteString("   for a three-pass recovery; with 8-byte values the records are similar.)\n\n")

	b.WriteString("Ablation: read/write vs. type-specific locking (paper §2.1.3)\n")
	fmt.Fprintf(&b, "  %d concurrent transactions updating one cell, all held open\n", lk.Transactions)
	fmt.Fprintf(&b, "  %-24s %8s %8s %9s\n", "locking", "granted", "waits", "timeouts")
	fmt.Fprintf(&b, "  %-24s %8d %8d %9d\n", "read/write (exclusive)", lk.RWGranted, lk.RWWaits, lk.RWTimeouts)
	fmt.Fprintf(&b, "  %-24s %8d %8d %9d\n", "type-specific increment", lk.TSGranted, lk.TSWaits, lk.TSTimeouts)
	b.WriteString("  (commuting increment locks admit every transaction at once; exclusive\n")
	b.WriteString("   write locks serialize them behind time-outs.)\n")
	return b.String()
}
