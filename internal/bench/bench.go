// Package bench implements the paper's Section 5 performance methodology:
// the fourteen benchmark transactions of Tables 5-2 and 5-4, the primitive
// counting they are analyzed with, and the projections of Section 5.3.
//
// The benchmarks are deliberately "as simple as possible consistent with
// their forming a basis for estimating the performance of other
// transactions" (§5.1): read or write transactions against integer array
// servers, local and remote, with no paging, sequential paging, or random
// paging. Each run instruments every node's primitive operations in two
// scopes — pre-commit (Table 5-2) and commit (Table 5-3) — and multiplies
// the counts by a cost model to regenerate the "System Time Predicted by
// Primitives" column of Table 5-4.
package bench

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"tabs/internal/core"
	"tabs/internal/servers/intarray"
	"tabs/internal/simclock"
	"tabs/internal/stats"
	"tabs/internal/types"
)

// Paging selects the benchmark's access pattern.
type Paging int

// Access patterns of the paper's benchmarks.
const (
	NoPaging Paging = iota
	SeqPaging
	RandomPaging
)

// String names the paging mode as the paper abbreviates it.
func (p Paging) String() string {
	switch p {
	case SeqPaging:
		return "Seq. Paging"
	case RandomPaging:
		return "Random Paging"
	default:
		return "No Paging"
	}
}

// Benchmark describes one benchmark transaction shape.
type Benchmark struct {
	// Name is the paper's row label.
	Name string
	// LocalOps and RemoteOps give the operation count on the local node
	// and on each remote node (len(RemoteOps) = number of remote nodes).
	LocalOps  int
	RemoteOps []int
	// Write selects update transactions; otherwise read-only.
	Write bool
	// Paging selects the access pattern on every node.
	Paging Paging
}

// Nodes returns how many nodes the benchmark involves.
func (b Benchmark) Nodes() int { return 1 + len(b.RemoteOps) }

// Paper14 returns the fourteen benchmarks of Table 5-4, in table order.
func Paper14() []Benchmark {
	return []Benchmark{
		{Name: "1 Local Read, No Paging", LocalOps: 1},
		{Name: "5 Local Read, No Paging", LocalOps: 5},
		{Name: "1 Local Read, Seq. Paging", LocalOps: 1, Paging: SeqPaging},
		{Name: "1 Local Read, Random Paging", LocalOps: 1, Paging: RandomPaging},
		{Name: "1 Local Write, No Paging", LocalOps: 1, Write: true},
		{Name: "5 Local Write, No Paging", LocalOps: 5, Write: true},
		{Name: "1 Local Write, Seq. Paging", LocalOps: 1, Write: true, Paging: SeqPaging},
		{Name: "1 Lcl Rd, 1 Rem Rd, No Page", LocalOps: 1, RemoteOps: []int{1}},
		{Name: "1 Lcl Rd, 5 Rem Rd, No Page", LocalOps: 1, RemoteOps: []int{5}},
		{Name: "1 Lcl Rd, 1 Rem Rd, Seq. Page", LocalOps: 1, RemoteOps: []int{1}, Paging: SeqPaging},
		{Name: "1 Lcl Wr, 1 Rem Wr, No Page", LocalOps: 1, RemoteOps: []int{1}, Write: true},
		{Name: "1 Lcl Wr, 1 Rem Wr, Seq. Page", LocalOps: 1, RemoteOps: []int{1}, Write: true, Paging: SeqPaging},
		{Name: "1 Lcl Rd, 1 Rem Rd, 1 Rem Rd, NP", LocalOps: 1, RemoteOps: []int{1, 1}},
		{Name: "1 Lcl Wr, 1 Rem Wr, 1 Rem Wr, NP", LocalOps: 1, RemoteOps: []int{1, 1}, Write: true},
	}
}

// Array geometry for the paging benchmarks: the paper's array is 5000
// pages, "more than three times the available physical memory" (§5.1).
const (
	ArrayPages   = 5000
	PoolPages    = 1500
	cellsPerPage = types.PageSize / intarray.CellSize
	ArrayCells   = ArrayPages * cellsPerPage
)

// Env is a benchmark environment: up to three nodes, an integer array
// server on each.
type Env struct {
	Cluster *core.Cluster
	nodes   []types.NodeID
	clients []*intarray.Client // index 0 = local
	seqPage []uint32           // per-node cursor for sequential paging
	rng     *rand.Rand
}

// NewEnv boots a cluster of n nodes with one array server each, sized for
// the paging benchmarks.
func NewEnv(n int) (*Env, error) { return NewEnvWith(n, false) }

// NewEnvWith is NewEnv with the log's group commit optionally disabled —
// one synchronous Stable Storage Write per force, the paper's original
// behavior, for faithful Table 5-2/5-3 counts under concurrent load. (The
// sequential Section 5 benchmarks produce identical counts either way: a
// lone committer always leads its own batch of one.)
func NewEnvWith(n int, disableGroupCommit bool) (*Env, error) {
	names := []types.NodeID{"node1", "node2", "node3"}[:n]
	opts := core.ClusterOptions{
		DiskSectors: ArrayPages + 4096,
		LogSectors:  2048,
		PoolPages:   PoolPages,
		// Checkpoints would perturb steady-state counts; keep them rare.
		CheckpointEvery:    1 << 30,
		LockTimeout:        5 * time.Second,
		DisableGroupCommit: disableGroupCommit,
	}
	cluster, err := core.NewCluster(opts, names...)
	if err != nil {
		return nil, err
	}
	env := &Env{Cluster: cluster, nodes: names, seqPage: make([]uint32, n), rng: rand.New(rand.NewSource(42))}
	for _, name := range names {
		node := cluster.Node(name)
		if _, err := intarray.Attach(node, "array", 1, ArrayCells, 5*time.Second); err != nil {
			return nil, err
		}
		if _, err := node.Recover(); err != nil {
			return nil, err
		}
		env.clients = append(env.clients, intarray.NewClient(cluster.Node(names[0]), name, "array"))
	}
	return env, nil
}

// Close shuts the environment down.
func (e *Env) Close() { e.Cluster.Shutdown() }

// Local returns the local (application) node.
func (e *Env) Local() *core.Node { return e.Cluster.Node(e.nodes[0]) }

// cell picks the array cell for one operation under the paging mode on
// node idx. The no-paging cell is fixed (and pre-warmed); sequential
// paging advances one page per transaction, independently per node, so
// each node's disk sees a sequential fault stream as the paper's per-node
// arrays did; random paging draws a page at random.
func (e *Env) cell(idx int, p Paging) uint32 {
	switch p {
	case SeqPaging:
		e.seqPage[idx] = (e.seqPage[idx] + 1) % ArrayPages
		return e.seqPage[idx]*cellsPerPage + 1
	case RandomPaging:
		return uint32(e.rng.Intn(ArrayPages))*cellsPerPage + 1
	default:
		return 1
	}
}

// RunOnce executes one benchmark transaction and returns whether it
// committed.
func (e *Env) RunOnce(b Benchmark) error {
	if b.Nodes() > len(e.clients) {
		return fmt.Errorf("bench: %q needs %d nodes, environment has %d", b.Name, b.Nodes(), len(e.clients))
	}
	local := e.Local()
	reg := e.Cluster.Registry
	tid, err := local.App.BeginTransaction(types.NilTransID)
	if err != nil {
		return err
	}
	do := func(idx int, client *intarray.Client, ops int) error {
		for i := 0; i < ops; i++ {
			cell := e.cell(idx, b.Paging)
			if b.Write {
				if err := client.Set(tid, cell, int64(i)+1); err != nil {
					return err
				}
			} else {
				if _, err := client.Get(tid, cell); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := do(0, e.clients[0], b.LocalOps); err != nil {
		_ = local.App.AbortTransaction(tid)
		return err
	}
	for r, ops := range b.RemoteOps {
		if err := do(1+r, e.clients[1+r], ops); err != nil {
			_ = local.App.AbortTransaction(tid)
			return err
		}
	}
	// Everything from here is the commit protocol (Table 5-3 scope).
	reg.SetPhaseAll(stats.Commit)
	committed, err := local.App.EndTransaction(tid)
	reg.SetPhaseAll(stats.PreCommit)
	if err != nil {
		return err
	}
	if !committed {
		return fmt.Errorf("bench: %q transaction aborted", b.Name)
	}
	return nil
}

// Result is one benchmark's measurement.
type Result struct {
	Benchmark Benchmark
	// PreCommit and Commit are per-transaction primitive counts summed
	// over every node, averaged across iterations.
	PreCommit stats.Counts
	Commit    stats.Counts
	// KernelSmall is the portion of the small-message count that belongs
	// to the kernel pager protocol (per transaction); the Improved TABS
	// Architecture projection eliminates exactly these (§5.3).
	KernelSmall float64
	// WallNs is the real (Go implementation) time per transaction.
	WallNs float64
	// Iterations actually measured.
	Iterations int
}

// Total returns pre-commit plus commit counts.
func (r Result) Total() stats.Counts { return r.PreCommit.Add(r.Commit) }

// PredictMs applies the paper's prediction: counts × primitive times.
func (r Result) PredictMs(m *simclock.CostModel) float64 {
	return r.Total().Predict(m)
}

// Measure runs b for iters transactions (after warm-up) and returns the
// averaged counts. Warm-up performs the benchmark once to populate the
// buffer pool and session state, then counters reset — matching the
// paper's discarding of starting transients (§5.2).
func (e *Env) Measure(b Benchmark, iters int) (Result, error) {
	if iters <= 0 {
		iters = 10
	}
	// Warm-up discards starting transients (§5.2). Paging benchmarks must
	// reach steady state — the buffer pool full, evictions (and for write
	// benchmarks, dirty-page steals with their pager-protocol traffic)
	// happening every transaction — so they warm until the pool has
	// turned over.
	warm := 1
	if b.Paging != NoPaging {
		warm = PoolPages + 64
	}
	for i := 0; i < warm; i++ {
		if err := e.RunOnce(b); err != nil {
			return Result{}, fmt.Errorf("bench: warm-up of %q: %w", b.Name, err)
		}
	}
	e.Cluster.Registry.ResetAll()
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := e.RunOnce(b); err != nil {
			return Result{}, fmt.Errorf("bench: iteration %d of %q: %w", i, b.Name, err)
		}
	}
	elapsed := time.Since(start)
	pre := e.Cluster.Registry.TotalCounts(stats.PreCommit).Scale(1 / float64(iters))
	com := e.Cluster.Registry.TotalCounts(stats.Commit).Scale(1 / float64(iters))
	var kernelSmall float64
	for _, phase := range []stats.Phase{stats.PreCommit, stats.Commit} {
		for name, counts := range e.Cluster.Registry.NamedCounts(phase) {
			if strings.HasSuffix(name, "/kernel") {
				kernelSmall += counts[simclock.SmallMsg]
			}
		}
	}
	return Result{
		Benchmark:   b,
		PreCommit:   pre,
		Commit:      com,
		KernelSmall: kernelSmall / float64(iters),
		WallNs:      float64(elapsed.Nanoseconds()) / float64(iters),
		Iterations:  iters,
	}, nil
}

// MeasureAll measures every benchmark that fits the environment's node
// count.
func (e *Env) MeasureAll(iters int) ([]Result, error) {
	var out []Result
	for _, b := range Paper14() {
		if b.Nodes() > len(e.clients) {
			continue
		}
		r, err := e.Measure(b, iters)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
