package bench

import (
	"testing"

	"tabs/internal/simclock"
	"tabs/internal/stats"
)

func TestPaper14NamesMatchReferenceTables(t *testing.T) {
	for _, b := range Paper14() {
		if _, ok := PaperTable54[b.Name]; !ok {
			t.Errorf("benchmark %q missing from PaperTable54", b.Name)
		}
		if _, ok := PaperTable52Counts[b.Name]; !ok {
			t.Errorf("benchmark %q missing from PaperTable52Counts", b.Name)
		}
	}
	if len(Paper14()) != 14 {
		t.Errorf("Paper14 has %d benchmarks", len(Paper14()))
	}
}

func TestCommitClass(t *testing.T) {
	cases := map[string]Benchmark{
		"1 Node, Read Only": {LocalOps: 1},
		"1 Node, Write":     {LocalOps: 1, Write: true},
		"2 Node, Read Only": {LocalOps: 1, RemoteOps: []int{1}},
		"3 Node, Write":     {LocalOps: 1, RemoteOps: []int{1, 1}, Write: true},
	}
	for want, b := range cases {
		if got := CommitClass(b); got != want {
			t.Errorf("CommitClass(%+v) = %q, want %q", b, got, want)
		}
	}
}

func TestImprovedCountsDropKernelMessages(t *testing.T) {
	var total stats.Counts
	total[simclock.SmallMsg] = 10
	total[simclock.Datagram] = 4
	total[simclock.StableWrite] = 3
	b := Benchmark{Name: "x", LocalOps: 1, RemoteOps: []int{1}, Write: true}
	improved := improvedCounts(total, 4, b)
	if improved[simclock.SmallMsg] != 6 {
		t.Errorf("small msgs %v", improved[simclock.SmallMsg])
	}
	// 2-node write: commit round (1 datagram) + ack (1) leave the path;
	// one participant force overlaps.
	if improved[simclock.Datagram] != 2 {
		t.Errorf("datagrams %v", improved[simclock.Datagram])
	}
	if improved[simclock.StableWrite] != 2 {
		t.Errorf("stable writes %v", improved[simclock.StableWrite])
	}
	// Read-only benchmarks keep their commit counts.
	ro := Benchmark{Name: "y", LocalOps: 1, RemoteOps: []int{1}}
	improvedRO := improvedCounts(total, 0, ro)
	if improvedRO[simclock.Datagram] != 4 {
		t.Errorf("read-only datagrams %v", improvedRO[simclock.Datagram])
	}
}

func TestProjectComposesColumns(t *testing.T) {
	var pre, com stats.Counts
	pre[simclock.DataServerCall] = 1
	pre[simclock.SmallMsg] = 4
	com[simclock.SmallMsg] = 5
	r := Result{
		Benchmark: Benchmark{Name: "1 Local Read, No Paging", LocalOps: 1},
		PreCommit: pre,
		Commit:    com,
	}
	p := Project(r, 0)
	// predicted = 26.1 + 9×3.0 = 53.1, matching the paper's 53.
	if p.PredictedMs < 53 || p.PredictedMs > 53.2 {
		t.Errorf("predicted %v", p.PredictedMs)
	}
	if p.ProcessMs != 41 {
		t.Errorf("process %v", p.ProcessMs)
	}
	if p.ElapsedMs != p.PredictedMs+41 {
		t.Errorf("elapsed %v", p.ElapsedMs)
	}
	if p.NewPrimMs >= p.ElapsedMs {
		t.Errorf("new-primitive projection %v not faster than %v", p.NewPrimMs, p.ElapsedMs)
	}
}

func TestSingleNodeEnvRunsLocalBenchmarks(t *testing.T) {
	env, err := NewEnv(1)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	r, err := env.Measure(Benchmark{Name: "1 Local Read, No Paging", LocalOps: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.PreCommit[simclock.DataServerCall] != 1 {
		t.Errorf("data server calls %v", r.PreCommit[simclock.DataServerCall])
	}
	if r.Commit[simclock.StableWrite] != 0 {
		t.Errorf("read-only stable writes %v", r.Commit[simclock.StableWrite])
	}
	// A multi-node benchmark must be rejected in a 1-node env.
	if err := env.RunOnce(Benchmark{Name: "x", LocalOps: 1, RemoteOps: []int{1}}); err == nil {
		t.Error("2-node benchmark ran in a 1-node environment")
	}
}

func TestTableFormattersProduceOutput(t *testing.T) {
	env, err := NewEnv(1)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	var results []Result
	for _, b := range Paper14()[:2] {
		r, err := env.Measure(b, 2)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, r)
	}
	for name, s := range map[string]string{
		"5-2": Table52(results),
		"5-3": Table53(results),
		"5-4": Table54(results),
		"5-5": Table55(),
	} {
		if len(s) < 100 {
			t.Errorf("table %s suspiciously short: %q", name, s)
		}
	}
}
