package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"tabs/internal/core"
	"tabs/internal/fault"
	"tabs/internal/servers/intarray"
	"tabs/internal/types"
)

// This file measures what the replicated commit protocol buys and what it
// costs. The A/B is run per protocol (2pc, paxos) on identical three-node
// clusters:
//
//   - Healthy-path latency/throughput: sequential distributed write
//     transactions (root plus two remote participants). Paxos Commit pays
//     extra work per commit — the root's own prepare force plus a quorum
//     round to the acceptors — and this axis shows that price.
//
//   - Coordinator-kill availability: the RunCoordKill harness kills the
//     coordinator permanently at the two decision phases and reports
//     whether the survivors resolve the prepared transaction and free its
//     locks. This axis is the availability unlock: 2pc blocks forever,
//     paxos resolves in sweeper time.

// CommitKillPoint is one coordinator-kill scenario's outcome.
type CommitKillPoint struct {
	Phase     string `json:"phase"` // "decide" or "decided"
	Resolved  bool   `json:"resolved"`
	Outcome   string `json:"outcome,omitempty"` // terminal outcome when resolved
	ResolveMs int64  `json:"resolve_ms,omitempty"`
	LocksHeld bool   `json:"locks_held"` // conflicting write still blocked at the end
}

// CommitAvailPoint is one protocol's full measurement.
type CommitAvailPoint struct {
	Protocol          string            `json:"protocol"`
	HealthyTxns       int               `json:"healthy_txns"`
	HealthyTxnsPerSec float64           `json:"healthy_txns_per_sec"`
	HealthyP50Ms      float64           `json:"healthy_p50_ms"`
	HealthyP99Ms      float64           `json:"healthy_p99_ms"`
	KillPhases        []CommitKillPoint `json:"coordinator_kill"`
}

// CommitAvailResult is the A/B sweep, for BENCH_commit_availability.json.
type CommitAvailResult struct {
	Nodes         int                `json:"nodes"`
	Acceptors     int                `json:"acceptors"` // paxos quorum size (2F+1)
	ResolveWaitMs int64              `json:"resolve_wait_ms"`
	Points        []CommitAvailPoint `json:"points"`
}

// measureHealthyCommits runs txns sequential distributed writes on a fresh
// three-node cluster under the given protocol and reports latency stats.
func measureHealthyCommits(protocol string, txns int) (CommitAvailPoint, error) {
	pt := CommitAvailPoint{Protocol: protocol, HealthyTxns: txns}
	copts := core.DefaultClusterOptions()
	copts.LockTimeout = 2 * time.Second
	copts.CommitProtocol = protocol
	names := []types.NodeID{"c0", "p1", "p2"}
	c, err := core.NewCluster(copts, names...)
	if err != nil {
		return pt, err
	}
	defer c.Shutdown()
	for _, name := range names {
		n := c.Node(name)
		if _, err := intarray.Attach(n, "arr", 1, 64, 2*time.Second); err != nil {
			return pt, err
		}
		if _, err := n.Recover(); err != nil {
			return pt, err
		}
	}
	coord := c.Node("c0")
	clients := []*intarray.Client{
		intarray.NewClient(coord, "p1", "arr"),
		intarray.NewClient(coord, "p2", "arr"),
	}
	run := func(i int) error {
		return coord.App.Run(func(tid types.TransID) error {
			for _, cl := range clients {
				if err := cl.Set(tid, uint32(i%32+1), int64(i)); err != nil {
					return err
				}
			}
			return nil
		})
	}
	// Warm-up faults in the pages and session state off the measured path.
	for i := 0; i < 4; i++ {
		if err := run(i); err != nil {
			return pt, fmt.Errorf("warm-up txn %d: %w", i, err)
		}
	}
	lats := make([]time.Duration, 0, txns)
	start := time.Now()
	for i := 0; i < txns; i++ {
		t0 := time.Now()
		if err := run(i); err != nil {
			return pt, fmt.Errorf("healthy txn %d: %w", i, err)
		}
		lats = append(lats, time.Since(t0))
	}
	elapsed := time.Since(start)
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pt.HealthyTxnsPerSec = float64(txns) / elapsed.Seconds()
	pt.HealthyP50Ms = float64(lats[len(lats)/2].Microseconds()) / 1000
	pt.HealthyP99Ms = float64(lats[len(lats)*99/100].Microseconds()) / 1000
	return pt, nil
}

// MeasureCommitAvailability runs the full A/B: healthy-path latency plus
// both coordinator-kill scenarios, for each protocol. resolveWait bounds
// how long each kill scenario waits for the survivors — under 2pc the full
// wait is always consumed (the point being demonstrated), so the sweep's
// wall time is roughly 2*resolveWait plus the healthy runs.
func MeasureCommitAvailability(txns int, resolveWait time.Duration) (*CommitAvailResult, error) {
	if txns <= 0 {
		txns = 200
	}
	if resolveWait <= 0 {
		resolveWait = 5 * time.Second
	}
	res := &CommitAvailResult{Nodes: 3, Acceptors: 3, ResolveWaitMs: resolveWait.Milliseconds()}
	for _, protocol := range []string{core.Protocol2PC, core.ProtocolPaxos} {
		pt, err := measureHealthyCommits(protocol, txns)
		if err != nil {
			return nil, fmt.Errorf("bench: healthy commits under %s: %w", protocol, err)
		}
		for _, phase := range []string{"decide", "decided"} {
			rep, err := fault.RunCoordKill(fault.CoordKillOptions{
				CommitProtocol: protocol,
				KillPhase:      phase,
				ResolveWait:    resolveWait,
			})
			if err != nil {
				return nil, fmt.Errorf("bench: coordkill %s/%s: %w", protocol, phase, err)
			}
			pt.KillPhases = append(pt.KillPhases, CommitKillPoint{
				Phase:     phase,
				Resolved:  rep.Resolved,
				Outcome:   rep.Outcome,
				ResolveMs: rep.ResolveMs,
				LocksHeld: rep.LocksHeld,
			})
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// FormatCommitAvail renders the A/B as a text table.
func FormatCommitAvail(r *CommitAvailResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Commit availability A/B: %d nodes, %d acceptors (paxos), %d healthy txns, %dms kill wait\n",
		r.Nodes, r.Acceptors, healthyTxnsOf(r), r.ResolveWaitMs)
	fmt.Fprintf(&b, "%-9s %10s %9s %9s  %-9s %-10s %12s %10s\n",
		"protocol", "txns/s", "p50 ms", "p99 ms", "kill at", "resolved", "outcome", "resolve ms")
	line := strings.Repeat("-", 86)
	fmt.Fprintln(&b, line)
	for _, pt := range r.Points {
		for i, k := range pt.KillPhases {
			proto, tps, p50, p99 := pt.Protocol, fmt.Sprintf("%.0f", pt.HealthyTxnsPerSec),
				fmt.Sprintf("%.2f", pt.HealthyP50Ms), fmt.Sprintf("%.2f", pt.HealthyP99Ms)
			if i > 0 {
				proto, tps, p50, p99 = "", "", "", ""
			}
			resolved := "BLOCKED"
			outcome, resolveMs := "-", "-"
			if k.Resolved {
				resolved = "yes"
				outcome = k.Outcome
				resolveMs = fmt.Sprintf("%d", k.ResolveMs)
			}
			fmt.Fprintf(&b, "%-9s %10s %9s %9s  %-9s %-10s %12s %10s\n",
				proto, tps, p50, p99, k.Phase, resolved, outcome, resolveMs)
		}
	}
	fmt.Fprintln(&b, line)
	fmt.Fprintln(&b, "BLOCKED = the survivors still held the prepared transaction (and its write")
	fmt.Fprintln(&b, "locks) when the wait expired; the coordinator never comes back in this harness.")
	return b.String()
}

func healthyTxnsOf(r *CommitAvailResult) int {
	if len(r.Points) == 0 {
		return 0
	}
	return r.Points[0].HealthyTxns
}
