package bench

import (
	"testing"
	"time"
)

// TestCommitAvailabilitySmoke runs a reduced commit-availability A/B and
// checks the shape of the result: both protocols commit on the healthy
// path, 2pc blocks in both coordinator-kill scenarios, paxos resolves
// both (abort when killed before proposing, commit when killed after the
// quorum accepted).
func TestCommitAvailabilitySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("commit-availability smoke boots real clusters and waits out the 2pc blocking window")
	}
	res, err := MeasureCommitAvailability(30, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + FormatCommitAvail(res))
	if len(res.Points) != 2 {
		t.Fatalf("got %d points, want 2 (2pc, paxos)", len(res.Points))
	}
	for _, pt := range res.Points {
		if pt.HealthyTxnsPerSec <= 0 {
			t.Errorf("%s: no healthy throughput", pt.Protocol)
		}
		if len(pt.KillPhases) != 2 {
			t.Fatalf("%s: got %d kill phases, want 2", pt.Protocol, len(pt.KillPhases))
		}
		for _, k := range pt.KillPhases {
			switch pt.Protocol {
			case "2pc":
				if k.Resolved || !k.LocksHeld {
					t.Errorf("2pc kill at %q: resolved=%v locks_held=%v, want the blocking window", k.Phase, k.Resolved, k.LocksHeld)
				}
			case "paxos":
				if !k.Resolved || k.LocksHeld {
					t.Errorf("paxos kill at %q: resolved=%v locks_held=%v, want nonblocking resolution", k.Phase, k.Resolved, k.LocksHeld)
				}
				want := "aborted"
				if k.Phase == "decided" {
					want = "committed"
				}
				if k.Outcome != want {
					t.Errorf("paxos kill at %q resolved to %q, want %q", k.Phase, k.Outcome, want)
				}
			}
		}
	}
}
