package bench

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"tabs/internal/core"
	"tabs/internal/servers/intarray"
	"tabs/internal/simclock"
	"tabs/internal/stats"
	"tabs/internal/types"
)

// This file measures what the paper's sequential Section 5 benchmarks
// cannot: commit throughput under concurrency. Each committing transaction
// must force a commit record to Stable Storage (§2.1.3); with one committer
// that is one Stable Storage Write per transaction, but with many
// committers in flight the wal.Log's group commit amortizes a single log
// force over every transaction whose commit record it covers.
//
// The simulated disk charges virtual milliseconds through the cost model
// rather than sleeping, so to surface the batching as a wall-clock win the
// harness installs an IO hook that sleeps a small real duration per virtual
// millisecond — a scaled-down physical disk. Both throughput and Stable
// Storage Writes per transaction are reported; the writes ratio is
// hardware-independent.

// ioSleepPerVirtualMs scales the disk model's virtual milliseconds into
// real sleep. 20µs/ms makes a Stable Storage Write (~1.3 virtual ms on the
// Table 5-1 model) cost ~26µs of wall time: long enough that concurrent
// committers pile up behind an in-flight force, short enough that the full
// sweep stays in CI budget.
const ioSleepPerVirtualMs = 20 * time.Microsecond

// minIOSleep floors the scaled sleep for one physical IO. Without a floor,
// sub-quantum virtual latencies multiply out to a Duration of 0 and the
// sleep vanishes entirely (see the IO hook below).
const minIOSleep = time.Microsecond

// GroupCommitPoint is one (concurrency, mode) cell of the sweep.
type GroupCommitPoint struct {
	Concurrency  int     `json:"concurrency"`
	GroupCommit  bool    `json:"group_commit"`
	Committed    int     `json:"committed"`
	ElapsedNs    int64   `json:"elapsed_ns"`
	TxnsPerSec   float64 `json:"txns_per_sec"`
	StableWrites float64 `json:"stable_writes"`
	WritesPerTxn float64 `json:"writes_per_txn"`
	// Forces and the group-size summary come from the wal.force.* trace
	// metrics; Forces counts batches, MeanGroupSize commits per batch.
	Forces        float64 `json:"forces"`
	MeanGroupSize float64 `json:"mean_group_size"`
	MaxGroupSize  float64 `json:"max_group_size"`
}

// GroupCommitResult is the full sweep, for BENCH_wal_group_commit.json.
type GroupCommitResult struct {
	TxnsPerWorker         int                `json:"txns_per_worker"`
	IOSleepNsPerVirtualMs int64              `json:"io_sleep_ns_per_virtual_ms"`
	Points                []GroupCommitPoint `json:"points"`
}

// measureGroupCommitPoint boots a fresh single-node cluster and drives
// conc goroutines through txns write transactions each, all committing as
// fast as they can.
func measureGroupCommitPoint(conc, txns int, groupCommit bool) (GroupCommitPoint, error) {
	pt := GroupCommitPoint{Concurrency: conc, GroupCommit: groupCommit}
	opts := core.ClusterOptions{
		DiskSectors: 16384,
		LogSectors:  2048,
		PoolPages:   256,
		// Checkpoints inject extra forces mid-run; keep them out of the
		// measurement the same way the Section 5 benchmarks do.
		CheckpointEvery:    1 << 30,
		LockTimeout:        10 * time.Second,
		DisableGroupCommit: !groupCommit,
	}
	cluster, err := core.NewCluster(opts, "node1")
	if err != nil {
		return pt, err
	}
	defer cluster.Shutdown()
	node := cluster.Node("node1")
	// One page per worker so committers contend only on the log, not on
	// page locks: worker w owns the first cell of page w.
	cells := uint32((conc + 1) * cellsPerPage)
	if _, err := intarray.Attach(node, "array", 1, cells, 10*time.Second); err != nil {
		return pt, err
	}
	if _, err := node.Recover(); err != nil {
		return pt, err
	}
	client := intarray.NewClient(node, "node1", "array")
	cellFor := func(worker int) uint32 { return uint32(worker*cellsPerPage) + 1 }

	run := func(worker, value int) error {
		return node.App.Run(func(tid types.TransID) error {
			return client.Set(tid, cellFor(worker), int64(value))
		})
	}
	// Warm-up: fault every worker's page in and populate session state.
	for w := 0; w < conc; w++ {
		if err := run(w, 0); err != nil {
			return pt, fmt.Errorf("warm-up worker %d: %w", w, err)
		}
	}

	// Measured run, against the scaled-latency disk.
	node.Disk().SetIOHook(func(ms float64, _ bool) {
		// Clamp to a minimum quantum: the float multiply truncates tiny
		// virtual latencies (seek-adjacent sectors can model well under a
		// millisecond) to a zero Duration, and time.Sleep(0) returns
		// immediately — making the cheapest IOs free and overstating how
		// much group commit helps. Every physical IO costs at least one
		// quantum of wall time.
		d := time.Duration(ms * float64(ioSleepPerVirtualMs))
		if d < minIOSleep {
			d = minIOSleep
		}
		//tabslint:ignore sleepsync this sleep IS the latency model: it converts virtual disk milliseconds to wall time so concurrency effects are measurable
		time.Sleep(d)
	})
	defer node.Disk().SetIOHook(nil)
	cluster.Registry.ResetAll()
	node.Tracer().Reset()

	errs := make([]error, conc)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 1; i <= txns; i++ {
				if err := run(w, i); err != nil {
					errs[w] = fmt.Errorf("worker %d txn %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return pt, err
		}
	}

	pt.Committed = conc * txns
	pt.ElapsedNs = elapsed.Nanoseconds()
	pt.TxnsPerSec = float64(pt.Committed) / elapsed.Seconds()
	total := cluster.Registry.TotalCounts(stats.PreCommit).
		Add(cluster.Registry.TotalCounts(stats.Commit))
	pt.StableWrites = total[simclock.StableWrite]
	pt.WritesPerTxn = pt.StableWrites / float64(pt.Committed)
	m := node.MetricsSnapshot()
	pt.Forces = m["wal.force.count"].Value
	if gs, ok := m["wal.force.group_size"]; ok && gs.Count > 0 {
		pt.MeanGroupSize = gs.Mean
		pt.MaxGroupSize = gs.Max
	} else if pt.Forces > 0 {
		// Synchronous mode records no group sizes: every force is a group
		// of one.
		pt.MeanGroupSize, pt.MaxGroupSize = 1, 1
	}
	return pt, nil
}

// MeasureGroupCommit sweeps concurrency 1, 2, 4, ... maxConc, measuring
// commit throughput with group commit enabled and disabled at each level.
func MeasureGroupCommit(maxConc, txnsPerWorker int) (*GroupCommitResult, error) {
	if maxConc < 1 {
		maxConc = 16
	}
	if txnsPerWorker <= 0 {
		txnsPerWorker = 50
	}
	res := &GroupCommitResult{
		TxnsPerWorker:         txnsPerWorker,
		IOSleepNsPerVirtualMs: ioSleepPerVirtualMs.Nanoseconds(),
	}
	for conc := 1; conc <= maxConc; conc *= 2 {
		for _, grouped := range []bool{false, true} {
			pt, err := measureGroupCommitPoint(conc, txnsPerWorker, grouped)
			if err != nil {
				return nil, fmt.Errorf("bench: group commit at concurrency %d (grouped=%v): %w", conc, grouped, err)
			}
			res.Points = append(res.Points, pt)
		}
	}
	return res, nil
}

// point finds the sweep cell for (conc, grouped), or nil.
func (r *GroupCommitResult) point(conc int, grouped bool) *GroupCommitPoint {
	for i := range r.Points {
		if r.Points[i].Concurrency == conc && r.Points[i].GroupCommit == grouped {
			return &r.Points[i]
		}
	}
	return nil
}

// FormatGroupCommit renders the sweep as a text table with per-level
// speedup (grouped vs. synchronous throughput) and writes-per-txn ratio.
func FormatGroupCommit(r *GroupCommitResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "WAL Group Commit: concurrent commit throughput (%d txns/worker)\n", r.TxnsPerWorker)
	fmt.Fprintf(&b, "%-6s %-8s %10s %12s %10s %8s %8s\n",
		"conc", "mode", "txns/s", "writes/txn", "forces", "grp.avg", "grp.max")
	line := strings.Repeat("-", 68)
	fmt.Fprintln(&b, line)
	for _, pt := range r.Points {
		mode := "sync"
		if pt.GroupCommit {
			mode = "grouped"
		}
		fmt.Fprintf(&b, "%-6d %-8s %10.0f %12.3f %10.0f %8.2f %8.0f\n",
			pt.Concurrency, mode, pt.TxnsPerSec, pt.WritesPerTxn,
			pt.Forces, pt.MeanGroupSize, pt.MaxGroupSize)
		if pt.GroupCommit {
			if sync := r.point(pt.Concurrency, false); sync != nil && sync.TxnsPerSec > 0 && sync.WritesPerTxn > 0 {
				fmt.Fprintf(&b, "%-6s %-8s %9.2fx %11.3fx\n", "", "ratio",
					pt.TxnsPerSec/sync.TxnsPerSec, pt.WritesPerTxn/sync.WritesPerTxn)
			}
		}
	}
	fmt.Fprintln(&b, line)
	fmt.Fprintln(&b, "ratio rows compare grouped against sync at the same concurrency;")
	fmt.Fprintln(&b, "writes/txn counts Stable Storage Writes per committed transaction.")
	return b.String()
}
