package bench

import (
	"encoding/json"
	"testing"
)

// TestMeasureGroupCommitPoint runs one small full-stack cell of the sweep
// in each mode and sanity-checks the accounting.
func TestMeasureGroupCommitPoint(t *testing.T) {
	for _, grouped := range []bool{false, true} {
		pt, err := measureGroupCommitPoint(4, 5, grouped)
		if err != nil {
			t.Fatalf("grouped=%v: %v", grouped, err)
		}
		if pt.Committed != 20 {
			t.Errorf("grouped=%v: committed %d, want 20", grouped, pt.Committed)
		}
		if pt.StableWrites <= 0 || pt.Forces <= 0 {
			t.Errorf("grouped=%v: no stable writes/forces recorded: %+v", grouped, pt)
		}
		if pt.TxnsPerSec <= 0 {
			t.Errorf("grouped=%v: non-positive throughput", grouped)
		}
		if !grouped && pt.MeanGroupSize != 1 {
			t.Errorf("sync mode mean group size %.2f, want 1", pt.MeanGroupSize)
		}
		// Even synchronous mode can dip below one write per commit: the
		// recovery manager forces to NextLSN, so a commit record appended
		// while another force is queued rides that force. Group commit
		// should only improve on it.
		if pt.WritesPerTxn <= 0 {
			t.Errorf("grouped=%v: writes/txn %.3f, want > 0", grouped, pt.WritesPerTxn)
		}
	}
}

// TestGroupCommitResultJSON pins the artifact's field names.
func TestGroupCommitResultJSON(t *testing.T) {
	res := &GroupCommitResult{
		TxnsPerWorker: 3,
		Points: []GroupCommitPoint{
			{Concurrency: 2, GroupCommit: true, Committed: 6, TxnsPerSec: 10,
				StableWrites: 3, WritesPerTxn: 0.5, Forces: 3, MeanGroupSize: 2, MaxGroupSize: 2},
		},
	}
	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back GroupCommitResult
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Points) != 1 || back.Points[0].WritesPerTxn != 0.5 {
		t.Fatalf("round trip mangled result: %s", blob)
	}
	if FormatGroupCommit(res) == "" {
		t.Fatal("empty formatted table")
	}
}

// BenchmarkGroupCommitStack is the full-stack commit-throughput benchmark:
// 8 committer goroutines over kernel, recovery manager and log. The CI
// smoke step runs it with -benchtime=1x.
func BenchmarkGroupCommitStack(b *testing.B) {
	for _, mode := range []struct {
		name    string
		grouped bool
	}{{"grouped", true}, {"nogroup", false}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pt, err := measureGroupCommitPoint(8, 10, mode.grouped)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(pt.TxnsPerSec, "txns/s")
				b.ReportMetric(pt.WritesPerTxn, "stablewrites/txn")
			}
		})
	}
}
