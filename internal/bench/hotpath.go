package bench

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"tabs/internal/core"
	"tabs/internal/servers/intarray"
	"tabs/internal/types"
)

// This file measures the transaction hot path under CPU-bound contention:
// no scaled I/O sleep is installed, so throughput is limited by lock and
// allocation contention across the kernel page cache, the lock manager,
// the WAL append path, and transaction management — exactly the serial
// bottlenecks the sharded-lock / lock-free-read / pooled-buffer work
// attacks. Contrast with groupcommit.go, which installs a sleep hook to
// surface force batching; here the disk model only counts primitives.
//
// The workload spreads workers across several data servers (each server is
// a single-threaded monitor, so one server would serialize everything at
// its monitor rather than in the subsystems under test). Every worker owns
// a private page in its server (no logical conflicts) and additionally
// read-locks a per-server shared cell, so read-lock sharing and the
// lock-free cache read path are both on the measured path.

// hotPathServers is how many data servers the workload spreads over.
const hotPathServers = 8

// hotPathOpsPerTxn is the operation count of one workload transaction:
// one SetCell (write lock, pin, log, unpin) and two GetCells (read locks,
// cache reads).
const hotPathOpsPerTxn = 3

// HotPathPoint is one concurrency level of the sweep. TxnsPerSec is the
// median of Runs independent runs (each on a fresh cluster); the per-run
// samples ride along so scaling curves expose their own noise instead of
// presenting one lucky (or unlucky) run as the trend.
type HotPathPoint struct {
	Concurrency int     `json:"concurrency"`
	Committed   int     `json:"committed"`
	ElapsedNs   int64   `json:"elapsed_ns"`
	TxnsPerSec  float64 `json:"txns_per_sec"`
	// Runs and Samples describe the repetition behind TxnsPerSec.
	Runs    int       `json:"runs,omitempty"`
	Samples []float64 `json:"samples_txns_per_sec,omitempty"`
	// BaselineTxnsPerSec and Speedup are filled when a prior sweep (the
	// pre-optimization tree) is supplied for comparison.
	BaselineTxnsPerSec float64 `json:"baseline_txns_per_sec,omitempty"`
	Speedup            float64 `json:"speedup_vs_baseline,omitempty"`
}

// HotPathResult is the full sweep, for BENCH_hotpath.json.
type HotPathResult struct {
	Servers       int            `json:"servers"`
	OpsPerTxn     int            `json:"ops_per_txn"`
	TxnsPerWorker int            `json:"txns_per_worker"`
	Runs          int            `json:"runs,omitempty"`
	Points        []HotPathPoint `json:"points"`
}

// measureHotPathPoint boots a fresh single-node cluster with several array
// servers and drives conc workers through txns transactions each.
func measureHotPathPoint(conc, txns int) (HotPathPoint, error) {
	pt := HotPathPoint{Concurrency: conc}
	opts := core.ClusterOptions{
		DiskSectors: 32768,
		// A roomy log keeps reclamation (which forces pages and would
		// serialize the run) off the measured path.
		LogSectors:      8192,
		PoolPages:       512,
		CheckpointEvery: 1 << 30,
		LockTimeout:     10 * time.Second,
	}
	cluster, err := core.NewCluster(opts, "node1")
	if err != nil {
		return pt, err
	}
	defer cluster.Shutdown()
	node := cluster.Node("node1")

	// Per-server layout: one private page per worker slot plus a final
	// shared page every worker of that server read-locks.
	workersPerServer := (conc + hotPathServers - 1) / hotPathServers
	pages := uint32(workersPerServer + 1)
	cells := pages * uint32(cellsPerPage)
	clients := make([]*intarray.Client, hotPathServers)
	for s := 0; s < hotPathServers; s++ {
		id := types.ServerID(fmt.Sprintf("hot%d", s))
		if _, err := intarray.Attach(node, id, types.SegmentID(s+1), cells, 10*time.Second); err != nil {
			return pt, err
		}
		clients[s] = intarray.NewClient(node, "node1", id)
	}
	if _, err := node.Recover(); err != nil {
		return pt, err
	}

	sharedCell := uint32(workersPerServer*cellsPerPage) + 1
	run := func(worker, value int) error {
		c := clients[worker%hotPathServers]
		private := uint32((worker/hotPathServers)*cellsPerPage) + 1
		return node.App.Run(func(tid types.TransID) error {
			if err := c.Set(tid, private, int64(value)); err != nil {
				return err
			}
			if _, err := c.Get(tid, private); err != nil {
				return err
			}
			_, err := c.Get(tid, sharedCell)
			return err
		})
	}

	// Warm-up: fault every page in and populate per-transaction state maps.
	for w := 0; w < conc; w++ {
		if err := run(w, 0); err != nil {
			return pt, fmt.Errorf("warm-up worker %d: %w", w, err)
		}
	}

	errs := make([]error, conc)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 1; i <= txns; i++ {
				if err := run(w, i); err != nil {
					errs[w] = fmt.Errorf("worker %d txn %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return pt, err
		}
	}
	pt.Committed = conc * txns
	pt.ElapsedNs = elapsed.Nanoseconds()
	pt.TxnsPerSec = float64(pt.Committed) / elapsed.Seconds()
	return pt, nil
}

// MeasureHotPath sweeps concurrency 8, 16, ... maxConc, running each
// point runs times and reporting the median throughput.
func MeasureHotPath(maxConc, txnsPerWorker, runs int) (*HotPathResult, error) {
	if maxConc < 8 {
		maxConc = 8
	}
	if txnsPerWorker <= 0 {
		txnsPerWorker = 100
	}
	if runs <= 0 {
		runs = 3
	}
	res := &HotPathResult{
		Servers:       hotPathServers,
		OpsPerTxn:     hotPathOpsPerTxn,
		TxnsPerWorker: txnsPerWorker,
		Runs:          runs,
	}
	for conc := 8; conc <= maxConc; conc *= 2 {
		pt, err := repeatHotPathPoint(conc, txnsPerWorker, runs)
		if err != nil {
			return nil, fmt.Errorf("bench: hot path at concurrency %d: %w", conc, err)
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// repeatHotPathPoint measures one concurrency level runs times on fresh
// clusters and keeps the median run's point, annotated with all samples.
func repeatHotPathPoint(conc, txns, runs int) (HotPathPoint, error) {
	pts := make([]HotPathPoint, 0, runs)
	for i := 0; i < runs; i++ {
		pt, err := measureHotPathPoint(conc, txns)
		if err != nil {
			return HotPathPoint{}, err
		}
		pts = append(pts, pt)
	}
	samples := make([]float64, len(pts))
	for i, pt := range pts {
		samples[i] = pt.TxnsPerSec
	}
	med := pts[medianIndex(samples)]
	med.Runs = runs
	med.Samples = samples
	return med, nil
}

// medianIndex returns the index of the median sample (lower-middle for
// even counts), so callers can keep the median run's full record.
func medianIndex(samples []float64) int {
	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return samples[idx[a]] < samples[idx[b]] })
	return idx[(len(idx)-1)/2]
}

// MergeHotPathBaseline fills each point's baseline throughput and speedup
// from a prior sweep (matched by concurrency).
func MergeHotPathBaseline(res, baseline *HotPathResult) {
	if baseline == nil {
		return
	}
	for i := range res.Points {
		for _, b := range baseline.Points {
			if b.Concurrency == res.Points[i].Concurrency && b.TxnsPerSec > 0 {
				res.Points[i].BaselineTxnsPerSec = b.TxnsPerSec
				res.Points[i].Speedup = res.Points[i].TxnsPerSec / b.TxnsPerSec
			}
		}
	}
}

// FormatHotPath renders the sweep as a text table.
func FormatHotPath(r *HotPathResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Hot path: CPU-bound txn throughput (%d servers, %d ops/txn, %d txns/worker)\n",
		r.Servers, r.OpsPerTxn, r.TxnsPerWorker)
	fmt.Fprintf(&b, "%-6s %10s %12s %10s\n", "conc", "txns/s", "baseline", "speedup")
	line := strings.Repeat("-", 42)
	fmt.Fprintln(&b, line)
	for _, pt := range r.Points {
		if pt.BaselineTxnsPerSec > 0 {
			fmt.Fprintf(&b, "%-6d %10.0f %12.0f %9.2fx\n",
				pt.Concurrency, pt.TxnsPerSec, pt.BaselineTxnsPerSec, pt.Speedup)
		} else {
			fmt.Fprintf(&b, "%-6d %10.0f %12s %10s\n", pt.Concurrency, pt.TxnsPerSec, "-", "-")
		}
	}
	fmt.Fprintln(&b, line)
	return b.String()
}
