package bench

import (
	"fmt"
	"time"

	"tabs/internal/core"
	"tabs/internal/disk"
	"tabs/internal/port"
	"tabs/internal/simclock"
	"tabs/internal/srvlib"
	"tabs/internal/stats"
	"tabs/internal/types"
	"tabs/internal/wal"
)

// MicroResults holds the Table 5-1 micro-benchmark outcomes.
type MicroResults struct {
	// SimDiskMs are the virtual latencies the simulated disk model
	// produces for the I/O primitives (they should track Table 5-1's 32 /
	// 16 ms figures, which DefaultGeometry was tuned to).
	SimDiskMs map[simclock.Primitive]float64
	// GoMicros are wall-clock microseconds per primitive for this Go
	// implementation, measured the way the paper measured its primitives:
	// repeatedly calling the appropriate function (§5.1).
	GoMicros map[simclock.Primitive]float64
}

// MeasureMicro runs the primitive micro-benchmarks.
func MeasureMicro() (*MicroResults, error) {
	out := &MicroResults{
		SimDiskMs: make(map[simclock.Primitive]float64),
		GoMicros:  make(map[simclock.Primitive]float64),
	}
	if err := measureDiskModel(out); err != nil {
		return nil, err
	}
	if err := measureStableWrite(out); err != nil {
		return nil, err
	}
	if err := measureMessaging(out); err != nil {
		return nil, err
	}
	return out, nil
}

// measureDiskModel times random and sequential sector reads against the
// latency model, exactly as the paper measured demand paging with a
// program reading individual pages of a large mapped array (§5.1).
func measureDiskModel(out *MicroResults) error {
	d := disk.New(disk.DefaultGeometry(8192))
	var totalMs float64
	d.SetIOHook(func(ms float64, _ bool) { totalMs += ms })
	buf := make([]byte, disk.SectorSize)

	// Random access: stride large and coprime with the track size.
	totalMs = 0
	const n = 2000
	for i := 0; i < n; i++ {
		addr := disk.Addr((i * 2713) % 8192)
		if _, err := d.Read(addr, buf); err != nil {
			return err
		}
	}
	out.SimDiskMs[simclock.RandomPageIO] = totalMs / n

	// Sequential access.
	totalMs = 0
	for i := 0; i < n; i++ {
		if _, err := d.Read(disk.Addr(i%8192), buf); err != nil {
			return err
		}
	}
	out.SimDiskMs[simclock.SequentialRead] = totalMs / n
	return nil
}

// measureStableWrite times a log force: append one record and force it,
// with the arm disturbed between forces as the shared data disk disturbs
// it in TABS (§5.1: log writing breaks up sequential access).
func measureStableWrite(out *MicroResults) error {
	d := disk.New(disk.DefaultGeometry(8192))
	var totalMs float64
	d.SetIOHook(func(ms float64, _ bool) { totalMs += ms })
	rec := stats.NewRecorder()
	lg, err := wal.Open(wal.Config{Disk: d, Base: 0, Sectors: 4096, Rec: rec})
	if err != nil {
		return err
	}
	buf := make([]byte, disk.SectorSize)
	const n = 500
	totalMs = 0
	var forceMs float64
	for i := 0; i < n; i++ {
		// Disturb the arm, as demand paging of data pages does.
		if _, err := d.Read(disk.Addr(5000+(i*37)%3000), buf); err != nil {
			return err
		}
		before := totalMs
		r := &wal.Record{TID: types.TransID{Node: "m", Seq: uint64(i + 1), RootNode: "m", RootSeq: uint64(i + 1)}, Type: wal.RecCommit}
		if _, err := lg.AppendAndForce(r); err != nil {
			return err
		}
		forceMs += totalMs - before
	}
	out.SimDiskMs[simclock.StableWrite] = forceMs / n
	return nil
}

// measureMessaging times this implementation's message and call
// primitives in wall-clock terms: a port round trip (small message), a
// local null data server call, and a remote null call through the
// Communication Managers over the in-memory network.
func measureMessaging(out *MicroResults) error {
	// Small message: port send + receive.
	p := port.New("micro", nil)
	const msgs = 20000
	start := time.Now()
	for i := 0; i < msgs; i++ {
		if err := p.SendQuiet(&port.Message{Op: "x"}); err != nil {
			return err
		}
		if _, err := p.Receive(); err != nil {
			return err
		}
	}
	out.GoMicros[simclock.SmallMsg] = float64(time.Since(start).Microseconds()) / msgs
	p.Close()

	// Null data server calls, local and remote.
	cluster, err := core.NewCluster(core.DefaultClusterOptions(), "m1", "m2")
	if err != nil {
		return err
	}
	defer cluster.Shutdown()
	for _, name := range []types.NodeID{"m1", "m2"} {
		n := cluster.Node(name)
		srv, err := n.NewServer("null", 1, 1, nil, time.Second)
		if err != nil {
			return err
		}
		srv.AcceptRequests(func(req *srvlib.Request) ([]byte, error) { return nil, nil })
		if _, err := n.Recover(); err != nil {
			return err
		}
	}
	n1 := cluster.Node("m1")
	const calls = 5000
	start = time.Now()
	for i := 0; i < calls; i++ {
		if _, err := n1.Call("null", "noop", types.NilTransID, nil); err != nil {
			return err
		}
	}
	out.GoMicros[simclock.DataServerCall] = float64(time.Since(start).Microseconds()) / calls

	start = time.Now()
	for i := 0; i < calls; i++ {
		if _, err := n1.CallRemote("m2", "null", "noop", types.NilTransID, nil); err != nil {
			return err
		}
	}
	out.GoMicros[simclock.InterNodeCall] = float64(time.Since(start).Microseconds()) / calls

	// Datagram: one-way send through the Communication Manager.
	start = time.Now()
	for i := 0; i < calls; i++ {
		if err := n1.CM.SendDatagram("m2", "noexist", types.NilTransID, nil, 0); err != nil {
			return err
		}
	}
	out.GoMicros[simclock.Datagram] = float64(time.Since(start).Microseconds()) / calls
	return nil
}

// FormatWallSummary renders a short wall-clock summary of the Go
// implementation's micro primitives.
func FormatWallSummary(m *MicroResults) string {
	if m == nil {
		return ""
	}
	return fmt.Sprintf("Go implementation primitives: small msg %.1fµs, local call %.1fµs, remote call %.1fµs, datagram %.1fµs\n",
		m.GoMicros[simclock.SmallMsg], m.GoMicros[simclock.DataServerCall],
		m.GoMicros[simclock.InterNodeCall], m.GoMicros[simclock.Datagram])
}
