package bench

// This file measures what online shard migration costs the clients that
// live through it: a cluster serves a steady write workload, one shard is
// migrated to another node mid-run, and the recorded throughput series
// shows the dip (the quiesce holds the shard's locks while its pages
// stream to the destination) and the recovery (redirected traffic lands
// on the new home). The acceptance bar is the tentpole's: zero failed
// transactions — every write that hits the moving shard retries through
// the redirect and commits.

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tabs/internal/core"
	"tabs/internal/servers/intarray"
	"tabs/internal/types"
)

// MigrationBucket is one time slice of the throughput series.
type MigrationBucket struct {
	TMs  int64 `json:"t_ms"` // bucket start, relative to workload start
	Txns int64 `json:"txns"` // transactions committed in the bucket
}

// MigrationResult records one migrate-under-load run, for
// BENCH_migration.json.
type MigrationResult struct {
	Nodes   int    `json:"nodes"`
	Keys    uint64 `json:"keys"`
	Workers int    `json:"workers"`

	Shard            int    `json:"shard"`
	From             string `json:"from"`
	To               string `json:"to"`
	PagesMoved       uint32 `json:"pages_moved"`
	BytesMoved       uint64 `json:"bytes_moved"`
	PlacementVersion uint64 `json:"placement_version"`
	MigrationMs      float64 `json:"migration_ms"`

	BaselineTps float64 `json:"baseline_txns_per_sec"`
	DuringTps   float64 `json:"during_txns_per_sec"`
	AfterTps    float64 `json:"after_txns_per_sec"`
	DipRatio    float64 `json:"dip_ratio"` // during/baseline; 1.0 = no dip

	Redirects      int64   `json:"redirected_calls"` // router.redirect across nodes
	RedirectMeanMs float64 `json:"redirect_mean_ms"` // re-resolve + retry latency
	RedirectMaxMs  float64 `json:"redirect_max_ms"`
	FailedTxns     int64   `json:"failed_txns"` // must be 0

	BucketMs       int64             `json:"bucket_ms"`
	MigrateStartMs float64           `json:"migrate_start_ms"`
	MigrateEndMs   float64           `json:"migrate_end_ms"`
	Buckets        []MigrationBucket `json:"buckets"`
}

// MeasureMigration runs the migrate-under-load benchmark: workers spread
// over every node write through sharded clients for phase, shard 0
// migrates to the next node, and the workload runs phase longer. The
// throughput series is sampled in bucketMs slices throughout.
func MeasureMigration(nodes int, keys uint64, workers int, phase time.Duration) (*MigrationResult, error) {
	if nodes < 2 {
		nodes = 3
	}
	if keys == 0 {
		keys = 1 << 16
	}
	if workers <= 0 {
		workers = 4
	}
	if phase <= 0 {
		phase = 600 * time.Millisecond
	}
	const bucketMs = 50
	res := &MigrationResult{Nodes: nodes, Keys: keys, Workers: workers, BucketMs: bucketMs}

	names := make([]types.NodeID, nodes)
	for i := range names {
		names[i] = types.NodeID(fmt.Sprintf("n%02d", i+1))
	}
	opts := core.ClusterOptions{
		DiskSectors:     2 * footprintSectors(keys, nodes),
		LogSectors:      8192,
		PoolPages:       512,
		CheckpointEvery: 1 << 30,
		LockTimeout:     time.Second,
	}
	cluster, err := core.NewCluster(opts, names...)
	if err != nil {
		return nil, err
	}
	defer cluster.Shutdown()
	p, err := intarray.AttachSharded(cluster, "array", keys, time.Second)
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		if _, err := cluster.Node(name).Recover(); err != nil {
			return nil, fmt.Errorf("recover %s: %w", name, err)
		}
	}
	res.Shard = 0
	res.From = string(p.Shards[0].Node)
	dest := p.Shards[1%p.NumShards()].Node
	res.To = string(dest)

	// Workers own disjoint key sets spanning every shard; worker w runs on
	// node w%nodes, so traffic reaches the moving shard from every node's
	// routing cache (each one must notice the move, not just the driver's).
	// Redirects are invisible at this level by design — the router absorbs
	// a shard-moved failure by re-resolving and retrying — so the redirect
	// evidence comes from the router.redirect metrics below, and the only
	// client-visible events are aborts at the quiesce (retried here).
	var commits, failed atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		node := cluster.Node(names[w%nodes])
		client, err := intarray.NewShardedClient(node, "array")
		if err != nil {
			return nil, err
		}
		wg.Add(1)
		go func(w int, node *core.Node, client *intarray.ShardedClient) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := (uint64(w) + uint64(i)*uint64(workers)) % keys
				deadline := time.Now().Add(10 * time.Second)
				for {
					err := node.App.Run(func(tid types.TransID) error {
						return client.Set(tid, key, int64(i))
					})
					if err == nil {
						commits.Add(1)
						break
					}
					if time.Now().After(deadline) {
						failed.Add(1)
						break
					}
					//tabslint:ignore sleepsync retry backoff: the migration's quiesce releases on its own clock
					time.Sleep(2 * time.Millisecond)
				}
			}
		}(w, node, client)
	}

	// Throughput sampler: one bucket per bucketMs for the whole run.
	start := time.Now()
	sampleDone := make(chan struct{})
	go func() {
		defer close(sampleDone)
		ticker := time.NewTicker(bucketMs * time.Millisecond)
		defer ticker.Stop()
		prev := int64(0)
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				cur := commits.Load()
				res.Buckets = append(res.Buckets, MigrationBucket{
					TMs:  int64(len(res.Buckets)) * bucketMs,
					Txns: cur - prev,
				})
				prev = cur
			}
		}
	}()

	//tabslint:ignore sleepsync load phase: the baseline throughput window
	time.Sleep(phase)
	preCommits := commits.Load()
	preT := time.Now()
	res.MigrateStartMs = float64(preT.Sub(start).Microseconds()) / 1e3
	var rep *core.MigrateReport
	for attempt := 0; ; attempt++ {
		rep, err = cluster.MigrateShard("array", res.Shard, dest)
		if err == nil {
			break
		}
		if attempt >= 5 {
			close(stop)
			wg.Wait()
			return nil, fmt.Errorf("bench: migration never succeeded: %w", err)
		}
		//tabslint:ignore sleepsync retry backoff after losing the quiesce lock race with the workers
		time.Sleep(50 * time.Millisecond)
	}
	postT := time.Now()
	postCommits := commits.Load()
	res.MigrateEndMs = float64(postT.Sub(start).Microseconds()) / 1e3
	res.MigrationMs = float64(postT.Sub(preT).Microseconds()) / 1e3
	res.PagesMoved = rep.Pages
	res.BytesMoved = rep.Bytes
	res.PlacementVersion = rep.Version
	//tabslint:ignore sleepsync load phase: the post-migration throughput window
	time.Sleep(phase)
	finalCommits := commits.Load()
	finalT := time.Now()
	close(stop)
	wg.Wait()
	<-sampleDone

	res.BaselineTps = float64(preCommits) / preT.Sub(start).Seconds()
	if d := postT.Sub(preT).Seconds(); d > 0 {
		res.DuringTps = float64(postCommits-preCommits) / d
	}
	res.AfterTps = float64(finalCommits-postCommits) / finalT.Sub(postT).Seconds()
	if res.BaselineTps > 0 {
		res.DipRatio = res.DuringTps / res.BaselineTps
	}
	res.FailedTxns = failed.Load()

	// Redirect evidence from the router metrics: every node whose router
	// hit the moved shard re-resolved and retried, counting one redirect
	// and recording the repair latency.
	var rsum, rmax float64
	var rcount uint64
	for _, name := range names {
		m := cluster.Node(name).MetricsSnapshot()
		res.Redirects += int64(m["router.redirect"].Value)
		if h, ok := m["router.redirect.ms"]; ok {
			rsum += h.Sum
			rcount += h.Count
			if h.Max > rmax {
				rmax = h.Max
			}
		}
	}
	if rcount > 0 {
		res.RedirectMeanMs = rsum / float64(rcount)
		res.RedirectMaxMs = rmax
	}
	if res.FailedTxns > 0 {
		return res, fmt.Errorf("bench: %d transactions failed outright during the migration (want 0)", res.FailedTxns)
	}
	return res, nil
}

// FormatMigration renders the run as text.
func FormatMigration(r *MigrationResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Online shard migration under load (%d nodes, %d keys, %d workers)\n", r.Nodes, r.Keys, r.Workers)
	line := strings.Repeat("-", 68)
	fmt.Fprintln(&b, line)
	fmt.Fprintf(&b, "moved       shard %d: %s -> %s (%d pages, %d bytes) in %.1f ms, placement v%d\n",
		r.Shard, r.From, r.To, r.PagesMoved, r.BytesMoved, r.MigrationMs, r.PlacementVersion)
	fmt.Fprintf(&b, "throughput  baseline %.0f txns/s, during %.0f, after %.0f (dip ratio %.2f)\n",
		r.BaselineTps, r.DuringTps, r.AfterTps, r.DipRatio)
	fmt.Fprintf(&b, "redirects   %d calls redirected; re-route latency mean %.2f ms, max %.2f ms\n",
		r.Redirects, r.RedirectMeanMs, r.RedirectMaxMs)
	fmt.Fprintf(&b, "failures    %d (zero means no transaction was lost to the move)\n", r.FailedTxns)
	fmt.Fprintln(&b, line)
	return b.String()
}
