package bench

import (
	"testing"
	"time"
)

// TestMigrationSmoke runs a small migrate-under-load measurement and
// checks its structural guarantees: the move happened, the placement
// advanced, throughput was measured on both sides of it, and no worker
// transaction failed outright.
func TestMigrationSmoke(t *testing.T) {
	res, err := MeasureMigration(2, 1<<12, 2, 250*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + FormatMigration(res))
	if res.PagesMoved == 0 {
		t.Error("no pages moved")
	}
	if res.PlacementVersion < 2 {
		t.Errorf("placement still at v%d after the move", res.PlacementVersion)
	}
	if res.From == res.To {
		t.Errorf("shard moved from %s to itself", res.From)
	}
	if res.BaselineTps == 0 || res.AfterTps == 0 {
		t.Errorf("throughput unmeasured: baseline %.0f after %.0f", res.BaselineTps, res.AfterTps)
	}
	if res.FailedTxns != 0 {
		t.Errorf("%d transactions failed during the migration, want 0", res.FailedTxns)
	}
	if len(res.Buckets) == 0 {
		t.Error("no throughput buckets sampled")
	}
}
