package bench

import (
	"math"
	"strings"

	"tabs/internal/simclock"
	"tabs/internal/stats"
)

// PaperRow holds the paper's published Table 5-4 milliseconds for one
// benchmark, for side-by-side comparison with this implementation's
// regenerated numbers.
type PaperRow struct {
	Predicted float64 // System Time Predicted by Primitives
	Process   float64 // Measured TABS Process Time
	Elapsed   float64 // Measured Elapsed Time
	Improved  float64 // Improved TABS Architecture projection
	NewPrim   float64 // New Primitive Times projection
}

// PaperTable54 maps benchmark name to the paper's Table 5-4 row.
var PaperTable54 = map[string]PaperRow{
	"1 Local Read, No Paging":          {53, 41, 110, 107, 67},
	"5 Local Read, No Paging":          {157, 41, 217, 213, 80},
	"1 Local Read, Seq. Paging":        {71, 41, 126, 123, 75},
	"1 Local Read, Random Paging":      {81, 41, 140, 137, 98},
	"1 Local Write, No Paging":         {156, 83, 247, 228, 136},
	"5 Local Write, No Paging":         {302, 119, 467, 424, 225},
	"1 Local Write, Seq. Paging":       {232, 104, 371, 345, 249},
	"1 Lcl Rd, 1 Rem Rd, No Page":      {306, 223, 469, 459, 228},
	"1 Lcl Rd, 5 Rem Rd, No Page":      {662, 368, 829, 819, 268},
	"1 Lcl Rd, 1 Rem Rd, Seq. Page":    {341, 226, 514, 504, 257},
	"1 Lcl Wr, 1 Rem Wr, No Page":      {697, 407, 989, 775, 442},
	"1 Lcl Wr, 1 Rem Wr, Seq. Page":    {864, 441, 1125, 873, 539},
	"1 Lcl Rd, 1 Rem Rd, 1 Rem Rd, NP": {416, 381, 621, 611, 282},
	"1 Lcl Wr, 1 Rem Wr, 1 Rem Wr, NP": {831, 670, 1200, 968, 534},
}

// ProcessMs returns the modelled TABS system-process CPU time for a
// benchmark: the paper's measured Communication, Recovery and Transaction
// Manager process times (Table 5-4, column 2). These are 1985 Pascal
// process CPU times on a Perq and cannot be derived from a reimplemen-
// tation, so they enter the regenerated table as calibrated constants —
// see DESIGN.md §1 and EXPERIMENTS.md.
func ProcessMs(name string) float64 {
	if row, ok := PaperTable54[name]; ok {
		return row.Process
	}
	return 0
}

// Projection carries the regenerated Table 5-4 row for one benchmark.
type Projection struct {
	Result Result
	// PredictedMs is counts × Table 5-1 times (column 1).
	PredictedMs float64
	// ProcessMs is the modelled TABS process time (column 2).
	ProcessMs float64
	// ElapsedMs composes the two, following the paper's reconciliation
	// that predicted-plus-process approximates measured elapsed (§5.2).
	ElapsedMs float64
	// ImprovedMs re-prices the benchmark under the architectural changes
	// of §5.3 (Recovery and Transaction Managers merged into the kernel,
	// optimized commit) — the primitives that would no longer be
	// performed are removed before pricing.
	ImprovedMs float64
	// NewPrimMs additionally substitutes the achievable primitive times
	// of Table 5-5.
	NewPrimMs float64
	// KernelSmallMsgs is how many small messages belonged to the pager
	// protocol (eliminated by the merge).
	KernelSmallMsgs float64
}

// improvedCounts removes the primitives the §5.3 architecture no longer
// performs: the kernel↔Recovery-Manager pager messages become procedure
// calls, and for distributed write transactions the second commit phase
// (commit datagram round and the participant's commit force) overlaps
// succeeding transactions instead of sitting on the critical path.
func improvedCounts(total stats.Counts, kernelSmall float64, b Benchmark) stats.Counts {
	out := total
	out[simclock.SmallMsg] = math.Max(0, out[simclock.SmallMsg]-kernelSmall)
	if b.Write && b.Nodes() > 1 {
		// Commit round (1 + ½(k-1) sends) and the ack arrival leave the
		// critical path; one participant commit force overlaps too.
		k := float64(b.Nodes() - 1)
		out[simclock.Datagram] = math.Max(0, out[simclock.Datagram]-(1+0.5*(k-1))-1)
		out[simclock.StableWrite] = math.Max(0, out[simclock.StableWrite]-k)
	}
	return out
}

// Project prices one measured benchmark under the paper's four analyses.
func Project(r Result, kernelSmall float64) Projection {
	perq := simclock.PerqT2()
	ach := simclock.Achievable()
	total := r.Total()
	proc := ProcessMs(r.Benchmark.Name)
	improved := improvedCounts(total, kernelSmall, r.Benchmark)
	return Projection{
		Result:          r,
		PredictedMs:     total.Predict(perq),
		ProcessMs:       proc,
		ElapsedMs:       total.Predict(perq) + proc,
		ImprovedMs:      improved.Predict(perq) + proc,
		NewPrimMs:       improved.Predict(ach) + proc,
		KernelSmallMsgs: kernelSmall,
	}
}

// PaperTable52 holds the legible primitive counts of the paper's Table
// 5-2 (pre-commit scope) for comparison: data server calls, inter-node
// calls, and small local messages. Entries the scan of the paper left
// ambiguous are NaN.
type PaperCounts struct {
	DSCalls   float64
	RemCalls  float64
	SmallMsgs float64
	LargeMsgs float64
}

// PaperTable52Counts maps benchmark name to the paper's Table 5-2 row.
var PaperTable52Counts = map[string]PaperCounts{
	"1 Local Read, No Paging":          {1, 0, 4, 0},
	"5 Local Read, No Paging":          {5, 0, 4, 0},
	"1 Local Read, Seq. Paging":        {1, 0, 4, 0},
	"1 Local Read, Random Paging":      {1, 0, 4, 0},
	"1 Local Write, No Paging":         {1, 0, 6, 1},
	"5 Local Write, No Paging":         {5, 0, 14, 5},
	"1 Local Write, Seq. Paging":       {1, 0, 10, 1},
	"1 Lcl Rd, 1 Rem Rd, No Page":      {1, 1, 8, 0},
	"1 Lcl Rd, 5 Rem Rd, No Page":      {1, 5, 8, 0},
	"1 Lcl Rd, 1 Rem Rd, Seq. Page":    {1, 1, 8, 0},
	"1 Lcl Wr, 1 Rem Wr, No Page":      {1, 1, 12, 2},
	"1 Lcl Wr, 1 Rem Wr, Seq. Page":    {1, 1, 20, 2},
	"1 Lcl Rd, 1 Rem Rd, 1 Rem Rd, NP": {1, 2, 11, 1},
	"1 Lcl Wr, 1 Rem Wr, 1 Rem Wr, NP": {1, 2, 17, 3},
}

// CommitClass names the Table 5-3 protocol row a benchmark exercises.
func CommitClass(b Benchmark) string {
	var s strings.Builder
	switch b.Nodes() {
	case 1:
		s.WriteString("1 Node")
	case 2:
		s.WriteString("2 Node")
	default:
		s.WriteString("3 Node")
	}
	if b.Write {
		s.WriteString(", Write")
	} else {
		s.WriteString(", Read Only")
	}
	return s.String()
}

// PaperTable53Datagrams gives the paper's longest-path datagram counts per
// commit protocol (Table 5-3): read-only commits use prepare + vote; write
// commits add the commit + ack round; each extra parallel child adds half
// a datagram per round.
var PaperTable53Datagrams = map[string]float64{
	"1 Node, Read Only": 0,
	"1 Node, Write":     0,
	"2 Node, Read Only": 2,
	"2 Node, Write":     4,
	"3 Node, Read Only": 2.5,
	"3 Node, Write":     5,
}

// PaperTable53StableWrites gives the stable-storage writes on the commit
// path: none for read-only commits, the forced commit record for writes.
var PaperTable53StableWrites = map[string]float64{
	"1 Node, Read Only": 0,
	"1 Node, Write":     1,
	"2 Node, Read Only": 0,
	"2 Node, Write":     1,
	"3 Node, Read Only": 0,
	"3 Node, Write":     1,
}
