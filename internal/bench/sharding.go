package bench

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"tabs/internal/core"
	"tabs/internal/servers/intarray"
	"tabs/internal/types"
)

// This file measures the scale-out claim of the sharded namespace: with
// locality-aware placement (every node serves one shard of the array, and
// workers run on the node that owns their keys) and the cached lock-free
// routing path, transaction throughput should grow near-linearly with
// node count as long as the multi-shard ratio stays low — the thesis of
// "distributed transactions can scale" reproduced in miniature on the
// paper's tree-structured 2PC.
//
// The cluster is in-process, so node count cannot buy CPU parallelism on
// a small machine; what it buys is I/O parallelism, which is exactly what
// the claim is about. As in groupcommit.go, a scaled-sleep IO hook turns
// each node's virtual disk milliseconds into real wall time — N nodes
// force their logs on N disks concurrently, while a single node funnels
// every commit through one. The hook is installed after warm-up, so
// paging and routing-cache fills stay off the measured path; steady-state
// lookups must then be pure cache hits with zero broadcasts, which each
// point asserts and reports.

// shardIOSleepPerVirtualMs scales the sharding sweep's disks. It is
// deliberately heavier than groupcommit.go's 20µs/ms: the measured
// regime should be disk-bound on every node (the scale-out resource),
// not CPU-bound, even with all nodes sharing one machine.
const shardIOSleepPerVirtualMs = 500 * time.Microsecond

// ShardingPoint is one (node count, multi-shard ratio) cell of the sweep.
// TxnsPerSec is the median of Runs runs; Samples ride along.
type ShardingPoint struct {
	Nodes           int       `json:"nodes"`
	MultiShardRatio float64   `json:"multi_shard_ratio"`
	Committed       int       `json:"committed"`
	MultiShardTxns  int       `json:"multi_shard_txns"`
	ElapsedNs       int64     `json:"elapsed_ns"`
	TxnsPerSec      float64   `json:"txns_per_sec"`
	Runs            int       `json:"runs,omitempty"`
	Samples         []float64 `json:"samples_txns_per_sec,omitempty"`
	// CacheHitRate is hits/(hits+misses) of the routing cache over the
	// measured phase, summed across nodes; SteadyBroadcasts counts lookup
	// broadcasts in the same window (zero when the cache is doing its
	// job — warm-up resolutions are excluded by taking deltas).
	CacheHitRate     float64 `json:"cache_hit_rate"`
	SteadyBroadcasts float64 `json:"steady_broadcasts"`
	// MeanCommitChildren is the commit tree's mean fan-out: 0 for pure
	// single-shard workloads, rising with the multi-shard ratio but never
	// toward "all shards" — the tree holds touched shards only.
	MeanCommitChildren float64 `json:"mean_commit_children"`
	// SpeedupVs1Node compares against the 1-node point at the same ratio.
	SpeedupVs1Node float64 `json:"speedup_vs_1_node,omitempty"`
}

// ShardingResult is the full sweep, for BENCH_sharding.json.
type ShardingResult struct {
	Keys                  uint64          `json:"keys"`
	WorkersPerNode        int             `json:"workers_per_node"`
	TxnsPerWorker         int             `json:"txns_per_worker"`
	Runs                  int             `json:"runs"`
	IOSleepNsPerVirtualMs int64           `json:"io_sleep_ns_per_virtual_ms"`
	Points                []ShardingPoint `json:"points"`
}

// shardingWorker precomputes one worker's key set. Worker s of node i
// owns two cells of page s on its home shard and one cell of page W+s on
// the next shard, reserved for its cross-shard writes — all private, so
// workloads conflict nowhere and measure the infrastructure, not lock
// queueing.
type shardingWorker struct {
	node   *core.Node
	client *intarray.ShardedClient
	localA uint64 // home-shard key, first cell of the worker's page
	localB uint64 // home-shard key, second cell of the same page
	remote uint64 // next shard's key reserved for this worker
}

// shardingKey maps (shard, local 0-based cell) to the global key under
// the identity-modulo placement: key = cell*shards + shard.
func shardingKey(shard, shards, cell int) uint64 {
	return uint64(cell)*uint64(shards) + uint64(shard)
}

// measureShardingPoint boots nodes fresh nodes, shards keys cells across
// them, homes workersPerNode workers on every node, and measures txns
// transactions per worker with the given deterministic multi-shard mix.
func measureShardingPoint(nodes int, keys uint64, workersPerNode, txns int, ratio float64) (ShardingPoint, error) {
	pt := ShardingPoint{Nodes: nodes, MultiShardRatio: ratio}
	// Per shard the workers use 2*workersPerNode pages; the shard must
	// have at least that many cells.
	minKeys := uint64(nodes) * uint64(2*workersPerNode*cellsPerPage)
	if keys < minKeys {
		return pt, fmt.Errorf("bench: sharding needs >= %d keys for %d nodes x %d workers, got %d", minKeys, nodes, workersPerNode, keys)
	}
	names := make([]types.NodeID, nodes)
	for i := range names {
		names[i] = types.NodeID(fmt.Sprintf("n%02d", i+1))
	}
	opts := core.ClusterOptions{
		DiskSectors:     footprintSectors(keys, nodes),
		LogSectors:      8192,
		PoolPages:       512,
		CheckpointEvery: 1 << 30,
		LockTimeout:     10 * time.Second,
	}
	cluster, err := core.NewCluster(opts, names...)
	if err != nil {
		return pt, err
	}
	defer cluster.Shutdown()
	if _, err := intarray.AttachSharded(cluster, "array", keys, 10*time.Second); err != nil {
		return pt, err
	}
	for _, name := range names {
		if _, err := cluster.Node(name).Recover(); err != nil {
			return pt, fmt.Errorf("recover %s: %w", name, err)
		}
	}

	// Home the workers: node i's workers route through a client built on
	// node i, so their single-shard transactions never leave the node.
	workers := make([]shardingWorker, 0, nodes*workersPerNode)
	for i, name := range names {
		node := cluster.Node(name)
		client, err := intarray.NewShardedClient(node, "array")
		if err != nil {
			return pt, err
		}
		for s := 0; s < workersPerNode; s++ {
			workers = append(workers, shardingWorker{
				node:   node,
				client: client,
				localA: shardingKey(i, nodes, s*cellsPerPage),
				localB: shardingKey(i, nodes, s*cellsPerPage+1),
				remote: shardingKey((i+1)%nodes, nodes, (workersPerNode+s)*cellsPerPage),
			})
		}
	}

	// One transaction = two SetCells. Single-shard: both on the home
	// shard. Multi-shard: the second lands on the next shard, pulling its
	// home into the commit tree. The mix is deterministic in the txn
	// index, so every run at a ratio does identical work.
	multiEvery := 0
	if ratio > 0 {
		multiEvery = int(1.0/ratio + 0.5)
	}
	run := func(w *shardingWorker, seq int) (bool, error) {
		multi := multiEvery > 0 && seq%multiEvery == 0
		err := w.node.App.Run(func(tid types.TransID) error {
			if err := w.client.Set(tid, w.localA, int64(seq)); err != nil {
				return err
			}
			second := w.localB
			if multi {
				second = w.remote
			}
			return w.client.Set(tid, second, int64(seq))
		})
		return multi, err
	}

	// Warm-up: fault in every worker's pages (home and remote), populate
	// the routing caches, and fill per-transaction session state.
	for i := range workers {
		if _, err := run(&workers[i], 0); err != nil {
			return pt, fmt.Errorf("warm-up worker %d: %w", i, err)
		}
		if multiEvery > 0 {
			if _, err := run(&workers[i], multiEvery); err != nil {
				return pt, fmt.Errorf("warm-up worker %d (multi): %w", i, err)
			}
		}
	}

	// Measured run against scaled-latency disks, one per node, installed
	// only now so warm-up stays cheap.
	for _, name := range names {
		cluster.Node(name).Disk().SetIOHook(func(ms float64, _ bool) {
			d := time.Duration(ms * float64(shardIOSleepPerVirtualMs))
			if d < minIOSleep {
				d = minIOSleep
			}
			//tabslint:ignore sleepsync this sleep IS the latency model: it converts virtual disk milliseconds to wall time so per-node I/O parallelism is measurable
			time.Sleep(d)
		})
	}
	defer func() {
		for _, name := range names {
			if n := cluster.Node(name); n != nil {
				n.Disk().SetIOHook(nil)
			}
		}
	}()
	before := shardingCounters(cluster, names)

	errs := make([]error, len(workers))
	multiCounts := make([]int, len(workers))
	var wg sync.WaitGroup
	start := time.Now()
	for i := range workers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for seq := 1; seq <= txns; seq++ {
				multi, err := run(&workers[i], seq)
				if err != nil {
					errs[i] = fmt.Errorf("worker %d txn %d: %w", i, seq, err)
					return
				}
				if multi {
					multiCounts[i]++
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return pt, err
		}
	}
	after := shardingCounters(cluster, names)

	pt.Committed = len(workers) * txns
	for _, m := range multiCounts {
		pt.MultiShardTxns += m
	}
	pt.ElapsedNs = elapsed.Nanoseconds()
	pt.TxnsPerSec = float64(pt.Committed) / elapsed.Seconds()
	hits := after.hits - before.hits
	misses := after.misses - before.misses
	if hits+misses > 0 {
		pt.CacheHitRate = hits / (hits + misses)
	}
	pt.SteadyBroadcasts = after.broadcasts - before.broadcasts
	if dc := after.childrenCount - before.childrenCount; dc > 0 {
		pt.MeanCommitChildren = (after.childrenSum - before.childrenSum) / dc
	}
	return pt, nil
}

// footprintSectors sizes a node's disk for its shard of the array plus
// the log region and headroom.
func footprintSectors(keys uint64, nodes int) int64 {
	shardPages := int64(keys/uint64(nodes))/int64(cellsPerPage) + 2
	s := shardPages + 8192 + 64
	if s < 16384 {
		s = 16384
	}
	return s
}

// shardingCounterState sums the resolution and commit-tree metrics across
// the cluster; point measurements take deltas across the measured phase.
type shardingCounterState struct {
	hits, misses, broadcasts float64
	childrenSum              float64
	childrenCount            float64
}

func shardingCounters(c *core.Cluster, names []types.NodeID) shardingCounterState {
	var st shardingCounterState
	for _, name := range names {
		m := c.Node(name).MetricsSnapshot()
		st.hits += m["ns.lookup.cache_hits"].Value
		st.misses += m["ns.lookup.cache_misses"].Value
		st.broadcasts += m["ns.lookup.broadcasts"].Value
		if h, ok := m["txn.commit.children"]; ok {
			st.childrenSum += h.Sum
			st.childrenCount += float64(h.Count)
		}
	}
	return st
}

// MeasureSharding sweeps node counts 1, 2, 4, ... maxNodes at a pure
// single-shard mix and at the given multi-shard ratio, runs runs per
// point, and reports medians with per-run samples plus each point's
// speedup over the 1-node point at the same ratio.
func MeasureSharding(maxNodes int, keys uint64, workersPerNode, txnsPerWorker, runs int, ratio float64) (*ShardingResult, error) {
	if maxNodes < 1 {
		maxNodes = 8
	}
	if keys == 0 {
		keys = 1 << 20
	}
	if workersPerNode <= 0 {
		workersPerNode = 4
	}
	if txnsPerWorker <= 0 {
		txnsPerWorker = 200
	}
	if runs <= 0 {
		runs = 3
	}
	res := &ShardingResult{
		Keys:                  keys,
		WorkersPerNode:        workersPerNode,
		TxnsPerWorker:         txnsPerWorker,
		Runs:                  runs,
		IOSleepNsPerVirtualMs: shardIOSleepPerVirtualMs.Nanoseconds(),
	}
	ratios := []float64{0}
	if ratio > 0 {
		ratios = append(ratios, ratio)
	}
	for nodes := 1; nodes <= maxNodes; nodes *= 2 {
		for _, r := range ratios {
			pt, err := repeatShardingPoint(nodes, keys, workersPerNode, txnsPerWorker, runs, r)
			if err != nil {
				return nil, fmt.Errorf("bench: sharding at %d nodes ratio %g: %w", nodes, r, err)
			}
			res.Points = append(res.Points, pt)
		}
	}
	for i := range res.Points {
		pt := &res.Points[i]
		if base := res.point(1, pt.MultiShardRatio); base != nil && base.TxnsPerSec > 0 {
			pt.SpeedupVs1Node = pt.TxnsPerSec / base.TxnsPerSec
		}
	}
	return res, nil
}

// repeatShardingPoint measures one cell runs times and keeps the median
// run's point, annotated with every sample.
func repeatShardingPoint(nodes int, keys uint64, workersPerNode, txns, runs int, ratio float64) (ShardingPoint, error) {
	pts := make([]ShardingPoint, 0, runs)
	for i := 0; i < runs; i++ {
		pt, err := measureShardingPoint(nodes, keys, workersPerNode, txns, ratio)
		if err != nil {
			return ShardingPoint{}, err
		}
		pts = append(pts, pt)
	}
	samples := make([]float64, len(pts))
	for i, pt := range pts {
		samples[i] = pt.TxnsPerSec
	}
	med := pts[medianIndex(samples)]
	med.Runs = runs
	med.Samples = samples
	return med, nil
}

// point finds the sweep cell for (nodes, ratio), or nil.
func (r *ShardingResult) point(nodes int, ratio float64) *ShardingPoint {
	for i := range r.Points {
		if r.Points[i].Nodes == nodes && r.Points[i].MultiShardRatio == ratio {
			return &r.Points[i]
		}
	}
	return nil
}

// FormatSharding renders the sweep as a text table.
func FormatSharding(r *ShardingResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sharded namespace: 1->N scale-out (%d keys, %d workers/node, %d txns/worker, median of %d)\n",
		r.Keys, r.WorkersPerNode, r.TxnsPerWorker, r.Runs)
	fmt.Fprintf(&b, "%-6s %-8s %10s %9s %9s %10s %9s\n",
		"nodes", "mix", "txns/s", "speedup", "hit rate", "bcasts", "children")
	line := strings.Repeat("-", 68)
	fmt.Fprintln(&b, line)
	for _, pt := range r.Points {
		mix := "local"
		if pt.MultiShardRatio > 0 {
			mix = fmt.Sprintf("%g%% 2PC", pt.MultiShardRatio*100)
		}
		speedup := "-"
		if pt.SpeedupVs1Node > 0 {
			speedup = fmt.Sprintf("%.2fx", pt.SpeedupVs1Node)
		}
		fmt.Fprintf(&b, "%-6d %-8s %10.0f %9s %8.1f%% %10.0f %9.3f\n",
			pt.Nodes, mix, pt.TxnsPerSec, speedup,
			pt.CacheHitRate*100, pt.SteadyBroadcasts, pt.MeanCommitChildren)
	}
	fmt.Fprintln(&b, line)
	fmt.Fprintln(&b, "speedup compares against the 1-node point at the same mix; bcasts counts")
	fmt.Fprintln(&b, "steady-state lookup broadcasts (0 = every route answered from cache);")
	fmt.Fprintln(&b, "children is the commit tree's mean fan-out (touched shards only).")
	return b.String()
}
