package bench

import "testing"

// TestShardingSmoke runs a miniature 2-node 2-shard sweep: tiny key
// space, two workers per node, a handful of transactions. It asserts the
// invariants the full sweep's numbers rest on — every measured-phase
// lookup is a cache hit, no steady-state broadcasts, and the multi-shard
// mix actually produces cross-shard commit trees.
func TestShardingSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("sharding smoke sweeps real clusters")
	}
	res, err := MeasureSharding(2, 4096, 2, 10, 1, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	// Points: {1,2} nodes x {0, 0.2} ratios.
	if len(res.Points) != 4 {
		t.Fatalf("got %d points, want 4", len(res.Points))
	}
	for _, pt := range res.Points {
		if pt.Committed != pt.Nodes*2*10 {
			t.Errorf("%d nodes ratio %g: committed %d", pt.Nodes, pt.MultiShardRatio, pt.Committed)
		}
		if pt.TxnsPerSec <= 0 {
			t.Errorf("%d nodes ratio %g: no throughput", pt.Nodes, pt.MultiShardRatio)
		}
		if pt.CacheHitRate != 1.0 {
			t.Errorf("%d nodes ratio %g: cache hit rate %v, want 1.0 (steady state must answer from cache)",
				pt.Nodes, pt.MultiShardRatio, pt.CacheHitRate)
		}
		if pt.SteadyBroadcasts != 0 {
			t.Errorf("%d nodes ratio %g: %v steady-state broadcasts, want 0",
				pt.Nodes, pt.MultiShardRatio, pt.SteadyBroadcasts)
		}
		if pt.MultiShardRatio == 0 && pt.MultiShardTxns != 0 {
			t.Errorf("%d nodes: single-shard mix ran %d multi-shard txns", pt.Nodes, pt.MultiShardTxns)
		}
		if pt.MultiShardRatio > 0 && pt.Nodes > 1 && pt.MultiShardTxns == 0 {
			t.Errorf("%d nodes ratio %g: no multi-shard txns ran", pt.Nodes, pt.MultiShardRatio)
		}
	}
	// With 2 nodes and a positive mix, some commits must carry a child —
	// and with a low mix the mean fan-out stays well under "all shards".
	multi := res.point(2, 0.2)
	if multi == nil {
		t.Fatal("2-node multi-shard point missing")
	}
	if multi.MeanCommitChildren <= 0 {
		t.Errorf("multi-shard mix produced no commit-tree children (mean %v)", multi.MeanCommitChildren)
	}
	if multi.MeanCommitChildren > 0.5 {
		t.Errorf("mean commit children %v: tree should hold touched shards only", multi.MeanCommitChildren)
	}
	local := res.point(2, 0)
	if local == nil || local.MeanCommitChildren != 0 {
		t.Errorf("pure local mix grew commit trees: %+v", local)
	}
}
