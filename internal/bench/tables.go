package bench

import (
	"fmt"
	"strings"

	"tabs/internal/simclock"
	"tabs/internal/stats"
)

// Table51 renders the primitive operation times: the paper's measured
// Perq values (which are this simulation's cost-model parameters), the
// latencies the simulated disk actually produces for the I/O primitives,
// and — as a bonus the paper could not have — the wall-clock cost of the
// equivalent primitive in this Go implementation.
func Table51(micro *MicroResults) string {
	perq := simclock.PerqT2()
	var b strings.Builder
	b.WriteString("Table 5-1: Primitive Operation Times (milliseconds)\n")
	b.WriteString(fmt.Sprintf("%-34s %10s %12s %14s\n", "Primitive", "Paper (ms)", "SimDisk (ms)", "Go impl (µs)"))
	for p := simclock.Primitive(0); int(p) < simclock.NumPrimitives; p++ {
		sim := "-"
		if micro != nil {
			if v, ok := micro.SimDiskMs[p]; ok {
				sim = fmt.Sprintf("%.1f", v)
			}
		}
		impl := "-"
		if micro != nil {
			if v, ok := micro.GoMicros[p]; ok {
				impl = fmt.Sprintf("%.1f", v)
			}
		}
		b.WriteString(fmt.Sprintf("%-34s %10.1f %12s %14s\n", p.String(), perq.Millis(p), sim, impl))
	}
	return b.String()
}

// Table52 renders the pre-commit primitive counts per benchmark, with the
// paper's legible counts alongside.
func Table52(results []Result) string {
	var b strings.Builder
	b.WriteString("Table 5-2: Pre-Commit Primitive Counts (per transaction; paper counts in parentheses)\n")
	b.WriteString(fmt.Sprintf("%-34s %10s %10s %10s %10s %8s %8s %8s\n",
		"Benchmark", "RemCall", "DSCall", "SmallMsg", "LargeMsg", "PtrMsg", "SeqRead", "RandIO"))
	for _, r := range results {
		c := r.PreCommit
		paper, hasPaper := PaperTable52Counts[r.Benchmark.Name]
		cell := func(v float64, ref float64) string {
			if hasPaper {
				return fmt.Sprintf("%.1f(%g)", v, ref)
			}
			return fmt.Sprintf("%.1f", v)
		}
		b.WriteString(fmt.Sprintf("%-34s %10s %10s %10s %10s %8.1f %8.2f %8.2f\n",
			r.Benchmark.Name,
			cell(c[simclock.InterNodeCall], paper.RemCalls),
			cell(c[simclock.DataServerCall], paper.DSCalls),
			cell(c[simclock.SmallMsg], paper.SmallMsgs),
			cell(c[simclock.LargeMsg], paper.LargeMsgs),
			c[simclock.PointerMsg],
			c[simclock.SequentialRead],
			c[simclock.RandomPageIO]))
	}
	return b.String()
}

// Table53 renders the commit-phase primitive counts, grouped by commit
// protocol class, with the paper's longest-path datagram and stable-write
// counts alongside. Benchmarks in the same class are averaged.
func Table53(results []Result) string {
	type agg struct {
		counts stats.Counts
		n      int
	}
	byClass := map[string]*agg{}
	var order []string
	for _, r := range results {
		cls := CommitClass(r.Benchmark)
		a := byClass[cls]
		if a == nil {
			a = &agg{}
			byClass[cls] = a
			order = append(order, cls)
		}
		a.counts = a.counts.Add(r.Commit)
		a.n++
	}
	var b strings.Builder
	b.WriteString("Table 5-3: Commit Primitive Counts (per transaction; paper longest-path in parentheses)\n")
	b.WriteString(fmt.Sprintf("%-22s %14s %10s %10s %14s\n",
		"Commit Protocol", "Datagram", "SmallMsg", "LargeMsg", "StableWrite"))
	for _, cls := range order {
		a := byClass[cls]
		c := a.counts.Scale(1 / float64(a.n))
		b.WriteString(fmt.Sprintf("%-22s %9.1f(%g) %10.1f %10.1f %9.1f(%g)\n",
			cls,
			c[simclock.Datagram], PaperTable53Datagrams[cls],
			c[simclock.SmallMsg],
			c[simclock.LargeMsg],
			c[simclock.StableWrite], PaperTable53StableWrites[cls]))
	}
	b.WriteString("\nNote: the paper's Table 5-3 counts the longest (parallel) execution path;\n")
	b.WriteString("the datagram column here is instrumented with the same half-datagram\n")
	b.WriteString("convention, while stable writes are the sum over all nodes — this\n")
	b.WriteString("implementation's participants force both their prepare and commit records\n")
	b.WriteString("(see EXPERIMENTS.md).\n")
	return b.String()
}

// Table54 renders the benchmark times: regenerated predicted / process /
// elapsed / improved / new-primitive columns with the paper's published
// values alongside.
func Table54(results []Result) string {
	var b strings.Builder
	b.WriteString("Table 5-4: Benchmark Times (milliseconds; paper values in parentheses)\n")
	b.WriteString(fmt.Sprintf("%-34s %14s %12s %14s %14s %14s %10s\n",
		"Benchmark", "Predicted", "Process", "Elapsed", "ImprovedArch", "NewPrimTimes", "Go µs/txn"))
	for _, r := range results {
		p := Project(r, r.KernelSmall)
		ref := PaperTable54[r.Benchmark.Name]
		b.WriteString(fmt.Sprintf("%-34s %8.0f(%4.0f) %6.0f(%4.0f) %8.0f(%4.0f) %8.0f(%4.0f) %8.0f(%4.0f) %10.1f\n",
			r.Benchmark.Name,
			p.PredictedMs, ref.Predicted,
			p.ProcessMs, ref.Process,
			p.ElapsedMs, ref.Elapsed,
			p.ImprovedMs, ref.Improved,
			p.NewPrimMs, ref.NewPrim,
			r.WallNs/1e3))
	}
	b.WriteString("\nPredicted = instrumented primitive counts × Table 5-1 times (the paper's\n")
	b.WriteString("methodology); Process = the paper's measured TABS process times, used as\n")
	b.WriteString("calibrated constants (DESIGN.md §1); Elapsed = Predicted + Process, the\n")
	b.WriteString("paper's own reconciliation identity (§5.2); Improved and NewPrimTimes\n")
	b.WriteString("re-price after removing the primitives the §5.3 architecture avoids.\n")
	return b.String()
}

// Table55 renders the achievable primitive times parameter set.
func Table55() string {
	ach := simclock.Achievable()
	perq := simclock.PerqT2()
	var b strings.Builder
	b.WriteString("Table 5-5: Achievable Primitive Operation Times (milliseconds)\n")
	b.WriteString(fmt.Sprintf("%-34s %12s %12s %8s\n", "Primitive", "Perq (5-1)", "Achievable", "Speedup"))
	for p := simclock.Primitive(0); int(p) < simclock.NumPrimitives; p++ {
		b.WriteString(fmt.Sprintf("%-34s %12.1f %12.1f %7.1fx\n",
			p.String(), perq.Millis(p), ach.Millis(p), perq.Millis(p)/ach.Millis(p)))
	}
	return b.String()
}
