package comm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"tabs/internal/types"
)

// Binary wire codec for envelopes. The original TCP transport serialized
// with encoding/gob, which allocates heavily per message (type reflection,
// per-field buffers) and cannot encode into a caller-owned buffer. The
// hand-rolled frame below is append-only on the send side — it composes
// with the per-connection coalescing writer so many envelopes share one
// buffer and one syscall — and decodes from a pooled buffer on the receive
// side.
//
// Frame layout: a 4-byte big-endian payload length, then the envelope
// fields in fixed order. Variable-length fields are 4-byte-length-prefixed.
// All nodes run the same binary, so there is no cross-version negotiation.

// ErrBadFrame reports a malformed inbound frame; the connection it arrived
// on is unusable (framing is lost) and gets torn down.
var ErrBadFrame = errors.New("comm: malformed wire frame")

// maxWireFrame bounds one envelope on the wire; payloads are pages and
// control messages, far below this.
const maxWireFrame = 16 << 20

// AppendLenBytes appends b with a 4-byte big-endian length prefix. It is
// exported (together with AppendLenString/TakeLenBytes/TakeLenString) so
// higher layers that ride the envelope codec — the acp acceptor messages —
// compose their payloads with the same framing primitives instead of
// inventing a second wire dialect.
func AppendLenBytes(dst []byte, b []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(b)))
	return append(dst, b...)
}

// AppendLenString appends s with a 4-byte big-endian length prefix.
func AppendLenString(dst []byte, s string) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

// appendEnvelope appends env as one framed message and returns the extended
// slice. It never fails: every envelope field is encodable.
func appendEnvelope(dst []byte, env *Envelope) []byte {
	base := len(dst)
	dst = append(dst, 0, 0, 0, 0) // frame length, patched below
	dst = AppendLenString(dst, string(env.From))
	dst = AppendLenString(dst, string(env.To))
	dst = append(dst, byte(env.Kind))
	dst = binary.BigEndian.AppendUint64(dst, env.Epoch)
	dst = binary.BigEndian.AppendUint64(dst, env.Seq)
	var flags byte
	if env.IsReply {
		flags |= 1
	}
	dst = append(dst, flags)
	dst = AppendLenString(dst, env.Service)
	dst = AppendLenString(dst, string(env.TID.Node))
	dst = binary.BigEndian.AppendUint64(dst, env.TID.Seq)
	dst = AppendLenString(dst, string(env.TID.RootNode))
	dst = binary.BigEndian.AppendUint64(dst, env.TID.RootSeq)
	dst = AppendLenBytes(dst, env.Payload)
	dst = AppendLenString(dst, env.Err)
	binary.BigEndian.PutUint32(dst[base:], uint32(len(dst)-base-4))
	return dst
}

// TakeLenBytes splits one 4-byte-length-prefixed field off the front of b,
// returning the field (aliasing b — copy if it must outlive the buffer) and
// the remainder.
func TakeLenBytes(b []byte) ([]byte, []byte, error) {
	if len(b) < 4 {
		return nil, nil, ErrBadFrame
	}
	n := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	if n > len(b) {
		return nil, nil, ErrBadFrame
	}
	return b[:n], b[n:], nil
}

// TakeLenString is TakeLenBytes with the field copied out as a string.
func TakeLenString(b []byte) (string, []byte, error) {
	f, rest, err := TakeLenBytes(b)
	if err != nil {
		return "", nil, err
	}
	return string(f), rest, nil
}

// decodeEnvelope parses one envelope from a complete frame payload (the
// 4-byte frame length already stripped). Strings and the payload are copied
// out, so the caller may recycle b immediately.
func decodeEnvelope(b []byte) (*Envelope, error) {
	env := &Envelope{}
	var f []byte
	var err error
	if f, b, err = TakeLenBytes(b); err != nil {
		return nil, err
	}
	env.From = types.NodeID(f)
	if f, b, err = TakeLenBytes(b); err != nil {
		return nil, err
	}
	env.To = types.NodeID(f)
	if len(b) < 1+8+8+1 {
		return nil, ErrBadFrame
	}
	env.Kind = Kind(b[0])
	env.Epoch = binary.BigEndian.Uint64(b[1:9])
	env.Seq = binary.BigEndian.Uint64(b[9:17])
	env.IsReply = b[17]&1 != 0
	b = b[18:]
	if f, b, err = TakeLenBytes(b); err != nil {
		return nil, err
	}
	env.Service = string(f)
	if f, b, err = TakeLenBytes(b); err != nil {
		return nil, err
	}
	env.TID.Node = types.NodeID(f)
	if len(b) < 8 {
		return nil, ErrBadFrame
	}
	env.TID.Seq = binary.BigEndian.Uint64(b)
	b = b[8:]
	if f, b, err = TakeLenBytes(b); err != nil {
		return nil, err
	}
	env.TID.RootNode = types.NodeID(f)
	if len(b) < 8 {
		return nil, ErrBadFrame
	}
	env.TID.RootSeq = binary.BigEndian.Uint64(b)
	b = b[8:]
	if f, b, err = TakeLenBytes(b); err != nil {
		return nil, err
	}
	if len(f) > 0 {
		env.Payload = append([]byte(nil), f...)
	}
	if f, b, err = TakeLenBytes(b); err != nil {
		return nil, err
	}
	env.Err = string(f)
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, len(b))
	}
	return env, nil
}

// --- Pooled inbound frame buffers ----------------------------------------
//
// Inbound frames are read into buffers drawn from size-classed pools and
// returned as soon as the envelope is decoded (decodeEnvelope copies, so a
// recycled buffer can never alias a live envelope). Classes cover the
// common cases — control messages, page-sized payloads, multi-page bodies;
// anything larger is a one-off allocation.

var frameClasses = [...]int{256, 1 << 10, 4 << 10, 16 << 10, 64 << 10}

var framePools [len(frameClasses)]sync.Pool

// frameBuf returns a buffer of length n from the smallest fitting class.
// The caller owns the buffer and must hand it to putFrameBuf (or a
// declared transfer point) on every path; tabslint's bufown pass enforces
// this.
//
//tabslint:pool-get
func frameBuf(n int) []byte {
	for i, c := range frameClasses {
		if n <= c {
			if p, ok := framePools[i].Get().(*[]byte); ok {
				return (*p)[:n]
			}
			return make([]byte, n, c)
		}
	}
	return make([]byte, n)
}

// putFrameBuf recycles a buffer obtained from frameBuf. Buffers above the
// largest class (or with foreign capacities) are left to the GC. Pools hold
// *[]byte, not []byte: putting a bare slice would box its header on every
// Put, allocating the very garbage the pool exists to avoid.
//
//tabslint:pool-put
func putFrameBuf(b []byte) {
	c := cap(b)
	for i, class := range frameClasses {
		if c == class {
			b = b[:c]
			framePools[i].Put(&b)
			return
		}
	}
}
