package comm

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"reflect"
	"testing"

	"tabs/internal/types"
)

func sampleEnvelope() *Envelope {
	return &Envelope{
		From:  "nodeA",
		To:    "nodeB",
		Kind:  KindSession,
		Epoch: 0xDEADBEEF,
		Seq:   42,
		TID: types.TransID{
			Node: "nodeA", Seq: 7, RootNode: "nodeR", RootSeq: 3,
		},
		Service: "datasrv",
		Payload: []byte("op-payload-bytes"),
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	cases := []*Envelope{
		sampleEnvelope(),
		{}, // all zero values
		{From: "a", To: "b", Kind: KindDatagram, Service: "name", Payload: []byte{0}},
		{From: "a", To: "b", IsReply: true, Seq: 1 << 60, Err: "boom: something failed"},
		{From: "a", To: "b", Payload: bytes.Repeat([]byte{0xAB}, 3*types.PageSize)},
	}
	for i, env := range cases {
		frame := appendEnvelope(nil, env)
		n := int(binary.BigEndian.Uint32(frame))
		if n != len(frame)-4 {
			t.Fatalf("case %d: frame length %d, payload is %d", i, n, len(frame)-4)
		}
		got, err := decodeEnvelope(frame[4:])
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !reflect.DeepEqual(env, got) {
			t.Errorf("case %d mismatch:\n in: %+v\nout: %+v", i, env, got)
		}
	}
}

// TestEnvelopeAppendsCoalesce encodes several envelopes back to back into
// one buffer — exactly what the per-connection writer batches into a single
// syscall — and decodes them all back out.
func TestEnvelopeAppendsCoalesce(t *testing.T) {
	var buf []byte
	var want []*Envelope
	for i := 0; i < 10; i++ {
		env := sampleEnvelope()
		env.Seq = uint64(i)
		want = append(want, env)
		buf = appendEnvelope(buf, env)
	}
	for i := 0; len(buf) > 0; i++ {
		n := int(binary.BigEndian.Uint32(buf))
		got, err := decodeEnvelope(buf[4 : 4+n])
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want[i]) {
			t.Errorf("frame %d mismatch: %+v", i, got)
		}
		buf = buf[4+n:]
	}
}

// TestDecodeEnvelopeCopies verifies a decoded envelope shares no memory
// with the frame buffer, which the transport recycles immediately.
func TestDecodeEnvelopeCopies(t *testing.T) {
	frame := appendEnvelope(nil, sampleEnvelope())
	env, err := decodeEnvelope(frame[4:])
	if err != nil {
		t.Fatal(err)
	}
	for i := range frame {
		frame[i] = 0xFF
	}
	if env.From != "nodeA" || env.Service != "datasrv" || !bytes.Equal(env.Payload, []byte("op-payload-bytes")) {
		t.Errorf("decoded envelope aliases the frame buffer: %+v", env)
	}
}

func TestDecodeEnvelopeFuzzNoPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	good := appendEnvelope(nil, sampleEnvelope())[4:]
	for i := 0; i < 5000; i++ {
		buf := make([]byte, rng.Intn(120))
		rng.Read(buf)
		_, _ = decodeEnvelope(buf) // must never panic

		// Truncations and single-byte corruptions of a valid frame.
		cut := append([]byte(nil), good[:rng.Intn(len(good))]...)
		_, _ = decodeEnvelope(cut)
		bad := append([]byte(nil), good...)
		bad[rng.Intn(len(bad))] ^= 1 << uint(rng.Intn(8))
		_, _ = decodeEnvelope(bad)
	}
}

func TestAppendEnvelopeAllocFree(t *testing.T) {
	env := sampleEnvelope()
	dst := make([]byte, 0, 4096)
	allocs := testing.AllocsPerRun(100, func() {
		dst = appendEnvelope(dst[:0], env)
	})
	if allocs != 0 {
		t.Errorf("appendEnvelope into a sized buffer: %.1f allocs/op, want 0", allocs)
	}
}

func BenchmarkEnvelopeEncode(b *testing.B) {
	env := sampleEnvelope()
	dst := make([]byte, 0, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = appendEnvelope(dst[:0], env)
	}
}

func TestFrameBufClasses(t *testing.T) {
	for _, n := range []int{1, 255, 256, 257, 4096, 64 << 10, (64 << 10) + 1} {
		b := frameBuf(n)
		if len(b) != n {
			t.Fatalf("frameBuf(%d): len %d", n, len(b))
		}
		putFrameBuf(b)
	}
	// A recycled class buffer comes back with its class capacity.
	b := frameBuf(300)
	if cap(b) != 1<<10 {
		t.Errorf("frameBuf(300): cap %d, want %d", cap(b), 1<<10)
	}
	putFrameBuf(b)
}
