package comm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tabs/internal/types"
)

func tid(n uint64) types.TransID {
	return types.TransID{Node: "origin", Seq: n, RootNode: "origin", RootSeq: n}
}

func pair(t *testing.T) (*Manager, *Manager, *MemNetwork) {
	t.Helper()
	net := NewMemNetwork()
	a := New("a", net.Endpoint("a"), nil)
	b := New("b", net.Endpoint("b"), nil)
	return a, b, net
}

func TestSessionCall(t *testing.T) {
	a, b, _ := pair(t)
	b.RegisterService("echo", func(from types.NodeID, _ types.TransID, payload []byte) ([]byte, error) {
		return append([]byte("from "+string(from)+": "), payload...), nil
	})
	out, err := a.Call("b", "echo", types.NilTransID, []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "from a: hi" {
		t.Errorf("out %q", out)
	}
}

func TestSessionCallError(t *testing.T) {
	a, b, _ := pair(t)
	b.RegisterService("fail", func(types.NodeID, types.TransID, []byte) ([]byte, error) {
		return nil, errors.New("handler exploded")
	})
	_, err := a.Call("b", "fail", types.NilTransID, nil)
	if err == nil || err.Error() != "handler exploded" {
		t.Errorf("err %v", err)
	}
}

func TestCallUnknownService(t *testing.T) {
	a, _, _ := pair(t)
	if _, err := a.Call("b", "nothing", types.NilTransID, nil); err == nil {
		t.Error("unknown service call succeeded")
	}
}

func TestCallToDeadNodeTimesOut(t *testing.T) {
	net := NewMemNetwork()
	a := New("a", net.Endpoint("a"), nil)
	a.CallTimeout = 50 * time.Millisecond
	a.Retries = 2
	_, err := a.Call("ghost", "x", types.NilTransID, nil)
	if err == nil {
		t.Fatal("call to missing node succeeded")
	}
}

// TestAtMostOnceUnderDuplication wraps the receiver's transport so the
// sender's session envelopes are duplicated; the handler must run once.
func TestAtMostOnceUnderDuplication(t *testing.T) {
	net := NewMemNetwork()
	aT := net.Endpoint("a")
	// Duplicate every session send from a.
	dupT := transportFunc{
		send: func(env *Envelope) error {
			if err := aT.Send(env); err != nil {
				return err
			}
			cp := *env
			return aT.Send(&cp)
		},
		setRecv: aT.SetReceiver,
		peers:   aT.Peers,
		close:   aT.Close,
	}
	a := New("a", dupT, nil)
	// Count envelopes fully processed by b's receiver so the test can
	// wait for the duplicate deterministically instead of sleeping.
	bT := net.Endpoint("b")
	var delivered atomic.Int64
	countT := transportFunc{
		send: bT.Send,
		setRecv: func(r Receiver) {
			bT.SetReceiver(func(env *Envelope) {
				r(env)
				delivered.Add(1)
			})
		},
		peers: bT.Peers,
		close: bT.Close,
	}
	b := New("b", countT, nil)
	var runs atomic.Int64
	b.RegisterService("once", func(types.NodeID, types.TransID, []byte) ([]byte, error) {
		runs.Add(1)
		return []byte("ok"), nil
	})
	if _, err := a.Call("b", "once", types.NilTransID, nil); err != nil {
		t.Fatal(err)
	}
	// Both the original and the duplicate must have been processed.
	waitUntil(t, time.Second, func() bool { return delivered.Load() >= 2 })
	if runs.Load() != 1 {
		t.Errorf("handler ran %d times (at-most-once violated)", runs.Load())
	}
}

type transportFunc struct {
	send    func(*Envelope) error
	setRecv func(Receiver)
	peers   func() []types.NodeID
	close   func() error
}

func (t transportFunc) Send(e *Envelope) error { return t.send(e) }
func (t transportFunc) SetReceiver(r Receiver) { t.setRecv(r) }
func (t transportFunc) Peers() []types.NodeID  { return t.peers() }
func (t transportFunc) Close() error           { return t.close() }

// TestRetransmissionMasksDatagramLossNot verifies the session layer
// retransmits through a lossy transport that also drops *session*
// envelopes occasionally... sessions are never dropped by FlakyTransport,
// so instead we check datagram loss tolerance: a dropped datagram is
// simply gone, with no error.
func TestFlakyDropsDatagramsSilently(t *testing.T) {
	net := NewMemNetwork()
	flaky := NewFlaky(net.Endpoint("a"), 1, 1.0, 0) // drop all datagrams
	a := New("a", flaky, nil)
	b := New("b", net.Endpoint("b"), nil)
	var got atomic.Int64
	b.RegisterService("dg", func(types.NodeID, types.TransID, []byte) ([]byte, error) {
		got.Add(1)
		return nil, nil
	})
	for i := 0; i < 10; i++ {
		if err := a.SendDatagram("b", "dg", types.NilTransID, nil, 0); err != nil {
			t.Fatal(err)
		}
	}
	// FlakyTransport drops synchronously (nothing was ever sent onward),
	// so no settling time is needed before asserting.
	if got.Load() != 0 {
		t.Errorf("dropped datagrams arrived: %d", got.Load())
	}
	dropped, _ := flaky.Counts()
	if dropped != 10 {
		t.Errorf("dropped count %d", dropped)
	}
}

func TestBroadcastReachesAllPeers(t *testing.T) {
	net := NewMemNetwork()
	a := New("a", net.Endpoint("a"), nil)
	var mu sync.Mutex
	seen := map[types.NodeID]bool{}
	for _, name := range []types.NodeID{"b", "c", "d"} {
		n := name
		m := New(n, net.Endpoint(n), nil)
		m.RegisterService("bc", func(from types.NodeID, _ types.TransID, _ []byte) ([]byte, error) {
			mu.Lock()
			seen[n] = true
			mu.Unlock()
			return nil, nil
		})
	}
	if err := a.Broadcast("bc", []byte("hello all")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for {
		mu.Lock()
		n := len(seen)
		mu.Unlock()
		if n == 3 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("broadcast reached %d of 3 peers", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSpanningTree verifies the parent/child bookkeeping: a first invokes
// on b (a is b's parent), b then invokes on c (b is c's parent, c is b's
// child).
func TestSpanningTree(t *testing.T) {
	net := NewMemNetwork()
	a := New("a", net.Endpoint("a"), nil)
	b := New("b", net.Endpoint("b"), nil)
	c := New("c", net.Endpoint("c"), nil)
	topTID := tid(1)

	c.RegisterService("op", func(types.NodeID, types.TransID, []byte) ([]byte, error) {
		return nil, nil
	})
	b.RegisterService("op", func(_ types.NodeID, id types.TransID, _ []byte) ([]byte, error) {
		// b calls on to c on behalf of the same transaction.
		return b.Call("c", "op", id, nil)
	})

	if _, err := a.Call("b", "op", topTID, nil); err != nil {
		t.Fatal(err)
	}

	parent, hasParent, children := a.Tree(topTID)
	if hasParent {
		t.Error("coordinator has a parent")
	}
	if len(children) != 1 || children[0] != "b" {
		t.Errorf("a's children %v", children)
	}
	parent, hasParent, children = b.Tree(topTID)
	if !hasParent || parent != "a" {
		t.Errorf("b's parent %v %v", parent, hasParent)
	}
	if len(children) != 1 || children[0] != "c" {
		t.Errorf("b's children %v", children)
	}
	parent, hasParent, children = c.Tree(topTID)
	if !hasParent || parent != "b" {
		t.Errorf("c's parent %v", parent)
	}
	if len(children) != 0 {
		t.Errorf("c's children %v", children)
	}
}

func TestNoteRemoteFiredOnce(t *testing.T) {
	net := NewMemNetwork()
	a := New("a", net.Endpoint("a"), nil)
	b := New("b", net.Endpoint("b"), nil)
	b.RegisterService("op", func(types.NodeID, types.TransID, []byte) ([]byte, error) { return nil, nil })
	var notes atomic.Int64
	a.SetTransactionNoter(noterFunc(func(types.TransID) { notes.Add(1) }))
	for i := 0; i < 3; i++ {
		if _, err := a.Call("b", "op", tid(7), nil); err != nil {
			t.Fatal(err)
		}
	}
	if notes.Load() != 1 {
		t.Errorf("NoteRemote fired %d times, want 1", notes.Load())
	}
}

type noterFunc func(types.TransID)

func (f noterFunc) NoteRemote(t types.TransID) { f(t) }

func TestForgetTree(t *testing.T) {
	net := NewMemNetwork()
	a := New("a", net.Endpoint("a"), nil)
	b := New("b", net.Endpoint("b"), nil)
	b.RegisterService("op", func(types.NodeID, types.TransID, []byte) ([]byte, error) { return nil, nil })
	if _, err := a.Call("b", "op", tid(2), nil); err != nil {
		t.Fatal(err)
	}
	a.ForgetTree(tid(2))
	_, _, children := a.Tree(tid(2))
	if len(children) != 0 {
		t.Errorf("tree survived forget: %v", children)
	}
}

func TestTCPTransportLoopback(t *testing.T) {
	// Build two TCP transports on loopback and run a session call and a
	// datagram through real sockets.
	ta, err := NewTCP("a", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()
	tb, err := NewTCP("b", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	// Exchange addresses post-bind.
	ta.peers = map[types.NodeID]string{"b": tb.Addr()}
	tb.peers = map[types.NodeID]string{"a": ta.Addr()}

	a := New("a", ta, nil)
	b := New("b", tb, nil)
	b.RegisterService("echo", func(_ types.NodeID, _ types.TransID, p []byte) ([]byte, error) {
		return append([]byte("tcp:"), p...), nil
	})
	out, err := a.Call("b", "echo", types.NilTransID, []byte("over the wire"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "tcp:over the wire" {
		t.Errorf("out %q", out)
	}

	var got atomic.Int64
	b.RegisterService("dg", func(types.NodeID, types.TransID, []byte) ([]byte, error) {
		got.Add(1)
		return nil, nil
	})
	if err := a.SendDatagram("b", "dg", types.NilTransID, []byte("fire and forget"), 0); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for got.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("datagram never arrived over TCP")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestTCPDatagramToDeadPeerSilentlyDropped(t *testing.T) {
	ta, err := NewTCP("a", "127.0.0.1:0", map[types.NodeID]string{"dead": "127.0.0.1:1"})
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()
	env := &Envelope{From: "a", To: "dead", Kind: KindDatagram, Service: "x"}
	if err := ta.Send(env); err != nil {
		t.Errorf("datagram to dead peer returned %v", err)
	}
	sess := &Envelope{From: "a", To: "dead", Kind: KindSession, Service: "x"}
	if err := ta.Send(sess); err == nil {
		t.Error("session to dead peer succeeded")
	}
}

func TestDetachSimulatesCrash(t *testing.T) {
	net := NewMemNetwork()
	a := New("a", net.Endpoint("a"), nil)
	a.CallTimeout = 50 * time.Millisecond
	a.Retries = 1
	b := New("b", net.Endpoint("b"), nil)
	b.RegisterService("op", func(types.NodeID, types.TransID, []byte) ([]byte, error) { return nil, nil })
	if _, err := a.Call("b", "op", types.NilTransID, nil); err != nil {
		t.Fatal(err)
	}
	net.Detach("b")
	if _, err := a.Call("b", "op", types.NilTransID, nil); err == nil {
		t.Error("call to crashed node succeeded")
	}
}

func TestEnvelopeKindString(t *testing.T) {
	if KindSession.String() != "session" || KindDatagram.String() != "datagram" {
		t.Error("kind names wrong")
	}
	if fmt.Sprintf("%v", Kind(9)) == "" {
		t.Error("unknown kind empty")
	}
}

// waitUntil polls cond every millisecond until it holds or the deadline
// passes, replacing fixed sleeps that race the goroutines they wait for.
func waitUntil(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached before deadline")
		}
		time.Sleep(time.Millisecond)
	}
}
