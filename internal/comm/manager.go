package comm

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"tabs/internal/simclock"
	"tabs/internal/stats"
	"tabs/internal/trace"
	"tabs/internal/types"
)

// Handler processes one inbound request for a registered service and
// returns the response payload (session calls) — datagram handlers'
// returns are discarded. It is an alias so that consumer-defined
// interfaces can name the same signature structurally.
type Handler = func(from types.NodeID, tid types.TransID, payload []byte) ([]byte, error)

// TransactionNoter is the Transaction Manager interface the Communication
// Manager notifies "the first time an inter-node message is sent or
// received on behalf of a particular transaction" (§3.2.3).
type TransactionNoter interface {
	NoteRemote(tid types.TransID)
}

// Errors.
var (
	ErrTimeout   = errors.New("comm: session call timed out (remote node presumed crashed)")
	ErrNoService = errors.New("comm: no such service")
)

// treeInfo is one transaction's local view of the commit spanning tree: a
// node A is the parent of node B iff A was the first node to invoke an
// operation on B on behalf of the transaction (§3.2.3). The Communication
// Manager builds this by scanning transaction identifiers in session
// traffic (§3.2.4).
type treeInfo struct {
	parent      types.NodeID
	hasParent   bool
	children    []types.NodeID
	childSet    map[types.NodeID]bool
	notifiedTM  bool
	remoteFirst bool // transaction arrived from a remote node
}

type pendingCall struct {
	ch chan *Envelope
}

// dedupKey identifies one session request for the at-most-once cache: the
// sender, its incarnation, and the per-incarnation sequence number.
type dedupKey struct {
	from  types.NodeID
	epoch uint64
	seq   uint64
}

// Manager is one node's Communication Manager.
type Manager struct {
	node      types.NodeID
	transport Transport
	rec       *stats.Recorder
	tr        *trace.Tracer

	mu       sync.Mutex
	services map[string]Handler
	noter    TransactionNoter
	trees    map[types.TransID]*treeInfo
	epoch    uint64
	nextSeq  uint64
	pending  map[uint64]*pendingCall
	// seen caches replies to already-processed session requests so
	// retransmissions are answered without re-executing (at-most-once).
	// Keyed by a comparable struct, not a formatted string: deliver runs
	// once per inbound session message and a fmt key showed up in profiles.
	seen   map[dedupKey]*Envelope
	closed bool

	// CallTimeout bounds one session attempt; Retries is how many
	// attempts are made before the peer is presumed crashed.
	CallTimeout time.Duration
	Retries     int
}

// New returns a Communication Manager bound to transport.
func New(node types.NodeID, transport Transport, rec *stats.Recorder) *Manager {
	m := &Manager{
		node:      node,
		transport: transport,
		rec:       rec,
		services:  make(map[string]Handler),
		trees:     make(map[types.TransID]*treeInfo),
		// The epoch marks this incarnation of the node, so receivers'
		// duplicate caches cannot confuse a restarted node's fresh calls
		// with its predecessor's.
		epoch:       uint64(time.Now().UnixNano()),
		pending:     make(map[uint64]*pendingCall),
		seen:        make(map[dedupKey]*Envelope),
		CallTimeout: 2 * time.Second,
		Retries:     3,
	}
	transport.SetReceiver(m.deliver)
	return m
}

// AttachTracer points the manager's session/datagram spans and counters at
// tr. Call before traffic starts; a nil tracer disables them.
func (m *Manager) AttachTracer(tr *trace.Tracer) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tr = tr
}

// Node returns the owning node's identifier.
func (m *Manager) Node() types.NodeID { return m.node }

// Peers lists the reachable remote nodes.
func (m *Manager) Peers() []types.NodeID { return m.transport.Peers() }

// SetTransactionNoter attaches the Transaction Manager for remote-activity
// notifications.
func (m *Manager) SetTransactionNoter(n TransactionNoter) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.noter = n
}

// RegisterService installs handler for inbound envelopes naming service.
func (m *Manager) RegisterService(service string, handler Handler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.services[service] = handler
}

// noteOutbound updates the spanning tree for an outbound session message on
// behalf of tid: the peer becomes our child unless it is already our
// parent. Returns true if this is new remote involvement for tid.
func (m *Manager) noteOutbound(tid types.TransID, peer types.NodeID) {
	if tid.IsNil() {
		return
	}
	top := tid.TopLevel()
	m.mu.Lock()
	t := m.trees[top]
	if t == nil {
		t = &treeInfo{childSet: make(map[types.NodeID]bool)}
		m.trees[top] = t
	}
	notify := false
	if (!t.hasParent || t.parent != peer) && !t.childSet[peer] {
		t.childSet[peer] = true
		t.children = append(t.children, peer)
	}
	if !t.notifiedTM {
		t.notifiedTM = true
		notify = true
	}
	noter := m.noter
	m.mu.Unlock()
	if notify && noter != nil {
		if m.rec != nil {
			m.rec.Record(simclock.SmallMsg) // CM -> TM first-remote message
		}
		noter.NoteRemote(top)
	}
}

// noteInbound updates the spanning tree for an inbound session message.
func (m *Manager) noteInbound(tid types.TransID, peer types.NodeID) {
	if tid.IsNil() {
		return
	}
	top := tid.TopLevel()
	m.mu.Lock()
	t := m.trees[top]
	if t == nil {
		t = &treeInfo{childSet: make(map[types.NodeID]bool)}
		m.trees[top] = t
	}
	notify := false
	if !t.hasParent && !t.childSet[peer] {
		t.parent = peer
		t.hasParent = true
		t.remoteFirst = true
	}
	if !t.notifiedTM {
		t.notifiedTM = true
		notify = true
	}
	noter := m.noter
	m.mu.Unlock()
	if notify && noter != nil {
		if m.rec != nil {
			m.rec.Record(simclock.SmallMsg)
		}
		noter.NoteRemote(top)
	}
}

// Tree returns tid's local spanning-tree relations: the parent (if any)
// and the children. The Transaction Manager obtains "the complete site
// list ... from the Communication Manager during commit processing"
// (§3.2.3).
func (m *Manager) Tree(tid types.TransID) (parent types.NodeID, hasParent bool, children []types.NodeID) {
	top := tid.TopLevel()
	m.mu.Lock()
	defer m.mu.Unlock()
	t := m.trees[top]
	if t == nil {
		return "", false, nil
	}
	return t.parent, t.hasParent, append([]types.NodeID(nil), t.children...)
}

// ForgetTree discards tid's spanning-tree state after commit or abort.
func (m *Manager) ForgetTree(tid types.TransID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.trees, tid.TopLevel())
}

// Call performs a session-based remote procedure call: at-most-once
// execution with ordered delivery per the paper's session guarantees
// (§3.2.4). Lost traffic is retransmitted with the same sequence number;
// the receiver's duplicate cache answers retransmissions without
// re-executing. Repeated failure is reported as a presumed remote crash.
// Each call charges one Inter-Node Data Server Call primitive, covering
// both directions (Table 5-1).
func (m *Manager) Call(peer types.NodeID, service string, tid types.TransID, payload []byte) ([]byte, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	m.nextSeq++
	seq := m.nextSeq
	pc := &pendingCall{ch: make(chan *Envelope, 1)}
	m.pending[seq] = pc
	tr := m.tr
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		delete(m.pending, seq)
		m.mu.Unlock()
	}()

	if m.rec != nil {
		m.rec.Record(simclock.InterNodeCall)
	}
	m.noteOutbound(tid, peer)

	sp := tr.Begin("comm", "call").Annotatef("peer=%s", peer).Annotatef("service=%s", service)
	if !tid.IsNil() {
		sp.SetTID(tid)
	}
	tr.Count("comm.session.sent", 1)

	env := &Envelope{
		From: m.node, To: peer, Kind: KindSession, Epoch: m.epoch, Seq: seq,
		Service: service, TID: tid, Payload: payload,
	}
	attempts := m.Retries
	if attempts < 1 {
		attempts = 1
	}
	for i := 0; i < attempts; i++ {
		if i > 0 {
			sp.Annotatef("retransmit=%d", i)
			tr.Count("comm.session.retransmits", 1)
		}
		if err := m.transport.Send(env); err != nil {
			err = fmt.Errorf("comm: session to %s: %w", peer, err)
			sp.EndErr(err)
			return nil, err
		}
		timer := time.NewTimer(m.CallTimeout)
		select {
		case reply := <-pc.ch:
			timer.Stop()
			if reply.Err != "" {
				err := errors.New(reply.Err)
				sp.EndErr(err)
				return reply.Payload, err
			}
			sp.End()
			return reply.Payload, nil
		case <-timer.C:
			// Retransmit with the same sequence number.
		}
	}
	err := fmt.Errorf("%w: %s", ErrTimeout, peer)
	sp.EndErr(err)
	return nil, err
}

// SendDatagram sends a one-way datagram, charging the given fraction of a
// Datagram primitive. The commit protocol's parallel sends to multiple
// children are charged one-half each after the first, per the paper's
// longest-path approximation (Table 5-3).
func (m *Manager) SendDatagram(peer types.NodeID, service string, tid types.TransID, payload []byte, charge float64) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	tr := m.tr
	m.mu.Unlock()
	if m.rec != nil && charge > 0 {
		m.rec.RecordN(simclock.Datagram, charge)
	}
	tr.Count("comm.datagram.sent", 1)
	env := &Envelope{
		From: m.node, To: peer, Kind: KindDatagram,
		Service: service, TID: tid, Payload: payload,
	}
	return m.transport.Send(env)
}

// Broadcast sends a datagram to every reachable peer (name lookup,
// §3.2.5). One Datagram primitive is charged for the broadcast.
func (m *Manager) Broadcast(service string, payload []byte) error {
	peers := m.transport.Peers()
	if m.rec != nil && len(peers) > 0 {
		m.rec.Record(simclock.Datagram)
	}
	for _, p := range peers {
		env := &Envelope{From: m.node, To: p, Kind: KindDatagram, Service: service, Payload: payload}
		if err := m.transport.Send(env); err != nil && !errors.Is(err, ErrUnreachable) {
			return err
		}
	}
	return nil
}

// deliver is the transport receive callback.
func (m *Manager) deliver(env *Envelope) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	if env.Kind == KindDatagram {
		m.tr.Count("comm.datagram.recv", 1)
	} else if !env.IsReply {
		m.tr.Count("comm.session.recv", 1)
	}
	if env.Kind == KindSession && env.IsReply {
		pc := m.pending[env.Seq]
		m.mu.Unlock()
		if pc != nil {
			select {
			case pc.ch <- env:
			default:
			}
		}
		return
	}
	handler := m.services[env.Service]
	if env.Kind == KindSession {
		key := dedupKey{from: env.From, epoch: env.Epoch, seq: env.Seq}
		if cached, ok := m.seen[key]; ok {
			m.mu.Unlock()
			_ = m.transport.Send(cached)
			return
		}
		m.mu.Unlock()
		m.noteInbound(env.TID, env.From)
		reply := &Envelope{
			From: m.node, To: env.From, Kind: KindSession,
			Epoch: env.Epoch, Seq: env.Seq, IsReply: true, Service: env.Service, TID: env.TID,
		}
		if handler == nil {
			reply.Err = fmt.Sprintf("%v: %s", ErrNoService, env.Service)
		} else {
			out, err := handler(env.From, env.TID, env.Payload)
			reply.Payload = out
			if err != nil {
				reply.Err = err.Error()
			}
		}
		m.mu.Lock()
		m.seen[key] = reply
		// Bound the duplicate cache.
		if len(m.seen) > 4096 {
			m.seen = map[dedupKey]*Envelope{key: reply}
		}
		m.mu.Unlock()
		_ = m.transport.Send(reply)
		return
	}
	// Datagram.
	m.mu.Unlock()
	if handler != nil {
		_, _ = handler(env.From, env.TID, env.Payload)
	}
}

// Close shuts the manager down (node crash): pending calls fail and the
// endpoint detaches from the network.
func (m *Manager) Close() error {
	m.mu.Lock()
	m.closed = true
	pending := m.pending
	m.pending = make(map[uint64]*pendingCall)
	m.trees = make(map[types.TransID]*treeInfo)
	m.seen = make(map[dedupKey]*Envelope)
	m.mu.Unlock()
	for _, pc := range pending {
		select {
		case pc.ch <- &Envelope{Err: ErrClosed.Error()}:
		default:
		}
	}
	return m.transport.Close()
}
