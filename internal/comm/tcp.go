package comm

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"tabs/internal/types"
)

// TCPTransport connects a node to its peers over TCP, one process per
// node — the deployment cmd/tabsnode uses. Session envelopes ride the
// ordered TCP stream; datagram envelopes share it but are fire-and-forget
// (a failed send is swallowed, as a lost datagram would be).
//
// Peer addresses are static, as the workstation cluster's were. Every
// envelope is self-describing (gob), and connections are (re)dialed on
// demand, so nodes may start in any order and crashed peers may return.
type TCPTransport struct {
	self  types.NodeID
	ln    net.Listener
	peers map[types.NodeID]string

	mu     sync.Mutex
	recv   Receiver
	conns  map[types.NodeID]*tcpConn
	closed bool
}

type tcpConn struct {
	c   net.Conn
	enc *gob.Encoder
	mu  sync.Mutex
}

// wireEnvelope is the gob wire form of Envelope (exported fields only; it
// mirrors Envelope exactly and exists to keep the wire format explicit).
type wireEnvelope struct {
	From    types.NodeID
	To      types.NodeID
	Kind    Kind
	Epoch   uint64
	Seq     uint64
	IsReply bool
	Service string
	TID     types.TransID
	Payload []byte
	Err     string
}

// NewTCP starts a transport listening on listenAddr for node self, with
// the given peer address table (peer node -> host:port).
func NewTCP(self types.NodeID, listenAddr string, peers map[types.NodeID]string) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("comm: listen %s: %w", listenAddr, err)
	}
	t := &TCPTransport{
		self:  self,
		ln:    ln,
		peers: peers,
		conns: make(map[types.NodeID]*tcpConn),
	}
	go t.acceptLoop()
	return t, nil
}

// Addr returns the transport's bound listen address.
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

func (t *TCPTransport) acceptLoop() {
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return
		}
		t.startConn(c)
	}
}

// startConn wraps a socket (dialed or accepted) with its single shared
// encoder and starts its read loop.
func (t *TCPTransport) startConn(c net.Conn) *tcpConn {
	tc := &tcpConn{c: c, enc: gob.NewEncoder(c)}
	go t.readLoop(tc)
	return tc
}

func (t *TCPTransport) readLoop(tc *tcpConn) {
	defer tc.c.Close()
	dec := gob.NewDecoder(tc.c)
	for {
		var w wireEnvelope
		if err := dec.Decode(&w); err != nil {
			return
		}
		// Learn the sender's connection so replies (and future traffic)
		// can ride the same stream — required for peers we have no
		// dialable address for, such as tabsctl application nodes. The
		// most recent inbound connection wins, so a peer that restarts
		// under the same name (or reconnects) is reachable again. The
		// replaced connection is closed: leaving it open would let an
		// in-flight Send keep encoding onto a stream nobody reads (the
		// restarted peer's old socket), silently losing the envelope. The
		// close makes that Send fail and retry on the live connection.
		if w.From != "" {
			var stale *tcpConn
			t.mu.Lock()
			if !t.closed && t.conns[w.From] != tc {
				stale = t.conns[w.From]
				t.conns[w.From] = tc
			}
			t.mu.Unlock()
			if stale != nil {
				stale.c.Close()
			}
		}
		t.mu.Lock()
		recv := t.recv
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return
		}
		if recv != nil {
			env := Envelope(w)
			go recv(&env)
		}
	}
}

// SetReceiver implements Transport.
func (t *TCPTransport) SetReceiver(r Receiver) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.recv = r
}

// conn returns (dialing if needed) the outbound connection to peer.
func (t *TCPTransport) conn(peer types.NodeID) (*tcpConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	if tc, ok := t.conns[peer]; ok {
		t.mu.Unlock()
		return tc, nil
	}
	addr, ok := t.peers[peer]
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: no address for %s", ErrUnreachable, peer)
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("%w: %s (%v)", ErrUnreachable, peer, err)
	}
	t.mu.Lock()
	if old, ok := t.conns[peer]; ok {
		t.mu.Unlock()
		c.Close()
		return old, nil
	}
	tc := t.startConn(c)
	t.conns[peer] = tc
	t.mu.Unlock()
	return tc, nil
}

// dropConn discards a broken connection so the next send redials.
func (t *TCPTransport) dropConn(peer types.NodeID, tc *tcpConn) {
	t.mu.Lock()
	if t.conns[peer] == tc {
		delete(t.conns, peer)
	}
	t.mu.Unlock()
	tc.c.Close()
}

// Send implements Transport. A connection can be replaced under a sender's
// feet (the peer restarted and redialed us, or its read loop died), so each
// attempt encodes under that connection's own mutex — two senders can never
// interleave gob frames on one stream — and a failed encode drops the dead
// connection and retries on a freshly looked-up (possibly redialed) one.
// The retry loop is bounded: a persistently unreachable peer surfaces
// ErrUnreachable and the session layer's retransmission takes over. An
// encoder that has failed once is never written again (gob's stream state
// is undefined after a partial write); dropConn guarantees the next
// attempt gets a different connection.
func (t *TCPTransport) Send(env *Envelope) error {
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		tc, err := t.conn(env.To)
		if err != nil {
			if env.Kind == KindDatagram {
				return nil // datagrams to unreachable peers vanish
			}
			return err
		}
		tc.mu.Lock()
		err = tc.enc.Encode((*wireEnvelope)(env))
		tc.mu.Unlock()
		if err == nil {
			return nil
		}
		t.dropConn(env.To, tc)
		if env.Kind == KindDatagram {
			return nil
		}
		lastErr = err
	}
	return fmt.Errorf("%w: %s (%v)", ErrUnreachable, env.To, lastErr)
}

// Peers implements Transport.
func (t *TCPTransport) Peers() []types.NodeID {
	out := make([]types.NodeID, 0, len(t.peers))
	for id := range t.peers {
		out = append(out, id)
	}
	return out
}

// Close implements Transport.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	t.closed = true
	conns := t.conns
	t.conns = make(map[types.NodeID]*tcpConn)
	t.mu.Unlock()
	for _, tc := range conns {
		tc.c.Close()
	}
	return t.ln.Close()
}
