package comm

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"tabs/internal/types"
)

// TCPTransport connects a node to its peers over TCP, one process per
// node — the deployment cmd/tabsnode uses. Session envelopes ride the
// ordered TCP stream; datagram envelopes share it but are fire-and-forget
// (a failed send is swallowed, as a lost datagram would be).
//
// Peer addresses are static, as the workstation cluster's were. Envelopes
// travel in the length-framed binary form of codec.go, and connections are
// (re)dialed on demand, so nodes may start in any order and crashed peers
// may return.
//
// Sends are asynchronous and coalesced: Send encodes the envelope into the
// connection's pending buffer and returns; a per-connection writer goroutine
// drains whatever has accumulated in one Write call. Messages queued by
// concurrent senders during one write cycle thus share a single syscall,
// and the two pending buffers are reused forever — the send path allocates
// nothing in steady state. An envelope accepted by Send can still be lost
// if the connection dies before the writer flushes it; that is the same
// contract as before (a TCP send can be buffered by the OS and lost on
// RST), and the session layer's retransmission recovers.
type TCPTransport struct {
	self  types.NodeID
	ln    net.Listener
	peers map[types.NodeID]string

	mu     sync.Mutex
	recv   Receiver
	conns  map[types.NodeID]*tcpConn
	closed bool
}

type tcpConn struct {
	c net.Conn

	mu    sync.Mutex
	out   []byte        // frames appended by senders, awaiting the writer
	spare []byte        // the writer's drained buffer, recycled next cycle
	wake  chan struct{} // 1-buffered doorbell for the writer
	dead  bool          // no further enqueues; writer exits
}

// NewTCP starts a transport listening on listenAddr for node self, with
// the given peer address table (peer node -> host:port).
func NewTCP(self types.NodeID, listenAddr string, peers map[types.NodeID]string) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("comm: listen %s: %w", listenAddr, err)
	}
	t := &TCPTransport{
		self:  self,
		ln:    ln,
		peers: peers,
		conns: make(map[types.NodeID]*tcpConn),
	}
	go t.acceptLoop()
	return t, nil
}

// Addr returns the transport's bound listen address.
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

func (t *TCPTransport) acceptLoop() {
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return
		}
		t.startConn(c)
	}
}

// startConn wraps a socket (dialed or accepted) and starts its read and
// write loops.
func (t *TCPTransport) startConn(c net.Conn) *tcpConn {
	tc := &tcpConn{c: c, wake: make(chan struct{}, 1)}
	go t.readLoop(tc)
	go tc.writeLoop()
	return tc
}

// enqueue stages env on the connection's pending buffer and rings the
// writer. It reports false if the connection is already dead, in which case
// nothing was staged.
func (tc *tcpConn) enqueue(env *Envelope) bool {
	tc.mu.Lock()
	if tc.dead {
		tc.mu.Unlock()
		return false
	}
	tc.out = appendEnvelope(tc.out, env)
	tc.mu.Unlock()
	select {
	case tc.wake <- struct{}{}:
	default: // writer already signalled; it will see our bytes
	}
	return true
}

// kill marks the connection unusable and unblocks the writer. Safe to call
// more than once.
func (tc *tcpConn) kill() {
	tc.mu.Lock()
	tc.dead = true
	tc.mu.Unlock()
	tc.c.Close()
	select {
	case tc.wake <- struct{}{}:
	default:
	}
}

// writeLoop drains the pending buffer into the socket, one Write per
// accumulated batch. The two buffers (out/spare) swap roles each cycle, so
// steady-state sending allocates nothing and concurrent senders' frames
// coalesce into single syscalls.
func (tc *tcpConn) writeLoop() {
	for range tc.wake {
		tc.mu.Lock()
		if tc.dead {
			tc.mu.Unlock()
			return
		}
		batch := tc.out
		tc.out = tc.spare[:0]
		tc.spare = nil
		tc.mu.Unlock()
		if len(batch) == 0 {
			tc.mu.Lock()
			tc.spare = batch
			tc.mu.Unlock()
			continue
		}
		_, err := tc.c.Write(batch)
		tc.mu.Lock()
		tc.spare = batch[:0]
		tc.mu.Unlock()
		if err != nil {
			tc.kill()
			return
		}
	}
}

func (t *TCPTransport) readLoop(tc *tcpConn) {
	defer tc.kill()
	br := bufio.NewReaderSize(tc.c, 64<<10)
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		n := int(binary.BigEndian.Uint32(hdr[:]))
		if n <= 0 || n > maxWireFrame {
			return // framing lost; the connection is unusable
		}
		buf := frameBuf(n)
		if _, err := io.ReadFull(br, buf); err != nil {
			putFrameBuf(buf)
			return
		}
		env, err := decodeEnvelope(buf)
		putFrameBuf(buf)
		if err != nil {
			return
		}
		// Learn the sender's connection so replies (and future traffic)
		// can ride the same stream — required for peers we have no
		// dialable address for, such as tabsctl application nodes. The
		// most recent inbound connection wins, so a peer that restarts
		// under the same name (or reconnects) is reachable again. The
		// replaced connection is killed: leaving it open would let Send
		// keep queueing onto a stream nobody reads (the restarted peer's
		// old socket), silently losing envelopes. The kill makes those
		// enqueues fail and retry on the live connection.
		if env.From != "" {
			var stale *tcpConn
			t.mu.Lock()
			if !t.closed && t.conns[env.From] != tc {
				stale = t.conns[env.From]
				t.conns[env.From] = tc
			}
			t.mu.Unlock()
			if stale != nil {
				stale.kill()
			}
		}
		t.mu.Lock()
		recv := t.recv
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return
		}
		if recv != nil {
			go recv(env)
		}
	}
}

// SetReceiver implements Transport.
func (t *TCPTransport) SetReceiver(r Receiver) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.recv = r
}

// conn returns (dialing if needed) the outbound connection to peer.
func (t *TCPTransport) conn(peer types.NodeID) (*tcpConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	if tc, ok := t.conns[peer]; ok {
		t.mu.Unlock()
		return tc, nil
	}
	addr, ok := t.peers[peer]
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: no address for %s", ErrUnreachable, peer)
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("%w: %s (%v)", ErrUnreachable, peer, err)
	}
	t.mu.Lock()
	if old, ok := t.conns[peer]; ok {
		t.mu.Unlock()
		c.Close()
		return old, nil
	}
	tc := t.startConn(c)
	t.conns[peer] = tc
	t.mu.Unlock()
	return tc, nil
}

// dropConn discards a broken connection so the next send redials.
func (t *TCPTransport) dropConn(peer types.NodeID, tc *tcpConn) {
	t.mu.Lock()
	if t.conns[peer] == tc {
		delete(t.conns, peer)
	}
	t.mu.Unlock()
	tc.kill()
}

// Send implements Transport. A connection can be replaced under a sender's
// feet (the peer restarted and redialed us, or its read loop died), so each
// attempt enqueues under that connection's own mutex — two senders can
// never interleave frames on one stream — and an enqueue refused by a dead
// connection drops it and retries on a freshly looked-up (possibly
// redialed) one. The retry loop is bounded: a persistently unreachable peer
// surfaces ErrUnreachable and the session layer's retransmission takes
// over.
func (t *TCPTransport) Send(env *Envelope) error {
	for attempt := 0; attempt < 3; attempt++ {
		tc, err := t.conn(env.To)
		if err != nil {
			if env.Kind == KindDatagram {
				return nil // datagrams to unreachable peers vanish
			}
			return err
		}
		if tc.enqueue(env) {
			return nil
		}
		t.dropConn(env.To, tc)
		if env.Kind == KindDatagram {
			return nil
		}
	}
	return fmt.Errorf("%w: %s (connection kept dying)", ErrUnreachable, env.To)
}

// Peers implements Transport.
func (t *TCPTransport) Peers() []types.NodeID {
	out := make([]types.NodeID, 0, len(t.peers))
	for id := range t.peers {
		out = append(out, id)
	}
	return out
}

// Close implements Transport.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	t.closed = true
	conns := t.conns
	t.conns = make(map[types.NodeID]*tcpConn)
	t.mu.Unlock()
	for _, tc := range conns {
		tc.kill()
	}
	return t.ln.Close()
}
