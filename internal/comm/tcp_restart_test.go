package comm_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tabs/internal/comm"
	"tabs/internal/types"
)

// startReceiver builds a TCP transport for name that records every
// distinct (From, Seq) session envelope it sees.
func startReceiver(t *testing.T, name types.NodeID, addr string, seen *sync.Map, count *atomic.Int64) *comm.TCPTransport {
	t.Helper()
	tr, err := comm.NewTCP(name, addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr.SetReceiver(func(env *comm.Envelope) {
		if env.Kind != comm.KindSession {
			return
		}
		if _, dup := seen.LoadOrStore(env.Seq, true); !dup {
			count.Add(1)
		}
	})
	return tr
}

// TestTCPSendSurvivesPeerRestart hammers a peer with concurrent session
// sends while that peer is closed and restarted on the same address. The
// regression under test: a send could grab a connection, the read loop
// could replace it (peer redialed us / restart), and the send would encode
// onto the dead stream — lost envelope, or interleaved gob frames
// corrupting the stream for every later message. After the restart, sends
// must flow again on a fresh connection with no decoder corruption.
func TestTCPSendSurvivesPeerRestart(t *testing.T) {
	var seen sync.Map
	var received atomic.Int64
	b := startReceiver(t, "b", "127.0.0.1:0", &seen, &received)
	addr := b.Addr()

	a, err := comm.NewTCP("a", "127.0.0.1:0", map[types.NodeID]string{"b": addr})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	var sent atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	// Four concurrent senders: gob frames must never interleave on one
	// stream (per-connection encode mutex).
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				env := &comm.Envelope{
					From: "a", To: "b", Kind: comm.KindSession,
					Seq: uint64(g)<<32 | uint64(i), Service: "t", Payload: []byte("x"),
				}
				if err := a.Send(env); err == nil {
					sent.Add(1)
				}
				// Sends during the restart window legitimately fail with
				// ErrUnreachable; the loop just keeps pressing.
			}
		}(g)
	}

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				stop.Store(true)
				wg.Wait()
				t.Fatalf("timed out waiting for %s (sent=%d received=%d)", what, sent.Load(), received.Load())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Phase 1: traffic flows.
	waitFor("initial traffic", func() bool { return received.Load() >= 50 })

	// Restart b on the same address while senders are mid-flight.
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b = startReceiver(t, "b", addr, &seen, &received)
	defer b.Close()

	// Phase 2: sends must succeed again post-restart — the old dead
	// connection is dropped and redialed, not written to forever.
	after := received.Load()
	waitFor("post-restart traffic", func() bool { return received.Load() >= after+50 })

	stop.Store(true)
	wg.Wait()
	if received.Load() == 0 || sent.Load() == 0 {
		t.Fatalf("no traffic at all: sent=%d received=%d", sent.Load(), received.Load())
	}
}
