// Package comm implements the TABS Communication Manager (paper §3.2.4):
// the only component with access to the network. It provides the three
// forms of network communication the paper enumerates — reliable session
// communication for remote procedure calls, datagrams for the distributed
// two-phase commit, and broadcast for name lookup — and maintains the
// per-transaction spanning tree (parent, children, remote involvement)
// that the Transaction Manager consumes during commit.
package comm

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"tabs/internal/types"
)

// Kind classifies an envelope on the wire.
type Kind uint8

// Envelope kinds.
const (
	KindSession  Kind = iota // reliable, at-most-once RPC traffic
	KindDatagram             // unreliable one-shot (commit protocol)
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindSession:
		return "session"
	case KindDatagram:
		return "datagram"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Envelope is one unit of inter-node traffic.
type Envelope struct {
	From types.NodeID
	To   types.NodeID
	Kind Kind
	// Epoch distinguishes incarnations of a node: a restarted sender
	// reuses sequence numbers, and the receiver's at-most-once duplicate
	// cache must not answer a new incarnation's call with a previous
	// incarnation's cached reply.
	Epoch   uint64
	Seq     uint64 // session sequence number (dedup / reply matching)
	IsReply bool
	Service string // dispatch target ("datasrv", "name", "txn", ...)
	TID     types.TransID
	Payload []byte
	Err     string // error response for session calls
}

// Receiver is a node's delivery callback; the transport invokes it for
// every arriving envelope. Implementations must not block indefinitely.
type Receiver func(env *Envelope)

// Transport moves envelopes between nodes.
type Transport interface {
	// Send delivers env to env.To. Session envelopes are delivered
	// reliably in order (or an error is returned); datagram envelopes
	// are best effort.
	Send(env *Envelope) error
	// SetReceiver installs the local delivery callback.
	SetReceiver(r Receiver)
	// Peers lists the other reachable nodes (for broadcast).
	Peers() []types.NodeID
	// Close tears the endpoint down.
	Close() error
}

// Transport errors.
var (
	ErrUnreachable = errors.New("comm: node unreachable")
	ErrClosed      = errors.New("comm: endpoint closed")
)

// --- In-memory network ----------------------------------------------------

// MemNetwork connects in-process endpoints; it is the deterministic
// substitute for the Perq Ethernet (see DESIGN.md §1).
type MemNetwork struct {
	mu    sync.Mutex
	nodes map[types.NodeID]*memEndpoint
}

// NewMemNetwork returns an empty network.
func NewMemNetwork() *MemNetwork {
	return &MemNetwork{nodes: make(map[types.NodeID]*memEndpoint)}
}

// Endpoint attaches a node to the network and returns its transport.
func (n *MemNetwork) Endpoint(id types.NodeID) Transport {
	n.mu.Lock()
	defer n.mu.Unlock()
	ep := &memEndpoint{net: n, id: id}
	n.nodes[id] = ep
	return ep
}

// Detach removes a node (simulating a crash: in-flight traffic to it is
// dropped, sessions to it fail).
func (n *MemNetwork) Detach(id types.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ep := n.nodes[id]; ep != nil {
		ep.mu.Lock()
		ep.closed = true
		ep.recv = nil
		ep.mu.Unlock()
	}
	delete(n.nodes, id)
}

type memEndpoint struct {
	net    *MemNetwork
	id     types.NodeID
	mu     sync.Mutex
	recv   Receiver
	closed bool
}

func (e *memEndpoint) SetReceiver(r Receiver) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.recv = r
}

func (e *memEndpoint) Send(env *Envelope) error {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return ErrClosed
	}
	e.net.mu.Lock()
	dst := e.net.nodes[env.To]
	e.net.mu.Unlock()
	if dst == nil {
		if env.Kind == KindDatagram {
			return nil // datagrams vanish silently, like UDP to a dead host
		}
		return fmt.Errorf("%w: %s", ErrUnreachable, env.To)
	}
	dst.mu.Lock()
	recv := dst.recv
	dst.mu.Unlock()
	if recv == nil {
		if env.Kind == KindDatagram {
			return nil
		}
		return fmt.Errorf("%w: %s", ErrUnreachable, env.To)
	}
	// Deliver on a fresh goroutine so senders never block on receivers
	// and lock ordering between nodes cannot deadlock.
	cp := *env
	go recv(&cp)
	return nil
}

func (e *memEndpoint) Peers() []types.NodeID {
	e.net.mu.Lock()
	defer e.net.mu.Unlock()
	out := make([]types.NodeID, 0, len(e.net.nodes))
	for id := range e.net.nodes {
		if id != e.id {
			out = append(out, id)
		}
	}
	return out
}

func (e *memEndpoint) Close() error {
	e.net.Detach(e.id)
	return nil
}

// --- Fault injection ------------------------------------------------------

// FlakyTransport wraps a Transport and drops or duplicates datagram
// envelopes with the configured probabilities. Session envelopes are never
// corrupted (the session layer's reliability is assumed from the underlying
// stream, as TABS assumed from its session protocol), so this exercises the
// commit protocol's tolerance of datagram loss — and nothing else.
//
// Deprecated: use internal/fault.Injector.WrapTransport (or
// core.ClusterOptions.Faults), which subjects both datagram and session
// traffic to a seeded, reproducible fault model including drops, delays,
// duplication, reordering, and partitions. FlakyTransport is retained for
// existing datagram-loss tests only.
type FlakyTransport struct {
	Transport
	mu        sync.Mutex
	rng       *rand.Rand
	DropProb  float64
	DupProb   float64
	dropped   int
	duplicate int
}

// NewFlaky wraps t with the given datagram drop/duplicate probabilities
// and deterministic seed.
func NewFlaky(t Transport, seed int64, dropProb, dupProb float64) *FlakyTransport {
	return &FlakyTransport{Transport: t, rng: rand.New(rand.NewSource(seed)), DropProb: dropProb, DupProb: dupProb}
}

// Send applies the fault model to datagrams and passes sessions through.
func (f *FlakyTransport) Send(env *Envelope) error {
	if env.Kind != KindDatagram {
		return f.Transport.Send(env)
	}
	f.mu.Lock()
	drop := f.rng.Float64() < f.DropProb
	dup := f.rng.Float64() < f.DupProb
	if drop {
		f.dropped++
	}
	if dup {
		f.duplicate++
	}
	f.mu.Unlock()
	if drop {
		return nil
	}
	if err := f.Transport.Send(env); err != nil {
		return err
	}
	if dup {
		return f.Transport.Send(env)
	}
	return nil
}

// Counts returns how many datagrams were dropped and duplicated.
func (f *FlakyTransport) Counts() (dropped, duplicated int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped, f.duplicate
}
