package core_test

import (
	"testing"
	"time"

	"tabs/internal/core"
	"tabs/internal/servers/intarray"
	"tabs/internal/types"
)

// paxosCluster boots a 3-node cluster committing through Paxos Commit
// (all three nodes form the acceptor set, F=1), with one array server per
// node.
func paxosCluster(t *testing.T) *core.Cluster {
	t.Helper()
	opts := core.DefaultClusterOptions()
	opts.CommitProtocol = core.ProtocolPaxos
	c, err := core.NewCluster(opts, "a", "b", "c")
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	for _, name := range c.NodeNames() {
		n := c.Node(name)
		if _, err := intarray.Attach(n, "arr", 1, 50, time.Second); err != nil {
			t.Fatalf("Attach %s: %v", name, err)
		}
		if _, err := n.Recover(); err != nil {
			t.Fatalf("Recover %s: %v", name, err)
		}
	}
	return c
}

// TestPaxosClusterCommit: the happy path under the replicated protocol —
// a distributed write-commit across all three nodes lands everywhere and
// a distributed abort still undoes everywhere.
func TestPaxosClusterCommit(t *testing.T) {
	c := paxosCluster(t)
	defer c.Shutdown()
	na := c.Node("a")

	if got := c.Acceptors(); len(got) != 3 {
		t.Fatalf("acceptor set = %v, want 3 nodes", got)
	}

	clients := map[types.NodeID]*intarray.Client{
		"a": intarray.NewClient(na, "a", "arr"),
		"b": intarray.NewClient(na, "b", "arr"),
		"c": intarray.NewClient(na, "c", "arr"),
	}
	if err := na.App.Run(func(tid types.TransID) error {
		for i, name := range []types.NodeID{"a", "b", "c"} {
			if err := clients[name].Set(tid, 1, int64(100+i)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatalf("paxos distributed commit: %v", err)
	}
	for i, name := range []types.NodeID{"a", "b", "c"} {
		n := c.Node(name)
		local := intarray.NewClient(n, name, "arr")
		if err := n.App.Run(func(tid types.TransID) error {
			v, err := local.Get(tid, 1)
			if err != nil {
				return err
			}
			if v != int64(100+i) {
				t.Errorf("node %s: got %d, want %d", name, v, 100+i)
			}
			return nil
		}); err != nil {
			t.Fatalf("verify on %s: %v", name, err)
		}
	}

	// An aborted transaction under paxos must undo everywhere: phase-2
	// abort instructions are authoritative and clear the in-doubt guard.
	sawAbort := false
	_ = na.App.Run(func(tid types.TransID) error {
		if err := clients["b"].Set(tid, 2, 77); err != nil {
			return err
		}
		if err := na.TM.Abort(tid); err != nil {
			t.Fatalf("abort: %v", err)
		}
		sawAbort = true
		return nil
	})
	if !sawAbort {
		t.Fatal("abort transaction never ran")
	}
	nb := c.Node("b")
	localB := intarray.NewClient(nb, "b", "arr")
	if err := nb.App.Run(func(tid types.TransID) error {
		v, err := localB.Get(tid, 2)
		if err != nil {
			return err
		}
		if v != 0 {
			t.Errorf("aborted write visible on b: %d", v)
		}
		return nil
	}); err != nil {
		t.Fatalf("verify abort on b: %v", err)
	}
}

// TestAcceptorStateSurvivesReboot: a decision accepted (force-logged) by
// an acceptor must come back after crash + recovery — through a RecACP
// record or through the checkpoint's ACP blob — so a rebooted acceptor
// still answers recovery proposers correctly.
func TestAcceptorStateSurvivesReboot(t *testing.T) {
	c := paxosCluster(t)
	defer c.Shutdown()
	na := c.Node("a")

	// Drive the protocol directly (no Finished, so acceptors keep the
	// entry) — the state under test is the acceptor table, not the txn
	// fan-out.
	tid := types.TransID{Node: "a", Seq: 999, RootNode: "a", RootSeq: 999}
	if err := na.ACP.DecideCommit(tid, []types.NodeID{"a", "b"}); err != nil {
		t.Fatalf("DecideCommit: %v", err)
	}

	check := func(n *core.Node, when string) {
		// Quorum means DecideCommit can return before every acceptor has
		// processed its accept; poll briefly.
		deadline := time.Now().Add(2 * time.Second)
		for {
			snap := n.ACP.Snapshot()
			for _, is := range snap {
				if is.Accepted {
					return
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s: no accepted instance on %s: %+v", when, n.ID(), snap)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	check(c.Node("b"), "before reboot")

	// Plain reboot: the entry returns via log scan (RecACP records).
	c.Crash("b")
	nb, err := c.Reboot("b")
	if err != nil {
		t.Fatalf("reboot b: %v", err)
	}
	if _, err := intarray.Attach(nb, "arr", 1, 50, time.Second); err != nil {
		t.Fatalf("re-attach: %v", err)
	}
	if _, err := nb.Recover(); err != nil {
		t.Fatalf("recover b: %v", err)
	}
	check(nb, "after reboot")

	// Checkpoint, then reboot again: the entry now travels in the
	// checkpoint's ACP blob (and must not be stranded by log reclaim).
	if err := nb.RM.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	c.Crash("b")
	nb2, err := c.Reboot("b")
	if err != nil {
		t.Fatalf("second reboot b: %v", err)
	}
	if _, err := intarray.Attach(nb2, "arr", 1, 50, time.Second); err != nil {
		t.Fatalf("re-attach: %v", err)
	}
	if _, err := nb2.Recover(); err != nil {
		t.Fatalf("second recover b: %v", err)
	}
	check(nb2, "after checkpointed reboot")

	// The restored quorum still answers a recovery proposer: node c
	// resolves the (never-finished) transaction to Committed.
	prepLike := c.Node("c").ACP
	// ResolveInDoubt consults the acceptors named in the prepare body.
	st := prepLike.ResolveInDoubt(tid, nil)
	if st != types.StatusCommitted {
		t.Fatalf("resolve after reboots = %v, want committed", st)
	}
}

// TestAcceptorReconfiguration: the stretch goal — switching the acceptor
// set between transactions takes effect for new transactions.
func TestAcceptorReconfiguration(t *testing.T) {
	c := paxosCluster(t)
	defer c.Shutdown()
	c.ReconfigureAcceptors("a", "b")
	na := c.Node("a")
	if got := na.ACP.Acceptors(); len(got) != 2 {
		t.Fatalf("acceptors after reconfigure = %v", got)
	}
	remote := intarray.NewClient(na, "b", "arr")
	if err := na.App.Run(func(tid types.TransID) error {
		return remote.Set(tid, 5, 55)
	}); err != nil {
		t.Fatalf("commit after reconfiguration: %v", err)
	}
}
