package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"tabs/internal/disk"
	"tabs/internal/recovery"
	"tabs/internal/types"
	"tabs/internal/wal"
)

// This file implements the node-level archive dump and media recovery —
// the paper's future-work item (§7) built on §2.1.3's architecture:
// "systems infrequently dump the contents of non-volatile storage into an
// off-line archive", and after a disk failure the archive plus the log
// reconstruct the segments.
//
// The archive covers the segment region of the node's disk (the log
// region is assumed to live on stable storage and survive media failures,
// as the paper requires); it embeds the log position at dump time so
// MediaRecover can replay forward from exactly there.

const archiveMagic = 0x7AB5A2C4

// ArchiveSegments quiesces the node (all dirty pages forced, checkpoint
// taken), dumps every segment sector to path, and pins log reclamation so
// the log stays replayable over this archive. The returned mark must be
// presented to MediaRecover.
func (n *Node) ArchiveSegments(path string) (recovery.ArchiveMark, error) {
	mark, err := n.RM.PrepareArchive()
	if err != nil {
		return recovery.ArchiveMark{}, err
	}
	n.mu.Lock()
	first := n.segDirSector() // include the segment directory itself
	last := n.nextFree
	n.mu.Unlock()

	f, err := os.Create(path + ".tmp")
	if err != nil {
		return recovery.ArchiveMark{}, err
	}
	w := bufio.NewWriter(f)
	var hdr [28]byte
	binary.BigEndian.PutUint32(hdr[0:4], archiveMagic)
	binary.BigEndian.PutUint64(hdr[4:12], uint64(mark.LSN))
	binary.BigEndian.PutUint64(hdr[12:20], uint64(first))
	binary.BigEndian.PutUint64(hdr[20:28], uint64(last-first))
	if _, err := w.Write(hdr[:]); err != nil {
		f.Close()
		return recovery.ArchiveMark{}, err
	}
	buf := make([]byte, disk.SectorSize)
	for addr := first; addr < last; addr++ {
		header, err := n.d.Read(addr, buf)
		if err != nil {
			f.Close()
			return recovery.ArchiveMark{}, fmt.Errorf("core: archiving sector %d: %w", addr, err)
		}
		if _, err := w.Write(buf); err != nil {
			f.Close()
			return recovery.ArchiveMark{}, err
		}
		var h [8]byte
		binary.BigEndian.PutUint64(h[:], header)
		if _, err := w.Write(h[:]); err != nil {
			f.Close()
			return recovery.ArchiveMark{}, err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return recovery.ArchiveMark{}, err
	}
	if err := f.Close(); err != nil {
		return recovery.ArchiveMark{}, err
	}
	if err := os.Rename(path+".tmp", path); err != nil {
		return recovery.ArchiveMark{}, err
	}
	n.RM.PinLowLSN(mark.LSN)
	return mark, nil
}

// RestoreSegments writes an archive's sectors back onto the disk and
// returns the archive's mark. It does not replay the log; call
// MediaRecover afterwards (with every data server attached).
func (n *Node) RestoreSegments(path string) (recovery.ArchiveMark, error) {
	f, err := os.Open(path)
	if err != nil {
		return recovery.ArchiveMark{}, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var hdr [28]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return recovery.ArchiveMark{}, err
	}
	if binary.BigEndian.Uint32(hdr[0:4]) != archiveMagic {
		return recovery.ArchiveMark{}, errors.New("core: not a segment archive")
	}
	mark := recovery.ArchiveMark{LSN: wal.LSN(binary.BigEndian.Uint64(hdr[4:12]))}
	first := disk.Addr(binary.BigEndian.Uint64(hdr[12:20]))
	count := binary.BigEndian.Uint64(hdr[20:28])
	buf := make([]byte, disk.SectorSize)
	var h [8]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return recovery.ArchiveMark{}, fmt.Errorf("core: reading archive sector %d: %w", i, err)
		}
		if _, err := io.ReadFull(r, h[:]); err != nil {
			return recovery.ArchiveMark{}, err
		}
		if err := n.d.Write(first+disk.Addr(i), buf, binary.BigEndian.Uint64(h[:])); err != nil {
			return recovery.ArchiveMark{}, err
		}
	}
	// The restored segment directory may differ from the in-memory view
	// built at NewNode (it should not, for a same-layout node, but the
	// disk now rules); reload it.
	n.mu.Lock()
	n.segDir = make(map[types.SegmentID]segEntry)
	n.mu.Unlock()
	if err := n.loadSegDir(); err != nil {
		return recovery.ArchiveMark{}, err
	}
	return mark, nil
}

// MediaRecover replays the log over restored segments (RestoreSegments
// first, data servers attached) and then runs normal crash recovery,
// leaving the node ready to serve.
func (n *Node) MediaRecover(mark recovery.ArchiveMark) (*recovery.RestartReport, error) {
	report, err := n.RM.MediaRecover(mark, n.TM)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	hooks := append([]func() error(nil), n.afterRecov...)
	n.mu.Unlock()
	for _, fn := range hooks {
		if err := fn(); err != nil {
			return nil, err
		}
	}
	return report, nil
}
