package core_test

import (
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"tabs/internal/core"
	"tabs/internal/servers/intarray"
	"tabs/internal/srvlib"
	"tabs/internal/types"
)

// attachProxy installs a "proxy" data server on node n that forwards
// SetCell operations to the array server on next, performing a remote
// call from inside an operation (a coroutine switch via Await). This
// builds a transaction spanning a → b → c as a *chain*: b is
// simultaneously a participant below a and the sub-coordinator of c in
// the tree-structured commit (§3.2.3: "each node serves as coordinator
// for the nodes that are its children").
func attachProxy(t *testing.T, n *core.Node, next types.NodeID) {
	t.Helper()
	srv, err := n.NewServer("proxy", 7, 1, nil, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	forward := intarray.NewClient(n, next, "arr")
	srv.AcceptRequests(func(req *srvlib.Request) ([]byte, error) {
		switch req.Op {
		case "ForwardSet":
			if len(req.Body) != 12 {
				return nil, errors.New("proxy: want cell+value")
			}
			cell := binary.BigEndian.Uint32(req.Body[:4])
			val := int64(binary.BigEndian.Uint64(req.Body[4:]))
			// Remote work from inside an operation: release the monitor
			// while the session call runs.
			return nil, srv.Await(func() error {
				return forward.Set(req.TID, cell, val)
			})
		default:
			return nil, errors.New("proxy: unknown operation")
		}
	})
}

func chainCluster(t *testing.T) (*core.Cluster, *core.Node, *core.Node, *core.Node) {
	t.Helper()
	c, err := core.NewCluster(core.DefaultClusterOptions(), "a", "b", "c")
	if err != nil {
		t.Fatal(err)
	}
	na, nb, nc := c.Node("a"), c.Node("b"), c.Node("c")
	for _, nn := range []*core.Node{na, nb, nc} {
		if _, err := intarray.Attach(nn, "arr", 1, 20, time.Second); err != nil {
			t.Fatal(err)
		}
	}
	attachProxy(t, nb, "c") // b forwards to c
	for _, nn := range []*core.Node{na, nb, nc} {
		if _, err := nn.Recover(); err != nil {
			t.Fatal(err)
		}
	}
	return c, na, nb, nc
}

func forwardSet(n *core.Node, target types.NodeID, tid types.TransID, cell uint32, val int64) error {
	body := binary.BigEndian.AppendUint32(nil, cell)
	body = binary.BigEndian.AppendUint64(body, uint64(val))
	_, err := n.CallRemote(target, "proxy", "ForwardSet", tid, body)
	return err
}

// TestChainTopologyCommit: a writes locally, then calls b's proxy, which
// writes on c. The spanning tree is a chain a→b→c; commit must flow
// prepare down and votes up through b.
func TestChainTopologyCommit(t *testing.T) {
	c, na, _, nc := chainCluster(t)
	defer c.Shutdown()
	local := intarray.NewClient(na, "a", "arr")

	if err := na.App.Run(func(tid types.TransID) error {
		if err := local.Set(tid, 1, 100); err != nil {
			return err
		}
		return forwardSet(na, "b", tid, 1, 300) // lands on c via b
	}); err != nil {
		t.Fatalf("chain transaction: %v", err)
	}

	// The write is durable on c.
	fromC := intarray.NewClient(nc, "c", "arr")
	if err := nc.App.Run(func(tid types.TransID) error {
		v, err := fromC.Get(tid, 1)
		if err != nil {
			return err
		}
		if v != 300 {
			t.Errorf("c's cell = %d, want 300", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestChainTopologyAbort: the same chain, aborted at the root; the leaf's
// write must be undone through the relayed abort.
func TestChainTopologyAbort(t *testing.T) {
	c, na, _, nc := chainCluster(t)
	defer c.Shutdown()

	boom := errors.New("boom")
	err := na.App.Run(func(tid types.TransID) error {
		if err := forwardSet(na, "b", tid, 2, 999); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}

	fromC := intarray.NewClient(nc, "c", "arr")
	deadline := time.Now().Add(2 * time.Second)
	for {
		var v int64
		err := nc.App.Run(func(tid types.TransID) error {
			var gerr error
			v, gerr = fromC.Get(tid, 2)
			return gerr
		})
		if err == nil && v == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("leaf write not undone: v=%d err=%v", v, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestChainLeafCrashRecovery: commit through the chain, crash the leaf,
// and verify its recovered state.
func TestChainLeafCrashRecovery(t *testing.T) {
	c, na, _, _ := chainCluster(t)
	defer c.Shutdown()
	if err := na.App.Run(func(tid types.TransID) error {
		return forwardSet(na, "b", tid, 3, 42)
	}); err != nil {
		t.Fatal(err)
	}
	c.Crash("c")
	nc2, err := c.Reboot("c")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := intarray.Attach(nc2, "arr", 1, 20, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := nc2.Recover(); err != nil {
		t.Fatal(err)
	}
	fromC := intarray.NewClient(nc2, "c", "arr")
	if err := nc2.App.Run(func(tid types.TransID) error {
		v, err := fromC.Get(tid, 3)
		if err != nil {
			return err
		}
		if v != 42 {
			t.Errorf("leaf cell = %d after crash, want 42", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestChainMiddleReadOnly: the middle node's proxy writes nothing itself
// (only c does); b must still relay prepare/commit to c and stay in the
// write set as c's coordinator, even though its own log is empty for the
// transaction.
func TestChainMiddleReadOnly(t *testing.T) {
	c, na, nb, nc := chainCluster(t)
	defer c.Shutdown()
	_ = nb
	if err := na.App.Run(func(tid types.TransID) error {
		// Only c's array is written; a and b log nothing.
		return forwardSet(na, "b", tid, 4, 7)
	}); err != nil {
		t.Fatalf("commit: %v", err)
	}
	fromC := intarray.NewClient(nc, "c", "arr")
	if err := nc.App.Run(func(tid types.TransID) error {
		v, err := fromC.Get(tid, 4)
		if err != nil {
			return err
		}
		if v != 7 {
			t.Errorf("leaf cell = %d, want 7", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
