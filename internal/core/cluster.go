package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"tabs/internal/comm"
	"tabs/internal/disk"
	"tabs/internal/nameserver"
	"tabs/internal/stats"
	"tabs/internal/trace"
	"tabs/internal/types"
	"tabs/internal/wal"
)

// FaultPlan threads a fault-injection plan through every node a Cluster
// boots: the transport wrapper covers both session and datagram traffic
// (and partitions), the disk hook covers media I/O, the WAL hook covers
// log append/force, and BindTracer lets the plan emit fault.* counters
// through each node's tracer (visible in tabsctl metrics). The interface
// lives here — not in internal/fault — so that fault can depend on core
// (its torture harness drives Clusters) without a cycle; fault.Injector
// implements it. A nil plan (the default) leaves every path byte-for-byte
// untouched, keeping the Table 5-2/5-3 primitive counts identical.
type FaultPlan interface {
	WrapTransport(node types.NodeID, t comm.Transport) comm.Transport
	DiskHook(node types.NodeID) disk.FaultHook
	WALHook(node types.NodeID) wal.FaultHook
	BindTracer(node types.NodeID, tr *trace.Tracer)
}

// Cluster is a convenience harness: several nodes over one in-memory
// network, each with its own disk, sharing a stats registry — the
// in-process analogue of the paper's collection of networked Perq
// workstations.
type Cluster struct {
	Net      *comm.MemNetwork
	Registry *stats.Registry
	nodes    map[types.NodeID]*Node
	disks    map[types.NodeID]*disk.Disk
	opts     ClusterOptions
	// acceptors is the commit-decision replica set under the "paxos"
	// protocol, fixed (or reconfigured between transactions) cluster-wide;
	// reboots reapply it so a restarted coordinator proposes to the same
	// quorum.
	acceptors []types.NodeID
	// placements is the newest map the cluster has applied per family;
	// boots and reboots re-install it so a restarted node never serves
	// from a stale map it recorded before a migration.
	placements map[string]*nameserver.Placement
}

// ClusterOptions tune every node in a cluster.
type ClusterOptions struct {
	DiskSectors     int64
	LogSectors      int64
	PoolPages       int
	CheckpointEvery int
	LockTimeout     time.Duration
	// DisableGroupCommit propagates to every node's log: one synchronous
	// Stable Storage Write per Force, as the paper's TABS did.
	DisableGroupCommit bool
	// Faults, when set, wires a fault-injection plan (internal/fault)
	// through every node's transport, disk, and log, across boots and
	// reboots. Nil disables injection entirely.
	Faults FaultPlan
	// CommitProtocol selects the commit-decision protocol for every node:
	// "2pc" (or empty) or "paxos". See core.Config.CommitProtocol.
	CommitProtocol string
	// AcceptorCount sizes the Paxos Commit replica set (first N nodes in
	// sorted name order); 0 means 3 (F=1). Ignored under 2PC.
	AcceptorCount int
}

// DefaultClusterOptions returns settings suitable for tests: small disks,
// modest pools, short lock time-outs.
func DefaultClusterOptions() ClusterOptions {
	return ClusterOptions{
		DiskSectors: 16384,
		LogSectors:  2048,
		PoolPages:   256,
		LockTimeout: 2 * time.Second,
	}
}

// NewCluster creates nodes with the given names.
func NewCluster(opts ClusterOptions, names ...types.NodeID) (*Cluster, error) {
	if opts.DiskSectors == 0 {
		opts = DefaultClusterOptions()
	}
	c := &Cluster{
		Net:        comm.NewMemNetwork(),
		Registry:   stats.NewRegistry(),
		nodes:      make(map[types.NodeID]*Node),
		disks:      make(map[types.NodeID]*disk.Disk),
		opts:       opts,
		placements: make(map[string]*nameserver.Placement),
	}
	for _, name := range names {
		if _, err := c.AddNode(name); err != nil {
			return nil, err
		}
	}
	if opts.CommitProtocol == ProtocolPaxos {
		count := opts.AcceptorCount
		if count <= 0 {
			count = 3
		}
		sorted := c.NodeNames()
		if count > len(sorted) {
			count = len(sorted)
		}
		c.ReconfigureAcceptors(sorted[:count]...)
	}
	return c, nil
}

// ReconfigureAcceptors installs a new Paxos Commit replica set on every
// live node (and on later reboots). Safe only between transactions in the
// sense that in-flight transactions are unaffected: each transaction
// carries the acceptor set it was prepared with in its prepare records and
// datagrams, so it keeps resolving against the old quorum while new
// transactions use the new one.
func (c *Cluster) ReconfigureAcceptors(names ...types.NodeID) {
	c.acceptors = append([]types.NodeID(nil), names...)
	for _, n := range c.nodes {
		n.ACP.SetAcceptors(c.acceptors)
	}
}

// Acceptors returns the cluster's current commit-decision replica set.
func (c *Cluster) Acceptors() []types.NodeID {
	return append([]types.NodeID(nil), c.acceptors...)
}

// AddNode creates one node with a fresh disk.
func (c *Cluster) AddNode(name types.NodeID) (*Node, error) {
	if _, dup := c.nodes[name]; dup {
		return nil, fmt.Errorf("core: duplicate node %s", name)
	}
	d := disk.New(disk.DefaultGeometry(c.opts.DiskSectors))
	c.disks[name] = d
	return c.bootNode(name, d)
}

func (c *Cluster) bootNode(name types.NodeID, d *disk.Disk) (*Node, error) {
	tr := comm.Transport(c.Net.Endpoint(name))
	var walHook wal.FaultHook
	if c.opts.Faults != nil {
		tr = c.opts.Faults.WrapTransport(name, tr)
		walHook = c.opts.Faults.WALHook(name)
		// The hook survives on the disk across reboots, but re-setting it
		// is harmless and keeps AddNode and Reboot symmetric. When no plan
		// is configured the disk is left alone, so tests may install their
		// own hooks directly and Reboot without losing them.
		d.SetFaultHook(c.opts.Faults.DiskHook(name))
	}
	n, err := NewNode(Config{
		ID:                 name,
		Disk:               d,
		LogSectors:         c.opts.LogSectors,
		PoolPages:          c.opts.PoolPages,
		Transport:          tr,
		Registry:           c.Registry,
		CheckpointEvery:    c.opts.CheckpointEvery,
		LockTimeout:        c.opts.LockTimeout,
		DisableGroupCommit: c.opts.DisableGroupCommit,
		WALFaultHook:       walHook,
		CommitProtocol:     c.opts.CommitProtocol,
		Acceptors:          c.acceptors,
	})
	if err != nil {
		return nil, err
	}
	if c.opts.Faults != nil {
		c.opts.Faults.BindTracer(name, n.Tracer())
	}
	// Install the newest cluster placements before the node serves
	// anything: a node rebooted (or added) after a migration must not
	// recover a pre-migration view of where shards live.
	for _, p := range c.placements {
		n.NS.SetPlacement(p)
	}
	c.nodes[name] = n
	return n, nil
}

// Node returns the named node.
func (c *Cluster) Node(name types.NodeID) *Node { return c.nodes[name] }

// Nodes returns every live node, keyed by name (shared map copy; callers
// must not mutate node membership through it).
func (c *Cluster) Nodes() map[types.NodeID]*Node {
	out := make(map[types.NodeID]*Node, len(c.nodes))
	for name, n := range c.nodes {
		out[name] = n
	}
	return out
}

// NodeNames returns every live node's name in sorted order — the
// canonical node list that placement computation requires (every computer
// of a placement map must agree on the order).
func (c *Cluster) NodeNames() []types.NodeID {
	out := make([]types.NodeID, 0, len(c.nodes))
	for name := range c.nodes {
		out = append(out, name)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ApplyPlacement installs a placement map in every live node's Name
// Server. Each node's install is version-gated; a node that already holds
// exactly this version is an idempotent re-apply and counts as success,
// but a node holding a *newer* map means the caller is publishing a stale
// version into a cluster that has moved on — a partial install that would
// silently split routing between two maps — so every such node is
// reported and the call fails loudly.
func (c *Cluster) ApplyPlacement(p *nameserver.Placement) error {
	if p == nil || p.Family == "" {
		return errors.New("core: nil or unnamed placement")
	}
	var stale []string
	for _, name := range c.NodeNames() {
		n := c.nodes[name]
		if n.NS.SetPlacement(p) {
			continue
		}
		cur := n.NS.PlacementFor(p.Family)
		if cur != nil && cur.Version == p.Version {
			continue // already installed: idempotent re-apply
		}
		have := uint64(0)
		if cur != nil {
			have = cur.Version
		}
		stale = append(stale, fmt.Sprintf("%s holds v%d", name, have))
	}
	if len(stale) > 0 {
		return fmt.Errorf("core: placement %s v%d rejected by %d/%d nodes (%s): a newer map is already installed",
			p.Family, p.Version, len(stale), len(c.nodes), strings.Join(stale, ", "))
	}
	c.notePlacement(p)
	return nil
}

// notePlacement records p as the newest cluster map for its family if it
// is; boots and reboots re-install from this record.
func (c *Cluster) notePlacement(p *nameserver.Placement) {
	if p == nil {
		return
	}
	if cur := c.placements[p.Family]; cur == nil || p.Version > cur.Version {
		c.placements[p.Family] = p
	}
}

// Placement returns the newest placement map the cluster knows for
// family: the recorded newest, cross-checked against every live node's
// Name Server (a migration publishes through the Name Servers directly).
func (c *Cluster) Placement(family string) *nameserver.Placement {
	best := c.placements[family]
	for _, n := range c.nodes {
		if p := n.NS.PlacementFor(family); p != nil && (best == nil || p.Version > best.Version) {
			best = p
		}
	}
	return best
}

// Crash crashes the named node (volatile state lost, network detached).
func (c *Cluster) Crash(name types.NodeID) {
	if n := c.nodes[name]; n != nil {
		n.Crash()
		delete(c.nodes, name)
	}
}

// Reboot builds a fresh Node over the crashed node's surviving disk. The
// caller must re-attach the node's data servers and then call Recover.
func (c *Cluster) Reboot(name types.NodeID) (*Node, error) {
	d := c.disks[name]
	if d == nil {
		return nil, fmt.Errorf("core: unknown node %s", name)
	}
	if old := c.nodes[name]; old != nil {
		old.Crash()
	}
	return c.bootNode(name, d)
}

// Shutdown stops every node cleanly.
func (c *Cluster) Shutdown() {
	for name, n := range c.nodes {
		_ = n.Shutdown()
		delete(c.nodes, name)
	}
}
