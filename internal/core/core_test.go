package core_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"tabs/internal/core"
	"tabs/internal/lock"
	"tabs/internal/servers/intarray"
	"tabs/internal/types"
)

// arrayNode boots a single-node cluster with one integer array server.
func arrayNode(t *testing.T, cells uint32) (*core.Cluster, *core.Node, *intarray.Client) {
	t.Helper()
	c, err := core.NewCluster(core.DefaultClusterOptions(), "n1")
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	n := c.Node("n1")
	if _, err := intarray.Attach(n, "array", 1, cells, time.Second); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if _, err := n.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return c, n, intarray.NewClient(n, "n1", "array")
}

func TestSingleNodeCommit(t *testing.T) {
	c, n, arr := arrayNode(t, 100)
	defer c.Shutdown()

	err := n.App.Run(func(tid types.TransID) error {
		if err := arr.Set(tid, 7, 4242); err != nil {
			return err
		}
		v, err := arr.Get(tid, 7)
		if err != nil {
			return err
		}
		if v != 4242 {
			t.Errorf("read own write: got %d, want 4242", v)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("transaction: %v", err)
	}

	// A later transaction sees the committed value.
	err = n.App.Run(func(tid types.TransID) error {
		v, err := arr.Get(tid, 7)
		if err != nil {
			return err
		}
		if v != 4242 {
			t.Errorf("after commit: got %d, want 4242", v)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("read transaction: %v", err)
	}
}

func TestSingleNodeAbortUndoes(t *testing.T) {
	c, n, arr := arrayNode(t, 100)
	defer c.Shutdown()

	if err := n.App.Run(func(tid types.TransID) error {
		return arr.Set(tid, 3, 111)
	}); err != nil {
		t.Fatalf("setup: %v", err)
	}

	boom := errors.New("boom")
	err := n.App.Run(func(tid types.TransID) error {
		if err := arr.Set(tid, 3, 999); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}

	if err := n.App.Run(func(tid types.TransID) error {
		v, err := arr.Get(tid, 3)
		if err != nil {
			return err
		}
		if v != 111 {
			t.Errorf("after abort: got %d, want 111", v)
		}
		return nil
	}); err != nil {
		t.Fatalf("read: %v", err)
	}
}

func TestCrashRecoveryCommittedSurvivesActiveUndone(t *testing.T) {
	c, n, arr := arrayNode(t, 100)

	if err := n.App.Run(func(tid types.TransID) error {
		return arr.Set(tid, 1, 1000)
	}); err != nil {
		t.Fatalf("committed txn: %v", err)
	}

	// Leave a transaction in flight at crash time.
	tid, err := n.App.BeginTransaction(types.NilTransID)
	if err != nil {
		t.Fatalf("begin: %v", err)
	}
	if err := arr.Set(tid, 1, 2000); err != nil {
		t.Fatalf("uncommitted set: %v", err)
	}
	if err := arr.Set(tid, 2, 3000); err != nil {
		t.Fatalf("uncommitted set: %v", err)
	}
	// Steal the dirty pages: the write-ahead protocol forces the loser's
	// log records to disk before the pages go, so recovery will find a
	// real loser to undo rather than nothing at all.
	if err := n.Kernel.FlushAll(); err != nil {
		t.Fatalf("flush: %v", err)
	}

	c.Crash("n1")
	n2, err := c.Reboot("n1")
	if err != nil {
		t.Fatalf("reboot: %v", err)
	}
	if _, err := intarray.Attach(n2, "array", 1, 100, time.Second); err != nil {
		t.Fatalf("re-attach: %v", err)
	}
	report, err := n2.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if report.Passes != 1 {
		t.Errorf("value-only log should recover in 1 pass, used %d", report.Passes)
	}
	if len(report.Losers) != 1 {
		t.Errorf("want 1 loser, got %v", report.Losers)
	}

	arr2 := intarray.NewClient(n2, "n1", "array")
	if err := n2.App.Run(func(tid types.TransID) error {
		v1, err := arr2.Get(tid, 1)
		if err != nil {
			return err
		}
		if v1 != 1000 {
			t.Errorf("cell 1 after crash: got %d, want 1000", v1)
		}
		v2, err := arr2.Get(tid, 2)
		if err != nil {
			return err
		}
		if v2 != 0 {
			t.Errorf("cell 2 after crash: got %d, want 0 (loser undone)", v2)
		}
		return nil
	}); err != nil {
		t.Fatalf("post-recovery read: %v", err)
	}
	c.Shutdown()
}

func TestTwoNodeDistributedCommit(t *testing.T) {
	c, err := core.NewCluster(core.DefaultClusterOptions(), "a", "b")
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	defer c.Shutdown()
	na, nb := c.Node("a"), c.Node("b")
	if _, err := intarray.Attach(na, "arrA", 1, 50, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := intarray.Attach(nb, "arrB", 1, 50, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := na.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, err := nb.Recover(); err != nil {
		t.Fatal(err)
	}

	local := intarray.NewClient(na, "a", "arrA")
	remote := intarray.NewClient(na, "b", "arrB")

	if err := na.App.Run(func(tid types.TransID) error {
		if err := local.Set(tid, 1, 10); err != nil {
			return err
		}
		return remote.Set(tid, 1, 20)
	}); err != nil {
		t.Fatalf("distributed write: %v", err)
	}

	// Verify on node b directly.
	fromB := intarray.NewClient(nb, "b", "arrB")
	if err := nb.App.Run(func(tid types.TransID) error {
		v, err := fromB.Get(tid, 1)
		if err != nil {
			return err
		}
		if v != 20 {
			t.Errorf("remote cell: got %d, want 20", v)
		}
		return nil
	}); err != nil {
		t.Fatalf("verify on b: %v", err)
	}
}

func TestTwoNodeDistributedAbort(t *testing.T) {
	c, err := core.NewCluster(core.DefaultClusterOptions(), "a", "b")
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	defer c.Shutdown()
	na, nb := c.Node("a"), c.Node("b")
	if _, err := intarray.Attach(na, "arrA", 1, 50, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := intarray.Attach(nb, "arrB", 1, 50, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := na.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, err := nb.Recover(); err != nil {
		t.Fatal(err)
	}

	remote := intarray.NewClient(na, "b", "arrB")
	boom := errors.New("boom")
	err = na.App.Run(func(tid types.TransID) error {
		if err := remote.Set(tid, 5, 77); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}

	// Give the abort datagrams a moment to land, then check the remote
	// value was undone and its locks released.
	deadline := time.Now().Add(2 * time.Second)
	for {
		fromB := intarray.NewClient(nb, "b", "arrB")
		var v int64
		err := nb.App.Run(func(tid types.TransID) error {
			var gerr error
			v, gerr = fromB.Get(tid, 5)
			return gerr
		})
		if err == nil && v == 0 {
			return // undone and readable
		}
		if time.Now().After(deadline) {
			t.Fatalf("remote abort not applied: v=%d err=%v", v, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestLockConflictTimeout(t *testing.T) {
	c, n, arr := arrayNode(t, 10)
	defer c.Shutdown()

	srv, _ := n.Server("array")
	srv.Locks().SetTimeout(100 * time.Millisecond)

	t1, err := n.App.BeginTransaction(types.NilTransID)
	if err != nil {
		t.Fatal(err)
	}
	if err := arr.Set(t1, 1, 5); err != nil {
		t.Fatal(err)
	}

	// A second transaction must time out trying to read the same cell.
	err = n.App.Run(func(tid types.TransID) error {
		_, err := arr.Get(tid, 1)
		return err
	})
	if err == nil || !errors.Is(errFromString(err), lock.ErrTimeout) {
		// The error crosses a message boundary as text; just check it
		// mentions the time-out.
		if err == nil {
			t.Fatal("want lock timeout, got success")
		}
	}

	if err := n.App.AbortTransaction(t1); err != nil {
		t.Fatalf("abort t1: %v", err)
	}

	// Now the cell is free.
	if err := n.App.Run(func(tid types.TransID) error {
		_, err := arr.Get(tid, 1)
		return err
	}); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

// errFromString maps an error back to lock.ErrTimeout when its text
// carries the sentinel (errors crossing the port boundary are flattened to
// strings, as messages flatten them in TABS).
func errFromString(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, lock.ErrTimeout) {
		return lock.ErrTimeout
	}
	if containsTimeout(err.Error()) {
		return lock.ErrTimeout
	}
	return err
}

func containsTimeout(s string) bool {
	return len(s) > 0 && (strings.Contains(s, "timed out") || strings.Contains(s, "deadlock"))
}

// TestRebootRefusesTrafficUntilRecovered pins the service gate that keeps
// a rebooting node from racing its own log replay: with committed state on
// disk, data-server calls answer ErrRecovering until Recover completes.
// Without the gate a write can commit against pre-replay pages and then be
// overwritten by the replay's own page installs — the torture harness
// caught exactly that under migration churn (a fresh commit on a rebooted
// destination vanished beneath the recovery scan).
func TestRebootRefusesTrafficUntilRecovered(t *testing.T) {
	c, n, arr := arrayNode(t, 100)
	defer c.Shutdown()

	if err := n.App.Run(func(tid types.TransID) error {
		return arr.Set(tid, 3, 333)
	}); err != nil {
		t.Fatalf("seed txn: %v", err)
	}

	c.Crash("n1")
	n2, err := c.Reboot("n1")
	if err != nil {
		t.Fatalf("reboot: %v", err)
	}
	if _, err := intarray.Attach(n2, "array", 1, 100, time.Second); err != nil {
		t.Fatalf("re-attach: %v", err)
	}

	// Pre-recovery traffic must be refused, not served from stale pages.
	arr2 := intarray.NewClient(n2, "n1", "array")
	err = n2.App.Run(func(tid types.TransID) error {
		_, err := arr2.Get(tid, 3)
		return err
	})
	if !errors.Is(err, core.ErrRecovering) {
		t.Fatalf("pre-recovery call: got %v, want ErrRecovering", err)
	}

	if _, err := n2.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if err := n2.App.Run(func(tid types.TransID) error {
		v, err := arr2.Get(tid, 3)
		if err != nil {
			return err
		}
		if v != 333 {
			t.Errorf("cell 3 after recovery: got %d, want 333", v)
		}
		return nil
	}); err != nil {
		t.Fatalf("post-recovery txn: %v", err)
	}
}
