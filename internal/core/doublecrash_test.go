package core_test

import (
	"sync/atomic"
	"testing"
	"time"

	"tabs/internal/core"
	"tabs/internal/disk"
	"tabs/internal/servers/intarray"
	"tabs/internal/types"
)

// TestDoubleCrashDuringRecovery crashes a node, then crashes it AGAIN in
// the middle of recovery's redo pass (an injected disk write failure while
// redo evictions flush pages), and checks that the next recovery converges
// to exactly the committed state. Redo must be idempotent under partial
// application: value records reinstall physically, operation records are
// guarded by page sequence numbers, and a redone-but-lost page is simply
// redone again (§3.2.1 — "repeating history").
func TestDoubleCrashDuringRecovery(t *testing.T) {
	opts := core.DefaultClusterOptions()
	// A tiny pool forces evictions during both the workload and the redo
	// pass, so pages hit the disk mid-recovery — the window under test.
	opts.PoolPages = 8
	c, err := core.NewCluster(opts, "n1")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	const cells = 2048 // 32 pages of 64 cells each
	setup := func(n *core.Node) *intarray.Client {
		t.Helper()
		if _, err := intarray.Attach(n, "arr", 1, cells, time.Second); err != nil {
			t.Fatal(err)
		}
		return intarray.NewClient(n, "n1", "arr")
	}
	n := c.Node("n1")
	arr := setup(n)
	if _, err := n.Recover(); err != nil {
		t.Fatal(err)
	}

	// Commit writes touching every page, several cells per transaction.
	want := make(map[uint32]int64)
	for txn := 0; txn < 16; txn++ {
		base := txn
		if err := n.App.Run(func(tid types.TransID) error {
			for p := 0; p < 32; p += 4 {
				cell := uint32(p*64 + base*3 + 1)
				val := int64(txn*1000 + p)
				if err := arr.Set(tid, cell, val); err != nil {
					return err
				}
				want[cell] = val
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	d := n.Disk()
	c.Crash("n1")

	// First recovery attempt: fail a disk write partway through the redo
	// pass, simulating a second crash mid-recovery.
	var writes atomic.Int64
	d.SetFaultHook(func(write bool, _ disk.Addr) disk.FaultAction {
		if write && writes.Add(1) == 10 {
			return disk.FaultError
		}
		return disk.FaultNone
	})
	n2, err := c.Reboot("n1")
	if err != nil {
		t.Fatal(err)
	}
	setup(n2)
	if _, err := n2.Recover(); err == nil {
		t.Fatal("recovery should fail under the injected mid-redo write failure")
	}

	// Second attempt, failing at a different (later) point: partial redo
	// progress from attempt one must not confuse attempt two.
	writes.Store(0)
	d.SetFaultHook(func(write bool, _ disk.Addr) disk.FaultAction {
		if write && writes.Add(1) == 25 {
			return disk.FaultError
		}
		return disk.FaultNone
	})
	n3, err := c.Reboot("n1")
	if err != nil {
		t.Fatal(err)
	}
	setup(n3)
	if _, err := n3.Recover(); err == nil {
		// Not fatal if the later fail point lands after recovery's writes
		// finished; the point of this attempt is extra partial progress.
		t.Log("second faulty recovery attempt completed before write 25")
	}

	// Final recovery with the disk healthy must converge.
	d.SetFaultHook(nil)
	n4, err := c.Reboot("n1")
	if err != nil {
		t.Fatal(err)
	}
	arr4 := setup(n4)
	if _, err := n4.Recover(); err != nil {
		t.Fatalf("clean recovery after double crash: %v", err)
	}
	if err := n4.App.Run(func(tid types.TransID) error {
		for cell, val := range want {
			v, err := arr4.Get(tid, cell)
			if err != nil {
				return err
			}
			if v != val {
				t.Errorf("cell %d = %d after double-crash recovery, want %d", cell, v, val)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// And the node must still be writable (locks, log, pager all sane).
	if err := n4.App.Run(func(tid types.TransID) error {
		return arr4.Set(tid, 1, 424242)
	}); err != nil {
		t.Fatalf("write after double-crash recovery: %v", err)
	}
}
