package core_test

import (
	"testing"
	"time"

	"tabs/internal/comm"
	"tabs/internal/core"
	"tabs/internal/disk"
	"tabs/internal/servers/intarray"
	"tabs/internal/stats"
	"tabs/internal/types"
)

// flakyPair builds two full nodes whose datagram traffic is dropped and
// duplicated with the given probabilities — sessions stay reliable, as the
// paper's session layer guaranteed, so exactly the commit protocol's
// datagram tolerance is exercised.
func flakyPair(t *testing.T, drop, dup float64) (*core.Node, *core.Node, func()) {
	t.Helper()
	net := comm.NewMemNetwork()
	mk := func(name types.NodeID, seed int64) *core.Node {
		flaky := comm.NewFlaky(net.Endpoint(name), seed, drop, dup)
		n, err := core.NewNode(core.Config{
			ID:          name,
			Disk:        disk.New(disk.DefaultGeometry(4096)),
			LogSectors:  512,
			PoolPages:   64,
			Transport:   flaky,
			Registry:    stats.NewRegistry(),
			LockTimeout: 2 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Fast retries so lost commit datagrams are retransmitted quickly.
		n.TM.Configure(100*time.Millisecond, 20, 0)
		if _, err := intarray.Attach(n, "arr", 1, 50, 2*time.Second); err != nil {
			t.Fatal(err)
		}
		if _, err := n.Recover(); err != nil {
			t.Fatal(err)
		}
		return n
	}
	na := mk("a", 11)
	nb := mk("b", 22)
	return na, nb, func() {
		_ = na.Shutdown()
		_ = nb.Shutdown()
	}
}

// TestDistributedCommitFullStackUnderDatagramLoss drives distributed
// write transactions through the entire stack while a third of the commit
// datagrams are dropped and a tenth duplicated.
func TestDistributedCommitFullStackUnderDatagramLoss(t *testing.T) {
	na, nb, done := flakyPair(t, 0.3, 0.1)
	defer done()
	local := intarray.NewClient(na, "a", "arr")
	remote := intarray.NewClient(na, "b", "arr")

	for i := int64(1); i <= 8; i++ {
		if err := na.App.Run(func(tid types.TransID) error {
			if err := local.Set(tid, 1, i); err != nil {
				return err
			}
			return remote.Set(tid, 1, i*10)
		}); err != nil {
			t.Fatalf("transaction %d under loss: %v", i, err)
		}
	}
	// Both nodes hold the final committed values.
	fromB := intarray.NewClient(nb, "b", "arr")
	if err := nb.App.Run(func(tid types.TransID) error {
		v, err := fromB.Get(tid, 1)
		if err != nil {
			return err
		}
		if v != 80 {
			t.Errorf("b's cell = %d, want 80", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestDistributedDeadlockResolvedByTimeout constructs the classic
// two-node cyclic wait: t1 locks a's cell then wants b's; t2 locks b's
// cell then wants a's. No deadlock detector exists — TABS "relies on
// time-outs" (§2.1.3) — so one (or both) waits must time out, the
// application aborts, and afterwards both cells are free.
func TestDistributedDeadlockResolvedByTimeout(t *testing.T) {
	c, err := core.NewCluster(core.DefaultClusterOptions(), "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	na, nb := c.Node("a"), c.Node("b")
	for _, nn := range []*core.Node{na, nb} {
		if _, err := intarray.Attach(nn, "arr", 1, 10, 300*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		if _, err := nn.Recover(); err != nil {
			t.Fatal(err)
		}
	}
	arrA := intarray.NewClient(na, "a", "arr")
	arrB := intarray.NewClient(na, "b", "arr")

	t1, _ := na.App.BeginTransaction(types.NilTransID)
	t2, _ := na.App.BeginTransaction(types.NilTransID)
	if err := arrA.Set(t1, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := arrB.Set(t2, 1, 2); err != nil {
		t.Fatal(err)
	}

	// Close the cycle concurrently.
	r1 := make(chan error, 1)
	r2 := make(chan error, 1)
	go func() { r1 <- arrB.Set(t1, 1, 1) }()
	go func() { r2 <- arrA.Set(t2, 1, 2) }()
	e1, e2 := <-r1, <-r2
	if e1 == nil && e2 == nil {
		t.Fatal("cyclic waits both succeeded — no deadlock existed?")
	}
	// Abort both; everything must come free.
	_ = na.App.AbortTransaction(t1)
	_ = na.App.AbortTransaction(t2)

	deadline := time.Now().Add(2 * time.Second)
	for {
		err := na.App.Run(func(tid types.TransID) error {
			if err := arrA.Set(tid, 1, 9); err != nil {
				return err
			}
			return arrB.Set(tid, 1, 9)
		})
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("locks not released after deadlock aborts: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestCoordinatorCrashBeforeCommitPresumesAbort: the coordinator crashes
// after the participant prepared but before any commit record exists.
// The participant's in-doubt resolution must conclude abort (presumed
// abort: no commit record on the rebooted coordinator) and release the
// data.
func TestCoordinatorCrashBeforeCommitPresumesAbort(t *testing.T) {
	c, err := core.NewCluster(core.DefaultClusterOptions(), "coord", "part")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	nc, np := c.Node("coord"), c.Node("part")
	for _, nn := range []*core.Node{nc, np} {
		if _, err := intarray.Attach(nn, "arr", 1, 10, time.Second); err != nil {
			t.Fatal(err)
		}
		if _, err := nn.Recover(); err != nil {
			t.Fatal(err)
		}
	}
	np.TM.Configure(100*time.Millisecond, 3, 300*time.Millisecond)

	remote := intarray.NewClient(nc, "part", "arr")
	tid, _ := nc.App.BeginTransaction(types.NilTransID)
	if err := remote.Set(tid, 1, 42); err != nil {
		t.Fatal(err)
	}
	// Crash the coordinator with the transaction still active; the
	// participant holds an uncommitted write and an open transaction.
	c.Crash("coord")

	// Reboot the coordinator: its log has no commit record, so status
	// queries answer "presumed abort".
	nc2, err := c.Reboot("coord")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := intarray.Attach(nc2, "arr", 1, 10, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := nc2.Recover(); err != nil {
		t.Fatal(err)
	}

	// The participant's cell must eventually be free and zero. (Its lock
	// is held by the orphaned transaction until an abort or time-out
	// path clears it; the lock time-out makes reads fail until then.)
	fromP := intarray.NewClient(np, "part", "arr")
	deadline := time.Now().Add(5 * time.Second)
	for {
		var v int64
		err := np.App.Run(func(tid types.TransID) error {
			var gerr error
			v, gerr = fromP.Get(tid, 1)
			return gerr
		})
		if err == nil && v == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("orphaned write not cleaned up: v=%d err=%v", v, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
