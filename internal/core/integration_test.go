package core_test

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"tabs/internal/core"
	"tabs/internal/nameserver"
	"tabs/internal/servers/intarray"
	"tabs/internal/types"
)

// TestSubtransactionCommitWithParent: a subtransaction's effects become
// permanent only when the top-level transaction commits (§2.1.3).
func TestSubtransactionCommitWithParent(t *testing.T) {
	c, n, arr := arrayNode(t, 100)
	defer c.Shutdown()

	top, err := n.App.BeginTransaction(types.NilTransID)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := n.App.BeginTransaction(top)
	if err != nil {
		t.Fatal(err)
	}
	if err := arr.Set(sub, 1, 111); err != nil {
		t.Fatal(err)
	}
	if ok, err := n.App.EndTransaction(sub); err != nil || !ok {
		t.Fatalf("sub end: %v", err)
	}
	// The sub's lock is retained until the top-level outcome: another
	// transaction cannot read cell 1 yet.
	srv, _ := n.Server("array")
	srv.Locks().SetTimeout(50 * time.Millisecond)
	if err := n.App.Run(func(tid types.TransID) error {
		_, err := arr.Get(tid, 1)
		return err
	}); err == nil {
		t.Error("sub-committed data readable before the root committed")
	}
	if ok, err := n.App.EndTransaction(top); err != nil || !ok {
		t.Fatalf("top end: %v", err)
	}
	if err := n.App.Run(func(tid types.TransID) error {
		v, err := arr.Get(tid, 1)
		if err != nil {
			return err
		}
		if v != 111 {
			t.Errorf("cell = %d", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestSubtransactionAbortSparesParent: the paper's reason for
// subtransactions — "permit their parent to tolerate the failure of some
// operations" (§2.1.3).
func TestSubtransactionAbortSparesParent(t *testing.T) {
	c, n, arr := arrayNode(t, 100)
	defer c.Shutdown()

	top, err := n.App.BeginTransaction(types.NilTransID)
	if err != nil {
		t.Fatal(err)
	}
	if err := arr.Set(top, 1, 10); err != nil {
		t.Fatal(err)
	}
	sub, err := n.App.BeginTransaction(top)
	if err != nil {
		t.Fatal(err)
	}
	if err := arr.Set(sub, 2, 20); err != nil {
		t.Fatal(err)
	}
	// The sub fails; its write is undone, the parent's stays.
	if err := n.App.AbortTransaction(sub); err != nil {
		t.Fatal(err)
	}
	if ok, err := n.App.EndTransaction(top); err != nil || !ok {
		t.Fatalf("top commit: %v", err)
	}
	if err := n.App.Run(func(tid types.TransID) error {
		v1, _ := arr.Get(tid, 1)
		v2, _ := arr.Get(tid, 2)
		if v1 != 10 || v2 != 0 {
			t.Errorf("cells %d,%d; want 10,0", v1, v2)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestSubtransactionIntraTransactionIsolation: a sub behaves as a
// completely separate transaction with respect to synchronization
// (§2.1.3) — two subs of one parent conflict on the same object.
func TestSubtransactionIntraTransactionIsolation(t *testing.T) {
	c, n, arr := arrayNode(t, 100)
	defer c.Shutdown()
	srv, _ := n.Server("array")
	srv.Locks().SetTimeout(50 * time.Millisecond)

	top, _ := n.App.BeginTransaction(types.NilTransID)
	sub1, _ := n.App.BeginTransaction(top)
	sub2, _ := n.App.BeginTransaction(top)
	if err := arr.Set(sub1, 1, 1); err != nil {
		t.Fatal(err)
	}
	// sub2 must conflict with sub1 — intra-transaction deadlock is real
	// in TABS, resolved here by the time-out.
	if err := arr.Set(sub2, 1, 2); err == nil {
		t.Error("two subtransactions updated the same datum concurrently")
	}
	_ = n.App.AbortTransaction(top)
}

// TestDistributedSubtransaction runs a subtransaction whose operations go
// remote; the whole tree commits via 2PC.
func TestDistributedSubtransaction(t *testing.T) {
	c, err := core.NewCluster(core.DefaultClusterOptions(), "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	na, nb := c.Node("a"), c.Node("b")
	for _, args := range []struct {
		n  *core.Node
		id types.ServerID
	}{{na, "arrA"}, {nb, "arrB"}} {
		if _, err := intarray.Attach(args.n, args.id, 1, 50, time.Second); err != nil {
			t.Fatal(err)
		}
		if _, err := args.n.Recover(); err != nil {
			t.Fatal(err)
		}
	}
	remote := intarray.NewClient(na, "b", "arrB")

	top, _ := na.App.BeginTransaction(types.NilTransID)
	sub, err := na.App.BeginTransaction(top)
	if err != nil {
		t.Fatal(err)
	}
	if err := remote.Set(sub, 1, 77); err != nil {
		t.Fatal(err)
	}
	if ok, err := na.App.EndTransaction(sub); err != nil || !ok {
		t.Fatalf("sub: %v", err)
	}
	if ok, err := na.App.EndTransaction(top); err != nil || !ok {
		t.Fatalf("top: %v", err)
	}
	// Visible on b afterwards.
	fromB := intarray.NewClient(nb, "b", "arrB")
	if err := nb.App.Run(func(tid types.TransID) error {
		v, err := fromB.Get(tid, 1)
		if err != nil {
			return err
		}
		if v != 77 {
			t.Errorf("remote cell %d", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestParticipantCrashWhilePrepared: a participant crashes between its
// vote and the commit message; after restart it resolves the in-doubt
// transaction with the coordinator and applies the commit (§3.2.2/3.2.3).
func TestParticipantCrashWhilePrepared(t *testing.T) {
	c, err := core.NewCluster(core.DefaultClusterOptions(), "coord", "part")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	nc, np := c.Node("coord"), c.Node("part")
	if _, err := intarray.Attach(nc, "arrC", 1, 50, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := intarray.Attach(np, "arrP", 1, 50, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := nc.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, err := np.Recover(); err != nil {
		t.Fatal(err)
	}

	local := intarray.NewClient(nc, "coord", "arrC")
	remote := intarray.NewClient(nc, "part", "arrP")

	// Run the distributed write; it commits normally.
	if err := nc.App.Run(func(tid types.TransID) error {
		if err := local.Set(tid, 1, 5); err != nil {
			return err
		}
		return remote.Set(tid, 1, 6)
	}); err != nil {
		t.Fatal(err)
	}

	// Now crash the participant (its committed state is in its log), and
	// bring it back: recovery must not lose the committed write.
	c.Crash("part")
	np2, err := c.Reboot("part")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := intarray.Attach(np2, "arrP", 1, 50, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := np2.Recover(); err != nil {
		t.Fatal(err)
	}
	fromP := intarray.NewClient(np2, "part", "arrP")
	if err := np2.App.Run(func(tid types.TransID) error {
		v, err := fromP.Get(tid, 1)
		if err != nil {
			return err
		}
		if v != 6 {
			t.Errorf("participant cell %d, want 6", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestLogReclamationUnderLoad runs enough write transactions to exhaust
// the log several times over; reclamation must keep the node running and
// the data correct.
func TestLogReclamationUnderLoad(t *testing.T) {
	opts := core.DefaultClusterOptions()
	opts.LogSectors = 32 // tiny log: ~16 KB
	opts.CheckpointEvery = 8
	c, err := core.NewCluster(opts, "n1")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	n := c.Node("n1")
	if _, err := intarray.Attach(n, "array", 1, 100, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Recover(); err != nil {
		t.Fatal(err)
	}
	arr := intarray.NewClient(n, "n1", "array")

	// Each write transaction logs ~200 bytes; 500 of them exceed the log
	// capacity several times over.
	for i := 0; i < 500; i++ {
		if err := n.App.Run(func(tid types.TransID) error {
			return arr.Set(tid, uint32(i%100)+1, int64(i))
		}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	// Values survive a crash after all that churn.
	c.Crash("n1")
	n2, err := c.Reboot("n1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := intarray.Attach(n2, "array", 1, 100, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := n2.Recover(); err != nil {
		t.Fatal(err)
	}
	arr2 := intarray.NewClient(n2, "n1", "array")
	if err := n2.App.Run(func(tid types.TransID) error {
		v, err := arr2.Get(tid, 100)
		if err != nil {
			return err
		}
		if v != 499 {
			t.Errorf("cell 100 = %d, want 499", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestNameServerAcrossNodes registers on one node and resolves from
// another through the broadcast protocol, then invokes through the
// binding.
func TestNameServerAcrossNodes(t *testing.T) {
	c, err := core.NewCluster(core.DefaultClusterOptions(), "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	na, nb := c.Node("a"), c.Node("b")
	if _, err := intarray.Attach(nb, "accounts", 1, 50, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := na.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, err := nb.Recover(); err != nil {
		t.Fatal(err)
	}
	nb.NS.Register("bank-accounts", "intarray", "accounts", types.ObjectID{})

	bindings, err := na.NS.LookUp("bank-accounts", 1, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(bindings) != 1 || bindings[0].Node != "b" {
		t.Fatalf("bindings %+v", bindings)
	}
	var _ = nameserver.Binding{}

	// Invoke through the binding.
	if err := na.App.Run(func(tid types.TransID) error {
		body := make([]byte, 12)
		body[3] = 1  // cell 1
		body[11] = 9 // value 9
		_, err := na.Invoke(bindings[0], intarray.OpSet, tid, body)
		return err
	}); err != nil {
		t.Fatal(err)
	}
}

// TestManyConcurrentTransactions hammers one array from many goroutines.
// Each transaction reads then writes the same cell, so concurrent workers
// routinely hit the classic shared→exclusive upgrade deadlock; TABS
// resolves deadlock by time-outs and applications retry the aborted
// transaction (§2.1.3). Every committed increment must survive.
func TestManyConcurrentTransactions(t *testing.T) {
	c, n, arr := arrayNode(t, 10)
	defer c.Shutdown()
	srv, _ := n.Server("array")
	srv.Locks().SetTimeout(50 * time.Millisecond)

	const workers = 4
	const perWorker = 10
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				// Retry with randomized backoff until the increment
				// commits; time-outs abort the transaction cleanly and
				// the application tries again (deadlock livelock is the
				// application's problem to damp, then as now).
				for attempt := 0; ; attempt++ {
					err := n.App.Run(func(tid types.TransID) error {
						v, err := arr.Get(tid, 1)
						if err != nil {
							return err
						}
						return arr.Set(tid, 1, v+1)
					})
					if err == nil {
						break
					}
					if attempt > 500 {
						errs <- fmt.Errorf("increment never succeeded: %w", err)
						return
					}
					time.Sleep(time.Duration(rng.Intn(20)) * time.Millisecond)
				}
			}
			errs <- nil
		}(int64(w + 1))
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if err := n.App.Run(func(tid types.TransID) error {
		v, err := arr.Get(tid, 1)
		if err != nil {
			return err
		}
		if v != workers*perWorker {
			t.Errorf("counter %d, want %d", v, workers*perWorker)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestCheckAborted surfaces the TransactionIsAborted exception.
func TestCheckAborted(t *testing.T) {
	c, n, _ := arrayNode(t, 10)
	defer c.Shutdown()
	tid, err := n.App.BeginTransaction(types.NilTransID)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.App.CheckAborted(tid); err != nil {
		t.Errorf("live transaction reported aborted: %v", err)
	}
	if err := n.App.AbortTransaction(tid); err != nil {
		t.Fatal(err)
	}
	if err := n.App.CheckAborted(tid); err == nil {
		t.Error("aborted transaction not reported")
	} else if !errorsIsAborted(err) {
		t.Errorf("wrong error: %v", err)
	}
}

func errorsIsAborted(err error) bool {
	for err != nil {
		if err.Error() == "applib: transaction is aborted" {
			return true
		}
		err = errors.Unwrap(err)
	}
	return false
}
