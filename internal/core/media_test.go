package core_test

import (
	"path/filepath"
	"tabs/internal/core"
	"testing"
	"time"

	"tabs/internal/disk"
	"tabs/internal/servers/accum"
	"tabs/internal/servers/intarray"
	"tabs/internal/types"
)

// TestMediaRecovery exercises the archive-plus-log path of the paper's
// future-work list (§7): commit data, take a segment archive, commit more
// data, then destroy the segment region of the disk (a media failure that
// spares the log, which the paper requires to live on stable storage).
// Restoring the archive and replaying the log must reproduce everything
// committed — including the transactions after the archive.
func TestMediaRecovery(t *testing.T) {
	c, n, arr := arrayNode(t, 50)
	defer c.Shutdown()
	dir := t.TempDir()
	archive := filepath.Join(dir, "segments.archive")

	// Phase 1: committed before the archive.
	if err := n.App.Run(func(tid types.TransID) error {
		return arr.Set(tid, 1, 100)
	}); err != nil {
		t.Fatal(err)
	}
	mark, err := n.ArchiveSegments(archive)
	if err != nil {
		t.Fatalf("archive: %v", err)
	}

	// Phase 2: committed after the archive (lives only in archive-later
	// log records plus, possibly, segment pages we are about to destroy).
	if err := n.App.Run(func(tid types.TransID) error {
		if err := arr.Set(tid, 1, 200); err != nil {
			return err
		}
		return arr.Set(tid, 2, 300)
	}); err != nil {
		t.Fatal(err)
	}
	if err := n.Kernel.FlushAll(); err != nil {
		t.Fatal(err)
	}

	// Media failure: scribble over every segment sector (the log region
	// and its anchor survive). Then crash the node.
	trash := make([]byte, disk.SectorSize)
	for i := range trash {
		trash[i] = 0xDB
	}
	geom := n.Disk().Geometry()
	for addr := disk.Addr(2048); addr < disk.Addr(geom.Sectors); addr++ {
		if err := n.Disk().Write(addr, trash, 0xDEAD); err != nil {
			t.Fatal(err)
		}
	}
	c.Crash("n1")

	// Rebuild the node over the same (damaged) disk; restore the archive
	// BEFORE attaching servers so the segment directory is back when
	// EnsureSegment runs.
	n2, err := c.Reboot("n1")
	if err != nil {
		t.Fatal(err)
	}
	restoredMark, err := n2.RestoreSegments(archive)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if restoredMark != mark {
		t.Fatalf("mark mismatch: %v vs %v", restoredMark, mark)
	}
	if _, err := intarray.Attach(n2, "array", 1, 50, time.Second); err != nil {
		t.Fatal(err)
	}
	report, err := n2.MediaRecover(restoredMark)
	if err != nil {
		t.Fatalf("media recovery: %v", err)
	}
	if report.Redone == 0 {
		t.Error("media recovery redid nothing, but post-archive commits existed")
	}

	arr2 := intarray.NewClient(n2, "n1", "array")
	if err := n2.App.Run(func(tid types.TransID) error {
		v1, err := arr2.Get(tid, 1)
		if err != nil {
			return err
		}
		v2, err := arr2.Get(tid, 2)
		if err != nil {
			return err
		}
		if v1 != 200 || v2 != 300 {
			t.Errorf("cells %d,%d; want 200,300", v1, v2)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestMediaRecoveryOperationLogging runs the same scenario over the
// accumulator: logical redo through the restored page sequence numbers.
func TestMediaRecoveryOperationLogging(t *testing.T) {
	c, err := newClusterOneNode(t)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	n := c.Node("n1")
	if _, err := accum.Attach(n, "acc", 1, 16, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Recover(); err != nil {
		t.Fatal(err)
	}
	acc := accum.NewClient(n, "n1", "acc")
	dir := t.TempDir()
	archive := filepath.Join(dir, "acc.archive")

	if err := n.App.Run(func(tid types.TransID) error {
		return acc.Increment(tid, 1, 10)
	}); err != nil {
		t.Fatal(err)
	}
	mark, err := n.ArchiveSegments(archive)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := n.App.Run(func(tid types.TransID) error {
			return acc.Increment(tid, 1, 5)
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Destroy segments, crash, restore, replay.
	trash := make([]byte, disk.SectorSize)
	geom := n.Disk().Geometry()
	for addr := disk.Addr(2048); addr < disk.Addr(geom.Sectors); addr++ {
		if err := n.Disk().Write(addr, trash, 0); err != nil {
			t.Fatal(err)
		}
	}
	c.Crash("n1")
	n2, err := c.Reboot("n1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n2.RestoreSegments(archive); err != nil {
		t.Fatal(err)
	}
	if _, err := accum.Attach(n2, "acc", 1, 16, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := n2.MediaRecover(mark); err != nil {
		t.Fatal(err)
	}
	acc2 := accum.NewClient(n2, "n1", "acc")
	if err := n2.App.Run(func(tid types.TransID) error {
		v, err := acc2.Get(tid, 1)
		if err != nil {
			return err
		}
		if v != 30 {
			t.Errorf("counter %d, want 30 (10 archived + 4×5 replayed)", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func newClusterOneNode(t *testing.T) (*core.Cluster, error) {
	t.Helper()
	return core.NewCluster(core.DefaultClusterOptions(), "n1")
}
