// Online shard migration: move one shard of a partitioned object family
// to a new home node while the cluster serves traffic.
//
// The move is a system transaction. The source's export operation
// write-locks every object in the shard through the ordinary lock manager
// (quiescing new writes for the copy's duration; concurrent transactions
// block and, past the lock time-out, abort and retry exactly as any
// conflicting transaction would), the shard's pages stream to the
// destination in bounded chunks, and the destination applies them with
// the standard value-logging discipline — pin, write, log old/new — so
// commit forces the copied pages through the destination's WAL. Just
// before commit the source seals itself (new operations answer
// ErrShardMoved instead of serving from the orphaned copy).
//
// Commit of the migration transaction is the atomicity point. Only after
// commit does the driver publish a placement map with the version bumped
// — installing it everywhere through the Name Server broadcast, which
// drops routing caches so traffic re-resolves to the new home — and then
// drop the source's registration. A crash anywhere before the publish
// leaves the old placement authoritative: the source's data was only
// read, the destination's half-written pages are undone by recovery, and
// the volatile seal dies with the source. The driver is always the
// shard's current home node (remote callers are forwarded), so "driver
// crashed mid-move" and "source crashed mid-move" are the same failure
// with the same clean outcome.
package core

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"tabs/internal/nameserver"
	"tabs/internal/types"
)

// MigrateControlService is the Communication Manager service carrying
// migration control traffic: operator commands from tabsctl ("migrate",
// "rebalance") and the driver's own prepare/drop calls to the
// destination and source nodes. Requests and replies are JSON.
const MigrateControlService = "migratectl"

// Migration operation names. A data server family that supports
// migration implements these three in its dispatcher; the driver speaks
// only this surface and stays ignorant of the family's layout.
const (
	// OpMigrateExport returns one chunk of the shard's pages. The first
	// chunk (page 0) must quiesce the shard: write-lock every object
	// under the migration transaction before reading.
	OpMigrateExport = "MigrateExport"
	// OpMigrateImport applies one chunk of pages on the destination with
	// full value logging under the migration transaction.
	OpMigrateImport = "MigrateImport"
	// OpMigrateSeal marks the source moved (body {1}) so post-commit
	// operations are refused, or clears the mark (body {0}) when the
	// migration aborts.
	OpMigrateSeal = "MigrateSeal"
)

// migrateChunkPages bounds one export/import exchange (pages per chunk),
// keeping each message well under the session layer's comfort zone while
// amortizing the per-call cost.
const migrateChunkPages = 8

// ShardFactory attaches one shard's data server on n, sized and
// configured from the meta blob the source's export produced. Families
// register a factory on every node that may become a migration
// destination.
type ShardFactory func(n *Node, shard int, meta []byte) error

// RegisterShardFactory makes family's shards attachable on this node.
func (n *Node) RegisterShardFactory(family string, f ShardFactory) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.factories == nil {
		n.factories = make(map[string]ShardFactory)
	}
	n.factories[family] = f
}

func (n *Node) shardFactory(family string) ShardFactory {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.factories[family]
}

// DetachServer closes a data server and withdraws its Name Server
// advertisement. The server's recoverable segment stays allocated on
// disk (space reclamation is out of scope); re-attaching under the same
// identifier re-maps it.
func (n *Node) DetachServer(id types.ServerID) error {
	n.mu.Lock()
	s, ok := n.servers[id]
	if ok {
		delete(n.servers, id)
	}
	n.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoServer, id)
	}
	seg := s.Segment()
	s.Close()
	n.NS.DeRegister(string(id), id, types.ObjectID{Segment: seg})
	return nil
}

// MigrateReport summarizes one completed shard move.
type MigrateReport struct {
	Family   string        `json:"family"`
	Shard    int           `json:"shard"`
	From     types.NodeID  `json:"from"`
	To       types.NodeID  `json:"to"`
	Pages    uint32        `json:"pages"`
	Bytes    uint64        `json:"bytes"`
	Version  uint64        `json:"version"` // placement version published
	Duration time.Duration `json:"duration_ns"`
	// Placement is the published map, carried in the reply so the caller
	// installs it synchronously instead of waiting on the best-effort
	// broadcast (a rebalancer re-plans from it immediately).
	Placement *nameserver.Placement `json:"placement,omitempty"`
}

// MigrateShard moves family's shard to dest and publishes the bumped
// placement map. The call may be issued on any node; it is forwarded to
// the shard's current home, which drives the move (so a driver crash is
// a source crash, and the volatile seal cannot outlive an unresolved
// migration). Migrating a shard onto its own home is an error.
func (n *Node) MigrateShard(family string, shard int, dest types.NodeID) (*MigrateReport, error) {
	p := n.NS.PlacementFor(family)
	if p == nil {
		return nil, fmt.Errorf("core: no placement installed for family %q on %s", family, n.id)
	}
	if shard < 0 || shard >= p.NumShards() {
		return nil, fmt.Errorf("core: shard %d out of range for family %q (%d shards)", shard, family, p.NumShards())
	}
	src := p.Shards[shard]
	if src.Node == dest {
		return nil, fmt.Errorf("core: shard %d of %q already lives on %s", shard, family, dest)
	}
	if src.Node != n.id {
		// Forward to the home node, which drives the move locally.
		out, err := n.migrateCtl(src.Node, migrateCtlRequest{Cmd: "migrate", Family: family, Shard: shard, Dest: dest})
		if err != nil {
			return nil, err
		}
		var rep MigrateReport
		if err := json.Unmarshal(out, &rep); err != nil {
			return nil, fmt.Errorf("core: bad migrate reply from %s: %w", src.Node, err)
		}
		n.NS.SetPlacement(rep.Placement)
		return &rep, nil
	}

	start := time.Now()
	server := src.Server
	var totalPages uint32
	var bytesMoved uint64
	sealed, prepared := false, false
	err := n.App.Run(func(tid types.TransID) error {
		var pg uint32
		for {
			out, err := n.Call(server, OpMigrateExport, tid, encodeMigrateExportReq(pg, migrateChunkPages))
			if err != nil {
				return fmt.Errorf("exporting page %d: %w", pg, err)
			}
			total, meta, chunkStart, data, err := decodeMigrateExportReply(out)
			if err != nil {
				return err
			}
			if pg == 0 {
				totalPages = total
				if err := n.migratePrepare(dest, family, shard, server, meta); err != nil {
					return fmt.Errorf("preparing destination %s: %w", dest, err)
				}
				prepared = true
			}
			if len(data) > 0 {
				if _, err := n.CallRemote(dest, server, OpMigrateImport, tid, EncodeMigrateImportReq(chunkStart, data)); err != nil {
					return fmt.Errorf("importing page %d on %s: %w", chunkStart, dest, err)
				}
				bytesMoved += uint64(len(data))
			}
			pg = chunkStart + uint32(len(data))/types.PageSize
			if pg >= total {
				break
			}
		}
		n.fireMigrateHook("copied")
		// Seal the source while the quiesce locks are still held: every
		// operation granted a lock after commit releases them will find
		// the shard moved instead of serving from the orphaned copy.
		if _, err := n.Call(server, OpMigrateSeal, tid, []byte{1}); err != nil {
			return fmt.Errorf("sealing source: %w", err)
		}
		sealed = true
		n.fireMigrateHook("sealed")
		return nil
	})
	if err != nil {
		// The transaction's effects are undone; roll back the two
		// non-transactional side effects best-effort. An unreachable
		// destination keeps its (sealed-by-placement, data-undone) stray
		// server until a later migration re-prepares it.
		if sealed {
			_, _ = n.Call(server, OpMigrateSeal, types.NilTransID, []byte{0})
		}
		if prepared {
			_ = n.migrateDrop(dest, server)
		}
		return nil, fmt.Errorf("core: migrating %s shard %d %s->%s: %w", family, shard, src.Node, dest, err)
	}

	// Commit happened: the destination's copy is durable and the source
	// is sealed. Publish the new map (best-effort beyond the local
	// install; stragglers converge via reboot re-install and the router's
	// live-registration fallback), then withdraw the source registration.
	np := &nameserver.Placement{
		Family:  p.Family,
		Version: p.Version + 1,
		Shards:  append([]nameserver.ShardInfo(nil), p.Shards...),
	}
	np.Shards[shard] = nameserver.ShardInfo{Node: dest, Server: server}
	_, _ = n.NS.PublishPlacement(np)
	n.fireMigrateHook("published")
	_ = n.DetachServer(server)
	return &MigrateReport{
		Family:    family,
		Shard:     shard,
		From:      src.Node,
		To:        dest,
		Pages:     totalPages,
		Bytes:     bytesMoved,
		Version:   np.Version,
		Duration:  time.Since(start),
		Placement: np,
	}, nil
}

// fireMigrateHook invokes the test hook, if any, at a named stage of the
// move ("copied", "sealed", "published"). Tests set MigrateHook on the
// driver node before starting a migration to crash nodes at precise
// points.
func (n *Node) fireMigrateHook(stage string) {
	if n.MigrateHook != nil {
		n.MigrateHook(stage)
	}
}

// RebalanceMove is one planned move: shard to new home.
type RebalanceMove struct {
	Shard int          `json:"shard"`
	To    types.NodeID `json:"to"`
}

// PlanRebalance computes the minimal deterministic set of moves that
// evens family's shard counts across nodes: every node ends with
// floor(S/N) or ceil(S/N) shards, shards on nodes outside the list are
// always moved, and already-balanced placements plan nothing. The node
// list must be in canonical (sorted) order for every planner to agree.
func PlanRebalance(p *nameserver.Placement, nodes []types.NodeID) []RebalanceMove {
	if p == nil || len(nodes) == 0 {
		return nil
	}
	member := make(map[types.NodeID]int, len(nodes)) // node -> quota remaining
	base, extra := p.NumShards()/len(nodes), p.NumShards()%len(nodes)
	for i, nd := range nodes {
		member[nd] = base
		if i < extra {
			member[nd]++
		}
	}
	// First pass: shards staying put consume their home's quota.
	stays := make([]bool, p.NumShards())
	for i, sh := range p.Shards {
		if left, ok := member[sh.Node]; ok && left > 0 {
			member[sh.Node] = left - 1
			stays[i] = true
		}
	}
	// Second pass: everything else moves to the first node with quota.
	var moves []RebalanceMove
	for i := range p.Shards {
		if stays[i] {
			continue
		}
		for _, nd := range nodes {
			if member[nd] > 0 {
				member[nd]--
				moves = append(moves, RebalanceMove{Shard: i, To: nd})
				break
			}
		}
	}
	return moves
}

// RebalanceFamily evens family's shard counts across nodes by running
// the planned migrations one at a time, re-planning against the freshly
// published placement after each move. Returns the reports of the moves
// performed; on a failed move the completed reports accompany the error.
func (n *Node) RebalanceFamily(family string, nodes []types.NodeID) ([]*MigrateReport, error) {
	sorted := append([]types.NodeID(nil), nodes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var reps []*MigrateReport
	for limit := 0; ; limit++ {
		p := n.NS.PlacementFor(family)
		if p == nil {
			return reps, fmt.Errorf("core: no placement installed for family %q on %s", family, n.id)
		}
		if limit > p.NumShards() {
			return reps, fmt.Errorf("core: rebalance of %q did not converge after %d moves", family, limit)
		}
		moves := PlanRebalance(p, sorted)
		if len(moves) == 0 {
			return reps, nil
		}
		rep, err := n.MigrateShard(family, moves[0].Shard, moves[0].To)
		if err != nil {
			return reps, err
		}
		reps = append(reps, rep)
	}
}

// --- cluster wrappers -------------------------------------------------------

// MigrateShard moves family's shard to dest, driving from the shard's
// current home node.
func (c *Cluster) MigrateShard(family string, shard int, dest types.NodeID) (*MigrateReport, error) {
	p := c.Placement(family)
	if p == nil {
		return nil, fmt.Errorf("core: no placement known for family %q", family)
	}
	if shard < 0 || shard >= p.NumShards() {
		return nil, fmt.Errorf("core: shard %d out of range for family %q (%d shards)", shard, family, p.NumShards())
	}
	driver := c.Node(p.Shards[shard].Node)
	if driver == nil {
		return nil, fmt.Errorf("core: shard %d's home %s is down", shard, p.Shards[shard].Node)
	}
	rep, err := driver.MigrateShard(family, shard, dest)
	if err == nil {
		c.installNewest(family, driver)
	}
	return rep, err
}

// installNewest pushes driver's (freshly published) map for family onto
// every live node synchronously; the broadcast publish is asynchronous
// and best-effort, and the harness wants determinism.
func (c *Cluster) installNewest(family string, driver *Node) {
	np := driver.NS.PlacementFor(family)
	if np == nil {
		return
	}
	for _, n := range c.nodes {
		n.NS.SetPlacement(np)
	}
	c.notePlacement(np)
}

// Rebalance evens family's shard counts across the cluster's live nodes.
func (c *Cluster) Rebalance(family string) ([]*MigrateReport, error) {
	p := c.Placement(family)
	if p == nil {
		return nil, fmt.Errorf("core: no placement known for family %q", family)
	}
	driver := c.Node(p.Shards[0].Node)
	if driver == nil {
		// Any live node can coordinate; moves forward to each home.
		for _, name := range c.NodeNames() {
			driver = c.nodes[name]
			break
		}
	}
	if driver == nil {
		return nil, errors.New("core: no live node to drive the rebalance")
	}
	reps, err := driver.RebalanceFamily(family, c.NodeNames())
	c.installNewest(family, driver)
	return reps, err
}

// --- control service --------------------------------------------------------

// migrateCtlRequest is the migratectl wire request.
type migrateCtlRequest struct {
	Cmd    string         `json:"cmd"` // prepare | drop | migrate | rebalance
	Family string         `json:"family,omitempty"`
	Shard  int            `json:"shard"`
	Server types.ServerID `json:"server,omitempty"`
	Dest   types.NodeID   `json:"dest,omitempty"`
	Nodes  []types.NodeID `json:"nodes,omitempty"`
	Meta   []byte         `json:"meta,omitempty"`
}

// migrateCtl sends a control request to peer (or handles it locally).
func (n *Node) migrateCtl(peer types.NodeID, req migrateCtlRequest) ([]byte, error) {
	blob, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	if peer == n.id {
		return n.handleMigrateControl(n.id, types.NilTransID, blob)
	}
	if n.CM == nil {
		return nil, fmt.Errorf("core: node %s has no network", n.id)
	}
	return n.CM.Call(peer, MigrateControlService, types.NilTransID, blob)
}

func (n *Node) migratePrepare(dest types.NodeID, family string, shard int, server types.ServerID, meta []byte) error {
	_, err := n.migrateCtl(dest, migrateCtlRequest{Cmd: "prepare", Family: family, Shard: shard, Server: server, Meta: meta})
	return err
}

func (n *Node) migrateDrop(peer types.NodeID, server types.ServerID) error {
	_, err := n.migrateCtl(peer, migrateCtlRequest{Cmd: "drop", Server: server})
	return err
}

// handleMigrateControl serves migratectl requests: the driver's
// prepare/drop legs and tabsctl's operator commands.
func (n *Node) handleMigrateControl(_ types.NodeID, _ types.TransID, payload []byte) ([]byte, error) {
	n.mu.Lock()
	recovering := n.recovering
	n.mu.Unlock()
	if recovering {
		// Attaching shards or driving moves while log replay is still
		// installing pages would race the recovery scan; callers retry.
		return nil, fmt.Errorf("%w: %s", ErrRecovering, n.id)
	}
	var req migrateCtlRequest
	if err := json.Unmarshal(payload, &req); err != nil {
		return nil, fmt.Errorf("core: bad migrate request: %w", err)
	}
	switch req.Cmd {
	case "prepare":
		if _, ok := n.Server(req.Server); ok {
			return []byte("ok"), nil // already attached: idempotent re-prepare
		}
		f := n.shardFactory(req.Family)
		if f == nil {
			return nil, fmt.Errorf("core: node %s has no shard factory for family %q", n.id, req.Family)
		}
		if err := f(n, req.Shard, req.Meta); err != nil {
			return nil, err
		}
		return []byte("ok"), nil
	case "drop":
		if err := n.DetachServer(req.Server); err != nil && !errors.Is(err, ErrNoServer) {
			return nil, err
		}
		return []byte("ok"), nil
	case "migrate":
		rep, err := n.MigrateShard(req.Family, req.Shard, req.Dest)
		if err != nil {
			return nil, err
		}
		return json.Marshal(rep)
	case "rebalance":
		reps, err := n.RebalanceFamily(req.Family, req.Nodes)
		if err != nil {
			return nil, err
		}
		return json.Marshal(reps)
	default:
		return nil, fmt.Errorf("core: unknown migrate command %q", req.Cmd)
	}
}

// --- wire format ------------------------------------------------------------

// Export request: {startPage u32, maxPages u32}.

func encodeMigrateExportReq(startPage, maxPages uint32) []byte {
	b := binary.BigEndian.AppendUint32(nil, startPage)
	return binary.BigEndian.AppendUint32(b, maxPages)
}

// DecodeMigrateExportReq unpacks an OpMigrateExport request body
// (servers implementing the op call this).
func DecodeMigrateExportReq(p []byte) (startPage, maxPages uint32, err error) {
	if len(p) != 8 {
		return 0, 0, errors.New("core: MigrateExport wants start page and max pages")
	}
	return binary.BigEndian.Uint32(p[0:4]), binary.BigEndian.Uint32(p[4:8]), nil
}

// EncodeMigrateExportReply packs an OpMigrateExport reply: the shard's
// total page count, a family-specific meta blob (passed to the
// destination's ShardFactory), and the chunk's pages.
func EncodeMigrateExportReply(totalPages uint32, meta []byte, startPage uint32, data []byte) []byte {
	b := make([]byte, 0, 10+len(meta)+len(data))
	b = binary.BigEndian.AppendUint32(b, totalPages)
	b = binary.BigEndian.AppendUint16(b, uint16(len(meta)))
	b = append(b, meta...)
	b = binary.BigEndian.AppendUint32(b, startPage)
	return append(b, data...)
}

func decodeMigrateExportReply(p []byte) (totalPages uint32, meta []byte, startPage uint32, data []byte, err error) {
	if len(p) < 6 {
		return 0, nil, 0, nil, errors.New("core: short MigrateExport reply")
	}
	totalPages = binary.BigEndian.Uint32(p[0:4])
	ml := int(binary.BigEndian.Uint16(p[4:6]))
	p = p[6:]
	if len(p) < ml+4 {
		return 0, nil, 0, nil, errors.New("core: short MigrateExport reply meta")
	}
	meta, p = p[:ml], p[ml:]
	startPage = binary.BigEndian.Uint32(p[0:4])
	data = p[4:]
	if len(data)%int(types.PageSize) != 0 {
		return 0, nil, 0, nil, errors.New("core: MigrateExport reply not page-aligned")
	}
	return totalPages, meta, startPage, data, nil
}

// EncodeMigrateImportReq packs an OpMigrateImport request: the chunk's
// first page number and its page-aligned data.
func EncodeMigrateImportReq(startPage uint32, data []byte) []byte {
	b := binary.BigEndian.AppendUint32(nil, startPage)
	return append(b, data...)
}

// DecodeMigrateImportReq unpacks an OpMigrateImport request body.
func DecodeMigrateImportReq(p []byte) (startPage uint32, data []byte, err error) {
	if len(p) < 4 {
		return 0, nil, errors.New("core: short MigrateImport request")
	}
	startPage = binary.BigEndian.Uint32(p[0:4])
	data = p[4:]
	if len(data) == 0 || len(data)%int(types.PageSize) != 0 {
		return 0, nil, errors.New("core: MigrateImport data not page-aligned")
	}
	return startPage, data, nil
}
