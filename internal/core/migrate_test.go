package core_test

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"tabs/internal/core"
	"tabs/internal/nameserver"
	"tabs/internal/servers/intarray"
	"tabs/internal/types"
)

// seedShardedValues commits value key*7 into every key < keys.
func seedShardedValues(t *testing.T, c *core.Cluster, coord types.NodeID, keys uint64) *intarray.ShardedClient {
	t.Helper()
	client, err := intarray.NewShardedClient(c.Node(coord), "array")
	if err != nil {
		t.Fatal(err)
	}
	app := c.Node(coord).App
	for key := uint64(0); key < keys; key++ {
		key := key
		if err := app.Run(func(tid types.TransID) error {
			return client.Set(tid, key, int64(key*7))
		}); err != nil {
			t.Fatalf("seed key %d: %v", key, err)
		}
	}
	return client
}

// verifyShardedValues checks every key < keys still reads key*7, retrying
// transactions that lose a race with a routing change.
func verifyShardedValues(t *testing.T, c *core.Cluster, coord types.NodeID, client *intarray.ShardedClient, keys uint64) {
	t.Helper()
	app := c.Node(coord).App
	for key := uint64(0); key < keys; key++ {
		key := key
		var v int64
		if err := runRetried(app, 10, func(tid types.TransID) error {
			var err error
			v, err = client.Get(tid, key)
			return err
		}); err != nil {
			t.Fatalf("get key %d: %v", key, err)
		}
		if v != int64(key*7) {
			t.Errorf("key %d = %d, want %d", key, v, key*7)
		}
	}
}

// runRetried retries proc-as-a-transaction up to attempts times; redirect
// and routing errors during a migration are retryable by design.
func runRetried(app interface {
	Run(func(types.TransID) error) error
}, attempts int, proc func(types.TransID) error) error {
	var err error
	for i := 0; i < attempts; i++ {
		if err = app.Run(proc); err == nil {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return err
}

// TestMigrateShardMovesDataAndTraffic is the tentpole happy path: the
// shard's data moves, the placement version bumps everywhere, a client
// router built before the move observes the bump (the long-lived-router
// regression), the source's server is withdrawn and the destination
// serves reads and writes.
func TestMigrateShardMovesDataAndTraffic(t *testing.T) {
	c, names := shardedCluster(t, 3, 300)
	// Client (and its router) built BEFORE the migration, on a node that
	// is neither source nor destination.
	client := seedShardedValues(t, c, names[0], 60)

	rep, err := c.MigrateShard("array", 1, "n3")
	if err != nil {
		t.Fatal(err)
	}
	if rep.From != "n2" || rep.To != "n3" || rep.Pages == 0 || rep.Bytes == 0 {
		t.Fatalf("report %+v", rep)
	}
	if rep.Version != 2 {
		t.Fatalf("published version %d, want 2", rep.Version)
	}
	for _, name := range names {
		p := c.Node(name).NS.PlacementFor("array")
		if p == nil || p.Version != 2 {
			t.Fatalf("%s placement = %+v, want version 2", name, p)
		}
		if p.Shards[1].Node != "n3" {
			t.Fatalf("%s shard 1 home = %s, want n3", name, p.Shards[1].Node)
		}
	}
	// Source dropped its server; destination holds it.
	if _, ok := c.Node("n2").Server(nameserver.ShardServerID("array", 1)); ok {
		t.Fatal("source still serves array#1 after migration")
	}
	if _, ok := c.Node("n3").Server(nameserver.ShardServerID("array", 1)); !ok {
		t.Fatal("destination does not serve array#1 after migration")
	}

	// The pre-migration router redirects: reads see every committed value,
	// including shard 1's, and new writes land on the destination.
	verifyShardedValues(t, c, names[0], client, 60)
	app := c.Node(names[0]).App
	if err := runRetried(app, 10, func(tid types.TransID) error {
		return client.Set(tid, 1, 4242)
	}); err != nil {
		t.Fatal(err)
	}
	var got int64
	if err := runRetried(app, 10, func(tid types.TransID) error {
		var err error
		got, err = client.Get(tid, 1)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got != 4242 {
		t.Fatalf("key 1 = %d after post-migration write, want 4242", got)
	}
}

// TestMigrateShardUnderLoad moves a shard while writers hammer it from
// another node: every transaction must eventually commit (redirected ones
// retry) and no committed write may be lost.
func TestMigrateShardUnderLoad(t *testing.T) {
	c, names := shardedCluster(t, 3, 300)
	client := seedShardedValues(t, c, names[0], 9)
	app := c.Node(names[0]).App

	const workers = 4
	const writesPerWorker = 30
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Worker w owns key 3*w+1: always shard 1, the migrating shard.
			key := uint64(3*w + 1)
			for i := 1; i <= writesPerWorker; i++ {
				val := int64(w*1000 + i)
				if err := runRetried(app, 50, func(tid types.TransID) error {
					return client.Set(tid, key, val)
				}); err != nil {
					errs[w] = fmt.Errorf("worker %d write %d: %w", w, i, err)
					return
				}
			}
		}()
	}
	time.Sleep(20 * time.Millisecond) // let the load ramp
	rep, err := c.MigrateShard("array", 1, "n3")
	wg.Wait()
	if err != nil {
		t.Fatalf("migration under load: %v", err)
	}
	if rep.Version != 2 {
		t.Fatalf("published version %d, want 2", rep.Version)
	}
	for w, werr := range errs {
		if werr != nil {
			t.Fatalf("worker %d failed: %v", w, werr)
		}
	}
	// Every worker's final committed value survived the move.
	for w := 0; w < workers; w++ {
		key := uint64(3*w + 1)
		var v int64
		if err := runRetried(app, 10, func(tid types.TransID) error {
			var err error
			v, err = client.Get(tid, key)
			return err
		}); err != nil {
			t.Fatal(err)
		}
		if v != int64(w*1000+writesPerWorker) {
			t.Errorf("worker %d key %d = %d, want %d", w, key, v, w*1000+writesPerWorker)
		}
	}
}

// TestMigrateCrashDestinationAborts crashes the destination after the
// copy but before commit: the migration must abort, the old placement
// stays authoritative, the source unseals and keeps serving, and no locks
// are orphaned on the source.
func TestMigrateCrashDestinationAborts(t *testing.T) {
	c, names := shardedCluster(t, 3, 300)
	client := seedShardedValues(t, c, names[0], 30)

	src := c.Node("n2") // shard 1's home drives the migration
	src.MigrateHook = func(stage string) {
		if stage == "copied" {
			c.Crash("n3")
		}
	}
	_, err := c.MigrateShard("array", 1, "n3")
	src.MigrateHook = nil
	if err == nil {
		t.Fatal("migration with a dead destination committed")
	}

	// Old placement authoritative everywhere that is alive.
	for _, name := range []types.NodeID{"n1", "n2"} {
		p := c.Node(name).NS.PlacementFor("array")
		if p.Version != 1 || p.Shards[1].Node != "n2" {
			t.Fatalf("%s placement after aborted migration: %+v", name, p)
		}
	}
	// Source serves immediately: unsealed, locks released by the abort.
	// (Shard 2's keys live on the still-crashed n3; skip them until it
	// reboots.)
	app := c.Node(names[0]).App
	for key := uint64(0); key < 30; key++ {
		if key%3 == 2 {
			continue
		}
		key := key
		var v int64
		if err := runRetried(app, 5, func(tid types.TransID) error {
			var err error
			v, err = client.Get(tid, key)
			return err
		}); err != nil {
			t.Fatalf("get key %d after aborted migration: %v", key, err)
		}
		if v != int64(key*7) {
			t.Errorf("key %d = %d after aborted migration, want %d", key, v, key*7)
		}
	}
	if err := app.Run(func(tid types.TransID) error {
		return client.Set(tid, 1, 777)
	}); err != nil {
		t.Fatalf("write to source after aborted migration: %v", err)
	}

	// The destination reboots with its stray half-copy; recovery undoes
	// the imported pages and the placement check keeps it silent. A
	// second migration attempt then succeeds.
	n3, err := c.Reboot("n3")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := intarray.AttachShard(n3, "array", 2, intarray.ShardCells(300, 3, 2), 2*time.Second); err != nil {
		t.Fatal(err)
	}
	intarray.RegisterMigration(n3, "array", 2*time.Second)
	if _, err := n3.Recover(); err != nil {
		t.Fatal(err)
	}
	rep, err := c.MigrateShard("array", 1, "n3")
	if err != nil {
		t.Fatalf("re-migration after destination reboot: %v", err)
	}
	if rep.Version != 2 {
		t.Fatalf("re-migration published version %d, want 2", rep.Version)
	}
	var v int64
	if err := runRetried(app, 10, func(tid types.TransID) error {
		var err error
		v, err = client.Get(tid, 1)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if v != 777 {
		t.Fatalf("key 1 = %d after re-migration, want 777", v)
	}
}

// TestMigrateCrashSourceLeavesOldPlacement crashes the source (which is
// also the driver) mid-move: after its reboot and recovery the old
// placement is authoritative on every node, the data is intact at the
// source, and writes flow again.
func TestMigrateCrashSourceLeavesOldPlacement(t *testing.T) {
	c, names := shardedCluster(t, 3, 300)
	client := seedShardedValues(t, c, names[0], 30)

	src := c.Node("n2")
	src.MigrateHook = func(stage string) {
		if stage == "sealed" {
			c.Crash("n2") // the driver kills itself before commit
		}
	}
	if _, err := c.MigrateShard("array", 1, "n3"); err == nil {
		t.Fatal("migration whose source crashed committed")
	}

	n2, err := c.Reboot("n2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := intarray.AttachShard(n2, "array", 1, intarray.ShardCells(300, 3, 1), 2*time.Second); err != nil {
		t.Fatal(err)
	}
	intarray.RegisterMigration(n2, "array", 2*time.Second)
	if _, err := n2.Recover(); err != nil {
		t.Fatal(err)
	}

	for _, name := range names {
		p := c.Node(name).NS.PlacementFor("array")
		if p == nil || p.Version != 1 || p.Shards[1].Node != "n2" {
			t.Fatalf("%s placement after source crash: %+v", name, p)
		}
	}
	verifyShardedValues(t, c, names[0], client, 30)
	if err := runRetried(c.Node(names[0]).App, 20, func(tid types.TransID) error {
		return client.Set(tid, 4, 888)
	}); err != nil {
		t.Fatalf("write after source reboot: %v", err)
	}
}

// TestRebootReinstallsPlacement is the stale-placement reboot regression:
// a node that was down across a migration must come back with the newest
// cluster map, not the pre-migration one it last saw.
func TestRebootReinstallsPlacement(t *testing.T) {
	c, names := shardedCluster(t, 3, 300)
	seedShardedValues(t, c, names[0], 30)

	c.Crash("n1") // bystander: hosts shard 0, neither source nor dest
	if _, err := c.MigrateShard("array", 1, "n3"); err != nil {
		t.Fatal(err)
	}

	n1, err := c.Reboot("n1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := intarray.AttachShard(n1, "array", 0, intarray.ShardCells(300, 3, 0), 2*time.Second); err != nil {
		t.Fatal(err)
	}
	intarray.RegisterMigration(n1, "array", 2*time.Second)
	if _, err := n1.Recover(); err != nil {
		t.Fatal(err)
	}
	p := n1.NS.PlacementFor("array")
	if p == nil || p.Version != 2 || p.Shards[1].Node != "n3" {
		t.Fatalf("rebooted node placement = %+v, want v2 with shard 1 on n3", p)
	}
	// A fresh client on the rebooted node routes shard 1 to the new home.
	client, err := intarray.NewShardedClient(n1, "array")
	if err != nil {
		t.Fatal(err)
	}
	var v int64
	if err := runRetried(n1.App, 10, func(tid types.TransID) error {
		var err error
		v, err = client.Get(tid, 1)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if v != 7 {
		t.Fatalf("key 1 = %d from rebooted node, want 7", v)
	}
}

// TestApplyPlacementRejectsStaleMap is the partial-install regression:
// publishing a version older than what any node holds must fail loudly
// and name the holdouts.
func TestApplyPlacementRejectsStaleMap(t *testing.T) {
	c, _ := shardedCluster(t, 3, 300)
	p1 := c.Placement("array")
	if p1 == nil || p1.Version != 1 {
		t.Fatalf("placement = %+v", p1)
	}
	// Idempotent re-apply of the installed version succeeds.
	if err := c.ApplyPlacement(p1); err != nil {
		t.Fatalf("idempotent re-apply: %v", err)
	}
	// One node quietly holds a newer map.
	p3 := &nameserver.Placement{Family: "array", Version: 3, Shards: p1.Shards}
	if !c.Node("n2").NS.SetPlacement(p3) {
		t.Fatal("SetPlacement v3 on n2 failed")
	}
	p2 := &nameserver.Placement{Family: "array", Version: 2, Shards: p1.Shards}
	err := c.ApplyPlacement(p2)
	if err == nil {
		t.Fatal("stale partial install did not fail")
	}
	if !strings.Contains(err.Error(), "n2") {
		t.Fatalf("error does not name the holdout: %v", err)
	}
}

// TestCallShardWrapsBothFailures: when the call fails and the retry also
// fails, both errors must be inspectable in the returned chain.
func TestCallShardWrapsBothFailures(t *testing.T) {
	c, names := shardedCluster(t, 2, 100)
	client := seedShardedValues(t, c, names[0], 4)
	_ = client
	r, err := core.NewRouter(c.Node(names[0]), "array")
	if err != nil {
		t.Fatal(err)
	}
	// Warm the route, then kill the home without rebooting it.
	if _, err := r.CallShard(1, intarray.OpGet, types.NilTransID, []byte{0, 0, 0, 1}); err != nil {
		t.Fatal(err)
	}
	c.Crash("n2")
	_, err = r.CallShard(1, intarray.OpGet, types.NilTransID, []byte{0, 0, 0, 1})
	if err == nil {
		t.Fatal("call to a dead home succeeded")
	}
	if !strings.Contains(err.Error(), "array#1") {
		t.Fatalf("error does not name the shard: %v", err)
	}
	// Both the original failure and the retry outcome are in the chain.
	if !strings.Contains(err.Error(), "original failure") && !strings.Contains(err.Error(), "re-resolve also failed") {
		t.Fatalf("error does not carry both failures: %v", err)
	}
}

// TestErrShardMovedIsRoutingClass: a live client call that races a
// migration may see ErrShardMoved from the sealed source; the error must
// be retryable at the transaction layer, and a fresh transaction must
// succeed against the new home.
func TestErrShardMovedIsRoutingClass(t *testing.T) {
	if !errors.Is(fmt.Errorf("wrap: %w", core.ErrShardMoved), core.ErrShardMoved) {
		t.Fatal("ErrShardMoved does not wrap")
	}
	c, names := shardedCluster(t, 2, 100)
	client := seedShardedValues(t, c, names[0], 4)
	if _, err := c.MigrateShard("array", 1, "n1"); err != nil {
		t.Fatal(err)
	}
	// The old home rejects; the router redirects within the same call.
	var v int64
	if err := runRetried(c.Node(names[0]).App, 10, func(tid types.TransID) error {
		var err error
		v, err = client.Get(tid, 1)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if v != 7 {
		t.Fatalf("key 1 = %d after migration, want 7", v)
	}
}

// TestPlanRebalance checks the planner: minimal moves, determinism, and
// off-list eviction.
func TestPlanRebalance(t *testing.T) {
	mk := func(homes ...types.NodeID) *nameserver.Placement {
		p := &nameserver.Placement{Family: "array", Version: 1}
		for i, h := range homes {
			p.Shards = append(p.Shards, nameserver.ShardInfo{Node: h, Server: nameserver.ShardServerID("array", i)})
		}
		return p
	}
	// Balanced: nothing to do.
	if moves := core.PlanRebalance(mk("a", "b", "c"), []types.NodeID{"a", "b", "c"}); len(moves) != 0 {
		t.Fatalf("balanced placement planned %v", moves)
	}
	// Everything piled on one node: two of three move.
	moves := core.PlanRebalance(mk("a", "a", "a"), []types.NodeID{"a", "b", "c"})
	if len(moves) != 2 {
		t.Fatalf("planned %v, want 2 moves", moves)
	}
	// A shard on a node outside the list always moves.
	moves = core.PlanRebalance(mk("a", "z"), []types.NodeID{"a", "b"})
	if len(moves) != 1 || moves[0].Shard != 1 || moves[0].To != "b" {
		t.Fatalf("off-list shard planned %v", moves)
	}
}

// TestRebalanceEvensCounts piles both shards onto one node, then lets
// Rebalance spread them back out.
func TestRebalanceEvensCounts(t *testing.T) {
	c, names := shardedCluster(t, 2, 100)
	client := seedShardedValues(t, c, names[0], 10)
	if _, err := c.MigrateShard("array", 0, "n2"); err != nil {
		t.Fatal(err)
	}
	reps, err := c.Rebalance("array")
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 1 {
		t.Fatalf("rebalance performed %d moves, want 1", len(reps))
	}
	p := c.Placement("array")
	count := map[types.NodeID]int{}
	for _, sh := range p.Shards {
		count[sh.Node]++
	}
	if count["n1"] != 1 || count["n2"] != 1 {
		t.Fatalf("shard counts after rebalance: %v", count)
	}
	verifyShardedValues(t, c, names[0], client, 10)
}

// TestMigrateShardBackToFormerHome moves a shard away and then back. The
// former home still has the shard's segment kernel-mapped (DetachServer
// deliberately leaves it — the data stays on disk), so the destination
// prepare must reuse the live mapping instead of failing with "segment
// already mapped" and permanently refusing the node as a destination.
// The same reuse covers re-preparing a destination after an aborted
// import. Caught by the migrate torture profile at the tabsbench surface
// (seed=7: move 5 arr#2 d0->d2 could never succeed).
func TestMigrateShardBackToFormerHome(t *testing.T) {
	c, names := shardedCluster(t, 3, 300)
	client := seedShardedValues(t, c, names[0], 30)
	if _, err := c.MigrateShard("array", 1, "n3"); err != nil {
		t.Fatal(err)
	}
	rep, err := c.MigrateShard("array", 1, "n2")
	if err != nil {
		t.Fatalf("migrating back to former home: %v", err)
	}
	if rep.From != "n3" || rep.To != "n2" || rep.Version != 3 {
		t.Fatalf("report %+v", rep)
	}
	// The returned-home copy serves: all values visible, writes land.
	verifyShardedValues(t, c, names[0], client, 30)
	app := c.Node(names[0]).App
	if err := runRetried(app, 10, func(tid types.TransID) error {
		return client.Set(tid, 1, 777)
	}); err != nil {
		t.Fatal(err)
	}
	var got int64
	if err := runRetried(app, 10, func(tid types.TransID) error {
		var err error
		got, err = client.Get(tid, 1)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got != 777 {
		t.Fatalf("key 1 = %d after move-back write, want 777", got)
	}
}
