// Package core assembles a TABS node (paper Figure 3-1): the Accent-like
// kernel, the common log on the node's disk, and the four TABS system
// components — Name Server, Communication Manager, Recovery Manager and
// Transaction Manager — plus the registry of user-programmed data servers
// and the application library.
//
// A Node owns no global state: several nodes connected by a
// comm.MemNetwork form an in-process cluster, and cmd/tabsnode runs one
// node per OS process over TCP. Node.Crash discards all volatile state;
// constructing a new Node over the same disk and re-attaching the same
// data servers, then calling Recover, performs crash recovery.
package core

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"tabs/internal/acp"
	"tabs/internal/applib"
	"tabs/internal/comm"
	"tabs/internal/disk"
	"tabs/internal/kernel"
	"tabs/internal/lock"
	"tabs/internal/nameserver"
	"tabs/internal/recovery"
	"tabs/internal/simclock"
	"tabs/internal/srvlib"
	"tabs/internal/stats"
	"tabs/internal/trace"
	"tabs/internal/txn"
	"tabs/internal/types"
	"tabs/internal/wal"
)

// DataServerService is the Communication Manager service that carries
// remote data server calls.
const DataServerService = "datasrv"

// TraceControlService is the Communication Manager service through which
// tabsctl queries a live node's trace and metrics (commands "trace",
// "metrics", "reset"; replies are trace.Export JSON).
const TraceControlService = "tracectl"

// PlacementControlService is the Communication Manager service through
// which tabsctl dumps a live node's placement maps and Name Server tables
// (command "placement"; replies are PlacementReport JSON).
const PlacementControlService = "placectl"

// ACPControlService is the Communication Manager service through which
// tabsctl dumps a live node's commit-protocol state: the configured
// protocol, the acceptor set, the acceptor's per-transaction Paxos
// instances, and the transactions still held by the Transaction Manager
// (command "acp"; replies are ACPReport JSON).
const ACPControlService = "acpctl"

// Errors.
var (
	ErrCrashed      = errors.New("core: node has crashed")
	ErrNoServer     = errors.New("core: no such data server")
	ErrRecovering   = errors.New("core: node is recovering")
	ErrSegmentSize  = errors.New("core: segment exists with different size")
	ErrSegmentSpace = errors.New("core: disk space exhausted for segments")
)

// Config parameterizes a node.
type Config struct {
	ID types.NodeID
	// Disk is the node's non-volatile storage. Reuse the same Disk across
	// Node generations to simulate crash/restart.
	Disk *disk.Disk
	// LogSectors is the size of the log region including its anchor.
	LogSectors int64
	// PoolPages bounds the kernel buffer pool.
	PoolPages int
	// Transport connects the node to the network; nil isolates it.
	Transport comm.Transport
	// Registry, when set, gives each TABS component its own primitive
	// recorder ("<id>/kernel", "<id>/rm", "<id>/tm", "<id>/cm",
	// "<id>/wal", "<id>/srv"), which the benchmark projections need to
	// attribute messages to components (paper §5.3). When nil, Rec (or a
	// private recorder) is shared by every component.
	Registry *stats.Registry
	// Rec records primitive operations; nil creates a private recorder.
	// Ignored when Registry is set.
	Rec *stats.Recorder
	// CheckpointEvery configures the Recovery Manager.
	CheckpointEvery int
	// LockTimeout is the default data-server lock time-out.
	LockTimeout time.Duration
	// DisableGroupCommit makes every log Force pay its own Stable Storage
	// Write synchronously (no batching, no append/force pipelining) —
	// the paper-faithful commit accounting. See wal.Config.
	DisableGroupCommit bool
	// DisableTrace turns the per-node trace/metrics layer off entirely;
	// every component then takes the nil-tracer fast path.
	DisableTrace bool
	// TraceSpanCapacity bounds the span ring buffer; 0 selects
	// trace.DefaultSpanCapacity.
	TraceSpanCapacity int
	// WALFaultHook threads the fault-injection layer into the node's log
	// (see wal.Config.FaultHook); nil injects nothing.
	WALFaultHook wal.FaultHook
	// CommitProtocol selects how this node's top-level transactions reach
	// their commit decision: "2pc" (or empty, the default) is the paper's
	// coordinator-forces-the-commit-record; "paxos" replicates the decision
	// across the Acceptors quorum (Paxos Commit), surviving coordinator
	// death while a majority of acceptors live.
	CommitProtocol string
	// Acceptors names the replica set for "paxos" commits started by this
	// node. Every node answers acceptor traffic regardless, so the set may
	// name any nodes in the cluster; odd sizes (2F+1) tolerate F failures.
	Acceptors []types.NodeID
}

// Commit-protocol names accepted by Config.CommitProtocol.
const (
	Protocol2PC   = "2pc"
	ProtocolPaxos = "paxos"
)

// Node is one TABS machine.
type Node struct {
	id  types.NodeID
	cfg Config
	d   *disk.Disk
	rec *stats.Recorder
	tr  *trace.Tracer

	Kernel *kernel.Kernel
	Log    *wal.Log
	RM     *recovery.Manager
	TM     *txn.Manager
	CM     *comm.Manager
	ACP    *acp.Manager
	NS     *nameserver.Server
	App    *applib.Lib

	mu         sync.Mutex
	servers    map[types.ServerID]*srvlib.Server
	factories  map[string]ShardFactory
	segDir     map[types.SegmentID]segEntry
	nextFree   disk.Addr
	afterRecov []func() error
	crashed    bool
	recovering bool

	// MigrateHook, when set before a migration is driven from this node,
	// is called at named stages of the move ("copied", "sealed",
	// "published"); crash tests use it to fail nodes at precise points.
	MigrateHook func(stage string)
}

type segEntry struct {
	base  disk.Addr
	pages uint32
}

// segment directory layout: one reserved sector after the log region.
const segDirMagic = 0x5E6D19A7

// NewNode constructs a node over cfg.Disk. The log region is mounted (a
// fresh disk is formatted); segments are re-mapped from the persistent
// segment directory. Call Recover after attaching data servers.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Disk == nil {
		return nil, errors.New("core: config needs a disk")
	}
	if cfg.LogSectors < 2 {
		cfg.LogSectors = 256
	}
	// Component recorders: distinct when a registry is supplied, shared
	// otherwise.
	var kernelRec, walRec, rmRec, tmRec, cmRec, srvRec *stats.Recorder
	if cfg.Registry != nil {
		id := string(cfg.ID)
		kernelRec = cfg.Registry.Recorder(id + "/kernel")
		walRec = cfg.Registry.Recorder(id + "/wal")
		rmRec = cfg.Registry.Recorder(id + "/rm")
		tmRec = cfg.Registry.Recorder(id + "/tm")
		cmRec = cfg.Registry.Recorder(id + "/cm")
		srvRec = cfg.Registry.Recorder(id + "/srv")
	} else {
		rec := cfg.Rec
		if rec == nil {
			rec = stats.NewRecorder()
		}
		kernelRec, walRec, rmRec, tmRec, cmRec, srvRec = rec, rec, rec, rec, rec, rec
	}
	n := &Node{
		id:      cfg.ID,
		cfg:     cfg,
		d:       cfg.Disk,
		rec:     srvRec,
		servers: make(map[types.ServerID]*srvlib.Server),
		segDir:  make(map[types.SegmentID]segEntry),
	}
	if !cfg.DisableTrace {
		n.tr = trace.New(string(cfg.ID), cfg.TraceSpanCapacity)
	}
	n.Kernel = kernel.New(kernel.Config{Disk: cfg.Disk, PoolPages: cfg.PoolPages, Rec: kernelRec, Trace: n.tr})
	lg, err := wal.Open(wal.Config{Disk: cfg.Disk, Base: 0, Sectors: cfg.LogSectors, Rec: walRec, Trace: n.tr, DisableGroupCommit: cfg.DisableGroupCommit, FaultHook: cfg.WALFaultHook})
	if err != nil {
		return nil, fmt.Errorf("core: mounting log: %w", err)
	}
	n.Log = lg
	n.RM = recovery.New(recovery.Config{Log: lg, Kernel: n.Kernel, Rec: rmRec, CheckpointEvery: cfg.CheckpointEvery, Trace: n.tr})
	if cfg.Transport != nil {
		n.CM = comm.New(cfg.ID, cfg.Transport, cmRec)
		n.CM.AttachTracer(n.tr)
	}
	if n.CM != nil {
		n.TM = txn.New(cfg.ID, n.RM, n.CM, tmRec)
		n.CM.SetTransactionNoter(n.TM)
		n.CM.RegisterService(DataServerService, n.handleRemoteCall)
		n.CM.RegisterService(TraceControlService, n.handleTraceControl)
		n.CM.RegisterService(PlacementControlService, n.handlePlacementControl)
		n.CM.RegisterService(ACPControlService, n.handleACPControl)
		n.CM.RegisterService(MigrateControlService, n.handleMigrateControl)
	} else {
		n.TM = txn.New(cfg.ID, n.RM, nil, tmRec)
	}
	n.TM.AttachTracer(n.tr)
	// The acp endpoint is always constructed: the acceptor role must be
	// live (and its state restored through the Recovery Manager) even on
	// nodes whose own transactions use 2PC, because other nodes may name
	// this one in their acceptor sets. Restart ordering matters — the
	// ACPSource is attached before Recover runs, so checkpoint blobs and
	// RecACP records replay into the acceptor table before the in-doubt
	// resolution pass asks it anything.
	if n.CM != nil {
		n.ACP = acp.New(cfg.ID, n.CM)
	} else {
		n.ACP = acp.New(cfg.ID, nil)
	}
	n.ACP.AttachTracer(n.tr)
	n.ACP.SetLogger(n.RM)
	n.RM.SetACPSource(n.ACP)
	n.ACP.SetAcceptors(cfg.Acceptors)
	switch cfg.CommitProtocol {
	case "", Protocol2PC:
		// Default built-in two-phase commit; nothing to install.
	case ProtocolPaxos:
		n.TM.SetProtocol(n.ACP)
	default:
		return nil, fmt.Errorf("core: unknown commit protocol %q", cfg.CommitProtocol)
	}
	n.NS = nameserver.New(cfg.ID, nsBroadcaster(n))
	n.NS.AttachTracer(n.tr)
	n.App = applib.New(n.TM)
	if err := n.loadSegDir(); err != nil {
		return nil, err
	}
	// A disk with prior state may hold committed effects only the log
	// knows about: until Recover replays them, serving a data-server
	// operation could read stale pages — or worse, commit a write that
	// the still-running replay then overwrites with pre-crash images.
	// Refuse data-server traffic until Recover completes. A fresh disk
	// (empty segment directory) has nothing to replay and serves at once.
	n.recovering = len(n.segDir) > 0
	return n, nil
}

// nsBroadcaster adapts the optional CM for the name server.
func nsBroadcaster(n *Node) nameserver.Broadcaster {
	if n.CM == nil {
		return nil
	}
	return n.CM
}

// ID returns the node's identifier.
func (n *Node) ID() types.NodeID { return n.id }

// Rec returns the node's primitive-operation recorder.
func (n *Node) Rec() *stats.Recorder { return n.rec }

// Tracer returns the node's trace layer (nil when disabled).
func (n *Node) Tracer() *trace.Tracer { return n.tr }

// TraceSnapshot returns the node's buffered spans, oldest first.
func (n *Node) TraceSnapshot() []trace.Span { return n.tr.TraceSnapshot() }

// MetricsSnapshot returns the node's trace-layer metrics by name.
func (n *Node) MetricsSnapshot() map[string]trace.MetricValue { return n.tr.MetricsSnapshot() }

// Disk returns the node's disk.
func (n *Node) Disk() *disk.Disk { return n.d }

// --- segment directory -----------------------------------------------------

func (n *Node) segDirSector() disk.Addr { return disk.Addr(n.cfg.LogSectors) }

func (n *Node) loadSegDir() error {
	var sector [disk.SectorSize]byte
	if _, err := n.d.Read(n.segDirSector(), sector[:]); err != nil {
		return err
	}
	n.nextFree = n.segDirSector() + 1
	if binary.BigEndian.Uint32(sector[0:4]) != segDirMagic {
		return nil // fresh disk: empty directory
	}
	count := int(binary.BigEndian.Uint16(sector[4:6]))
	off := 6
	for i := 0; i < count; i++ {
		id := types.SegmentID(binary.BigEndian.Uint32(sector[off : off+4]))
		base := disk.Addr(binary.BigEndian.Uint64(sector[off+4 : off+12]))
		pages := binary.BigEndian.Uint32(sector[off+12 : off+16])
		n.segDir[id] = segEntry{base: base, pages: pages}
		if end := base + disk.Addr(pages); end > n.nextFree {
			n.nextFree = end
		}
		off += 16
	}
	return nil
}

func (n *Node) storeSegDir() error {
	var sector [disk.SectorSize]byte
	binary.BigEndian.PutUint32(sector[0:4], segDirMagic)
	binary.BigEndian.PutUint16(sector[4:6], uint16(len(n.segDir)))
	off := 6
	for id, e := range n.segDir {
		if off+16 > disk.SectorSize {
			return errors.New("core: segment directory full")
		}
		binary.BigEndian.PutUint32(sector[off:off+4], uint32(id))
		binary.BigEndian.PutUint64(sector[off+4:off+12], uint64(e.base))
		binary.BigEndian.PutUint32(sector[off+12:off+16], e.pages)
		off += 16
	}
	return n.d.Write(n.segDirSector(), sector[:], 0)
}

// EnsureSegment creates or re-maps a recoverable segment of the given size
// in pages. Segment placement is persistent: after a crash, the same call
// re-maps the same disk region (the data server's permanent data).
func (n *Node) EnsureSegment(id types.SegmentID, pages uint32) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if e, ok := n.segDir[id]; ok {
		if e.pages != pages {
			return fmt.Errorf("%w: segment %d has %d pages, requested %d", ErrSegmentSize, id, e.pages, pages)
		}
		// The segment may still be kernel-mapped from a former attachment:
		// DetachServer withdraws the server but deliberately leaves its
		// segment mapped (the data stays on disk). Re-attaching — a shard
		// migrating back to a former home, or a destination re-prepared
		// after an aborted import — reuses the live mapping; the size was
		// just checked against the directory, which AddSegment enforced
		// when the mapping was first made.
		if _, err := n.Kernel.SegmentPages(id); err == nil {
			return nil
		}
		return n.Kernel.AddSegment(id, e.base, pages)
	}
	geom := n.d.Geometry()
	if int64(n.nextFree)+int64(pages) > geom.Sectors {
		return fmt.Errorf("%w: need %d pages at %d, disk has %d sectors", ErrSegmentSpace, pages, n.nextFree, geom.Sectors)
	}
	e := segEntry{base: n.nextFree, pages: pages}
	n.segDir[id] = e
	n.nextFree += disk.Addr(pages)
	if err := n.storeSegDir(); err != nil {
		return err
	}
	return n.Kernel.AddSegment(id, e.base, pages)
}

// --- data server registry ----------------------------------------------------

// NewServer creates a data server on this node with its recoverable
// segment ensured, registers it for request routing and crash recovery,
// and returns it. The caller registers operations and starts
// AcceptRequests.
func (n *Node) NewServer(id types.ServerID, seg types.SegmentID, pages uint32, compat lock.Compat, timeout time.Duration) (*srvlib.Server, error) {
	if err := n.EnsureSegment(seg, pages); err != nil {
		return nil, err
	}
	if timeout == 0 {
		timeout = n.cfg.LockTimeout
	}
	s := srvlib.New(srvlib.Config{
		ID:          id,
		Kernel:      n.Kernel,
		RM:          n.RM,
		TM:          n.TM,
		Rec:         n.rec,
		Segment:     seg,
		LockCompat:  compat,
		LockTimeout: timeout,
		Trace:       n.tr,
	})
	s.RecoverServer()
	n.mu.Lock()
	n.servers[id] = s
	n.mu.Unlock()
	// Advertise the server in the Name Server under its own identifier:
	// shard routing resolves "family#i" to a port through exactly this
	// registration, and every server re-advertises on reboot (§3.1.3).
	n.NS.Register(string(id), "data-server", id, types.ObjectID{Segment: seg})
	return s, nil
}

// Server returns the registered data server, if any.
func (n *Node) Server(id types.ServerID) (*srvlib.Server, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	s, ok := n.servers[id]
	return s, ok
}

// Recover performs crash recovery: the Recovery Manager scans the log,
// redoes winners, undoes losers, and resolves in-doubt transactions with
// their coordinators (§3.2.2). It must run after every data server has
// been attached (their undo/redo code must be registered) and before the
// node serves new work. On a fresh disk it is a no-op.
func (n *Node) Recover() (*recovery.RestartReport, error) {
	report, err := n.RM.Restart(n.TM)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	hooks := append([]func() error(nil), n.afterRecov...)
	n.mu.Unlock()
	for _, fn := range hooks {
		if err := fn(); err != nil {
			return nil, err
		}
	}
	n.mu.Lock()
	n.recovering = false
	n.mu.Unlock()
	return report, nil
}

// AfterRecover registers fn to run once crash recovery completes; data
// servers use it to rebuild volatile state from recovered permanent state
// (the weak queue's tail pointer is the canonical example, §4.2).
func (n *Node) AfterRecover(fn func() error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.afterRecov = append(n.afterRecov, fn)
}

// --- operation invocation -------------------------------------------------------

// Call invokes op on a local data server within tid, charging one Data
// Server Call primitive covering the request/response exchange.
func (n *Node) Call(server types.ServerID, op string, tid types.TransID, body []byte) ([]byte, error) {
	n.mu.Lock()
	s, ok := n.servers[server]
	crashed, recovering := n.crashed, n.recovering
	n.mu.Unlock()
	if crashed {
		return nil, ErrCrashed
	}
	if recovering {
		return nil, fmt.Errorf("%w: %s", ErrRecovering, n.id)
	}
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoServer, server)
	}
	n.rec.Record(simclock.DataServerCall)
	// Synchronous fast path: enter the server's monitor directly. The
	// request/response pair is still one Data Server Call primitive; the
	// reply port and serving goroutine of the message path are pure
	// implementation overhead for a same-node call.
	return s.Invoke(op, tid, body)
}

// CallRemote invokes op on a data server at another node within tid,
// using session communication through the Communication Managers
// (§2.1.2). One Inter-Node Data Server Call primitive is charged.
func (n *Node) CallRemote(nodeID types.NodeID, server types.ServerID, op string, tid types.TransID, body []byte) ([]byte, error) {
	if nodeID == n.id {
		return n.Call(server, op, tid, body)
	}
	if n.CM == nil {
		return nil, fmt.Errorf("core: node %s has no network", n.id)
	}
	payload := encodeRemoteCall(server, op, body)
	return n.CM.Call(nodeID, DataServerService, tid, payload)
}

// Invoke routes a call through a name-server binding.
func (n *Node) Invoke(b nameserver.Binding, op string, tid types.TransID, body []byte) ([]byte, error) {
	return n.CallRemote(b.Node, b.Server, op, tid, body)
}

// handleRemoteCall is the session-service handler for inbound remote data
// server calls; it dispatches into the local server's coroutine machinery.
func (n *Node) handleRemoteCall(from types.NodeID, tid types.TransID, payload []byte) ([]byte, error) {
	server, op, body, err := decodeRemoteCall(payload)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	s, ok := n.servers[server]
	crashed, recovering := n.crashed, n.recovering
	n.mu.Unlock()
	if crashed {
		return nil, ErrCrashed
	}
	if recovering {
		return nil, fmt.Errorf("%w: %s", ErrRecovering, n.id)
	}
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoServer, server)
	}
	return s.Invoke(op, tid, body)
}

// handleTraceControl serves tabsctl's trace/metrics queries. The payload
// is a bare command string; replies are JSON (trace.Export).
func (n *Node) handleTraceControl(_ types.NodeID, _ types.TransID, payload []byte) ([]byte, error) {
	if n.tr == nil {
		return nil, errors.New("core: tracing disabled on this node")
	}
	switch cmd := string(payload); cmd {
	case "metrics":
		return trace.MarshalExports([]trace.Export{n.tr.Export(false)})
	case "trace":
		return trace.MarshalExports([]trace.Export{n.tr.Export(true)})
	case "reset":
		n.tr.Reset()
		return []byte("ok"), nil
	default:
		return nil, fmt.Errorf("core: unknown trace command %q", cmd)
	}
}

// PlacementReport is the placectl reply: the node's installed placement
// maps plus its Name Server table sizes.
type PlacementReport struct {
	Node       types.NodeID            `json:"node"`
	Placements []*nameserver.Placement `json:"placements,omitempty"`
	Stats      nameserver.Stats        `json:"stats"`
}

// handlePlacementControl serves tabsctl's placement dumps.
func (n *Node) handlePlacementControl(_ types.NodeID, _ types.TransID, payload []byte) ([]byte, error) {
	switch cmd := string(payload); cmd {
	case "placement", "":
		rep := PlacementReport{
			Node:       n.id,
			Placements: n.NS.Placements(),
			Stats:      n.NS.StatsSnapshot(),
		}
		sort.Slice(rep.Placements, func(i, j int) bool {
			return rep.Placements[i].Family < rep.Placements[j].Family
		})
		return json.Marshal(rep)
	default:
		return nil, fmt.Errorf("core: unknown placement command %q", cmd)
	}
}

// ACPReport is the acpctl reply: the node's commit-protocol configuration,
// the acceptor's per-transaction Paxos Commit instances, and the top-level
// transactions the Transaction Manager still holds in doubt.
type ACPReport struct {
	Node      types.NodeID        `json:"node"`
	Protocol  string              `json:"protocol"`
	Acceptors []types.NodeID      `json:"acceptors,omitempty"`
	Instances []acp.InstanceState `json:"instances,omitempty"`
	InDoubt   []types.TransID     `json:"in_doubt,omitempty"`
}

// handleACPControl serves tabsctl's commit-protocol dumps.
func (n *Node) handleACPControl(_ types.NodeID, _ types.TransID, payload []byte) ([]byte, error) {
	switch cmd := string(payload); cmd {
	case "acp", "":
		proto := n.cfg.CommitProtocol
		if proto == "" {
			proto = Protocol2PC
		}
		rep := ACPReport{
			Node:      n.id,
			Protocol:  proto,
			Acceptors: n.ACP.Acceptors(),
			Instances: n.ACP.Snapshot(),
			InDoubt:   n.TM.InDoubt(),
		}
		return json.Marshal(rep)
	default:
		return nil, fmt.Errorf("core: unknown acp command %q", cmd)
	}
}

func encodeRemoteCall(server types.ServerID, op string, body []byte) []byte {
	b := make([]byte, 0, 4+len(server)+len(op)+len(body))
	b = binary.BigEndian.AppendUint16(b, uint16(len(server)))
	b = append(b, server...)
	b = binary.BigEndian.AppendUint16(b, uint16(len(op)))
	b = append(b, op...)
	return append(b, body...)
}

func decodeRemoteCall(p []byte) (types.ServerID, string, []byte, error) {
	if len(p) < 2 {
		return "", "", nil, errors.New("core: short remote call")
	}
	ns := int(binary.BigEndian.Uint16(p))
	p = p[2:]
	if len(p) < ns+2 {
		return "", "", nil, errors.New("core: short remote call server")
	}
	server := types.ServerID(p[:ns])
	p = p[ns:]
	no := int(binary.BigEndian.Uint16(p))
	p = p[2:]
	if len(p) < no {
		return "", "", nil, errors.New("core: short remote call op")
	}
	return server, string(p[:no]), p[no:], nil
}

// Crash discards every piece of volatile state the node holds: buffer
// pool, lock tables, live transactions, coroutines, sessions. The disk —
// log and recoverable segments — survives. The node is unusable
// afterwards; build a new Node over the same disk and Recover.
func (n *Node) Crash() {
	n.mu.Lock()
	if n.crashed {
		n.mu.Unlock()
		return
	}
	n.crashed = true
	servers := make([]*srvlib.Server, 0, len(n.servers))
	for _, s := range n.servers {
		servers = append(servers, s)
	}
	n.mu.Unlock()
	for _, s := range servers {
		s.Close()
	}
	if n.CM != nil {
		_ = n.CM.Close()
	}
	n.TM.Crash()
	n.ACP.Crash()
	n.RM.Crash()
	n.Kernel.Crash()
}

// Shutdown cleanly stops the node: dirty pages are flushed, a checkpoint
// is taken, and the network endpoint closes.
func (n *Node) Shutdown() error {
	if err := n.Kernel.FlushAll(); err != nil {
		return err
	}
	if err := n.RM.Checkpoint(); err != nil {
		return err
	}
	n.Crash()
	return nil
}
