package core_test

import (
	"errors"
	"strings"
	"testing"

	"tabs/internal/core"
	"tabs/internal/disk"
	"tabs/internal/servers/intarray"
	"tabs/internal/types"
)

func TestEnsureSegmentSizeMismatch(t *testing.T) {
	c, n, _ := arrayNode(t, 100)
	defer c.Shutdown()
	// Segment 1 exists with the array's size; re-attaching with another
	// size must be refused — the permanent data's layout is immutable.
	err := n.EnsureSegment(1, 99999)
	if !errors.Is(err, core.ErrSegmentSize) {
		t.Errorf("got %v", err)
	}
	// Same size re-maps... the kernel already has it, which is the
	// double-attach error path.
	if err := n.EnsureSegment(1, 2); !errors.Is(err, core.ErrSegmentSize) {
		t.Logf("re-ensure with same id: %v", err)
	}
}

func TestSegmentSpaceExhaustion(t *testing.T) {
	opts := core.DefaultClusterOptions()
	opts.DiskSectors = 300
	opts.LogSectors = 64
	c, err := core.NewCluster(opts, "tiny")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	n := c.Node("tiny")
	if err := n.EnsureSegment(1, 200); err != nil {
		t.Fatalf("first segment: %v", err)
	}
	if err := n.EnsureSegment(2, 200); !errors.Is(err, core.ErrSegmentSpace) {
		t.Errorf("overcommit accepted: %v", err)
	}
}

func TestCallUnknownServer(t *testing.T) {
	c, n, _ := arrayNode(t, 10)
	defer c.Shutdown()
	_, err := n.Call("ghost", "Op", types.NilTransID, nil)
	if !errors.Is(err, core.ErrNoServer) {
		t.Errorf("got %v", err)
	}
}

func TestCallRemoteUnknownServer(t *testing.T) {
	c, err := core.NewCluster(core.DefaultClusterOptions(), "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	na := c.Node("a")
	if _, err := na.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Node("b").Recover(); err != nil {
		t.Fatal(err)
	}
	_, err = na.CallRemote("b", "ghost", "Op", types.NilTransID, nil)
	if err == nil || !strings.Contains(err.Error(), "no such data server") {
		t.Errorf("got %v", err)
	}
}

func TestCallAfterCrashFails(t *testing.T) {
	c, n, _ := arrayNode(t, 10)
	defer c.Shutdown()
	n.Crash()
	_, err := n.Call("array", intarray.OpGet, types.NilTransID, []byte{0, 0, 0, 1})
	if !errors.Is(err, core.ErrCrashed) {
		t.Errorf("got %v", err)
	}
}

func TestNodeNeedsDisk(t *testing.T) {
	if _, err := core.NewNode(core.Config{ID: "x"}); err == nil {
		t.Error("node without a disk accepted")
	}
}

func TestDuplicateNodeName(t *testing.T) {
	c, err := core.NewCluster(core.DefaultClusterOptions(), "dup")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if _, err := c.AddNode("dup"); err == nil {
		t.Error("duplicate node name accepted")
	}
}

func TestShutdownFlushesAndCheckpoints(t *testing.T) {
	c, n, arr := arrayNode(t, 10)
	if err := n.App.Run(func(tid types.TransID) error {
		return arr.Set(tid, 1, 5)
	}); err != nil {
		t.Fatal(err)
	}
	ckptBefore := n.Log.CheckpointLSN()
	d := n.Disk()
	if err := n.Shutdown(); err != nil {
		t.Fatal(err)
	}
	// A clean shutdown leaves the segment current on disk (no recovery
	// work needed): read the raw sector.
	buf := make([]byte, disk.SectorSize)
	if _, err := d.Read(2049, buf); err != nil { // first segment sector
		t.Fatal(err)
	}
	var v int64
	for i := 0; i < 8; i++ {
		v = v<<8 | int64(buf[i])
	}
	if v != 5 {
		t.Errorf("segment sector holds %d, want 5 (flush on shutdown)", v)
	}
	// And the checkpoint advanced.
	lg := n.Log
	if lg.CheckpointLSN() == ckptBefore {
		t.Error("no checkpoint on clean shutdown")
	}
	c.Shutdown()
}
