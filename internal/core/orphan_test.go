package core_test

import (
	"testing"
	"time"

	"tabs/internal/core"
	"tabs/internal/servers/intarray"
	"tabs/internal/types"
)

// TestOrphanSweeperSparesLiveTransactions: a remote-rooted transaction
// whose coordinator is alive but merely slow (the user is thinking) must
// NOT be aborted by the participant's orphan sweeper, no matter how long
// it idles — the coordinator answers "in progress" to status queries.
func TestOrphanSweeperSparesLiveTransactions(t *testing.T) {
	c, err := core.NewCluster(core.DefaultClusterOptions(), "coord", "part")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	nc, np := c.Node("coord"), c.Node("part")
	for _, nn := range []*core.Node{nc, np} {
		if _, err := intarray.Attach(nn, "arr", 1, 10, time.Second); err != nil {
			t.Fatal(err)
		}
		if _, err := nn.Recover(); err != nil {
			t.Fatal(err)
		}
	}
	// Aggressive sweeping on the participant.
	np.TM.Configure(50*time.Millisecond, 2, 150*time.Millisecond)

	remote := intarray.NewClient(nc, "part", "arr")
	tid, err := nc.App.BeginTransaction(types.NilTransID)
	if err != nil {
		t.Fatal(err)
	}
	if err := remote.Set(tid, 1, 7); err != nil {
		t.Fatal(err)
	}

	// Idle well past several sweep intervals: the coordinator is alive,
	// so the participant must keep the transaction.
	//tabslint:ignore sleepsync the idle period itself is under test — the sweeper must NOT kill the transaction while it elapses, so there is no event to synchronize on
	time.Sleep(600 * time.Millisecond)

	// The transaction still commits.
	if ok, err := nc.App.EndTransaction(tid); err != nil || !ok {
		t.Fatalf("idle transaction was killed: ok=%v err=%v", ok, err)
	}
	fromP := intarray.NewClient(np, "part", "arr")
	if err := np.App.Run(func(tid types.TransID) error {
		v, err := fromP.Get(tid, 1)
		if err != nil {
			return err
		}
		if v != 7 {
			t.Errorf("cell %d, want 7", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
