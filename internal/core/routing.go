package core

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"tabs/internal/comm"
	"tabs/internal/nameserver"
	"tabs/internal/types"
)

// routeResolveWait bounds a routing-path LookUp. In steady state the
// lookup answers from the routing cache and the wait is never consulted;
// it only matters on a cold cache or after an invalidation, when the
// resolution broadcast needs a reply window.
const routeResolveWait = 2 * time.Second

// Router routes keyed operations to the shard data servers of one object
// family. It captures the family's placement map at construction — the
// map is immutable per version, so the shard arithmetic and the shard
// names are precomputed once — and resolves each shard's current port
// through the Name Server's routing cache on every call: placement
// ("which shard, which home") is permanent, bindings ("which port") are
// not (§3.1.3), and the cache makes resolving the latter per-call free.
type Router struct {
	node  *Node
	p     *nameserver.Placement
	names []string // shard -> advertised server name, precomputed
}

// NewRouter builds a router for family from the placement map installed
// in the node's Name Server.
func NewRouter(n *Node, family string) (*Router, error) {
	p := n.NS.PlacementFor(family)
	if p == nil {
		return nil, fmt.Errorf("core: no placement installed for family %q on %s", family, n.id)
	}
	names := make([]string, p.NumShards())
	for i := range names {
		names[i] = string(p.Shards[i].Server)
	}
	return &Router{node: n, p: p, names: names}, nil
}

// Placement returns the captured placement map.
func (r *Router) Placement() *nameserver.Placement { return r.p }

// Shard returns the shard owning key.
func (r *Router) Shard(key uint64) int { return r.p.Shard(key) }

// Call invokes op on the shard owning key, within tid.
func (r *Router) Call(key uint64, op string, tid types.TransID, body []byte) ([]byte, error) {
	return r.CallShard(r.p.Shard(key), op, tid, body)
}

// CallShard invokes op on shard within tid. The shard's port comes from
// the routing cache; if the cached port turns out dead — the call fails
// with a routing-class error rather than an application error — the route
// is invalidated and re-resolved once before the error is surfaced. A
// rebooted shard server re-registers under the same name, so the retry
// lands on the live port.
func (r *Router) CallShard(shard int, op string, tid types.TransID, body []byte) ([]byte, error) {
	if shard < 0 || shard >= len(r.names) {
		return nil, fmt.Errorf("core: shard %d out of range for family %q (%d shards)", shard, r.p.Family, len(r.names))
	}
	name := r.names[shard]
	bindings, err := r.node.NS.LookUp(name, 1, routeResolveWait)
	if err != nil {
		return nil, fmt.Errorf("core: resolving shard %s: %w", name, err)
	}
	out, err := r.node.Invoke(bindings[0], op, tid, body)
	if err == nil || !isRoutingError(err) {
		return out, err
	}
	r.node.NS.Invalidate(name)
	bindings, rerr := r.node.NS.LookUp(name, 1, routeResolveWait)
	if rerr != nil {
		return nil, err // surface the original failure
	}
	return r.node.Invoke(bindings[0], op, tid, body)
}

// isRoutingError reports whether err indicates the route (not the
// request) failed: the server is gone from its node, the node is
// unreachable, or the session timed out. Remote errors cross the wire as
// plain strings, so the local sentinels are matched by substring too.
func isRoutingError(err error) bool {
	if errors.Is(err, ErrNoServer) || errors.Is(err, ErrCrashed) ||
		errors.Is(err, comm.ErrTimeout) || errors.Is(err, comm.ErrUnreachable) ||
		errors.Is(err, comm.ErrClosed) {
		return true
	}
	msg := err.Error()
	return strings.Contains(msg, ErrNoServer.Error()) ||
		strings.Contains(msg, ErrCrashed.Error())
}
