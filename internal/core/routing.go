package core

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"tabs/internal/comm"
	"tabs/internal/nameserver"
	"tabs/internal/types"
)

// routeResolveWait bounds a routing-path LookUp. In steady state the
// lookup answers from the routing cache and the wait is never consulted;
// it only matters on a cold cache or after an invalidation, when the
// resolution broadcast needs a reply window.
const routeResolveWait = 2 * time.Second

// ErrShardMoved reports that the addressed server no longer owns the
// shard: a migration has moved (or is moving) it to another home. It is a
// routing-class error — the route, not the request, failed — so the retry
// machinery invalidates the cached binding, refreshes the placement and
// re-resolves instead of surfacing it as an application failure.
var ErrShardMoved = errors.New("core: shard moved")

// routerState is the shard arithmetic derived from one placement version:
// the map itself plus the precomputed advertised server names. It is
// immutable; the Router swaps whole states through an atomic pointer (the
// same copy-on-write idiom as the Name Server's routing cache).
type routerState struct {
	p     *nameserver.Placement
	names []string // shard -> advertised server name, precomputed
}

func newRouterState(p *nameserver.Placement) *routerState {
	names := make([]string, p.NumShards())
	for i := range names {
		names[i] = string(p.Shards[i].Server)
	}
	return &routerState{p: p, names: names}
}

// Router routes keyed operations to the shard data servers of one object
// family. Placement ("which shard, which home") is re-checked against the
// Name Server on every call — a long-lived router must observe a version
// bump published by a migration, or it would keep sending traffic to the
// old homes forever — while bindings ("which port serves that shard right
// now") resolve through the routing cache as before (§3.1.3). The
// placement check is one atomic load and a pointer compare; the derived
// shard arithmetic is rebuilt only when the installed map actually
// changed, keeping the fast path allocation-free per the allocgate
// budget.
type Router struct {
	node   *Node
	family string
	state  atomic.Pointer[routerState]
}

// NewRouter builds a router for family from the placement map installed
// in the node's Name Server.
func NewRouter(n *Node, family string) (*Router, error) {
	p := n.NS.PlacementFor(family)
	if p == nil {
		return nil, fmt.Errorf("core: no placement installed for family %q on %s", family, n.id)
	}
	r := &Router{node: n, family: family}
	r.state.Store(newRouterState(p))
	return r, nil
}

// current returns the shard arithmetic for the placement now installed in
// the node's Name Server, rebuilding it if a newer map has been published
// since the last call. Rebuilds are idempotent — placements are immutable
// per version — so concurrent rebuilds may race on the Store and any
// winner is correct.
func (r *Router) current() *routerState {
	st := r.state.Load()
	p := r.node.NS.PlacementFor(r.family)
	if p == nil || p == st.p {
		return st
	}
	st = newRouterState(p)
	r.state.Store(st)
	return st
}

// Placement returns the placement map currently in effect.
func (r *Router) Placement() *nameserver.Placement { return r.current().p }

// Shard returns the shard owning key.
func (r *Router) Shard(key uint64) int { return r.current().p.Shard(key) }

// Call invokes op on the shard owning key, within tid.
func (r *Router) Call(key uint64, op string, tid types.TransID, body []byte) ([]byte, error) {
	st := r.current()
	return r.callShard(st, st.p.Shard(key), op, tid, body)
}

// CallShard invokes op on shard within tid.
func (r *Router) CallShard(shard int, op string, tid types.TransID, body []byte) ([]byte, error) {
	return r.callShard(r.current(), shard, op, tid, body)
}

// callShard resolves the shard's port and invokes op. If the call fails
// with a routing-class error — the cached port is dead, the home node
// crashed, or a migration moved the shard — the route is invalidated, the
// placement is refreshed (a version bump may have changed the shard's
// home) and the call is re-resolved once. Both failures are wrapped when
// the retry also fails, so callers can tell "route gone" from "re-resolve
// failed" (errors.Is sees both).
func (r *Router) callShard(st *routerState, shard int, op string, tid types.TransID, body []byte) ([]byte, error) {
	if shard < 0 || shard >= len(st.names) {
		return nil, fmt.Errorf("core: shard %d out of range for family %q (%d shards)", shard, st.p.Family, len(st.names))
	}
	b, err := r.resolve(st, shard, false, "")
	if err != nil {
		return nil, fmt.Errorf("core: resolving shard %s: %w", st.names[shard], err)
	}
	out, err := r.node.Invoke(b, op, tid, body)
	if err == nil || !isRoutingError(err) {
		return out, err
	}
	r.node.NS.Invalidate(st.names[shard])
	redirectStart := time.Now()
	// A shard-moved answer came from the addressed node itself: it knows it
	// no longer owns the shard, so if this node's placement still points
	// there the map is stale and re-addressing the same node is futile —
	// exclude it, letting the re-resolve find the migration destination's
	// registration before the new map arrives.
	var avoid types.NodeID
	if isMovedError(err) {
		avoid = b.Node
	}
	st2 := r.current()
	b2, rerr := r.resolve(st2, shard, true, avoid)
	if rerr != nil {
		return nil, fmt.Errorf("core: shard %s call failed: %w (re-resolve also failed: %w)", st.names[shard], err, rerr)
	}
	out, err2 := r.node.Invoke(b2, op, tid, body)
	if err2 != nil && isRoutingError(err2) {
		return out, fmt.Errorf("core: shard %s retry failed: %w (original failure: %w)", st.names[shard], err2, err)
	}
	// The redirect worked (or failed for non-routing reasons, which still
	// means the route itself was repaired): surface it operationally — the
	// counter and latency histogram are how a migration's client-visible
	// cost shows up in tabsctl metrics and the migration benchmark.
	tr := r.node.Tracer()
	tr.Count("router.redirect", 1)
	tr.ObserveSince("router.redirect.ms", redirectStart)
	return out, err2
}

// resolve returns the binding to address for shard. The placement is
// authoritative for the shard's home node: during a migration's
// dual-registration window (destination attached, source not yet dropped)
// both ends register the shard's name, and only the placement says which
// one owns the traffic — so a looked-up binding is used only when it
// agrees with the home, and otherwise the binding is synthesized from the
// placement itself (server identifiers address their node directly; a
// wrong guess fails with ErrNoServer and retries).
//
// fallback, set on the retry path, permits the opposite escape hatch: if
// the home already failed and the only live registration is elsewhere —
// this node missed a placement broadcast and still points at a dropped
// source — address the live registration rather than fail forever. avoid,
// also retry-path only, names a node that just answered shard-moved for
// this shard: it is skipped at every preference level (except the
// synthesized last resort) because it has disowned the shard itself.
func (r *Router) resolve(st *routerState, shard int, fallback bool, avoid types.NodeID) (nameserver.Binding, error) {
	home := st.p.Shards[shard].Node
	name := st.names[shard]
	bindings, err := r.node.NS.LookUp(name, 1, routeResolveWait)
	if err == nil {
		for _, b := range bindings {
			if b.Node == home && b.Node != avoid {
				return b, nil
			}
		}
		if fallback {
			for _, b := range bindings {
				if b.Node != avoid {
					return b, nil
				}
			}
		}
		// The cached binding points away from the placement's home: stale,
		// or the other end of an in-flight migration. Drop it so the next
		// lookup re-resolves instead of answering from it again.
		r.node.NS.Invalidate(name)
	} else if !errors.Is(err, nameserver.ErrNotFound) {
		return nameserver.Binding{}, err
	}
	return nameserver.Binding{Node: home, Server: st.p.Shards[shard].Server}, nil
}

// isMovedError reports whether err is (or carries across the wire as) a
// shard-moved answer.
func isMovedError(err error) bool {
	return errors.Is(err, ErrShardMoved) || strings.Contains(err.Error(), ErrShardMoved.Error())
}

// isRoutingError reports whether err indicates the route (not the
// request) failed: the server is gone from its node, the node is
// unreachable, the session timed out, or the shard has been migrated
// away. Remote errors cross the wire as plain strings, so the local
// sentinels are matched by substring too.
func isRoutingError(err error) bool {
	if errors.Is(err, ErrNoServer) || errors.Is(err, ErrCrashed) ||
		errors.Is(err, ErrShardMoved) ||
		errors.Is(err, comm.ErrTimeout) || errors.Is(err, comm.ErrUnreachable) ||
		errors.Is(err, comm.ErrClosed) {
		return true
	}
	msg := err.Error()
	return strings.Contains(msg, ErrNoServer.Error()) ||
		strings.Contains(msg, ErrCrashed.Error()) ||
		strings.Contains(msg, ErrShardMoved.Error())
}
