package core_test

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"tabs/internal/core"
	"tabs/internal/servers/intarray"
	"tabs/internal/types"
)

// shardedCluster boots n nodes with a sharded array of totalKeys cells
// and recovers every node.
func shardedCluster(t *testing.T, n int, totalKeys uint64) (*core.Cluster, []types.NodeID) {
	t.Helper()
	names := make([]types.NodeID, n)
	for i := range names {
		names[i] = types.NodeID(fmt.Sprintf("n%d", i+1))
	}
	c, err := core.NewCluster(core.DefaultClusterOptions(), names...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	if _, err := intarray.AttachSharded(c, "array", totalKeys, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		if _, err := c.Node(name).Recover(); err != nil {
			t.Fatalf("recover %s: %v", name, err)
		}
	}
	return c, names
}

func TestShardedReadWrite(t *testing.T) {
	c, names := shardedCluster(t, 3, 300)
	client, err := intarray.NewShardedClient(c.Node(names[0]), "array")
	if err != nil {
		t.Fatal(err)
	}
	if client.NumShards() != 3 {
		t.Fatalf("NumShards = %d", client.NumShards())
	}
	// Keys land on every shard; values round-trip across nodes.
	app := c.Node(names[0]).App
	for key := uint64(0); key < 30; key++ {
		key := key
		if err := app.Run(func(tid types.TransID) error {
			return client.Set(tid, key, int64(key*7))
		}); err != nil {
			t.Fatalf("set %d: %v", key, err)
		}
	}
	if err := app.Run(func(tid types.TransID) error {
		for key := uint64(0); key < 30; key++ {
			v, err := client.Get(tid, key)
			if err != nil {
				return err
			}
			if v != int64(key*7) {
				t.Errorf("key %d = %d, want %d", key, v, key*7)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestMultiShardCommitTreeTouchedOnly is the shard-aware commit tree
// check: a transaction touching k of N shards must have exactly the k-1
// remote shard homes as 2PC children — never the untouched shards.
func TestMultiShardCommitTreeTouchedOnly(t *testing.T) {
	c, names := shardedCluster(t, 4, 400)
	coord := c.Node(names[0])
	client, err := intarray.NewShardedClient(coord, "array")
	if err != nil {
		t.Fatal(err)
	}

	check := func(keys []uint64, wantChildren []types.NodeID) {
		t.Helper()
		var children []types.NodeID
		if err := coord.App.Run(func(tid types.TransID) error {
			for _, k := range keys {
				if err := client.Set(tid, k, int64(k)); err != nil {
					return err
				}
			}
			// Capture the commit tree while the transaction is live; commit
			// tears it down.
			_, _, children = coord.CM.Tree(tid)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		sort.Slice(children, func(i, j int) bool { return children[i] < children[j] })
		if len(children) != len(wantChildren) {
			t.Fatalf("keys %v: children %v, want %v", keys, children, wantChildren)
		}
		for i := range children {
			if children[i] != wantChildren[i] {
				t.Fatalf("keys %v: children %v, want %v", keys, children, wantChildren)
			}
		}
	}

	// Placement is round-robin over sorted names: shard i on names[i],
	// key k on shard k%4. A single-shard transaction on the coordinator's
	// own shard (keys ≡ 0 mod 4) has no children at all.
	check([]uint64{0, 4, 8}, nil)
	// Touching shards 0 and 2 adds exactly n3.
	check([]uint64{0, 2}, []types.NodeID{"n3"})
	// Touching shards 1..3 adds n2..n4; shard 0 untouched.
	check([]uint64{1, 2, 3}, []types.NodeID{"n2", "n3", "n4"})
}

// TestShardedCrossShardAtomicity crashes nothing but proves a cross-shard
// abort undoes every shard's write.
func TestShardedCrossShardAtomicity(t *testing.T) {
	c, names := shardedCluster(t, 2, 100)
	coord := c.Node(names[0])
	client, err := intarray.NewShardedClient(coord, "array")
	if err != nil {
		t.Fatal(err)
	}
	// Seed both shards.
	if err := coord.App.Run(func(tid types.TransID) error {
		if err := client.Set(tid, 10, 100); err != nil {
			return err
		}
		return client.Set(tid, 11, 200)
	}); err != nil {
		t.Fatal(err)
	}
	// A failing transaction that wrote both shards must leave no trace.
	sentinel := fmt.Errorf("application abort")
	err = coord.App.Run(func(tid types.TransID) error {
		if err := client.Set(tid, 10, -1); err != nil {
			return err
		}
		if err := client.Set(tid, 11, -2); err != nil {
			return err
		}
		return sentinel
	})
	if err == nil {
		t.Fatal("aborting transaction committed")
	}
	if err := coord.App.Run(func(tid types.TransID) error {
		for key, want := range map[uint64]int64{10: 100, 11: 200} {
			v, err := client.Get(tid, key)
			if err != nil {
				return err
			}
			if v != want {
				t.Errorf("key %d = %d after abort, want %d", key, v, want)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestShardedRoutingSurvivesReboot kills one shard's home, reboots it,
// and proves the router's invalidate-and-retry path re-resolves instead
// of failing forever on the stale cached port.
func TestShardedRoutingSurvivesReboot(t *testing.T) {
	c, names := shardedCluster(t, 2, 100)
	coord := c.Node(names[0])
	client, err := intarray.NewShardedClient(coord, "array")
	if err != nil {
		t.Fatal(err)
	}
	// Warm the route to shard 1 (home n2).
	if err := coord.App.Run(func(tid types.TransID) error {
		return client.Set(tid, 1, 42)
	}); err != nil {
		t.Fatal(err)
	}

	c.Crash("n2")
	n2, err := c.Reboot("n2")
	if err != nil {
		t.Fatal(err)
	}
	// Reboot re-attaches the shard server (same segment; AttachSharded's
	// per-shard sizing for 100 keys over 2 shards is 50 cells) and
	// re-registers it, then recovers.
	if _, err := intarray.Attach(n2, "array#1", intarray.ShardSegmentBase+1, 50, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := n2.Recover(); err != nil {
		t.Fatal(err)
	}

	// The coordinator's cached route may point at the dead incarnation;
	// the first call invalidates and retries against the re-registered
	// port. The committed value survived the crash.
	if err := coord.App.Run(func(tid types.TransID) error {
		v, err := client.Get(tid, 1)
		if err != nil {
			return err
		}
		if v != 42 {
			t.Errorf("key 1 = %d after reboot, want 42", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
