package core_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"tabs/internal/core"
	"tabs/internal/servers/accum"
	"tabs/internal/servers/intarray"
	"tabs/internal/types"
)

// TestCrashTortureValueLogging runs a randomized workload of committing
// and aborting transactions against the integer array, crashing the node
// at random points (sometimes after forcing dirty pages out, sometimes
// not), and checks after every recovery that the array matches a model
// holding exactly the committed state. This is the whole value-logging
// stack — locking, WAL, buffer management, abort, restart — under one
// adversarial schedule.
func TestCrashTortureValueLogging(t *testing.T) {
	const cells = 20
	rng := rand.New(rand.NewSource(20260706))
	model := make([]int64, cells+1)

	c, err := core.NewCluster(core.DefaultClusterOptions(), "n1")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	n := c.Node("n1")
	attach := func(node *core.Node) *intarray.Client {
		if _, err := intarray.Attach(node, "array", 1, cells, time.Second); err != nil {
			t.Fatal(err)
		}
		if _, err := node.Recover(); err != nil {
			t.Fatal(err)
		}
		return intarray.NewClient(node, "n1", "array")
	}
	arr := attach(n)

	verify := func(round int) {
		t.Helper()
		if err := n.App.Run(func(tid types.TransID) error {
			for cell := uint32(1); cell <= cells; cell++ {
				v, err := arr.Get(tid, cell)
				if err != nil {
					return err
				}
				if v != model[cell] {
					t.Errorf("round %d: cell %d = %d, model %d", round, cell, v, model[cell])
				}
			}
			return nil
		}); err != nil {
			t.Fatalf("round %d verify: %v", round, err)
		}
	}

	for round := 0; round < 30; round++ {
		// A burst of transactions, each updating 1-3 cells; a third of
		// them abort.
		for txn := 0; txn < 5; txn++ {
			updates := map[uint32]int64{}
			for k := 0; k < 1+rng.Intn(3); k++ {
				updates[uint32(1+rng.Intn(cells))] = rng.Int63n(1000)
			}
			abort := rng.Intn(3) == 0
			err := n.App.Run(func(tid types.TransID) error {
				for cell, val := range updates {
					if err := arr.Set(tid, cell, val); err != nil {
						return err
					}
				}
				if abort {
					return fmt.Errorf("induced abort")
				}
				return nil
			})
			if abort {
				if err == nil {
					t.Fatal("induced abort committed")
				}
			} else {
				if err != nil {
					t.Fatalf("round %d txn: %v", round, err)
				}
				for cell, val := range updates {
					model[cell] = val
				}
			}
		}
		switch rng.Intn(3) {
		case 0:
			// Crash without flushing: losers vanish with the buffer.
		case 1:
			// Steal pages first: losers' effects reach disk and must be
			// undone from the log.
			if err := n.Kernel.FlushAll(); err != nil {
				t.Fatal(err)
			}
		case 2:
			// Checkpoint, then crash: recovery starts from the
			// checkpoint.
			if err := n.RM.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		c.Crash("n1")
		n2, err := c.Reboot("n1")
		if err != nil {
			t.Fatal(err)
		}
		n = n2
		arr = attach(n)
		verify(round)
	}
}

// TestCrashTortureOperationLogging is the same adversarial schedule over
// the accumulator server: operation logging, logical undo via CLRs, and
// the page-sequence redo guard across repeated crashes.
func TestCrashTortureOperationLogging(t *testing.T) {
	const cells = 10
	rng := rand.New(rand.NewSource(42424242))
	model := make([]int64, cells+1)

	c, err := core.NewCluster(core.DefaultClusterOptions(), "n1")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	n := c.Node("n1")
	attach := func(node *core.Node) *accum.Client {
		if _, err := accum.Attach(node, "acc", 1, cells, time.Second); err != nil {
			t.Fatal(err)
		}
		if _, err := node.Recover(); err != nil {
			t.Fatal(err)
		}
		return accum.NewClient(node, "n1", "acc")
	}
	acc := attach(n)

	for round := 0; round < 20; round++ {
		for txn := 0; txn < 4; txn++ {
			type upd struct {
				cell  uint32
				delta int64
			}
			var updates []upd
			for k := 0; k < 1+rng.Intn(3); k++ {
				updates = append(updates, upd{uint32(1 + rng.Intn(cells)), rng.Int63n(100) - 50})
			}
			abort := rng.Intn(3) == 0
			err := n.App.Run(func(tid types.TransID) error {
				for _, u := range updates {
					if err := acc.Increment(tid, u.cell, u.delta); err != nil {
						return err
					}
				}
				if abort {
					return fmt.Errorf("induced abort")
				}
				return nil
			})
			if !abort {
				if err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				for _, u := range updates {
					model[u.cell] += u.delta
				}
			}
		}
		if rng.Intn(2) == 0 {
			if err := n.Kernel.FlushAll(); err != nil {
				t.Fatal(err)
			}
		}
		c.Crash("n1")
		n2, err := c.Reboot("n1")
		if err != nil {
			t.Fatal(err)
		}
		n = n2
		acc = attach(n)
		if err := n.App.Run(func(tid types.TransID) error {
			for cell := uint32(1); cell <= cells; cell++ {
				v, err := acc.Get(tid, cell)
				if err != nil {
					return err
				}
				if v != model[cell] {
					t.Errorf("round %d: counter %d = %d, model %d", round, cell, v, model[cell])
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDistributedCrashTorture: distributed write transactions with the
// coordinator's node crashing between transactions; both nodes must agree
// with the model after every recovery.
func TestDistributedCrashTorture(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	const cells = 10
	modelA := make([]int64, cells+1)
	modelB := make([]int64, cells+1)

	c, err := core.NewCluster(core.DefaultClusterOptions(), "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	attach := func(node *core.Node, id types.ServerID) {
		if _, err := intarray.Attach(node, id, 1, cells, time.Second); err != nil {
			t.Fatal(err)
		}
		if _, err := node.Recover(); err != nil {
			t.Fatal(err)
		}
	}
	na, nb := c.Node("a"), c.Node("b")
	attach(na, "arrA")
	attach(nb, "arrB")

	for round := 0; round < 10; round++ {
		cA := intarray.NewClient(na, "a", "arrA")
		cB := intarray.NewClient(na, "b", "arrB")
		for txn := 0; txn < 3; txn++ {
			cellA := uint32(1 + rng.Intn(cells))
			cellB := uint32(1 + rng.Intn(cells))
			valA, valB := rng.Int63n(1000), rng.Int63n(1000)
			err := na.App.Run(func(tid types.TransID) error {
				if err := cA.Set(tid, cellA, valA); err != nil {
					return err
				}
				return cB.Set(tid, cellB, valB)
			})
			if err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			modelA[cellA], modelB[cellB] = valA, valB
		}
		// Crash one of the nodes at random and bring it back.
		if rng.Intn(2) == 0 {
			c.Crash("a")
			na2, err := c.Reboot("a")
			if err != nil {
				t.Fatal(err)
			}
			na = na2
			attach(na, "arrA")
		} else {
			c.Crash("b")
			nb2, err := c.Reboot("b")
			if err != nil {
				t.Fatal(err)
			}
			nb = nb2
			attach(nb, "arrB")
		}
		// Verify both nodes against the model, reading locally.
		verA := intarray.NewClient(na, "a", "arrA")
		if err := na.App.Run(func(tid types.TransID) error {
			for cell := uint32(1); cell <= cells; cell++ {
				v, err := verA.Get(tid, cell)
				if err != nil {
					return err
				}
				if v != modelA[cell] {
					t.Errorf("round %d: a[%d]=%d model %d", round, cell, v, modelA[cell])
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		verB := intarray.NewClient(nb, "b", "arrB")
		if err := nb.App.Run(func(tid types.TransID) error {
			for cell := uint32(1); cell <= cells; cell++ {
				v, err := verB.Get(tid, cell)
				if err != nil {
					return err
				}
				if v != modelB[cell] {
					t.Errorf("round %d: b[%d]=%d model %d", round, cell, v, modelB[cell])
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
}
