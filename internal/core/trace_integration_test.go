package core_test

import (
	"encoding/json"
	"testing"
	"time"

	"tabs/internal/core"
	"tabs/internal/disk"
	"tabs/internal/servers/intarray"
	"tabs/internal/trace"
	"tabs/internal/types"
)

// TestDistributedWriteTransactionTrace runs one distributed write
// transaction across two nodes and checks that the merged trace contains
// the full life cycle — begin, lock acquisition, WAL force, prepare,
// vote, and commit — with coherent timestamps.
func TestDistributedWriteTransactionTrace(t *testing.T) {
	c, err := core.NewCluster(core.DefaultClusterOptions(), "a", "b")
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	defer c.Shutdown()
	na, nb := c.Node("a"), c.Node("b")
	if _, err := intarray.Attach(na, "arrA", 1, 50, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := intarray.Attach(nb, "arrB", 1, 50, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := na.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, err := nb.Recover(); err != nil {
		t.Fatal(err)
	}
	na.Tracer().Reset()
	nb.Tracer().Reset()

	local := intarray.NewClient(na, "a", "arrA")
	remote := intarray.NewClient(na, "b", "arrB")
	if err := na.App.Run(func(tid types.TransID) error {
		if err := local.Set(tid, 1, 10); err != nil {
			return err
		}
		return remote.Set(tid, 1, 20)
	}); err != nil {
		t.Fatalf("distributed write: %v", err)
	}

	merged := append(na.TraceSnapshot(), nb.TraceSnapshot()...)
	want := map[string]bool{
		"txn/begin":    false,
		"lock/acquire": false,
		"wal/force":    false,
		"txn/prepare":  false,
		"txn/vote":     false,
		"txn/commit":   false,
	}
	for _, sp := range merged {
		key := sp.Component + "/" + sp.Name
		if _, ok := want[key]; ok {
			want[key] = true
		}
		if sp.End.Before(sp.Start) {
			t.Errorf("span %s on %s ends (%v) before it starts (%v)", key, sp.Node, sp.End, sp.Start)
		}
	}
	for key, seen := range want {
		if !seen {
			t.Errorf("merged trace is missing a %s span", key)
		}
	}

	// Within one node's snapshot, spans appear in completion order:
	// end timestamps must be monotonic non-decreasing.
	for _, n := range []*core.Node{na, nb} {
		snap := n.TraceSnapshot()
		for i := 1; i < len(snap); i++ {
			if snap[i].End.Before(snap[i-1].End) {
				t.Errorf("node %s: span %d (%s) ended before span %d (%s)",
					n.ID(), i, snap[i].Name, i-1, snap[i-1].Name)
			}
		}
	}

	// The trace-layer metrics registry saw the same activity.
	mets := na.MetricsSnapshot()
	if mv, ok := mets["txn.commits"]; !ok || mv.Value < 1 {
		t.Errorf("coordinator txn.commits = %+v, want >= 1", mets["txn.commits"])
	}
	if mv, ok := mets["wal.force.count"]; !ok || mv.Value < 1 {
		t.Errorf("coordinator wal.force.count = %+v, want >= 1", mets["wal.force.count"])
	}
	if mv, ok := nb.MetricsSnapshot()["comm.session.recv"]; !ok || mv.Value < 1 {
		t.Errorf("participant comm.session.recv = %+v, want >= 1", mv)
	}
}

// TestTraceControlService queries a peer node's trace layer through the
// Communication Manager, the way tabsctl does.
func TestTraceControlService(t *testing.T) {
	c, err := core.NewCluster(core.DefaultClusterOptions(), "a", "b")
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	defer c.Shutdown()
	na, nb := c.Node("a"), c.Node("b")
	if _, err := intarray.Attach(nb, "arrB", 1, 50, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := na.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, err := nb.Recover(); err != nil {
		t.Fatal(err)
	}
	arr := intarray.NewClient(nb, "b", "arrB")
	if err := nb.App.Run(func(tid types.TransID) error {
		return arr.Set(tid, 1, 5)
	}); err != nil {
		t.Fatalf("write on b: %v", err)
	}

	for _, cmd := range []string{"metrics", "trace"} {
		body, err := na.CM.Call("b", core.TraceControlService, types.NilTransID, []byte(cmd))
		if err != nil {
			t.Fatalf("tracectl %q: %v", cmd, err)
		}
		var exports []trace.Export
		if err := json.Unmarshal(body, &exports); err != nil {
			t.Fatalf("tracectl %q reply is not JSON: %v", cmd, err)
		}
		if len(exports) != 1 || exports[0].Node != "b" {
			t.Fatalf("tracectl %q: got %d exports (node %q), want 1 from b", cmd, len(exports), exports[0].Node)
		}
		if len(exports[0].Metrics) == 0 {
			t.Errorf("tracectl %q: no metrics in export", cmd)
		}
		if cmd == "trace" && len(exports[0].Spans) == 0 {
			t.Errorf("tracectl trace: no spans in export")
		}
		if cmd == "metrics" && len(exports[0].Spans) != 0 {
			t.Errorf("tracectl metrics: unexpectedly included %d spans", len(exports[0].Spans))
		}
	}

	if _, err := na.CM.Call("b", core.TraceControlService, types.NilTransID, []byte("reset")); err != nil {
		t.Fatalf("tracectl reset: %v", err)
	}
	if spans := nb.TraceSnapshot(); len(spans) != 0 {
		t.Errorf("after reset: %d spans remain", len(spans))
	}
}

// TestDisableTraceTakesNilFastPath checks the zero-overhead configuration:
// a node built with DisableTrace runs transactions with a nil tracer and
// reports empty snapshots.
func TestDisableTraceTakesNilFastPath(t *testing.T) {
	d := disk.New(disk.DefaultGeometry(4096))
	n, err := core.NewNode(core.Config{ID: "solo", Disk: d, DisableTrace: true})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	if _, err := intarray.Attach(n, "arr", 1, 10, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Recover(); err != nil {
		t.Fatal(err)
	}
	arr := intarray.NewClient(n, "solo", "arr")
	if err := n.App.Run(func(tid types.TransID) error {
		return arr.Set(tid, 2, 7)
	}); err != nil {
		t.Fatalf("write: %v", err)
	}
	if n.Tracer() != nil {
		t.Error("DisableTrace: Tracer() should be nil")
	}
	if spans := n.TraceSnapshot(); len(spans) != 0 {
		t.Errorf("DisableTrace: %d spans captured", len(spans))
	}
	if mets := n.MetricsSnapshot(); len(mets) != 0 {
		t.Errorf("DisableTrace: %d metrics captured", len(mets))
	}
	_ = n.Shutdown()
}
