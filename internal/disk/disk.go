// Package disk simulates the non-volatile storage of a TABS node.
//
// The paper's Perq workstations had a single disk holding both the log and
// all recoverable segments (§3.2.2, §5.1). The single arm matters to the
// evaluation: log forces interleaved with page writes destroy sequential
// locality, which is why the paper reports no sequential-write primitive and
// why its Stable Storage Write costs 79 ms. This package models a sector
// array with per-sector header words (the Perq disk's header space, which
// TABS uses to store the 39-bit page sequence numbers that operation
// logging requires, §3.2.1) and a simple arm-position latency model.
//
// Contents survive Node.Crash (volatile state loss) but the package can
// also inject write failures to exercise recovery edge cases.
package disk

import (
	"errors"
	"fmt"
	"sync"
)

// SectorSize is the number of data bytes in one sector. TABS used 512-byte
// pages, one page per sector (§5.1).
const SectorSize = 512

// Errors returned by disk operations.
var (
	ErrOutOfRange  = errors.New("disk: sector address out of range")
	ErrWriteFailed = errors.New("disk: injected write failure")
	ErrReadFailed  = errors.New("disk: injected read failure")
	ErrBadSize     = errors.New("disk: buffer must be exactly one sector")
)

// FaultAction is a fault hook's verdict on one disk access.
type FaultAction uint8

// Fault hook verdicts.
const (
	// FaultNone lets the access proceed normally.
	FaultNone FaultAction = iota
	// FaultError fails the access without touching the media
	// (ErrWriteFailed / ErrReadFailed).
	FaultError
	// FaultTorn applies to writes only: the first half of the sector's
	// data is written, the rest — and the header word — keep their old
	// contents, and the write reports ErrWriteFailed. This models a
	// sector write interrupted by a power failure; the header's atomic
	// write guarantee (§3.2.1) does not hold for the data it describes,
	// which is exactly the case log-frame checksums and the dirty-page
	// table must cover. On reads FaultTorn behaves like FaultError.
	FaultTorn
)

// TornBytes is how much of the sector a FaultTorn write transfers before
// the simulated interruption.
const TornBytes = SectorSize / 2

// FaultHook decides the fate of one disk access (write reports direction).
// It is called with the disk mutex held and must not call back into the
// disk. The fault-injection layer (internal/fault) supplies deterministic
// seeded hooks; a nil hook (the default) injects nothing.
type FaultHook func(write bool, addr Addr) FaultAction

// Addr is a sector address on a disk.
type Addr int64

// Sector is one disk sector: a page of data plus the header word available
// in the Perq sector header, which TABS uses for the page sequence number
// written atomically with the data (§3.2.1).
type Sector struct {
	Data   [SectorSize]byte
	Header uint64 // 39 significant bits in the original hardware
}

// Geometry describes the latency model of a simulated disk, in virtual
// milliseconds. The defaults approximate the Perq figures behind Table 5-1.
type Geometry struct {
	// Sectors is the capacity of the disk.
	Sectors int64
	// SeekMillis is charged when an access is not sequential with the
	// previous one (arm movement + rotational delay).
	SeekMillis float64
	// TransferMillis is charged for every sector transferred.
	TransferMillis float64
	// SectorsPerTrack controls when sequential access crosses a track
	// boundary and pays a (small) head-switch cost.
	SectorsPerTrack int64
	// HeadSwitchMillis is charged at track boundaries during sequential
	// access.
	HeadSwitchMillis float64
}

// DefaultGeometry returns a latency model tuned so that random paged I/O
// costs ≈32 ms and sequential reads ≈16 ms, matching Table 5-1.
func DefaultGeometry(sectors int64) Geometry {
	return Geometry{
		Sectors:          sectors,
		SeekMillis:       16.5,
		TransferMillis:   15.5,
		SectorsPerTrack:  30,
		HeadSwitchMillis: 2,
	}
}

// Disk is a simulated disk. All methods are safe for concurrent use; the
// latency model serializes accesses through the single arm, as on the
// hardware.
type Disk struct {
	mu       sync.Mutex
	geom     Geometry
	sectors  []Sector
	arm      Addr // current arm position (last sector accessed + 1)
	armValid bool
	// onIO, if set, receives the virtual latency of each access so a
	// clock can be advanced. Set via SetIOHook.
	onIO func(millis float64, sequential bool)
	// failWrites makes the next n writes fail (failure injection).
	failWrites int
	// faultHook, if set, is consulted on every access. Set via SetFaultHook.
	faultHook FaultHook
	reads     int64
	writes    int64
}

// New returns a zeroed disk with the given geometry.
func New(geom Geometry) *Disk {
	if geom.Sectors <= 0 {
		geom.Sectors = 1
	}
	if geom.SectorsPerTrack <= 0 {
		geom.SectorsPerTrack = 30
	}
	return &Disk{
		geom:    geom,
		sectors: make([]Sector, geom.Sectors),
	}
}

// Geometry returns the disk's latency model.
func (d *Disk) Geometry() Geometry {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.geom
}

// SetIOHook installs fn to be called with the modelled latency of each
// access. fn must not call back into the disk.
func (d *Disk) SetIOHook(fn func(millis float64, sequential bool)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.onIO = fn
}

// SetFaultHook installs (or, with nil, removes) the per-access fault hook.
// Unlike FailNextWrites — a one-shot test convenience that always takes
// priority — the hook sees every read and write and can fail, tear, or
// pass each one.
func (d *Disk) SetFaultHook(fn FaultHook) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.faultHook = fn
}

// FailNextWrites makes the next n Write/WriteHeader calls return
// ErrWriteFailed without modifying the disk. Used by recovery tests.
func (d *Disk) FailNextWrites(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failWrites = n
}

// Stats returns the cumulative number of sector reads and writes.
func (d *Disk) Stats() (reads, writes int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.reads, d.writes
}

// charge computes and reports the latency of accessing addr, updating the
// arm position. Caller holds d.mu.
func (d *Disk) charge(addr Addr) {
	sequential := d.armValid && addr == d.arm
	var ms float64
	switch {
	case !sequential:
		ms = d.geom.SeekMillis + d.geom.TransferMillis
	case int64(addr)%d.geom.SectorsPerTrack == 0:
		ms = d.geom.HeadSwitchMillis + d.geom.TransferMillis
	default:
		ms = d.geom.TransferMillis
	}
	d.arm = addr + 1
	d.armValid = true
	if d.onIO != nil {
		d.onIO(ms, sequential)
	}
}

func (d *Disk) check(addr Addr) error {
	if addr < 0 || int64(addr) >= d.geom.Sectors {
		return fmt.Errorf("%w: %d (capacity %d)", ErrOutOfRange, addr, d.geom.Sectors)
	}
	return nil
}

// Read copies the sector at addr into buf (which must be SectorSize bytes)
// and returns the sector's header word.
func (d *Disk) Read(addr Addr, buf []byte) (header uint64, err error) {
	if len(buf) != SectorSize {
		return 0, ErrBadSize
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.check(addr); err != nil {
		return 0, err
	}
	if d.faultHook != nil && d.faultHook(false, addr) != FaultNone {
		return 0, fmt.Errorf("%w: sector %d", ErrReadFailed, addr)
	}
	d.charge(addr)
	d.reads++
	copy(buf, d.sectors[addr].Data[:])
	return d.sectors[addr].Header, nil
}

// ReadHeader returns just the header word of the sector at addr, without a
// data transfer charge beyond the access itself. The Recovery Manager uses
// this during operation-logging crash recovery (§3.2.1).
func (d *Disk) ReadHeader(addr Addr) (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.check(addr); err != nil {
		return 0, err
	}
	if d.faultHook != nil && d.faultHook(false, addr) != FaultNone {
		return 0, fmt.Errorf("%w: sector %d", ErrReadFailed, addr)
	}
	d.charge(addr)
	d.reads++
	return d.sectors[addr].Header, nil
}

// Write stores buf (exactly one sector) and the header word at addr. The
// header is written atomically with the data, as the modified Perq
// microcode guaranteed for TABS (§3.2.1).
func (d *Disk) Write(addr Addr, buf []byte, header uint64) error {
	if len(buf) != SectorSize {
		return ErrBadSize
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.check(addr); err != nil {
		return err
	}
	if d.failWrites > 0 {
		d.failWrites--
		return ErrWriteFailed
	}
	if d.faultHook != nil {
		switch d.faultHook(true, addr) {
		case FaultError:
			return fmt.Errorf("%w: sector %d", ErrWriteFailed, addr)
		case FaultTorn:
			// Half the data lands; the header word — written last by the
			// microcode — keeps its old value, so the sector self-describes
			// as stale.
			d.charge(addr)
			d.writes++
			copy(d.sectors[addr].Data[:TornBytes], buf[:TornBytes])
			return fmt.Errorf("%w: sector %d torn after %d bytes", ErrWriteFailed, addr, TornBytes)
		}
	}
	d.charge(addr)
	d.writes++
	copy(d.sectors[addr].Data[:], buf)
	d.sectors[addr].Header = header
	return nil
}

// Snapshot returns a deep copy of the disk contents (for archival-dump
// tests; the paper notes systems infrequently dump non-volatile storage to
// an off-line archive, §2.1.3).
func (d *Disk) Snapshot() []Sector {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Sector, len(d.sectors))
	copy(out, d.sectors)
	return out
}

// Restore replaces the disk contents from a snapshot taken with Snapshot.
func (d *Disk) Restore(snap []Sector) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if int64(len(snap)) != d.geom.Sectors {
		return fmt.Errorf("disk: snapshot has %d sectors, disk has %d", len(snap), d.geom.Sectors)
	}
	copy(d.sectors, snap)
	return nil
}
