package disk

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestReadWriteRoundTrip(t *testing.T) {
	d := New(DefaultGeometry(64))
	data := make([]byte, SectorSize)
	copy(data, "sector payload")
	if err := d.Write(7, data, 0xDEAD); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, SectorSize)
	header, err := d.Read(7, buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Error("data mismatch")
	}
	if header != 0xDEAD {
		t.Errorf("header %x", header)
	}
}

func TestHeaderWrittenAtomicallyWithData(t *testing.T) {
	// The modified Perq microcode wrote the sequence number in the sector
	// header atomically with the data (§3.2.1); Write takes both at once.
	d := New(DefaultGeometry(8))
	if err := d.Write(1, make([]byte, SectorSize), 42); err != nil {
		t.Fatal(err)
	}
	h, err := d.ReadHeader(1)
	if err != nil {
		t.Fatal(err)
	}
	if h != 42 {
		t.Errorf("header %d", h)
	}
}

func TestOutOfRange(t *testing.T) {
	d := New(DefaultGeometry(8))
	buf := make([]byte, SectorSize)
	if _, err := d.Read(8, buf); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("read past end: %v", err)
	}
	if err := d.Write(-1, buf, 0); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("negative write: %v", err)
	}
}

func TestBadBufferSize(t *testing.T) {
	d := New(DefaultGeometry(8))
	if _, err := d.Read(0, make([]byte, 10)); !errors.Is(err, ErrBadSize) {
		t.Errorf("short read buffer: %v", err)
	}
	if err := d.Write(0, make([]byte, SectorSize+1), 0); !errors.Is(err, ErrBadSize) {
		t.Errorf("long write buffer: %v", err)
	}
}

func TestLatencyModel(t *testing.T) {
	d := New(DefaultGeometry(4096))
	var last float64
	var lastSeq bool
	d.SetIOHook(func(ms float64, sequential bool) { last, lastSeq = ms, sequential })
	buf := make([]byte, SectorSize)

	// First access: a seek.
	if _, err := d.Read(100, buf); err != nil {
		t.Fatal(err)
	}
	if lastSeq {
		t.Error("first access reported sequential")
	}
	seekCost := last

	// Next sector: sequential, cheaper.
	if _, err := d.Read(101, buf); err != nil {
		t.Fatal(err)
	}
	if !lastSeq {
		t.Error("consecutive access not sequential")
	}
	if last >= seekCost {
		t.Errorf("sequential %v not cheaper than seek %v", last, seekCost)
	}

	// Jump: a seek again.
	if _, err := d.Read(2000, buf); err != nil {
		t.Fatal(err)
	}
	if lastSeq {
		t.Error("jump reported sequential")
	}
}

func TestDefaultGeometryMatchesTable51(t *testing.T) {
	// Random paged I/O ≈ 32 ms, sequential read ≈ 16 ms (Table 5-1).
	g := DefaultGeometry(1024)
	random := g.SeekMillis + g.TransferMillis
	if math.Abs(random-32) > 1 {
		t.Errorf("random access %v ms, want ≈32", random)
	}
	if math.Abs(g.TransferMillis-16) > 1.5 {
		t.Errorf("sequential read %v ms, want ≈16", g.TransferMillis)
	}
}

func TestFailureInjection(t *testing.T) {
	d := New(DefaultGeometry(8))
	d.FailNextWrites(2)
	buf := make([]byte, SectorSize)
	if err := d.Write(0, buf, 0); !errors.Is(err, ErrWriteFailed) {
		t.Errorf("first injected failure: %v", err)
	}
	if err := d.Write(0, buf, 0); !errors.Is(err, ErrWriteFailed) {
		t.Errorf("second injected failure: %v", err)
	}
	if err := d.Write(0, buf, 0); err != nil {
		t.Errorf("after injection: %v", err)
	}
}

func TestSnapshotRestore(t *testing.T) {
	d := New(DefaultGeometry(16))
	data := make([]byte, SectorSize)
	copy(data, "before")
	if err := d.Write(3, data, 9); err != nil {
		t.Fatal(err)
	}
	snap := d.Snapshot()
	copy(data, "after!")
	if err := d.Write(3, data, 10); err != nil {
		t.Fatal(err)
	}
	if err := d.Restore(snap); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, SectorSize)
	h, err := d.Read(3, buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:6]) != "before" || h != 9 {
		t.Errorf("restore failed: %q header %d", buf[:6], h)
	}
}

func TestPersistRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "image.disk")
	d := New(DefaultGeometry(32))
	data := make([]byte, SectorSize)
	copy(data, "persistent bits")
	if err := d.Write(5, data, 123); err != nil {
		t.Fatal(err)
	}
	if err := d.SaveTo(path); err != nil {
		t.Fatal(err)
	}
	d2 := New(DefaultGeometry(32))
	if err := d2.LoadFrom(path); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, SectorSize)
	h, err := d2.Read(5, buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) || h != 123 {
		t.Error("image round trip mismatch")
	}
}

func TestLoadRejectsWrongGeometry(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "image.disk")
	d := New(DefaultGeometry(32))
	if err := d.SaveTo(path); err != nil {
		t.Fatal(err)
	}
	d2 := New(DefaultGeometry(64))
	if err := d2.LoadFrom(path); err == nil {
		t.Error("mismatched geometry accepted")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "garbage")
	if err := os.WriteFile(path, []byte("not a disk image"), 0o644); err != nil {
		t.Fatal(err)
	}
	d := New(DefaultGeometry(8))
	if err := d.LoadFrom(path); err == nil {
		t.Error("garbage image accepted")
	}
}

func TestStats(t *testing.T) {
	d := New(DefaultGeometry(8))
	buf := make([]byte, SectorSize)
	_, _ = d.Read(0, buf)
	_ = d.Write(1, buf, 0)
	_ = d.Write(2, buf, 0)
	r, w := d.Stats()
	if r != 1 || w != 2 {
		t.Errorf("stats r=%d w=%d", r, w)
	}
}
