package disk

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// This file persists a simulated disk image to a real file, so that
// cmd/tabsnode daemons keep their "non-volatile" storage across OS
// process restarts. The image holds every sector's data and header word.

const imageMagic = 0x7AB5D15C

// SaveTo writes the disk image to path atomically (write then rename).
func (d *Disk) SaveTo(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	snap := d.Snapshot()
	var hdr [16]byte
	binary.BigEndian.PutUint32(hdr[0:4], imageMagic)
	binary.BigEndian.PutUint64(hdr[4:12], uint64(len(snap)))
	if _, err := w.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	for i := range snap {
		if _, err := w.Write(snap[i].Data[:]); err != nil {
			f.Close()
			return err
		}
		var h [8]byte
		binary.BigEndian.PutUint64(h[:], snap[i].Header)
		if _, err := w.Write(h[:]); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFrom restores the disk image from path. The image's sector count
// must match the disk's geometry.
func (d *Disk) LoadFrom(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("disk: reading image header: %w", err)
	}
	if binary.BigEndian.Uint32(hdr[0:4]) != imageMagic {
		return errors.New("disk: not a disk image")
	}
	count := int64(binary.BigEndian.Uint64(hdr[4:12]))
	if count != d.Geometry().Sectors {
		return fmt.Errorf("disk: image has %d sectors, disk has %d", count, d.Geometry().Sectors)
	}
	snap := make([]Sector, count)
	for i := range snap {
		if _, err := io.ReadFull(r, snap[i].Data[:]); err != nil {
			return fmt.Errorf("disk: reading sector %d: %w", i, err)
		}
		var h [8]byte
		if _, err := io.ReadFull(r, h[:]); err != nil {
			return fmt.Errorf("disk: reading header %d: %w", i, err)
		}
		snap[i].Header = binary.BigEndian.Uint64(h[:])
	}
	return d.Restore(snap)
}
