package fault

import (
	"fmt"
	"time"

	"tabs/internal/core"
	"tabs/internal/servers/intarray"
	"tabs/internal/types"
)

// CoordKillOptions parameterize one coordinator-kill-after-prepare run.
type CoordKillOptions struct {
	// CommitProtocol is "2pc" (default) or "paxos".
	CommitProtocol string

	// KillPhase picks where the coordinator dies relative to the commit
	// decision: "decide" (after every participant prepared, before the
	// decision exists anywhere) or "decided" (after the decision is
	// durable — at the acceptors under paxos, in the coordinator's own log
	// under 2pc — but before any participant heard it).
	KillPhase string

	// ResolveWait bounds how long the harness waits for the surviving
	// participants to resolve the in-doubt transaction after the kill.
	ResolveWait time.Duration

	// Logf, when set, receives progress lines (testing.T.Logf shape).
	Logf func(format string, args ...any)
}

// CoordKillReport summarizes what the survivors managed after the
// coordinator was killed, permanently, at the decision point.
type CoordKillReport struct {
	Protocol  string
	KillPhase string
	Resolved  bool   // both participants drained to zero live transactions
	Outcome   string // "committed"/"aborted" when resolved, "" otherwise
	ResolveMs int64  // kill -> drain latency (meaningful when Resolved)
	LiveLeft  int    // live transactions still held across survivors at the end
	LocksHeld bool   // a conflicting write still cannot acquire the doomed txn's locks
}

func (r *CoordKillReport) String() string {
	return fmt.Sprintf("coordkill protocol=%s phase=%s resolved=%v outcome=%q resolve_ms=%d live_left=%d locks_held=%v",
		r.Protocol, r.KillPhase, r.Resolved, r.Outcome, r.ResolveMs, r.LiveLeft, r.LocksHeld)
}

// RunCoordKill stages the exact scenario that makes plain 2PC a blocking
// protocol (and that Paxos Commit exists to fix): a three-node cluster, a
// distributed write transaction whose participants have all prepared, and a
// coordinator that dies at the commit decision point and NEVER comes back.
//
// The coordinator's commit path is parked forever with a decide hook at
// opts.KillPhase, then the node is crashed without reboot. Under 2pc the
// survivors hold their prepared state (and its write locks) in doubt
// indefinitely: presumed abort cannot fire because the dead coordinator
// might hold a commit record. Under paxos the decision lives at the
// acceptor quorum (the two survivors plus the corpse = 2F+1 with F=1), so
// the in-doubt sweeper resolves every participant without the coordinator:
// "decide" resolves to aborted (nothing was ever proposed; recovery
// proposers close the instances with the abort sentinel), "decided"
// resolves to committed (the quorum already accepted the decision).
//
// The returned report says what happened; an error means the harness
// itself malfunctioned or the survivors violated an invariant (disagreeing
// outcomes, committed effects not durable).
func RunCoordKill(opts CoordKillOptions) (*CoordKillReport, error) {
	if opts.KillPhase == "" {
		opts.KillPhase = "decide"
	}
	if opts.KillPhase != "decide" && opts.KillPhase != "decided" {
		return nil, fmt.Errorf("coordkill: unknown kill phase %q", opts.KillPhase)
	}
	if opts.ResolveWait <= 0 {
		opts.ResolveWait = 5 * time.Second
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	proto := opts.CommitProtocol
	if proto == "" {
		proto = core.Protocol2PC
	}
	rep := &CoordKillReport{Protocol: proto, KillPhase: opts.KillPhase}

	copts := core.DefaultClusterOptions()
	copts.LockTimeout = 500 * time.Millisecond
	copts.CommitProtocol = opts.CommitProtocol
	names := []types.NodeID{"c0", "p1", "p2"}
	c, err := core.NewCluster(copts, names...)
	if err != nil {
		return nil, err
	}
	defer c.Shutdown()
	for _, name := range names {
		n := c.Node(name)
		if _, err := intarray.Attach(n, "arr", 1, 8, 500*time.Millisecond); err != nil {
			return nil, fmt.Errorf("coordkill: attach %s: %w", name, err)
		}
		if _, err := n.Recover(); err != nil {
			return nil, fmt.Errorf("coordkill: recover %s: %w", name, err)
		}
		n.TM.Configure(75*time.Millisecond, 4, 300*time.Millisecond)
		n.CM.CallTimeout = 150 * time.Millisecond
		n.CM.Retries = 3
	}
	coord, p1, p2 := c.Node("c0"), c.Node("p1"), c.Node("p2")

	// Park the coordinator's commit path forever at the kill phase. The
	// parked goroutine models the dead process: it holds no TM locks
	// (fireHook runs outside them) and is intentionally never released.
	armed := make(chan types.TransID, 1)
	park := make(chan struct{})
	coord.TM.SetDecideHook(func(tid types.TransID, phase string) {
		if phase != opts.KillPhase {
			return
		}
		select {
		case armed <- tid:
		default:
		}
		<-park
	})

	const doomedVal = int64(4242)
	go func() {
		// Never returns: the decide hook parks this goroutine and the node
		// is then crashed out from under it.
		_ = coord.App.Run(func(tid types.TransID) error {
			for _, tgt := range []types.NodeID{"p1", "p2"} {
				if err := intarray.NewClient(coord, tgt, "arr").Set(tid, 1, doomedVal); err != nil {
					return err
				}
			}
			return nil
		})
	}()

	var doomed types.TransID
	select {
	case doomed = <-armed:
	case <-time.After(10 * time.Second):
		return nil, fmt.Errorf("coordkill: transaction never reached phase %q", opts.KillPhase)
	}
	c.Crash("c0") // permanent: the harness never reboots it
	killed := time.Now()
	opts.Logf("killed coordinator c0 at phase %q, doomed txn %v", opts.KillPhase, doomed)

	// Wait for the survivors to resolve the in-doubt transaction (or not:
	// that is the 2PC blocking window this harness exists to demonstrate).
	deadline := killed.Add(opts.ResolveWait)
	for {
		live := p1.TM.LiveTransactions() + p2.TM.LiveTransactions()
		if live == 0 {
			rep.Resolved = true
			rep.ResolveMs = time.Since(killed).Milliseconds()
			break
		}
		if time.Now().After(deadline) {
			rep.LiveLeft = live
			break
		}
		//tabslint:ignore sleepsync deadline-retry poll: resolution happens on the survivors' sweeper clocks
		time.Sleep(25 * time.Millisecond)
	}

	if rep.Resolved {
		st1, st2 := p1.TM.Status(doomed), p2.TM.Status(doomed)
		if st1 != st2 {
			return rep, fmt.Errorf("coordkill: survivors disagree on %v: p1=%v p2=%v", doomed, st1, st2)
		}
		if st1 != types.StatusCommitted && st1 != types.StatusAborted {
			return rep, fmt.Errorf("coordkill: drained but outcome of %v not terminal: %v", doomed, st1)
		}
		rep.Outcome = st1.String()
		// Durability check: committed effects visible, aborted invisible.
		want := int64(0)
		if st1 == types.StatusCommitted {
			want = doomedVal
		}
		err := p1.App.Run(func(tid types.TransID) error {
			for _, tgt := range []types.NodeID{"p1", "p2"} {
				v, err := intarray.NewClient(p1, tgt, "arr").Get(tid, 1)
				if err != nil {
					return err
				}
				if v != want {
					return fmt.Errorf("%s cell 1 = %d after %s outcome, want %d", tgt, v, rep.Outcome, want)
				}
			}
			return nil
		})
		if err != nil {
			return rep, fmt.Errorf("coordkill: invariant violated: %w", err)
		}
	}

	// Lock probe: a conflicting write from a survivor. While the doomed
	// transaction is unresolved its participants hold write locks on the
	// cell, so the probe times out; once resolved the probe must commit.
	probeErr := p1.App.Run(func(tid types.TransID) error {
		for _, tgt := range []types.NodeID{"p1", "p2"} {
			if err := intarray.NewClient(p1, tgt, "arr").Set(tid, 1, 7); err != nil {
				return err
			}
		}
		return nil
	})
	rep.LocksHeld = probeErr != nil
	if rep.Resolved && probeErr != nil {
		return rep, fmt.Errorf("coordkill: resolved but conflicting write still blocked: %w", probeErr)
	}
	opts.Logf("%s", rep.String())
	return rep, nil
}
