package fault_test

import (
	"testing"
	"time"

	"tabs/internal/core"
	"tabs/internal/fault"
	"tabs/internal/servers/intarray"
	"tabs/internal/types"
)

// TestCoordKillBlockingWindow pins the availability difference between the
// two commit protocols under the same failure: the coordinator of a fully
// prepared distributed transaction is killed at the decision point and
// never comes back.
//
// Under 2pc this is the classic blocking window — presumed abort cannot
// fire for a prepared participant (the dead coordinator may hold a commit
// record), so the survivors stay in doubt and hold the transaction's write
// locks indefinitely. The subtest documents exactly that, and is the
// regression pin for the failure mode Paxos Commit removes.
//
// Under paxos the decision is owned by the acceptor quorum (both survivors
// are acceptors), so every prepared participant resolves with the
// coordinator permanently dead: to aborted when it died before proposing
// ("decide"), to committed when it died after the quorum accepted the
// decision ("decided").
func TestCoordKillBlockingWindow(t *testing.T) {
	t.Run("2pc-blocks", func(t *testing.T) {
		rep, err := fault.RunCoordKill(fault.CoordKillOptions{
			CommitProtocol: "2pc",
			KillPhase:      "decide",
			ResolveWait:    2 * time.Second,
			Logf:           t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Resolved {
			t.Fatalf("2pc resolved an in-doubt transaction with the coordinator dead — presumed abort fired for a prepared participant? %s", rep)
		}
		if rep.LiveLeft == 0 {
			t.Fatalf("2pc survivors hold no live transactions yet never resolved: %s", rep)
		}
		if !rep.LocksHeld {
			t.Fatalf("2pc blocking window must hold the doomed transaction's locks: %s", rep)
		}
	})
	for _, tc := range []struct {
		phase, wantOutcome string
	}{
		{"decide", "aborted"},    // nothing proposed: recovery closes the instances with abort
		{"decided", "committed"}, // quorum accepted the decision: survivors learn commit
	} {
		t.Run("paxos-"+tc.phase, func(t *testing.T) {
			rep, err := fault.RunCoordKill(fault.CoordKillOptions{
				CommitProtocol: "paxos",
				KillPhase:      tc.phase,
				ResolveWait:    10 * time.Second,
				Logf:           t.Logf,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Resolved {
				t.Fatalf("paxos did not resolve with F=1 of 3 acceptors dead: %s", rep)
			}
			if rep.Outcome != tc.wantOutcome {
				t.Fatalf("paxos kill at %q resolved to %q, want %q: %s", tc.phase, rep.Outcome, tc.wantOutcome, rep)
			}
			if rep.LocksHeld {
				t.Fatalf("paxos resolved but the doomed transaction's locks are still held: %s", rep)
			}
			t.Logf("resolved in %dms", rep.ResolveMs)
		})
	}
}

// TestLaggardWriterLearnsCommitAfterPartition pins the Forget-gating rule:
// when a writer is partitioned away for the whole commit fan-out (it
// voted, then missed the accept broadcasts, the decision, and every
// phase-2 retry), the coordinator must NOT tell the acceptors to forget
// the decision — the laggard's only path to the outcome is the quorum. If
// Finished were sent unconditionally, the surviving acceptors would drop
// the decided entry, and the laggard's recovery ballot would conclude
// Abort for a transaction the rest of the cluster committed.
func TestLaggardWriterLearnsCommitAfterPartition(t *testing.T) {
	prof, err := fault.ProfileByName("none")
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.New(1, prof)
	copts := core.DefaultClusterOptions()
	copts.CommitProtocol = "paxos"
	copts.LockTimeout = 500 * time.Millisecond
	copts.Faults = inj
	names := []types.NodeID{"c0", "p1", "p2"}
	c, err := core.NewCluster(copts, names...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	for _, name := range names {
		n := c.Node(name)
		if _, err := intarray.Attach(n, "arr", 1, 8, 500*time.Millisecond); err != nil {
			t.Fatalf("attach %s: %v", name, err)
		}
		if _, err := n.Recover(); err != nil {
			t.Fatalf("recover %s: %v", name, err)
		}
		n.TM.Configure(75*time.Millisecond, 3, 300*time.Millisecond)
	}
	coord, p2 := c.Node("c0"), c.Node("p2")

	// At the decision point — every writer has voted, nothing proposed
	// yet — cut p2 off from the rest of the cluster. It misses the accept
	// round, the decide broadcast, and every phase-2 commit retry.
	coord.TM.SetDecideHook(func(_ types.TransID, phase string) {
		if phase == "decide" {
			inj.Partition("c0", "p2", true)
			inj.Partition("p1", "p2", true)
		}
	})

	const want = int64(7171)
	if err := coord.App.Run(func(tid types.TransID) error {
		for _, tgt := range []types.NodeID{"p1", "p2"} {
			if err := intarray.NewClient(coord, tgt, "arr").Set(tid, 1, want); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatalf("commit with laggard writer: %v", err)
	}

	// The coordinator is done; p2 is prepared in doubt behind the
	// partition. Heal and wait for the sweeper to resolve it against the
	// acceptors — which must still hold the decision.
	inj.HealAll()
	local := intarray.NewClient(p2, "p2", "arr")
	deadline := time.Now().Add(10 * time.Second)
	for {
		var got int64
		err := p2.App.Run(func(tid types.TransID) error {
			v, gerr := local.Get(tid, 1)
			got = v
			return gerr
		})
		if err == nil && got == want && p2.TM.LiveTransactions() == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("laggard never learned the commit: val=%d err=%v live=%d (acceptors told to forget too early?)",
				got, err, p2.TM.LiveTransactions())
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestTorturePaxosSmoke runs the randomized torture workload with the
// replicated commit protocol under the partition profile: in-doubt commits
// (ErrInDoubt from a partitioned quorum) must all resolve and the model
// must hold.
func TestTorturePaxosSmoke(t *testing.T) {
	rep, err := fault.RunTorture(fault.TortureOptions{
		Seed:           20260808,
		Nodes:          3,
		Txns:           40,
		Profile:        "partition",
		CommitProtocol: "paxos",
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep.String())
	if rep.Committed == 0 {
		t.Fatal("no transaction committed; the harness exercised nothing")
	}
}
