package fault_test

import (
	"testing"
	"time"

	"tabs/internal/fault"
)

// TestCoordKillBlockingWindow pins the availability difference between the
// two commit protocols under the same failure: the coordinator of a fully
// prepared distributed transaction is killed at the decision point and
// never comes back.
//
// Under 2pc this is the classic blocking window — presumed abort cannot
// fire for a prepared participant (the dead coordinator may hold a commit
// record), so the survivors stay in doubt and hold the transaction's write
// locks indefinitely. The subtest documents exactly that, and is the
// regression pin for the failure mode Paxos Commit removes.
//
// Under paxos the decision is owned by the acceptor quorum (both survivors
// are acceptors), so every prepared participant resolves with the
// coordinator permanently dead: to aborted when it died before proposing
// ("decide"), to committed when it died after the quorum accepted the
// decision ("decided").
func TestCoordKillBlockingWindow(t *testing.T) {
	t.Run("2pc-blocks", func(t *testing.T) {
		rep, err := fault.RunCoordKill(fault.CoordKillOptions{
			CommitProtocol: "2pc",
			KillPhase:      "decide",
			ResolveWait:    2 * time.Second,
			Logf:           t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Resolved {
			t.Fatalf("2pc resolved an in-doubt transaction with the coordinator dead — presumed abort fired for a prepared participant? %s", rep)
		}
		if rep.LiveLeft == 0 {
			t.Fatalf("2pc survivors hold no live transactions yet never resolved: %s", rep)
		}
		if !rep.LocksHeld {
			t.Fatalf("2pc blocking window must hold the doomed transaction's locks: %s", rep)
		}
	})
	for _, tc := range []struct {
		phase, wantOutcome string
	}{
		{"decide", "aborted"},    // nothing proposed: recovery closes the instances with abort
		{"decided", "committed"}, // quorum accepted the decision: survivors learn commit
	} {
		t.Run("paxos-"+tc.phase, func(t *testing.T) {
			rep, err := fault.RunCoordKill(fault.CoordKillOptions{
				CommitProtocol: "paxos",
				KillPhase:      tc.phase,
				ResolveWait:    10 * time.Second,
				Logf:           t.Logf,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Resolved {
				t.Fatalf("paxos did not resolve with F=1 of 3 acceptors dead: %s", rep)
			}
			if rep.Outcome != tc.wantOutcome {
				t.Fatalf("paxos kill at %q resolved to %q, want %q: %s", tc.phase, rep.Outcome, tc.wantOutcome, rep)
			}
			if rep.LocksHeld {
				t.Fatalf("paxos resolved but the doomed transaction's locks are still held: %s", rep)
			}
			t.Logf("resolved in %dms", rep.ResolveMs)
		})
	}
}

// TestTorturePaxosSmoke runs the randomized torture workload with the
// replicated commit protocol under the partition profile: in-doubt commits
// (ErrInDoubt from a partitioned quorum) must all resolve and the model
// must hold.
func TestTorturePaxosSmoke(t *testing.T) {
	rep, err := fault.RunTorture(fault.TortureOptions{
		Seed:           20260808,
		Nodes:          3,
		Txns:           40,
		Profile:        "partition",
		CommitProtocol: "paxos",
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep.String())
	if rep.Committed == 0 {
		t.Fatal("no transaction committed; the harness exercised nothing")
	}
}
