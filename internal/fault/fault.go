// Package fault is the repo's deterministic fault-injection subsystem.
//
// TABS's claims (paper §3–4) are about surviving crashes, lost messages,
// and media failures; this package turns those adversities into a seeded,
// reproducible *plan*. An Injector owns a set of named injection points
// threaded through the three I/O layers:
//
//	disk.write.fail    write fails, media untouched
//	disk.write.torn    half the sector lands, header stays stale
//	disk.write.crash   write fails and a node crash is requested
//	disk.read.fail     read fails
//	wal.append.crash   record is appended; a crash is requested before
//	                   the harness lets the node run on (exercises loss
//	                   of appended-but-unforced records)
//	wal.force.fail     log force fails before touching disk
//	wal.force.crash    as wal.force.fail, plus a crash request
//	comm.session.drop / dup / delay / reorder
//	comm.datagram.drop / dup / delay / reorder
//
// plus directed network partitions (symmetric or asymmetric) with heal.
//
// Determinism: every decision at a point is a pure function of
// (seed, node, point, per-point sequence number) — a splitmix64-style
// hash, not a shared rand stream — so concurrent goroutines hitting
// different points cannot perturb each other's decision sequences. Two
// runs with the same seed and the same workload schedule see the same
// faults at the same points. Failures therefore reproduce from a printed
// seed; Events() returns the fault trace for the failure report.
//
// Injected faults are visible operationally: every fired point bumps a
// "fault.<point>" counter on the node's tracer (BindTracer), which
// surfaces in `tabsctl metrics` like any other counter.
package fault

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"tabs/internal/disk"
	"tabs/internal/trace"
	"tabs/internal/types"
	"tabs/internal/wal"
)

// ErrInjected marks failures manufactured by the injector.
var ErrInjected = errors.New("fault: injected failure")

// Rule gives one injection point a firing probability and an optional
// budget; Max > 0 caps how many times the point may fire (so a profile
// can guarantee forward progress).
type Rule struct {
	Prob float64
	Max  int
}

// Profile is a named bundle of injection rules plus the schedule knobs the
// torture harness consumes (per-transaction probabilities; the injector
// itself only reads Rules).
type Profile struct {
	Name  string
	Rules map[string]Rule

	// CrashProb is the harness's per-transaction probability of crashing
	// a random node (in addition to crashes the injector requests).
	CrashProb float64
	// PartitionProb is the per-transaction probability of introducing a
	// partition between two random nodes; PartitionTxns is how many
	// transactions it lasts before healing.
	PartitionProb float64
	PartitionTxns int
	// DownTxns bounds how many transactions a crashed node stays down
	// before the harness reboots it (actual value is seeded-random in
	// [1, DownTxns]).
	DownTxns int
}

// ProfileNames lists the built-in profiles.
func ProfileNames() []string {
	return []string{"none", "net", "crash", "partition", "disk", "chaos"}
}

// ProfileByName returns a built-in fault profile:
//
//	none       no faults (the plan is inert until Enable anyway)
//	net        message drop/dup/delay/reorder on both traffic kinds
//	crash      node crashes, including disk- and WAL-requested crash points
//	partition  network partitions plus light datagram loss
//	disk       I/O errors, torn writes, log force failures (budgeted)
//	chaos      all of the above, moderated
func ProfileByName(name string) (Profile, error) {
	switch name {
	case "", "none":
		return Profile{Name: "none"}, nil
	case "net":
		return Profile{
			Name: "net",
			Rules: map[string]Rule{
				"comm.datagram.drop":    {Prob: 0.20},
				"comm.datagram.dup":     {Prob: 0.10},
				"comm.datagram.delay":   {Prob: 0.10},
				"comm.datagram.reorder": {Prob: 0.05},
				"comm.session.drop":     {Prob: 0.10},
				"comm.session.dup":      {Prob: 0.10},
				"comm.session.delay":    {Prob: 0.10},
				"comm.session.reorder":  {Prob: 0.05},
			},
		}, nil
	case "crash":
		return Profile{
			Name: "crash",
			Rules: map[string]Rule{
				"disk.write.crash": {Prob: 0.002, Max: 6},
				"wal.append.crash": {Prob: 0.01, Max: 6},
				"wal.force.crash":  {Prob: 0.01, Max: 4},
			},
			CrashProb: 0.08,
			DownTxns:  4,
		}, nil
	case "partition":
		return Profile{
			Name: "partition",
			Rules: map[string]Rule{
				"comm.datagram.drop": {Prob: 0.10},
				"comm.session.drop":  {Prob: 0.05},
			},
			PartitionProb: 0.10,
			PartitionTxns: 4,
		}, nil
	case "disk":
		return Profile{
			Name: "disk",
			Rules: map[string]Rule{
				"disk.write.fail": {Prob: 0.01, Max: 12},
				"disk.write.torn": {Prob: 0.005, Max: 6},
				"disk.read.fail":  {Prob: 0.002, Max: 4},
				"wal.force.fail":  {Prob: 0.01, Max: 8},
			},
			DownTxns: 3,
		}, nil
	case "chaos":
		return Profile{
			Name: "chaos",
			Rules: map[string]Rule{
				"comm.datagram.drop":    {Prob: 0.12},
				"comm.datagram.dup":     {Prob: 0.08},
				"comm.datagram.delay":   {Prob: 0.08},
				"comm.datagram.reorder": {Prob: 0.04},
				"comm.session.drop":     {Prob: 0.06},
				"comm.session.dup":      {Prob: 0.06},
				"comm.session.delay":    {Prob: 0.06},
				"comm.session.reorder":  {Prob: 0.03},
				"disk.write.fail":       {Prob: 0.008, Max: 10},
				"disk.write.torn":       {Prob: 0.004, Max: 5},
				"disk.read.fail":        {Prob: 0.001, Max: 3},
				"disk.write.crash":      {Prob: 0.001, Max: 3},
				"wal.force.fail":        {Prob: 0.008, Max: 6},
				"wal.append.crash":      {Prob: 0.006, Max: 4},
				"wal.force.crash":       {Prob: 0.006, Max: 3},
			},
			CrashProb:     0.06,
			PartitionProb: 0.06,
			PartitionTxns: 3,
			DownTxns:      4,
		}, nil
	default:
		return Profile{}, fmt.Errorf("fault: unknown profile %q (have %s)", name, strings.Join(ProfileNames(), ", "))
	}
}

// Event is one entry in the fault trace.
type Event struct {
	Seq    int
	Node   types.NodeID
	Point  string
	Peer   types.NodeID // message faults and partitions: the other node
	Detail int64        // disk faults: the sector address
}

// String renders one trace line.
func (e Event) String() string {
	s := fmt.Sprintf("%04d %-4s %s", e.Seq, e.Node, e.Point)
	if e.Peer != "" {
		s += fmt.Sprintf(" peer=%s", e.Peer)
	}
	if e.Detail != 0 {
		s += fmt.Sprintf(" detail=%d", e.Detail)
	}
	return s
}

// maxEvents bounds the retained fault trace (a ring: newest kept).
const maxEvents = 2048

type pointState struct {
	seq   uint64 // decisions taken at this point
	fires int    // decisions that fired
}

type pairKey struct{ from, to types.NodeID }

// Injector is a seeded, deterministic fault plan. It implements
// core.FaultPlan, so handing it to core.ClusterOptions.Faults threads its
// hooks through every node's transport, disk, and log. The zero value is
// unusable; construct with New. All methods are safe for concurrent use.
//
// The injector starts disabled: cluster setup and initial recovery run
// clean, then Enable arms the plan. Disable (plus HealAll) returns the
// world to normal for final verification.
type Injector struct {
	seed    int64
	profile Profile

	mu       sync.Mutex
	enabled  bool
	points   map[string]*pointState
	blocked  map[pairKey]bool
	crashQ   []types.NodeID
	events   []Event
	evHead   int // ring start in events once saturated
	evSeq    int
	tracers  map[types.NodeID]*trace.Tracer
	delaySeq uint64
}

// New returns an Injector for the given seed and profile, disabled.
func New(seed int64, profile Profile) *Injector {
	return &Injector{
		seed:    seed,
		profile: profile,
		points:  make(map[string]*pointState),
		blocked: make(map[pairKey]bool),
		tracers: make(map[types.NodeID]*trace.Tracer),
	}
}

// Seed returns the plan's seed (print it with every failure).
func (in *Injector) Seed() int64 { return in.seed }

// ProfileName returns the active profile's name.
func (in *Injector) ProfileName() string { return in.profile.Name }

// ScheduleKnobs returns the harness-facing schedule parameters.
func (in *Injector) ScheduleKnobs() Profile { return in.profile }

// Enable arms the plan; Disable disarms it (partitions persist until
// healed — they are harness state, not per-access decisions).
func (in *Injector) Enable() { in.setEnabled(true) }

// Disable stops all fault decisions from firing.
func (in *Injector) Disable() { in.setEnabled(false) }

func (in *Injector) setEnabled(v bool) {
	in.mu.Lock()
	in.enabled = v
	in.mu.Unlock()
}

func (in *Injector) isEnabled() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.enabled
}

// --- deterministic decision streams ----------------------------------------

// splitmix64 is the standard 64-bit finalizing mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// hashString is FNV-1a.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// unitFloat maps a hash to [0, 1).
func unitFloat(x uint64) float64 {
	return float64(x>>11) / (1 << 53)
}

// fire takes the next decision for (node, point). It is deterministic in
// (seed, node, point, sequence number at that point): the schedule of
// calls fixes the schedule of faults.
func (in *Injector) fire(node types.NodeID, point string, peer types.NodeID, detail int64) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.enabled {
		return false
	}
	r, ok := in.profile.Rules[point]
	if !ok || r.Prob <= 0 {
		return false
	}
	key := string(node) + "/" + point
	st := in.points[key]
	if st == nil {
		st = &pointState{}
		in.points[key] = st
	}
	seq := st.seq
	st.seq++
	if r.Max > 0 && st.fires >= r.Max {
		return false
	}
	x := splitmix64(uint64(in.seed) ^ hashString(key) ^ (seq * 0x9E3779B97F4A7C15))
	if unitFloat(x) >= r.Prob {
		return false
	}
	st.fires++
	in.recordLocked(Event{Node: node, Point: point, Peer: peer, Detail: detail})
	return true
}

// recordLocked appends a trace event and bumps the node's fault counter.
// Caller holds in.mu.
func (in *Injector) recordLocked(e Event) {
	e.Seq = in.evSeq
	in.evSeq++
	if len(in.events) < maxEvents {
		in.events = append(in.events, e)
	} else {
		in.events[in.evHead] = e
		in.evHead = (in.evHead + 1) % maxEvents
	}
	in.tracers[e.Node].Count("fault."+e.Point, 1)
}

// Events returns the retained fault trace, oldest first.
func (in *Injector) Events() []Event {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Event, 0, len(in.events))
	out = append(out, in.events[in.evHead:]...)
	out = append(out, in.events[:in.evHead]...)
	return out
}

// FormatEvents renders the fault trace for a failure report.
func (in *Injector) FormatEvents() string {
	evs := in.Events()
	var b strings.Builder
	for _, e := range evs {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// --- crash requests ---------------------------------------------------------

// requestCrash queues a crash for node; the torture harness takes requests
// at transaction boundaries and performs the actual Crash/Reboot.
func (in *Injector) requestCrash(node types.NodeID) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, q := range in.crashQ {
		if q == node {
			return
		}
	}
	in.crashQ = append(in.crashQ, node)
	in.recordLocked(Event{Node: node, Point: "crash.requested"})
}

// TakeCrashRequest pops the oldest pending crash request, if any.
func (in *Injector) TakeCrashRequest() (types.NodeID, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if len(in.crashQ) == 0 {
		return "", false
	}
	n := in.crashQ[0]
	in.crashQ = in.crashQ[1:]
	return n, true
}

// --- partitions -------------------------------------------------------------

// Partition blocks traffic from a to b; when symmetric, b to a as well.
// Partitions act even while the injector is disabled — they model harness
// topology, not probabilistic faults — and persist until healed.
func (in *Injector) Partition(a, b types.NodeID, symmetric bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.blocked[pairKey{a, b}] = true
	in.recordLocked(Event{Node: a, Point: "partition.set", Peer: b})
	if symmetric {
		in.blocked[pairKey{b, a}] = true
		in.recordLocked(Event{Node: b, Point: "partition.set", Peer: a})
	}
}

// Heal removes the a→b block (both directions).
func (in *Injector) Heal(a, b types.NodeID) {
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.blocked, pairKey{a, b})
	delete(in.blocked, pairKey{b, a})
	in.recordLocked(Event{Node: a, Point: "partition.heal", Peer: b})
}

// HealAll removes every partition.
func (in *Injector) HealAll() {
	in.mu.Lock()
	defer in.mu.Unlock()
	if len(in.blocked) > 0 {
		in.blocked = make(map[pairKey]bool)
		in.recordLocked(Event{Point: "partition.healall"})
	}
}

// Partitioned reports whether from→to traffic is currently blocked.
func (in *Injector) Partitioned(from, to types.NodeID) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.blocked[pairKey{from, to}]
}

// countPartitionDrop bumps the partition-drop counter for node.
func (in *Injector) countPartitionDrop(node types.NodeID) {
	in.mu.Lock()
	tr := in.tracers[node]
	in.mu.Unlock()
	tr.Count("fault.partition.dropped", 1)
}

// delayFor produces a small deterministic delivery delay (1–12 ms), its
// own seeded stream so delayed deliveries don't perturb fire decisions.
func (in *Injector) delayFor() time.Duration {
	in.mu.Lock()
	seq := in.delaySeq
	in.delaySeq++
	in.mu.Unlock()
	x := splitmix64(uint64(in.seed) ^ 0xDE1A ^ (seq * 0x9E3779B97F4A7C15))
	return time.Duration(1+x%12) * time.Millisecond
}

// --- core.FaultPlan hooks ---------------------------------------------------

// BindTracer points node's fault.* counters at tr (call per node boot;
// core does this automatically when the plan is set on ClusterOptions).
func (in *Injector) BindTracer(node types.NodeID, tr *trace.Tracer) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.tracers[node] = tr
}

// DiskHook returns the disk-layer fault hook for node.
func (in *Injector) DiskHook(node types.NodeID) disk.FaultHook {
	return func(write bool, addr disk.Addr) disk.FaultAction {
		if write {
			if in.fire(node, "disk.write.crash", "", int64(addr)) {
				in.requestCrash(node)
				return disk.FaultError
			}
			if in.fire(node, "disk.write.torn", "", int64(addr)) {
				return disk.FaultTorn
			}
			if in.fire(node, "disk.write.fail", "", int64(addr)) {
				return disk.FaultError
			}
			return disk.FaultNone
		}
		if in.fire(node, "disk.read.fail", "", int64(addr)) {
			return disk.FaultError
		}
		return disk.FaultNone
	}
}

// WALHook returns the log-layer fault hook for node.
func (in *Injector) WALHook(node types.NodeID) wal.FaultHook {
	return func(point string) error {
		switch point {
		case "wal.force":
			if in.fire(node, "wal.force.crash", "", 0) {
				in.requestCrash(node)
				return ErrInjected
			}
			if in.fire(node, "wal.force.fail", "", 0) {
				return ErrInjected
			}
		case "wal.append":
			// The append itself succeeds; the crash request is honored by
			// the harness at the next transaction boundary, losing any
			// records appended but never forced in between.
			if in.fire(node, "wal.append.crash", "", 0) {
				in.requestCrash(node)
			}
		}
		return nil
	}
}
