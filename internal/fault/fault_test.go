package fault

import (
	"testing"

	"tabs/internal/types"
)

// TestProfilesResolve checks every advertised profile parses.
func TestProfilesResolve(t *testing.T) {
	for _, name := range ProfileNames() {
		if _, err := ProfileByName(name); err != nil {
			t.Errorf("profile %s: %v", name, err)
		}
	}
	if _, err := ProfileByName("no-such-profile"); err == nil {
		t.Error("unknown profile accepted")
	}
}

// TestInjectorDeterminism: the decision stream at every point is a pure
// function of (seed, node, point, sequence), so two injectors with the
// same seed agree decision for decision, and interleaving traffic on other
// points cannot perturb a point's stream.
func TestInjectorDeterminism(t *testing.T) {
	prof, err := ProfileByName("chaos")
	if err != nil {
		t.Fatal(err)
	}
	a := New(42, prof)
	b := New(42, prof)
	a.Enable()
	b.Enable()
	points := []string{"comm.datagram.drop", "comm.session.dup", "disk.write.fail", "wal.force.fail"}
	// b sees extra traffic on an unrelated point between every decision;
	// the compared streams must not shift.
	for i := 0; i < 500; i++ {
		p := points[i%len(points)]
		got1 := a.fire("n0", p, "", 0)
		b.fire("n1", "comm.datagram.delay", "", 0)
		got2 := b.fire("n0", p, "", 0)
		if got1 != got2 {
			t.Fatalf("decision %d at %s diverged: %v vs %v", i, p, got1, got2)
		}
	}
	if len(a.Events()) == 0 {
		t.Fatal("no faults fired in 500 decisions; probabilities broken")
	}
}

// TestInjectorBudget: Max caps a point's total fires.
func TestInjectorBudget(t *testing.T) {
	in := New(7, Profile{Name: "t", Rules: map[string]Rule{"disk.write.fail": {Prob: 1.0, Max: 3}}})
	in.Enable()
	fires := 0
	for i := 0; i < 100; i++ {
		if in.fire("n0", "disk.write.fail", "", 0) {
			fires++
		}
	}
	if fires != 3 {
		t.Fatalf("fired %d times, budget was 3", fires)
	}
}

// TestPartitionsActWhileDisabled: partitions are harness topology, not
// probabilistic faults, so they block traffic even before Enable.
func TestPartitionsActWhileDisabled(t *testing.T) {
	in := New(1, Profile{Name: "none"})
	in.Partition("a", "b", false)
	if !in.Partitioned("a", "b") {
		t.Fatal("a->b should be blocked")
	}
	if in.Partitioned("b", "a") {
		t.Fatal("asymmetric partition blocked the reverse direction")
	}
	in.Partition("a", "c", true)
	if !in.Partitioned("c", "a") {
		t.Fatal("symmetric partition should block both directions")
	}
	in.HealAll()
	for _, pair := range [][2]types.NodeID{{"a", "b"}, {"a", "c"}, {"c", "a"}} {
		if in.Partitioned(pair[0], pair[1]) {
			t.Fatalf("%s->%s still blocked after HealAll", pair[0], pair[1])
		}
	}
}

// TestCrashRequestQueue: requests dedup and pop FIFO.
func TestCrashRequestQueue(t *testing.T) {
	in := New(1, Profile{Name: "none"})
	in.requestCrash("a")
	in.requestCrash("b")
	in.requestCrash("a") // dup
	if n, ok := in.TakeCrashRequest(); !ok || n != "a" {
		t.Fatalf("first request = %s, %v; want a", n, ok)
	}
	if n, ok := in.TakeCrashRequest(); !ok || n != "b" {
		t.Fatalf("second request = %s, %v; want b", n, ok)
	}
	if _, ok := in.TakeCrashRequest(); ok {
		t.Fatal("queue should be empty")
	}
}
