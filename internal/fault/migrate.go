package fault

// Online-migration torture: a sharded integer array under continuous
// client load while the harness migrates shards between nodes and
// crash/reboots the data nodes underneath it. Unlike RunTorture, which
// aims probabilistic faults at a static deployment, this harness aims a
// *control-plane* adversity — placement churn — at live traffic, and
// demands the strongest property the migration design claims: no client
// transaction is ever lost or misrouted; at worst it retries.
//
// Topology: one dedicated application node ("app") that hosts every
// worker and never crashes, plus N data nodes ("d0".."dN-1") that host
// the shards and take all the abuse. Keeping the coordinator alive means
// an ambiguous EndTransaction can always be resolved against its own
// Transaction Manager, so the model never guesses an outcome.

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"tabs/internal/core"
	"tabs/internal/nameserver"
	"tabs/internal/servers/intarray"
	"tabs/internal/types"
)

// MigrateOptions parameterize one online-migration torture run.
type MigrateOptions struct {
	Seed       int64
	Nodes      int    // data nodes hosting shards (minimum 2; default 3)
	Workers    int    // concurrent writers on the app node (default 4)
	Migrations int    // shard moves driven under load (default 6)
	Keys       uint64 // global key space of the sharded array (default 64)

	// CrashEvery crash+reboots a random data node after every k-th
	// migration: 0 means the default (every 2nd move), negative disables
	// crashes entirely.
	CrashEvery int

	// Logf, when set, receives progress lines (testing.T.Logf shape).
	Logf func(format string, args ...any)
}

// MigrateReport summarizes a run.
type MigrateReport struct {
	Seed         int64
	Nodes        int
	Workers      int
	Migrations   int
	Committed    int64 // worker transactions committed
	Retried      int64 // worker attempts that failed and were retried
	Redirects    int64 // retries caused by a shard-moved redirect
	Moves        int   // migrations completed
	Crashes      int
	Reboots      int
	FinalVersion uint64 // placement version after the last move
}

func (r *MigrateReport) String() string {
	return fmt.Sprintf("migrate torture seed=%d nodes=%d workers=%d committed=%d retried=%d redirects=%d moves=%d crashes=%d reboots=%d placement=v%d",
		r.Seed, r.Nodes, r.Workers, r.Committed, r.Retried, r.Redirects, r.Moves, r.Crashes, r.Reboots, r.FinalVersion)
}

const migrateFamily = "arr"

// migrateTorture is the run state.
type migrateTorture struct {
	opts   MigrateOptions
	c      *core.Cluster
	app    *core.Node
	data   []types.NodeID
	shards int
	lockTO time.Duration

	// hosted[node] is every shard that ever lived on the node. A reboot
	// must re-attach all of them, not just the currently-homed ones: a
	// shard migrated away leaves its segment (and log records touching
	// it) on the source disk, and recovery needs the segment attached.
	// The placement home check keeps such stale copies from serving.
	hosted map[types.NodeID]map[int]bool

	mu        sync.Mutex // guards the report counters the workers bump
	committed int64
	retried   int64
	redirects int64

	rep MigrateReport
}

// workerResult is one worker's contribution to the model: the last value
// it committed per key (workers own disjoint key sets, so the merge of
// all results is the exact committed state).
type workerResult struct {
	model map[uint64]int64
	err   error
}

// RunMigrate drives concurrent writers against a sharded array while
// migrating shards between data nodes (and crash/rebooting data nodes)
// and verifies the recovery invariants:
//
//  1. committed effects are durable (the array matches the model),
//  2. aborted effects are invisible (ditto — the model ignores aborts),
//  3. no orphaned locks (a post-churn write-all commits),
//  4. every transaction resolves (LiveTransactions drains to zero),
//
// plus the migration-specific acceptance bar: zero worker transactions
// fail outright — every write commits, at worst after redirect retries.
func RunMigrate(opts MigrateOptions) (*MigrateReport, error) {
	if opts.Nodes < 2 {
		opts.Nodes = 3
	}
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	if opts.Migrations <= 0 {
		opts.Migrations = 6
	}
	if opts.Keys == 0 {
		opts.Keys = 64
	}
	if opts.CrashEvery == 0 {
		opts.CrashEvery = 2
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	mt := &migrateTorture{opts: opts, shards: opts.Nodes, lockTO: 500 * time.Millisecond,
		hosted: make(map[types.NodeID]map[int]bool)}
	mt.rep = MigrateReport{Seed: opts.Seed, Nodes: opts.Nodes, Workers: opts.Workers, Migrations: opts.Migrations}
	for i := 0; i < opts.Nodes; i++ {
		mt.data = append(mt.data, types.NodeID(fmt.Sprintf("d%d", i)))
	}
	names := append([]types.NodeID{"app"}, mt.data...)

	copts := core.DefaultClusterOptions()
	copts.LogSectors = 4096
	copts.PoolPages = 128
	copts.LockTimeout = mt.lockTO
	c, err := core.NewCluster(copts, names...)
	if err != nil {
		return nil, err
	}
	mt.c = c
	defer c.Shutdown()
	mt.app = c.Node("app")

	// Shards live on the data nodes only; the app node is pure client.
	p, err := nameserver.ComputePlacement(migrateFamily, 1, mt.shards, mt.data)
	if err != nil {
		return nil, err
	}
	for i, sh := range p.Shards {
		n := c.Node(sh.Node)
		if _, err := intarray.AttachShard(n, migrateFamily, i, intarray.ShardCells(opts.Keys, mt.shards, i), mt.lockTO); err != nil {
			return nil, fmt.Errorf("attaching shard %d on %s: %w", i, sh.Node, err)
		}
		mt.noteHosted(sh.Node, i)
	}
	for _, name := range mt.data {
		intarray.RegisterMigration(c.Node(name), migrateFamily, mt.lockTO)
	}
	for _, name := range names {
		n := c.Node(name)
		if _, err := n.Recover(); err != nil {
			return nil, fmt.Errorf("recovering %s: %w", name, err)
		}
		mt.tune(n)
	}
	if err := c.ApplyPlacement(p); err != nil {
		return nil, err
	}

	// Workers own disjoint key sets (key % Workers == w), so each key has
	// exactly one sequential writer and the merged per-worker models are
	// the committed state with no cross-worker ordering to reconstruct.
	stop := make(chan struct{})
	results := make([]workerResult, opts.Workers)
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w].model, results[w].err = mt.worker(w, stop)
		}(w)
	}

	driveErr := mt.drive(rand.New(rand.NewSource(opts.Seed)))
	close(stop)
	wg.Wait()

	mt.mu.Lock()
	mt.rep.Committed, mt.rep.Retried, mt.rep.Redirects = mt.committed, mt.retried, mt.redirects
	mt.mu.Unlock()
	if fp := c.Placement(migrateFamily); fp != nil {
		mt.rep.FinalVersion = fp.Version
	}

	if driveErr != nil {
		return &mt.rep, mt.fail(driveErr)
	}
	// The acceptance bar: zero failed worker transactions.
	model := make(map[uint64]int64)
	for w, res := range results {
		if res.err != nil {
			return &mt.rep, mt.fail(fmt.Errorf("worker %d lost a transaction: %w", w, res.err))
		}
		for k, v := range res.model {
			model[k] = v
		}
	}
	if err := mt.finalVerify(model); err != nil {
		return &mt.rep, mt.fail(err)
	}
	return &mt.rep, nil
}

// fail wraps a violation with everything needed to reproduce it.
func (mt *migrateTorture) fail(err error) error {
	return fmt.Errorf("migrate torture: %w\nreproduce with seed=%d nodes=%d workers=%d migrations=%d keys=%d crash-every=%d",
		err, mt.opts.Seed, mt.opts.Nodes, mt.opts.Workers, mt.opts.Migrations, mt.opts.Keys, mt.opts.CrashEvery)
}

// tune drops a node's protocol timers to torture scale.
func (mt *migrateTorture) tune(n *core.Node) {
	n.TM.Configure(75*time.Millisecond, 4, 300*time.Millisecond)
	n.CM.CallTimeout = 150 * time.Millisecond
	n.CM.Retries = 3
}

// worker writes its keys round-robin until stopped, recording the last
// committed value per key. Any write that cannot be made to commit is a
// harness failure — migrations must redirect traffic, never lose it.
func (mt *migrateTorture) worker(w int, stop <-chan struct{}) (map[uint64]int64, error) {
	rng := rand.New(rand.NewSource(mt.opts.Seed ^ int64(0x5EED0+w)))
	sc, err := intarray.NewShardedClient(mt.app, migrateFamily)
	if err != nil {
		return nil, err
	}
	var keys []uint64
	for k := uint64(w); k < mt.opts.Keys; k += uint64(mt.opts.Workers) {
		keys = append(keys, k)
	}
	model := make(map[uint64]int64)
	for i := 0; ; i++ {
		select {
		case <-stop:
			return model, nil
		default:
		}
		key := keys[i%len(keys)]
		val := rng.Int63n(1 << 40)
		if err := mt.commitWrite(sc, key, val); err != nil {
			return model, fmt.Errorf("key %d: %w", key, err)
		}
		model[key] = val
	}
}

// commitWrite retries one write until it commits or patience runs out.
// A migration in flight surfaces as lock waits, aborts at commit, or
// shard-moved redirects; a crashed data node as unreachable/timeout
// errors until its reboot — the application-level retry absorbs all of
// them.
func (mt *migrateTorture) commitWrite(sc *intarray.ShardedClient, key uint64, val int64) error {
	deadline := time.Now().Add(15 * time.Second)
	for {
		committed, err := mt.tryWrite(sc, key, val)
		if committed {
			mt.count(&mt.committed)
			return nil
		}
		mt.count(&mt.retried)
		if isMovedErr(err) {
			mt.count(&mt.redirects)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("write never committed: %w", err)
		}
		//tabslint:ignore sleepsync deadline-retry backoff: the conflicting migration or reboot finishes on its own clock, there is no event to wait on
		time.Sleep(10 * time.Millisecond)
	}
}

// tryWrite runs one Set in its own transaction and reports whether it
// committed. When EndTransaction surfaces an error the outcome is taken
// from the coordinator's Transaction Manager — the app node never
// crashes, so it always knows.
func (mt *migrateTorture) tryWrite(sc *intarray.ShardedClient, key uint64, val int64) (bool, error) {
	lib := mt.app.App
	tid, err := lib.BeginTransaction(types.NilTransID)
	if err != nil {
		return false, err
	}
	if err := sc.Set(tid, key, val); err != nil {
		_ = lib.AbortTransaction(tid)
		return false, err
	}
	ok, err := lib.EndTransaction(tid)
	if ok && err == nil {
		return true, nil
	}
	if mt.awaitOutcome(tid) == types.StatusCommitted {
		return true, nil
	}
	if err == nil {
		err = errors.New("transaction aborted at commit")
	}
	return false, err
}

// awaitOutcome polls the coordinator for a transaction's terminal state.
func (mt *migrateTorture) awaitOutcome(tid types.TransID) types.Status {
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := mt.app.TM.Status(tid)
		if st != types.StatusActive && st != types.StatusPrepared {
			return st
		}
		if time.Now().After(deadline) {
			return st
		}
		//tabslint:ignore sleepsync deadline-retry poll: the decision resolves on the sweeper's clock
		time.Sleep(20 * time.Millisecond)
	}
}

func (mt *migrateTorture) count(c *int64) {
	mt.mu.Lock()
	*c++
	mt.mu.Unlock()
}

// isMovedErr reports whether err is (or carries across the wire as) a
// shard-moved redirect.
func isMovedErr(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, core.ErrShardMoved) || strings.Contains(err.Error(), core.ErrShardMoved.Error())
}

// drive performs the migration (and crash) schedule while the workers
// load the cluster.
func (mt *migrateTorture) drive(rng *rand.Rand) error {
	for m := 0; m < mt.opts.Migrations; m++ {
		//tabslint:ignore sleepsync let the workers build load on the pre-move placement between moves
		time.Sleep(120 * time.Millisecond)
		p := mt.c.Placement(migrateFamily)
		if p == nil {
			return errors.New("placement vanished mid-run")
		}
		shard := m % mt.shards
		home := p.Shards[shard].Node
		dest := mt.data[rng.Intn(len(mt.data))]
		for dest == home {
			dest = mt.data[rng.Intn(len(mt.data))]
		}
		// The migration's quiesce races the workers for the shard's cell
		// locks; a loss aborts the migration transaction (never the
		// workers'), so just try again.
		var lastErr error
		moved := false
		for attempt := 0; attempt < 8 && !moved; attempt++ {
			if _, err := mt.c.MigrateShard(migrateFamily, shard, dest); err != nil {
				lastErr = err
				//tabslint:ignore sleepsync retry backoff after losing the quiesce lock race; the workers' transactions finish on their own clock
				time.Sleep(100 * time.Millisecond)
				continue
			}
			moved = true
			mt.noteHosted(dest, shard)
		}
		if !moved {
			return fmt.Errorf("move %d (%s#%d %s->%s) never succeeded: %w", m, migrateFamily, shard, home, dest, lastErr)
		}
		mt.rep.Moves++
		mt.opts.Logf("move %d: %s#%d %s -> %s (placement v%d)", m, migrateFamily, shard, home, dest, mt.c.Placement(migrateFamily).Version)
		if mt.opts.CrashEvery > 0 && (m+1)%mt.opts.CrashEvery == 0 {
			if err := mt.crashRebootOne(rng); err != nil {
				return err
			}
		}
	}
	return nil
}

// crashRebootOne crashes a random data node and reboots it immediately:
// volatile state (locks, seals, unpublished placements) is lost, the
// disk survives, and recovery plus the cluster's placement re-install
// must bring the node back serving exactly its current shards.
func (mt *migrateTorture) crashRebootOne(rng *rand.Rand) error {
	name := mt.data[rng.Intn(len(mt.data))]
	mt.c.Crash(name)
	mt.rep.Crashes++
	mt.opts.Logf("crash %s", name)
	n, err := mt.c.Reboot(name)
	if err != nil {
		return fmt.Errorf("rebooting %s: %w", name, err)
	}
	if err := mt.attachData(n); err != nil {
		return fmt.Errorf("re-attaching %s: %w", name, err)
	}
	if _, err := n.Recover(); err != nil {
		return fmt.Errorf("recovering %s: %w", name, err)
	}
	mt.tune(n)
	mt.rep.Reboots++
	return nil
}

// noteHosted records that shard has a copy (live or migrated-away) on
// the named node.
func (mt *migrateTorture) noteHosted(name types.NodeID, shard int) {
	if mt.hosted[name] == nil {
		mt.hosted[name] = make(map[int]bool)
	}
	mt.hosted[name][shard] = true
}

// attachData re-attaches every shard that ever lived on n — recovery
// replays log records against their segments, so even a migrated-away
// copy must be attached (the home check keeps it from serving) — and
// re-registers n as a migration destination.
func (mt *migrateTorture) attachData(n *core.Node) error {
	for shard := range mt.hosted[n.ID()] {
		if _, err := intarray.AttachShard(n, migrateFamily, shard, intarray.ShardCells(mt.opts.Keys, mt.shards, shard), mt.lockTO); err != nil {
			return err
		}
	}
	intarray.RegisterMigration(n, migrateFamily, mt.lockTO)
	return nil
}

// finalVerify checks the four invariants after the churn stops.
func (mt *migrateTorture) finalVerify(model map[uint64]int64) error {
	deadline := time.Now().Add(30 * time.Second)
	sc, err := intarray.NewShardedClient(mt.app, migrateFamily)
	if err != nil {
		return err
	}

	// Invariants 1+2: the array holds exactly the committed effects.
	if err := mt.retryUntil(deadline, func() error { return mt.checkAll(sc, model) }); err != nil {
		return err
	}

	// Invariant 3: no orphaned locks — one transaction writing every key
	// (on every shard, wherever it migrated to) must commit.
	val := int64(1) << 41
	if err := mt.retryUntil(deadline, func() error {
		return mt.app.App.Run(func(tid types.TransID) error {
			for key := uint64(0); key < mt.opts.Keys; key++ {
				if err := sc.Set(tid, key, val+int64(key)); err != nil {
					return err
				}
			}
			return nil
		})
	}); err != nil {
		return fmt.Errorf("invariant violated: post-churn write-all cannot commit (orphaned locks?): %w", err)
	}
	for key := uint64(0); key < mt.opts.Keys; key++ {
		model[key] = val + int64(key)
	}
	if err := mt.checkAll(sc, model); err != nil {
		return err
	}

	// Invariant 4: every transaction resolves.
	for {
		stuck := ""
		for name, n := range mt.c.Nodes() {
			if live := n.TM.LiveTransactions(); live > 0 {
				stuck = fmt.Sprintf("%s still holds %d live transactions", name, live)
				break
			}
		}
		if stuck == "" {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("invariant violated: %s after the churn stopped", stuck)
		}
		//tabslint:ignore sleepsync deadline-retry poll: LiveTransactions drains on the sweeper's clock across nodes
		time.Sleep(100 * time.Millisecond)
	}
}

// retryUntil runs fn until it succeeds or the deadline passes (stray
// aborting transactions may hold locks briefly after the churn stops).
func (mt *migrateTorture) retryUntil(deadline time.Time, fn func() error) error {
	for {
		err := fn()
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return err
		}
		//tabslint:ignore sleepsync deadline-retry poll: convergence is distributed (sweeper + lock releases on several nodes), there is no single event to wait on
		time.Sleep(100 * time.Millisecond)
	}
}

// checkAll reads every key in one transaction and compares to the model.
func (mt *migrateTorture) checkAll(sc *intarray.ShardedClient, model map[uint64]int64) error {
	return mt.app.App.Run(func(tid types.TransID) error {
		for key := uint64(0); key < mt.opts.Keys; key++ {
			v, err := sc.Get(tid, key)
			if err != nil {
				return err
			}
			if v != model[key] {
				return fmt.Errorf("invariant violated: key %d = %d, model says %d", key, v, model[key])
			}
		}
		return nil
	})
}
