package fault_test

import (
	"testing"

	"tabs/internal/fault"
)

// TestTortureMigrateSmoke is the CI smoke run for the online-migration
// torture: four workers writing through a sharded array while shards
// migrate between three data nodes and data nodes crash/reboot. Every
// worker write must commit (at worst after redirect retries) and all
// four recovery invariants must hold at the end.
func TestTortureMigrateSmoke(t *testing.T) {
	rep, err := fault.RunMigrate(fault.MigrateOptions{
		Seed:       20260808,
		Nodes:      3,
		Workers:    4,
		Migrations: 4,
		Keys:       48,
		CrashEvery: 2,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep.String())
	if rep.Moves != 4 {
		t.Errorf("completed %d moves, want 4", rep.Moves)
	}
	if rep.Committed == 0 {
		t.Fatal("no worker transaction committed; the harness exercised nothing")
	}
	if rep.Crashes == 0 || rep.Reboots != rep.Crashes {
		t.Errorf("crashes=%d reboots=%d: every crash must be followed by a reboot", rep.Crashes, rep.Reboots)
	}
	if rep.FinalVersion < 2 {
		t.Errorf("placement still at v%d; migrations should have bumped it", rep.FinalVersion)
	}
}
