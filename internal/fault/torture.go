package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"tabs/internal/core"
	"tabs/internal/disk"
	"tabs/internal/servers/intarray"
	"tabs/internal/txn"
	"tabs/internal/types"
)

// TortureOptions parameterize one torture run.
type TortureOptions struct {
	Seed    int64  // fault plan + workload schedule seed
	Nodes   int    // cluster size (minimum 2)
	Txns    int    // how many workload transactions to drive
	Profile string // fault profile name (ProfileByName)
	Cells   int    // intarray cells per node (default 64)

	// CommitProtocol selects the cluster's commit protocol ("2pc" when
	// empty, or "paxos"). Under paxos a commit may return ErrInDoubt when
	// the acceptor quorum is unreachable; the harness then tracks the
	// transaction as pending and folds its writes into the model once the
	// replicated decision resolves.
	CommitProtocol string

	// Logf, when set, receives progress lines (testing.T.Logf shape).
	Logf func(format string, args ...any)
}

// TortureReport summarizes a run.
type TortureReport struct {
	Seed       int64
	Profile    string
	Nodes      int
	Txns       int
	Committed  int
	Aborted    int
	InDoubt    int // commits that returned ErrInDoubt and resolved later
	Crashes    int // node crashes performed (scheduled + injector-requested)
	Reboots    int
	Partitions int
	Faults     int // fault-trace events retained by the injector
}

func (r *TortureReport) String() string {
	return fmt.Sprintf("torture seed=%d profile=%s nodes=%d txns=%d committed=%d aborted=%d indoubt=%d crashes=%d reboots=%d partitions=%d faults=%d",
		r.Seed, r.Profile, r.Nodes, r.Txns, r.Committed, r.Aborted, r.InDoubt, r.Crashes, r.Reboots, r.Partitions, r.Faults)
}

// modelWrite is one cell update a workload transaction attempted; the
// model applies it only if the transaction committed.
type modelWrite struct {
	node types.NodeID
	cell uint32
	val  int64
}

// pendingTxn is a commit that returned ErrInDoubt: the decision is with
// the acceptor quorum, not the coordinator, so the harness polls for the
// outcome and applies the writes retroactively if it was commit.
type pendingTxn struct {
	tid    types.TransID
	coord  types.NodeID
	idx    int // schedule index, for write-order reconciliation
	writes []modelWrite
}

// torture is the run state: a cluster of intarray nodes driven through a
// seeded schedule of transactions, crashes, and partitions, checked against
// an in-memory model.
type torture struct {
	opts  TortureOptions
	inj   *Injector
	c     *core.Cluster
	rng   *rand.Rand // workload schedule; independent of the fault streams
	names []types.NodeID

	// model[node][cell] is the value every committed effect implies; it is
	// updated only when App.Run reports commit, so "committed effects
	// durable" and "aborted effects invisible" are both checked by
	// comparing the arrays against it.
	model map[types.NodeID][]int64
	down  map[types.NodeID]int // crashed nodes -> transactions left down
	parts []partition

	// In-doubt bookkeeping (paxos runs): writerIdx[node][cell] is the
	// schedule index of the last transaction whose write the model
	// applied to that cell, so a pending transaction resolving late never
	// clobbers a newer committed value — it serialized BEFORE whatever
	// acquired its locks after resolution.
	pending   []pendingTxn
	writerIdx map[types.NodeID][]int
	txnIdx    int

	report TortureReport
}

type partition struct {
	a, b types.NodeID
	ttl  int
}

// RunTorture drives a randomized multi-node transactional workload under a
// seeded fault schedule and verifies the recovery invariants:
//
//  1. committed effects are durable (arrays match the model),
//  2. aborted effects are invisible (ditto — the model ignores aborts),
//  3. no orphaned locks (post-heal reads and writes all succeed),
//  4. every prepared transaction eventually resolves after partitions heal
//     and crashed nodes restart (LiveTransactions drains to zero).
//
// Any violation returns an error carrying the seed and the injector's
// fault trace, from which the run reproduces deterministically.
func RunTorture(opts TortureOptions) (*TortureReport, error) {
	if opts.Nodes < 2 {
		opts.Nodes = 2
	}
	if opts.Txns <= 0 {
		opts.Txns = 100
	}
	if opts.Cells <= 0 {
		opts.Cells = 64
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	prof, err := ProfileByName(opts.Profile)
	if err != nil {
		return nil, err
	}
	tt := &torture{
		opts:      opts,
		inj:       New(opts.Seed, prof),
		rng:       rand.New(rand.NewSource(opts.Seed)),
		model:     make(map[types.NodeID][]int64),
		down:      make(map[types.NodeID]int),
		writerIdx: make(map[types.NodeID][]int),
	}
	tt.report = TortureReport{Seed: opts.Seed, Profile: prof.Name, Nodes: opts.Nodes, Txns: opts.Txns}
	for i := 0; i < opts.Nodes; i++ {
		name := types.NodeID(fmt.Sprintf("n%d", i))
		tt.names = append(tt.names, name)
		tt.model[name] = make([]int64, opts.Cells)
		tt.writerIdx[name] = make([]int, opts.Cells)
	}

	copts := core.DefaultClusterOptions()
	copts.LogSectors = 4096
	copts.PoolPages = 128
	copts.LockTimeout = 500 * time.Millisecond
	copts.Faults = tt.inj
	copts.CommitProtocol = opts.CommitProtocol
	c, err := core.NewCluster(copts, tt.names...)
	if err != nil {
		return nil, err
	}
	tt.c = c
	defer c.Shutdown()
	for _, name := range tt.names {
		if err := tt.setupNode(name); err != nil {
			return nil, fmt.Errorf("torture: setting up %s: %w", name, err)
		}
	}

	// Setup ran clean; arm the plan.
	tt.inj.Enable()
	if err := tt.run(); err != nil {
		return &tt.report, tt.fail(err)
	}
	if err := tt.finalVerify(); err != nil {
		return &tt.report, tt.fail(err)
	}
	tt.report.Faults = len(tt.inj.Events())
	return &tt.report, nil
}

// fail wraps an invariant violation with everything needed to reproduce it.
func (tt *torture) fail(err error) error {
	return fmt.Errorf("torture: %w\nreproduce with seed=%d profile=%s nodes=%d txns=%d\nfault trace:\n%s",
		err, tt.opts.Seed, tt.report.Profile, tt.opts.Nodes, tt.opts.Txns, tt.inj.FormatEvents())
}

// setupNode attaches the array server, recovers, and tunes the node's
// protocol timers down to torture scale.
func (tt *torture) setupNode(name types.NodeID) error {
	n := tt.c.Node(name)
	if _, err := intarray.Attach(n, "arr", 1, uint32(tt.opts.Cells), 500*time.Millisecond); err != nil {
		return err
	}
	if _, err := n.Recover(); err != nil {
		return err
	}
	// Short vote/orphan timers so lost phase-2 datagrams and in-doubt
	// transactions resolve within the run, not after it.
	n.TM.Configure(75*time.Millisecond, 4, 300*time.Millisecond)
	n.CM.CallTimeout = 150 * time.Millisecond
	n.CM.Retries = 3
	return nil
}

// alive lists nodes currently up.
func (tt *torture) alive() []types.NodeID {
	var out []types.NodeID
	for _, n := range tt.names {
		if _, isDown := tt.down[n]; !isDown {
			out = append(out, n)
		}
	}
	return out
}

// crashNode takes a node down for a seeded number of transactions.
func (tt *torture) crashNode(name types.NodeID, why string) {
	if _, isDown := tt.down[name]; isDown {
		return
	}
	// Keep a majority of the schedule runnable: never take the last node.
	if len(tt.alive()) <= 1 {
		return
	}
	tt.c.Crash(name)
	stay := 1
	if k := tt.inj.ScheduleKnobs().DownTxns; k > 1 {
		stay = 1 + tt.rng.Intn(k)
	}
	tt.down[name] = stay
	tt.report.Crashes++
	tt.opts.Logf("txn %d: crash %s (%s), down for %d txns", tt.report.Committed+tt.report.Aborted, name, why, stay)
}

// reviveDue reboots nodes whose downtime expired. A reboot that fails
// under injection (e.g. a read fault during recovery) leaves the node down
// to retry at the next boundary.
func (tt *torture) reviveDue(force bool) {
	for name, left := range tt.down {
		if left > 1 && !force {
			tt.down[name] = left - 1
			continue
		}
		if _, err := tt.c.Reboot(name); err != nil {
			tt.opts.Logf("reboot %s failed (%v); retrying later", name, err)
			continue
		}
		if err := tt.setupNode(name); err != nil {
			tt.opts.Logf("recover %s failed (%v); retrying later", name, err)
			tt.c.Crash(name)
			continue
		}
		delete(tt.down, name)
		tt.report.Reboots++
		tt.opts.Logf("revived %s", name)
	}
}

// stepFaults advances the boundary-scheduled fault machinery: drain
// injector crash requests, age partitions, maybe add new ones.
func (tt *torture) stepFaults() {
	for {
		name, ok := tt.inj.TakeCrashRequest()
		if !ok {
			break
		}
		tt.crashNode(name, "injector request")
	}
	keep := tt.parts[:0]
	for _, p := range tt.parts {
		p.ttl--
		if p.ttl <= 0 {
			tt.inj.Heal(p.a, p.b)
			tt.opts.Logf("healed partition %s|%s", p.a, p.b)
			continue
		}
		keep = append(keep, p)
	}
	tt.parts = keep

	knobs := tt.inj.ScheduleKnobs()
	if knobs.PartitionProb > 0 && tt.rng.Float64() < knobs.PartitionProb {
		al := tt.alive()
		if len(al) >= 2 {
			i := tt.rng.Intn(len(al))
			j := tt.rng.Intn(len(al) - 1)
			if j >= i {
				j++
			}
			sym := tt.rng.Intn(2) == 0
			tt.inj.Partition(al[i], al[j], sym)
			tt.parts = append(tt.parts, partition{a: al[i], b: al[j], ttl: knobs.PartitionTxns})
			tt.report.Partitions++
			tt.opts.Logf("partition %s->%s symmetric=%v for %d txns", al[i], al[j], sym, knobs.PartitionTxns)
		}
	}
	if knobs.CrashProb > 0 && tt.rng.Float64() < knobs.CrashProb {
		al := tt.alive()
		if len(al) > 1 {
			tt.crashNode(al[tt.rng.Intn(len(al))], "scheduled")
		}
	}
}

// run drives the transaction schedule.
func (tt *torture) run() error {
	for t := 0; t < tt.opts.Txns; t++ {
		tt.stepFaults()
		tt.reviveDue(false)
		al := tt.alive()
		if len(al) == 0 {
			tt.reviveDue(true)
			if al = tt.alive(); len(al) == 0 {
				return errors.New("no node could be revived")
			}
		}
		// Periodic mid-run check, only in quiet moments: every node up, no
		// partitions, so in-doubt transactions can resolve promptly.
		if t%16 == 15 && len(tt.down) == 0 && len(tt.parts) == 0 {
			if err := tt.resolvePending(time.Now().Add(10 * time.Second)); err != nil {
				return fmt.Errorf("mid-run (txn %d): %w", t, err)
			}
			if err := tt.verifyModel(10 * time.Second); err != nil {
				return fmt.Errorf("mid-run (txn %d): %w", t, err)
			}
		}
		tt.runTxn(al)
	}
	return nil
}

// runTxn executes one randomized transaction: 1–3 writes spread over 1–2
// target nodes, coordinated from a random live node.
func (tt *torture) runTxn(al []types.NodeID) {
	idx := tt.txnIdx
	tt.txnIdx++
	coordName := al[tt.rng.Intn(len(al))]
	coord := tt.c.Node(coordName)
	targets := []types.NodeID{al[tt.rng.Intn(len(al))]}
	if len(al) > 1 && tt.rng.Intn(2) == 0 {
		for {
			t2 := al[tt.rng.Intn(len(al))]
			if t2 != targets[0] {
				targets = append(targets, t2)
				break
			}
		}
	}
	var writes []modelWrite
	for i, k := 0, 1+tt.rng.Intn(3); i < k; i++ {
		writes = append(writes, modelWrite{
			node: targets[tt.rng.Intn(len(targets))],
			cell: uint32(1 + tt.rng.Intn(tt.opts.Cells)), // cells are 1-indexed
			val:  tt.rng.Int63n(1 << 40),
		})
	}
	clients := make(map[types.NodeID]*intarray.Client)
	for _, tgt := range targets {
		clients[tgt] = intarray.NewClient(coord, tgt, "arr")
	}
	var rootTID types.TransID
	err := coord.App.Run(func(tid types.TransID) error {
		rootTID = tid
		for _, w := range writes {
			if err := clients[w.node].Set(tid, w.cell, w.val); err != nil {
				return err
			}
		}
		return nil
	})
	if err == nil {
		tt.report.Committed++
		for _, w := range writes {
			tt.model[w.node][w.cell-1] = w.val
			tt.writerIdx[w.node][w.cell-1] = idx
		}
		return
	}
	if errors.Is(err, txn.ErrInDoubt) {
		// The decision rests with the acceptor quorum, not this coordinator.
		// Track the transaction and poll for its outcome at the next
		// verification boundary; its writes fold into the model if and only
		// if the quorum decided commit.
		tt.report.InDoubt++
		tt.pending = append(tt.pending, pendingTxn{tid: rootTID, coord: coordName, idx: idx, writes: writes})
		tt.opts.Logf("txn %d: commit in doubt (%v on %s)", idx, rootTID, coordName)
		return
	}
	tt.report.Aborted++
	// An injected log/disk failure may have wedged the coordinator's local
	// abort mid-undo; the sweeper retries it, but crashing here also
	// exercises the recovery path for exactly these states.
	if errors.Is(err, disk.ErrWriteFailed) || errors.Is(err, ErrInjected) {
		tt.crashNode(coordName, "txn hit injected I/O failure")
	}
}

// resolvePending polls every in-doubt commit to a terminal outcome and
// applies committed writes to the model. A write lands only if no
// later-scheduled transaction has since committed the same cell: the
// pending transaction held the cell's locks until its decision was
// learned, so it serialized before anything that committed afterwards.
func (tt *torture) resolvePending(deadline time.Time) error {
	for len(tt.pending) > 0 {
		keep := tt.pending[:0]
		for _, p := range tt.pending {
			n := tt.c.Node(p.coord)
			if n == nil {
				keep = append(keep, p)
				continue
			}
			switch n.TM.Status(p.tid) {
			case types.StatusCommitted:
				for _, w := range p.writes {
					if tt.writerIdx[w.node][w.cell-1] <= p.idx {
						tt.model[w.node][w.cell-1] = w.val
						tt.writerIdx[w.node][w.cell-1] = p.idx
					}
				}
				tt.opts.Logf("in-doubt %v resolved: committed", p.tid)
			case types.StatusAborted:
				tt.opts.Logf("in-doubt %v resolved: aborted", p.tid)
			default:
				keep = append(keep, p)
			}
		}
		tt.pending = keep
		if len(tt.pending) == 0 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("invariant violated: %d in-doubt commits never resolved (first: %v on %s)",
				len(tt.pending), tt.pending[0].tid, tt.pending[0].coord)
		}
		//tabslint:ignore sleepsync deadline-retry poll: the replicated decision resolves on the sweeper's clock across nodes
		time.Sleep(50 * time.Millisecond)
	}
	return nil
}

// verifyModel reads every cell of every node and compares against the
// model, retrying until deadline: stray in-doubt transactions may hold
// locks briefly (their aborts release within a lock timeout + sweep).
func (tt *torture) verifyModel(patience time.Duration) error {
	// Reads must observe the real committed state, not injected noise.
	tt.inj.Disable()
	defer tt.inj.Enable()
	deadline := time.Now().Add(patience)
	var lastErr error
	for {
		lastErr = tt.checkAllCells()
		if lastErr == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return lastErr
		}
		//tabslint:ignore sleepsync deadline-retry poll: convergence is distributed (sweeper + lock releases on several nodes), there is no single event to wait on
		time.Sleep(50 * time.Millisecond)
	}
}

// checkAllCells performs one full read pass against the model.
func (tt *torture) checkAllCells() error {
	for _, name := range tt.names {
		n := tt.c.Node(name)
		if n == nil {
			return fmt.Errorf("node %s not up for verification", name)
		}
		cl := intarray.NewClient(n, name, "arr")
		want := tt.model[name]
		err := n.App.Run(func(tid types.TransID) error {
			for cell := 1; cell <= tt.opts.Cells; cell++ {
				v, err := cl.Get(tid, uint32(cell))
				if err != nil {
					return err
				}
				if v != want[cell-1] {
					return fmt.Errorf("invariant violated: %s cell %d = %d, model says %d", name, cell, v, want[cell-1])
				}
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("reading %s: %w", name, err)
		}
	}
	return nil
}

// finalVerify heals everything, disables injection, restarts every down
// node, and checks all four invariants to quiescence.
func (tt *torture) finalVerify() error {
	tt.inj.HealAll()
	tt.inj.Disable()
	tt.parts = nil
	deadline := time.Now().Add(30 * time.Second)
	for len(tt.down) > 0 {
		tt.reviveDue(true)
		if len(tt.down) == 0 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("nodes still down after heal: %v", tt.down)
		}
		//tabslint:ignore sleepsync deadline-retry poll around whole-node reboot; no event to wait on
		time.Sleep(100 * time.Millisecond)
	}

	// In-doubt commits must reach a terminal outcome before the model is
	// trustworthy: the quorum's decision determines whether their writes
	// count as committed effects.
	if err := tt.resolvePending(deadline); err != nil {
		return err
	}

	// Invariants 1+2: durable exactly the committed effects.
	if err := tt.verifyModel(time.Until(deadline)); err != nil {
		return err
	}

	// Invariant 3: no orphaned locks — a transaction touching every cell
	// on every node must be able to commit.
	var lastErr error
	for {
		lastErr = tt.writeAll()
		if lastErr == nil {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("invariant violated: post-heal write-all cannot commit (orphaned locks?): %w", lastErr)
		}
		//tabslint:ignore sleepsync deadline-retry poll: in-doubt transactions resolve on the sweeper's clock across nodes
		time.Sleep(100 * time.Millisecond)
	}
	if err := tt.checkAllCells(); err != nil {
		return err
	}

	// Invariant 4: every transaction (prepared in-doubt included) resolves.
	for {
		stuck := ""
		for _, name := range tt.names {
			if live := tt.c.Node(name).TM.LiveTransactions(); live > 0 {
				stuck = fmt.Sprintf("%s still holds %d live transactions", name, live)
				break
			}
		}
		if stuck == "" {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("invariant violated: %s after heal + quiesce", stuck)
		}
		//tabslint:ignore sleepsync deadline-retry poll: LiveTransactions drains on the sweeper's clock across nodes
		time.Sleep(100 * time.Millisecond)
	}
}

// writeAll commits one distributed transaction writing a fresh value to
// every cell of every node, updating the model on success.
func (tt *torture) writeAll() error {
	coord := tt.c.Node(tt.names[0])
	val := tt.rng.Int63n(1 << 40)
	err := coord.App.Run(func(tid types.TransID) error {
		for _, name := range tt.names {
			cl := intarray.NewClient(coord, name, "arr")
			for cell := 1; cell <= tt.opts.Cells; cell++ {
				if err := cl.Set(tid, uint32(cell), val+int64(cell)); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	for _, name := range tt.names {
		for cell := 1; cell <= tt.opts.Cells; cell++ {
			tt.model[name][cell-1] = val + int64(cell)
		}
	}
	return nil
}
