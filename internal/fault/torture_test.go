package fault_test

import (
	"testing"
	"time"

	"tabs/internal/core"
	"tabs/internal/fault"
	"tabs/internal/servers/intarray"
	"tabs/internal/types"
)

// TestTortureSmoke is the CI smoke run: a fixed seed, three nodes, fifty
// transactions under the full chaos profile (crashes, partitions, disk
// faults, message faults). It must pass all four recovery invariants; a
// failure report carries the seed and fault trace for reproduction.
func TestTortureSmoke(t *testing.T) {
	rep, err := fault.RunTorture(fault.TortureOptions{
		Seed:    20260806,
		Nodes:   3,
		Txns:    50,
		Profile: "chaos",
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep.String())
	if rep.Committed == 0 {
		t.Fatal("no transaction committed; the harness exercised nothing")
	}
}

// TestTortureCrashProfile leans on crash/recover cycles specifically,
// including injector-requested crashes at disk and WAL points.
func TestTortureCrashProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("long torture run")
	}
	rep, err := fault.RunTorture(fault.TortureOptions{
		Seed:    7,
		Nodes:   3,
		Txns:    40,
		Profile: "crash",
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep.String())
}

// TestSessionFaultsAtMostOnce drives sequential increment transactions
// between two nodes while the net profile drops, duplicates, delays, and
// reorders BOTH datagram and session traffic — the coverage the deprecated
// comm.FlakyTransport (datagram-only) never had. Every committed increment
// must be applied exactly once: the session layer's (From, Epoch, Seq)
// dedup is what makes duplicated session envelopes safe.
func TestSessionFaultsAtMostOnce(t *testing.T) {
	prof, err := fault.ProfileByName("net")
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.New(99, prof)
	opts := core.DefaultClusterOptions()
	opts.Faults = inj
	c, err := core.NewCluster(opts, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	for _, name := range []types.NodeID{"a", "b"} {
		n := c.Node(name)
		if _, err := intarray.Attach(n, "arr", 1, 8, 2*time.Second); err != nil {
			t.Fatal(err)
		}
		if _, err := n.Recover(); err != nil {
			t.Fatal(err)
		}
		n.TM.Configure(75*time.Millisecond, 6, 0)
		n.CM.CallTimeout = 150 * time.Millisecond
		n.CM.Retries = 8
	}
	inj.Enable()

	na := c.Node("a")
	remote := intarray.NewClient(na, "b", "arr")
	committed := int64(0)
	for i := 0; i < 30; i++ {
		err := na.App.Run(func(tid types.TransID) error {
			v, err := remote.Get(tid, 1)
			if err != nil {
				return err
			}
			return remote.Set(tid, 1, v+1)
		})
		if err == nil {
			committed++
		}
	}
	inj.Disable()
	if committed == 0 {
		t.Fatal("nothing committed under net faults")
	}
	var final int64
	if err := na.App.Run(func(tid types.TransID) error {
		v, err := remote.Get(tid, 1)
		final = v
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if final != committed {
		t.Fatalf("cell = %d after %d committed increments: lost or duplicated effects (seed=%d)\n%s",
			final, committed, inj.Seed(), inj.FormatEvents())
	}
}
