package fault

import (
	"fmt"
	"sync"
	"time"

	"tabs/internal/comm"
	"tabs/internal/types"
)

// transport wraps a node's comm.Transport with the injector's network
// fault model. Unlike the deprecated comm.FlakyTransport (datagram-only),
// it subjects BOTH traffic kinds to the plan: the commit protocol's
// datagrams and the session RPCs that carry remote data-server calls.
// Dropping or duplicating a session envelope is safe to inject because the
// session layer retransmits on timeout and dedups by (From, Epoch, Seq);
// the fault model is exactly what that machinery exists for.
//
// Faults are applied on the send side of each (wrapped) endpoint, which
// covers every direction of every link once all nodes are wrapped, and
// makes asymmetric partitions natural: blocking a→b at a's sender leaves
// b→a intact.
type transport struct {
	inner comm.Transport
	in    *Injector
	node  types.NodeID

	mu    sync.Mutex
	stash map[types.NodeID]*comm.Envelope // reorder buffer, one per peer
}

// WrapTransport implements core.FaultPlan: it returns t wrapped with the
// plan's network fault model for traffic sent by node.
func (in *Injector) WrapTransport(node types.NodeID, t comm.Transport) comm.Transport {
	return &transport{inner: t, in: in, node: node, stash: make(map[types.NodeID]*comm.Envelope)}
}

func (t *transport) SetReceiver(r comm.Receiver) { t.inner.SetReceiver(r) }
func (t *transport) Peers() []types.NodeID       { return t.inner.Peers() }
func (t *transport) Close() error                { return t.inner.Close() }

// Send applies, in order: partition check, drop, reorder (hold this
// envelope until the next send to the same peer overtakes it), delay
// (deliver later on a timer — which also reorders relative to prompt
// traffic), duplicate.
func (t *transport) Send(env *comm.Envelope) error {
	in := t.in
	if in.Partitioned(t.node, env.To) {
		// Partitions act even while probabilistic faults are disabled.
		in.countPartitionDrop(t.node)
		if env.Kind == comm.KindDatagram {
			return nil // datagrams into a partition vanish silently
		}
		return fmt.Errorf("%w: %s (partitioned)", comm.ErrUnreachable, env.To)
	}
	if !in.isEnabled() {
		return t.inner.Send(env)
	}
	kind := "datagram"
	if env.Kind == comm.KindSession {
		kind = "session"
	}
	if in.fire(t.node, "comm."+kind+".drop", env.To, 0) {
		return nil // lost in transit; retransmission is the caller's job
	}
	if in.fire(t.node, "comm."+kind+".reorder", env.To, 0) {
		cp := *env
		t.mu.Lock()
		prev := t.stash[env.To]
		t.stash[env.To] = &cp
		t.mu.Unlock()
		if prev != nil {
			_ = t.inner.Send(prev)
		}
		// Backstop: if no later send to this peer releases the envelope,
		// flush it after a short hold so it is reordered, not lost.
		time.AfterFunc(25*time.Millisecond, func() { t.flushStashed(env.To, &cp) })
		return nil
	}
	// This send releases any stashed predecessor AFTER itself — that
	// swap is the reorder.
	t.mu.Lock()
	prev := t.stash[env.To]
	delete(t.stash, env.To)
	t.mu.Unlock()
	if in.fire(t.node, "comm."+kind+".delay", env.To, 0) {
		cp := *env
		time.AfterFunc(in.delayFor(), func() { _ = t.inner.Send(&cp) })
		if prev != nil {
			_ = t.inner.Send(prev)
		}
		return nil
	}
	err := t.inner.Send(env)
	if prev != nil {
		_ = t.inner.Send(prev)
	}
	if err != nil {
		return err
	}
	if in.fire(t.node, "comm."+kind+".dup", env.To, 0) {
		_ = t.inner.Send(env)
	}
	return nil
}

// flushStashed delivers a stashed envelope if no subsequent send released
// it first.
func (t *transport) flushStashed(peer types.NodeID, cp *comm.Envelope) {
	t.mu.Lock()
	held := t.stash[peer] == cp
	if held {
		delete(t.stash, peer)
	}
	t.mu.Unlock()
	if held {
		_ = t.inner.Send(cp)
	}
}
