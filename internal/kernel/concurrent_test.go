package kernel

import (
	"encoding/binary"
	"sync"
	"testing"

	"tabs/internal/types"
)

// Race-mode stress tests for the "lock-free reads, coarse write lock"
// cache: concurrent readers on the shared-lock hit path against writers,
// evictions (tiny pool forces constant replacement) and writeback.

// TestConcurrentReadersVsEviction hammers a pool much smaller than the
// working set so every reader races faults and evictions of the very
// frames it reads. Each page carries a self-identifying value, so a read
// that returned bytes from a recycled or torn frame is detected.
func TestConcurrentReadersVsEviction(t *testing.T) {
	const (
		segPages = 64
		pool     = 8
		readers  = 6
		iters    = 400
	)
	k, _, _, _ := testKernel(t, pool, segPages)

	// Stamp every page with its page number at offset 0 via the kernel
	// write path (pins not enforced by the kernel itself).
	for p := uint32(0); p < segPages; p++ {
		obj := types.ObjectID{Segment: 1, Offset: p * types.PageSize, Length: 8}
		var v [8]byte
		binary.BigEndian.PutUint64(v[:], uint64(p)|0xfeed0000)
		if err := k.Write(obj, v[:]); err != nil {
			t.Fatalf("stamp page %d: %v", p, err)
		}
	}
	if err := k.FlushAll(); err != nil {
		t.Fatalf("flush: %v", err)
	}

	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rnd := uint32(r*2654435761 + 17)
			for i := 0; i < iters; i++ {
				rnd = rnd*1664525 + 1013904223
				p := rnd % segPages
				obj := types.ObjectID{Segment: 1, Offset: p * types.PageSize, Length: 8}
				got, err := k.Read(obj)
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				if v := binary.BigEndian.Uint64(got); v != uint64(p)|0xfeed0000 {
					t.Errorf("reader %d: page %d returned stamp %#x", r, p, v)
					return
				}
			}
		}(r)
	}
	wg.Wait()
}

// TestConcurrentReadersVsWriteback mixes readers with a writer that keeps
// dirtying pages and a flusher that writes them back, so the shared-lock
// read path races first-dirty transitions, data stores, and the pager
// write protocol. The writer maintains an invariant within each page — two
// mirrored counters — and readers check it, which catches torn reads.
func TestConcurrentReadersVsWriteback(t *testing.T) {
	const (
		segPages = 16
		pool     = 16 // resident: isolates writeback from eviction
		readers  = 4
		iters    = 500
	)
	k, _, _, _ := testKernel(t, pool, segPages)

	mk := func(page uint32) types.ObjectID {
		return types.ObjectID{Segment: 1, Offset: page * types.PageSize, Length: 16}
	}
	for p := uint32(0); p < segPages; p++ {
		var v [16]byte
		if err := k.Write(mk(p), v[:]); err != nil {
			t.Fatalf("init: %v", err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Writer: bump both mirrored counters of a page atomically under the
	// kernel's exclusive write path.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			p := uint32(i) % segPages
			var v [16]byte
			binary.BigEndian.PutUint64(v[0:], uint64(i))
			binary.BigEndian.PutUint64(v[8:], uint64(i))
			if err := k.Write(mk(p), v[:]); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
		}
	}()

	// Flusher: concurrent writeback of whatever is dirty.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, p := range k.DirtyPages() {
				if err := k.FlushPage(p); err != nil {
					t.Errorf("flusher: %v", err)
					return
				}
			}
		}
	}()

	var readerWG sync.WaitGroup
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			rnd := uint32(r*40503 + 3)
			for i := 0; i < iters; i++ {
				rnd = rnd*1664525 + 1013904223
				p := rnd % segPages
				got, err := k.Read(mk(p))
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				a := binary.BigEndian.Uint64(got[0:])
				b := binary.BigEndian.Uint64(got[8:])
				if a != b {
					t.Errorf("reader %d: torn read on page %d: %d != %d", r, p, a, b)
					return
				}
			}
		}(r)
	}
	// Readers own the test duration; stop the writer and flusher once
	// they exit.
	readerWG.Wait()
	close(stop)
	wg.Wait()
}
