// Package kernel simulates the modified Accent kernel functions TABS
// depends on (paper §3.2.1): recoverable segments mapped into virtual
// memory, demand paging integrated with the write-ahead log protocol, the
// paging-control (pin) primitives of the server library, and the atomic
// per-page sequence numbers stored in sector headers for operation logging.
//
// A recoverable segment is a region of the node's disk holding a data
// server's permanent data. Data servers address it through ObjectIDs
// (segment-relative byte ranges); reads and writes fault pages into a
// bounded buffer pool. The kernel enforces the write-ahead invariant by
// asking the Pager (the Recovery Manager) for permission before copying a
// dirty page back to its segment, and reports the first modification of
// each page so the Recovery Manager can maintain its dirty-page table.
package kernel

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"tabs/internal/disk"
	"tabs/internal/simclock"
	"tabs/internal/stats"
	"tabs/internal/trace"
	"tabs/internal/types"
)

// Pager is the Recovery Manager's side of the three-message pager protocol
// (§3.2.1). The kernel calls these while handling faults and evictions;
// implementations must not call back into the kernel.
type Pager interface {
	// PageFirstDirtied reports that a page frame backed by a recoverable
	// segment has been modified for the first time since it was faulted
	// in (message 1).
	PageFirstDirtied(page types.PageID)
	// RequestPageWrite reports that the kernel wants to copy a modified
	// page back to its segment (message 2). The pager must force every
	// log record that applies to the page before returning, and returns
	// the sequence number the kernel must write atomically into the
	// page's sector header (operation logging, §3.2.1).
	RequestPageWrite(page types.PageID) (header uint64, err error)
	// PageWritten reports whether the copy succeeded (message 3).
	PageWritten(page types.PageID, ok bool)
}

// nullPager accepts everything; used until the Recovery Manager attaches.
type nullPager struct{}

func (nullPager) PageFirstDirtied(types.PageID)                 {}
func (nullPager) RequestPageWrite(types.PageID) (uint64, error) { return 0, nil }
func (nullPager) PageWritten(types.PageID, bool)                {}

// Errors returned by the kernel.
var (
	ErrNoSegment   = errors.New("kernel: no such segment")
	ErrOutOfRange  = errors.New("kernel: address out of segment")
	ErrPoolPinned  = errors.New("kernel: buffer pool exhausted by pinned pages")
	ErrNotResident = errors.New("kernel: page not resident")
)

type segment struct {
	id    types.SegmentID
	base  disk.Addr
	pages uint32
}

type frame struct {
	page types.PageID
	// mu guards data, dirty and header. Readers on the hit path hold it
	// shared together with the kernel's read lock; every mutation holds
	// the kernel's write lock and this lock exclusively, so two cache
	// hits never contend with each other.
	mu     sync.RWMutex
	data   []byte
	dirty  bool
	dead   bool // evicted or discarded; retry via the slow path
	pin    int
	header uint64        // sector header as read at fault time
	tick   atomic.Uint64 // LRU clock
}

// Kernel is one node's paging kernel. Safe for concurrent use.
//
// Concurrency model ("lock-free reads, coarse write lock"): mu is a
// RWMutex. The read hit path takes it shared — many concurrent readers
// proceed without queueing — plus the target frame's shared lock for the
// data copy. Everything that mutates kernel structure (faults, writes,
// evictions, pins, flushes) takes mu exclusively, and additionally the
// frame's exclusive lock while mutating frame contents. The LRU clock is
// atomic so hits can bump recency without any exclusive lock. A frame
// evicted while a reader was between map lookup and copy is marked dead;
// dead frames send the reader back through the slow path.
type Kernel struct {
	d   *disk.Disk
	rec *stats.Recorder
	tr  *trace.Tracer

	mu        sync.RWMutex
	segs      map[types.SegmentID]*segment
	frames    map[types.PageID]*frame
	poolSize  int
	tick      atomic.Uint64
	pager     Pager
	lastFault types.PageID
	haveLast  bool
	faults    int64
	evictions int64
	crashed   bool
}

// Config parameterizes a Kernel.
type Config struct {
	Disk *disk.Disk
	// PoolPages bounds resident pages; the paper's paging benchmarks use
	// an array more than three times physical memory (§5.1).
	PoolPages int
	Rec       *stats.Recorder
	Trace     *trace.Tracer
}

// New returns a kernel with an empty buffer pool and a null pager.
func New(cfg Config) *Kernel {
	if cfg.PoolPages <= 0 {
		cfg.PoolPages = 256
	}
	return &Kernel{
		d:        cfg.Disk,
		rec:      cfg.Rec,
		tr:       cfg.Trace,
		segs:     make(map[types.SegmentID]*segment),
		frames:   make(map[types.PageID]*frame),
		poolSize: cfg.PoolPages,
		pager:    nullPager{},
	}
}

// SetPager attaches the Recovery Manager.
func (k *Kernel) SetPager(p Pager) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if p == nil {
		p = nullPager{}
	}
	k.pager = p
}

// PoolPages returns the buffer pool capacity in pages.
func (k *Kernel) PoolPages() int { return k.poolSize }

// AddSegment registers a recoverable segment occupying pages sectors
// starting at base on the disk. This corresponds to mapping the disk file
// into virtual memory (ReadPermanentData, §3.1.1).
func (k *Kernel) AddSegment(id types.SegmentID, base disk.Addr, pages uint32) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if _, dup := k.segs[id]; dup {
		return fmt.Errorf("kernel: segment %d already mapped", id)
	}
	k.segs[id] = &segment{id: id, base: base, pages: pages}
	return nil
}

// SegmentPages returns the size of segment id in pages.
func (k *Kernel) SegmentPages(id types.SegmentID) (uint32, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	s := k.segs[id]
	if s == nil {
		return 0, fmt.Errorf("%w: %d", ErrNoSegment, id)
	}
	return s.pages, nil
}

// Stats returns cumulative fault and eviction counts.
func (k *Kernel) Stats() (faults, evictions int64) {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.faults, k.evictions
}

// sectorOf maps a page to its disk sector. Caller holds k.mu.
func (k *Kernel) sectorOf(p types.PageID) (disk.Addr, error) {
	s := k.segs[p.Segment]
	if s == nil {
		return 0, fmt.Errorf("%w: %d", ErrNoSegment, p.Segment)
	}
	if p.Page >= s.pages {
		return 0, fmt.Errorf("%w: page %d of %d", ErrOutOfRange, p.Page, s.pages)
	}
	return s.base + disk.Addr(p.Page), nil
}

// fault ensures page p is resident and returns its frame. Caller holds
// k.mu exclusively.
func (k *Kernel) fault(p types.PageID) (*frame, error) {
	if f, ok := k.frames[p]; ok {
		f.tick.Store(k.tick.Add(1))
		return f, nil
	}
	addr, err := k.sectorOf(p)
	if err != nil {
		return nil, err
	}
	if len(k.frames) >= k.poolSize {
		if err := k.evictOne(); err != nil {
			return nil, err
		}
	}
	f := &frame{page: p, data: make([]byte, types.PageSize)}
	header, err := k.d.Read(addr, f.data)
	if err != nil {
		return nil, fmt.Errorf("kernel: fault-in %v: %w", p, err)
	}
	f.header = header
	f.tick.Store(k.tick.Add(1))
	k.frames[p] = f
	k.faults++
	if k.rec != nil {
		sequential := k.haveLast && p.Segment == k.lastFault.Segment && p.Page == k.lastFault.Page+1
		if sequential {
			k.rec.Record(simclock.SequentialRead)
		} else {
			k.rec.Record(simclock.RandomPageIO)
		}
	}
	k.lastFault = p
	k.haveLast = true
	k.tr.Count("kernel.fault.count", 1)
	return f, nil
}

// evictOne removes the least recently used unpinned frame, writing it back
// under the pager protocol if dirty. Caller holds k.mu exclusively.
func (k *Kernel) evictOne() error {
	var victim *frame
	var victimTick uint64
	for _, f := range k.frames {
		if f.pin > 0 {
			continue
		}
		if t := f.tick.Load(); victim == nil || t < victimTick {
			victim, victimTick = f, t
		}
	}
	if victim == nil {
		// Pin stall: every frame is pinned, so the fault cannot proceed.
		k.tr.Count("kernel.pin_stall.count", 1)
		return ErrPoolPinned
	}
	if victim.dirty {
		if err := k.writeBackLocked(victim); err != nil {
			return err
		}
		k.tr.Count("kernel.steal.count", 1)
	}
	// Mark the frame dead under its exclusive lock: a reader that fetched
	// the frame pointer before this eviction will see the flag and retry
	// through the slow path instead of reading recycled contents.
	victim.mu.Lock()
	victim.dead = true
	victim.mu.Unlock()
	delete(k.frames, victim.page)
	k.evictions++
	k.tr.Count("kernel.evict.count", 1)
	return nil
}

// writeBackLocked runs the pager write protocol for one dirty frame.
// Caller holds k.mu.
func (k *Kernel) writeBackLocked(f *frame) error {
	// Message 2: ask permission; the pager forces the log first.
	if k.rec != nil {
		k.rec.Record(simclock.SmallMsg) // request
		k.rec.Record(simclock.SmallMsg) // reply with sequence number
	}
	header, err := k.pager.RequestPageWrite(f.page)
	if err != nil {
		return fmt.Errorf("kernel: write permission for %v: %w", f.page, err)
	}
	addr, err := k.sectorOf(f.page)
	if err != nil {
		return err
	}
	werr := k.d.Write(addr, f.data, header)
	if k.rec != nil {
		k.rec.Record(simclock.RandomPageIO) // the page write itself
		k.rec.Record(simclock.SmallMsg)     // message 3: completion
	}
	k.pager.PageWritten(f.page, werr == nil)
	if werr != nil {
		return fmt.Errorf("kernel: writing back %v: %w", f.page, werr)
	}
	f.mu.Lock()
	f.dirty = false
	f.header = header
	f.mu.Unlock()
	return nil
}

// checkRange validates that obj lies inside its segment. Caller holds k.mu.
func (k *Kernel) checkRange(obj types.ObjectID) error {
	s := k.segs[obj.Segment]
	if s == nil {
		return fmt.Errorf("%w: %d", ErrNoSegment, obj.Segment)
	}
	if uint64(obj.Offset)+uint64(obj.Length) > uint64(s.pages)*types.PageSize {
		return fmt.Errorf("%w: %v", ErrOutOfRange, obj)
	}
	return nil
}

// Read copies the bytes of obj out of the mapped segment, faulting pages in
// as needed. Cache hits run entirely under shared locks; only a miss (or a
// frame evicted mid-read) falls back to the exclusive-lock fault path.
func (k *Kernel) Read(obj types.ObjectID) ([]byte, error) {
	out := make([]byte, obj.Length)
	if k.readResident(obj, out) {
		return out, nil
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	if err := k.checkRange(obj); err != nil {
		return nil, err
	}
	for n := uint32(0); n < obj.Length; {
		off := obj.Offset + n
		p := types.PageID{Segment: obj.Segment, Page: off / types.PageSize}
		f, err := k.fault(p)
		if err != nil {
			return nil, err
		}
		in := off % types.PageSize
		n += uint32(copy(out[n:], f.data[in:]))
	}
	return out, nil
}

// readResident copies obj into out if every page it touches is resident,
// taking only shared locks. Returns false — without partial effects the
// caller cares about — when a page misses, a frame died under us, or the
// range is invalid; the slow path re-runs the full read.
func (k *Kernel) readResident(obj types.ObjectID, out []byte) bool {
	k.mu.RLock()
	defer k.mu.RUnlock()
	if k.checkRange(obj) != nil {
		return false // slow path reproduces the error
	}
	for n := uint32(0); n < obj.Length; {
		off := obj.Offset + n
		p := types.PageID{Segment: obj.Segment, Page: off / types.PageSize}
		f := k.frames[p]
		if f == nil {
			return false
		}
		f.mu.RLock()
		if f.dead {
			f.mu.RUnlock()
			return false
		}
		in := off % types.PageSize
		c := copy(out[n:], f.data[in:])
		f.mu.RUnlock()
		f.tick.Store(k.tick.Add(1))
		n += uint32(c)
	}
	return true
}

// Write stores data at obj, faulting pages in and reporting first-dirty
// transitions to the pager. The caller (server library) is responsible for
// having pinned the pages and for logging old/new values per the
// write-ahead discipline.
func (k *Kernel) Write(obj types.ObjectID, data []byte) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if err := k.checkRange(obj); err != nil {
		return err
	}
	if uint32(len(data)) != obj.Length {
		return fmt.Errorf("kernel: write of %d bytes to object of length %d", len(data), obj.Length)
	}
	for n := uint32(0); n < obj.Length; {
		off := obj.Offset + n
		p := types.PageID{Segment: obj.Segment, Page: off / types.PageSize}
		f, err := k.fault(p)
		if err != nil {
			return err
		}
		if !f.dirty {
			f.mu.Lock()
			f.dirty = true
			f.mu.Unlock()
			if k.rec != nil {
				k.rec.Record(simclock.SmallMsg) // message 1: first-dirty
			}
			k.pager.PageFirstDirtied(p)
		}
		in := off % types.PageSize
		f.mu.Lock()
		c := copy(f.data[in:], data[n:])
		f.mu.Unlock()
		n += uint32(c)
	}
	return nil
}

// Pin prevents every page of obj from being paged out until unpinned
// (PinObject, §3.1.1). Pins nest.
func (k *Kernel) Pin(obj types.ObjectID) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if err := k.checkRange(obj); err != nil {
		return err
	}
	for _, p := range obj.Pages() {
		f, err := k.fault(p)
		if err != nil {
			return err
		}
		f.pin++
	}
	return nil
}

// Unpin releases one pin on every page of obj (UnPinObject, §3.1.1).
func (k *Kernel) Unpin(obj types.ObjectID) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	for _, p := range obj.Pages() {
		f := k.frames[p]
		if f == nil || f.pin == 0 {
			return fmt.Errorf("%w: unpin of %v", ErrNotResident, p)
		}
		f.pin--
	}
	return nil
}

// PinnedPages returns the number of currently pinned resident pages.
func (k *Kernel) PinnedPages() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	n := 0
	for _, f := range k.frames {
		if f.pin > 0 {
			n++
		}
	}
	return n
}

// DirtyPages returns the resident pages that are dirty.
func (k *Kernel) DirtyPages() []types.PageID {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]types.PageID, 0)
	for p, f := range k.frames {
		if f.dirty {
			out = append(out, p)
		}
	}
	return out
}

// FlushPage writes the page back to its segment (if dirty and resident)
// under the pager protocol. The Recovery Manager uses this during log
// reclamation, which "may force pages back to disk before they would
// otherwise be written" (§3.2.2).
func (k *Kernel) FlushPage(p types.PageID) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	f := k.frames[p]
	if f == nil || !f.dirty {
		return nil
	}
	return k.writeBackLocked(f)
}

// FlushAll writes back every dirty page.
func (k *Kernel) FlushAll() error {
	k.mu.Lock()
	pages := make([]types.PageID, 0)
	for p, f := range k.frames {
		if f.dirty {
			pages = append(pages, p)
		}
	}
	k.mu.Unlock()
	for _, p := range pages {
		if err := k.FlushPage(p); err != nil {
			return err
		}
	}
	return nil
}

// ReadPageSeq returns the sequence number in the on-disk sector header of
// page p, bypassing the buffer pool. The Recovery Manager requests this
// during operation-logging crash recovery (§3.2.1).
func (k *Kernel) ReadPageSeq(p types.PageID) (uint64, error) {
	k.mu.Lock()
	addr, err := k.sectorOf(p)
	if err != nil {
		k.mu.Unlock()
		return 0, err
	}
	if k.rec != nil {
		k.rec.Record(simclock.SmallMsg) // RM request to kernel
	}
	// The header read needs no kernel state, only the resolved sector
	// address; do not hold k.mu across the (latency-modelled) I/O.
	k.mu.Unlock()
	return k.d.ReadHeader(addr)
}

// WriteDirect writes data to obj and immediately to disk with the given
// header, bypassing dirty accounting. Recovery uses this to install redo
// or undo effects while rebuilding state after a crash, when the pager
// protocol is not yet in force.
func (k *Kernel) WriteDirect(obj types.ObjectID, data []byte, header uint64) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if err := k.checkRange(obj); err != nil {
		return err
	}
	if uint32(len(data)) != obj.Length {
		return fmt.Errorf("kernel: direct write of %d bytes to object of length %d", len(data), obj.Length)
	}
	for n := uint32(0); n < obj.Length; {
		off := obj.Offset + n
		p := types.PageID{Segment: obj.Segment, Page: off / types.PageSize}
		addr, err := k.sectorOf(p)
		if err != nil {
			return err
		}
		var page [types.PageSize]byte
		//tabslint:ignore lockhold recovery-time direct path: the pager protocol is not in force and frame coherence below requires the lock across the read-modify-write
		if _, err := k.d.Read(addr, page[:]); err != nil {
			return err
		}
		in := off % types.PageSize
		c := copy(page[in:], data[n:])
		//tabslint:ignore lockhold recovery-time direct path: frame coherence requires the lock across the write
		if err := k.d.Write(addr, page[:], header); err != nil {
			return err
		}
		// Keep any resident copy coherent.
		if f, ok := k.frames[p]; ok {
			f.mu.Lock()
			copy(f.data, page[:])
			f.header = header
			f.dirty = false
			f.mu.Unlock()
		}
		n += uint32(c)
	}
	return nil
}

// Crash discards all volatile state: the buffer pool, pins, and fault
// history. Disk contents survive. Pending dirty pages are lost, which is
// precisely what crash recovery must repair.
func (k *Kernel) Crash() {
	k.mu.Lock()
	defer k.mu.Unlock()
	for _, f := range k.frames {
		f.mu.Lock()
		f.dead = true
		f.mu.Unlock()
	}
	k.frames = make(map[types.PageID]*frame)
	k.haveLast = false
	k.crashed = true
	k.pager = nullPager{}
}
