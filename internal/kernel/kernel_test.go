package kernel

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"tabs/internal/disk"
	"tabs/internal/simclock"
	"tabs/internal/stats"
	"tabs/internal/types"
)

// tracePager records the pager-protocol callbacks so tests can assert the
// write-ahead ordering.
type tracePager struct {
	mu         sync.Mutex
	firstDirty []types.PageID
	writeReqs  []types.PageID
	written    []types.PageID
	header     uint64
	reqErr     error
}

func (p *tracePager) PageFirstDirtied(pg types.PageID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.firstDirty = append(p.firstDirty, pg)
}

func (p *tracePager) RequestPageWrite(pg types.PageID) (uint64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.reqErr != nil {
		return 0, p.reqErr
	}
	p.writeReqs = append(p.writeReqs, pg)
	return p.header, nil
}

func (p *tracePager) PageWritten(pg types.PageID, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if ok {
		p.written = append(p.written, pg)
	}
}

func testKernel(t *testing.T, poolPages int, segPages uint32) (*Kernel, *disk.Disk, *tracePager, *stats.Recorder) {
	t.Helper()
	d := disk.New(disk.DefaultGeometry(int64(segPages) + 64))
	rec := stats.NewRecorder()
	k := New(Config{Disk: d, PoolPages: poolPages, Rec: rec})
	if err := k.AddSegment(1, 0, segPages); err != nil {
		t.Fatal(err)
	}
	p := &tracePager{}
	k.SetPager(p)
	return k, d, p, rec
}

func obj(off, length uint32) types.ObjectID {
	return types.ObjectID{Segment: 1, Offset: off, Length: length}
}

func TestReadWriteThroughPool(t *testing.T) {
	k, _, _, _ := testKernel(t, 8, 16)
	if err := k.Write(obj(100, 5), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := k.Read(obj(100, 5))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Errorf("read %q", got)
	}
}

func TestFirstDirtyReportedOnce(t *testing.T) {
	k, _, p, _ := testKernel(t, 8, 16)
	_ = k.Write(obj(0, 4), []byte("aaaa"))
	_ = k.Write(obj(4, 4), []byte("bbbb")) // same page, already dirty
	if len(p.firstDirty) != 1 {
		t.Errorf("first-dirty reported %d times: %v", len(p.firstDirty), p.firstDirty)
	}
	_ = k.Write(obj(types.PageSize, 4), []byte("cccc")) // second page
	if len(p.firstDirty) != 2 {
		t.Errorf("second page first-dirty missing: %v", p.firstDirty)
	}
}

func TestEvictionAsksPagerAndWritesHeader(t *testing.T) {
	k, d, p, _ := testKernel(t, 2, 16)
	p.header = 4242
	// Dirty page 0, then fault enough pages to force its eviction.
	if err := k.Write(obj(0, 4), []byte("dirt")); err != nil {
		t.Fatal(err)
	}
	for pg := uint32(1); pg < 4; pg++ {
		if _, err := k.Read(obj(pg*types.PageSize, 4)); err != nil {
			t.Fatal(err)
		}
	}
	if len(p.writeReqs) == 0 {
		t.Fatal("dirty eviction never asked the pager for permission")
	}
	if len(p.written) == 0 {
		t.Fatal("completion message missing")
	}
	// The header handed back by the pager must be on disk.
	h, err := d.ReadHeader(0)
	if err != nil {
		t.Fatal(err)
	}
	if h != 4242 {
		t.Errorf("sector header %d, want 4242", h)
	}
	// And the data must be durable.
	buf := make([]byte, disk.SectorSize)
	if _, err := d.Read(0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:4], []byte("dirt")) {
		t.Errorf("evicted data %q", buf[:4])
	}
}

func TestPagerVetoBlocksEviction(t *testing.T) {
	k, _, p, _ := testKernel(t, 1, 16)
	p.reqErr = errors.New("log force failed")
	if err := k.Write(obj(0, 4), []byte("dirt")); err != nil {
		t.Fatal(err)
	}
	// Faulting another page needs the only frame; the pager's veto must
	// surface as an error, never a silent unlogged write.
	if _, err := k.Read(obj(types.PageSize, 4)); err == nil {
		t.Fatal("eviction proceeded despite pager veto")
	}
}

func TestPinPreventsEviction(t *testing.T) {
	k, _, _, _ := testKernel(t, 2, 16)
	if err := k.Pin(obj(0, 4)); err != nil {
		t.Fatal(err)
	}
	if err := k.Pin(obj(types.PageSize, 4)); err != nil {
		t.Fatal(err)
	}
	// Pool full of pinned pages: the next fault must fail loudly.
	if _, err := k.Read(obj(2*types.PageSize, 4)); !errors.Is(err, ErrPoolPinned) {
		t.Fatalf("want ErrPoolPinned, got %v", err)
	}
	// Unpin one; the fault succeeds.
	if err := k.Unpin(obj(0, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Read(obj(2*types.PageSize, 4)); err != nil {
		t.Fatalf("after unpin: %v", err)
	}
}

func TestPinsNest(t *testing.T) {
	k, _, _, _ := testKernel(t, 4, 16)
	o := obj(0, 4)
	if err := k.Pin(o); err != nil {
		t.Fatal(err)
	}
	if err := k.Pin(o); err != nil {
		t.Fatal(err)
	}
	if err := k.Unpin(o); err != nil {
		t.Fatal(err)
	}
	if k.PinnedPages() != 1 {
		t.Errorf("pinned pages %d, want 1 (nested)", k.PinnedPages())
	}
	if err := k.Unpin(o); err != nil {
		t.Fatal(err)
	}
	if k.PinnedPages() != 0 {
		t.Errorf("pinned pages %d, want 0", k.PinnedPages())
	}
}

func TestSequentialVsRandomAccounting(t *testing.T) {
	k, _, _, rec := testKernel(t, 64, 64)
	// Sequential faults.
	for pg := uint32(0); pg < 10; pg++ {
		if _, err := k.Read(obj(pg*types.PageSize, 4)); err != nil {
			t.Fatal(err)
		}
	}
	c := rec.Snapshot(stats.PreCommit)
	if c[simclock.SequentialRead] != 9 || c[simclock.RandomPageIO] != 1 {
		t.Errorf("sequential run: seq=%g random=%g (want 9/1)", c[simclock.SequentialRead], c[simclock.RandomPageIO])
	}
	rec.Reset()
	// Random faults on a fresh kernel.
	k2, _, _, rec2 := testKernel(t, 64, 64)
	for _, pg := range []uint32{5, 50, 17, 33, 2} {
		if _, err := k2.Read(obj(pg*types.PageSize, 4)); err != nil {
			t.Fatal(err)
		}
	}
	c2 := rec2.Snapshot(stats.PreCommit)
	if c2[simclock.RandomPageIO] != 5 {
		t.Errorf("random run: random=%g (want 5)", c2[simclock.RandomPageIO])
	}
}

func TestLRUEvictsOldest(t *testing.T) {
	k, _, _, _ := testKernel(t, 2, 16)
	if _, err := k.Read(obj(0, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Read(obj(types.PageSize, 4)); err != nil {
		t.Fatal(err)
	}
	// Touch page 0 so page 1 is the LRU victim.
	if _, err := k.Read(obj(0, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Read(obj(2*types.PageSize, 4)); err != nil {
		t.Fatal(err)
	}
	faultsBefore, _ := k.Stats()
	if _, err := k.Read(obj(0, 4)); err != nil { // still resident: no fault
		t.Fatal(err)
	}
	faultsAfter, _ := k.Stats()
	if faultsAfter != faultsBefore {
		t.Error("recently used page was evicted")
	}
}

func TestWriteDirectCoherent(t *testing.T) {
	k, d, _, _ := testKernel(t, 4, 16)
	// Make the page resident and dirty first.
	if err := k.Write(obj(0, 4), []byte("old!")); err != nil {
		t.Fatal(err)
	}
	if err := k.WriteDirect(obj(0, 4), []byte("new!"), 77); err != nil {
		t.Fatal(err)
	}
	// Both the resident copy and the disk must agree.
	got, err := k.Read(obj(0, 4))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new!" {
		t.Errorf("resident copy %q", got)
	}
	buf := make([]byte, disk.SectorSize)
	h, err := d.Read(0, buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:4]) != "new!" || h != 77 {
		t.Errorf("disk %q header %d", buf[:4], h)
	}
}

func TestCrashDropsVolatileState(t *testing.T) {
	k, d, _, _ := testKernel(t, 4, 16)
	if err := k.Write(obj(0, 4), []byte("lost")); err != nil {
		t.Fatal(err)
	}
	k.Crash()
	// The dirty page never reached disk.
	buf := make([]byte, disk.SectorSize)
	if _, err := d.Read(0, buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(buf[:4], []byte("lost")) {
		t.Error("dirty page survived the crash without a write-back")
	}
	if len(k.DirtyPages()) != 0 {
		t.Error("dirty pages survive crash")
	}
}

func TestFlushAll(t *testing.T) {
	k, d, _, _ := testKernel(t, 8, 16)
	for pg := uint32(0); pg < 3; pg++ {
		if err := k.Write(obj(pg*types.PageSize, 4), []byte("data")); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if len(k.DirtyPages()) != 0 {
		t.Errorf("dirty pages after flush: %v", k.DirtyPages())
	}
	buf := make([]byte, disk.SectorSize)
	for pg := disk.Addr(0); pg < 3; pg++ {
		if _, err := d.Read(pg, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf[:4], []byte("data")) {
			t.Errorf("page %d not flushed", pg)
		}
	}
}

func TestSegmentBounds(t *testing.T) {
	k, _, _, _ := testKernel(t, 4, 2)
	if _, err := k.Read(obj(2*types.PageSize, 4)); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("read past segment: %v", err)
	}
	if _, err := k.Read(types.ObjectID{Segment: 9, Offset: 0, Length: 4}); !errors.Is(err, ErrNoSegment) {
		t.Errorf("unknown segment: %v", err)
	}
}

func TestObjectSpanningPages(t *testing.T) {
	k, _, _, _ := testKernel(t, 4, 16)
	o := obj(types.PageSize-2, 6) // straddles pages 0 and 1
	if err := k.Write(o, []byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	got, err := k.Read(o)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "abcdef" {
		t.Errorf("spanning read %q", got)
	}
}
