// Package lock implements transaction locking as TABS data servers use it
// (paper §2.1.3, §3.1.1).
//
// TABS synchronizes transactions by locking: to access an object a
// transaction first obtains a lock on it, granted unless another
// transaction holds an incompatible lock. Servers implement locking
// *locally* — each data server owns a LockManager instance and may tailor
// it with type-specific lock modes and compatibility relations for more
// concurrency (§2.1.3). Deadlock is resolved by time-outs, not detection,
// as in TABS ("like many other systems, currently relies on time-outs").
//
// Subtransactions behave as completely separate transactions with respect
// to synchronization (§2.1.3), so the lock owner is the full TransID, not
// its top-level ancestor; two subtransactions of one parent can deadlock
// against each other, exactly as the paper warns.
//
// The lock table is sharded: objects hash into independently-locked
// buckets, each with its own object map and per-object FIFO wait queues,
// so concurrent acquisitions of unrelated objects never contend on a
// manager-wide mutex. A separate small table shards the per-transaction
// held-object index by TransID, keeping ReleaseAll proportional to the
// locks actually held rather than to the bucket count. Lock ordering is
// strictly bucket → TID shard; no path holds a TID shard while taking a
// bucket, so sweeps (Close, ReleaseAll) iterate buckets without a global
// freeze.
package lock

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tabs/internal/trace"
	"tabs/internal/types"
)

// Mode is a lock mode. Read and Write are predefined; data servers using
// type-specific locking may define additional modes (values ≥ ModeUser) and
// supply their own compatibility relation.
type Mode int

// Predefined modes.
const (
	ModeNone  Mode = iota // no lock
	ModeRead              // shared
	ModeWrite             // exclusive
	// ModeUser is the first mode value available for type-specific lock
	// modes (§2.1.3: "implementors can obtain increased concurrency by
	// defining type-specific lock modes").
	ModeUser
)

// String names the predefined modes.
func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "none"
	case ModeRead:
		return "read"
	case ModeWrite:
		return "write"
	default:
		return string(m.AppendString(make([]byte, 0, 16)))
	}
}

// AppendString appends the String form to b without allocating.
func (m Mode) AppendString(b []byte) []byte {
	switch m {
	case ModeNone:
		return append(b, "none"...)
	case ModeRead:
		return append(b, "read"...)
	case ModeWrite:
		return append(b, "write"...)
	default:
		b = append(b, "user("...)
		b = strconv.AppendInt(b, int64(m), 10)
		return append(b, ')')
	}
}

// Compat reports whether a lock held in mode `held` permits another
// transaction to acquire mode `requested`. It must be symmetric for
// correctness of upgrades.
type Compat func(held, requested Mode) bool

// ReadWriteCompat is the standard shared/exclusive relation: reads share,
// everything else conflicts.
func ReadWriteCompat(held, requested Mode) bool {
	return held == ModeRead && requested == ModeRead
}

// Errors returned by lock acquisition.
var (
	// ErrTimeout reports that the lock wait exceeded the manager's
	// time-out. TABS treats this as presumed deadlock; the caller
	// normally aborts the transaction (§2.1.3).
	ErrTimeout = errors.New("lock: wait timed out (presumed deadlock)")
	// ErrClosed reports that the manager was shut down (node crash).
	ErrClosed = errors.New("lock: manager closed")
)

// Stats counts lock-manager events for the concurrency ablations.
type Stats struct {
	Grants    int64 // immediate or eventual grants
	Waits     int64 // acquisitions that had to wait
	Timeouts  int64 // waits that timed out
	Conflicts int64 // conditional attempts refused
}

type holder struct {
	modes map[Mode]int // mode -> acquisition count (for reentrancy)
}

type waiter struct {
	tid   types.TransID
	mode  Mode
	ready chan struct{} // closed when granted
	err   error
}

type entry struct {
	holders map[types.TransID]*holder
	queue   []*waiter
}

// numBuckets shards the object table; a power of two so the bucket index
// is a mask. 64 buckets keeps per-bucket contention negligible even at a
// few hundred concurrent transactions while the table stays small enough
// for sweeps to walk cheaply.
const numBuckets = 64

// bucket is one independently-locked slice of the object table.
type bucket struct {
	mu      sync.Mutex
	objects map[types.ObjectID]*entry
}

// numTIDShards shards the per-transaction held-object index.
const numTIDShards = 16

// tidShard holds the held-object sets of the transactions hashing to it.
type tidShard struct {
	mu   sync.Mutex
	held map[types.TransID]map[types.ObjectID]struct{}
}

// tracing bundles the tracer with its cached counter handles so the hot
// path bumps atomics instead of taking the tracer mutex per event.
type tracing struct {
	tr        *trace.Tracer
	grants    *trace.Counter
	waits     *trace.Counter
	timeouts  *trace.Counter
	conflicts *trace.Counter
}

// Manager is one data server's lock table. The zero value is not usable;
// call New.
type Manager struct {
	compat  Compat
	timeout atomic.Int64 // nanoseconds
	closed  atomic.Bool
	trc     atomic.Pointer[tracing]

	buckets [numBuckets]bucket
	tids    [numTIDShards]tidShard

	grants    atomic.Int64
	waits     atomic.Int64
	timeouts  atomic.Int64
	conflicts atomic.Int64
}

// DefaultTimeout is the lock wait time-out when none is configured. The
// paper notes time-outs are "explicitly set by system users"; tests set
// much shorter values.
const DefaultTimeout = 10 * time.Second

// New returns a lock manager with the standard read/write compatibility
// relation and the default time-out.
func New() *Manager { return NewTyped(ReadWriteCompat, DefaultTimeout) }

// NewTyped returns a lock manager with a type-specific compatibility
// relation and time-out.
func NewTyped(compat Compat, timeout time.Duration) *Manager {
	if compat == nil {
		compat = ReadWriteCompat
	}
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	m := &Manager{compat: compat}
	m.timeout.Store(int64(timeout))
	for i := range m.buckets {
		m.buckets[i].objects = make(map[types.ObjectID]*entry)
	}
	for i := range m.tids {
		m.tids[i].held = make(map[types.TransID]map[types.ObjectID]struct{})
	}
	return m
}

// AttachTracer points the manager's lock.block/lock.timeout spans and
// counters at tr. A nil tracer disables them.
func (m *Manager) AttachTracer(tr *trace.Tracer) {
	if tr == nil {
		m.trc.Store(nil)
		return
	}
	m.trc.Store(&tracing{
		tr:        tr,
		grants:    tr.Counter("lock.grants"),
		waits:     tr.Counter("lock.waits"),
		timeouts:  tr.Counter("lock.timeouts"),
		conflicts: tr.Counter("lock.conflicts"),
	})
}

// SetTimeout changes the lock wait time-out for subsequent acquisitions.
func (m *Manager) SetTimeout(d time.Duration) {
	if d > 0 {
		m.timeout.Store(int64(d))
	}
}

// Stats returns a snapshot of lock-manager event counts.
func (m *Manager) Stats() Stats {
	return Stats{
		Grants:    m.grants.Load(),
		Waits:     m.waits.Load(),
		Timeouts:  m.timeouts.Load(),
		Conflicts: m.conflicts.Load(),
	}
}

// bucketFor hashes obj to its bucket.
func (m *Manager) bucketFor(obj types.ObjectID) *bucket {
	h := uint32(obj.Segment)*0x9e3779b1 ^ obj.Offset*0x85ebca77 ^ obj.Length*0xc2b2ae3d
	h ^= h >> 16
	return &m.buckets[h&(numBuckets-1)]
}

// tidShardFor hashes tid to its shard of the held-object index.
func (m *Manager) tidShardFor(tid types.TransID) *tidShard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(tid.Node); i++ {
		h = (h ^ uint64(tid.Node[i])) * 1099511628211
	}
	h ^= tid.Seq * 0x9e3779b97f4a7c15
	return &m.tids[h&(numTIDShards-1)]
}

// grantable reports whether tid may take mode on e right now. Caller holds
// the bucket mutex.
func (m *Manager) grantable(e *entry, tid types.TransID, mode Mode) bool {
	for hTID, h := range e.holders {
		if hTID == tid {
			continue // own locks never conflict (reentrancy/upgrade)
		}
		for held := range h.modes {
			if !m.compat(held, mode) {
				return false
			}
		}
	}
	return true
}

// grant records the lock. Caller holds the bucket mutex; the TID shard is
// taken nested (bucket → shard is the package lock order).
func (m *Manager) grant(e *entry, obj types.ObjectID, tid types.TransID, mode Mode) {
	h := e.holders[tid]
	if h == nil {
		h = &holder{modes: make(map[Mode]int)}
		e.holders[tid] = h
	}
	h.modes[mode]++
	ts := m.tidShardFor(tid)
	ts.mu.Lock()
	set := ts.held[tid]
	if set == nil {
		set = make(map[types.ObjectID]struct{})
		ts.held[tid] = set
	}
	set[obj] = struct{}{}
	ts.mu.Unlock()
	m.grants.Add(1)
	if trc := m.trc.Load(); trc != nil {
		trc.grants.Add(1)
	}
}

// Lock acquires mode on obj for tid, waiting (up to the time-out) if an
// incompatible lock is held. This is LockObject of Table 3-1.
func (m *Manager) Lock(tid types.TransID, obj types.ObjectID, mode Mode) error {
	b := m.bucketFor(obj)
	b.mu.Lock()
	// Re-checked under the bucket mutex: Close sets the flag before
	// sweeping buckets, so seeing it clear here means our bucket's sweep
	// is still to come and will fail any waiter we enqueue.
	if m.closed.Load() {
		b.mu.Unlock()
		return ErrClosed
	}
	e := b.objects[obj]
	if e == nil {
		e = &entry{holders: make(map[types.TransID]*holder)}
		b.objects[obj] = e
	}
	// Grant immediately only if no earlier waiter would be starved by a
	// compatible barge-in... TABS servers are single-threaded coroutine
	// monitors, so simple compatibility-grant matches its behaviour.
	if m.grantable(e, tid, mode) && len(e.queue) == 0 {
		m.grant(e, obj, tid, mode)
		b.mu.Unlock()
		return nil
	}
	// Upgrades bypass the queue: a transaction already holding the object
	// must not queue behind waiters it blocks (classic upgrade rule).
	if _, holds := e.holders[tid]; holds && m.grantable(e, tid, mode) {
		m.grant(e, obj, tid, mode)
		b.mu.Unlock()
		return nil
	}
	w := &waiter{tid: tid, mode: mode, ready: make(chan struct{})}
	e.queue = append(e.queue, w)
	m.waits.Add(1)
	trc := m.trc.Load()
	var sp *trace.ActiveSpan
	if trc != nil {
		trc.waits.Add(1)
		// The block span names the transactions holding the object, the
		// first question a stuck-transaction investigation asks.
		sp = trace.SetTIDAppend(trc.tr.Begin("lock", "block"), tid)
		trace.AnnotateAppend(sp, "obj=", obj)
		trace.AnnotateAppend(sp, "mode=", mode)
		for hTID := range e.holders {
			trace.AnnotateAppend(sp, "holder=", hTID)
		}
	}
	timeout := time.Duration(m.timeout.Load())
	b.mu.Unlock()

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-w.ready:
		sp.EndErr(w.err)
		if w.err != nil {
			return w.err
		}
		return nil
	case <-timer.C:
		b.mu.Lock()
		// Re-check: the grant may have raced the timer.
		select {
		case <-w.ready:
			b.mu.Unlock()
			sp.EndErr(w.err)
			if w.err != nil {
				return w.err
			}
			return nil
		default:
		}
		removeWaiter(e, w)
		m.timeouts.Add(1)
		if trc != nil {
			trc.timeouts.Add(1)
		}
		// Our departure may unblock waiters behind us.
		m.wakeLocked(obj, e)
		b.mu.Unlock()
		err := fmt.Errorf("%w: %v on %v", ErrTimeout, mode, obj)
		sp.Annotate("timeout=true").EndErr(err)
		return err
	}
}

// removeWaiter deletes w from e's queue. Caller holds the bucket mutex.
func removeWaiter(e *entry, w *waiter) {
	for i, q := range e.queue {
		if q == w {
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			return
		}
	}
}

// TryLock attempts to acquire mode on obj for tid and returns false
// immediately if unavailable. This is ConditionallyLockObject of Table 3-1,
// added for the weak queue server (§4.2).
func (m *Manager) TryLock(tid types.TransID, obj types.ObjectID, mode Mode) bool {
	b := m.bucketFor(obj)
	b.mu.Lock()
	defer b.mu.Unlock()
	if m.closed.Load() {
		return false
	}
	e := b.objects[obj]
	if e == nil {
		e = &entry{holders: make(map[types.TransID]*holder)}
		b.objects[obj] = e
	}
	_, holds := e.holders[tid]
	if m.grantable(e, tid, mode) && (len(e.queue) == 0 || holds) {
		m.grant(e, obj, tid, mode)
		return true
	}
	m.conflicts.Add(1)
	if trc := m.trc.Load(); trc != nil {
		trc.conflicts.Add(1)
	}
	return false
}

// IsLocked reports whether any transaction holds any lock on obj. This is
// IsObjectLocked of Table 3-1, which the weak queue and IO servers use to
// observe transaction progress (§4.2, §4.3).
func (m *Manager) IsLocked(obj types.ObjectID) bool {
	b := m.bucketFor(obj)
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.objects[obj]
	return e != nil && len(e.holders) > 0
}

// HeldBy reports whether tid holds a lock on obj, and in which modes.
func (m *Manager) HeldBy(tid types.TransID, obj types.ObjectID) (bool, []Mode) {
	b := m.bucketFor(obj)
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.objects[obj]
	if e == nil {
		return false, nil
	}
	h := e.holders[tid]
	if h == nil {
		return false, nil
	}
	modes := make([]Mode, 0, len(h.modes))
	for mode := range h.modes {
		modes = append(modes, mode)
	}
	return true, modes
}

// Held returns every object tid currently holds locks on.
func (m *Manager) Held(tid types.TransID) []types.ObjectID {
	ts := m.tidShardFor(tid)
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]types.ObjectID, 0, len(ts.held[tid]))
	for obj := range ts.held[tid] {
		out = append(out, obj)
	}
	return out
}

// ReleaseAll drops every lock held by tid and wakes eligible waiters. The
// server library calls this automatically at commit or abort time (§3.1.1:
// "All unlocking is done automatically by the server library"). Only the
// buckets that actually hold tid's locks are visited; concurrent
// acquisitions in other buckets proceed undisturbed.
func (m *Manager) ReleaseAll(tid types.TransID) {
	ts := m.tidShardFor(tid)
	ts.mu.Lock()
	set := ts.held[tid]
	delete(ts.held, tid)
	ts.mu.Unlock()
	for obj := range set {
		b := m.bucketFor(obj)
		b.mu.Lock()
		e := b.objects[obj]
		if e == nil {
			b.mu.Unlock()
			continue
		}
		delete(e.holders, tid)
		m.wakeLocked(obj, e)
		if len(e.holders) == 0 && len(e.queue) == 0 {
			delete(b.objects, obj)
		}
		b.mu.Unlock()
	}
}

// wakeLocked grants queued waiters in FIFO order while they are
// grantable: the scan stops at the first incompatible waiter, so a
// release wakes exactly the compatible FIFO prefix — never the whole
// queue. Caller holds the bucket mutex.
func (m *Manager) wakeLocked(obj types.ObjectID, e *entry) {
	for len(e.queue) > 0 {
		w := e.queue[0]
		if !m.grantable(e, w.tid, w.mode) {
			return
		}
		e.queue = e.queue[1:]
		m.grant(e, obj, w.tid, w.mode)
		close(w.ready)
	}
}

// Close fails all waiters and empties the table; used by Node.Crash to
// model loss of the volatile lock state. Buckets are swept one at a time —
// no global freeze.
func (m *Manager) Close() {
	m.closed.Store(true)
	for i := range m.buckets {
		b := &m.buckets[i]
		b.mu.Lock()
		for _, e := range b.objects {
			for _, w := range e.queue {
				w.err = ErrClosed
				close(w.ready)
			}
			e.queue = nil
		}
		b.objects = make(map[types.ObjectID]*entry)
		b.mu.Unlock()
	}
	for i := range m.tids {
		ts := &m.tids[i]
		ts.mu.Lock()
		ts.held = make(map[types.TransID]map[types.ObjectID]struct{})
		ts.mu.Unlock()
	}
}
