// Package lock implements transaction locking as TABS data servers use it
// (paper §2.1.3, §3.1.1).
//
// TABS synchronizes transactions by locking: to access an object a
// transaction first obtains a lock on it, granted unless another
// transaction holds an incompatible lock. Servers implement locking
// *locally* — each data server owns a LockManager instance and may tailor
// it with type-specific lock modes and compatibility relations for more
// concurrency (§2.1.3). Deadlock is resolved by time-outs, not detection,
// as in TABS ("like many other systems, currently relies on time-outs").
//
// Subtransactions behave as completely separate transactions with respect
// to synchronization (§2.1.3), so the lock owner is the full TransID, not
// its top-level ancestor; two subtransactions of one parent can deadlock
// against each other, exactly as the paper warns.
package lock

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"tabs/internal/trace"
	"tabs/internal/types"
)

// Mode is a lock mode. Read and Write are predefined; data servers using
// type-specific locking may define additional modes (values ≥ ModeUser) and
// supply their own compatibility relation.
type Mode int

// Predefined modes.
const (
	ModeNone  Mode = iota // no lock
	ModeRead              // shared
	ModeWrite             // exclusive
	// ModeUser is the first mode value available for type-specific lock
	// modes (§2.1.3: "implementors can obtain increased concurrency by
	// defining type-specific lock modes").
	ModeUser
)

// String names the predefined modes.
func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "none"
	case ModeRead:
		return "read"
	case ModeWrite:
		return "write"
	default:
		return fmt.Sprintf("user(%d)", int(m))
	}
}

// Compat reports whether a lock held in mode `held` permits another
// transaction to acquire mode `requested`. It must be symmetric for
// correctness of upgrades.
type Compat func(held, requested Mode) bool

// ReadWriteCompat is the standard shared/exclusive relation: reads share,
// everything else conflicts.
func ReadWriteCompat(held, requested Mode) bool {
	return held == ModeRead && requested == ModeRead
}

// Errors returned by lock acquisition.
var (
	// ErrTimeout reports that the lock wait exceeded the manager's
	// time-out. TABS treats this as presumed deadlock; the caller
	// normally aborts the transaction (§2.1.3).
	ErrTimeout = errors.New("lock: wait timed out (presumed deadlock)")
	// ErrClosed reports that the manager was shut down (node crash).
	ErrClosed = errors.New("lock: manager closed")
)

// Stats counts lock-manager events for the concurrency ablations.
type Stats struct {
	Grants    int64 // immediate or eventual grants
	Waits     int64 // acquisitions that had to wait
	Timeouts  int64 // waits that timed out
	Conflicts int64 // conditional attempts refused
}

type holder struct {
	modes map[Mode]int // mode -> acquisition count (for reentrancy)
}

type waiter struct {
	tid   types.TransID
	mode  Mode
	ready chan struct{} // closed when granted
	err   error
}

type entry struct {
	holders map[types.TransID]*holder
	queue   []*waiter
}

// Manager is one data server's lock table. The zero value is not usable;
// call New.
type Manager struct {
	mu      sync.Mutex
	compat  Compat
	timeout time.Duration
	objects map[types.ObjectID]*entry
	byTID   map[types.TransID]map[types.ObjectID]struct{}
	stats   Stats
	tr      *trace.Tracer
	closed  bool
}

// DefaultTimeout is the lock wait time-out when none is configured. The
// paper notes time-outs are "explicitly set by system users"; tests set
// much shorter values.
const DefaultTimeout = 10 * time.Second

// New returns a lock manager with the standard read/write compatibility
// relation and the default time-out.
func New() *Manager { return NewTyped(ReadWriteCompat, DefaultTimeout) }

// NewTyped returns a lock manager with a type-specific compatibility
// relation and time-out.
func NewTyped(compat Compat, timeout time.Duration) *Manager {
	if compat == nil {
		compat = ReadWriteCompat
	}
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	return &Manager{
		compat:  compat,
		timeout: timeout,
		objects: make(map[types.ObjectID]*entry),
		byTID:   make(map[types.TransID]map[types.ObjectID]struct{}),
	}
}

// AttachTracer points the manager's lock.block/lock.timeout spans and
// counters at tr. A nil tracer disables them.
func (m *Manager) AttachTracer(tr *trace.Tracer) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tr = tr
}

// SetTimeout changes the lock wait time-out for subsequent acquisitions.
func (m *Manager) SetTimeout(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if d > 0 {
		m.timeout = d
	}
}

// Stats returns a snapshot of lock-manager event counts.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// grantable reports whether tid may take mode on e right now. Caller holds
// m.mu.
func (m *Manager) grantable(e *entry, tid types.TransID, mode Mode) bool {
	for hTID, h := range e.holders {
		if hTID == tid {
			continue // own locks never conflict (reentrancy/upgrade)
		}
		for held := range h.modes {
			if !m.compat(held, mode) {
				return false
			}
		}
	}
	return true
}

// grant records the lock. Caller holds m.mu.
func (m *Manager) grant(e *entry, obj types.ObjectID, tid types.TransID, mode Mode) {
	h := e.holders[tid]
	if h == nil {
		h = &holder{modes: make(map[Mode]int)}
		e.holders[tid] = h
	}
	h.modes[mode]++
	set := m.byTID[tid]
	if set == nil {
		set = make(map[types.ObjectID]struct{})
		m.byTID[tid] = set
	}
	set[obj] = struct{}{}
	m.stats.Grants++
	m.tr.Count("lock.grants", 1)
}

// Lock acquires mode on obj for tid, waiting (up to the time-out) if an
// incompatible lock is held. This is LockObject of Table 3-1.
func (m *Manager) Lock(tid types.TransID, obj types.ObjectID, mode Mode) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	e := m.objects[obj]
	if e == nil {
		e = &entry{holders: make(map[types.TransID]*holder)}
		m.objects[obj] = e
	}
	// Grant immediately only if no earlier waiter would be starved by a
	// compatible barge-in... TABS servers are single-threaded coroutine
	// monitors, so simple compatibility-grant matches its behaviour.
	if m.grantable(e, tid, mode) && len(e.queue) == 0 {
		m.grant(e, obj, tid, mode)
		m.mu.Unlock()
		return nil
	}
	// Upgrades bypass the queue: a transaction already holding the object
	// must not queue behind waiters it blocks (classic upgrade rule).
	if _, holds := e.holders[tid]; holds && m.grantable(e, tid, mode) {
		m.grant(e, obj, tid, mode)
		m.mu.Unlock()
		return nil
	}
	w := &waiter{tid: tid, mode: mode, ready: make(chan struct{})}
	e.queue = append(e.queue, w)
	m.stats.Waits++
	m.tr.Count("lock.waits", 1)
	// The block span names the transactions holding the object, the first
	// question a stuck-transaction investigation asks.
	sp := m.tr.Begin("lock", "block").SetTID(tid).Annotatef("obj=%v", obj).Annotatef("mode=%v", mode)
	for hTID := range e.holders {
		sp.Annotatef("holder=%v", hTID)
	}
	timeout := m.timeout
	m.mu.Unlock()

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-w.ready:
		sp.EndErr(w.err)
		if w.err != nil {
			return w.err
		}
		return nil
	case <-timer.C:
		m.mu.Lock()
		// Re-check: the grant may have raced the timer.
		select {
		case <-w.ready:
			m.mu.Unlock()
			sp.EndErr(w.err)
			if w.err != nil {
				return w.err
			}
			return nil
		default:
		}
		m.removeWaiter(e, w)
		m.stats.Timeouts++
		m.tr.Count("lock.timeouts", 1)
		// Our departure may unblock waiters behind us.
		m.wakeLocked(obj, e)
		m.mu.Unlock()
		err := fmt.Errorf("%w: %v on %v", ErrTimeout, mode, obj)
		sp.Annotate("timeout=true").EndErr(err)
		return err
	}
}

// removeWaiter deletes w from e's queue. Caller holds m.mu.
func (m *Manager) removeWaiter(e *entry, w *waiter) {
	for i, q := range e.queue {
		if q == w {
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			return
		}
	}
}

// TryLock attempts to acquire mode on obj for tid and returns false
// immediately if unavailable. This is ConditionallyLockObject of Table 3-1,
// added for the weak queue server (§4.2).
func (m *Manager) TryLock(tid types.TransID, obj types.ObjectID, mode Mode) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	e := m.objects[obj]
	if e == nil {
		e = &entry{holders: make(map[types.TransID]*holder)}
		m.objects[obj] = e
	}
	_, holds := e.holders[tid]
	if m.grantable(e, tid, mode) && (len(e.queue) == 0 || holds) {
		m.grant(e, obj, tid, mode)
		return true
	}
	m.stats.Conflicts++
	m.tr.Count("lock.conflicts", 1)
	return false
}

// IsLocked reports whether any transaction holds any lock on obj. This is
// IsObjectLocked of Table 3-1, which the weak queue and IO servers use to
// observe transaction progress (§4.2, §4.3).
func (m *Manager) IsLocked(obj types.ObjectID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.objects[obj]
	return e != nil && len(e.holders) > 0
}

// HeldBy reports whether tid holds a lock on obj, and in which modes.
func (m *Manager) HeldBy(tid types.TransID, obj types.ObjectID) (bool, []Mode) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.objects[obj]
	if e == nil {
		return false, nil
	}
	h := e.holders[tid]
	if h == nil {
		return false, nil
	}
	modes := make([]Mode, 0, len(h.modes))
	for mode := range h.modes {
		modes = append(modes, mode)
	}
	return true, modes
}

// Held returns every object tid currently holds locks on.
func (m *Manager) Held(tid types.TransID) []types.ObjectID {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]types.ObjectID, 0, len(m.byTID[tid]))
	for obj := range m.byTID[tid] {
		out = append(out, obj)
	}
	return out
}

// ReleaseAll drops every lock held by tid and wakes eligible waiters. The
// server library calls this automatically at commit or abort time (§3.1.1:
// "All unlocking is done automatically by the server library").
func (m *Manager) ReleaseAll(tid types.TransID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for obj := range m.byTID[tid] {
		e := m.objects[obj]
		if e == nil {
			continue
		}
		delete(e.holders, tid)
		m.wakeLocked(obj, e)
		if len(e.holders) == 0 && len(e.queue) == 0 {
			delete(m.objects, obj)
		}
	}
	delete(m.byTID, tid)
}

// wakeLocked grants queued waiters in FIFO order while they are
// grantable. Caller holds m.mu.
func (m *Manager) wakeLocked(obj types.ObjectID, e *entry) {
	for len(e.queue) > 0 {
		w := e.queue[0]
		if !m.grantable(e, w.tid, w.mode) {
			return
		}
		e.queue = e.queue[1:]
		m.grant(e, obj, w.tid, w.mode)
		close(w.ready)
	}
}

// Close fails all waiters and empties the table; used by Node.Crash to
// model loss of the volatile lock state.
func (m *Manager) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	for _, e := range m.objects {
		for _, w := range e.queue {
			w.err = ErrClosed
			close(w.ready)
		}
		e.queue = nil
	}
	m.objects = make(map[types.ObjectID]*entry)
	m.byTID = make(map[types.TransID]map[types.ObjectID]struct{})
}
