package lock

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"tabs/internal/types"
)

func tid(n uint64) types.TransID {
	return types.TransID{Node: "n", Seq: n, RootNode: "n", RootSeq: n}
}

var objA = types.ObjectID{Segment: 1, Offset: 0, Length: 8}
var objB = types.ObjectID{Segment: 1, Offset: 8, Length: 8}

// waitForWaiters blocks until the manager has recorded at least n lock
// waits — an observable "waiter is queued" condition that replaces
// sleep-based synchronization in the tests below.
func waitForWaiters(t *testing.T, m *Manager, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for m.Stats().Waits < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d queued lock waiters (have %d)", n, m.Stats().Waits)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestReadersShare(t *testing.T) {
	m := New()
	for i := uint64(1); i <= 5; i++ {
		if err := m.Lock(tid(i), objA, ModeRead); err != nil {
			t.Fatalf("reader %d: %v", i, err)
		}
	}
}

func TestWriterExcludesReader(t *testing.T) {
	m := NewTyped(nil, 50*time.Millisecond)
	if err := m.Lock(tid(1), objA, ModeWrite); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(tid(2), objA, ModeRead); !errors.Is(err, ErrTimeout) {
		t.Fatalf("want timeout, got %v", err)
	}
}

func TestReaderExcludesWriter(t *testing.T) {
	m := NewTyped(nil, 50*time.Millisecond)
	if err := m.Lock(tid(1), objA, ModeRead); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(tid(2), objA, ModeWrite); !errors.Is(err, ErrTimeout) {
		t.Fatalf("want timeout, got %v", err)
	}
}

func TestReentrantAndUpgrade(t *testing.T) {
	m := New()
	if err := m.Lock(tid(1), objA, ModeRead); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(tid(1), objA, ModeRead); err != nil {
		t.Fatalf("reentrant read: %v", err)
	}
	if err := m.Lock(tid(1), objA, ModeWrite); err != nil {
		t.Fatalf("upgrade while sole holder: %v", err)
	}
}

func TestUpgradeBlockedByOtherReader(t *testing.T) {
	m := NewTyped(nil, 50*time.Millisecond)
	if err := m.Lock(tid(1), objA, ModeRead); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(tid(2), objA, ModeRead); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(tid(1), objA, ModeWrite); !errors.Is(err, ErrTimeout) {
		t.Fatalf("upgrade with another reader should time out, got %v", err)
	}
}

func TestWaiterWakesOnRelease(t *testing.T) {
	m := NewTyped(nil, 5*time.Second)
	if err := m.Lock(tid(1), objA, ModeWrite); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Lock(tid(2), objA, ModeWrite) }()
	waitForWaiters(t, m, 1)
	m.ReleaseAll(tid(1))
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("waiter: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter never woke")
	}
}

func TestFIFOWakeup(t *testing.T) {
	m := NewTyped(nil, 5*time.Second)
	if err := m.Lock(tid(1), objA, ModeWrite); err != nil {
		t.Fatal(err)
	}
	order := make(chan int, 2)
	go func() {
		if m.Lock(tid(2), objA, ModeWrite) == nil {
			order <- 2
			m.ReleaseAll(tid(2))
		}
	}()
	waitForWaiters(t, m, 1) // t2 queued first
	go func() {
		if m.Lock(tid(3), objA, ModeWrite) == nil {
			order <- 3
		}
	}()
	waitForWaiters(t, m, 2) // t3 queued behind t2
	m.ReleaseAll(tid(1))
	first := <-order
	second := <-order
	if first != 2 || second != 3 {
		t.Errorf("wakeup order %d,%d; want 2,3", first, second)
	}
}

func TestTryLock(t *testing.T) {
	m := New()
	if !m.TryLock(tid(1), objA, ModeWrite) {
		t.Fatal("free object should conditionally lock")
	}
	if m.TryLock(tid(2), objA, ModeRead) {
		t.Fatal("conflicting conditional lock granted")
	}
	if !m.TryLock(tid(1), objA, ModeWrite) {
		t.Fatal("reentrant conditional lock refused")
	}
	if !m.TryLock(tid(2), objB, ModeWrite) {
		t.Fatal("unrelated object refused")
	}
}

func TestIsLocked(t *testing.T) {
	m := New()
	if m.IsLocked(objA) {
		t.Fatal("fresh object reported locked")
	}
	if err := m.Lock(tid(1), objA, ModeRead); err != nil {
		t.Fatal(err)
	}
	if !m.IsLocked(objA) {
		t.Fatal("held object reported unlocked")
	}
	m.ReleaseAll(tid(1))
	if m.IsLocked(objA) {
		t.Fatal("released object reported locked")
	}
}

func TestReleaseAllWakesAndClears(t *testing.T) {
	m := New()
	for i := uint64(1); i <= 3; i++ {
		obj := types.ObjectID{Segment: 1, Offset: uint32(i) * 8, Length: 8}
		if err := m.Lock(tid(9), obj, ModeWrite); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(m.Held(tid(9))); got != 3 {
		t.Fatalf("held %d, want 3", got)
	}
	m.ReleaseAll(tid(9))
	if got := len(m.Held(tid(9))); got != 0 {
		t.Fatalf("after release held %d", got)
	}
}

func TestTypeSpecificCompat(t *testing.T) {
	const ModeIncr = ModeUser
	incrCompat := func(held, req Mode) bool {
		if held == ModeRead && req == ModeRead {
			return true
		}
		return held == ModeIncr && req == ModeIncr
	}
	m := NewTyped(incrCompat, 50*time.Millisecond)
	if err := m.Lock(tid(1), objA, ModeIncr); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(tid(2), objA, ModeIncr); err != nil {
		t.Fatalf("commuting increments should share: %v", err)
	}
	if err := m.Lock(tid(3), objA, ModeRead); !errors.Is(err, ErrTimeout) {
		t.Fatalf("read against increments should time out, got %v", err)
	}
}

func TestTimeoutDeparturePreservesQueue(t *testing.T) {
	m := NewTyped(nil, 100*time.Millisecond)
	if err := m.Lock(tid(1), objA, ModeWrite); err != nil {
		t.Fatal(err)
	}
	// t2 waits with a short deadline and will time out; t3 waits longer.
	errs := make(chan error, 2)
	go func() { errs <- m.Lock(tid(2), objA, ModeWrite) }()
	waitForWaiters(t, m, 1) // t2 queued under the short timeout
	m.SetTimeout(3 * time.Second)
	go func() { errs <- m.Lock(tid(3), objA, ModeWrite) }()
	waitForWaiters(t, m, 2) // t3 queued behind t2
	// t2 times out around 100ms; then release t1 and t3 must win.
	first := <-errs
	if !errors.Is(first, ErrTimeout) {
		t.Fatalf("want t2 timeout first, got %v", first)
	}
	m.ReleaseAll(tid(1))
	second := <-errs
	if second != nil {
		t.Fatalf("t3 should acquire after t2's departure: %v", second)
	}
}

func TestCloseFailsWaiters(t *testing.T) {
	m := NewTyped(nil, 5*time.Second)
	if err := m.Lock(tid(1), objA, ModeWrite); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Lock(tid(2), objA, ModeWrite) }()
	waitForWaiters(t, m, 1)
	m.Close()
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

// TestInvariantNoIncompatibleGrants hammers the manager with concurrent
// acquire/release cycles and asserts after each grant that the holder set
// never contains an incompatible pair — the lock manager's core safety
// property.
func TestInvariantNoIncompatibleGrants(t *testing.T) {
	m := NewTyped(nil, 20*time.Millisecond)
	objs := []types.ObjectID{objA, objB, {Segment: 2, Offset: 0, Length: 4}}
	var mu sync.Mutex
	holders := map[types.ObjectID]map[uint64]Mode{}
	for _, o := range objs {
		holders[o] = map[uint64]Mode{}
	}
	check := func(o types.ObjectID) {
		mu.Lock()
		defer mu.Unlock()
		writers, readers := 0, 0
		for _, mode := range holders[o] {
			switch mode {
			case ModeWrite:
				writers++
			case ModeRead:
				readers++
			}
		}
		if writers > 1 || (writers == 1 && readers > 0) {
			t.Errorf("incompatible holders on %v: %d writers %d readers", o, writers, readers)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				id := tid(uint64(seed)*1000 + uint64(i))
				o := objs[rng.Intn(len(objs))]
				mode := ModeRead
				if rng.Intn(2) == 0 {
					mode = ModeWrite
				}
				if err := m.Lock(id, o, mode); err != nil {
					continue // timeout: fine
				}
				mu.Lock()
				holders[o][id.Seq] = mode
				mu.Unlock()
				check(o)
				mu.Lock()
				delete(holders[o], id.Seq)
				mu.Unlock()
				m.ReleaseAll(id)
			}
		}(int64(w + 1))
	}
	wg.Wait()
}

func TestStatsCounting(t *testing.T) {
	m := NewTyped(nil, 20*time.Millisecond)
	_ = m.Lock(tid(1), objA, ModeWrite)
	_ = m.Lock(tid(2), objA, ModeWrite) // waits, times out
	m.TryLock(tid(3), objA, ModeWrite)  // conflict
	s := m.Stats()
	if s.Grants != 1 || s.Waits != 1 || s.Timeouts != 1 || s.Conflicts != 1 {
		t.Errorf("stats %+v", s)
	}
}
