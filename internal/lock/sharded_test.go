package lock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tabs/internal/types"
)

// Tests for the sharded lock table: wakeup fairness (no thundering herd,
// no writer starvation) and cross-bucket concurrency under the race
// detector.

func shardedTID(i int) types.TransID {
	return types.TransID{Node: "n", Seq: uint64(i), RootNode: "n", RootSeq: uint64(i)}
}

// TestWriterNotStarvedByReaderStream is the starvation regression test for
// the release-time wakeup policy: a queued writer must not be overtaken by
// readers that arrive after it, even though those readers are compatible
// with the lock's current holders. Release must wake only the compatible
// FIFO prefix — here, the writer alone.
func TestWriterNotStarvedByReaderStream(t *testing.T) {
	m := New()
	obj := types.ObjectID{Segment: 1, Offset: 0, Length: 8}
	holder := shardedTID(1)
	if err := m.Lock(holder, obj, ModeRead); err != nil {
		t.Fatalf("holder read: %v", err)
	}

	grantOrder := make(chan string, 16)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := m.Lock(shardedTID(2), obj, ModeWrite); err != nil {
			t.Errorf("writer: %v", err)
			return
		}
		grantOrder <- "writer"
		m.ReleaseAll(shardedTID(2))
	}()
	waitForWaits(t, m, 1)

	// Late readers: compatible with the current holder but behind the
	// writer in the queue. A thundering-herd broadcast would grant them
	// now; FIFO-prefix wakeup must hold them back.
	const readers = 4
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := m.Lock(shardedTID(10+i), obj, ModeRead); err != nil {
				t.Errorf("late reader %d: %v", i, err)
				return
			}
			grantOrder <- "reader"
			m.ReleaseAll(shardedTID(10 + i))
		}(i)
	}
	waitForWaits(t, m, 1+readers)

	m.ReleaseAll(holder)
	wg.Wait()
	close(grantOrder)
	first := <-grantOrder
	if first != "writer" {
		t.Fatalf("first grant after release went to a %s; writer was starved", first)
	}
}

// TestReleaseWakesOnlyCompatiblePrefix pins down the wakeup set: with a
// queue of [writer, reader, reader], releasing the holder grants exactly
// the writer; the readers stay queued until the writer releases.
func TestReleaseWakesOnlyCompatiblePrefix(t *testing.T) {
	m := New()
	obj := types.ObjectID{Segment: 1, Offset: 64, Length: 8}
	holder := shardedTID(1)
	if err := m.Lock(holder, obj, ModeWrite); err != nil {
		t.Fatalf("holder write: %v", err)
	}

	var granted atomic.Int32
	writerIn := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := m.Lock(shardedTID(2), obj, ModeWrite); err != nil {
			t.Errorf("writer: %v", err)
			return
		}
		granted.Add(1)
		<-writerIn
		m.ReleaseAll(shardedTID(2))
	}()
	waitForWaits(t, m, 1)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := m.Lock(shardedTID(10+i), obj, ModeRead); err != nil {
				t.Errorf("reader %d: %v", i, err)
				return
			}
			granted.Add(1)
			m.ReleaseAll(shardedTID(10 + i))
		}(i)
	}
	waitForWaits(t, m, 3)

	m.ReleaseAll(holder)
	deadline := time.Now().Add(time.Second)
	for granted.Load() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	// Give a broadcast-style bug a moment to over-grant.
	//tabslint:ignore sleepsync negative check: there is no event to wait on — the sleep gives an over-granting bug time to manifest before asserting nothing extra happened
	time.Sleep(20 * time.Millisecond)
	if g := granted.Load(); g != 1 {
		t.Fatalf("release granted %d waiters; want exactly the writer", g)
	}
	close(writerIn) // writer releases; readers drain
	wg.Wait()
	if g := granted.Load(); g != 3 {
		t.Fatalf("after writer release %d grants; want 3", g)
	}
}

func waitForWaits(t *testing.T, m *Manager, n int64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for m.Stats().Waits < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d queued waiters (have %d)", n, m.Stats().Waits)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestShardedStress drives concurrent acquire/upgrade/release traffic over
// objects spread across every bucket; run under -race it checks the
// sharded table's internal synchronization, and its invariant check
// catches incompatible simultaneous grants.
func TestShardedStress(t *testing.T) {
	m := NewTyped(nil, 2*time.Second)
	const (
		goroutines = 8
		objects    = 256 // spread over all 64 buckets
		iters      = 300
	)
	// writersOn tracks, per object, how many writers believe they hold it;
	// readers assert it is zero while they hold the read lock.
	var writersOn [objects]atomic.Int32

	objFor := func(i int) types.ObjectID {
		return types.ObjectID{Segment: types.SegmentID(i % 7), Offset: uint32(i) * 16, Length: 8}
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rnd := uint32(g*2654435761 + 1)
			next := func(n int) int {
				rnd = rnd*1664525 + 1013904223
				return int(rnd % uint32(n))
			}
			for i := 0; i < iters; i++ {
				tid := shardedTID(g*1000 + i)
				a, b := next(objects), next(objects)
				if err := m.Lock(tid, objFor(a), ModeRead); err != nil {
					t.Errorf("g%d read %d: %v", g, a, err)
					return
				}
				if n := writersOn[a].Load(); n != 0 {
					t.Errorf("g%d reads object %d while %d writers hold it", g, a, n)
				}
				switch next(3) {
				case 0: // upgrade own read to write
					if err := m.Lock(tid, objFor(a), ModeWrite); err == nil {
						writersOn[a].Add(1)
						writersOn[a].Add(-1)
					}
				case 1: // write a second object
					if err := m.Lock(tid, objFor(b), ModeWrite); err == nil {
						writersOn[b].Add(1)
						if held, _ := m.HeldBy(tid, objFor(b)); !held {
							t.Errorf("g%d granted write on %d but HeldBy denies it", g, b)
						}
						writersOn[b].Add(-1)
					}
				case 2: // conditional attempt
					if m.TryLock(tid, objFor(b), ModeWrite) {
						writersOn[b].Add(1)
						writersOn[b].Add(-1)
					}
				}
				m.ReleaseAll(tid)
				if held := m.Held(tid); len(held) != 0 {
					t.Errorf("g%d: %d locks survive ReleaseAll", g, len(held))
					return
				}
			}
		}(g)
	}
	wg.Wait()

	// The table must drain: no object entries, no held-object index.
	for i := 0; i < objects; i++ {
		if m.IsLocked(objFor(i)) {
			t.Fatalf("object %d still locked after all ReleaseAll", i)
		}
	}
}

// TestCloseDuringTraffic closes the manager while acquisitions are in
// flight; every blocked waiter must fail promptly with ErrClosed and no
// goroutine may hang (the per-bucket sweep race).
func TestCloseDuringTraffic(t *testing.T) {
	m := NewTyped(nil, 30*time.Second)
	obj := types.ObjectID{Segment: 3, Offset: 0, Length: 8}
	if err := m.Lock(shardedTID(1), obj, ModeWrite); err != nil {
		t.Fatalf("holder: %v", err)
	}
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			done <- m.Lock(shardedTID(2+i), obj, ModeWrite)
		}(i)
	}
	waitForWaits(t, m, 8)
	m.Close()
	for i := 0; i < 8; i++ {
		select {
		case err := <-done:
			if err == nil {
				t.Fatalf("waiter %d granted after Close", i)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("waiter %d hung after Close", i)
		}
	}
}

// TestBucketSpread sanity-checks the object hash: sequential page-aligned
// objects (the common data-server layout) must not collapse into a few
// buckets, or sharding buys nothing.
func TestBucketSpread(t *testing.T) {
	m := New()
	seen := make(map[*bucket]bool)
	for i := 0; i < 256; i++ {
		obj := types.ObjectID{Segment: 1, Offset: uint32(i) * types.PageSize, Length: 8}
		seen[m.bucketFor(obj)] = true
	}
	if len(seen) < numBuckets/2 {
		t.Fatalf("256 page-aligned objects hit only %d/%d buckets", len(seen), numBuckets)
	}
}
