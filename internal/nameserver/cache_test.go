package nameserver

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"tabs/internal/comm"
	"tabs/internal/trace"
	"tabs/internal/types"
)

// threeNodes wires three name servers over a MemNetwork.
func threeNodes(t *testing.T) map[types.NodeID]*Server {
	t.Helper()
	net := comm.NewMemNetwork()
	servers := map[types.NodeID]*Server{}
	for _, n := range []types.NodeID{"a", "b", "c"} {
		servers[n] = New(n, comm.New(n, net.Endpoint(n), nil))
	}
	return servers
}

func TestLookupCachesRemoteBinding(t *testing.T) {
	servers := threeNodes(t)
	tr := trace.New("a", 0)
	servers["a"].AttachTracer(tr)
	servers["b"].Register("thing", "array", "srv", types.ObjectID{Segment: 7})

	// First lookup broadcasts; every subsequent one answers from cache.
	for i := 0; i < 5; i++ {
		got, err := servers["a"].LookUp("thing", 1, time.Second)
		if err != nil || len(got) != 1 || got[0].Node != "b" {
			t.Fatalf("lookup %d: %v %v", i, got, err)
		}
	}
	m := tr.MetricsSnapshot()
	if b := m["ns.lookup.broadcasts"].Value; b != 1 {
		t.Errorf("broadcasts = %v, want 1 (first miss only)", b)
	}
	if h := m["ns.lookup.cache_hits"].Value; h != 4 {
		t.Errorf("cache hits = %v, want 4", h)
	}
}

func TestDeRegisterInvalidatesPeerCaches(t *testing.T) {
	servers := threeNodes(t)
	servers["b"].Register("mv", "array", "srv", types.ObjectID{})
	if _, err := servers["a"].LookUp("mv", 1, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, ok := servers["a"].cachedBindings("mv"); !ok {
		t.Fatal("binding not cached on a after lookup")
	}

	// The object "moves": b deregisters, c registers. The deregistration
	// broadcast must drop a's cached route so the next lookup re-resolves
	// to c instead of erroring or returning the stale home.
	servers["b"].DeRegister("mv", "srv", types.ObjectID{})
	servers["c"].Register("mv", "array", "srv", types.ObjectID{})
	deadline := time.Now().Add(2 * time.Second)
	for {
		got, err := servers["a"].LookUp("mv", 1, time.Second)
		if err == nil && len(got) == 1 && got[0].Node == "c" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stale route never re-resolved: %v %v", got, err)
		}
		servers["a"].Invalidate("mv")
	}
}

func TestStaleCacheReResolves(t *testing.T) {
	servers := threeNodes(t)
	servers["c"].Register("obj", "array", "real", types.ObjectID{})

	// Poison a's cache with a binding pointing at a node that never
	// registered the name, then invalidate — the recovery path a router
	// takes when a cached call fails. The re-resolve must find c.
	servers["a"].seedCache("obj", []Binding{{Node: "b", Server: "ghost"}}, 0)
	got, err := servers["a"].LookUp("obj", 1, time.Second)
	if err != nil || got[0].Node != "b" {
		t.Fatalf("seeded cache not honored: %v %v", got, err)
	}
	servers["a"].Invalidate("obj")
	got, err = servers["a"].LookUp("obj", 1, time.Second)
	if err != nil || len(got) != 1 || got[0].Node != "c" || got[0].Server != "real" {
		t.Fatalf("invalidated lookup did not re-resolve: %v %v", got, err)
	}
}

func TestNegativeLookupCached(t *testing.T) {
	servers := threeNodes(t)
	tr := trace.New("a", 0)
	servers["a"].AttachTracer(tr)
	servers["a"].SetNegativeTTL(200 * time.Millisecond)

	if _, err := servers["a"].LookUp("ghost", 1, 50*time.Millisecond); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	// Within the TTL, repeated misses answer instantly with no broadcast.
	start := time.Now()
	for i := 0; i < 3; i++ {
		if _, err := servers["a"].LookUp("ghost", 1, 50*time.Millisecond); !errors.Is(err, ErrNotFound) {
			t.Fatalf("negative lookup %d: %v", i, err)
		}
	}
	if d := time.Since(start); d > 40*time.Millisecond {
		t.Errorf("negative hits took %v; should not wait out MaxWait", d)
	}
	m := tr.MetricsSnapshot()
	if b := m["ns.lookup.broadcasts"].Value; b != 1 {
		t.Errorf("broadcasts = %v, want 1", b)
	}
	if n := m["ns.lookup.negative_hits"].Value; n != 3 {
		t.Errorf("negative hits = %v, want 3", n)
	}

	// Registration of the name must break through the negative entry.
	servers["b"].Register("ghost", "array", "srv", types.ObjectID{})
	deadline := time.Now().Add(2 * time.Second)
	for {
		got, err := servers["a"].LookUp("ghost", 1, 500*time.Millisecond)
		if err == nil && len(got) == 1 && got[0].Node == "b" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("registration never broke the negative entry: %v %v", got, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestNegativeEntryExpires(t *testing.T) {
	ns := New("solo", nil)
	ns.seedCache("x", nil, time.Now().Add(5*time.Millisecond).UnixNano())
	if _, err := ns.LookUp("x", 1, time.Millisecond); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unexpired negative entry: %v", err)
	}
	time.Sleep(10 * time.Millisecond)
	ns.Register("x", "t", "s", types.ObjectID{})
	got, err := ns.LookUp("x", 1, time.Millisecond)
	if err != nil || len(got) != 1 {
		t.Fatalf("expired negative entry still answering: %v %v", got, err)
	}
}

func TestCacheBoundedReset(t *testing.T) {
	ns := New("solo", nil)
	for i := 0; i < cacheMaxEntries+10; i++ {
		ns.seedCache(fmt.Sprintf("n%d", i), []Binding{{Node: "solo"}}, 0)
	}
	rc := ns.cache.Load()
	if rc == nil || len(rc.entries) > cacheMaxEntries {
		t.Fatalf("cache grew past bound: %d", len(rc.entries))
	}
}

func TestConcurrentRegisterLookupDeRegister(t *testing.T) {
	// Race-mode coverage: registrations, deregistrations, lookups and
	// invalidations hammering the sharded table and the copy-on-write
	// cache at once. Correctness here is "no race, no panic, lookups
	// return either a live binding or ErrNotFound".
	servers := threeNodes(t)
	const names = 8
	name := func(i int) string { return fmt.Sprintf("obj-%d", i%names) }
	var wg sync.WaitGroup
	stop := time.Now().Add(300 * time.Millisecond)
	for _, node := range []types.NodeID{"a", "b", "c"} {
		ns := servers[node]
		wg.Add(3)
		go func() {
			defer wg.Done()
			for i := 0; time.Now().Before(stop); i++ {
				ns.Register(name(i), "array", "srv", types.ObjectID{Segment: 1})
				if i%3 == 0 {
					ns.DeRegister(name(i), "srv", types.ObjectID{Segment: 1})
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; time.Now().Before(stop); i++ {
				got, err := ns.LookUp(name(i), 2, 2*time.Millisecond)
				if err != nil && !errors.Is(err, ErrNotFound) {
					t.Errorf("lookup: %v", err)
					return
				}
				for _, b := range got {
					if b.Server != "srv" {
						t.Errorf("bogus binding %+v", b)
						return
					}
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; time.Now().Before(stop); i++ {
				ns.Invalidate(name(i))
			}
		}()
	}
	wg.Wait()
}

func TestStatsSnapshot(t *testing.T) {
	servers := threeNodes(t)
	servers["a"].Register("x", "t", "s1", types.ObjectID{})
	servers["a"].Register("x", "t", "s2", types.ObjectID{})
	servers["b"].Register("y", "t", "s3", types.ObjectID{})
	if _, err := servers["a"].LookUp("y", 1, time.Second); err != nil {
		t.Fatal(err)
	}
	st := servers["a"].StatsSnapshot()
	if st.LocalNames != 1 || st.LocalBindings != 2 {
		t.Errorf("local: %+v", st)
	}
	if st.CachedByNode["b"] != 1 {
		t.Errorf("cached by node: %+v", st.CachedByNode)
	}
}

// BenchmarkLookUpCached is the allocgate-enforced routing fast path: a
// steady-state lookup of a placed key must not allocate or broadcast.
func BenchmarkLookUpCached(b *testing.B) {
	ns := New("solo", nil)
	ns.Register("array#0", "array", "array#0", types.ObjectID{Segment: 1})
	if _, err := ns.LookUp("array#0", 1, time.Millisecond); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := ns.LookUp("array#0", 1, time.Millisecond)
		if err != nil || len(got) != 1 {
			b.Fatal(got, err)
		}
	}
}
