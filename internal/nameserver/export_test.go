package nameserver

// seedCache force-publishes a routing-cache entry, bypassing resolution —
// tests use it to plant stale routes and prove lookups recover.
func (s *Server) seedCache(name string, bindings []Binding, negUntil int64) {
	s.cacheStore(name, bindings, negUntil)
}

// cachedBindings returns the cached positive entry for name, if any.
func (s *Server) cachedBindings(name string) ([]Binding, bool) {
	rc := s.cache.Load()
	if rc == nil {
		return nil, false
	}
	e, ok := rc.entries[name]
	if !ok || e.negUntil != 0 {
		return nil, false
	}
	return e.bindings, true
}
