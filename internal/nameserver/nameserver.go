// Package nameserver implements the TABS Name Server (paper §3.2.5) and
// its client library (Table 3-3), extended with the data-partitioned
// namespace of the sharded deployments (placement.go).
//
// Each node's Name Server maintains a mapping of object names to one or
// more <port, logical-object-identifier> pairs for the objects managed by
// data servers on that node. A name is registered with a type; a data
// server may serve several objects on one port, and independent data
// servers on different nodes may register the same name, which is how
// replicated objects advertise their representatives. When asked about a
// name it does not recognize, a Name Server broadcasts a lookup request to
// all other Name Servers and waits up to the caller's MaxWait for replies
// (LookUp's MaxWait parameter, Table 3-3).
//
// Two structures keep resolution off the broadcast path in steady state:
//
//   - The local binding table is sharded 16 ways by name hash, so
//     registration bursts (a rebooting node re-advertising its servers)
//     stop serializing concurrent lookups behind one mutex.
//
//   - A routing cache snapshot is published through an atomic.Pointer —
//     the same lock-free-read, copy-on-write idiom as the kernel page
//     cache's read path — holding every name this node has resolved,
//     locally or remotely, plus short-lived negative entries for names
//     that resolved nowhere. A cached LookUp takes no lock, performs no
//     broadcast and allocates nothing (allocgate-enforced). The cache is
//     invalidated by name on DeRegister and Register (broadcast to every
//     peer) and wholesale on a placement-map version bump.
package nameserver

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tabs/internal/trace"
	"tabs/internal/types"
)

// Binding is this implementation's <port, logical object identifier>
// pair: the node and data server to address (the "port"), plus the
// logical object identifier the server multiplexes on.
type Binding struct {
	Node   types.NodeID
	Server types.ServerID
	Object types.ObjectID
}

// Broadcaster is the Communication Manager slice the Name Server uses:
// broadcast for unknown names and invalidations, datagram replies for
// matches.
type Broadcaster interface {
	Node() types.NodeID
	Broadcast(service string, payload []byte) error
	SendDatagram(peer types.NodeID, service string, tid types.TransID, payload []byte, charge float64) error
	RegisterService(service string, handler func(from types.NodeID, tid types.TransID, payload []byte) ([]byte, error))
}

// Service is the Communication Manager service name for lookup traffic.
const Service = "name"

// ErrNotFound reports that no binding for the name was found anywhere
// within the allotted wait.
var ErrNotFound = errors.New("nameserver: name not found")

// tableShards is the binding table's shard count; 16 matches the lock
// manager's TID sharding and is plenty for registration traffic.
const tableShards = 16

// maxQueryReplies bounds how many bindings one peer sends back for one
// query, and with it the reply fan-in any single query can generate: a
// name with hundreds of replicated registrations must not turn every
// lookup broadcast into a datagram storm.
const maxQueryReplies = 8

// maxFanIn bounds a query's reply buffer.
const maxFanIn = 16

// cacheMaxEntries bounds the routing cache; on overflow the cache is
// dropped wholesale and rebuilt by subsequent resolutions, the same
// bound-by-reset policy as the Communication Manager's duplicate cache.
const cacheMaxEntries = 4096

// DefaultNegativeTTL is how long a failed resolution is remembered.
// Repeated lookups of a name that exists nowhere — a misconfigured
// client, a server that has not booted yet — answer from this negative
// entry instead of re-broadcasting to the whole cluster.
const DefaultNegativeTTL = 250 * time.Millisecond

type registration struct {
	typ     string
	binding Binding
}

// tableShard is one stripe of the local binding table.
type tableShard struct {
	mu    sync.Mutex
	names map[string][]registration
}

// routeEntry is one cached resolution. Either bindings is non-empty (a
// positive entry) or negUntil is the UnixNano expiry of a negative one.
type routeEntry struct {
	bindings []Binding
	negUntil int64
}

// routeCache is an immutable resolution snapshot; readers load it with a
// single atomic pointer read and never take a lock.
type routeCache struct {
	entries map[string]routeEntry
}

// Server is one node's Name Server.
type Server struct {
	node types.NodeID
	bc   Broadcaster

	table [tableShards]tableShard

	// cache is the lock-free routing snapshot; cacheMu serializes the
	// copy-on-write publishers only.
	cache   atomic.Pointer[routeCache]
	cacheMu sync.Mutex

	// placements maps family -> versioned shard map, also copy-on-write.
	placements atomic.Pointer[map[string]*Placement]
	pmu        sync.Mutex

	qmu     sync.Mutex
	nextQ   uint64
	queries map[uint64]chan Binding

	// negTTL is the negative-entry lifetime; tests shorten it.
	negTTL time.Duration

	// Pre-resolved counter handles: the cache-hit path must not take the
	// tracer mutex (or allocate) per lookup. All are nil-safe.
	cHits     *trace.Counter
	cMisses   *trace.Counter
	cNegHits  *trace.Counter
	cBcasts   *trace.Counter
	cInvals   *trace.Counter
	cRegBurst *trace.Counter
}

// New returns a Name Server; bc may be nil for an isolated node.
func New(node types.NodeID, bc Broadcaster) *Server {
	s := &Server{
		node:    node,
		bc:      bc,
		queries: make(map[uint64]chan Binding),
		negTTL:  DefaultNegativeTTL,
	}
	for i := range s.table {
		s.table[i].names = make(map[string][]registration)
	}
	if bc != nil {
		bc.RegisterService(Service, s.handle)
	}
	return s
}

// AttachTracer points the server's resolution counters (ns.lookup.*,
// ns.cache.*) at tr; nil disables them.
func (s *Server) AttachTracer(tr *trace.Tracer) {
	s.cHits = tr.Counter("ns.lookup.cache_hits")
	s.cMisses = tr.Counter("ns.lookup.cache_misses")
	s.cNegHits = tr.Counter("ns.lookup.negative_hits")
	s.cBcasts = tr.Counter("ns.lookup.broadcasts")
	s.cInvals = tr.Counter("ns.cache.invalidations")
	s.cRegBurst = tr.Counter("ns.registrations")
}

// SetNegativeTTL overrides the negative-cache lifetime (tests).
func (s *Server) SetNegativeTTL(d time.Duration) {
	s.qmu.Lock()
	s.negTTL = d
	s.qmu.Unlock()
}

func (s *Server) negativeTTL() time.Duration {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	return s.negTTL
}

func (s *Server) shard(name string) *tableShard {
	// FNV-1a over the name; cheap and stable.
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return &s.table[h%tableShards]
}

// Register adds a binding for name (Table 3-3: Register(Name, Type, Port,
// ObjectID)). The abstractions data servers represent are permanent
// entities; registration re-advertises them each time the server comes up,
// even though the ports change across failures (§3.1.3). Registration
// invalidates the name's routing-cache entry everywhere: peers holding a
// stale (or negative) entry re-resolve on their next lookup.
func (s *Server) Register(name, typ string, server types.ServerID, obj types.ObjectID) {
	sh := s.shard(name)
	sh.mu.Lock()
	b := Binding{Node: s.node, Server: server, Object: obj}
	for _, r := range sh.names[name] {
		if r.binding == b {
			sh.mu.Unlock()
			return
		}
	}
	sh.names[name] = append(sh.names[name], registration{typ: typ, binding: b})
	sh.mu.Unlock()
	s.cRegBurst.Add(1)
	s.cacheDelete(name)
	s.broadcastInval(name)
}

// DeRegister removes a binding (Table 3-3) and invalidates the name's
// routing-cache entry on every reachable peer.
func (s *Server) DeRegister(name string, server types.ServerID, obj types.ObjectID) {
	sh := s.shard(name)
	sh.mu.Lock()
	b := Binding{Node: s.node, Server: server, Object: obj}
	regs := sh.names[name]
	for i, r := range regs {
		if r.binding == b {
			sh.names[name] = append(regs[:i], regs[i+1:]...)
			break
		}
	}
	if len(sh.names[name]) == 0 {
		delete(sh.names, name)
	}
	sh.mu.Unlock()
	s.cacheDelete(name)
	s.broadcastInval(name)
}

// Invalidate drops the name from the local routing cache. Callers that
// discover a cached binding is dead (the call to it failed) invalidate and
// re-resolve; the next LookUp takes the slow path.
func (s *Server) Invalidate(name string) {
	s.cacheDelete(name)
}

func (s *Server) broadcastInval(name string) {
	if s.bc == nil {
		return
	}
	_ = s.bc.Broadcast(Service, encodeMsg(msgInval, 0, name))
}

// localLookup returns up to want local bindings for name (0 = all).
func (s *Server) localLookup(name string, want int) []Binding {
	sh := s.shard(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	regs := sh.names[name]
	if len(regs) == 0 {
		return nil
	}
	out := make([]Binding, 0, len(regs))
	for _, r := range regs {
		out = append(out, r.binding)
		if want > 0 && len(out) >= want {
			break
		}
	}
	return out
}

// --- routing cache ----------------------------------------------------------

// cacheStore publishes a copy-on-write snapshot with name resolved to
// bindings (positive) or, with negUntil set, remembered as absent.
func (s *Server) cacheStore(name string, bindings []Binding, negUntil int64) {
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	old := s.cache.Load()
	var size int
	if old != nil {
		size = len(old.entries)
	}
	if size >= cacheMaxEntries {
		// Bound by reset: drop everything, keep the new entry.
		old = nil
		size = 0
	}
	entries := make(map[string]routeEntry, size+1)
	if old != nil {
		for k, v := range old.entries {
			entries[k] = v
		}
	}
	entries[name] = routeEntry{bindings: bindings, negUntil: negUntil}
	s.cache.Store(&routeCache{entries: entries})
}

// cacheDelete unpublishes name, if present.
func (s *Server) cacheDelete(name string) {
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	old := s.cache.Load()
	if old == nil {
		return
	}
	if _, ok := old.entries[name]; !ok {
		return
	}
	entries := make(map[string]routeEntry, len(old.entries)-1)
	for k, v := range old.entries {
		if k != name {
			entries[k] = v
		}
	}
	s.cache.Store(&routeCache{entries: entries})
	s.cInvals.Add(1)
}

// cacheClear drops the whole routing cache (placement version bump).
func (s *Server) cacheClear() {
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	if s.cache.Load() != nil {
		s.cache.Store(nil)
		s.cInvals.Add(1)
	}
}

// CacheSnapshot returns the cached positive bindings by name (tabsctl
// placement dumps; not a hot path).
func (s *Server) CacheSnapshot() map[string][]Binding {
	rc := s.cache.Load()
	if rc == nil {
		return nil
	}
	out := make(map[string][]Binding, len(rc.entries))
	for name, e := range rc.entries {
		if e.negUntil == 0 {
			out[name] = append([]Binding(nil), e.bindings...)
		}
	}
	return out
}

// --- placement --------------------------------------------------------------

// SetPlacement installs a placement map, if it is strictly newer than the
// installed map for the same family, and reports whether it took effect.
// Installing a new version drops the routing cache: routes computed from
// the old map must re-resolve rather than silently keep pointing at homes
// the map has moved.
func (s *Server) SetPlacement(p *Placement) bool {
	if p == nil || p.Family == "" {
		return false
	}
	s.pmu.Lock()
	old := s.placements.Load()
	if old != nil {
		if cur, ok := (*old)[p.Family]; ok && cur.Version >= p.Version {
			s.pmu.Unlock()
			return false
		}
	}
	var size int
	if old != nil {
		size = len(*old)
	}
	next := make(map[string]*Placement, size+1)
	if old != nil {
		for k, v := range *old {
			next[k] = v
		}
	}
	next[p.Family] = p
	s.placements.Store(&next)
	s.pmu.Unlock()
	s.cacheClear()
	return true
}

// PublishPlacement installs p locally and broadcasts it to every peer's
// Name Server, which install it through the same version gate. The
// broadcast is best-effort — a partitioned or crashed peer misses it and
// converges later (reboots re-install the newest cluster map, and routers
// that keep failing against a stale home fall back to the live
// registration) — so a send failure is reported but does not undo the
// local install. Returns whether the local install took effect.
func (s *Server) PublishPlacement(p *Placement) (bool, error) {
	applied := s.SetPlacement(p)
	if s.bc == nil {
		return applied, nil
	}
	blob, err := json.Marshal(p)
	if err != nil {
		return applied, fmt.Errorf("nameserver: encoding placement %s v%d: %w", p.Family, p.Version, err)
	}
	return applied, s.bc.Broadcast(Service, encodeMsg(msgPlace, 0, string(blob)))
}

// PlacementFor returns the installed map for family, or nil. The read is
// one atomic load; routers call it per call on their fast path, so it
// must stay lock- and allocation-free.
func (s *Server) PlacementFor(family string) *Placement {
	ps := s.placements.Load()
	if ps == nil {
		return nil
	}
	return (*ps)[family]
}

// Placements returns every installed placement map.
func (s *Server) Placements() []*Placement {
	ps := s.placements.Load()
	if ps == nil {
		return nil
	}
	out := make([]*Placement, 0, len(*ps))
	for _, p := range *ps {
		out = append(out, p)
	}
	return out
}

// --- lookup -----------------------------------------------------------------

// LookUp resolves name to up to want bindings (Table 3-3: LookUp(Name,
// NodeName, DesiredNumberOfPortIDs, MaxWait)).
//
// Fast path: a previously resolved name answers from the routing-cache
// snapshot — one atomic load, no locks, no broadcast, no allocation. The
// returned slice is shared with the cache; callers must not modify it.
//
// Slow path: local registrations answer immediately; otherwise the
// request is broadcast and replies are gathered until want bindings
// arrive or maxWait elapses. The result — positive or negative — is
// published to the cache for the next caller.
func (s *Server) LookUp(name string, want int, maxWait time.Duration) ([]Binding, error) {
	if want <= 0 {
		want = 1
	}
	if rc := s.cache.Load(); rc != nil {
		if e, ok := rc.entries[name]; ok {
			if e.negUntil == 0 {
				if len(e.bindings) >= want {
					s.cHits.Add(1)
					return e.bindings[:want:want], nil
				}
				// Fewer cached than wanted: fall through and try to find
				// more; the slow path refreshes the entry.
			} else if time.Now().UnixNano() < e.negUntil {
				s.cNegHits.Add(1)
				return nil, ErrNotFound
			}
		}
	}
	s.cMisses.Add(1)
	return s.lookUpSlow(name, want, maxWait)
}

func (s *Server) lookUpSlow(name string, want int, maxWait time.Duration) ([]Binding, error) {
	if local := s.localLookup(name, want); len(local) >= want {
		s.cacheStore(name, local, 0)
		return local, nil
	}
	if s.bc == nil {
		if local := s.localLookup(name, 0); len(local) > 0 {
			s.cacheStore(name, local, 0)
			return local[:min(want, len(local))], nil
		}
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}

	// Bound the reply fan-in to what this query can consume: a lookup
	// wanting one binding does not buffer sixteen.
	fanIn := want
	if fanIn > maxFanIn {
		fanIn = maxFanIn
	}
	s.qmu.Lock()
	s.nextQ++
	qid := s.nextQ
	ch := make(chan Binding, fanIn)
	s.queries[qid] = ch
	s.qmu.Unlock()
	defer func() {
		s.qmu.Lock()
		delete(s.queries, qid)
		s.qmu.Unlock()
	}()

	s.cBcasts.Add(1)
	if err := s.bc.Broadcast(Service, encodeMsg(msgQuery, qid, name)); err != nil {
		return nil, err
	}
	results := s.localLookup(name, want)
	deadline := time.After(maxWait)
	for len(results) < want {
		select {
		case b := <-ch:
			dup := false
			for _, have := range results {
				if have == b {
					dup = true
					break
				}
			}
			if !dup {
				results = append(results, b)
			}
		case <-deadline:
			if len(results) > 0 {
				s.cacheStore(name, results, 0)
				return results, nil
			}
			s.cacheStore(name, nil, time.Now().Add(s.negativeTTL()).UnixNano())
			return nil, fmt.Errorf("%w: %q (broadcast unanswered)", ErrNotFound, name)
		}
	}
	s.cacheStore(name, results, 0)
	return results, nil
}

// Stats summarizes the server's tables for the placement dump.
type Stats struct {
	LocalNames    int                  `json:"local_names"`
	LocalBindings int                  `json:"local_bindings"`
	CachedNames   int                  `json:"cached_names"`
	NegEntries    int                  `json:"negative_entries"`
	CachedByNode  map[types.NodeID]int `json:"cached_by_node,omitempty"`
}

// StatsSnapshot counts local registrations and cached routes per node.
func (s *Server) StatsSnapshot() Stats {
	st := Stats{CachedByNode: make(map[types.NodeID]int)}
	for i := range s.table {
		sh := &s.table[i]
		sh.mu.Lock()
		st.LocalNames += len(sh.names)
		for _, regs := range sh.names {
			st.LocalBindings += len(regs)
		}
		sh.mu.Unlock()
	}
	if rc := s.cache.Load(); rc != nil {
		for _, e := range rc.entries {
			if e.negUntil != 0 {
				st.NegEntries++
				continue
			}
			st.CachedNames++
			for _, b := range e.bindings {
				st.CachedByNode[b.Node]++
			}
		}
	}
	if len(st.CachedByNode) == 0 {
		st.CachedByNode = nil
	}
	return st
}

// handle processes inbound name-service datagrams: queries from peers,
// replies to our own broadcasts, and cache invalidations.
func (s *Server) handle(from types.NodeID, _ types.TransID, payload []byte) ([]byte, error) {
	kind, qid, rest, err := decodeHeader(payload)
	if err != nil {
		return nil, err
	}
	switch kind {
	case msgQuery:
		name := string(rest)
		for _, b := range s.localLookup(name, maxQueryReplies) {
			_ = s.bc.SendDatagram(from, Service, types.NilTransID, encodeReply(qid, b), 0)
		}
	case msgReply:
		b, err := decodeBinding(rest)
		if err != nil {
			return nil, err
		}
		s.qmu.Lock()
		ch := s.queries[qid]
		s.qmu.Unlock()
		if ch != nil {
			select {
			case ch <- b:
			default:
			}
		}
	case msgInval:
		s.cacheDelete(string(rest))
	case msgPlace:
		var p Placement
		if err := json.Unmarshal(rest, &p); err != nil {
			return nil, fmt.Errorf("nameserver: bad placement broadcast from %s: %w", from, err)
		}
		s.SetPlacement(&p)
	}
	return nil, nil
}

// --- wire format -----------------------------------------------------------

const (
	msgQuery byte = 1
	msgReply byte = 2
	msgInval byte = 3
	msgPlace byte = 4
)

func encodeMsg(kind byte, qid uint64, name string) []byte {
	b := make([]byte, 0, 9+len(name))
	b = append(b, kind)
	b = binary.BigEndian.AppendUint64(b, qid)
	return append(b, name...)
}

func encodeReply(qid uint64, bind Binding) []byte {
	b := make([]byte, 0, 64)
	b = append(b, msgReply)
	b = binary.BigEndian.AppendUint64(b, qid)
	b = appendStr(b, string(bind.Node))
	b = appendStr(b, string(bind.Server))
	b = binary.BigEndian.AppendUint32(b, uint32(bind.Object.Segment))
	b = binary.BigEndian.AppendUint32(b, bind.Object.Offset)
	b = binary.BigEndian.AppendUint32(b, bind.Object.Length)
	return b
}

func appendStr(b []byte, s string) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

func decodeHeader(p []byte) (kind byte, qid uint64, rest []byte, err error) {
	if len(p) < 9 {
		return 0, 0, nil, errors.New("nameserver: short message")
	}
	return p[0], binary.BigEndian.Uint64(p[1:9]), p[9:], nil
}

func decodeBinding(p []byte) (Binding, error) {
	var b Binding
	node, p, err := takeStr(p)
	if err != nil {
		return b, err
	}
	server, p, err := takeStr(p)
	if err != nil {
		return b, err
	}
	if len(p) != 12 {
		return b, errors.New("nameserver: bad binding")
	}
	b.Node = types.NodeID(node)
	b.Server = types.ServerID(server)
	b.Object.Segment = types.SegmentID(binary.BigEndian.Uint32(p[0:4]))
	b.Object.Offset = binary.BigEndian.Uint32(p[4:8])
	b.Object.Length = binary.BigEndian.Uint32(p[8:12])
	return b, nil
}

func takeStr(p []byte) (string, []byte, error) {
	if len(p) < 2 {
		return "", nil, errors.New("nameserver: short string")
	}
	n := int(binary.BigEndian.Uint16(p))
	p = p[2:]
	if len(p) < n {
		return "", nil, errors.New("nameserver: short string body")
	}
	return string(p[:n]), p[n:], nil
}
