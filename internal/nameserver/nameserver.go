// Package nameserver implements the TABS Name Server (paper §3.2.5) and
// its client library (Table 3-3).
//
// Each node's Name Server maintains a mapping of object names to one or
// more <port, logical-object-identifier> pairs for the objects managed by
// data servers on that node. A name is registered with a type; a data
// server may serve several objects on one port, and independent data
// servers on different nodes may register the same name, which is how
// replicated objects advertise their representatives. When asked about a
// name it does not recognize, a Name Server broadcasts a lookup request to
// all other Name Servers and waits up to the caller's MaxWait for replies
// (LookUp's MaxWait parameter, Table 3-3).
package nameserver

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"tabs/internal/types"
)

// Binding is this implementation's <port, logical object identifier>
// pair: the node and data server to address (the "port"), plus the
// logical object identifier the server multiplexes on.
type Binding struct {
	Node   types.NodeID
	Server types.ServerID
	Object types.ObjectID
}

// Broadcaster is the Communication Manager slice the Name Server uses:
// broadcast for unknown names, datagram replies for matches.
type Broadcaster interface {
	Node() types.NodeID
	Broadcast(service string, payload []byte) error
	SendDatagram(peer types.NodeID, service string, tid types.TransID, payload []byte, charge float64) error
	RegisterService(service string, handler func(from types.NodeID, tid types.TransID, payload []byte) ([]byte, error))
}

// Service is the Communication Manager service name for lookup traffic.
const Service = "name"

// ErrNotFound reports that no binding for the name was found anywhere
// within the allotted wait.
var ErrNotFound = errors.New("nameserver: name not found")

type registration struct {
	typ     string
	binding Binding
}

// Server is one node's Name Server.
type Server struct {
	node types.NodeID
	bc   Broadcaster

	mu      sync.Mutex
	names   map[string][]registration
	nextQ   uint64
	queries map[uint64]chan Binding
}

// New returns a Name Server; bc may be nil for an isolated node.
func New(node types.NodeID, bc Broadcaster) *Server {
	s := &Server{
		node:    node,
		bc:      bc,
		names:   make(map[string][]registration),
		queries: make(map[uint64]chan Binding),
	}
	if bc != nil {
		bc.RegisterService(Service, s.handle)
	}
	return s
}

// Register adds a binding for name (Table 3-3: Register(Name, Type, Port,
// ObjectID)). The abstractions data servers represent are permanent
// entities; registration re-advertises them each time the server comes up,
// even though the ports change across failures (§3.1.3).
func (s *Server) Register(name, typ string, server types.ServerID, obj types.ObjectID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := Binding{Node: s.node, Server: server, Object: obj}
	for _, r := range s.names[name] {
		if r.binding == b {
			return
		}
	}
	s.names[name] = append(s.names[name], registration{typ: typ, binding: b})
}

// DeRegister removes a binding (Table 3-3).
func (s *Server) DeRegister(name string, server types.ServerID, obj types.ObjectID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := Binding{Node: s.node, Server: server, Object: obj}
	regs := s.names[name]
	for i, r := range regs {
		if r.binding == b {
			s.names[name] = append(regs[:i], regs[i+1:]...)
			break
		}
	}
	if len(s.names[name]) == 0 {
		delete(s.names, name)
	}
}

// localLookup returns up to want local bindings for name.
func (s *Server) localLookup(name string, want int) []Binding {
	s.mu.Lock()
	defer s.mu.Unlock()
	regs := s.names[name]
	out := make([]Binding, 0, len(regs))
	for _, r := range regs {
		out = append(out, r.binding)
		if want > 0 && len(out) >= want {
			break
		}
	}
	return out
}

// LookUp resolves name to up to want bindings (Table 3-3: LookUp(Name,
// NodeName, DesiredNumberOfPortIDs, MaxWait)). Local registrations answer
// immediately; otherwise the request is broadcast and replies are gathered
// until want bindings arrive or maxWait elapses.
func (s *Server) LookUp(name string, want int, maxWait time.Duration) ([]Binding, error) {
	if want <= 0 {
		want = 1
	}
	if local := s.localLookup(name, want); len(local) >= want {
		return local, nil
	}
	if s.bc == nil {
		if local := s.localLookup(name, want); len(local) > 0 {
			return local, nil
		}
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}

	s.mu.Lock()
	s.nextQ++
	qid := s.nextQ
	ch := make(chan Binding, 16)
	s.queries[qid] = ch
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.queries, qid)
		s.mu.Unlock()
	}()

	if err := s.bc.Broadcast(Service, encodeQuery(qid, name)); err != nil {
		return nil, err
	}
	results := s.localLookup(name, want)
	deadline := time.After(maxWait)
	for len(results) < want {
		select {
		case b := <-ch:
			dup := false
			for _, have := range results {
				if have == b {
					dup = true
					break
				}
			}
			if !dup {
				results = append(results, b)
			}
		case <-deadline:
			if len(results) > 0 {
				return results, nil
			}
			return nil, fmt.Errorf("%w: %q (broadcast unanswered)", ErrNotFound, name)
		}
	}
	return results, nil
}

// handle processes inbound name-service datagrams: queries from peers and
// replies to our own broadcasts.
func (s *Server) handle(from types.NodeID, _ types.TransID, payload []byte) ([]byte, error) {
	kind, qid, rest, err := decodeHeader(payload)
	if err != nil {
		return nil, err
	}
	switch kind {
	case msgQuery:
		name := string(rest)
		for _, b := range s.localLookup(name, 0) {
			_ = s.bc.SendDatagram(from, Service, types.NilTransID, encodeReply(qid, b), 0)
		}
	case msgReply:
		b, err := decodeBinding(rest)
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		ch := s.queries[qid]
		s.mu.Unlock()
		if ch != nil {
			select {
			case ch <- b:
			default:
			}
		}
	}
	return nil, nil
}

// --- wire format -----------------------------------------------------------

const (
	msgQuery byte = 1
	msgReply byte = 2
)

func encodeQuery(qid uint64, name string) []byte {
	b := make([]byte, 0, 9+len(name))
	b = append(b, msgQuery)
	b = binary.BigEndian.AppendUint64(b, qid)
	return append(b, name...)
}

func encodeReply(qid uint64, bind Binding) []byte {
	b := make([]byte, 0, 64)
	b = append(b, msgReply)
	b = binary.BigEndian.AppendUint64(b, qid)
	b = appendStr(b, string(bind.Node))
	b = appendStr(b, string(bind.Server))
	b = binary.BigEndian.AppendUint32(b, uint32(bind.Object.Segment))
	b = binary.BigEndian.AppendUint32(b, bind.Object.Offset)
	b = binary.BigEndian.AppendUint32(b, bind.Object.Length)
	return b
}

func appendStr(b []byte, s string) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

func decodeHeader(p []byte) (kind byte, qid uint64, rest []byte, err error) {
	if len(p) < 9 {
		return 0, 0, nil, errors.New("nameserver: short message")
	}
	return p[0], binary.BigEndian.Uint64(p[1:9]), p[9:], nil
}

func decodeBinding(p []byte) (Binding, error) {
	var b Binding
	node, p, err := takeStr(p)
	if err != nil {
		return b, err
	}
	server, p, err := takeStr(p)
	if err != nil {
		return b, err
	}
	if len(p) != 12 {
		return b, errors.New("nameserver: bad binding")
	}
	b.Node = types.NodeID(node)
	b.Server = types.ServerID(server)
	b.Object.Segment = types.SegmentID(binary.BigEndian.Uint32(p[0:4]))
	b.Object.Offset = binary.BigEndian.Uint32(p[4:8])
	b.Object.Length = binary.BigEndian.Uint32(p[8:12])
	return b, nil
}

func takeStr(p []byte) (string, []byte, error) {
	if len(p) < 2 {
		return "", nil, errors.New("nameserver: short string")
	}
	n := int(binary.BigEndian.Uint16(p))
	p = p[2:]
	if len(p) < n {
		return "", nil, errors.New("nameserver: short string body")
	}
	return string(p[:n]), p[n:], nil
}
