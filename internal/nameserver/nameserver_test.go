package nameserver

import (
	"errors"
	"testing"
	"time"

	"tabs/internal/comm"
	"tabs/internal/types"
)

func twoNodes(t *testing.T) (*Server, *Server) {
	t.Helper()
	net := comm.NewMemNetwork()
	cma := comm.New("a", net.Endpoint("a"), nil)
	cmb := comm.New("b", net.Endpoint("b"), nil)
	return New("a", cma), New("b", cmb)
}

func TestLocalLookup(t *testing.T) {
	nsa, _ := twoNodes(t)
	obj := types.ObjectID{Segment: 1, Offset: 0, Length: 8}
	nsa.Register("accounts", "array", "bank", obj)
	got, err := nsa.LookUp("accounts", 1, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Node != "a" || got[0].Server != "bank" || got[0].Object != obj {
		t.Errorf("got %+v", got)
	}
}

func TestBroadcastLookup(t *testing.T) {
	nsa, nsb := twoNodes(t)
	nsb.Register("remote-thing", "btree", "dir", types.ObjectID{Segment: 2})
	got, err := nsa.LookUp("remote-thing", 1, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Node != "b" || got[0].Server != "dir" {
		t.Errorf("got %+v", got)
	}
}

func TestLookupGathersReplicas(t *testing.T) {
	// Replicated objects register the same name on several nodes
	// (§3.1.3: "independent data server processes can together implement
	// replicated objects").
	net := comm.NewMemNetwork()
	servers := map[types.NodeID]*Server{}
	for _, n := range []types.NodeID{"a", "b", "c"} {
		servers[n] = New(n, comm.New(n, net.Endpoint(n), nil))
	}
	for _, n := range []types.NodeID{"a", "b", "c"} {
		servers[n].Register("repdir", "directory", "rep", types.ObjectID{})
	}
	got, err := servers["a"].LookUp("repdir", 3, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Errorf("got %d bindings, want 3: %+v", len(got), got)
	}
}

func TestLookupUnknownTimesOut(t *testing.T) {
	nsa, _ := twoNodes(t)
	start := time.Now()
	_, err := nsa.LookUp("nothing", 1, 80*time.Millisecond)
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if time.Since(start) < 70*time.Millisecond {
		t.Error("MaxWait not honored")
	}
}

func TestDeRegister(t *testing.T) {
	nsa, _ := twoNodes(t)
	obj := types.ObjectID{Segment: 1}
	nsa.Register("x", "t", "s", obj)
	nsa.DeRegister("x", "s", obj)
	if _, err := nsa.LookUp("x", 1, 50*time.Millisecond); !errors.Is(err, ErrNotFound) {
		t.Errorf("deregistered name still resolves: %v", err)
	}
}

func TestRegisterIdempotent(t *testing.T) {
	nsa, _ := twoNodes(t)
	obj := types.ObjectID{Segment: 1}
	nsa.Register("x", "t", "s", obj)
	nsa.Register("x", "t", "s", obj)
	got, err := nsa.LookUp("x", 5, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Errorf("duplicate registration produced %d bindings", len(got))
	}
}

func TestIsolatedNodeLookup(t *testing.T) {
	ns := New("solo", nil)
	ns.Register("x", "t", "s", types.ObjectID{})
	got, err := ns.LookUp("x", 1, 10*time.Millisecond)
	if err != nil || len(got) != 1 {
		t.Errorf("isolated lookup: %v %v", got, err)
	}
	if _, err := ns.LookUp("y", 1, 10*time.Millisecond); !errors.Is(err, ErrNotFound) {
		t.Errorf("isolated miss: %v", err)
	}
}
