// Placement maps: the data-partitioned namespace.
//
// A placement map assigns the N shards of one object family (an "array",
// a "queue", ...) to the M nodes of a deployment, deterministically, so
// that every node — and every diskless application host — computes the
// same key-to-shard routing without asking anyone. The map is published
// through each node's Name Server: placement answers "which shard owns
// this key, and which node is that shard's home", while the ordinary
// binding table keeps answering "which port serves that shard right now"
// (ports change across failures, §3.1.3; homes do not).
//
// The map is versioned. Rebalancing — moving a shard to another node —
// is out of scope here, but a mover only has to publish a map with a
// higher Version: SetPlacement installs strictly newer maps and drops the
// routing cache, so stale routes re-resolve instead of erroring.
package nameserver

import (
	"fmt"

	"tabs/internal/types"
)

// ShardInfo is one shard's home: the node the shard's data server runs on
// and the server's identifier (which doubles as its advertised name).
type ShardInfo struct {
	Node   types.NodeID   `json:"node"`
	Server types.ServerID `json:"server"`
}

// Placement is one object family's versioned shard map.
type Placement struct {
	// Family names the partitioned object ("array", "accounts", ...).
	Family string `json:"family"`
	// Version orders maps; SetPlacement installs strictly newer ones.
	Version uint64 `json:"version"`
	// Shards assigns shard i its home. len(Shards) is the shard count.
	Shards []ShardInfo `json:"shards"`
}

// NumShards returns the shard count.
func (p *Placement) NumShards() int { return len(p.Shards) }

// Shard returns the shard owning key. The partition function is the
// identity hash modulo the shard count: deterministic, uniform for dense
// key spaces, and — unlike a mixing hash — it keeps each shard's key set
// dense (key k is slot k/N of shard k%N), which array-shaped servers
// index directly. Servers with their own key directories (the B-tree) are
// free to layer a mixing hash on top before calling this.
func (p *Placement) Shard(key uint64) int {
	return int(key % uint64(len(p.Shards)))
}

// Locate returns the home of the shard owning key.
func (p *Placement) Locate(key uint64) ShardInfo {
	return p.Shards[p.Shard(key)]
}

// ShardServerID names shard i of a family: "family#i". Shard data servers
// register under exactly this name, so routing is ComputePlacement +
// LookUp with no extra directory.
func ShardServerID(family string, shard int) types.ServerID {
	return types.ServerID(fmt.Sprintf("%s#%d", family, shard))
}

// ComputePlacement builds the deterministic placement of shards over
// nodes: shard i lives on nodes[i%len(nodes)] and is served by
// ShardServerID(family, i). Callers pass the node list in a canonical
// order (core.Cluster.NodeNames sorts) so every computer of the map
// agrees on it.
func ComputePlacement(family string, version uint64, shards int, nodes []types.NodeID) (*Placement, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("nameserver: placement needs at least one shard, got %d", shards)
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("nameserver: placement of %q needs at least one node", family)
	}
	p := &Placement{Family: family, Version: version, Shards: make([]ShardInfo, shards)}
	for i := 0; i < shards; i++ {
		p.Shards[i] = ShardInfo{Node: nodes[i%len(nodes)], Server: ShardServerID(family, i)}
	}
	return p, nil
}
