package nameserver

import (
	"testing"
	"time"

	"tabs/internal/types"
)

func TestComputePlacementRoundRobin(t *testing.T) {
	nodes := []types.NodeID{"n1", "n2", "n3"}
	p, err := ComputePlacement("array", 1, 8, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumShards() != 8 {
		t.Fatalf("NumShards = %d", p.NumShards())
	}
	for i, sh := range p.Shards {
		if want := nodes[i%3]; sh.Node != want {
			t.Errorf("shard %d on %s, want %s", i, sh.Node, want)
		}
		if want := ShardServerID("array", i); sh.Server != want {
			t.Errorf("shard %d server %s, want %s", i, sh.Server, want)
		}
	}
}

func TestComputePlacementValidates(t *testing.T) {
	if _, err := ComputePlacement("a", 1, 0, []types.NodeID{"n"}); err == nil {
		t.Error("zero shards accepted")
	}
	if _, err := ComputePlacement("a", 1, 1, nil); err == nil {
		t.Error("zero nodes accepted")
	}
}

func TestShardIsIdentityModulo(t *testing.T) {
	p, _ := ComputePlacement("array", 1, 4, []types.NodeID{"n1", "n2"})
	for key := uint64(0); key < 100; key++ {
		if got := p.Shard(key); got != int(key%4) {
			t.Fatalf("Shard(%d) = %d", key, got)
		}
	}
	if p.Locate(6).Node != "n1" || p.Locate(7).Node != "n2" {
		t.Errorf("Locate: %+v %+v", p.Locate(6), p.Locate(7))
	}
}

func TestSetPlacementVersionGate(t *testing.T) {
	ns := New("solo", nil)
	p1, _ := ComputePlacement("array", 1, 2, []types.NodeID{"n1"})
	p2, _ := ComputePlacement("array", 2, 4, []types.NodeID{"n1", "n2"})
	if !ns.SetPlacement(p1) {
		t.Fatal("initial install rejected")
	}
	if ns.SetPlacement(p1) {
		t.Error("same version reinstalled")
	}
	if !ns.SetPlacement(p2) {
		t.Fatal("newer version rejected")
	}
	if ns.SetPlacement(p1) {
		t.Error("older version reinstalled")
	}
	if got := ns.PlacementFor("array"); got == nil || got.Version != 2 {
		t.Errorf("PlacementFor = %+v", got)
	}
	if ns.PlacementFor("other") != nil {
		t.Error("unknown family resolved")
	}
	if got := ns.Placements(); len(got) != 1 {
		t.Errorf("Placements = %+v", got)
	}
	if ns.SetPlacement(nil) || ns.SetPlacement(&Placement{}) {
		t.Error("nil/empty placement accepted")
	}
}

func TestSetPlacementDropsRouteCache(t *testing.T) {
	ns := New("solo", nil)
	ns.Register("x", "t", "s", types.ObjectID{})
	if _, err := ns.LookUp("x", 1, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, ok := ns.cachedBindings("x"); !ok {
		t.Fatal("lookup did not cache")
	}
	p, _ := ComputePlacement("array", 1, 2, []types.NodeID{"n1"})
	ns.SetPlacement(p)
	if _, ok := ns.cachedBindings("x"); ok {
		t.Error("placement bump left stale routes cached")
	}
}
