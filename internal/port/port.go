// Package port provides the Accent-style inter-process communication that
// TABS components use on a node (paper §2.1.1).
//
// Accent messages are typed vectors addressed to ports; many processes may
// hold send rights to a port but exactly one holds receive rights. Large
// data moves by copy-on-write remapping rather than copying. The paper's
// performance analysis distinguishes three message classes — small
// contiguous (<500 bytes), large contiguous (~1100 bytes), and pointer
// messages — so this package classifies every Send and records it against
// the sender's primitive-operation recorder.
//
// Within this simulation, holding a *Port value confers send rights; the
// component that created the port holds the receive rights (it alone calls
// Receive). Rights travel in messages simply by embedding a *Port, just as
// Accent transmitted port capabilities in typed message fields.
package port

import (
	"errors"
	"fmt"
	"sync"

	"tabs/internal/simclock"
	"tabs/internal/stats"
	"tabs/internal/types"
)

// SmallMessageLimit is the boundary between small and large contiguous
// messages in the paper's accounting (§5.1: "in all cases have less than
// 500 bytes").
const SmallMessageLimit = 500

// Message is one typed inter-process message.
type Message struct {
	// Op names the requested operation (Matchmaker would have generated
	// the dispatch; here servers switch on Op).
	Op string
	// TID carries the transaction on whose behalf the operation runs.
	TID types.TransID
	// Body is contiguous data, classified small/large by length.
	Body []byte
	// Ptr carries a by-reference payload, modelling Accent's
	// copy-on-write remapping of large data; a message with Ptr ≠ nil is
	// a pointer message regardless of Body.
	Ptr any
	// ReplyTo carries send rights for the response, as Accent transmitted
	// port capabilities inside messages.
	ReplyTo *Port
	// Err, when non-empty, marks a failure response.
	Err string
}

// Class returns the message's accounting class.
func (m *Message) Class() simclock.Primitive {
	switch {
	case m.Ptr != nil:
		return simclock.PointerMsg
	case len(m.Body) >= SmallMessageLimit:
		return simclock.LargeMsg
	default:
		return simclock.SmallMsg
	}
}

// Errors returned by port operations.
var (
	ErrClosed = errors.New("port: closed")
)

// Port is a message queue with single-receiver semantics.
type Port struct {
	name string
	rec  *stats.Recorder

	mu     sync.Mutex
	queue  []*Message
	avail  chan struct{} // signalled when queue goes non-empty
	closed bool
}

// New returns a port. Messages sent to it are recorded against rec (which
// may be nil to disable accounting).
func New(name string, rec *stats.Recorder) *Port {
	return &Port{name: name, rec: rec, avail: make(chan struct{}, 1)}
}

// Name returns the port's debug name.
func (p *Port) Name() string { return p.name }

// Send enqueues m, recording its message class. Send never blocks; Accent
// queued messages at the receiving port.
func (p *Port) Send(m *Message) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrClosed, p.name)
	}
	p.queue = append(p.queue, m)
	p.mu.Unlock()
	select {
	case p.avail <- struct{}{}:
	default:
	}
	if p.rec != nil {
		p.rec.Record(m.Class())
	}
	return nil
}

// SendQuiet enqueues m without recording a primitive; used for the reply
// half of an exchange the caller accounts as a single higher-level
// primitive (e.g. a Data Server Call covers both directions).
func (p *Port) SendQuiet(m *Message) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrClosed, p.name)
	}
	p.queue = append(p.queue, m)
	p.mu.Unlock()
	select {
	case p.avail <- struct{}{}:
	default:
	}
	return nil
}

// Receive blocks until a message arrives or the port closes.
func (p *Port) Receive() (*Message, error) {
	for {
		p.mu.Lock()
		if len(p.queue) > 0 {
			m := p.queue[0]
			p.queue = p.queue[1:]
			if len(p.queue) > 0 {
				select {
				case p.avail <- struct{}{}:
				default:
				}
			}
			p.mu.Unlock()
			return m, nil
		}
		if p.closed {
			p.mu.Unlock()
			return nil, fmt.Errorf("%w: %s", ErrClosed, p.name)
		}
		p.mu.Unlock()
		<-p.avail
	}
}

// TryReceive returns the next message without blocking, or nil.
func (p *Port) TryReceive() *Message {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.queue) == 0 {
		return nil
	}
	m := p.queue[0]
	p.queue = p.queue[1:]
	if len(p.queue) > 0 {
		select {
		case p.avail <- struct{}{}:
		default:
		}
	}
	return m
}

// Close destroys the receive right; pending and future Receives fail, and
// subsequent Sends fail as they would to a dead Accent process.
func (p *Port) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	// Wake any blocked receiver; repeated sends keep the channel hot.
	select {
	case p.avail <- struct{}{}:
	default:
	}
	// Broadcast-like: wake every waiter by closing is unsafe for reuse,
	// so instead we rely on receivers re-checking after each signal; give
	// stragglers another nudge.
	go func() {
		for i := 0; i < 8; i++ {
			select {
			case p.avail <- struct{}{}:
			default:
				return
			}
		}
	}()
}

// Call performs a synchronous request/response: it attaches a private reply
// port, sends m to p, and waits for the response. The exchange is the
// message-level substrate of the remote-procedure-call facility that
// Matchmaker generated stubs for (§2.1.1).
func Call(p *Port, m *Message) (*Message, error) {
	reply := New(p.name+".reply", nil)
	defer reply.Close()
	m.ReplyTo = reply
	if err := p.Send(m); err != nil {
		return nil, err
	}
	resp, err := reply.Receive()
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return resp, errors.New(resp.Err)
	}
	return resp, nil
}
