package port

import (
	"errors"
	"sync"
	"testing"
	"time"

	"tabs/internal/simclock"
	"tabs/internal/stats"
)

func TestSendReceiveFIFO(t *testing.T) {
	p := New("t", nil)
	for i := 0; i < 5; i++ {
		if err := p.Send(&Message{Op: string(rune('a' + i))}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		m, err := p.Receive()
		if err != nil {
			t.Fatal(err)
		}
		if m.Op != string(rune('a'+i)) {
			t.Errorf("message %d: op %q", i, m.Op)
		}
	}
}

func TestReceiveBlocksUntilSend(t *testing.T) {
	p := New("t", nil)
	got := make(chan *Message, 1)
	go func() {
		m, err := p.Receive()
		if err == nil {
			got <- m
		}
	}()
	time.Sleep(10 * time.Millisecond)
	select {
	case <-got:
		t.Fatal("receive returned before send")
	default:
	}
	if err := p.Send(&Message{Op: "x"}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m.Op != "x" {
			t.Errorf("op %q", m.Op)
		}
	case <-time.After(time.Second):
		t.Fatal("receiver never woke")
	}
}

func TestMessageClasses(t *testing.T) {
	small := &Message{Body: make([]byte, 100)}
	if small.Class() != simclock.SmallMsg {
		t.Errorf("100 bytes classified %v", small.Class())
	}
	large := &Message{Body: make([]byte, 1100)}
	if large.Class() != simclock.LargeMsg {
		t.Errorf("1100 bytes classified %v", large.Class())
	}
	ptr := &Message{Ptr: map[string]int{"big": 1}}
	if ptr.Class() != simclock.PointerMsg {
		t.Errorf("pointer message classified %v", ptr.Class())
	}
	boundary := &Message{Body: make([]byte, SmallMessageLimit)}
	if boundary.Class() != simclock.LargeMsg {
		t.Errorf("boundary classified %v", boundary.Class())
	}
}

func TestSendRecordsClass(t *testing.T) {
	rec := stats.NewRecorder()
	p := New("t", rec)
	_ = p.Send(&Message{Body: make([]byte, 10)})
	_ = p.Send(&Message{Body: make([]byte, 1000)})
	_ = p.Send(&Message{Ptr: 1})
	c := rec.Snapshot(stats.PreCommit)
	if c[simclock.SmallMsg] != 1 || c[simclock.LargeMsg] != 1 || c[simclock.PointerMsg] != 1 {
		t.Errorf("counts %v", c)
	}
	// SendQuiet records nothing.
	_ = p.SendQuiet(&Message{Body: make([]byte, 10)})
	if rec.Snapshot(stats.PreCommit)[simclock.SmallMsg] != 1 {
		t.Error("SendQuiet recorded a message")
	}
}

func TestCloseUnblocksReceiver(t *testing.T) {
	p := New("t", nil)
	errs := make(chan error, 1)
	go func() {
		_, err := p.Receive()
		errs <- err
	}()
	time.Sleep(10 * time.Millisecond)
	p.Close()
	select {
	case err := <-errs:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("want ErrClosed, got %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("receiver not unblocked by close")
	}
}

func TestSendToClosedPortFails(t *testing.T) {
	p := New("t", nil)
	p.Close()
	if err := p.Send(&Message{}); !errors.Is(err, ErrClosed) {
		t.Errorf("want ErrClosed, got %v", err)
	}
}

func TestCall(t *testing.T) {
	p := New("server", nil)
	go func() {
		for {
			m, err := p.Receive()
			if err != nil {
				return
			}
			_ = m.ReplyTo.SendQuiet(&Message{Op: m.Op, Body: append([]byte("echo:"), m.Body...)})
		}
	}()
	resp, err := Call(p, &Message{Op: "ping", Body: []byte("hi")})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "echo:hi" {
		t.Errorf("resp %q", resp.Body)
	}
	p.Close()
}

func TestCallPropagatesError(t *testing.T) {
	p := New("server", nil)
	go func() {
		m, err := p.Receive()
		if err != nil {
			return
		}
		_ = m.ReplyTo.SendQuiet(&Message{Err: "no such operation"})
	}()
	_, err := Call(p, &Message{Op: "bogus"})
	if err == nil || err.Error() != "no such operation" {
		t.Errorf("err %v", err)
	}
	p.Close()
}

func TestTryReceive(t *testing.T) {
	p := New("t", nil)
	if m := p.TryReceive(); m != nil {
		t.Error("empty port returned a message")
	}
	_ = p.Send(&Message{Op: "x"})
	if m := p.TryReceive(); m == nil || m.Op != "x" {
		t.Errorf("got %v", m)
	}
}

func TestConcurrentSendersSingleReceiver(t *testing.T) {
	p := New("t", nil)
	const senders, each = 8, 100
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				_ = p.Send(&Message{Op: "m"})
			}
		}()
	}
	got := 0
	done := make(chan struct{})
	go func() {
		for got < senders*each {
			if _, err := p.Receive(); err != nil {
				return
			}
			got++
		}
		close(done)
	}()
	wg.Wait()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("received %d of %d", got, senders*each)
	}
}
