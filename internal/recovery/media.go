package recovery

import (
	"fmt"

	"tabs/internal/wal"
)

// This file implements media recovery — restoring recoverable segments
// after a non-volatile storage failure from an off-line archive plus the
// log. The paper lists it as required future work (§7: "TABS should use
// stable storage for the log and support media recovery") and describes
// the architecture in §2.1.3: "to reduce the cost of recovering from disk
// failures, systems infrequently dump the contents of non-volatile
// storage into an off-line archive"; the log then replays everything
// committed since the dump.
//
// The archive is a point-in-time copy of the segment sectors together
// with the log position at dump time (the archive LSN). Media recovery
// restores the sectors and runs the standard restart algorithm with its
// redo scan floored at the archive LSN, so every post-archive effect is
// repeated over the restored image — value records physically, operation
// records guarded by the restored page sequence numbers — and losers are
// undone as usual. The log itself is assumed to survive (on the original
// hardware it would live on separate stable storage); reclamation must
// therefore not advance past an archive the operator still depends on —
// PinLowLSN arranges that.

// ArchiveMark is the log position a segment archive was taken at; media
// recovery replays the log forward from it.
type ArchiveMark struct {
	LSN wal.LSN
}

// PrepareArchive quiesces for an archive dump: every dirty page is forced
// to the segments (through the write-ahead protocol) and a checkpoint is
// taken, so the on-disk segments reflect all logged effects up to the
// returned mark. The caller then copies the segment sectors (e.g. with
// core.Node.ArchiveSegments) and stores them with the mark.
func (m *Manager) PrepareArchive() (ArchiveMark, error) {
	if err := m.k.FlushAll(); err != nil {
		return ArchiveMark{}, fmt.Errorf("recovery: flushing for archive: %w", err)
	}
	if err := m.Checkpoint(); err != nil {
		return ArchiveMark{}, err
	}
	return ArchiveMark{LSN: m.log.DurableLSN()}, nil
}

// PinLowLSN prevents log reclamation from discarding records at or above
// lsn, keeping the log replayable over an archive taken at that mark.
// Call with the mark's LSN after each archive; call with a newer mark (or
// wal.NilLSN to unpin) when an old archive is retired.
func (m *Manager) PinLowLSN(lsn wal.LSN) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pinnedLow = lsn
}

// MediaRecover rebuilds segment state after the caller has restored the
// archived segment sectors: the standard restart runs with its redo scan
// floored at the archive mark, repeating history from the dump forward
// and settling winners, losers and in-doubt transactions. Data servers
// must be registered (their undo/redo code attached) before calling.
func (m *Manager) MediaRecover(mark ArchiveMark, src TransStatusSource) (*RestartReport, error) {
	if mark.LSN == wal.NilLSN {
		return nil, fmt.Errorf("recovery: media recovery needs a valid archive mark")
	}
	if mark.LSN < m.log.LowLSN() {
		return nil, fmt.Errorf("recovery: log reclaimed past the archive mark (%d < %d); the archive is unusable",
			mark.LSN, m.log.LowLSN())
	}
	return m.restartFrom(src, mark.LSN)
}
