// Package recovery implements the TABS Recovery Manager (paper §3.2.2).
//
// The Recovery Manager coordinates all access to the node's common
// write-ahead log. It writes log records on behalf of data servers (value
// and operation logging, §2.1.3), the Transaction Manager (commit, abort,
// prepare records), and the kernel (via the pager protocol it implements:
// the dirty-page table and the write-ahead force before page steals). It
// processes transaction aborts by following the backward chain of a
// transaction's records and instructing servers to undo their effects, it
// coordinates checkpoints and log-space reclamation, and after a crash it
// scans the log to restore recoverable segments to a state reflecting only
// committed and prepared transactions.
package recovery

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"tabs/internal/kernel"
	"tabs/internal/simclock"
	"tabs/internal/stats"
	"tabs/internal/trace"
	"tabs/internal/types"
	"tabs/internal/wal"
)

// Undoer is the server-side interface the Recovery Manager drives during
// abort and crash recovery. The server library provides a generic
// implementation for value-logged servers (installing old values); servers
// that use operation logging register logical undo/redo procedures
// (§3.1.1: RecoverServer "calls the server library's undo/redo code").
type Undoer interface {
	// UndoUpdate reverses one value-logging record by installing the old
	// value. (Redo of value records is physical and the Recovery Manager
	// applies it directly to the recoverable segment.)
	UndoUpdate(tid types.TransID, u *wal.UpdateBody) error
	// UndoOperation reverses one operation-logging record by running its
	// undo script.
	UndoOperation(tid types.TransID, o *wal.OperationBody) error
	// RedoOperation reapplies one operation-logging record by running its
	// redo script (crash recovery; guarded by the page-sequence test).
	RedoOperation(tid types.TransID, o *wal.OperationBody) error
}

// TransStatusSource lets the Recovery Manager query the Transaction
// Manager for the fate of transactions found in the log during crash
// recovery (§3.2.2: "The Recovery Manager then queries the Transaction
// Manager to discover the state of the transaction").
type TransStatusSource interface {
	// ResolveStatus returns the final status of a transaction whose
	// outcome the local log does not decide (in-doubt prepared
	// transactions ask the coordinator).
	ResolveStatus(tid types.TransID, prep *wal.PrepareBody) types.Status
	// RestoreTransRecord replays a transaction-management log record to
	// the Transaction Manager during the analysis pass.
	RestoreTransRecord(r *wal.Record)
}

// PreparedRestorer is optionally implemented by a TransStatusSource. When
// it is, restart hands back every transaction that is still prepared after
// in-doubt resolution, so the Transaction Manager can rebuild the volatile
// state it lost in the crash — without this a prepared participant forgot
// it was in doubt and could acknowledge a phase-2 commit it never applied.
type PreparedRestorer interface {
	RestorePrepared(tid types.TransID, prep *wal.PrepareBody)
}

// ACPSource is the commit-protocol acceptor state that checkpoints must
// capture and restart must rebuild (implemented by acp.Manager). Acceptor
// state rides the common log as RecACP records; the checkpoint carries a
// bounded snapshot blob so reclamation cannot strand promises behind the
// log's low-water mark, with entries that do not fit re-logged after the
// checkpoint record.
type ACPSource interface {
	// CheckpointState returns a snapshot blob at most limit bytes plus
	// individual entry encodings that did not fit.
	CheckpointState(limit int) (blob []byte, overflow [][]byte)
	// RestoreState replays a checkpoint blob during the analysis pass.
	RestoreState(blob []byte)
	// RestoreRecord replays one RecACP record body during analysis.
	RestoreRecord(body []byte)
}

// Errors.
var (
	ErrUnknownServer = errors.New("recovery: no registered undoer for server")
	ErrNotCrashed    = errors.New("recovery: restart on a live manager")
)

type transState struct {
	firstLSN wal.LSN
	lastLSN  wal.LSN
	status   types.Status
}

// Manager is one node's Recovery Manager.
type Manager struct {
	mu  sync.Mutex
	log *wal.Log
	k   *kernel.Kernel
	rec *stats.Recorder
	tr  *trace.Tracer

	// dirty is the dirty-page table: page -> recLSN (earliest record whose
	// effect may not be in the segment).
	dirty map[types.PageID]wal.LSN
	// pageLSN tracks the newest record LSN applying to each dirty page;
	// the write-ahead rule forces the log to this LSN before a steal, and
	// its value becomes the page's header sequence number (§3.2.1).
	pageLSN map[types.PageID]wal.LSN
	// trans tracks live transactions' log chains.
	trans map[types.TransID]*transState
	// undoers routes undo/redo instructions to data servers.
	undoers map[types.ServerID]Undoer

	checkpointEvery int // transactions between automatic checkpoints
	commitsSinceCkp int
	// pinnedLow, when nonzero, bounds reclamation so the log stays
	// replayable over an archive taken at that LSN (media recovery).
	pinnedLow wal.LSN
	// acp, when set, has its acceptor state checkpointed and restored.
	acp ACPSource
}

// Config parameterizes a Manager.
type Config struct {
	Log    *wal.Log
	Kernel *kernel.Kernel
	Rec    *stats.Recorder
	// CheckpointEvery takes a checkpoint after this many logged commits;
	// 0 uses a default of 64. Checkpoint intervals are "determined by the
	// transaction manager or when the system is close to running out of
	// log space" (§3.2.2).
	CheckpointEvery int
	Trace           *trace.Tracer
}

// New returns a Recovery Manager and installs it as the kernel's pager.
func New(cfg Config) *Manager {
	m := &Manager{
		log:             cfg.Log,
		k:               cfg.Kernel,
		rec:             cfg.Rec,
		tr:              cfg.Trace,
		dirty:           make(map[types.PageID]wal.LSN),
		pageLSN:         make(map[types.PageID]wal.LSN),
		trans:           make(map[types.TransID]*transState),
		undoers:         make(map[types.ServerID]Undoer),
		checkpointEvery: cfg.CheckpointEvery,
	}
	if m.checkpointEvery <= 0 {
		m.checkpointEvery = 64
	}
	cfg.Kernel.SetPager(m)
	return m
}

// Log exposes the underlying log (read-only uses in tests and benches).
func (m *Manager) Log() *wal.Log { return m.log }

// RegisterUndoer routes undo/redo instructions for server to u.
func (m *Manager) RegisterUndoer(server types.ServerID, u Undoer) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.undoers[server] = u
}

// --- Pager protocol (kernel.Pager) ---------------------------------------

// PageFirstDirtied records the page in the dirty-page table with the
// current end of log as its recovery LSN.
func (m *Manager) PageFirstDirtied(p types.PageID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.dirty[p]; !ok {
		m.dirty[p] = m.log.NextLSN()
	}
}

// RequestPageWrite enforces the write-ahead rule: every log record that
// applies to the page is forced before the kernel may copy the page to its
// recoverable segment. The returned header is the page's new sequence
// number — the LSN of the newest record applying to it, which operation
// logging compares against record LSNs during redo (§3.2.1). Steal forces
// participate in group commit like any other Force caller: a steal that
// arrives while a commit batch is in flight parks and usually finds its
// target already durable when the batch lands.
func (m *Manager) RequestPageWrite(p types.PageID) (uint64, error) {
	m.mu.Lock()
	lsn := m.pageLSN[p]
	m.mu.Unlock()
	if lsn != wal.NilLSN {
		if err := m.log.Force(lsn + 1); err != nil {
			return 0, err
		}
	}
	return uint64(lsn), nil
}

// PageWritten removes the page from the dirty-page table on success.
func (m *Manager) PageWritten(p types.PageID, ok bool) {
	if !ok {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.dirty, p)
	delete(m.pageLSN, p)
}

// --- Record writing -------------------------------------------------------

// append chains r into its transaction's backward chain and appends it.
func (m *Manager) append(r *wal.Record) (wal.LSN, error) {
	m.mu.Lock()
	ts := m.trans[r.TID]
	if ts == nil {
		ts = &transState{status: types.StatusActive}
		m.trans[r.TID] = ts
	}
	r.PrevLSN = ts.lastLSN
	m.mu.Unlock()

	lsn, err := m.log.Append(r)
	if err == wal.ErrLogFull {
		// Reclamation attempts to free space, then retry once (§3.2.2).
		if rerr := m.Reclaim(); rerr != nil {
			return 0, fmt.Errorf("%w (reclamation failed: %v)", err, rerr)
		}
		lsn, err = m.log.Append(r)
	}
	if err != nil {
		return 0, err
	}
	m.mu.Lock()
	if ts.firstLSN == wal.NilLSN {
		ts.firstLSN = lsn
	}
	ts.lastLSN = lsn
	m.mu.Unlock()
	return lsn, nil
}

// notePages records lsn as the newest record applying to the given pages
// (raising the write-ahead force point) and ensures the dirty-page table's
// recovery LSN is no later than lsn. The lowering matters during restart:
// the kernel's first-dirty callback stamps a redo-time LSN, but the page's
// missing effects date from the record being replayed, and a checkpoint
// taken after restart must direct the next recovery at least that far
// back.
func (m *Manager) notePages(lsn wal.LSN, pages []types.PageID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, p := range pages {
		if cur, ok := m.dirty[p]; !ok || lsn < cur {
			m.dirty[p] = lsn
		}
		if m.pageLSN[p] < lsn {
			m.pageLSN[p] = lsn
		}
	}
}

// LogUpdate spools a value-logging record: the old and new value of one
// object, at most a page each (§2.1.3). The data server sends this to the
// Recovery Manager as a large message (the paper charges the log-data
// transfer at ~4.4 ms; Table 5-2 counts one large message per local
// write).
func (m *Manager) LogUpdate(tid types.TransID, server types.ServerID, u *wal.UpdateBody) (wal.LSN, error) {
	if len(u.Old) > types.PageSize || len(u.New) > types.PageSize {
		return 0, fmt.Errorf("recovery: value record exceeds one page (old %d, new %d)", len(u.Old), len(u.New))
	}
	if m.rec != nil {
		m.rec.Record(simclock.LargeMsg) // server -> RM log data
	}
	r := &wal.Record{TID: tid, Type: wal.RecUpdate, Server: server, Body: wal.EncodeUpdate(u)}
	lsn, err := m.append(r)
	if err != nil {
		return 0, err
	}
	m.notePages(lsn, u.Object.Pages())
	return lsn, nil
}

// LogOperation spools an operation-logging record (§2.1.3). The Pages list
// is completed with the record's own LSN as each page's new sequence
// number, which is what RequestPageWrite will hand the kernel when the
// page is eventually stolen.
func (m *Manager) LogOperation(tid types.TransID, server types.ServerID, o *wal.OperationBody) (wal.LSN, error) {
	if m.rec != nil {
		m.rec.Record(simclock.LargeMsg)
	}
	// Two-step append: assign the LSN first so it can be embedded as the
	// pages' sequence number. wal.Log assigns LSNs at Append, so embed
	// the predicted next LSN; Append under the manager's own serialization
	// makes the prediction exact.
	m.mu.Lock()
	predicted := m.log.NextLSN()
	m.mu.Unlock()
	for i := range o.Pages {
		o.Pages[i].Seq = uint64(predicted)
	}
	r := &wal.Record{TID: tid, Type: wal.RecOperation, Server: server, Body: wal.EncodeOperation(o)}
	lsn, err := m.append(r)
	if err != nil {
		return 0, err
	}
	if lsn != predicted {
		// A concurrent append slipped in between prediction and append;
		// rewrite with the true LSN. This is rare and costs one extra
		// record... instead, fix up by re-encoding under the true LSN.
		for i := range o.Pages {
			o.Pages[i].Seq = uint64(lsn)
		}
		// The already-appended record body embeds the stale prediction;
		// recovery compares header >= record LSN, so a smaller embedded
		// seq is conservative (may redo unnecessarily) but never unsafe.
	}
	pages := make([]types.PageID, 0, len(o.Pages))
	for _, ps := range o.Pages {
		pages = append(pages, ps.Page)
	}
	m.notePages(lsn, pages)
	return lsn, nil
}

// LogCommit writes and forces a commit record; after it returns the
// transaction is durably committed on this node (§2.1.3: log records must
// be forced before transactions commit). Concurrent committers share log
// forces: the force below either leads one group-commit batch or rides a
// batch another committer's force pays for, so N simultaneous commits cost
// far fewer than N Stable Storage Writes (see wal.Log).
func (m *Manager) LogCommit(tid types.TransID) error {
	r := &wal.Record{TID: tid, Type: wal.RecCommit}
	if _, err := m.append(r); err != nil {
		return err
	}
	if err := m.log.Force(m.log.NextLSN()); err != nil {
		return err
	}
	m.finish(tid, types.StatusCommitted)
	return nil
}

// LogCommitLazy writes a commit record without forcing; used by 2PC
// participants whose prepare record already guarantees durability of the
// effects and whose outcome the coordinator remembers.
func (m *Manager) LogCommitLazy(tid types.TransID) error {
	r := &wal.Record{TID: tid, Type: wal.RecCommit}
	if _, err := m.append(r); err != nil {
		return err
	}
	m.finish(tid, types.StatusCommitted)
	return nil
}

// LogPrepare writes and forces a prepare record carrying the node's
// position in the commit spanning tree (§3.2.3). Like commit records,
// concurrent prepare forces coalesce into group-commit batches.
func (m *Manager) LogPrepare(tid types.TransID, p *wal.PrepareBody) error {
	r := &wal.Record{TID: tid, Type: wal.RecPrepare, Body: wal.EncodePrepare(p)}
	if _, err := m.append(r); err != nil {
		return err
	}
	if err := m.log.Force(m.log.NextLSN()); err != nil {
		return err
	}
	m.mu.Lock()
	if ts := m.trans[tid]; ts != nil {
		ts.status = types.StatusPrepared
	}
	m.mu.Unlock()
	return nil
}

// SetACPSource wires the commit-protocol acceptor state into checkpoints
// and restart. Call before transactions start.
func (m *Manager) SetACPSource(src ACPSource) {
	m.mu.Lock()
	m.acp = src
	m.mu.Unlock()
}

// LogACP appends one acceptor-state record, forced when the protocol
// demands it (promises and acceptances must be stable before they are
// acknowledged; decisions may be lazy). The record deliberately bypasses
// append(): acceptor state belongs to no local transaction chain, must
// not pollute the trans table (which would defeat the read-only commit
// optimization for transactions that only hosted acceptor traffic), and
// its body is self-contained so analysis replays it without PrevLSN
// bookkeeping.
func (m *Manager) LogACP(body []byte, force bool) error {
	r := &wal.Record{Type: wal.RecACP, Body: body}
	_, err := m.log.Append(r)
	if err == wal.ErrLogFull {
		if rerr := m.Reclaim(); rerr != nil {
			return fmt.Errorf("%w (reclamation failed: %v)", err, rerr)
		}
		_, err = m.log.Append(r)
	}
	if err != nil {
		return err
	}
	if force {
		return m.log.Force(m.log.NextLSN())
	}
	return nil
}

// HasLogged reports whether tid has written any log records (used for the
// read-only commit optimization: a transaction that logged nothing needs
// no commit record and no force).
func (m *Manager) HasLogged(tid types.TransID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	ts := m.trans[tid]
	return ts != nil && ts.firstLSN != wal.NilLSN
}

// finish records the terminal status and forgets the transaction's chain,
// and triggers a checkpoint when due.
func (m *Manager) finish(tid types.TransID, st types.Status) {
	m.mu.Lock()
	delete(m.trans, tid)
	due := false
	if st == types.StatusCommitted {
		m.commitsSinceCkp++
		if m.commitsSinceCkp >= m.checkpointEvery {
			m.commitsSinceCkp = 0
			due = true
		}
	}
	m.mu.Unlock()
	if due {
		// Best effort; a failure surfaces on the next explicit call, but
		// count it so a silently failing background checkpoint is visible
		// in the metrics snapshot rather than lost.
		if err := m.Checkpoint(); err != nil {
			m.tr.Count("recovery.checkpoint.errors", 1)
		}
	}
	if m.log.NearlyFull() {
		if err := m.Reclaim(); err != nil {
			m.tr.Count("recovery.reclaim.errors", 1)
		}
	}
}

// Abort undoes every effect of tid by following the backward chain of its
// log records and instructing the owning servers to undo them (§3.2.2),
// then writes an abort record. Every undo logs a compensation record, so a
// crash in the middle of an abort resumes cleanly: restart skips already
// compensated records and the redo pass replays the compensations
// themselves.
func (m *Manager) Abort(tid types.TransID) error {
	m.mu.Lock()
	ts := m.trans[tid]
	var last wal.LSN
	if ts != nil {
		last = ts.lastLSN
	}
	m.mu.Unlock()

	if err := m.undoChain(tid, last, nil); err != nil {
		return err
	}
	if _, err := m.append(&wal.Record{TID: tid, Type: wal.RecAbort}); err != nil {
		return err
	}
	m.finish(tid, types.StatusAborted)
	return nil
}

// undoChain walks tid's backward chain from last, undoing every
// un-compensated update/operation record and logging a CLR for each.
// preCompensated seeds the compensated-LSN set (restart passes CLRs it saw
// during analysis).
func (m *Manager) undoChain(tid types.TransID, last wal.LSN, preCompensated map[wal.LSN]bool) error {
	compensated := make(map[wal.LSN]bool, len(preCompensated))
	for l := range preCompensated {
		compensated[l] = true
	}
	var toUndo []*wal.Record
	err := m.log.TransBackChain(last, func(r *wal.Record) (bool, error) {
		switch r.Type {
		case wal.RecUpdateCLR, wal.RecOperationCLR:
			clr, err := wal.DecodeCLR(r.Body)
			if err != nil {
				return false, err
			}
			compensated[clr.CompLSN] = true
		case wal.RecUpdate, wal.RecOperation:
			if !compensated[r.LSN] {
				toUndo = append(toUndo, r)
			}
		}
		return true, nil
	})
	if err != nil {
		return err
	}
	for _, r := range toUndo {
		if err := m.undoRecord(r); err != nil {
			return err
		}
	}
	return nil
}

// undoRecord dispatches one undo to the owning server and logs the
// compensation record that makes the undo redoable and not repeatable.
func (m *Manager) undoRecord(r *wal.Record) error {
	m.mu.Lock()
	u := m.undoers[r.Server]
	m.mu.Unlock()
	if u == nil {
		return fmt.Errorf("%w: %q", ErrUnknownServer, r.Server)
	}
	if m.rec != nil {
		m.rec.Record(simclock.SmallMsg) // RM -> server undo instruction
	}
	switch r.Type {
	case wal.RecUpdate:
		body, err := wal.DecodeUpdate(r.Body)
		if err != nil {
			return err
		}
		if err := u.UndoUpdate(r.TID, body); err != nil {
			return err
		}
		inverse := &wal.UpdateBody{Object: body.Object, Old: body.New, New: body.Old}
		clr := &wal.Record{
			TID:    r.TID,
			Type:   wal.RecUpdateCLR,
			Server: r.Server,
			Body:   wal.EncodeCLR(&wal.CLRBody{CompLSN: r.LSN, Inner: wal.EncodeUpdate(inverse)}),
		}
		lsn, err := m.append(clr)
		if err != nil {
			return err
		}
		m.notePages(lsn, body.Object.Pages())
	case wal.RecOperation:
		body, err := wal.DecodeOperation(r.Body)
		if err != nil {
			return err
		}
		if err := u.UndoOperation(r.TID, body); err != nil {
			return err
		}
		m.mu.Lock()
		predicted := m.log.NextLSN()
		m.mu.Unlock()
		inverse := &wal.OperationBody{Op: body.Op, RedoArgs: body.UndoArgs, Pages: body.Pages}
		for i := range inverse.Pages {
			inverse.Pages[i].Seq = uint64(predicted)
		}
		clr := &wal.Record{
			TID:    r.TID,
			Type:   wal.RecOperationCLR,
			Server: r.Server,
			Body:   wal.EncodeCLR(&wal.CLRBody{CompLSN: r.LSN, Inner: wal.EncodeOperation(inverse)}),
		}
		lsn, err := m.append(clr)
		if err != nil {
			return err
		}
		pages := make([]types.PageID, 0, len(body.Pages))
		for _, ps := range body.Pages {
			pages = append(pages, ps.Page)
		}
		m.notePages(lsn, pages)
	}
	return nil
}

// ActiveTransactions returns a snapshot of transactions with unresolved
// log chains (used by checkpoints and by the Transaction Manager during
// restart).
func (m *Manager) ActiveTransactions() []wal.ActiveTrans {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]wal.ActiveTrans, 0, len(m.trans))
	for tid, ts := range m.trans {
		out = append(out, wal.ActiveTrans{TID: tid, Status: ts.status, FirstLSN: ts.firstLSN, LastLSN: ts.lastLSN})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FirstLSN < out[j].FirstLSN })
	return out
}

// Checkpoint writes a checkpoint record listing the dirty pages and active
// transactions, forces it, and updates the log anchor (§2.1.3, §3.2.2).
func (m *Manager) Checkpoint() error {
	m.mu.Lock()
	body := &wal.CheckpointBody{}
	for p, rec := range m.dirty {
		body.DirtyPages = append(body.DirtyPages, wal.DirtyPage{Page: p, RecLSN: rec})
	}
	sort.Slice(body.DirtyPages, func(i, j int) bool {
		a, b := body.DirtyPages[i], body.DirtyPages[j]
		if a.Page.Segment != b.Page.Segment {
			return a.Page.Segment < b.Page.Segment
		}
		return a.Page.Page < b.Page.Page
	})
	for tid, ts := range m.trans {
		body.Active = append(body.Active, wal.ActiveTrans{TID: tid, Status: ts.status, FirstLSN: ts.firstLSN, LastLSN: ts.lastLSN})
	}
	sort.Slice(body.Active, func(i, j int) bool { return body.Active[i].FirstLSN < body.Active[j].FirstLSN })
	acpSrc := m.acp
	m.mu.Unlock()

	// Capture commit-protocol acceptor state. The blob shares the record's
	// body budget with the dirty-page and transaction tables; entries that
	// do not fit are re-logged as RecACP records right after the checkpoint
	// record — still ahead of the anchor the next restart scans from, so
	// reclamation can never strand them. The snapshot is taken outside
	// m.mu: acp state has its own lock and recovery.Manager.mu must not
	// nest over it.
	var overflow [][]byte
	if acpSrc != nil {
		limit := wal.MaxBodySize - len(wal.EncodeCheckpoint(body)) - 8
		if limit < 0 {
			limit = 0
		}
		body.ACP, overflow = acpSrc.CheckpointState(limit)
	}

	sp := m.tr.Begin("recovery", "checkpoint").
		Annotatef("dirty_pages=%d", len(body.DirtyPages)).
		Annotatef("active_trans=%d", len(body.Active)).
		Annotatef("acp_overflow=%d", len(overflow))
	r := &wal.Record{Type: wal.RecCheckpoint, Body: wal.EncodeCheckpoint(body)}
	lsn, err := m.log.Append(r)
	if err != nil {
		sp.EndErr(err)
		return err
	}
	for _, b := range overflow {
		if _, err := m.log.Append(&wal.Record{Type: wal.RecACP, Body: b}); err != nil {
			sp.EndErr(err)
			return err
		}
	}
	if err := m.log.Force(m.log.NextLSN()); err != nil {
		sp.EndErr(err)
		return err
	}
	err = m.log.SetCheckpoint(lsn)
	sp.Annotatef("lsn=%d", lsn).EndErr(err)
	m.tr.Count("recovery.checkpoint.count", 1)
	return err
}

// Reclaim frees log space: it forces back the dirty pages whose recovery
// LSNs pin the oldest log records, takes a fresh checkpoint, and advances
// the log's low-water mark to the oldest LSN still needed — the minimum of
// the active transactions' first records and the remaining dirty pages'
// recovery LSNs (§3.2.2: "log reclamation may force pages back to disk
// before they would otherwise be written").
func (m *Manager) Reclaim() error {
	sp := m.tr.Begin("recovery", "reclaim")
	// Flush every dirty page; this empties the dirty-page table via the
	// pager protocol.
	if err := m.k.FlushAll(); err != nil {
		sp.EndErr(err)
		return err
	}
	if err := m.Checkpoint(); err != nil {
		sp.EndErr(err)
		return err
	}
	m.mu.Lock()
	low := m.log.CheckpointLSN()
	for _, ts := range m.trans {
		if ts.firstLSN != wal.NilLSN && ts.firstLSN < low {
			low = ts.firstLSN
		}
	}
	for _, rec := range m.dirty {
		if rec < low {
			low = rec
		}
	}
	if m.pinnedLow != wal.NilLSN && m.pinnedLow < low {
		// An archive depends on replaying from pinnedLow; keep the log.
		low = m.pinnedLow
	}
	m.mu.Unlock()
	err := m.log.Reclaim(low)
	sp.Annotatef("new_low=%d", low).EndErr(err)
	m.tr.Count("recovery.reclaim.count", 1)
	return err
}

// DirtyPageCount returns the size of the dirty-page table.
func (m *Manager) DirtyPageCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.dirty)
}
