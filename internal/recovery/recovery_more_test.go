package recovery

import (
	"testing"

	"tabs/internal/types"
	"tabs/internal/wal"
)

// TestInDoubtStaysPreparedAcrossRestarts: the coordinator is unreachable
// at the first restart; the prepared transaction's effects must persist
// and the transaction must still be live (prepared) afterwards. A later
// restart that does reach the coordinator resolves it.
func TestInDoubtStaysPreparedAcrossRestarts(t *testing.T) {
	r := newRig(t, nil)
	r.write(t, tid(1), "dbt4")
	if err := r.rm.LogPrepare(tid(1), &wal.PrepareBody{Parent: "coord"}); err != nil {
		t.Fatal(err)
	}
	r.k.Crash()
	r.rm.Crash()

	// First restart: the coordinator cannot be reached (source answers
	// "still prepared").
	r2 := newRig(t, r.d)
	src := &fakeStatusSource{answer: types.StatusPrepared}
	report, err := r2.rm.Restart(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.InDoubt) != 1 {
		t.Fatalf("in doubt: %v", report.InDoubt)
	}
	// Effects persist (prepared transactions are winners for redo).
	if got := r2.read(t); got != "dbt4" {
		t.Errorf("prepared effect lost: %q", got)
	}
	// The transaction is still live in the Recovery Manager's table.
	live := r2.rm.ActiveTransactions()
	if len(live) != 1 || live[0].Status != types.StatusPrepared {
		t.Fatalf("live transactions: %+v", live)
	}

	// Second crash and restart: now the coordinator answers committed.
	r2.k.Crash()
	r2.rm.Crash()
	r3 := newRig(t, r.d)
	src3 := &fakeStatusSource{answer: types.StatusCommitted}
	if _, err := r3.rm.Restart(src3); err != nil {
		t.Fatal(err)
	}
	if got := r3.read(t); got != "dbt4" {
		t.Errorf("committed effect lost: %q", got)
	}
	if n := len(r3.rm.ActiveTransactions()); n != 0 {
		t.Errorf("%d transactions still live after resolution", n)
	}
}

// TestLogCommitLazyDoesNotForce: the participant's lazy commit appends
// without forcing; a following force makes it durable.
func TestLogCommitLazyDoesNotForce(t *testing.T) {
	r := newRig(t, nil)
	r.write(t, tid(1), "lazy")
	durable := r.lg.DurableLSN()
	if err := r.rm.LogCommitLazy(tid(1)); err != nil {
		t.Fatal(err)
	}
	if r.lg.DurableLSN() != durable {
		t.Error("lazy commit forced the log")
	}
	if err := r.lg.Force(r.lg.NextLSN()); err != nil {
		t.Fatal(err)
	}
	if r.lg.DurableLSN() <= durable {
		t.Error("force after lazy commit did nothing")
	}
}

// TestAutoCheckpoint: the Recovery Manager takes a checkpoint after the
// configured number of commits (the Transaction Manager determines the
// interval, §3.2.2).
func TestAutoCheckpoint(t *testing.T) {
	d := newRig(t, nil).d
	// Build a manager with a tiny checkpoint interval over the same disk
	// layout helpers.
	r := newRig(t, d)
	_ = r
	// newRig uses CheckpointEvery 1<<30; construct the behavior through a
	// direct Config here.
	r2 := newRigWithCheckpointEvery(t, 3)
	before := r2.lg.CheckpointLSN()
	for i := uint64(1); i <= 3; i++ {
		r2.write(t, tid(i), "ckpt")
		if err := r2.rm.LogCommit(tid(i)); err != nil {
			t.Fatal(err)
		}
	}
	if r2.lg.CheckpointLSN() == before {
		t.Error("no checkpoint after CheckpointEvery commits")
	}
}

func newRigWithCheckpointEvery(t *testing.T, every int) *rig {
	t.Helper()
	base := newRig(t, nil)
	rm := New(Config{Log: base.lg, Kernel: base.k, CheckpointEvery: every})
	rm.RegisterUndoer("srv", base.und)
	base.rm = rm
	return base
}

// TestAbortOfUnloggedTransactionIsCheap: aborting a transaction that
// never wrote is a no-op plus an abort record.
func TestAbortOfUnloggedTransaction(t *testing.T) {
	r := newRig(t, nil)
	if err := r.rm.Abort(tid(9)); err != nil {
		t.Fatal(err)
	}
	// Nothing to undo; the log contains just the abort record.
	count := 0
	if err := r.lg.ScanForward(0, func(rec *wal.Record) (bool, error) {
		count++
		if rec.Type != wal.RecAbort {
			t.Errorf("unexpected record %v", rec.Type)
		}
		return true, nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		// The abort record may still be buffered; force and recount.
		if err := r.lg.Force(r.lg.NextLSN()); err != nil {
			t.Fatal(err)
		}
	}
}

// TestUndoerMissingIsAnError: undo instructions for an unregistered
// server must fail loudly, not silently skip.
func TestUndoerMissing(t *testing.T) {
	r := newRig(t, nil)
	u := &wal.UpdateBody{Object: obj, Old: []byte{0, 0, 0, 0}, New: []byte("oops")}
	if _, err := r.rm.LogUpdate(tid(1), "ghost-server", u); err != nil {
		t.Fatal(err)
	}
	if err := r.rm.Abort(tid(1)); err == nil {
		t.Error("abort with no registered undoer succeeded")
	}
}
