package recovery

import (
	"bytes"
	"testing"

	"tabs/internal/disk"
	"tabs/internal/kernel"
	"tabs/internal/types"
	"tabs/internal/wal"
)

// rig is a Recovery Manager test fixture sharing one simulated disk, so a
// "crash" is simulated by building a fresh rig over the same disk.
type rig struct {
	d   *disk.Disk
	k   *kernel.Kernel
	lg  *wal.Log
	rm  *Manager
	und *kernelUndoer
}

// kernelUndoer is a minimal data-server stand-in: value undo installs old
// bytes; operations interpret "set <byte>" scripts against object 0.
type kernelUndoer struct {
	k   *kernel.Kernel
	obj types.ObjectID
}

func (u *kernelUndoer) UndoUpdate(_ types.TransID, b *wal.UpdateBody) error {
	return u.k.Write(b.Object, b.Old)
}

func (u *kernelUndoer) UndoOperation(tid types.TransID, o *wal.OperationBody) error {
	return u.k.Write(u.obj, o.UndoArgs)
}

func (u *kernelUndoer) RedoOperation(tid types.TransID, o *wal.OperationBody) error {
	return u.k.Write(u.obj, o.RedoArgs)
}

func newRig(t *testing.T, d *disk.Disk) *rig {
	t.Helper()
	if d == nil {
		d = disk.New(disk.DefaultGeometry(512))
	}
	k := kernel.New(kernel.Config{Disk: d, PoolPages: 32})
	if err := k.AddSegment(1, 128, 16); err != nil {
		t.Fatal(err)
	}
	lg, err := wal.Open(wal.Config{Disk: d, Base: 0, Sectors: 64})
	if err != nil {
		t.Fatal(err)
	}
	rm := New(Config{Log: lg, Kernel: k, CheckpointEvery: 1 << 30})
	und := &kernelUndoer{k: k, obj: types.ObjectID{Segment: 1, Offset: 0, Length: 4}}
	rm.RegisterUndoer("srv", und)
	return &rig{d: d, k: k, lg: lg, rm: rm, und: und}
}

func tid(n uint64) types.TransID {
	return types.TransID{Node: "n", Seq: n, RootNode: "n", RootSeq: n}
}

var obj = types.ObjectID{Segment: 1, Offset: 0, Length: 4}

// write performs one pinned, logged value update.
func (r *rig) write(t *testing.T, id types.TransID, val string) {
	t.Helper()
	old, err := r.k.Read(obj)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.k.Write(obj, []byte(val)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.rm.LogUpdate(id, "srv", &wal.UpdateBody{Object: obj, Old: old, New: []byte(val)}); err != nil {
		t.Fatal(err)
	}
}

func (r *rig) read(t *testing.T) string {
	t.Helper()
	b, err := r.k.Read(obj)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestAbortInstallsOldValues(t *testing.T) {
	r := newRig(t, nil)
	r.write(t, tid(1), "aaaa")
	if err := r.rm.LogCommit(tid(1)); err != nil {
		t.Fatal(err)
	}
	r.write(t, tid(2), "bbbb")
	r.write(t, tid(2), "cccc")
	if err := r.rm.Abort(tid(2)); err != nil {
		t.Fatal(err)
	}
	if got := r.read(t); got != "aaaa" {
		t.Errorf("after abort: %q", got)
	}
}

func TestAbortIsRepeatableViaCLRs(t *testing.T) {
	r := newRig(t, nil)
	r.write(t, tid(1), "aaaa")
	if err := r.rm.LogCommit(tid(1)); err != nil {
		t.Fatal(err)
	}
	r.write(t, tid(2), "bbbb")
	if err := r.rm.Abort(tid(2)); err != nil {
		t.Fatal(err)
	}
	// A second abort of the same chain must be a no-op: everything is
	// compensated.
	if err := r.rm.Abort(tid(2)); err != nil {
		t.Fatal(err)
	}
	if got := r.read(t); got != "aaaa" {
		t.Errorf("after double abort: %q", got)
	}
}

func TestRestartValueOnlySinglePass(t *testing.T) {
	r := newRig(t, nil)
	r.write(t, tid(1), "keep")
	if err := r.rm.LogCommit(tid(1)); err != nil {
		t.Fatal(err)
	}
	r.write(t, tid(2), "lost")
	// Steal the dirty page so the loser's effect is on disk, then crash.
	if err := r.k.FlushAll(); err != nil {
		t.Fatal(err)
	}
	r.k.Crash()
	r.rm.Crash()

	r2 := newRig(t, r.d)
	report, err := r2.rm.Restart(nil)
	if err != nil {
		t.Fatal(err)
	}
	if report.Passes != 1 {
		t.Errorf("pure value log should use 1 pass, used %d", report.Passes)
	}
	if got := r2.read(t); got != "keep" {
		t.Errorf("after restart: %q", got)
	}
}

func TestRestartRedoesLostCommitted(t *testing.T) {
	r := newRig(t, nil)
	r.write(t, tid(1), "good")
	if err := r.rm.LogCommit(tid(1)); err != nil {
		t.Fatal(err)
	}
	// No flush: the committed effect exists only in the log.
	r.k.Crash()
	r.rm.Crash()

	r2 := newRig(t, r.d)
	if _, err := r2.rm.Restart(nil); err != nil {
		t.Fatal(err)
	}
	if got := r2.read(t); got != "good" {
		t.Errorf("committed effect not redone: %q", got)
	}
}

func TestRestartResolvesPrepared(t *testing.T) {
	r := newRig(t, nil)
	r.write(t, tid(1), "wxyz")
	if err := r.rm.LogPrepare(tid(1), &wal.PrepareBody{Parent: "coord"}); err != nil {
		t.Fatal(err)
	}
	r.k.Crash()
	r.rm.Crash()

	// Coordinator says committed.
	r2 := newRig(t, r.d)
	src := &fakeStatusSource{answer: types.StatusCommitted}
	report, err := r2.rm.Restart(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.InDoubt) != 1 {
		t.Errorf("in-doubt list %v", report.InDoubt)
	}
	if src.asked != 1 {
		t.Errorf("coordinator asked %d times", src.asked)
	}
	if got := r2.read(t); got != "wxyz" {
		t.Errorf("prepared-then-committed effect lost: %q", got)
	}
}

func TestRestartAbortsPreparedWhenCoordinatorSaysNo(t *testing.T) {
	r := newRig(t, nil)
	r.write(t, tid(1), "wxyz")
	if err := r.rm.LogPrepare(tid(1), &wal.PrepareBody{Parent: "coord"}); err != nil {
		t.Fatal(err)
	}
	if err := r.k.FlushAll(); err != nil { // effect reaches disk
		t.Fatal(err)
	}
	r.k.Crash()
	r.rm.Crash()

	r2 := newRig(t, r.d)
	src := &fakeStatusSource{answer: types.StatusAborted}
	if _, err := r2.rm.Restart(src); err != nil {
		t.Fatal(err)
	}
	if got := r2.read(t); got == "wxyz" {
		t.Errorf("aborted prepared effect survived: %q", got)
	}
}

type fakeStatusSource struct {
	answer types.Status
	asked  int
}

func (f *fakeStatusSource) ResolveStatus(types.TransID, *wal.PrepareBody) types.Status {
	f.asked++
	return f.answer
}

func (f *fakeStatusSource) RestoreTransRecord(*wal.Record) {}

func TestCheckpointBoundsAnalysis(t *testing.T) {
	r := newRig(t, nil)
	for i := uint64(1); i <= 10; i++ {
		r.write(t, tid(i), "vvvv")
		if err := r.rm.LogCommit(tid(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.k.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := r.rm.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// One more transaction after the checkpoint.
	r.write(t, tid(11), "tail")
	if err := r.rm.LogCommit(tid(11)); err != nil {
		t.Fatal(err)
	}
	r.k.Crash()
	r.rm.Crash()

	r2 := newRig(t, r.d)
	report, err := r2.rm.Restart(nil)
	if err != nil {
		t.Fatal(err)
	}
	// The analysis scan must start at the checkpoint: far fewer records
	// than the 21+ in the whole log... the single backward pass still
	// walks the retained log, so assert on the analysis share indirectly:
	// redo applied the tail transaction.
	if got := r2.read(t); got != "tail" {
		t.Errorf("after restart: %q", got)
	}
	_ = report
}

func TestReclaimAdvancesLowWaterMark(t *testing.T) {
	r := newRig(t, nil)
	for i := uint64(1); i <= 20; i++ {
		r.write(t, tid(i), "vvvv")
		if err := r.rm.LogCommit(tid(i)); err != nil {
			t.Fatal(err)
		}
	}
	lowBefore := r.lg.LowLSN()
	if err := r.rm.Reclaim(); err != nil {
		t.Fatal(err)
	}
	if r.lg.LowLSN() <= lowBefore {
		t.Errorf("reclaim did not advance the low-water mark: %d -> %d", lowBefore, r.lg.LowLSN())
	}
	// Dirty pages must be gone (forced during reclamation).
	if n := r.rm.DirtyPageCount(); n != 0 {
		t.Errorf("%d dirty pages after reclamation", n)
	}
}

func TestWriteAheadRuleOnSteal(t *testing.T) {
	r := newRig(t, nil)
	r.write(t, tid(1), "wal!")
	durableBefore := r.lg.DurableLSN()
	// Force the page out through the pager protocol.
	if err := r.k.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if r.lg.DurableLSN() <= durableBefore {
		t.Error("page steal did not force the log first (write-ahead violated)")
	}
	// The page header must carry the newest record LSN.
	seq, err := r.k.ReadPageSeq(types.PageID{Segment: 1, Page: 0})
	if err != nil {
		t.Fatal(err)
	}
	if seq == 0 {
		t.Error("stolen page header has no sequence number")
	}
}

func TestOperationLogging3PassAndPageSeqGuard(t *testing.T) {
	r := newRig(t, nil)
	// Operation-logged change: script bytes are the value to install.
	if err := r.k.Write(obj, []byte("op01")); err != nil {
		t.Fatal(err)
	}
	body := &wal.OperationBody{
		Op:       "set",
		RedoArgs: []byte("op01"),
		UndoArgs: []byte{0, 0, 0, 0},
		Pages:    []wal.PageSeq{{Page: types.PageID{Segment: 1, Page: 0}}},
	}
	if _, err := r.rm.LogOperation(tid(1), "srv", body); err != nil {
		t.Fatal(err)
	}
	if err := r.rm.LogCommit(tid(1)); err != nil {
		t.Fatal(err)
	}
	r.k.Crash()
	r.rm.Crash()

	r2 := newRig(t, r.d)
	report, err := r2.rm.Restart(nil)
	if err != nil {
		t.Fatal(err)
	}
	if report.Passes != 3 {
		t.Errorf("operation log should take 3 passes, took %d", report.Passes)
	}
	if got := r2.read(t); got != "op01" {
		t.Errorf("op redo missing: %q", got)
	}
	// Flush so the header records the redo; another restart must not
	// re-apply (page-sequence guard).
	if err := r2.k.FlushAll(); err != nil {
		t.Fatal(err)
	}
	r2.k.Crash()
	r2.rm.Crash()
	r3 := newRig(t, r.d)
	report3, err := r3.rm.Restart(nil)
	if err != nil {
		t.Fatal(err)
	}
	if report3.Redone != 0 {
		t.Errorf("page-sequence guard failed: %d redos on an up-to-date page", report3.Redone)
	}
}

func TestHasLogged(t *testing.T) {
	r := newRig(t, nil)
	if r.rm.HasLogged(tid(1)) {
		t.Error("fresh transaction has logged?")
	}
	r.write(t, tid(1), "mmmm")
	if !r.rm.HasLogged(tid(1)) {
		t.Error("written transaction has not logged?")
	}
}

func TestValueRecordRejectsOversize(t *testing.T) {
	r := newRig(t, nil)
	big := bytes.Repeat([]byte("x"), types.PageSize+1)
	_, err := r.rm.LogUpdate(tid(1), "srv", &wal.UpdateBody{Object: obj, Old: big, New: big})
	if err == nil {
		t.Error("value record larger than a page accepted (§2.1.3 limit)")
	}
}

// TestValueRecoveryOverlappingObjects pins the ordering rule the single
// backward pass must follow when logged objects overlap: a shard
// migration logs whole-page images while client writes log single cells
// within those pages. The newest record per object decides the value, but
// installation must go oldest-first — applying the (older, larger) page
// image after the (newer, smaller) cell write would wipe a committed
// update, which is exactly the lost-write the migrate torture caught.
func TestValueRecoveryOverlappingObjects(t *testing.T) {
	r := newRig(t, nil)
	page := types.ObjectID{Segment: 1, Offset: 0, Length: types.PageSize}

	// Txn 1: a committed whole-page image (a migration import).
	img := bytes.Repeat([]byte{0xAA}, types.PageSize)
	if err := r.k.Write(page, img); err != nil {
		t.Fatal(err)
	}
	if _, err := r.rm.LogUpdate(tid(1), "srv", &wal.UpdateBody{
		Object: page, Old: make([]byte, types.PageSize), New: img,
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.rm.LogCommit(tid(1)); err != nil {
		t.Fatal(err)
	}

	// Txn 2: a committed cell write inside that page, logged later.
	r.write(t, tid(2), "cell")
	if err := r.rm.LogCommit(tid(2)); err != nil {
		t.Fatal(err)
	}

	r.k.Crash()
	r.rm.Crash()
	r2 := newRig(t, r.d)
	report, err := r2.rm.Restart(nil)
	if err != nil {
		t.Fatal(err)
	}
	if report.Passes != 1 {
		t.Fatalf("value-only log took %d passes, want 1", report.Passes)
	}
	if got := r2.read(t); got != "cell" {
		t.Errorf("cell = %q after recovery, want %q (page image overwrote a newer committed cell write)", got, "cell")
	}
	rest, err := r2.k.Read(types.ObjectID{Segment: 1, Offset: 8, Length: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rest, []byte{0xAA, 0xAA, 0xAA, 0xAA}) {
		t.Errorf("bytes outside the cell = %x, want the page image", rest)
	}
}
