package recovery

import (
	"fmt"

	"tabs/internal/types"
	"tabs/internal/wal"
)

// RestartReport summarizes a crash recovery run.
type RestartReport struct {
	// Passes is the number of scans over the log: 1 for the pure
	// value-logging algorithm, 3 when operation records are present
	// (§2.1.3: the operation-based algorithm "requires three passes over
	// the log during crash recovery, instead of the single pass needed
	// for the value-based algorithm").
	Passes int
	// RecordsScanned counts records visited across all passes.
	RecordsScanned int
	// Redone and Undone count applied redo/undo actions.
	Redone int
	Undone int
	// Winners and Losers list resolved transactions.
	Winners []types.TransID
	Losers  []types.TransID
	// InDoubt lists prepared transactions whose outcome had to be (or
	// still must be) resolved with the commit coordinator.
	InDoubt []types.TransID
}

// analysis is the outcome of the analysis pass.
type analysis struct {
	status      map[types.TransID]types.Status
	lastLSN     map[types.TransID]wal.LSN
	prepares    map[types.TransID]*wal.PrepareBody
	compensated map[wal.LSN]bool
	redoStart   wal.LSN
	hasOps      bool
	scanned     int
}

// Restart performs crash recovery: it scans the log from the last
// checkpoint, determines the fate of every transaction (querying the
// Transaction Manager / coordinator for in-doubt prepared transactions),
// redoes the effects of winners, and undoes the effects of losers, leaving
// recoverable segments reflecting "only the operations of committed and
// prepared transactions" (§3.2.2).
//
// When the scanned log contains only value-logging records, Restart uses
// the paper's single backward pass; otherwise the general three-pass
// algorithm runs.
func (m *Manager) Restart(src TransStatusSource) (*RestartReport, error) {
	return m.restartFrom(src, wal.NilLSN)
}

// restartFrom is Restart with an optional redo floor: when floor is
// nonzero the redo scan starts no later than it. Media recovery uses this
// to replay the log over a restored archive in the same single pass
// structure as crash recovery.
func (m *Manager) restartFrom(src TransStatusSource, floor wal.LSN) (*RestartReport, error) {
	restart := m.tr.Begin("recovery", "restart")
	asp := m.tr.Begin("recovery", "restart.analyze")
	a, err := m.analyze(src, floor)
	if err != nil {
		asp.EndErr(err)
		restart.EndErr(err)
		return nil, err
	}
	asp.Annotatef("scanned=%d", a.scanned).Annotatef("redo_start=%d", a.redoStart).End()
	// Resolve in-doubt prepared transactions before applying effects.
	report := &RestartReport{RecordsScanned: a.scanned}
	for tid, st := range a.status {
		if st != types.StatusPrepared {
			continue
		}
		report.InDoubt = append(report.InDoubt, tid)
		resolved := types.StatusPrepared
		if src != nil {
			resolved = src.ResolveStatus(tid, a.prepares[tid])
		}
		switch resolved {
		case types.StatusCommitted:
			a.status[tid] = types.StatusCommitted
		case types.StatusAborted:
			// Treat as loser: the undo pass reverses it.
			a.status[tid] = types.StatusActive
		default:
			// Still in doubt: effects persist (redo as winner), and the
			// transaction stays prepared awaiting the coordinator.
		}
	}

	if a.hasOps {
		report.Passes = 3
		rsp := m.tr.Begin("recovery", "restart.redo")
		if err := m.redoPass(a, report); err != nil {
			rsp.EndErr(err)
			restart.EndErr(err)
			return nil, err
		}
		rsp.Annotatef("redone=%d", report.Redone).End()
		usp := m.tr.Begin("recovery", "restart.undo")
		if err := m.undoPass(a, report); err != nil {
			usp.EndErr(err)
			restart.EndErr(err)
			return nil, err
		}
		usp.Annotatef("undone=%d", report.Undone).End()
	} else {
		report.Passes = 1
		bsp := m.tr.Begin("recovery", "restart.backward")
		if err := m.singleBackwardPass(a, report); err != nil {
			bsp.EndErr(err)
			restart.EndErr(err)
			return nil, err
		}
		bsp.Annotatef("redone=%d", report.Redone).Annotatef("undone=%d", report.Undone).End()
	}

	// Write abort records for losers and rebuild the live-transaction
	// table: only still-prepared transactions survive restart.
	for tid, st := range a.status {
		switch st {
		case types.StatusActive:
			if _, err := m.append(&wal.Record{TID: tid, Type: wal.RecAbort}); err != nil {
				restart.EndErr(err)
				return nil, err
			}
			report.Losers = append(report.Losers, tid)
			m.mu.Lock()
			delete(m.trans, tid)
			m.mu.Unlock()
		case types.StatusCommitted:
			report.Winners = append(report.Winners, tid)
			m.mu.Lock()
			delete(m.trans, tid)
			m.mu.Unlock()
		case types.StatusPrepared:
			m.mu.Lock()
			m.trans[tid] = &transState{status: types.StatusPrepared, lastLSN: a.lastLSN[tid]}
			m.mu.Unlock()
			if pr, ok := src.(PreparedRestorer); ok {
				pr.RestorePrepared(tid, a.prepares[tid])
			}
		}
	}
	if err := m.log.Force(m.log.NextLSN()); err != nil {
		restart.EndErr(err)
		return nil, err
	}
	// A fresh checkpoint bounds the next crash's recovery work.
	if err := m.Checkpoint(); err != nil {
		restart.EndErr(err)
		return nil, err
	}
	restart.Annotatef("passes=%d", report.Passes).
		Annotatef("winners=%d", len(report.Winners)).
		Annotatef("losers=%d", len(report.Losers)).
		Annotatef("in_doubt=%d", len(report.InDoubt)).
		End()
	return report, nil
}

// analyze scans forward from the last checkpoint, rebuilding transaction
// statuses and finding the redo start point. Transaction-management
// records are passed back to the Transaction Manager (§3.2.2).
func (m *Manager) analyze(src TransStatusSource, floor wal.LSN) (*analysis, error) {
	a := &analysis{
		status:      make(map[types.TransID]types.Status),
		lastLSN:     make(map[types.TransID]wal.LSN),
		prepares:    make(map[types.TransID]*wal.PrepareBody),
		compensated: make(map[wal.LSN]bool),
	}
	start := m.log.CheckpointLSN()
	if start == wal.NilLSN {
		start = m.log.LowLSN()
	}
	if floor != wal.NilLSN && floor < start {
		start = floor
	}
	a.redoStart = start

	// Seed from the checkpoint record, if any: its dirty pages may need
	// redo from before the checkpoint, and its active transactions may
	// need undo.
	m.mu.Lock()
	acpSrc := m.acp
	m.mu.Unlock()
	if ckpt := m.log.CheckpointLSN(); ckpt != wal.NilLSN {
		r, err := m.log.ReadRecord(ckpt)
		if err != nil {
			return nil, fmt.Errorf("recovery: reading checkpoint: %w", err)
		}
		body, err := wal.DecodeCheckpoint(r.Body)
		if err != nil {
			return nil, err
		}
		for _, d := range body.DirtyPages {
			if d.RecLSN < a.redoStart {
				a.redoStart = d.RecLSN
			}
		}
		for _, t := range body.Active {
			a.status[t.TID] = t.Status
			a.lastLSN[t.TID] = t.LastLSN
			if t.FirstLSN != wal.NilLSN && t.FirstLSN < a.redoStart {
				a.redoStart = t.FirstLSN
			}
		}
		if acpSrc != nil && len(body.ACP) > 0 {
			// Acceptor state from the checkpoint. The scan below may start
			// before the checkpoint and replay older RecACP records after
			// this; the acp merge is order-insensitive, so that is fine.
			acpSrc.RestoreState(body.ACP)
		}
	}

	err := m.log.ScanForward(a.redoStart, func(r *wal.Record) (bool, error) {
		a.scanned++
		switch r.Type {
		case wal.RecUpdate:
			a.status[r.TID] = types.StatusActive
			a.lastLSN[r.TID] = r.LSN
		case wal.RecOperation:
			a.status[r.TID] = types.StatusActive
			a.lastLSN[r.TID] = r.LSN
			a.hasOps = true
		case wal.RecUpdateCLR, wal.RecOperationCLR:
			clr, err := wal.DecodeCLR(r.Body)
			if err != nil {
				return false, err
			}
			a.compensated[clr.CompLSN] = true
			a.lastLSN[r.TID] = r.LSN
			if r.Type == wal.RecOperationCLR {
				a.hasOps = true
			}
		case wal.RecCommit:
			a.status[r.TID] = types.StatusCommitted
			if src != nil {
				src.RestoreTransRecord(r)
			}
		case wal.RecAbort:
			a.status[r.TID] = types.StatusAborted
			if src != nil {
				src.RestoreTransRecord(r)
			}
		case wal.RecPrepare:
			a.status[r.TID] = types.StatusPrepared
			a.lastLSN[r.TID] = r.LSN
			body, err := wal.DecodePrepare(r.Body)
			if err != nil {
				return false, err
			}
			a.prepares[r.TID] = body
			if src != nil {
				src.RestoreTransRecord(r)
			}
		case wal.RecACP:
			// Commit-protocol acceptor state: replayed to the acp layer,
			// never into the transaction tables (the record carries no TID).
			if acpSrc != nil {
				acpSrc.RestoreRecord(r.Body)
			}
		}
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	// Aborted transactions were fully compensated before their abort
	// record was written; they need no further attention.
	for tid, st := range a.status {
		if st == types.StatusAborted {
			delete(a.status, tid)
		}
	}
	// Subtransactions commit with their top-level parent (§2.1.3): one
	// commit (or prepare) record is written for the root, and every
	// subtransaction that did not independently abort inherits its fate.
	for tid, st := range a.status {
		if st == types.StatusActive && !tid.IsTopLevel() {
			if rst, ok := a.status[tid.TopLevel()]; ok &&
				(rst == types.StatusCommitted || rst == types.StatusPrepared) {
				a.status[tid] = rst
			}
		}
	}
	return a, nil
}

// redoPass repeats history forward from the redo start point: value
// records are reinstalled unconditionally (physical, idempotent);
// operation records consult the on-disk page sequence numbers and are
// re-invoked only where the page has not yet absorbed them (§3.2.1).
func (m *Manager) redoPass(a *analysis, report *RestartReport) error {
	return m.log.ScanForward(a.redoStart, func(r *wal.Record) (bool, error) {
		report.RecordsScanned++
		switch r.Type {
		case wal.RecUpdate, wal.RecUpdateCLR:
			body, err := decodeUpdateMaybeCLR(r)
			if err != nil {
				return false, err
			}
			if err := m.applyValueRedo(r, body); err != nil {
				return false, err
			}
			report.Redone++
		case wal.RecOperation, wal.RecOperationCLR:
			body, err := decodeOperationMaybeCLR(r)
			if err != nil {
				return false, err
			}
			need, err := m.operationNeedsRedo(r.LSN, body)
			if err != nil {
				return false, err
			}
			if need {
				u := m.undoerFor(r.Server)
				if u == nil {
					return false, fmt.Errorf("%w: %q", ErrUnknownServer, r.Server)
				}
				if err := u.RedoOperation(r.TID, body); err != nil {
					return false, err
				}
				// The redone effect lives in the buffer pool; record the
				// page LSNs so the eventual write-back carries headers
				// that make this redo idempotent across another crash.
				pages := make([]types.PageID, 0, len(body.Pages))
				for _, ps := range body.Pages {
					pages = append(pages, ps.Page)
				}
				m.notePages(r.LSN, pages)
				report.Redone++
			}
		}
		return true, nil
	})
}

// operationNeedsRedo applies the page-sequence test: if any page the
// operation touched carries an on-disk sequence number older than the
// record, the operation's effect is not fully on disk.
func (m *Manager) operationNeedsRedo(lsn wal.LSN, o *wal.OperationBody) (bool, error) {
	for _, ps := range o.Pages {
		seq, err := m.k.ReadPageSeq(ps.Page)
		if err != nil {
			return false, err
		}
		if seq < uint64(lsn) {
			return true, nil
		}
	}
	return len(o.Pages) == 0, nil
}

// applyValueRedo installs the new value directly into the segment.
func (m *Manager) applyValueRedo(r *wal.Record, body *wal.UpdateBody) error {
	obj := body.Object
	if uint32(len(body.New)) != obj.Length {
		return fmt.Errorf("recovery: value record length mismatch for %v", obj)
	}
	return m.k.WriteDirect(obj, body.New, uint64(r.LSN))
}

// undoPass reverses losers newest-first along their backward chains,
// logging CLRs exactly as a normal abort does.
func (m *Manager) undoPass(a *analysis, report *RestartReport) error {
	for tid, st := range a.status {
		if st != types.StatusActive {
			continue
		}
		if err := m.undoChainCounted(tid, a.lastLSN[tid], a.compensated, report); err != nil {
			return err
		}
	}
	return nil
}

// undoChainCounted is undoChain with report accounting.
func (m *Manager) undoChainCounted(tid types.TransID, last wal.LSN, pre map[wal.LSN]bool, report *RestartReport) error {
	compensated := make(map[wal.LSN]bool, len(pre))
	for l := range pre {
		compensated[l] = true
	}
	var toUndo []*wal.Record
	err := m.log.TransBackChain(last, func(r *wal.Record) (bool, error) {
		report.RecordsScanned++
		switch r.Type {
		case wal.RecUpdateCLR, wal.RecOperationCLR:
			clr, err := wal.DecodeCLR(r.Body)
			if err != nil {
				return false, err
			}
			compensated[clr.CompLSN] = true
		case wal.RecUpdate, wal.RecOperation:
			if !compensated[r.LSN] {
				toUndo = append(toUndo, r)
			}
		}
		return true, nil
	})
	if err != nil {
		return err
	}
	for _, r := range toUndo {
		if err := m.undoRecord(r); err != nil {
			return err
		}
		report.Undone++
	}
	return nil
}

// singleBackwardPass is the paper's value-logging recovery algorithm: one
// scan "that begins at the last log record written and proceeds backward",
// resetting each object to its most recently committed value (§2.1.3). The
// newest retained record for each object decides: winners' new values are
// installed, losers' old values. CLRs written by completed aborts are
// treated as winners' records, which installs the restored (pre-abort) old
// value.
//
// Objects of different granularities may overlap: a shard migration logs
// whole-page images while client writes log single cells within those
// pages. The per-object decisions are therefore collected during the scan
// and installed in ascending LSN order afterwards — an older page image
// must land before the newer cell values it overlaps, or it would wipe
// them (the ascending order also leaves each page's header sequence
// number at its newest record, not its oldest).
func (m *Manager) singleBackwardPass(a *analysis, report *RestartReport) error {
	type decision struct {
		obj types.ObjectID
		val []byte
		lsn wal.LSN
	}
	done := make(map[types.ObjectID]bool)
	var decisions []decision
	end := m.log.NextLSN()
	err := m.log.ScanBackward(end, func(r *wal.Record) (bool, error) {
		report.RecordsScanned++
		if r.Type != wal.RecUpdate && r.Type != wal.RecUpdateCLR {
			return true, nil
		}
		body, err := decodeUpdateMaybeCLR(r)
		if err != nil {
			return false, err
		}
		if done[body.Object] {
			return true, nil
		}
		done[body.Object] = true
		st := a.status[r.TID]
		// Aborted transactions were dropped from a.status; their CLRs
		// carry the value to reinstate, so they count as winners. Active
		// transactions are losers.
		loser := st == types.StatusActive && r.Type == wal.RecUpdate
		val := body.New
		if loser {
			val = body.Old
			report.Undone++
		} else {
			report.Redone++
		}
		if uint32(len(val)) != body.Object.Length {
			return false, fmt.Errorf("recovery: value record length mismatch for %v", body.Object)
		}
		decisions = append(decisions, decision{obj: body.Object, val: val, lsn: r.LSN})
		return true, nil
	})
	if err != nil {
		return err
	}
	// The backward scan appended newest-first; install oldest-first.
	for i := len(decisions) - 1; i >= 0; i-- {
		d := decisions[i]
		if err := m.k.WriteDirect(d.obj, d.val, uint64(d.lsn)); err != nil {
			return err
		}
	}
	return nil
}

func (m *Manager) undoerFor(s types.ServerID) Undoer {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.undoers[s]
}

func decodeUpdateMaybeCLR(r *wal.Record) (*wal.UpdateBody, error) {
	if r.Type == wal.RecUpdateCLR {
		clr, err := wal.DecodeCLR(r.Body)
		if err != nil {
			return nil, err
		}
		return wal.DecodeUpdate(clr.Inner)
	}
	return wal.DecodeUpdate(r.Body)
}

func decodeOperationMaybeCLR(r *wal.Record) (*wal.OperationBody, error) {
	if r.Type == wal.RecOperationCLR {
		clr, err := wal.DecodeCLR(r.Body)
		if err != nil {
			return nil, err
		}
		return wal.DecodeOperation(clr.Inner)
	}
	return wal.DecodeOperation(r.Body)
}

// Crash drops the Recovery Manager's volatile state (dirty-page and
// transaction tables). The log's durable contents survive via the disk.
func (m *Manager) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dirty = make(map[types.PageID]wal.LSN)
	m.pageLSN = make(map[types.PageID]wal.LSN)
	m.trans = make(map[types.TransID]*transState)
}
