// Package accum implements an accumulator array server: the data server
// the paper's Section 7 future work calls for, exercising the two
// facilities the TABS libraries did not yet surface — operation (transi-
// tion) logging and type-specific locking (§2.1.3, §7: "the server library
// should provide a better set of primitives, including some for operation
// logging and type-specific locking").
//
// The abstract type is an array of counters with an Increment(cell, delta)
// operation. Because increments commute, a type-specific lock mode is
// defined for them: two transactions may hold increment locks on the same
// cell simultaneously (more concurrency than read/write locking permits),
// while reads still exclude increments. Because two uncommitted
// increments may interleave on one cell, value logging cannot recover the
// cell — whose "old value" would capture the other transaction's
// uncommitted delta — so the server logs operations instead: redo is
// "add delta", undo is "add -delta", replayed through the server's
// operation interpreter and guarded by the on-disk page sequence numbers
// during the three-pass crash recovery (§3.2.1).
package accum

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"tabs/internal/core"
	"tabs/internal/lock"
	"tabs/internal/srvlib"
	"tabs/internal/types"
)

// CellSize is one counter: a 64-bit word.
const CellSize = 8

// ModeIncrement is the type-specific lock mode for commuting increments.
const ModeIncrement = lock.ModeUser

// Compat is the accumulator's type-specific compatibility relation:
// reads share with reads, increments share with increments, and
// everything else conflicts (a reader must not observe uncommitted
// deltas; a writer must exclude everyone).
func Compat(held, requested lock.Mode) bool {
	if held == lock.ModeRead && requested == lock.ModeRead {
		return true
	}
	if held == ModeIncrement && requested == ModeIncrement {
		return true
	}
	return false
}

// Errors.
var ErrIndexOutOfRange = errors.New("accum: index out of range")

// Operation names.
const (
	OpGet       = "GetCounter"
	OpIncrement = "Increment"
	opAdd       = "add" // logged operation script
)

// Server is the accumulator data server.
type Server struct {
	srv     *srvlib.Server
	maxCell uint32
}

// Attach creates (or re-attaches) an accumulator array of cells counters.
func Attach(n *core.Node, id types.ServerID, seg types.SegmentID, cells uint32, lockTimeout time.Duration) (*Server, error) {
	pages := (cells*CellSize + types.PageSize - 1) / types.PageSize
	if pages == 0 {
		pages = 1
	}
	srv, err := n.NewServer(id, seg, pages, Compat, lockTimeout)
	if err != nil {
		return nil, err
	}
	s := &Server{srv: srv, maxCell: cells}
	// The operation interpreter runs both forward work and recovery
	// redo/undo: a script is "add <cell> <delta>".
	srv.RegisterOp(opAdd, s.applyAdd)
	srv.AcceptRequests(s.dispatch)
	return s, nil
}

// Lib exposes the underlying server library instance.
func (s *Server) Lib() *srvlib.Server { return s.srv }

func (s *Server) cellObject(cell uint32) (types.ObjectID, error) {
	if cell < 1 || cell > s.maxCell {
		return types.ObjectID{}, fmt.Errorf("%w: %d (max %d)", ErrIndexOutOfRange, cell, s.maxCell)
	}
	return s.srv.CreateObjectID(srvlib.VirtualAddress((cell-1)*CellSize), CellSize), nil
}

// applyAdd interprets one "add" script: cell (4 bytes) and delta (8
// bytes). It is invoked for forward execution, for redo during crash
// recovery, and — with a negated delta — for undo.
func (s *Server) applyAdd(_ types.TransID, args []byte) error {
	if len(args) != 12 {
		return errors.New("accum: malformed add script")
	}
	cell := binary.BigEndian.Uint32(args[:4])
	delta := int64(binary.BigEndian.Uint64(args[4:]))
	obj, err := s.cellObject(cell)
	if err != nil {
		return err
	}
	if err := s.srv.PinObject(obj); err != nil {
		return err
	}
	defer func() { _ = s.srv.UnPinObject(obj) }()
	raw, err := s.srv.Read(obj)
	if err != nil {
		return err
	}
	v := int64(binary.BigEndian.Uint64(raw)) + delta
	return s.srv.Write(obj, binary.BigEndian.AppendUint64(nil, uint64(v)))
}

func addScript(cell uint32, delta int64) []byte {
	args := binary.BigEndian.AppendUint32(nil, cell)
	args = binary.BigEndian.AppendUint64(args, uint64(delta))
	return srvlib.Script(opAdd, args)
}

// increment applies a commuting increment under the type-specific lock
// mode, logging the operation (not the value).
func (s *Server) increment(tid types.TransID, cell uint32, delta int64) error {
	obj, err := s.cellObject(cell)
	if err != nil {
		return err
	}
	if err := s.srv.LockObject(tid, obj, ModeIncrement); err != nil {
		return err
	}
	if err := s.srv.RunScript(tid, addScript(cell, delta)); err != nil {
		return err
	}
	return s.srv.LogOperation(tid, addScript(cell, delta), addScript(cell, -delta), obj)
}

// get reads a counter under a read lock, which excludes in-flight
// increments (their deltas are uncommitted).
func (s *Server) get(tid types.TransID, cell uint32) (int64, error) {
	obj, err := s.cellObject(cell)
	if err != nil {
		return 0, err
	}
	if err := s.srv.LockObject(tid, obj, lock.ModeRead); err != nil {
		return 0, err
	}
	raw, err := s.srv.Read(obj)
	if err != nil {
		return 0, err
	}
	return int64(binary.BigEndian.Uint64(raw)), nil
}

func (s *Server) dispatch(req *srvlib.Request) ([]byte, error) {
	switch req.Op {
	case OpIncrement:
		if len(req.Body) != 12 {
			return nil, errors.New("accum: Increment wants cell and delta")
		}
		cell := binary.BigEndian.Uint32(req.Body[:4])
		delta := int64(binary.BigEndian.Uint64(req.Body[4:]))
		return nil, s.increment(req.TID, cell, delta)
	case OpGet:
		if len(req.Body) != 4 {
			return nil, errors.New("accum: GetCounter wants a cell number")
		}
		v, err := s.get(req.TID, binary.BigEndian.Uint32(req.Body))
		if err != nil {
			return nil, err
		}
		return binary.BigEndian.AppendUint64(nil, uint64(v)), nil
	default:
		return nil, fmt.Errorf("accum: unknown operation %q", req.Op)
	}
}

// Client is the typed application stub.
type Client struct {
	node   *core.Node
	target types.NodeID
	server types.ServerID
}

// NewClient returns a stub for the accumulator id on node target.
func NewClient(n *core.Node, target types.NodeID, id types.ServerID) *Client {
	return &Client{node: n, target: target, server: id}
}

// Increment adds delta to counter cell within tid; concurrent increments
// to the same cell do not block each other.
func (c *Client) Increment(tid types.TransID, cell uint32, delta int64) error {
	body := binary.BigEndian.AppendUint32(nil, cell)
	body = binary.BigEndian.AppendUint64(body, uint64(delta))
	_, err := c.node.CallRemote(c.target, c.server, OpIncrement, tid, body)
	return err
}

// Get reads counter cell within tid.
func (c *Client) Get(tid types.TransID, cell uint32) (int64, error) {
	out, err := c.node.CallRemote(c.target, c.server, OpGet, tid, binary.BigEndian.AppendUint32(nil, cell))
	if err != nil {
		return 0, err
	}
	if len(out) != 8 {
		return 0, errors.New("accum: malformed GetCounter reply")
	}
	return int64(binary.BigEndian.Uint64(out)), nil
}
