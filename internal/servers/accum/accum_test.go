package accum_test

import (
	"testing"
	"time"

	"tabs/internal/core"
	"tabs/internal/servers/accum"
	"tabs/internal/types"
)

func newAccum(t *testing.T, cells uint32) (*core.Cluster, *core.Node, *accum.Client) {
	t.Helper()
	c, err := core.NewCluster(core.DefaultClusterOptions(), "n1")
	if err != nil {
		t.Fatal(err)
	}
	n := c.Node("n1")
	if _, err := accum.Attach(n, "acc", 1, cells, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Recover(); err != nil {
		t.Fatal(err)
	}
	return c, n, accum.NewClient(n, "n1", "acc")
}

func TestIncrementAndGet(t *testing.T) {
	c, n, acc := newAccum(t, 16)
	defer c.Shutdown()
	if err := n.App.Run(func(tid types.TransID) error {
		if err := acc.Increment(tid, 1, 5); err != nil {
			return err
		}
		return acc.Increment(tid, 1, 7)
	}); err != nil {
		t.Fatal(err)
	}
	if err := n.App.Run(func(tid types.TransID) error {
		v, err := acc.Get(tid, 1)
		if err != nil {
			return err
		}
		if v != 12 {
			t.Errorf("counter = %d, want 12", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentIncrementsDoNotBlock is the type-specific-locking payoff:
// two uncommitted transactions increment the same cell simultaneously —
// impossible under read/write locking.
func TestConcurrentIncrementsDoNotBlock(t *testing.T) {
	c, n, acc := newAccum(t, 16)
	defer c.Shutdown()

	t1, err := n.App.BeginTransaction(types.NilTransID)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := n.App.BeginTransaction(types.NilTransID)
	if err != nil {
		t.Fatal(err)
	}
	if err := acc.Increment(t1, 3, 10); err != nil {
		t.Fatalf("t1 increment: %v", err)
	}
	// t2's increment must be granted immediately despite t1's uncommitted
	// increment lock on the same cell.
	done := make(chan error, 1)
	go func() { done <- acc.Increment(t2, 3, 32) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("t2 increment: %v", err)
		}
	case <-time.After(500 * time.Millisecond):
		t.Fatal("concurrent increment blocked: increment locks should commute")
	}
	if ok, err := n.App.EndTransaction(t1); err != nil || !ok {
		t.Fatalf("commit t1: %v", err)
	}
	if ok, err := n.App.EndTransaction(t2); err != nil || !ok {
		t.Fatalf("commit t2: %v", err)
	}
	if err := n.App.Run(func(tid types.TransID) error {
		v, err := acc.Get(tid, 3)
		if err != nil {
			return err
		}
		if v != 42 {
			t.Errorf("counter = %d, want 42", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestReadExcludesIncrement: a reader must not see uncommitted deltas.
func TestReadExcludesIncrement(t *testing.T) {
	c, n, acc := newAccum(t, 16)
	defer c.Shutdown()
	srv, _ := n.Server("acc")
	srv.Locks().SetTimeout(100 * time.Millisecond)

	t1, err := n.App.BeginTransaction(types.NilTransID)
	if err != nil {
		t.Fatal(err)
	}
	if err := acc.Increment(t1, 1, 5); err != nil {
		t.Fatal(err)
	}
	err = n.App.Run(func(tid types.TransID) error {
		_, err := acc.Get(tid, 1)
		return err
	})
	if err == nil {
		t.Fatal("read should block (and time out) against an increment lock")
	}
	if err := n.App.AbortTransaction(t1); err != nil {
		t.Fatal(err)
	}
}

// TestAbortUndoesOneOfTwoInterleaved: t1 and t2 both increment; t1
// aborts; only t1's delta is reversed. Value logging could not do this —
// the paper's motivation for operation logging (§2.1.3).
func TestAbortUndoesOneOfTwoInterleaved(t *testing.T) {
	c, n, acc := newAccum(t, 16)
	defer c.Shutdown()

	t1, err := n.App.BeginTransaction(types.NilTransID)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := n.App.BeginTransaction(types.NilTransID)
	if err != nil {
		t.Fatal(err)
	}
	if err := acc.Increment(t1, 1, 100); err != nil {
		t.Fatal(err)
	}
	if err := acc.Increment(t2, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := n.App.AbortTransaction(t1); err != nil {
		t.Fatal(err)
	}
	if ok, err := n.App.EndTransaction(t2); err != nil || !ok {
		t.Fatalf("commit t2: %v", err)
	}
	if err := n.App.Run(func(tid types.TransID) error {
		v, err := acc.Get(tid, 1)
		if err != nil {
			return err
		}
		if v != 1 {
			t.Errorf("counter = %d, want 1 (t1's 100 undone, t2's 1 kept)", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestOperationLoggingCrashRecovery drives the three-pass recovery: the
// page-sequence test must replay exactly the missing increments.
func TestOperationLoggingCrashRecovery(t *testing.T) {
	c, n, acc := newAccum(t, 16)

	// Committed increments whose pages never reach disk before the crash.
	for i := 0; i < 5; i++ {
		if err := n.App.Run(func(tid types.TransID) error {
			return acc.Increment(tid, 1, 10)
		}); err != nil {
			t.Fatal(err)
		}
	}
	// One in-flight increment, with a page steal so its effect hits disk.
	tid, err := n.App.BeginTransaction(types.NilTransID)
	if err != nil {
		t.Fatal(err)
	}
	if err := acc.Increment(tid, 1, 1000); err != nil {
		t.Fatal(err)
	}
	if err := n.Kernel.FlushAll(); err != nil {
		t.Fatal(err)
	}

	c.Crash("n1")
	n2, err := c.Reboot("n1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := accum.Attach(n2, "acc", 1, 16, time.Second); err != nil {
		t.Fatal(err)
	}
	report, err := n2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if report.Passes != 3 {
		t.Errorf("operation-logged recovery should take 3 passes, took %d", report.Passes)
	}
	if report.Undone == 0 {
		t.Error("the in-flight increment should have been undone")
	}

	acc2 := accum.NewClient(n2, "n1", "acc")
	if err := n2.App.Run(func(tid types.TransID) error {
		v, err := acc2.Get(tid, 1)
		if err != nil {
			return err
		}
		if v != 50 {
			t.Errorf("counter = %d, want 50 (5×10 committed, 1000 undone)", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	c.Shutdown()
}

// TestRecoveryIdempotence: crash again immediately after recovery; the
// page-sequence numbers must prevent double-applying redone increments.
func TestRecoveryIdempotence(t *testing.T) {
	c, n, acc := newAccum(t, 16)
	for i := 0; i < 3; i++ {
		if err := n.App.Run(func(tid types.TransID) error {
			return acc.Increment(tid, 2, 7)
		}); err != nil {
			t.Fatal(err)
		}
	}
	c.Crash("n1")
	for round := 0; round < 3; round++ {
		n2, err := c.Reboot("n1")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := accum.Attach(n2, "acc", 1, 16, time.Second); err != nil {
			t.Fatal(err)
		}
		if _, err := n2.Recover(); err != nil {
			t.Fatal(err)
		}
		acc2 := accum.NewClient(n2, "n1", "acc")
		var v int64
		if err := n2.App.Run(func(tid types.TransID) error {
			var gerr error
			v, gerr = acc2.Get(tid, 2)
			return gerr
		}); err != nil {
			t.Fatal(err)
		}
		if v != 21 {
			t.Fatalf("round %d: counter = %d, want 21 (recovery must be idempotent)", round, v)
		}
		c.Crash("n1")
	}
}

func TestOutOfRange(t *testing.T) {
	c, n, acc := newAccum(t, 4)
	defer c.Shutdown()
	err := n.App.Run(func(tid types.TransID) error {
		return acc.Increment(tid, 5, 1)
	})
	if err == nil {
		t.Fatal("increment past the end should fail")
	}
}
