// Package btree implements the TABS B-tree server (paper §4.4): arbitrary
// collections of directory entries kept in a B-tree inside a recoverable
// segment, with the recoverable storage allocator the paper describes —
// storage allocated by a transaction that later aborts is made available
// for re-use, because the allocator's bitmap is value-logged like any
// other object.
//
// The server was the paper's porting exercise: an existing B-tree program
// was brought into TABS by wrapping its page modifications in the
// LockAndMark / PinAndBufferMarkedObjects / LogAndUnPinMarkedObjects
// protocol so no locks are requested while pages are pinned. This
// implementation uses exactly that protocol: every mutation first locks
// and marks all the pages it will touch, then pins and buffers them all,
// applies the changes, and logs them in one sweep.
//
// It is the storage layer of the replicated directory (§4.5).
package btree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"tabs/internal/core"
	"tabs/internal/lock"
	"tabs/internal/srvlib"
	"tabs/internal/types"
)

// Fixed entry geometry. Keys and values are zero-padded byte strings.
const (
	KeySize   = 16
	ValueSize = 32

	leafEntry  = KeySize + ValueSize               // 48 bytes
	leafMax    = (types.PageSize - 4) / leafEntry  // 10 entries
	innerEntry = KeySize + 4                       // key + child page
	innerMax   = (types.PageSize - 8) / innerEntry // 25 keys
)

// Page roles.
const (
	pageFree  byte = 0
	pageLeaf  byte = 1
	pageInner byte = 2
)

// Segment layout: page 0 metadata, page 1 allocator bitmap, data from 2.
const (
	metaPage   = 0
	bitmapPage = 1
	firstData  = 2
)

// Errors.
var (
	ErrKeyExists   = errors.New("btree: key already exists")
	ErrKeyNotFound = errors.New("btree: key not found")
	ErrKeyTooLong  = errors.New("btree: key exceeds 16 bytes")
	ErrValTooLong  = errors.New("btree: value exceeds 32 bytes")
	ErrFull        = errors.New("btree: segment out of pages")
)

// Operation names.
const (
	OpInsert = "Insert"
	OpLookup = "Lookup"
	OpUpdate = "Update"
	OpDelete = "Delete"
	OpList   = "List"
)

// Server is the B-tree data server.
type Server struct {
	srv   *srvlib.Server
	pages uint32
}

// Attach creates (or re-attaches) a B-tree server whose segment holds
// pages pages (≥ 8).
func Attach(n *core.Node, id types.ServerID, seg types.SegmentID, pages uint32, lockTimeout time.Duration) (*Server, error) {
	if pages < 8 {
		pages = 8
	}
	if pages > 8*types.PageSize {
		return nil, fmt.Errorf("btree: %d pages exceeds one bitmap page", pages)
	}
	srv, err := n.NewServer(id, seg, pages, nil, lockTimeout)
	if err != nil {
		return nil, err
	}
	s := &Server{srv: srv, pages: pages}
	if err := s.format(); err != nil {
		return nil, err
	}
	srv.AcceptRequests(s.dispatch)
	return s, nil
}

// Lib exposes the underlying server library instance.
func (s *Server) Lib() *srvlib.Server { return s.srv }

// --- objects -----------------------------------------------------------------

func (s *Server) metaObject() types.ObjectID { return s.srv.CreateObjectID(0, 8) }

func (s *Server) pageObject(page uint32) types.ObjectID {
	return s.srv.CreateObjectID(srvlib.VirtualAddress(page*types.PageSize), types.PageSize)
}

func (s *Server) bitmapByteObject(page uint32) types.ObjectID {
	return s.srv.CreateObjectID(srvlib.VirtualAddress(bitmapPage*types.PageSize+page/8), 1)
}

// --- formatting -----------------------------------------------------------------

// format initializes a fresh tree: a root leaf at firstData. Idempotent:
// an already formatted segment is left alone (the magic survives crashes).
func (s *Server) format() error {
	raw, err := s.srv.Read(s.metaObject())
	if err != nil {
		return err
	}
	if binary.BigEndian.Uint32(raw[:4]) == 0xB7EE0001 {
		return nil
	}
	// Fresh segment: initialize outside any transaction via direct,
	// unlogged kernel writes (the state before first use is all-zero
	// either way, so there is nothing to undo).
	meta := make([]byte, 8)
	binary.BigEndian.PutUint32(meta[:4], 0xB7EE0001)
	binary.BigEndian.PutUint32(meta[4:], firstData)
	root := make([]byte, types.PageSize)
	root[0] = pageLeaf
	bm := make([]byte, types.PageSize)
	bm[0] = 0x7 // pages 0..2 (meta, bitmap, root) used
	if err := s.rawWrite(s.metaObject(), meta); err != nil {
		return err
	}
	if err := s.rawWrite(s.pageObject(bitmapPage), bm); err != nil {
		return err
	}
	return s.rawWrite(s.pageObject(firstData), root)
}

// rawWrite pins, writes, unpins without logging (formatting only).
func (s *Server) rawWrite(obj types.ObjectID, data []byte) error {
	if err := s.srv.PinObject(obj); err != nil {
		return err
	}
	if err := s.srv.Write(obj, data); err != nil {
		_ = s.srv.UnPinObject(obj)
		return err
	}
	return s.srv.UnPinObject(obj)
}

// --- node model -------------------------------------------------------------------

type node struct {
	page     uint32
	kind     byte
	keys     [][]byte
	vals     [][]byte // leaf values
	children []uint32 // inner children (len = len(keys)+1)
}

func (s *Server) readNode(page uint32) (*node, error) {
	raw, err := s.srv.Read(s.pageObject(page))
	if err != nil {
		return nil, err
	}
	n := &node{page: page, kind: raw[0]}
	count := int(raw[1])
	switch n.kind {
	case pageLeaf:
		off := 4
		for i := 0; i < count; i++ {
			n.keys = append(n.keys, trimKey(raw[off:off+KeySize]))
			n.vals = append(n.vals, trimKey(raw[off+KeySize:off+leafEntry]))
			off += leafEntry
		}
	case pageInner:
		n.children = append(n.children, binary.BigEndian.Uint32(raw[4:8]))
		off := 8
		for i := 0; i < count; i++ {
			n.keys = append(n.keys, trimKey(raw[off:off+KeySize]))
			n.children = append(n.children, binary.BigEndian.Uint32(raw[off+KeySize:off+innerEntry]))
			off += innerEntry
		}
	default:
		return nil, fmt.Errorf("btree: page %d is not a tree node (kind %d)", page, raw[0])
	}
	return n, nil
}

func (n *node) encode() []byte {
	raw := make([]byte, types.PageSize)
	raw[0] = n.kind
	raw[1] = byte(len(n.keys))
	switch n.kind {
	case pageLeaf:
		off := 4
		for i := range n.keys {
			copy(raw[off:off+KeySize], pad(n.keys[i], KeySize))
			copy(raw[off+KeySize:off+leafEntry], pad(n.vals[i], ValueSize))
			off += leafEntry
		}
	case pageInner:
		binary.BigEndian.PutUint32(raw[4:8], n.children[0])
		off := 8
		for i := range n.keys {
			copy(raw[off:off+KeySize], pad(n.keys[i], KeySize))
			binary.BigEndian.PutUint32(raw[off+KeySize:off+innerEntry], n.children[i+1])
			off += innerEntry
		}
	}
	return raw
}

func pad(b []byte, n int) []byte {
	out := make([]byte, n)
	copy(out, b)
	return out
}

// trimKey strips zero padding.
func trimKey(b []byte) []byte {
	end := len(b)
	for end > 0 && b[end-1] == 0 {
		end--
	}
	return append([]byte(nil), b[:end]...)
}

func (s *Server) rootPage() (uint32, error) {
	raw, err := s.srv.Read(s.metaObject())
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(raw[4:]), nil
}

// --- allocator ----------------------------------------------------------------------

// allocPages reserves count free pages. The caller has already locked and
// marked the affected bitmap bytes; the bit flips applied here are logged
// by the caller's LogAndUnPinMarkedObjects sweep, so an abort frees the
// pages again — the recoverable storage allocator of §4.4.
func (s *Server) freePages(count int) ([]uint32, error) {
	raw, err := s.srv.Read(s.pageObject(bitmapPage))
	if err != nil {
		return nil, err
	}
	out := make([]uint32, 0, count)
	for p := uint32(firstData); p < s.pages && len(out) < count; p++ {
		if raw[p/8]&(1<<(p%8)) == 0 {
			out = append(out, p)
		}
	}
	if len(out) < count {
		return nil, ErrFull
	}
	return out, nil
}

// --- mutation protocol helpers ---------------------------------------------------------

// mutation gathers the LockAndMark set for one structural change.
type mutation struct {
	s       *Server
	tid     types.TransID
	objs    []types.ObjectID
	writes  map[types.ObjectID][]byte
	ordered []types.ObjectID
}

func (s *Server) newMutation(tid types.TransID) *mutation {
	return &mutation{s: s, tid: tid, writes: make(map[types.ObjectID][]byte)}
}

// stage locks and marks obj and queues data to be written to it.
func (m *mutation) stage(obj types.ObjectID, data []byte) error {
	if _, seen := m.writes[obj]; !seen {
		if err := m.s.srv.LockAndMark(m.tid, obj, lock.ModeWrite); err != nil {
			return err
		}
		m.ordered = append(m.ordered, obj)
	}
	m.writes[obj] = data
	return nil
}

// apply runs the marked-objects protocol: pin and buffer everything, make
// the changes, log and unpin everything.
func (m *mutation) apply() error {
	if err := m.s.srv.PinAndBufferMarkedObjects(m.tid); err != nil {
		return err
	}
	for _, obj := range m.ordered {
		if err := m.s.srv.Write(obj, m.writes[obj]); err != nil {
			return err
		}
	}
	return m.s.srv.LogAndUnPinMarkedObjects(m.tid)
}

// --- operations --------------------------------------------------------------------------

// lookup finds key's value.
func (s *Server) lookup(tid types.TransID, key []byte) ([]byte, error) {
	if err := s.srv.LockObject(tid, s.metaObject(), lock.ModeRead); err != nil {
		return nil, err
	}
	page, err := s.rootPage()
	if err != nil {
		return nil, err
	}
	for {
		n, err := s.readNode(page)
		if err != nil {
			return nil, err
		}
		if n.kind == pageLeaf {
			for i, k := range n.keys {
				if bytes.Equal(k, key) {
					return n.vals[i], nil
				}
			}
			return nil, fmt.Errorf("%w: %q", ErrKeyNotFound, key)
		}
		page = n.children[childIndex(n.keys, key)]
	}
}

// childIndex returns which child of an inner node covers key.
func childIndex(keys [][]byte, key []byte) int {
	i := 0
	for i < len(keys) && bytes.Compare(key, keys[i]) >= 0 {
		i++
	}
	return i
}

// path returns the nodes from root to the leaf covering key.
func (s *Server) path(key []byte) ([]*node, error) {
	page, err := s.rootPage()
	if err != nil {
		return nil, err
	}
	var out []*node
	for {
		n, err := s.readNode(page)
		if err != nil {
			return nil, err
		}
		out = append(out, n)
		if n.kind == pageLeaf {
			return out, nil
		}
		page = n.children[childIndex(n.keys, key)]
	}
}

// insert adds key -> val.
func (s *Server) insert(tid types.TransID, key, val []byte) error {
	if err := s.check(key, val); err != nil {
		return err
	}
	if err := s.srv.LockObject(tid, s.metaObject(), lock.ModeWrite); err != nil {
		return err
	}
	nodes, err := s.path(key)
	if err != nil {
		return err
	}
	leaf := nodes[len(nodes)-1]
	for _, k := range leaf.keys {
		if bytes.Equal(k, key) {
			return fmt.Errorf("%w: %q", ErrKeyExists, key)
		}
	}
	// Count splits: the leaf splits if full; each full ancestor splits in
	// turn; a root split needs one more page.
	splits := 0
	if len(leaf.keys) >= leafMax {
		splits = 1
		for i := len(nodes) - 2; i >= 0 && len(nodes[i].keys) >= innerMax; i-- {
			splits++
		}
		if splits == len(nodes) {
			splits++ // new root
		}
	}
	mut := s.newMutation(tid)
	var fresh []uint32
	if splits > 0 {
		fresh, err = s.freePages(splits)
		if err != nil {
			return err
		}
		// Stage the bitmap bytes with the new bits set.
		raw, err := s.srv.Read(s.pageObject(bitmapPage))
		if err != nil {
			return err
		}
		touched := map[uint32][]byte{}
		for _, p := range fresh {
			idx := p / 8
			b, ok := touched[idx]
			if !ok {
				b = []byte{raw[idx]}
				touched[idx] = b
			}
			b[0] |= 1 << (p % 8)
		}
		for idx, b := range touched {
			if err := mut.stage(s.bitmapByteObject(idx*8), b); err != nil {
				return err
			}
		}
	}

	// Insert into the leaf.
	pos := 0
	for pos < len(leaf.keys) && bytes.Compare(leaf.keys[pos], key) < 0 {
		pos++
	}
	leaf.keys = append(leaf.keys[:pos], append([][]byte{key}, leaf.keys[pos:]...)...)
	leaf.vals = append(leaf.vals[:pos], append([][]byte{val}, leaf.vals[pos:]...)...)

	// Propagate splits upward.
	nextFresh := 0
	carryKey, carryPage := []byte(nil), uint32(0)
	for level := len(nodes) - 1; level >= 0; level-- {
		n := nodes[level]
		if carryKey != nil {
			// Insert the separator from the lower split.
			i := childIndex(n.keys, carryKey)
			n.keys = append(n.keys[:i], append([][]byte{carryKey}, n.keys[i:]...)...)
			n.children = append(n.children[:i+1], append([]uint32{carryPage}, n.children[i+1:]...)...)
			carryKey = nil
		}
		limit := leafMax
		if n.kind == pageInner {
			limit = innerMax
		}
		if len(n.keys) <= limit {
			if err := mut.stage(s.pageObject(n.page), n.encode()); err != nil {
				return err
			}
			break
		}
		// Split n: right sibling gets the upper half.
		right := &node{page: fresh[nextFresh], kind: n.kind}
		nextFresh++
		mid := len(n.keys) / 2
		if n.kind == pageLeaf {
			right.keys = append(right.keys, n.keys[mid:]...)
			right.vals = append(right.vals, n.vals[mid:]...)
			n.keys = n.keys[:mid]
			n.vals = n.vals[:mid]
			carryKey = right.keys[0]
		} else {
			carryKey = n.keys[mid]
			right.keys = append(right.keys, n.keys[mid+1:]...)
			right.children = append(right.children, n.children[mid+1:]...)
			n.keys = n.keys[:mid]
			n.children = n.children[:mid+1]
		}
		carryPage = right.page
		if err := mut.stage(s.pageObject(n.page), n.encode()); err != nil {
			return err
		}
		if err := mut.stage(s.pageObject(right.page), right.encode()); err != nil {
			return err
		}
		if level == 0 {
			// New root.
			root := &node{page: fresh[nextFresh], kind: pageInner}
			nextFresh++
			root.keys = [][]byte{carryKey}
			root.children = []uint32{n.page, right.page}
			if err := mut.stage(s.pageObject(root.page), root.encode()); err != nil {
				return err
			}
			meta := make([]byte, 8)
			binary.BigEndian.PutUint32(meta[:4], 0xB7EE0001)
			binary.BigEndian.PutUint32(meta[4:], root.page)
			if err := mut.stage(s.metaObject(), meta); err != nil {
				return err
			}
			carryKey = nil
		}
	}
	return mut.apply()
}

// update replaces an existing key's value (the paper's "modify").
func (s *Server) update(tid types.TransID, key, val []byte) error {
	if err := s.check(key, val); err != nil {
		return err
	}
	if err := s.srv.LockObject(tid, s.metaObject(), lock.ModeWrite); err != nil {
		return err
	}
	nodes, err := s.path(key)
	if err != nil {
		return err
	}
	leaf := nodes[len(nodes)-1]
	for i, k := range leaf.keys {
		if bytes.Equal(k, key) {
			leaf.vals[i] = val
			mut := s.newMutation(tid)
			if err := mut.stage(s.pageObject(leaf.page), leaf.encode()); err != nil {
				return err
			}
			return mut.apply()
		}
	}
	return fmt.Errorf("%w: %q", ErrKeyNotFound, key)
}

// delete removes a key. Underflowing leaves are left in place (lazy
// deletion); their space is reclaimed when later inserts refill them.
func (s *Server) delete(tid types.TransID, key []byte) error {
	if len(key) > KeySize {
		return ErrKeyTooLong
	}
	if err := s.srv.LockObject(tid, s.metaObject(), lock.ModeWrite); err != nil {
		return err
	}
	nodes, err := s.path(key)
	if err != nil {
		return err
	}
	leaf := nodes[len(nodes)-1]
	for i, k := range leaf.keys {
		if bytes.Equal(k, key) {
			leaf.keys = append(leaf.keys[:i], leaf.keys[i+1:]...)
			leaf.vals = append(leaf.vals[:i], leaf.vals[i+1:]...)
			mut := s.newMutation(tid)
			if err := mut.stage(s.pageObject(leaf.page), leaf.encode()); err != nil {
				return err
			}
			return mut.apply()
		}
	}
	return fmt.Errorf("%w: %q", ErrKeyNotFound, key)
}

// list returns all keys and values in order.
func (s *Server) list(tid types.TransID) ([][2][]byte, error) {
	if err := s.srv.LockObject(tid, s.metaObject(), lock.ModeRead); err != nil {
		return nil, err
	}
	root, err := s.rootPage()
	if err != nil {
		return nil, err
	}
	var out [][2][]byte
	var walk func(page uint32) error
	walk = func(page uint32) error {
		n, err := s.readNode(page)
		if err != nil {
			return err
		}
		if n.kind == pageLeaf {
			for i := range n.keys {
				out = append(out, [2][]byte{n.keys[i], n.vals[i]})
			}
			return nil
		}
		for _, c := range n.children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root); err != nil {
		return nil, err
	}
	return out, nil
}

func (s *Server) check(key, val []byte) error {
	if len(key) > KeySize || len(key) == 0 {
		return ErrKeyTooLong
	}
	if len(val) > ValueSize {
		return ErrValTooLong
	}
	return nil
}

// --- dispatch & client ------------------------------------------------------------------

// dispatch routes operation requests. Bodies are length-prefixed key then
// value.
func (s *Server) dispatch(req *srvlib.Request) ([]byte, error) {
	key, val, err := decodeKV(req.Body)
	if err != nil && req.Op != OpList {
		return nil, err
	}
	switch req.Op {
	case OpInsert:
		return nil, s.insert(req.TID, key, val)
	case OpUpdate:
		return nil, s.update(req.TID, key, val)
	case OpDelete:
		return nil, s.delete(req.TID, key)
	case OpLookup:
		v, err := s.lookup(req.TID, key)
		if err != nil {
			return nil, err
		}
		return v, nil
	case OpList:
		pairs, err := s.list(req.TID)
		if err != nil {
			return nil, err
		}
		var out []byte
		out = binary.BigEndian.AppendUint32(out, uint32(len(pairs)))
		for _, p := range pairs {
			out = appendBytes(out, p[0])
			out = appendBytes(out, p[1])
		}
		return out, nil
	default:
		return nil, fmt.Errorf("btree: unknown operation %q", req.Op)
	}
}

func encodeKV(key, val []byte) []byte {
	return appendBytes(appendBytes(nil, key), val)
}

func appendBytes(b, data []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(len(data)))
	return append(b, data...)
}

func decodeKV(b []byte) (key, val []byte, err error) {
	key, b, err = takeBytes(b)
	if err != nil {
		return nil, nil, err
	}
	val, _, err = takeBytes(b)
	if err != nil {
		return nil, nil, err
	}
	return key, val, nil
}

func takeBytes(b []byte) ([]byte, []byte, error) {
	if len(b) < 2 {
		return nil, nil, errors.New("btree: short request")
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < n {
		return nil, nil, errors.New("btree: short request body")
	}
	return b[:n], b[n:], nil
}

// Client is the typed application stub for a B-tree server.
type Client struct {
	node   *core.Node
	target types.NodeID
	server types.ServerID
}

// NewClient returns a stub for the B-tree server id on node target.
func NewClient(n *core.Node, target types.NodeID, id types.ServerID) *Client {
	return &Client{node: n, target: target, server: id}
}

// Insert adds key -> val within tid.
func (c *Client) Insert(tid types.TransID, key, val []byte) error {
	_, err := c.node.CallRemote(c.target, c.server, OpInsert, tid, encodeKV(key, val))
	return err
}

// Update replaces key's value within tid.
func (c *Client) Update(tid types.TransID, key, val []byte) error {
	_, err := c.node.CallRemote(c.target, c.server, OpUpdate, tid, encodeKV(key, val))
	return err
}

// Delete removes key within tid.
func (c *Client) Delete(tid types.TransID, key []byte) error {
	_, err := c.node.CallRemote(c.target, c.server, OpDelete, tid, encodeKV(key, nil))
	return err
}

// Lookup returns key's value within tid.
func (c *Client) Lookup(tid types.TransID, key []byte) ([]byte, error) {
	return c.node.CallRemote(c.target, c.server, OpLookup, tid, encodeKV(key, nil))
}

// List returns every (key, value) pair in key order within tid.
func (c *Client) List(tid types.TransID) ([][2][]byte, error) {
	out, err := c.node.CallRemote(c.target, c.server, OpList, tid, nil)
	if err != nil {
		return nil, err
	}
	if len(out) < 4 {
		return nil, errors.New("btree: malformed List reply")
	}
	count := int(binary.BigEndian.Uint32(out))
	out = out[4:]
	pairs := make([][2][]byte, 0, count)
	for i := 0; i < count; i++ {
		var k, v []byte
		k, out, err = takeBytes(out)
		if err != nil {
			return nil, err
		}
		v, out, err = takeBytes(out)
		if err != nil {
			return nil, err
		}
		pairs = append(pairs, [2][]byte{k, v})
	}
	return pairs, nil
}
