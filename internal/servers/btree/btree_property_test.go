package btree_test

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"tabs/internal/core"
	"tabs/internal/servers/btree"
	"tabs/internal/types"
)

// TestBTreeMatchesModelQuick drives random operation sequences (insert,
// update, delete, with random per-transaction aborts) against both the
// B-tree server and a plain map, then checks List agrees with the map —
// content, count, and key order. testing/quick generates the operation
// scripts.
func TestBTreeMatchesModelQuick(t *testing.T) {
	type opcode struct {
		Kind  uint8
		Key   uint8
		Val   uint16
		Abort bool
	}
	run := func(seed int64, ops []opcode) bool {
		c, err := core.NewCluster(core.DefaultClusterOptions(), "n1")
		if err != nil {
			t.Fatalf("cluster: %v", err)
		}
		defer c.Shutdown()
		n := c.Node("n1")
		if _, err := btree.Attach(n, "dir", 1, 256, time.Second); err != nil {
			t.Fatalf("attach: %v", err)
		}
		if _, err := n.Recover(); err != nil {
			t.Fatalf("recover: %v", err)
		}
		tr := btree.NewClient(n, "n1", "dir")
		model := map[string]string{}
		induced := errors.New("induced")

		for _, op := range ops {
			key := fmt.Sprintf("k%03d", op.Key%40)
			val := fmt.Sprintf("v%05d", op.Val)
			_, inModel := model[key]
			err := n.App.Run(func(tid types.TransID) error {
				var oerr error
				switch op.Kind % 3 {
				case 0:
					oerr = tr.Insert(tid, []byte(key), []byte(val))
				case 1:
					oerr = tr.Update(tid, []byte(key), []byte(val))
				case 2:
					oerr = tr.Delete(tid, []byte(key))
				}
				if oerr != nil {
					return oerr
				}
				if op.Abort {
					return induced
				}
				return nil
			})
			switch {
			case errors.Is(err, induced):
				// Aborted: the model is untouched.
			case err == nil:
				switch op.Kind % 3 {
				case 0:
					if inModel {
						t.Errorf("insert of existing %q succeeded", key)
						return false
					}
					model[key] = val
				case 1:
					if !inModel {
						t.Errorf("update of missing %q succeeded", key)
						return false
					}
					model[key] = val
				case 2:
					if !inModel {
						t.Errorf("delete of missing %q succeeded", key)
						return false
					}
					delete(model, key)
				}
			default:
				// The operation failed legitimately (duplicate insert,
				// missing key); the server must agree with the model
				// about why.
				okFail := (op.Kind%3 == 0 && inModel) || (op.Kind%3 != 0 && !inModel)
				if !okFail {
					t.Errorf("op %d on %q failed unexpectedly: %v", op.Kind%3, key, err)
					return false
				}
			}
		}

		// Final comparison.
		ok := true
		if err := n.App.Run(func(tid types.TransID) error {
			pairs, err := tr.List(tid)
			if err != nil {
				return err
			}
			if len(pairs) != len(model) {
				t.Errorf("tree has %d entries, model %d", len(pairs), len(model))
				ok = false
			}
			prev := ""
			for _, p := range pairs {
				k, v := string(p[0]), string(p[1])
				if prev != "" && strings.Compare(prev, k) >= 0 {
					t.Errorf("order violation: %q then %q", prev, k)
					ok = false
				}
				prev = k
				if model[k] != v {
					t.Errorf("tree[%q]=%q, model %q", k, v, model[k])
					ok = false
				}
			}
			return nil
		}); err != nil {
			t.Errorf("list: %v", err)
			return false
		}
		return ok
	}

	cfg := &quick.Config{
		MaxCount: 8,
		Values: func(args []reflect.Value, rng *rand.Rand) {
			args[0] = reflect.ValueOf(rng.Int63())
			n := 30 + rng.Intn(50)
			ops := make([]opcode, n)
			for i := range ops {
				ops[i] = opcode{
					Kind:  uint8(rng.Intn(3)),
					Key:   uint8(rng.Intn(40)),
					Val:   uint16(rng.Intn(1 << 16)),
					Abort: rng.Intn(5) == 0,
				}
			}
			args[1] = reflect.ValueOf(ops)
		},
	}
	f := func(seed int64, ops []opcode) bool { return run(seed, ops) }
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
