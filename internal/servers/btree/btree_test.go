package btree_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"tabs/internal/core"
	"tabs/internal/servers/btree"
	"tabs/internal/types"
)

func newTree(t *testing.T, pages uint32) (*core.Cluster, *core.Node, *btree.Client) {
	t.Helper()
	c, err := core.NewCluster(core.DefaultClusterOptions(), "n1")
	if err != nil {
		t.Fatal(err)
	}
	n := c.Node("n1")
	if _, err := btree.Attach(n, "dir", 1, pages, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Recover(); err != nil {
		t.Fatal(err)
	}
	return c, n, btree.NewClient(n, "n1", "dir")
}

func TestInsertLookup(t *testing.T) {
	c, n, tr := newTree(t, 64)
	defer c.Shutdown()
	err := n.App.Run(func(tid types.TransID) error {
		if err := tr.Insert(tid, []byte("alpha"), []byte("1")); err != nil {
			return err
		}
		if err := tr.Insert(tid, []byte("beta"), []byte("2")); err != nil {
			return err
		}
		v, err := tr.Lookup(tid, []byte("alpha"))
		if err != nil {
			return err
		}
		if string(v) != "1" {
			t.Errorf("alpha = %q, want 1", v)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("txn: %v", err)
	}
}

func TestDuplicateInsertFails(t *testing.T) {
	c, n, tr := newTree(t, 64)
	defer c.Shutdown()
	if err := n.App.Run(func(tid types.TransID) error {
		return tr.Insert(tid, []byte("k"), []byte("v"))
	}); err != nil {
		t.Fatal(err)
	}
	err := n.App.Run(func(tid types.TransID) error {
		return tr.Insert(tid, []byte("k"), []byte("w"))
	})
	if err == nil || !strings.Contains(err.Error(), "exists") {
		t.Fatalf("want duplicate error, got %v", err)
	}
}

func TestUpdateDelete(t *testing.T) {
	c, n, tr := newTree(t, 64)
	defer c.Shutdown()
	if err := n.App.Run(func(tid types.TransID) error {
		if err := tr.Insert(tid, []byte("k"), []byte("v1")); err != nil {
			return err
		}
		if err := tr.Update(tid, []byte("k"), []byte("v2")); err != nil {
			return err
		}
		v, err := tr.Lookup(tid, []byte("k"))
		if err != nil {
			return err
		}
		if string(v) != "v2" {
			t.Errorf("after update: %q", v)
		}
		if err := tr.Delete(tid, []byte("k")); err != nil {
			return err
		}
		_, err = tr.Lookup(tid, []byte("k"))
		if err == nil {
			t.Error("lookup after delete should fail")
		}
		return nil
	}); err != nil {
		t.Fatalf("txn: %v", err)
	}
}

// TestManyKeysSplits drives enough inserts to force leaf and inner splits,
// then verifies contents and ordering against a model map.
func TestManyKeysSplits(t *testing.T) {
	c, n, tr := newTree(t, 256)
	defer c.Shutdown()
	model := map[string]string{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("key-%04d", rng.Intn(10000))
		if _, dup := model[k]; dup {
			continue
		}
		v := fmt.Sprintf("v%d", i)
		model[k] = v
		if err := n.App.Run(func(tid types.TransID) error {
			return tr.Insert(tid, []byte(k), []byte(v))
		}); err != nil {
			t.Fatalf("insert %s: %v", k, err)
		}
	}
	if err := n.App.Run(func(tid types.TransID) error {
		pairs, err := tr.List(tid)
		if err != nil {
			return err
		}
		if len(pairs) != len(model) {
			t.Errorf("list has %d entries, model %d", len(pairs), len(model))
		}
		prev := []byte(nil)
		for _, p := range pairs {
			if prev != nil && bytes.Compare(prev, p[0]) >= 0 {
				t.Errorf("keys out of order: %q then %q", prev, p[0])
			}
			prev = p[0]
			if model[string(p[0])] != string(p[1]) {
				t.Errorf("key %q = %q, model %q", p[0], p[1], model[string(p[0])])
			}
		}
		return nil
	}); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

// TestAbortedInsertRollsBackSplits aborts a transaction whose inserts
// caused page splits and allocator activity, and verifies the tree (and
// allocator) return to their prior state.
func TestAbortedInsertRollsBackSplits(t *testing.T) {
	c, n, tr := newTree(t, 128)
	defer c.Shutdown()
	for i := 0; i < 9; i++ {
		k := fmt.Sprintf("stable-%02d", i)
		if err := n.App.Run(func(tid types.TransID) error {
			return tr.Insert(tid, []byte(k), []byte("keep"))
		}); err != nil {
			t.Fatal(err)
		}
	}
	boom := errors.New("boom")
	err := n.App.Run(func(tid types.TransID) error {
		for i := 0; i < 30; i++ {
			k := fmt.Sprintf("doomed-%02d", i)
			if err := tr.Insert(tid, []byte(k), []byte("drop")); err != nil {
				return err
			}
		}
		return boom // forces splits to be undone, pages freed
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	if err := n.App.Run(func(tid types.TransID) error {
		pairs, err := tr.List(tid)
		if err != nil {
			return err
		}
		if len(pairs) != 9 {
			t.Errorf("after abort: %d entries, want 9", len(pairs))
		}
		for _, p := range pairs {
			if !strings.HasPrefix(string(p[0]), "stable-") {
				t.Errorf("unexpected survivor %q", p[0])
			}
		}
		return nil
	}); err != nil {
		t.Fatalf("verify: %v", err)
	}
	// The freed pages must be reusable: insert enough to split again.
	for i := 0; i < 30; i++ {
		k := fmt.Sprintf("new-%02d", i)
		if err := n.App.Run(func(tid types.TransID) error {
			return tr.Insert(tid, []byte(k), []byte("v"))
		}); err != nil {
			t.Fatalf("reuse insert %d: %v", i, err)
		}
	}
}

// TestBTreeCrashRecovery commits a tree with splits, crashes the node, and
// verifies the reloaded tree is intact.
func TestBTreeCrashRecovery(t *testing.T) {
	c, n, tr := newTree(t, 256)
	for i := 0; i < 40; i++ {
		k := fmt.Sprintf("k%03d", i)
		if err := n.App.Run(func(tid types.TransID) error {
			return tr.Insert(tid, []byte(k), []byte(fmt.Sprintf("v%d", i)))
		}); err != nil {
			t.Fatal(err)
		}
	}
	c.Crash("n1")
	n2, err := c.Reboot("n1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := btree.Attach(n2, "dir", 1, 256, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := n2.Recover(); err != nil {
		t.Fatal(err)
	}
	tr2 := btree.NewClient(n2, "n1", "dir")
	if err := n2.App.Run(func(tid types.TransID) error {
		pairs, err := tr2.List(tid)
		if err != nil {
			return err
		}
		if len(pairs) != 40 {
			t.Errorf("after crash: %d entries, want 40", len(pairs))
		}
		v, err := tr2.Lookup(tid, []byte("k017"))
		if err != nil {
			return err
		}
		if string(v) != "v17" {
			t.Errorf("k017 = %q", v)
		}
		return nil
	}); err != nil {
		t.Fatalf("verify: %v", err)
	}
	c.Shutdown()
}
