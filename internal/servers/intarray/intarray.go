// Package intarray implements the TABS integer array server (paper §4.1):
// a recoverable array of one-word integers with GetCell and SetCell
// operations. It is the paper's minimal data server — "a very
// straightforward data server; it uses only the two-phase locking, value
// logging techniques found in many transaction-based systems" — and the
// object the Section 5 benchmarks read and write.
package intarray

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"tabs/internal/core"
	"tabs/internal/lock"
	"tabs/internal/srvlib"
	"tabs/internal/types"
)

// CellSize is the size of one array element: a 64-bit word.
const CellSize = 8

// Errors mirroring the paper's GeneralReturn codes.
var (
	ErrIndexOutOfRange = errors.New("intarray: index out of range")
)

// Operation names.
const (
	OpGet = "GetCell"
	OpSet = "SetCell"
)

// Server is the integer array data server.
type Server struct {
	srv     *srvlib.Server
	maxCell uint32
	base    srvlib.VirtualAddress

	// moved is the migration seal: set (within the migration transaction,
	// while the quiesce locks are held) just before the move commits, so
	// operations granted locks after commit find the shard gone instead
	// of serving from the orphaned source copy. Volatile by design — a
	// crash clears it, and after a crash the placement map alone decides
	// who serves (an unpublished migration leaves the old map, and this
	// copy, authoritative).
	moved atomic.Bool
	// homeCheck, when set (sharded deployments), refuses ordinary
	// operations whenever the installed placement says this shard's home
	// is another node — the belt to the seal's suspenders, covering a
	// destination attached by a migration that never published.
	homeCheck func() error
}

// Attach creates (or re-attaches after a crash) an integer array server
// with cells elements on node n. The recoverable segment is sized to hold
// the array exactly.
func Attach(n *core.Node, id types.ServerID, seg types.SegmentID, cells uint32, lockTimeout time.Duration) (*Server, error) {
	return attach(n, id, seg, cells, lockTimeout, nil)
}

func attach(n *core.Node, id types.ServerID, seg types.SegmentID, cells uint32, lockTimeout time.Duration, homeCheck func() error) (*Server, error) {
	pages := (cells*CellSize + types.PageSize - 1) / types.PageSize
	if pages == 0 {
		pages = 1
	}
	srv, err := n.NewServer(id, seg, pages, nil, lockTimeout)
	if err != nil {
		return nil, err
	}
	s := &Server{srv: srv, maxCell: cells, base: 0, homeCheck: homeCheck}
	srv.AcceptRequests(s.dispatch)
	return s, nil
}

// serveCheck refuses GetCell/SetCell on a shard this server no longer
// owns: sealed by an in-flight migration, or — per the placement map —
// homed on another node.
func (s *Server) serveCheck() error {
	if s.moved.Load() {
		return fmt.Errorf("%w: %s is sealed by a migration", core.ErrShardMoved, s.srv.ID())
	}
	if s.homeCheck != nil {
		return s.homeCheck()
	}
	return nil
}

// Lib exposes the underlying server library instance (tests, benches).
func (s *Server) Lib() *srvlib.Server { return s.srv }

// cellObject computes the ObjectID of a cell, exactly as the paper's
// SetCell adds the proper offset to the base of the recoverable segment.
func (s *Server) cellObject(cell uint32) (types.ObjectID, error) {
	if cell < 1 || cell > s.maxCell {
		return types.ObjectID{}, fmt.Errorf("%w: %d (max %d)", ErrIndexOutOfRange, cell, s.maxCell)
	}
	va := s.base + srvlib.VirtualAddress((cell-1)*CellSize)
	return s.srv.CreateObjectID(va, CellSize), nil
}

// dispatch is the server's operation dispatcher (the function passed to
// AcceptRequests).
func (s *Server) dispatch(req *srvlib.Request) ([]byte, error) {
	switch req.Op {
	case OpGet:
		if len(req.Body) != 4 {
			return nil, errors.New("intarray: GetCell wants a 4-byte cell number")
		}
		if err := s.serveCheck(); err != nil {
			return nil, err
		}
		cell := binary.BigEndian.Uint32(req.Body)
		v, err := s.getCell(req.TID, cell)
		if err != nil {
			return nil, err
		}
		return binary.BigEndian.AppendUint64(nil, uint64(v)), nil
	case OpSet:
		if len(req.Body) != 12 {
			return nil, errors.New("intarray: SetCell wants cell number and value")
		}
		if err := s.serveCheck(); err != nil {
			return nil, err
		}
		cell := binary.BigEndian.Uint32(req.Body[:4])
		value := int64(binary.BigEndian.Uint64(req.Body[4:]))
		return nil, s.setCell(req.TID, cell, value)
	case core.OpMigrateExport:
		return s.migrateExport(req.TID, req.Body)
	case core.OpMigrateImport:
		return nil, s.migrateImport(req.TID, req.Body)
	case core.OpMigrateSeal:
		if len(req.Body) != 1 {
			return nil, errors.New("intarray: MigrateSeal wants one flag byte")
		}
		s.moved.Store(req.Body[0] == 1)
		return nil, nil
	default:
		return nil, fmt.Errorf("intarray: unknown operation %q", req.Op)
	}
}

// migrateExport serves one chunk of the shard's pages to the migration
// driver. The first chunk quiesces the shard: every cell is write-locked
// under the migration transaction, through the ordinary lock manager, so
// concurrent writers drain (or time out and abort) before any page is
// read, and no write can slip in until the migration commits or aborts.
func (s *Server) migrateExport(tid types.TransID, body []byte) ([]byte, error) {
	start, maxPages, err := core.DecodeMigrateExportReq(body)
	if err != nil {
		return nil, err
	}
	_, size, err := s.srv.ReadPermanentData()
	if err != nil {
		return nil, err
	}
	ps := uint32(types.PageSize)
	totalPages := size / ps
	if start >= totalPages {
		return nil, fmt.Errorf("intarray: export page %d beyond segment (%d pages)", start, totalPages)
	}
	if start == 0 {
		for cell := uint32(1); cell <= s.maxCell; cell++ {
			obj, err := s.cellObject(cell)
			if err != nil {
				return nil, err
			}
			if err := s.srv.LockObject(tid, obj, lock.ModeWrite); err != nil {
				return nil, err
			}
		}
	}
	end := totalPages
	if maxPages > 0 && start+maxPages < end {
		end = start + maxPages
	}
	data := make([]byte, 0, (end-start)*ps)
	for pg := start; pg < end; pg++ {
		raw, err := s.srv.Read(s.srv.CreateObjectID(srvlib.VirtualAddress(pg*ps), ps))
		if err != nil {
			return nil, err
		}
		data = append(data, raw...)
	}
	meta := binary.BigEndian.AppendUint32(nil, s.maxCell)
	return core.EncodeMigrateExportReply(totalPages, meta, start, data), nil
}

// migrateImport applies one chunk of pages on the migration destination
// with the standard value-logging discipline — lock, pin and buffer,
// write, log old/new and unpin — so commit of the migration transaction
// forces the copied pages through this node's log, and an abort undoes
// them.
func (s *Server) migrateImport(tid types.TransID, body []byte) error {
	start, data, err := core.DecodeMigrateImportReq(body)
	if err != nil {
		return err
	}
	ps := uint32(types.PageSize)
	for i := uint32(0); i < uint32(len(data))/ps; i++ {
		obj := s.srv.CreateObjectID(srvlib.VirtualAddress((start+i)*ps), ps)
		if err := s.srv.LockObject(tid, obj, lock.ModeWrite); err != nil {
			return err
		}
		if err := s.srv.PinAndBuffer(tid, obj); err != nil {
			return err
		}
		if err := s.srv.Write(obj, data[i*ps:(i+1)*ps]); err != nil {
			return err
		}
		if err := s.srv.LogAndUnPin(tid, obj); err != nil {
			return err
		}
	}
	return nil
}

// getCell reads array[cell] under a read lock.
func (s *Server) getCell(tid types.TransID, cell uint32) (int64, error) {
	obj, err := s.cellObject(cell)
	if err != nil {
		return 0, err
	}
	if err := s.srv.LockObject(tid, obj, lock.ModeRead); err != nil {
		return 0, err
	}
	// Re-check after the lock grant: an operation that waited out a
	// migration's quiesce would otherwise be granted its lock at commit
	// and read the orphaned copy.
	if err := s.serveCheck(); err != nil {
		return 0, err
	}
	raw, err := s.srv.Read(obj)
	if err != nil {
		return 0, err
	}
	return int64(binary.BigEndian.Uint64(raw)), nil
}

// setCell sets array[cell] to value: write lock, pin and buffer the old
// value, do the assignment, log old/new and unpin — the paper's SetCell
// verbatim (§4.1).
func (s *Server) setCell(tid types.TransID, cell uint32, value int64) error {
	obj, err := s.cellObject(cell)
	if err != nil {
		return err
	}
	if err := s.srv.LockObject(tid, obj, lock.ModeWrite); err != nil {
		return err
	}
	// See getCell: never write a shard that moved while we waited.
	if err := s.serveCheck(); err != nil {
		return err
	}
	if err := s.srv.PinAndBuffer(tid, obj); err != nil {
		return err
	}
	if err := s.srv.Write(obj, binary.BigEndian.AppendUint64(nil, uint64(value))); err != nil {
		return err
	}
	return s.srv.LogAndUnPin(tid, obj)
}

// Client is the typed stub a TABS application links against (the role of
// Matchmaker-generated client stubs, §2.1.1).
type Client struct {
	node   *core.Node
	target types.NodeID
	server types.ServerID
}

// NewClient returns a stub that calls the array server named id on node
// target, from the application's node n (which may be the same node).
func NewClient(n *core.Node, target types.NodeID, id types.ServerID) *Client {
	return &Client{node: n, target: target, server: id}
}

// Get reads array[cell] within tid.
func (c *Client) Get(tid types.TransID, cell uint32) (int64, error) {
	body := binary.BigEndian.AppendUint32(nil, cell)
	out, err := c.node.CallRemote(c.target, c.server, OpGet, tid, body)
	if err != nil {
		return 0, err
	}
	if len(out) != 8 {
		return 0, errors.New("intarray: malformed GetCell reply")
	}
	return int64(binary.BigEndian.Uint64(out)), nil
}

// Set assigns array[cell] = value within tid.
func (c *Client) Set(tid types.TransID, cell uint32, value int64) error {
	body := binary.BigEndian.AppendUint32(nil, cell)
	body = binary.BigEndian.AppendUint64(body, uint64(value))
	_, err := c.node.CallRemote(c.target, c.server, OpSet, tid, body)
	return err
}
