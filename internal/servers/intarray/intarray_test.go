package intarray_test

import (
	"strings"
	"testing"
	"time"

	"tabs/internal/core"
	"tabs/internal/servers/intarray"
	"tabs/internal/types"
)

func newArray(t *testing.T, cells uint32) (*core.Cluster, *core.Node, *intarray.Client) {
	t.Helper()
	c, err := core.NewCluster(core.DefaultClusterOptions(), "n1")
	if err != nil {
		t.Fatal(err)
	}
	n := c.Node("n1")
	if _, err := intarray.Attach(n, "arr", 1, cells, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Recover(); err != nil {
		t.Fatal(err)
	}
	return c, n, intarray.NewClient(n, "n1", "arr")
}

func TestSetGetRoundTrip(t *testing.T) {
	c, n, arr := newArray(t, 64)
	defer c.Shutdown()
	if err := n.App.Run(func(tid types.TransID) error {
		for i := uint32(1); i <= 64; i++ {
			if err := arr.Set(tid, i, int64(i)*3); err != nil {
				return err
			}
		}
		for i := uint32(1); i <= 64; i++ {
			v, err := arr.Get(tid, i)
			if err != nil {
				return err
			}
			if v != int64(i)*3 {
				t.Errorf("cell %d = %d", i, v)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestIndexOutOfRange(t *testing.T) {
	c, n, arr := newArray(t, 4)
	defer c.Shutdown()
	for _, cell := range []uint32{0, 5, 1 << 30} {
		err := n.App.Run(func(tid types.TransID) error {
			return arr.Set(tid, cell, 1)
		})
		if err == nil || !strings.Contains(err.Error(), "out of range") {
			t.Errorf("cell %d: %v (want IndexOutOfRange, as the paper's GeneralReturn)", cell, err)
		}
		err = n.App.Run(func(tid types.TransID) error {
			_, gerr := arr.Get(tid, cell)
			return gerr
		})
		if err == nil {
			t.Errorf("get cell %d succeeded", cell)
		}
	}
}

func TestNegativeValues(t *testing.T) {
	c, n, arr := newArray(t, 4)
	defer c.Shutdown()
	if err := n.App.Run(func(tid types.TransID) error {
		if err := arr.Set(tid, 1, -123456789); err != nil {
			return err
		}
		v, err := arr.Get(tid, 1)
		if err != nil {
			return err
		}
		if v != -123456789 {
			t.Errorf("v = %d", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownOperation(t *testing.T) {
	c, n, _ := newArray(t, 4)
	defer c.Shutdown()
	err := n.App.Run(func(tid types.TransID) error {
		_, cerr := n.Call("arr", "Frobnicate", tid, nil)
		return cerr
	})
	if err == nil || !strings.Contains(err.Error(), "unknown operation") {
		t.Errorf("got %v", err)
	}
}

func TestMalformedRequests(t *testing.T) {
	c, n, _ := newArray(t, 4)
	defer c.Shutdown()
	for _, tc := range []struct{ op string }{
		{intarray.OpGet},
		{intarray.OpSet},
	} {
		err := n.App.Run(func(tid types.TransID) error {
			_, cerr := n.Call("arr", tc.op, tid, []byte{1, 2})
			return cerr
		})
		if err == nil {
			t.Errorf("%s with a short body succeeded", tc.op)
		}
	}
}
