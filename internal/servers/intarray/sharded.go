package intarray

// Sharded deployment of the integer array: one array server per shard,
// placed over a cluster's nodes by a nameserver.Placement map. Keys are
// global uint64 cell indices; the placement's identity-modulo partition
// function keeps each shard's key set dense, so shard s of n stores
// global key k (with k%n == s) at local cell k/n+1 and the per-shard
// segment is exactly 1/n of the total with no holes.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"tabs/internal/core"
	"tabs/internal/nameserver"
	"tabs/internal/types"
)

// ShardCells returns shard i's cell count when totalKeys global keys are
// partitioned identity-modulo over shards: shard i owns the keys {k :
// k%shards == i}, whose local cells are 1..ceil((totalKeys-i)/shards).
func ShardCells(totalKeys uint64, shards, i int) uint32 {
	n := uint64(shards)
	cells := totalKeys / n
	if uint64(i) < totalKeys%n {
		cells++
	}
	if cells == 0 {
		cells = 1
	}
	return uint32(cells)
}

// AttachShard attaches shard `shard` of a sharded family on node n under
// its canonical name and segment, with the placement home check wired in:
// the server refuses to serve whenever the installed placement map says
// the shard's home is another node, so a half-migrated or stale copy can
// never answer for the live one.
func AttachShard(n *core.Node, family string, shard int, cells uint32, lockTimeout time.Duration) (*Server, error) {
	id := nameserver.ShardServerID(family, shard)
	seg := types.SegmentID(ShardSegmentBase + shard)
	home := func() error {
		p := n.NS.PlacementFor(family)
		if p == nil || shard >= p.NumShards() || p.Shards[shard].Node == n.ID() {
			return nil
		}
		return fmt.Errorf("%w: %s#%d now lives on %s", core.ErrShardMoved, family, shard, p.Shards[shard].Node)
	}
	return attach(n, id, seg, cells, lockTimeout, home)
}

// RegisterMigration makes node n a valid migration destination for the
// family: the registered factory attaches an identically sized shard
// server from the source's export meta (the shard's cell count).
func RegisterMigration(n *core.Node, family string, lockTimeout time.Duration) {
	n.RegisterShardFactory(family, func(nn *core.Node, shard int, meta []byte) error {
		if len(meta) != 4 {
			return errors.New("intarray: bad migration meta (want 4-byte cell count)")
		}
		_, err := AttachShard(nn, family, shard, binary.BigEndian.Uint32(meta), lockTimeout)
		return err
	})
}

// ShardSegmentBase offsets shard segments away from the segment IDs the
// standard single-array deployments use (Attach callers conventionally
// pass small segment numbers).
const ShardSegmentBase = 100

// AttachSharded partitions an array of totalKeys cells (global keys
// 0..totalKeys-1) into one shard per cluster node, attaches each shard's
// array server on its home node, installs the version-1 placement map on
// every node, and returns the map. Shard i is named ShardServerID(family,
// i) and lives on the i-th node in canonical (sorted) order.
func AttachSharded(c *core.Cluster, family string, totalKeys uint64, lockTimeout time.Duration) (*nameserver.Placement, error) {
	nodes := c.NodeNames()
	p, err := nameserver.ComputePlacement(family, 1, len(nodes), nodes)
	if err != nil {
		return nil, err
	}
	for i, sh := range p.Shards {
		node := c.Node(sh.Node)
		if node == nil {
			return nil, fmt.Errorf("intarray: placement names unknown node %s", sh.Node)
		}
		if _, err := AttachShard(node, family, i, ShardCells(totalKeys, p.NumShards(), i), lockTimeout); err != nil {
			return nil, fmt.Errorf("intarray: attaching shard %d on %s: %w", i, sh.Node, err)
		}
	}
	// Every node — shard home or not — may become a migration
	// destination later.
	for _, name := range nodes {
		RegisterMigration(c.Node(name), family, lockTimeout)
	}
	if err := c.ApplyPlacement(p); err != nil {
		return nil, err
	}
	return p, nil
}

// ShardedClient routes Get/Set by global key through a core.Router.
type ShardedClient struct {
	router *core.Router
}

// NewShardedClient builds a keyed stub on node n for the family's
// placement installed in n's Name Server.
func NewShardedClient(n *core.Node, family string) (*ShardedClient, error) {
	r, err := core.NewRouter(n, family)
	if err != nil {
		return nil, err
	}
	return &ShardedClient{router: r}, nil
}

// Shard returns the shard owning key (tests, benchmark key planning).
func (c *ShardedClient) Shard(key uint64) int { return c.router.Shard(key) }

// NumShards returns the placement's shard count.
func (c *ShardedClient) NumShards() int { return c.router.Placement().NumShards() }

// localCell maps a global key to its cell within the owning shard.
func (c *ShardedClient) localCell(key uint64) uint32 {
	return uint32(key/uint64(c.NumShards())) + 1
}

// Get reads the cell with global index key within tid.
func (c *ShardedClient) Get(tid types.TransID, key uint64) (int64, error) {
	body := binary.BigEndian.AppendUint32(nil, c.localCell(key))
	out, err := c.router.Call(key, OpGet, tid, body)
	if err != nil {
		return 0, err
	}
	if len(out) != 8 {
		return 0, errors.New("intarray: malformed GetCell reply")
	}
	return int64(binary.BigEndian.Uint64(out)), nil
}

// Set assigns the cell with global index key within tid.
func (c *ShardedClient) Set(tid types.TransID, key uint64, value int64) error {
	body := binary.BigEndian.AppendUint32(nil, c.localCell(key))
	body = binary.BigEndian.AppendUint64(body, uint64(value))
	_, err := c.router.Call(key, OpSet, tid, body)
	return err
}
