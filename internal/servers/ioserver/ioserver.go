// Package ioserver implements the TABS IO server (paper §4.3): it extends
// the domain of transactions to the display by restoring the screen after
// a failure and giving users a faithful model of transaction-based
// input/output.
//
// Output is never buffered until commit — that would break conversational
// transactions. Instead every line is displayed as it is written, in a
// style reflecting the writing transaction's state: gray (in progress),
// black (committed), or struck through (aborted; the paper notes that
// making output vanish is disconcerting, so aborted output stays visible
// but crossed out). The display of this implementation is a textual
// rendering — each line prefixed by '~' (gray), ' ' (black), or '-'
// (struck) — since the interesting property is the transactional state
// machinery, not the Perq bitmap.
//
// The mechanism is the paper's exactly: the IO server keeps permanent,
// non-failure-atomic character data, written under its own top-level
// transactions via ExecuteTransaction so a client abort cannot erase it.
// For each client transaction it allocates a permanent state object,
// writes "aborted" into it under an ExecuteTransaction, then has the
// client transaction lock the state object and overwrite it with
// "committed". The transaction's fate is then readable forever:
// IsObjectLocked says "in progress"; otherwise the object holds
// "committed" if the client committed, or "aborted" — restored by the
// recovery mechanisms — if it did not.
package ioserver

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"time"

	"tabs/internal/core"
	"tabs/internal/lock"
	"tabs/internal/srvlib"
	"tabs/internal/types"
)

// Geometry.
const (
	MaxAreas     = 8
	MaxLines     = 32 // lines per area
	MaxLineText  = 56
	lineRecSize  = 64
	linesPerPage = types.PageSize / lineRecSize // 8
	areaPages    = MaxLines / linesPerPage      // 4 pages per area
	stateSlots   = types.PageSize               // one byte per slot
)

// State slot values.
const (
	slotFree      byte = 0
	slotAborted   byte = 1
	slotCommitted byte = 2
)

// Errors.
var (
	ErrNoFreeArea  = errors.New("ioserver: no free IO area")
	ErrBadArea     = errors.New("ioserver: no such IO area")
	ErrAreaFull    = errors.New("ioserver: IO area full")
	ErrNoInput     = errors.New("ioserver: no input available")
	ErrNoFreeSlots = errors.New("ioserver: out of state objects")
)

// Operation names.
const (
	OpObtain   = "ObtainIOArea"
	OpDestroy  = "DestroyIOArea"
	OpWrite    = "WriteToArea"
	OpWriteln  = "WritelnToArea"
	OpReadChar = "ReadCharFromArea"
	OpReadLine = "ReadLineFromArea"
	OpRender   = "Render"
)

// Line kinds.
const (
	kindOutput byte = 0
	kindInput  byte = 1 // echoed user input ("rectangles" in Figure 4-1)
)

// Server is the IO data server.
type Server struct {
	srv *srvlib.Server
	// owners maps (transaction, area) to the allocated state slot;
	// volatile, like the screen process state it models.
	owners map[ownerKey]uint32
	// input holds pending user input per area (volatile).
	input map[uint32][]byte
	// reserved guards slot allocation across the coroutine switches
	// inside ExecuteTransaction.
	reserved map[uint32]bool
}

type ownerKey struct {
	tid  types.TransID
	area uint32
}

// Segment layout: page 0 area table, page 1 state slots, then
// MaxAreas × areaPages line pages.
func segmentPages() uint32 { return 2 + MaxAreas*areaPages }

// Attach creates (or re-attaches) the IO server on node n.
func Attach(n *core.Node, id types.ServerID, seg types.SegmentID, lockTimeout time.Duration) (*Server, error) {
	srv, err := n.NewServer(id, seg, segmentPages(), nil, lockTimeout)
	if err != nil {
		return nil, err
	}
	s := &Server{
		srv:      srv,
		owners:   make(map[ownerKey]uint32),
		input:    make(map[uint32][]byte),
		reserved: make(map[uint32]bool),
	}
	srv.AcceptRequests(s.dispatch)
	return s, nil
}

// Lib exposes the underlying server library instance.
func (s *Server) Lib() *srvlib.Server { return s.srv }

// --- objects -------------------------------------------------------------------

func (s *Server) areaObject(area uint32) types.ObjectID {
	return s.srv.CreateObjectID(srvlib.VirtualAddress(area*4), 4)
}

func (s *Server) stateObject(slot uint32) types.ObjectID {
	return s.srv.CreateObjectID(srvlib.VirtualAddress(types.PageSize+slot), 1)
}

func (s *Server) lineObject(area, line uint32) types.ObjectID {
	va := (2+area*areaPages)*types.PageSize + line*lineRecSize
	return s.srv.CreateObjectID(srvlib.VirtualAddress(va), lineRecSize)
}

// --- helpers under ExecuteTransaction ----------------------------------------------

// xwrite performs one value-logged write of obj under the transaction t.
func (s *Server) xwrite(t types.TransID, obj types.ObjectID, data []byte) error {
	if err := s.srv.PinAndBuffer(t, obj); err != nil {
		return err
	}
	if err := s.srv.Write(obj, data); err != nil {
		return err
	}
	return s.srv.LogAndUnPin(t, obj)
}

// --- area management ------------------------------------------------------------

type areaRec struct {
	used  bool
	lines uint16
}

func (s *Server) readArea(area uint32) (areaRec, error) {
	if area >= MaxAreas {
		return areaRec{}, fmt.Errorf("%w: %d", ErrBadArea, area)
	}
	raw, err := s.srv.Read(s.areaObject(area))
	if err != nil {
		return areaRec{}, err
	}
	return areaRec{used: raw[0] != 0, lines: binary.BigEndian.Uint16(raw[2:4])}, nil
}

func encodeArea(a areaRec) []byte {
	raw := make([]byte, 4)
	if a.used {
		raw[0] = 1
	}
	binary.BigEndian.PutUint16(raw[2:4], a.lines)
	return raw
}

// obtain allocates a free IO area. The allocation is made permanent
// immediately under a server-owned transaction: the area exists regardless
// of what happens to the requesting client.
func (s *Server) obtain() (uint32, error) {
	var chosen uint32
	found := false
	for a := uint32(0); a < MaxAreas && !found; a++ {
		rec, err := s.readArea(a)
		if err != nil {
			return 0, err
		}
		if !rec.used {
			chosen, found = a, true
		}
	}
	if !found {
		return 0, ErrNoFreeArea
	}
	err := s.srv.ExecuteTransaction(func(t types.TransID) error {
		if err := s.srv.LockObject(t, s.areaObject(chosen), lock.ModeWrite); err != nil {
			return err
		}
		return s.xwrite(t, s.areaObject(chosen), encodeArea(areaRec{used: true}))
	})
	return chosen, err
}

// destroy releases an area, clearing its lines and freeing the state
// slots they reference.
func (s *Server) destroy(area uint32) error {
	rec, err := s.readArea(area)
	if err != nil {
		return err
	}
	if !rec.used {
		return fmt.Errorf("%w: %d", ErrBadArea, area)
	}
	return s.srv.ExecuteTransaction(func(t types.TransID) error {
		slots := map[uint32]bool{}
		for l := uint32(0); l < uint32(rec.lines); l++ {
			obj := s.lineObject(area, l)
			raw, err := s.srv.Read(obj)
			if err != nil {
				return err
			}
			if raw[0] != 0 {
				slots[binary.BigEndian.Uint32(raw[1:5])] = true
			}
			if err := s.srv.LockObject(t, obj, lock.ModeWrite); err != nil {
				return err
			}
			if err := s.xwrite(t, obj, make([]byte, lineRecSize)); err != nil {
				return err
			}
		}
		for slot := range slots {
			so := s.stateObject(slot)
			if err := s.srv.LockObject(t, so, lock.ModeWrite); err != nil {
				return err
			}
			if err := s.xwrite(t, so, []byte{slotFree}); err != nil {
				return err
			}
		}
		if err := s.srv.LockObject(t, s.areaObject(area), lock.ModeWrite); err != nil {
			return err
		}
		return s.xwrite(t, s.areaObject(area), encodeArea(areaRec{}))
	})
}

// --- state objects -----------------------------------------------------------------

// ensureStateSlot returns the state slot owned by (tid, area), creating it
// on first use: a fresh permanent slot is set to "aborted" under a
// server-owned transaction, and then the client transaction locks it and
// overwrites it with "committed" — producing the aborted/committed
// old/new pair in the log that recovery will replay or undo (§4.3).
func (s *Server) ensureStateSlot(tid types.TransID, area uint32) (uint32, error) {
	key := ownerKey{tid: tid, area: area}
	if slot, ok := s.owners[key]; ok {
		return slot, nil
	}
	// Find a free slot (serialized by the server monitor).
	var slot uint32
	found := false
	for i := uint32(0); i < stateSlots && !found; i++ {
		if s.reserved[i] {
			continue
		}
		raw, err := s.srv.Read(s.stateObject(i))
		if err != nil {
			return 0, err
		}
		if raw[0] == slotFree && !s.srv.IsObjectLocked(s.stateObject(i)) {
			slot, found = i, true
		}
	}
	if !found {
		return 0, ErrNoFreeSlots
	}
	s.reserved[slot] = true
	defer delete(s.reserved, slot)
	// Permanently mark it "aborted" first, in a transaction of our own.
	if err := s.srv.ExecuteTransaction(func(t types.TransID) error {
		if err := s.srv.LockObject(t, s.stateObject(slot), lock.ModeWrite); err != nil {
			return err
		}
		return s.xwrite(t, s.stateObject(slot), []byte{slotAborted})
	}); err != nil {
		return 0, err
	}
	// Now the client transaction locks it and sets "committed". While the
	// client runs, the lock says "in progress"; if it aborts, recovery
	// resets the value to "aborted"; if it commits, "committed" sticks.
	if err := s.srv.LockObject(tid, s.stateObject(slot), lock.ModeWrite); err != nil {
		return 0, err
	}
	if err := s.xwrite(tid, s.stateObject(slot), []byte{slotCommitted}); err != nil {
		return 0, err
	}
	s.owners[key] = slot
	return slot, nil
}

// LineState is a rendered line's transactional state.
type LineState byte

// Rendered line states.
const (
	StateInProgress LineState = '~' // gray: transaction still running
	StateCommitted  LineState = ' ' // black: the operation really happened
	StateAborted    LineState = '-' // struck through: transaction aborted
)

// stateOf classifies a slot.
func (s *Server) stateOf(slot uint32) (LineState, error) {
	obj := s.stateObject(slot)
	if s.srv.IsObjectLocked(obj) {
		return StateInProgress, nil
	}
	raw, err := s.srv.Read(obj)
	if err != nil {
		return StateAborted, err
	}
	if raw[0] == slotCommitted {
		return StateCommitted, nil
	}
	return StateAborted, nil
}

// --- writing --------------------------------------------------------------------

// write appends a line of output to the area on behalf of tid. The text
// is displayed (made permanent) via ExecuteTransaction immediately — in
// gray — regardless of tid's eventual fate (§4.3).
func (s *Server) write(tid types.TransID, area uint32, text string, kind byte) error {
	rec, err := s.readArea(area)
	if err != nil {
		return err
	}
	if !rec.used {
		return fmt.Errorf("%w: %d", ErrBadArea, area)
	}
	if rec.lines >= MaxLines {
		return fmt.Errorf("%w: %d", ErrAreaFull, area)
	}
	slot, err := s.ensureStateSlot(tid, area)
	if err != nil {
		return err
	}
	if len(text) > MaxLineText {
		text = text[:MaxLineText]
	}
	line := uint32(rec.lines)
	raw := make([]byte, lineRecSize)
	raw[0] = 1
	binary.BigEndian.PutUint32(raw[1:5], slot)
	raw[5] = kind
	binary.BigEndian.PutUint16(raw[6:8], uint16(len(text)))
	copy(raw[8:], text)
	return s.srv.ExecuteTransaction(func(t types.TransID) error {
		if err := s.srv.LockObject(t, s.lineObject(area, line), lock.ModeWrite); err != nil {
			return err
		}
		if err := s.xwrite(t, s.lineObject(area, line), raw); err != nil {
			return err
		}
		if err := s.srv.LockObject(t, s.areaObject(area), lock.ModeWrite); err != nil {
			return err
		}
		return s.xwrite(t, s.areaObject(area), encodeArea(areaRec{used: true, lines: rec.lines + 1}))
	})
}

// --- reading --------------------------------------------------------------------

// Feed supplies user input to an area (the keyboard of the simulation).
func (s *Server) feed(area uint32, text string) {
	s.input[area] = append(s.input[area], text...)
}

// readChar consumes one input character, echoing it to the area.
func (s *Server) readChar(tid types.TransID, area uint32) (byte, error) {
	buf := s.input[area]
	if len(buf) == 0 {
		return 0, ErrNoInput
	}
	ch := buf[0]
	s.input[area] = buf[1:]
	if err := s.write(tid, area, string(ch), kindInput); err != nil {
		return 0, err
	}
	return ch, nil
}

// readLine consumes input up to a newline, echoing it.
func (s *Server) readLine(tid types.TransID, area uint32) (string, error) {
	buf := s.input[area]
	if len(buf) == 0 {
		return "", ErrNoInput
	}
	idx := -1
	for i, b := range buf {
		if b == '\n' {
			idx = i
			break
		}
	}
	var line string
	if idx < 0 {
		line = string(buf)
		s.input[area] = nil
	} else {
		line = string(buf[:idx])
		s.input[area] = buf[idx+1:]
	}
	if err := s.write(tid, area, line, kindInput); err != nil {
		return "", err
	}
	return line, nil
}

// --- rendering --------------------------------------------------------------------

// render produces the textual screen: one block per in-use area, one line
// per written line, prefixed with its state marker; echoed input is
// bracketed (the rectangles of Figure 4-1).
func (s *Server) render() (string, error) {
	var b strings.Builder
	for a := uint32(0); a < MaxAreas; a++ {
		rec, err := s.readArea(a)
		if err != nil {
			return "", err
		}
		if !rec.used {
			continue
		}
		fmt.Fprintf(&b, "=== area %d ===\n", a)
		for l := uint32(0); l < uint32(rec.lines); l++ {
			raw, err := s.srv.Read(s.lineObject(a, l))
			if err != nil {
				return "", err
			}
			if raw[0] == 0 {
				continue
			}
			slot := binary.BigEndian.Uint32(raw[1:5])
			kind := raw[5]
			n := binary.BigEndian.Uint16(raw[6:8])
			text := string(raw[8 : 8+n])
			st, err := s.stateOf(slot)
			if err != nil {
				return "", err
			}
			if kind == kindInput {
				text = "[" + text + "]"
			}
			fmt.Fprintf(&b, "%c%s\n", byte(st), text)
		}
	}
	return b.String(), nil
}

// --- dispatch ---------------------------------------------------------------------

func (s *Server) dispatch(req *srvlib.Request) ([]byte, error) {
	switch req.Op {
	case OpObtain:
		area, err := s.obtain()
		if err != nil {
			return nil, err
		}
		return binary.BigEndian.AppendUint32(nil, area), nil
	case OpDestroy:
		return nil, s.destroy(areaArg(req.Body))
	case OpWrite, OpWriteln:
		if len(req.Body) < 4 {
			return nil, errors.New("ioserver: short write request")
		}
		return nil, s.write(req.TID, areaArg(req.Body), string(req.Body[4:]), kindOutput)
	case OpReadChar:
		ch, err := s.readChar(req.TID, areaArg(req.Body))
		if err != nil {
			return nil, err
		}
		return []byte{ch}, nil
	case OpReadLine:
		line, err := s.readLine(req.TID, areaArg(req.Body))
		if err != nil {
			return nil, err
		}
		return []byte(line), nil
	case OpRender:
		out, err := s.render()
		if err != nil {
			return nil, err
		}
		return []byte(out), nil
	case "Feed": // test/demo input injection
		if len(req.Body) < 4 {
			return nil, errors.New("ioserver: short feed")
		}
		s.feed(areaArg(req.Body), string(req.Body[4:]))
		return nil, nil
	default:
		return nil, fmt.Errorf("ioserver: unknown operation %q", req.Op)
	}
}

func areaArg(b []byte) uint32 {
	if len(b) < 4 {
		return ^uint32(0)
	}
	return binary.BigEndian.Uint32(b[:4])
}

// Client is the typed application stub.
type Client struct {
	node   *core.Node
	target types.NodeID
	server types.ServerID
}

// NewClient returns a stub for the IO server id on node target.
func NewClient(n *core.Node, target types.NodeID, id types.ServerID) *Client {
	return &Client{node: n, target: target, server: id}
}

func (c *Client) call(op string, tid types.TransID, body []byte) ([]byte, error) {
	return c.node.CallRemote(c.target, c.server, op, tid, body)
}

// ObtainIOArea allocates a display area.
func (c *Client) ObtainIOArea(tid types.TransID) (uint32, error) {
	out, err := c.call(OpObtain, tid, nil)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(out), nil
}

// DestroyIOArea releases a display area.
func (c *Client) DestroyIOArea(tid types.TransID, area uint32) error {
	_, err := c.call(OpDestroy, tid, binary.BigEndian.AppendUint32(nil, area))
	return err
}

// WritelnToArea writes one line of output on behalf of tid.
func (c *Client) WritelnToArea(tid types.TransID, area uint32, text string) error {
	body := binary.BigEndian.AppendUint32(nil, area)
	_, err := c.call(OpWriteln, tid, append(body, text...))
	return err
}

// ReadLineFromArea reads (and echoes) one line of user input.
func (c *Client) ReadLineFromArea(tid types.TransID, area uint32) (string, error) {
	out, err := c.call(OpReadLine, tid, binary.BigEndian.AppendUint32(nil, area))
	return string(out), err
}

// ReadCharFromArea reads (and echoes) one input character.
func (c *Client) ReadCharFromArea(tid types.TransID, area uint32) (byte, error) {
	out, err := c.call(OpReadChar, tid, binary.BigEndian.AppendUint32(nil, area))
	if err != nil {
		return 0, err
	}
	return out[0], nil
}

// Feed injects user input for an area (the simulation's keyboard).
func (c *Client) Feed(area uint32, text string) error {
	body := binary.BigEndian.AppendUint32(nil, area)
	_, err := c.call("Feed", types.NilTransID, append(body, text...))
	return err
}

// Render returns the textual screen snapshot.
func (c *Client) Render() (string, error) {
	out, err := c.call(OpRender, types.NilTransID, nil)
	return string(out), err
}
