package ioserver_test

import (
	"errors"
	"strings"
	"testing"

	"tabs/internal/types"
)

func TestReadCharEchoes(t *testing.T) {
	c, n, io := newIO(t)
	defer c.Shutdown()
	var area uint32
	if err := n.App.Run(func(tid types.TransID) error {
		var err error
		area, err = io.ObtainIOArea(tid)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := io.Feed(area, "yn"); err != nil {
		t.Fatal(err)
	}
	if err := n.App.Run(func(tid types.TransID) error {
		ch, err := io.ReadCharFromArea(tid, area)
		if err != nil {
			return err
		}
		if ch != 'y' {
			t.Errorf("read %q", ch)
		}
		ch, err = io.ReadCharFromArea(tid, area)
		if err != nil {
			return err
		}
		if ch != 'n' {
			t.Errorf("read %q", ch)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	screen, err := io.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(screen, "[y]") || !strings.Contains(screen, "[n]") {
		t.Errorf("chars not echoed:\n%s", screen)
	}
}

func TestReadWithoutInputFails(t *testing.T) {
	c, n, io := newIO(t)
	defer c.Shutdown()
	var area uint32
	if err := n.App.Run(func(tid types.TransID) error {
		var err error
		area, err = io.ObtainIOArea(tid)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	err := n.App.Run(func(tid types.TransID) error {
		_, err := io.ReadLineFromArea(tid, area)
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "no input") {
		t.Errorf("want no-input error, got %v", err)
	}
}

func TestDestroyFreesAreaAndSlots(t *testing.T) {
	c, n, io := newIO(t)
	defer c.Shutdown()
	var area uint32
	if err := n.App.Run(func(tid types.TransID) error {
		var err error
		if area, err = io.ObtainIOArea(tid); err != nil {
			return err
		}
		return io.WritelnToArea(tid, area, "going away")
	}); err != nil {
		t.Fatal(err)
	}
	if err := n.App.Run(func(tid types.TransID) error {
		return io.DestroyIOArea(tid, area)
	}); err != nil {
		t.Fatal(err)
	}
	screen, err := io.Render()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(screen, "going away") {
		t.Errorf("destroyed area still rendered:\n%s", screen)
	}
	// The area number is reusable.
	if err := n.App.Run(func(tid types.TransID) error {
		a2, err := io.ObtainIOArea(tid)
		if err != nil {
			return err
		}
		if a2 != area {
			// Not required to be the same, but there were no others in
			// use, so the freed one should be found first.
			t.Logf("reallocated area %d (was %d)", a2, area)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestAreaExhaustion(t *testing.T) {
	c, n, io := newIO(t)
	defer c.Shutdown()
	if err := n.App.Run(func(tid types.TransID) error {
		for i := 0; ; i++ {
			_, err := io.ObtainIOArea(tid)
			if err != nil {
				if i == 0 {
					return errors.New("no areas at all")
				}
				if !strings.Contains(err.Error(), "no free IO area") {
					return err
				}
				return nil
			}
			if i > 64 {
				return errors.New("areas never ran out")
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteToUnknownAreaFails(t *testing.T) {
	c, n, io := newIO(t)
	defer c.Shutdown()
	err := n.App.Run(func(tid types.TransID) error {
		return io.WritelnToArea(tid, 7, "nobody home")
	})
	if err == nil {
		t.Error("write to unobtained area succeeded")
	}
}
