package ioserver_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"tabs/internal/core"
	"tabs/internal/servers/ioserver"
	"tabs/internal/types"
)

func newIO(t *testing.T) (*core.Cluster, *core.Node, *ioserver.Client) {
	t.Helper()
	c, err := core.NewCluster(core.DefaultClusterOptions(), "n1")
	if err != nil {
		t.Fatal(err)
	}
	n := c.Node("n1")
	if _, err := ioserver.Attach(n, "io", 1, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Recover(); err != nil {
		t.Fatal(err)
	}
	return c, n, ioserver.NewClient(n, "n1", "io")
}

func TestCommittedOutputTurnsBlack(t *testing.T) {
	c, n, io := newIO(t)
	defer c.Shutdown()

	var area uint32
	if err := n.App.Run(func(tid types.TransID) error {
		var err error
		area, err = io.ObtainIOArea(tid)
		if err != nil {
			return err
		}
		if err := io.WritelnToArea(tid, area, "deposited $35"); err != nil {
			return err
		}
		// While the transaction runs, the line renders gray.
		screen, err := io.Render()
		if err != nil {
			return err
		}
		if !strings.Contains(screen, "~deposited $35") {
			t.Errorf("in-progress output not gray:\n%s", screen)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	screen, err := io.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(screen, " deposited $35") {
		t.Errorf("committed output not black:\n%s", screen)
	}
}

func TestAbortedOutputIsStruckThrough(t *testing.T) {
	c, n, io := newIO(t)
	defer c.Shutdown()

	var area uint32
	if err := n.App.Run(func(tid types.TransID) error {
		var err error
		area, err = io.ObtainIOArea(tid)
		return err
	}); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("node failed during the transaction")
	err := n.App.Run(func(tid types.TransID) error {
		if err := io.WritelnToArea(tid, area, "withdraw $80"); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}

	screen, err := io.Render()
	if err != nil {
		t.Fatal(err)
	}
	// The output does not disappear — it is drawn through (§4.3).
	if !strings.Contains(screen, "-withdraw $80") {
		t.Errorf("aborted output not struck through:\n%s", screen)
	}
}

func TestInputEchoedInRectangles(t *testing.T) {
	c, n, io := newIO(t)
	defer c.Shutdown()

	var area uint32
	if err := n.App.Run(func(tid types.TransID) error {
		var err error
		area, err = io.ObtainIOArea(tid)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := io.Feed(area, "35\n"); err != nil {
		t.Fatal(err)
	}
	if err := n.App.Run(func(tid types.TransID) error {
		line, err := io.ReadLineFromArea(tid, area)
		if err != nil {
			return err
		}
		if line != "35" {
			t.Errorf("read %q, want 35", line)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	screen, err := io.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(screen, "[35]") {
		t.Errorf("input not echoed in rectangles:\n%s", screen)
	}
}

// TestScreenRestoredAfterCrash reproduces the Figure 4-1 story: committed
// output survives a node failure in black, output of the transaction that
// was in flight at the crash is struck through after restart.
func TestScreenRestoredAfterCrash(t *testing.T) {
	c, n, io := newIO(t)

	var area uint32
	if err := n.App.Run(func(tid types.TransID) error {
		var err error
		area, err = io.ObtainIOArea(tid)
		if err != nil {
			return err
		}
		return io.WritelnToArea(tid, area, "deposit $35 ok")
	}); err != nil {
		t.Fatal(err)
	}

	// Start a transaction and crash the node mid-flight.
	tid, err := n.App.BeginTransaction(types.NilTransID)
	if err != nil {
		t.Fatal(err)
	}
	if err := io.WritelnToArea(tid, area, "withdraw $80"); err != nil {
		t.Fatal(err)
	}
	// Force pages so the uncommitted state object reaches disk.
	if err := n.Kernel.FlushAll(); err != nil {
		t.Fatal(err)
	}
	c.Crash("n1")

	n2, err := c.Reboot("n1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ioserver.Attach(n2, "io", 1, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := n2.Recover(); err != nil {
		t.Fatal(err)
	}
	io2 := ioserver.NewClient(n2, "n1", "io")
	screen, err := io2.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(screen, " deposit $35 ok") {
		t.Errorf("committed line lost or not black after crash:\n%s", screen)
	}
	if !strings.Contains(screen, "-withdraw $80") {
		t.Errorf("in-flight line not struck through after crash:\n%s", screen)
	}
	c.Shutdown()
}
