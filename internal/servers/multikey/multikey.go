// Package multikey implements the multi-key directory of the paper's
// B-tree section (§4.4): "The B-tree server maintains arbitrary
// collections of directory entries in B-trees ... Indices on non-primary
// keys are implemented as separate B-trees, each of which points to the
// primary key B-tree's leaves which contain the data."
//
// Here the primary B-tree stores primary-key → value and the index B-tree
// stores secondary-key → primary-key. Both live in their own recoverable
// segments on the same node, and every directory operation updates both
// inside the caller's transaction, so the index can never be observed out
// of step with the data: an abort (or crash) rolls both trees back
// together — which is the whole point of building directories on a
// transaction facility.
package multikey

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"tabs/internal/core"
	"tabs/internal/servers/btree"
	"tabs/internal/types"
)

// Errors.
var (
	ErrNotFound = errors.New("multikey: key not found")
	ErrExists   = errors.New("multikey: key already exists")
)

// Directory is a multi-key directory client bound to its two B-tree
// servers.
type Directory struct {
	node    *core.Node
	target  types.NodeID
	primary *btree.Client
	index   *btree.Client
}

// Attach creates (or re-attaches) the two B-tree servers backing a
// multi-key directory on node n and returns the directory handle. primary
// and index name the two data servers; each gets its own segment.
func Attach(n *core.Node, primary, index types.ServerID, primarySeg, indexSeg types.SegmentID, pages uint32, lockTimeout time.Duration) (*Directory, error) {
	if _, err := btree.Attach(n, primary, primarySeg, pages, lockTimeout); err != nil {
		return nil, err
	}
	if _, err := btree.Attach(n, index, indexSeg, pages, lockTimeout); err != nil {
		return nil, err
	}
	return &Directory{
		node:    n,
		target:  n.ID(),
		primary: btree.NewClient(n, n.ID(), primary),
		index:   btree.NewClient(n, n.ID(), index),
	}, nil
}

// Client returns a handle for calling an existing multi-key directory
// (possibly on another node) from node n.
func Client(n *core.Node, target types.NodeID, primary, index types.ServerID) *Directory {
	return &Directory{
		node:    n,
		target:  target,
		primary: btree.NewClient(n, target, primary),
		index:   btree.NewClient(n, target, index),
	}
}

// Insert adds an entry under its primary key and indexes it under the
// secondary key, atomically within tid.
func (d *Directory) Insert(tid types.TransID, primary, secondary, value []byte) error {
	if err := d.primary.Insert(tid, primary, value); err != nil {
		return wrapExists(err, primary)
	}
	if err := d.index.Insert(tid, secondary, primary); err != nil {
		return wrapExists(err, secondary)
	}
	return nil
}

// Lookup returns the value stored under the primary key.
func (d *Directory) Lookup(tid types.TransID, primary []byte) ([]byte, error) {
	v, err := d.primary.Lookup(tid, primary)
	return v, wrapNotFound(err, primary)
}

// LookupBySecondary resolves the secondary key through the index to the
// primary entry's value.
func (d *Directory) LookupBySecondary(tid types.TransID, secondary []byte) ([]byte, error) {
	pk, err := d.index.Lookup(tid, secondary)
	if err != nil {
		return nil, wrapNotFound(err, secondary)
	}
	v, err := d.primary.Lookup(tid, pk)
	return v, wrapNotFound(err, pk)
}

// Modify replaces the value under a primary key (the paper's "modify").
func (d *Directory) Modify(tid types.TransID, primary, value []byte) error {
	return wrapNotFound(d.primary.Update(tid, primary, value), primary)
}

// Delete removes the entry and its index record atomically within tid.
func (d *Directory) Delete(tid types.TransID, primary, secondary []byte) error {
	if err := d.primary.Delete(tid, primary); err != nil {
		return wrapNotFound(err, primary)
	}
	return wrapNotFound(d.index.Delete(tid, secondary), secondary)
}

// Rekey moves an entry from one secondary key to another, atomically.
func (d *Directory) Rekey(tid types.TransID, oldSecondary, newSecondary []byte) error {
	pk, err := d.index.Lookup(tid, oldSecondary)
	if err != nil {
		return wrapNotFound(err, oldSecondary)
	}
	if err := d.index.Delete(tid, oldSecondary); err != nil {
		return wrapNotFound(err, oldSecondary)
	}
	return wrapExists(d.index.Insert(tid, newSecondary, pk), newSecondary)
}

func wrapExists(err error, key []byte) error {
	if err == nil {
		return nil
	}
	if contains(err, "exists") {
		return fmt.Errorf("%w: %q", ErrExists, key)
	}
	return err
}

func wrapNotFound(err error, key []byte) error {
	if err == nil {
		return nil
	}
	if contains(err, "not found") {
		return fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	return err
}

func contains(err error, sub string) bool {
	return strings.Contains(err.Error(), sub)
}
