package multikey_test

import (
	"errors"
	"testing"
	"time"

	"tabs/internal/core"
	"tabs/internal/servers/multikey"
	"tabs/internal/types"
)

func newDir(t *testing.T) (*core.Cluster, *core.Node, *multikey.Directory) {
	t.Helper()
	c, err := core.NewCluster(core.DefaultClusterOptions(), "n1")
	if err != nil {
		t.Fatal(err)
	}
	n := c.Node("n1")
	d, err := multikey.Attach(n, "users", "by-uid", 1, 2, 128, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Recover(); err != nil {
		t.Fatal(err)
	}
	return c, n, d
}

func TestInsertAndBothLookups(t *testing.T) {
	c, n, d := newDir(t)
	defer c.Shutdown()
	if err := n.App.Run(func(tid types.TransID) error {
		return d.Insert(tid, []byte("alice"), []byte("uid:1001"), []byte("admin"))
	}); err != nil {
		t.Fatal(err)
	}
	if err := n.App.Run(func(tid types.TransID) error {
		v, err := d.Lookup(tid, []byte("alice"))
		if err != nil {
			return err
		}
		if string(v) != "admin" {
			t.Errorf("primary lookup %q", v)
		}
		v, err = d.LookupBySecondary(tid, []byte("uid:1001"))
		if err != nil {
			return err
		}
		if string(v) != "admin" {
			t.Errorf("secondary lookup %q", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestAbortKeepsIndexConsistent is the reason multi-key directories live
// on a transaction facility: a failed insert must leave neither tree
// updated.
func TestAbortKeepsIndexConsistent(t *testing.T) {
	c, n, d := newDir(t)
	defer c.Shutdown()
	boom := errors.New("boom")
	err := n.App.Run(func(tid types.TransID) error {
		if err := d.Insert(tid, []byte("bob"), []byte("uid:2002"), []byte("user")); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	if err := n.App.Run(func(tid types.TransID) error {
		if _, err := d.Lookup(tid, []byte("bob")); !errors.Is(err, multikey.ErrNotFound) {
			t.Errorf("primary survived abort: %v", err)
		}
		if _, err := d.LookupBySecondary(tid, []byte("uid:2002")); !errors.Is(err, multikey.ErrNotFound) {
			t.Errorf("index survived abort: %v", err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestPartialInsertRollsBack: the primary insert succeeds, the index
// insert collides; aborting the transaction must remove the primary entry
// too — no orphaned data.
func TestPartialInsertRollsBack(t *testing.T) {
	c, n, d := newDir(t)
	defer c.Shutdown()
	if err := n.App.Run(func(tid types.TransID) error {
		return d.Insert(tid, []byte("carol"), []byte("uid:3003"), []byte("ops"))
	}); err != nil {
		t.Fatal(err)
	}
	// Same secondary key: the second Insert fails halfway through.
	err := n.App.Run(func(tid types.TransID) error {
		return d.Insert(tid, []byte("dave"), []byte("uid:3003"), []byte("dev"))
	})
	if !errors.Is(err, multikey.ErrExists) {
		t.Fatalf("want ErrExists, got %v", err)
	}
	if err := n.App.Run(func(tid types.TransID) error {
		if _, err := d.Lookup(tid, []byte("dave")); !errors.Is(err, multikey.ErrNotFound) {
			t.Errorf("orphaned primary entry: %v", err)
		}
		// carol is untouched.
		v, err := d.LookupBySecondary(tid, []byte("uid:3003"))
		if err != nil {
			return err
		}
		if string(v) != "ops" {
			t.Errorf("carol's entry %q", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteRemovesBoth(t *testing.T) {
	c, n, d := newDir(t)
	defer c.Shutdown()
	if err := n.App.Run(func(tid types.TransID) error {
		if err := d.Insert(tid, []byte("erin"), []byte("uid:4004"), []byte("qa")); err != nil {
			return err
		}
		return d.Delete(tid, []byte("erin"), []byte("uid:4004"))
	}); err != nil {
		t.Fatal(err)
	}
	if err := n.App.Run(func(tid types.TransID) error {
		if _, err := d.Lookup(tid, []byte("erin")); !errors.Is(err, multikey.ErrNotFound) {
			t.Errorf("primary: %v", err)
		}
		if _, err := d.LookupBySecondary(tid, []byte("uid:4004")); !errors.Is(err, multikey.ErrNotFound) {
			t.Errorf("index: %v", err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRekey(t *testing.T) {
	c, n, d := newDir(t)
	defer c.Shutdown()
	if err := n.App.Run(func(tid types.TransID) error {
		if err := d.Insert(tid, []byte("frank"), []byte("uid:5005"), []byte("intern")); err != nil {
			return err
		}
		return d.Rekey(tid, []byte("uid:5005"), []byte("uid:6006"))
	}); err != nil {
		t.Fatal(err)
	}
	if err := n.App.Run(func(tid types.TransID) error {
		if _, err := d.LookupBySecondary(tid, []byte("uid:5005")); !errors.Is(err, multikey.ErrNotFound) {
			t.Errorf("old secondary still resolves: %v", err)
		}
		v, err := d.LookupBySecondary(tid, []byte("uid:6006"))
		if err != nil {
			return err
		}
		if string(v) != "intern" {
			t.Errorf("new secondary %q", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestCrashRecoveryKeepsTreesAligned commits entries, crashes, and checks
// both trees recovered to the same state.
func TestCrashRecoveryKeepsTreesAligned(t *testing.T) {
	c, n, d := newDir(t)
	if err := n.App.Run(func(tid types.TransID) error {
		return d.Insert(tid, []byte("gina"), []byte("uid:7007"), []byte("lead"))
	}); err != nil {
		t.Fatal(err)
	}
	c.Crash("n1")
	n2, err := c.Reboot("n1")
	if err != nil {
		t.Fatal(err)
	}
	d2, err := multikey.Attach(n2, "users", "by-uid", 1, 2, 128, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n2.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := n2.App.Run(func(tid types.TransID) error {
		v, err := d2.LookupBySecondary(tid, []byte("uid:7007"))
		if err != nil {
			return err
		}
		if string(v) != "lead" {
			t.Errorf("after crash %q", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	c.Shutdown()
}
