// Package repdir implements the TABS replicated directory object (paper
// §4.5): an abstraction identical to a conventional directory whose data
// lives in multiple directory representative servers on different nodes,
// coordinated with the weighted-voting algorithm of Gifford as adapted
// for directories by Daniels/Spector and Bloch et al.
//
// Each representative stores entries (with per-entry version numbers and
// tombstones) in a B-tree server (§4.4). The global coordination module —
// in TABS, 1100 lines linked into the client program — is the Directory
// type here: reads gather a read quorum of votes and take the
// highest-version answer; writes install the next version number at a
// write quorum. Because read and write quorums intersect, any read sees
// the newest committed version, and with 3 representatives one node can
// fail with the data remaining available — the paper's own test
// configuration.
//
// Every operation runs inside the caller's (distributed) transaction:
// aborting a directory update triggers recovery on multiple nodes and
// committing one drives the multi-node two-phase commit, which is
// precisely what the object demonstrates.
package repdir

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"

	"tabs/internal/core"
	"tabs/internal/servers/btree"
	"tabs/internal/types"
)

// Errors.
var (
	ErrNotFound   = errors.New("repdir: key not found")
	ErrExists     = errors.New("repdir: key already exists")
	ErrNoQuorum   = errors.New("repdir: quorum not reachable")
	ErrBadQuorums = errors.New("repdir: quorums must satisfy r+w > total votes and w > total/2")
	ErrValueSize  = errors.New("repdir: value too large for a directory entry")
)

// MaxValue is the payload budget after version and flag bytes inside a
// B-tree value.
const MaxValue = btree.ValueSize - 5

// Rep names one directory representative and its vote weight.
type Rep struct {
	Node   types.NodeID
	Server types.ServerID
	Votes  int
}

// Directory is the client-linked global coordination module.
type Directory struct {
	node        *core.Node
	reps        []Rep
	clients     []*btree.Client
	totalVotes  int
	readQuorum  int
	writeQuorum int
}

// New builds a replicated directory over the given representatives with
// read quorum r and write quorum w (in votes). The weighted-voting
// invariants r + w > total and w > total/2 are enforced: they guarantee
// every read quorum intersects every write quorum and two writes cannot
// proceed independently.
func New(n *core.Node, reps []Rep, r, w int) (*Directory, error) {
	total := 0
	for _, rep := range reps {
		if rep.Votes <= 0 {
			return nil, fmt.Errorf("repdir: representative %s/%s needs positive votes", rep.Node, rep.Server)
		}
		total += rep.Votes
	}
	if r+w <= total || 2*w <= total || r <= 0 {
		return nil, fmt.Errorf("%w: r=%d w=%d total=%d", ErrBadQuorums, r, w, total)
	}
	d := &Directory{node: n, reps: reps, totalVotes: total, readQuorum: r, writeQuorum: w}
	for _, rep := range reps {
		d.clients = append(d.clients, btree.NewClient(n, rep.Node, rep.Server))
	}
	return d, nil
}

// --- entry encoding ---------------------------------------------------------

type entry struct {
	version uint32
	present bool
	value   []byte
}

func encodeEntry(e entry) []byte {
	b := make([]byte, 5, 5+len(e.value))
	binary.BigEndian.PutUint32(b[:4], e.version)
	if e.present {
		b[4] = 1
	}
	return append(b, e.value...)
}

func decodeEntry(b []byte) (entry, error) {
	if len(b) < 5 {
		return entry{}, errors.New("repdir: short entry")
	}
	return entry{
		version: binary.BigEndian.Uint32(b[:4]),
		present: b[4] == 1,
		value:   append([]byte(nil), b[5:]...),
	}, nil
}

// --- quorum machinery ---------------------------------------------------------

// vote is one representative's answer.
type vote struct {
	rep   int
	entry entry
	found bool
}

// isMissing classifies a representative's error as "no such key" (a valid
// vote for version 0) versus unavailability.
func isMissing(err error) bool {
	return err != nil && strings.Contains(err.Error(), "not found")
}

// readQuorumVotes gathers at least q votes, skipping unreachable
// representatives.
func (d *Directory) readQuorumVotes(tid types.TransID, key []byte, q int) ([]vote, error) {
	votes := 0
	var out []vote
	for i, c := range d.clients {
		raw, err := c.Lookup(tid, key)
		switch {
		case err == nil:
			e, derr := decodeEntry(raw)
			if derr != nil {
				return nil, derr
			}
			out = append(out, vote{rep: i, entry: e, found: true})
		case isMissing(err):
			out = append(out, vote{rep: i, found: false})
		default:
			continue // representative unavailable; try the others
		}
		votes += d.reps[i].Votes
		if votes >= q {
			return out, nil
		}
	}
	return nil, fmt.Errorf("%w: %d of %d read votes", ErrNoQuorum, votes, q)
}

// best returns the highest-version entry among the votes (absence is
// version 0, not present).
func best(votes []vote) entry {
	var e entry
	for _, v := range votes {
		if v.found && (v.entry.version > e.version) {
			e = v.entry
		}
	}
	return e
}

// writeEntry installs e at a write quorum of representatives. Each
// representative takes an upsert: update if the key exists there, insert
// otherwise.
func (d *Directory) writeEntry(tid types.TransID, key []byte, e entry) error {
	raw := encodeEntry(e)
	votes := 0
	for i, c := range d.clients {
		err := c.Update(tid, key, raw)
		if isMissing(err) {
			err = c.Insert(tid, key, raw)
		}
		if err != nil {
			continue // unavailable or conflicting; count no vote
		}
		votes += d.reps[i].Votes
		if votes >= d.writeQuorum {
			return nil
		}
	}
	return fmt.Errorf("%w: %d of %d write votes", ErrNoQuorum, votes, d.writeQuorum)
}

// --- operations ------------------------------------------------------------------

// Lookup returns the directory entry for key within tid.
func (d *Directory) Lookup(tid types.TransID, key []byte) ([]byte, error) {
	votes, err := d.readQuorumVotes(tid, key, d.readQuorum)
	if err != nil {
		return nil, err
	}
	e := best(votes)
	if !e.present {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	return e.value, nil
}

// Insert adds key -> val within tid; the key must not exist.
func (d *Directory) Insert(tid types.TransID, key, val []byte) error {
	if len(val) > MaxValue {
		return ErrValueSize
	}
	votes, err := d.readQuorumVotes(tid, key, d.readQuorum)
	if err != nil {
		return err
	}
	cur := best(votes)
	if cur.present {
		return fmt.Errorf("%w: %q", ErrExists, key)
	}
	return d.writeEntry(tid, key, entry{version: cur.version + 1, present: true, value: val})
}

// Update replaces key's value within tid; the key must exist.
func (d *Directory) Update(tid types.TransID, key, val []byte) error {
	if len(val) > MaxValue {
		return ErrValueSize
	}
	votes, err := d.readQuorumVotes(tid, key, d.readQuorum)
	if err != nil {
		return err
	}
	cur := best(votes)
	if !cur.present {
		return fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	return d.writeEntry(tid, key, entry{version: cur.version + 1, present: true, value: val})
}

// Delete removes key within tid by installing a tombstone at the next
// version, so stale presence at representatives outside the write quorum
// is outvoted.
func (d *Directory) Delete(tid types.TransID, key []byte) error {
	votes, err := d.readQuorumVotes(tid, key, d.readQuorum)
	if err != nil {
		return err
	}
	cur := best(votes)
	if !cur.present {
		return fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	return d.writeEntry(tid, key, entry{version: cur.version + 1, present: false})
}

// Quorums reports the configured quorum sizes.
func (d *Directory) Quorums() (read, write, total int) {
	return d.readQuorum, d.writeQuorum, d.totalVotes
}
