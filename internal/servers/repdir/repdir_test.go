package repdir_test

import (
	"errors"
	"testing"
	"time"

	"tabs/internal/core"
	"tabs/internal/servers/btree"
	"tabs/internal/servers/repdir"
	"tabs/internal/types"
)

// threeNodeDir builds the paper's test configuration: 3 nodes, one
// directory representative each, one vote each, r = w = 2.
func threeNodeDir(t *testing.T) (*core.Cluster, *core.Node, *repdir.Directory) {
	t.Helper()
	c, err := core.NewCluster(core.DefaultClusterOptions(), "a", "b", "c")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []types.NodeID{"a", "b", "c"} {
		n := c.Node(name)
		if _, err := btree.Attach(n, "rep", 1, 128, time.Second); err != nil {
			t.Fatal(err)
		}
		if _, err := n.Recover(); err != nil {
			t.Fatal(err)
		}
	}
	na := c.Node("a")
	d, err := repdir.New(na, []repdir.Rep{
		{Node: "a", Server: "rep", Votes: 1},
		{Node: "b", Server: "rep", Votes: 1},
		{Node: "c", Server: "rep", Votes: 1},
	}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	return c, na, d
}

func TestQuorumValidation(t *testing.T) {
	c, err := core.NewCluster(core.DefaultClusterOptions(), "x")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	n := c.Node("x")
	reps := []repdir.Rep{{Node: "x", Server: "rep", Votes: 3}}
	// r+w must exceed total and w must exceed half.
	if _, err := repdir.New(n, reps, 1, 1); err == nil {
		t.Error("r=1,w=1,total=3 accepted")
	}
	if _, err := repdir.New(n, reps, 1, 3); err != nil {
		t.Errorf("r=1,w=3,total=3 rejected: %v", err)
	}
}

func TestInsertLookupUpdateDelete(t *testing.T) {
	c, na, d := threeNodeDir(t)
	defer c.Shutdown()

	if err := na.App.Run(func(tid types.TransID) error {
		return d.Insert(tid, []byte("etc"), []byte("config"))
	}); err != nil {
		t.Fatalf("insert: %v", err)
	}
	if err := na.App.Run(func(tid types.TransID) error {
		v, err := d.Lookup(tid, []byte("etc"))
		if err != nil {
			return err
		}
		if string(v) != "config" {
			t.Errorf("lookup = %q", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := na.App.Run(func(tid types.TransID) error {
		return d.Update(tid, []byte("etc"), []byte("config-v2"))
	}); err != nil {
		t.Fatalf("update: %v", err)
	}
	if err := na.App.Run(func(tid types.TransID) error {
		return d.Delete(tid, []byte("etc"))
	}); err != nil {
		t.Fatalf("delete: %v", err)
	}
	err := na.App.Run(func(tid types.TransID) error {
		_, err := d.Lookup(tid, []byte("etc"))
		return err
	})
	if err == nil {
		t.Fatal("lookup after delete should fail")
	}
}

// TestSurvivesOneNodeFailure is the paper's availability claim: with 3
// representatives, one node can fail and the data remains available.
func TestSurvivesOneNodeFailure(t *testing.T) {
	c, na, d := threeNodeDir(t)
	defer c.Shutdown()

	if err := na.App.Run(func(tid types.TransID) error {
		return d.Insert(tid, []byte("passwd"), []byte("root"))
	}); err != nil {
		t.Fatal(err)
	}

	c.Crash("c") // one representative gone

	// Reads and writes still reach a quorum of 2.
	if err := na.App.Run(func(tid types.TransID) error {
		v, err := d.Lookup(tid, []byte("passwd"))
		if err != nil {
			return err
		}
		if string(v) != "root" {
			t.Errorf("lookup = %q", v)
		}
		return d.Update(tid, []byte("passwd"), []byte("root2"))
	}); err != nil {
		t.Fatalf("after node failure: %v", err)
	}
	if err := na.App.Run(func(tid types.TransID) error {
		v, err := d.Lookup(tid, []byte("passwd"))
		if err != nil {
			return err
		}
		if string(v) != "root2" {
			t.Errorf("after failover update: %q", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestStaleRepresentativeOutvoted writes while one node is down, brings
// it back, and verifies version numbers outvote its stale copy.
func TestStaleRepresentativeOutvoted(t *testing.T) {
	c, na, d := threeNodeDir(t)
	defer c.Shutdown()

	if err := na.App.Run(func(tid types.TransID) error {
		return d.Insert(tid, []byte("k"), []byte("v1"))
	}); err != nil {
		t.Fatal(err)
	}

	c.Crash("c")
	if err := na.App.Run(func(tid types.TransID) error {
		return d.Update(tid, []byte("k"), []byte("v2"))
	}); err != nil {
		t.Fatal(err)
	}

	// Bring c back with its stale v1 copy.
	nc, err := c.Reboot("c")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := btree.Attach(nc, "rep", 1, 128, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := nc.Recover(); err != nil {
		t.Fatal(err)
	}

	// Any read quorum of 2 must intersect {a,b} or include a fresh copy;
	// either way version 2 wins over c's stale version 1.
	for i := 0; i < 5; i++ {
		if err := na.App.Run(func(tid types.TransID) error {
			v, err := d.Lookup(tid, []byte("k"))
			if err != nil {
				return err
			}
			if string(v) != "v2" {
				t.Errorf("stale read: %q", v)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestAbortRollsBackAllRepresentatives aborts a distributed directory
// update and verifies recovery ran on every written node.
func TestAbortRollsBackAllRepresentatives(t *testing.T) {
	c, na, d := threeNodeDir(t)
	defer c.Shutdown()

	if err := na.App.Run(func(tid types.TransID) error {
		return d.Insert(tid, []byte("k"), []byte("v1"))
	}); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("boom")
	err := na.App.Run(func(tid types.TransID) error {
		if err := d.Update(tid, []byte("k"), []byte("v2")); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}

	// After the aborts land, the old value must win everywhere.
	deadline := time.Now().Add(2 * time.Second)
	for {
		var v []byte
		err := na.App.Run(func(tid types.TransID) error {
			var lerr error
			v, lerr = d.Lookup(tid, []byte("k"))
			return lerr
		})
		if err == nil && string(v) == "v1" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("rollback not visible: v=%q err=%v", v, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
