package repdir_test

import (
	"testing"
	"time"

	"tabs/internal/core"
	"tabs/internal/servers/btree"
	"tabs/internal/servers/repdir"
	"tabs/internal/types"
)

// TestUnequalVotes gives one representative two votes: with total=4,
// r=2, w=3, the heavy representative plus any one other forms a write
// quorum, and reads can be served by the heavy one plus nobody else only
// if r ≤ its weight — exercising genuinely *weighted* voting rather than
// simple majorities.
func TestUnequalVotes(t *testing.T) {
	c, err := core.NewCluster(core.DefaultClusterOptions(), "heavy", "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	for _, name := range []types.NodeID{"heavy", "x", "y"} {
		n := c.Node(name)
		if _, err := btree.Attach(n, "rep", 1, 128, time.Second); err != nil {
			t.Fatal(err)
		}
		if _, err := n.Recover(); err != nil {
			t.Fatal(err)
		}
	}
	client := c.Node("heavy")
	// Keep abort retries to crashed nodes short.
	client.TM.Configure(150*time.Millisecond, 2, 0)
	d, err := repdir.New(client, []repdir.Rep{
		{Node: "heavy", Server: "rep", Votes: 2},
		{Node: "x", Server: "rep", Votes: 1},
		{Node: "y", Server: "rep", Votes: 1},
	}, 2, 3)
	if err != nil {
		t.Fatal(err)
	}

	if err := client.App.Run(func(tid types.TransID) error {
		return d.Insert(tid, []byte("k"), []byte("v1"))
	}); err != nil {
		t.Fatal(err)
	}

	// With y down, heavy(2) + x(1) = 3 write votes: updates still work.
	c.Crash("y")
	if err := client.App.Run(func(tid types.TransID) error {
		return d.Update(tid, []byte("k"), []byte("v2"))
	}); err != nil {
		t.Fatalf("write with one light node down: %v", err)
	}

	// With x ALSO down, only heavy(2) remains: write quorum (3)
	// unreachable — updates must fail, reads (r=2) still succeed from the
	// heavy representative alone.
	c.Crash("x")
	if err := client.App.Run(func(tid types.TransID) error {
		v, err := d.Lookup(tid, []byte("k"))
		if err != nil {
			return err
		}
		if string(v) != "v2" {
			t.Errorf("read %q", v)
		}
		return nil
	}); err != nil {
		t.Fatalf("read from the heavy representative alone: %v", err)
	}
	err = client.App.Run(func(tid types.TransID) error {
		return d.Update(tid, []byte("k"), []byte("v3"))
	})
	if err == nil {
		t.Fatal("write succeeded without a write quorum")
	}
}

// TestWriteQuorumFailureAborts: when the write quorum cannot be reached
// mid-transaction, the application aborts and no representative keeps the
// partial write.
func TestWriteQuorumFailureAborts(t *testing.T) {
	c, na, d := threeNodeDir(t)
	defer c.Shutdown()
	na.TM.Configure(150*time.Millisecond, 2, 0)
	if err := na.App.Run(func(tid types.TransID) error {
		return d.Insert(tid, []byte("k"), []byte("v1"))
	}); err != nil {
		t.Fatal(err)
	}
	// Two of three representatives down: r=2 unreachable too; everything
	// fails but cleanly.
	c.Crash("b")
	c.Crash("c")
	err := na.App.Run(func(tid types.TransID) error {
		return d.Update(tid, []byte("k"), []byte("v2"))
	})
	if err == nil {
		t.Fatal("update succeeded without a quorum")
	}
	// Node a's own copy must still hold v1 (the partial write to a, if
	// any, was rolled back by the abort).
	deadline := time.Now().Add(2 * time.Second)
	for {
		var v []byte
		lerr := na.App.Run(func(tid types.TransID) error {
			tr := btree.NewClient(na, "a", "rep")
			raw, err := tr.Lookup(tid, []byte("k"))
			if err != nil {
				return err
			}
			v = raw
			return nil
		})
		// Entry encoding: 4-byte version, flag byte, then the value.
		if lerr == nil && len(v) >= 5 && string(v[5:]) == "v1" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("a's copy corrupted after failed quorum write: %q (%v)", v, lerr)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
