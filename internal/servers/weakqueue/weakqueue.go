// Package weakqueue implements the TABS weak queue server (paper §4.2): a
// permanent, failure-atomic queue that is deliberately not serializable.
// Items are not guaranteed to be dequeued strictly in enqueue order;
// relaxing FIFO allows concurrent enqueuers and dequeuers to proceed
// without waiting on each other while each item's insertion and removal
// remain failure atomic.
//
// The queue is an array of individually lockable elements with head and
// tail pointers bounding the used section. Each element carries an InUse
// bit beside its contents; aborting an Enqueue restores the bit and leaves
// a gap, which Dequeue skips and a garbage-collection sweep (a side effect
// of Enqueue) eventually reclaims by advancing the head pointer. The head
// pointer is a permanent, failure-atomic object; the tail pointer lives in
// volatile storage and is recomputed after crashes from the head pointer
// and the InUse bits. The design is what prompted TABS to add
// ConditionallyLockObject and IsObjectLocked to the server library.
package weakqueue

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"tabs/internal/core"
	"tabs/internal/lock"
	"tabs/internal/srvlib"
	"tabs/internal/types"
)

// Element layout: 8-byte InUse flag word followed by the 8-byte value, so
// one element is one lockable, loggable 16-byte object.
const elemSize = 16

// Errors.
var (
	ErrQueueFull  = errors.New("weakqueue: queue full")
	ErrQueueEmpty = errors.New("weakqueue: queue empty")
)

// Operation names.
const (
	OpEnqueue = "Enqueue"
	OpDequeue = "Dequeue"
	OpIsEmpty = "IsQueueEmpty"
)

// Server is the weak queue data server.
type Server struct {
	srv *srvlib.Server
	cap uint32
	// tail is the volatile tail pointer: the next free logical slot. The
	// server's monitor semantics ensure only a single transaction at a
	// time updates it (§4.2), because operations never wait while
	// touching it.
	tail uint64
}

// Layout: page 0 holds the head pointer (offset 0, 8 bytes); elements
// follow from page 1.
func headObject(s *srvlib.Server) types.ObjectID { return s.CreateObjectID(0, 8) }

func (s *Server) elemObject(slot uint64) types.ObjectID {
	idx := uint32(slot % uint64(s.cap))
	return s.srv.CreateObjectID(srvlib.VirtualAddress(types.PageSize+idx*elemSize), elemSize)
}

// Attach creates (or re-attaches) a weak queue of the given capacity on
// node n, recomputing the volatile tail pointer from the permanent state.
func Attach(n *core.Node, id types.ServerID, seg types.SegmentID, capacity uint32, lockTimeout time.Duration) (*Server, error) {
	if capacity == 0 {
		capacity = 64
	}
	pages := 1 + (capacity*elemSize+types.PageSize-1)/types.PageSize
	srv, err := n.NewServer(id, seg, pages, nil, lockTimeout)
	if err != nil {
		return nil, err
	}
	s := &Server{srv: srv, cap: capacity}
	// The tail is rebuilt only after crash recovery has restored the
	// permanent InUse bits; until Recover runs, the queue is not served.
	n.AfterRecover(s.recomputeTail)
	srv.AcceptRequests(s.dispatch)
	return s, nil
}

// Lib exposes the underlying server library instance.
func (s *Server) Lib() *srvlib.Server { return s.srv }

// recomputeTail rebuilds the volatile tail pointer after a crash by
// examining the head pointer and the InUse bits (§4.2).
func (s *Server) recomputeTail() error {
	head, err := s.readHead()
	if err != nil {
		return err
	}
	tail := head
	for k := uint64(0); k < uint64(s.cap); k++ {
		slot := head + k
		inUse, _, err := s.readElem(slot)
		if err != nil {
			return err
		}
		if inUse {
			tail = slot + 1
		}
	}
	s.tail = tail
	return nil
}

func (s *Server) readHead() (uint64, error) {
	raw, err := s.srv.Read(headObject(s.srv))
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(raw), nil
}

func (s *Server) readElem(slot uint64) (inUse bool, value int64, err error) {
	raw, err := s.srv.Read(s.elemObject(slot))
	if err != nil {
		return false, 0, err
	}
	return binary.BigEndian.Uint64(raw[:8]) != 0, int64(binary.BigEndian.Uint64(raw[8:])), nil
}

func encodeElem(inUse bool, value int64) []byte {
	b := make([]byte, elemSize)
	if inUse {
		binary.BigEndian.PutUint64(b[:8], 1)
	}
	binary.BigEndian.PutUint64(b[8:], uint64(value))
	return b
}

// writeElem modifies one element under value logging.
func (s *Server) writeElem(tid types.TransID, slot uint64, inUse bool, value int64) error {
	obj := s.elemObject(slot)
	if err := s.srv.PinAndBuffer(tid, obj); err != nil {
		return err
	}
	if err := s.srv.Write(obj, encodeElem(inUse, value)); err != nil {
		return err
	}
	return s.srv.LogAndUnPin(tid, obj)
}

// dispatch routes operation requests.
func (s *Server) dispatch(req *srvlib.Request) ([]byte, error) {
	switch req.Op {
	case OpEnqueue:
		if len(req.Body) != 8 {
			return nil, errors.New("weakqueue: Enqueue wants an 8-byte value")
		}
		return nil, s.enqueue(req.TID, int64(binary.BigEndian.Uint64(req.Body)))
	case OpDequeue:
		v, err := s.dequeue(req.TID)
		if err != nil {
			return nil, err
		}
		return binary.BigEndian.AppendUint64(nil, uint64(v)), nil
	case OpIsEmpty:
		empty, err := s.isEmpty()
		if err != nil {
			return nil, err
		}
		if empty {
			return []byte{1}, nil
		}
		return []byte{0}, nil
	default:
		return nil, fmt.Errorf("weakqueue: unknown operation %q", req.Op)
	}
}

// enqueue places the item in the element below the tail pointer, sets its
// InUse bit, and advances the (volatile, monitor-protected) tail (§4.2).
// The garbage collection that moves the head past dead elements runs as a
// side effect.
func (s *Server) enqueue(tid types.TransID, value int64) error {
	s.collectGarbage(tid)
	head, err := s.readHead() // unprotected read, as in the paper
	if err != nil {
		return err
	}
	if s.tail-head >= uint64(s.cap) {
		return ErrQueueFull
	}
	slot := s.tail
	obj := s.elemObject(slot)
	// The slot below the tail must be free; its lock (if any) belongs to
	// an aborted enqueue whose undo has not released yet, so take the
	// lock conditionally and fail cleanly rather than deadlock.
	if !s.srv.ConditionallyLockObject(tid, obj, lock.ModeWrite) {
		return fmt.Errorf("weakqueue: tail element %d still locked", slot)
	}
	if err := s.writeElem(tid, slot, true, value); err != nil {
		return err
	}
	s.tail = slot + 1
	return nil
}

// dequeue scans elements starting at the head pointer using
// IsObjectLocked, then testing the InUse bit; the first unlocked, in-use
// element is locked and its contents returned (§4.2).
func (s *Server) dequeue(tid types.TransID) (int64, error) {
	head, err := s.readHead()
	if err != nil {
		return 0, err
	}
	for slot := head; slot < s.tail; slot++ {
		obj := s.elemObject(slot)
		if s.srv.IsObjectLocked(obj) {
			continue // another operation is still manipulating it
		}
		inUse, value, err := s.readElem(slot)
		if err != nil {
			return 0, err
		}
		if !inUse {
			continue // aborted enqueue's gap, or already dequeued
		}
		if !s.srv.ConditionallyLockObject(tid, obj, lock.ModeWrite) {
			continue // raced another dequeuer
		}
		// Re-verify under the lock.
		inUse, value, err = s.readElem(slot)
		if err != nil {
			return 0, err
		}
		if !inUse {
			continue
		}
		// Clear InUse; the previous contents are restored along with the
		// bit if this transaction aborts.
		if err := s.writeElem(tid, slot, false, value); err != nil {
			return 0, err
		}
		return value, nil
	}
	return 0, ErrQueueEmpty
}

// isEmpty reports whether no element in the used section holds or may
// hold a value.
func (s *Server) isEmpty() (bool, error) {
	head, err := s.readHead()
	if err != nil {
		return false, err
	}
	for slot := head; slot < s.tail; slot++ {
		obj := s.elemObject(slot)
		if s.srv.IsObjectLocked(obj) {
			return false, nil // in-flight operation may produce an item
		}
		inUse, _, err := s.readElem(slot)
		if err != nil {
			return false, err
		}
		if inUse {
			return false, nil
		}
	}
	return true, nil
}

// collectGarbage moves the head pointer past elements that are not locked
// and whose InUse bits are false; the current implementation does this as
// a side effect of Enqueue (§4.2). The head update is failure atomic: if
// the enqueue aborts, the head retreats, which merely re-scans dead
// elements later.
func (s *Server) collectGarbage(tid types.TransID) {
	hobj := headObject(s.srv)
	if !s.srv.ConditionallyLockObject(tid, hobj, lock.ModeWrite) {
		return // another transaction is collecting; skip
	}
	head, err := s.readHead()
	if err != nil {
		return
	}
	newHead := head
	for newHead < s.tail {
		obj := s.elemObject(newHead)
		if s.srv.IsObjectLocked(obj) {
			break
		}
		inUse, _, err := s.readElem(newHead)
		if err != nil || inUse {
			break
		}
		newHead++
	}
	if newHead == head {
		return
	}
	if err := s.srv.PinAndBuffer(tid, hobj); err != nil {
		return
	}
	if err := s.srv.Write(hobj, binary.BigEndian.AppendUint64(nil, newHead)); err != nil {
		return
	}
	_ = s.srv.LogAndUnPin(tid, hobj)
}

// Client is the typed application stub.
type Client struct {
	node   *core.Node
	target types.NodeID
	server types.ServerID
}

// NewClient returns a stub calling the weak queue id on node target.
func NewClient(n *core.Node, target types.NodeID, id types.ServerID) *Client {
	return &Client{node: n, target: target, server: id}
}

// Enqueue adds value to the queue within tid.
func (c *Client) Enqueue(tid types.TransID, value int64) error {
	body := binary.BigEndian.AppendUint64(nil, uint64(value))
	_, err := c.node.CallRemote(c.target, c.server, OpEnqueue, tid, body)
	return err
}

// Dequeue removes and returns some value from the queue within tid.
func (c *Client) Dequeue(tid types.TransID) (int64, error) {
	out, err := c.node.CallRemote(c.target, c.server, OpDequeue, tid, nil)
	if err != nil {
		return 0, err
	}
	if len(out) != 8 {
		return 0, errors.New("weakqueue: malformed Dequeue reply")
	}
	return int64(binary.BigEndian.Uint64(out)), nil
}

// IsEmpty reports whether the queue appears empty.
func (c *Client) IsEmpty(tid types.TransID) (bool, error) {
	out, err := c.node.CallRemote(c.target, c.server, OpIsEmpty, tid, nil)
	if err != nil {
		return false, err
	}
	return len(out) == 1 && out[0] == 1, nil
}
