package weakqueue_test

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"tabs/internal/core"
	"tabs/internal/servers/weakqueue"
	"tabs/internal/types"
)

// TestQueueConservationQuick is the weak queue's fundamental invariant:
// under any interleaving of committing and aborting enqueues and
// dequeues, the multiset of values ever dequeued-and-committed plus the
// multiset still in the queue equals the multiset enqueued-and-committed.
// Order is deliberately NOT asserted — the queue is weak.
func TestQueueConservationQuick(t *testing.T) {
	type step struct {
		Enq   bool
		Val   int16
		Abort bool
	}
	run := func(steps []step) bool {
		c, err := core.NewCluster(core.DefaultClusterOptions(), "n1")
		if err != nil {
			t.Fatalf("cluster: %v", err)
		}
		defer c.Shutdown()
		n := c.Node("n1")
		if _, err := weakqueue.Attach(n, "wq", 1, 128, time.Second); err != nil {
			t.Fatalf("attach: %v", err)
		}
		if _, err := n.Recover(); err != nil {
			t.Fatalf("recover: %v", err)
		}
		q := weakqueue.NewClient(n, "n1", "wq")

		enqueued := map[int64]int{} // committed enqueues
		dequeued := map[int64]int{} // committed dequeues
		induced := errors.New("induced")

		for _, s := range steps {
			if s.Enq {
				v := int64(s.Val)
				err := n.App.Run(func(tid types.TransID) error {
					if err := q.Enqueue(tid, v); err != nil {
						return err
					}
					if s.Abort {
						return induced
					}
					return nil
				})
				if err == nil {
					enqueued[v]++
				} else if !errors.Is(err, induced) &&
					!errors.Is(err, weakqueue.ErrQueueFull) &&
					!containsFull(err) {
					t.Errorf("enqueue: %v", err)
					return false
				}
			} else {
				var got int64
				err := n.App.Run(func(tid types.TransID) error {
					v, err := q.Dequeue(tid)
					if err != nil {
						return err
					}
					got = v
					if s.Abort {
						return induced
					}
					return nil
				})
				if err == nil {
					dequeued[got]++
				} else if !errors.Is(err, induced) && !containsEmpty(err) {
					t.Errorf("dequeue: %v", err)
					return false
				}
			}
		}

		// Drain whatever remains (committing each dequeue).
		remaining := map[int64]int{}
		for {
			var got int64
			err := n.App.Run(func(tid types.TransID) error {
				v, err := q.Dequeue(tid)
				got = v
				return err
			})
			if err != nil {
				break
			}
			remaining[got]++
		}

		// Conservation: enqueued == dequeued + remaining, as multisets.
		for v, cnt := range enqueued {
			if dequeued[v]+remaining[v] != cnt {
				t.Errorf("value %d: enqueued %d, dequeued %d, remaining %d",
					v, cnt, dequeued[v], remaining[v])
				return false
			}
		}
		for v := range dequeued {
			if dequeued[v]+remaining[v] > enqueued[v] {
				t.Errorf("value %d appeared more often than enqueued", v)
				return false
			}
		}
		return true
	}

	cfg := &quick.Config{
		MaxCount: 8,
		Values: func(args []reflect.Value, rng *rand.Rand) {
			n := 30 + rng.Intn(60)
			steps := make([]step, n)
			for i := range steps {
				steps[i] = step{
					Enq:   rng.Intn(3) != 0, // enqueue-biased so the queue fills
					Val:   int16(rng.Intn(50)),
					Abort: rng.Intn(4) == 0,
				}
			}
			args[0] = reflect.ValueOf(steps)
		},
	}
	if err := quick.Check(func(steps []step) bool { return run(steps) }, cfg); err != nil {
		t.Error(err)
	}
}

func containsFull(err error) bool {
	return err != nil && (errors.Is(err, weakqueue.ErrQueueFull) ||
		containsStr(err.Error(), "full") || containsStr(err.Error(), "locked"))
}

func containsEmpty(err error) bool {
	return err != nil && containsStr(err.Error(), "empty")
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
