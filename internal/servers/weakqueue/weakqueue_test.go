package weakqueue_test

import (
	"errors"
	"sort"
	"testing"
	"time"

	"tabs/internal/core"
	"tabs/internal/servers/weakqueue"
	"tabs/internal/types"
)

func newQueue(t *testing.T, capacity uint32) (*core.Cluster, *core.Node, *weakqueue.Client) {
	t.Helper()
	c, err := core.NewCluster(core.DefaultClusterOptions(), "n1")
	if err != nil {
		t.Fatal(err)
	}
	n := c.Node("n1")
	if _, err := weakqueue.Attach(n, "wq", 1, capacity, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Recover(); err != nil {
		t.Fatal(err)
	}
	return c, n, weakqueue.NewClient(n, "n1", "wq")
}

func TestEnqueueDequeue(t *testing.T) {
	c, n, q := newQueue(t, 16)
	defer c.Shutdown()
	if err := n.App.Run(func(tid types.TransID) error {
		for i := int64(1); i <= 5; i++ {
			if err := q.Enqueue(tid, i*10); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var got []int64
	if err := n.App.Run(func(tid types.TransID) error {
		for i := 0; i < 5; i++ {
			v, err := q.Dequeue(tid)
			if err != nil {
				return err
			}
			got = append(got, v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Emptiness is observable only once the dequeuer's locks are gone:
	// IsQueueEmpty treats locked elements as potentially live (§4.2).
	if err := n.App.Run(func(tid types.TransID) error {
		empty, err := q.IsEmpty(tid)
		if err != nil {
			return err
		}
		if !empty {
			t.Error("queue should be empty after dequeuer committed")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	want := []int64{10, 20, 30, 40, 50}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dequeued multiset %v, want %v", got, want)
		}
	}
}

func TestAbortedEnqueueLeavesGap(t *testing.T) {
	c, n, q := newQueue(t, 16)
	defer c.Shutdown()
	boom := errors.New("boom")
	err := n.App.Run(func(tid types.TransID) error {
		if err := q.Enqueue(tid, 111); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	// The gap is skipped: a committed enqueue is dequeued around it.
	if err := n.App.Run(func(tid types.TransID) error {
		return q.Enqueue(tid, 222)
	}); err != nil {
		t.Fatal(err)
	}
	if err := n.App.Run(func(tid types.TransID) error {
		v, err := q.Dequeue(tid)
		if err != nil {
			return err
		}
		if v != 222 {
			t.Errorf("dequeued %d, want 222 (111 was aborted)", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestAbortedDequeueRestoresItem(t *testing.T) {
	c, n, q := newQueue(t, 16)
	defer c.Shutdown()
	if err := n.App.Run(func(tid types.TransID) error {
		return q.Enqueue(tid, 77)
	}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := n.App.Run(func(tid types.TransID) error {
		v, err := q.Dequeue(tid)
		if err != nil {
			return err
		}
		if v != 77 {
			t.Errorf("dequeued %d", v)
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	if err := n.App.Run(func(tid types.TransID) error {
		v, err := q.Dequeue(tid)
		if err != nil {
			return err
		}
		if v != 77 {
			t.Errorf("item not restored: got %d, want 77", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestWeakOrderConcurrency shows what the weak queue buys: a dequeuer is
// not blocked by an uncommitted enqueue ahead of it. A strict FIFO queue
// would serialize here.
func TestWeakOrderConcurrency(t *testing.T) {
	c, n, q := newQueue(t, 16)
	defer c.Shutdown()

	// t1 enqueues but does not commit yet.
	t1, err := n.App.BeginTransaction(types.NilTransID)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Enqueue(t1, 100); err != nil {
		t.Fatal(err)
	}

	// t2 enqueues and commits around the in-flight element.
	if err := n.App.Run(func(tid types.TransID) error {
		return q.Enqueue(tid, 200)
	}); err != nil {
		t.Fatal(err)
	}

	// t3 dequeues: it must get 200 (100 is still locked by t1) without
	// waiting.
	if err := n.App.Run(func(tid types.TransID) error {
		v, err := q.Dequeue(tid)
		if err != nil {
			return err
		}
		if v != 200 {
			t.Errorf("dequeued %d, want 200 (100 uncommitted)", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	if ok, err := n.App.EndTransaction(t1); err != nil || !ok {
		t.Fatalf("commit t1: ok=%v err=%v", ok, err)
	}
	if err := n.App.Run(func(tid types.TransID) error {
		v, err := q.Dequeue(tid)
		if err != nil {
			return err
		}
		if v != 100 {
			t.Errorf("dequeued %d, want 100", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestTailRecomputedAfterCrash enqueues, crashes, and verifies the
// volatile tail pointer is rebuilt from the head pointer and InUse bits.
func TestTailRecomputedAfterCrash(t *testing.T) {
	c, n, q := newQueue(t, 16)
	if err := n.App.Run(func(tid types.TransID) error {
		for i := int64(1); i <= 3; i++ {
			if err := q.Enqueue(tid, i); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	c.Crash("n1")
	n2, err := c.Reboot("n1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := weakqueue.Attach(n2, "wq", 1, 16, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := n2.Recover(); err != nil {
		t.Fatal(err)
	}
	q2 := weakqueue.NewClient(n2, "n1", "wq")
	// Enqueue after crash must land after the survivors; dequeue all four.
	if err := n2.App.Run(func(tid types.TransID) error {
		return q2.Enqueue(tid, 4)
	}); err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	if err := n2.App.Run(func(tid types.TransID) error {
		for i := 0; i < 4; i++ {
			v, err := q2.Dequeue(tid)
			if err != nil {
				return err
			}
			seen[v] = true
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 4; i++ {
		if !seen[i] {
			t.Errorf("missing item %d after crash recovery: %v", i, seen)
		}
	}
	c.Shutdown()
}

// TestQueueFull fills the queue and checks the full condition, then frees
// space and reuses it (garbage collection via the head pointer).
func TestQueueFull(t *testing.T) {
	c, n, q := newQueue(t, 4)
	defer c.Shutdown()
	if err := n.App.Run(func(tid types.TransID) error {
		for i := int64(0); i < 4; i++ {
			if err := q.Enqueue(tid, i); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	err := n.App.Run(func(tid types.TransID) error {
		return q.Enqueue(tid, 99)
	})
	if err == nil {
		t.Fatal("want queue-full error")
	}
	// Drain two, then enqueue twice: GC must reclaim the dequeued slots.
	if err := n.App.Run(func(tid types.TransID) error {
		if _, err := q.Dequeue(tid); err != nil {
			return err
		}
		_, err := q.Dequeue(tid)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := n.App.Run(func(tid types.TransID) error {
			return q.Enqueue(tid, int64(50+i))
		}); err != nil {
			t.Fatalf("reuse %d: %v", i, err)
		}
	}
}
