// Package simclock provides the virtual clock and the primitive-operation
// cost models used by the TABS performance methodology (paper §5.1).
//
// The paper evaluates TABS by decomposing each benchmark transaction into a
// weighted sum of primitive operations — data server calls, messages,
// datagrams, paged I/O, and stable-storage writes — whose individual costs
// were measured on a Perq T2 (Table 5-1) and projected for a tuned
// implementation (Table 5-5). This package holds those parameter sets and a
// virtual clock that components charge as they execute primitives, so the
// repository can regenerate the paper's predicted and simulated elapsed
// times without the original hardware.
package simclock

import (
	"fmt"
	"sync"
	"time"
)

// Primitive identifies one of the primitive operations of Table 5-1.
type Primitive int

// The primitive operations of paper Table 5-1, in table order.
const (
	DataServerCall Primitive = iota // local RPC from application to data server
	InterNodeCall                   // session-based RPC to a remote data server
	Datagram                        // transaction-management datagram
	SmallMsg                        // small contiguous Accent message (<500 bytes)
	LargeMsg                        // large contiguous Accent message (~1100 bytes)
	PointerMsg                      // copy-on-write pointer message
	RandomPageIO                    // demand-paged random read or read/write pair
	SequentialRead                  // demand-paged sequential read
	StableWrite                     // force of one log page to non-volatile storage
	numPrimitives
)

// NumPrimitives is the number of distinct primitive operations.
const NumPrimitives = int(numPrimitives)

var primitiveNames = [...]string{
	DataServerCall: "Data Server Call",
	InterNodeCall:  "Inter-Node Data Server Call",
	Datagram:       "Datagram",
	SmallMsg:       "Small Contiguous Message",
	LargeMsg:       "Large Contiguous Message",
	PointerMsg:     "Pointer Message",
	RandomPageIO:   "Random Access Paged I/O",
	SequentialRead: "Sequential Read",
	StableWrite:    "Stable Storage Write",
}

// String returns the paper's name for the primitive.
func (p Primitive) String() string {
	if p < 0 || int(p) >= len(primitiveNames) {
		return fmt.Sprintf("Primitive(%d)", int(p))
	}
	return primitiveNames[p]
}

// CostModel maps each primitive operation to its cost in virtual
// milliseconds. The zero value charges nothing for every primitive.
type CostModel struct {
	// Times holds the cost of each primitive in milliseconds.
	Times [NumPrimitives]float64
	// Name labels the parameter set in reports ("Perq T2", "Achievable").
	Name string
}

// Cost returns the cost of p as a virtual duration.
func (m *CostModel) Cost(p Primitive) time.Duration {
	return time.Duration(m.Times[p] * float64(time.Millisecond))
}

// Millis returns the cost of p in milliseconds.
func (m *CostModel) Millis(p Primitive) float64 { return m.Times[p] }

// PerqT2 returns the measured primitive operation times of paper Table 5-1
// (milliseconds on a Perq T2 under Accent).
func PerqT2() *CostModel {
	return &CostModel{
		Name: "Perq T2 (Table 5-1)",
		Times: [NumPrimitives]float64{
			DataServerCall: 26.1,
			InterNodeCall:  89,
			Datagram:       25,
			SmallMsg:       3.0,
			LargeMsg:       4.4,
			PointerMsg:     18.3,
			RandomPageIO:   32,
			SequentialRead: 16,
			StableWrite:    79,
		},
	}
}

// Achievable returns the projected primitive operation times of paper Table
// 5-5 ("achievable by tuning software and adding disks").
func Achievable() *CostModel {
	return &CostModel{
		Name: "Achievable (Table 5-5)",
		Times: [NumPrimitives]float64{
			DataServerCall: 2.5,
			InterNodeCall:  9,
			Datagram:       2.0,
			SmallMsg:       1.0,
			LargeMsg:       1.25,
			PointerMsg:     15,
			RandomPageIO:   32,
			SequentialRead: 10,
			StableWrite:    32,
		},
	}
}

// Clock is a virtual clock advanced by charging primitive costs. It is safe
// for concurrent use. A Clock may be shared by all components of a node, or
// by a whole simulated cluster when single-threaded determinism is wanted.
type Clock struct {
	mu  sync.Mutex
	now time.Duration
}

// NewClock returns a clock at virtual time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d and returns the new time.
// Negative d is ignored.
func (c *Clock) Advance(d time.Duration) time.Duration {
	if d < 0 {
		return c.Now()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += d
	return c.now
}

// AdvanceTo moves the clock forward to t if t is later than now, and
// returns the new time. Used to merge parallel execution paths: the joiner
// advances to the maximum of the branch completion times.
func (c *Clock) AdvanceTo(t time.Duration) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t > c.now {
		c.now = t
	}
	return c.now
}

// Reset returns the clock to virtual time zero.
func (c *Clock) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = 0
}
