package simclock

import (
	"sync"
	"testing"
	"time"
)

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Error("fresh clock not at zero")
	}
	c.Advance(5 * time.Millisecond)
	c.Advance(3 * time.Millisecond)
	if c.Now() != 8*time.Millisecond {
		t.Errorf("now %v", c.Now())
	}
	c.Advance(-time.Second)
	if c.Now() != 8*time.Millisecond {
		t.Error("negative advance changed the clock")
	}
}

func TestClockAdvanceTo(t *testing.T) {
	c := NewClock()
	c.Advance(10 * time.Millisecond)
	c.AdvanceTo(5 * time.Millisecond)
	if c.Now() != 10*time.Millisecond {
		t.Error("AdvanceTo moved backward")
	}
	c.AdvanceTo(20 * time.Millisecond)
	if c.Now() != 20*time.Millisecond {
		t.Errorf("now %v", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Error("reset failed")
	}
}

func TestClockConcurrent(t *testing.T) {
	c := NewClock()
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Advance(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if c.Now() != 10*1000*time.Microsecond {
		t.Errorf("now %v, want 10ms", c.Now())
	}
}

func TestCostModels(t *testing.T) {
	perq := PerqT2()
	ach := Achievable()
	// Table 5-1 spot checks.
	if perq.Millis(DataServerCall) != 26.1 {
		t.Errorf("Perq data server call %v", perq.Millis(DataServerCall))
	}
	if perq.Millis(StableWrite) != 79 {
		t.Errorf("Perq stable write %v", perq.Millis(StableWrite))
	}
	// Table 5-5 spot checks.
	if ach.Millis(DataServerCall) != 2.5 {
		t.Errorf("achievable data server call %v", ach.Millis(DataServerCall))
	}
	// Every primitive must be priced in both models; the achievable model
	// never exceeds the Perq model.
	for p := Primitive(0); int(p) < NumPrimitives; p++ {
		if perq.Millis(p) <= 0 || ach.Millis(p) <= 0 {
			t.Errorf("%v unpriced", p)
		}
		if ach.Millis(p) > perq.Millis(p) {
			t.Errorf("%v: achievable %v exceeds Perq %v", p, ach.Millis(p), perq.Millis(p))
		}
	}
}

func TestCostDuration(t *testing.T) {
	perq := PerqT2()
	if perq.Cost(SmallMsg) != 3*time.Millisecond {
		t.Errorf("small msg cost %v", perq.Cost(SmallMsg))
	}
}

func TestPrimitiveNames(t *testing.T) {
	if DataServerCall.String() != "Data Server Call" {
		t.Errorf("name %q", DataServerCall.String())
	}
	if Primitive(99).String() == "" {
		t.Error("out-of-range primitive has empty name")
	}
}
