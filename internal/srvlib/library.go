package srvlib

import (
	"fmt"

	"tabs/internal/lock"
	"tabs/internal/trace"
	"tabs/internal/types"
	"tabs/internal/wal"
)

// This file implements the routines of Table 3-1 not already defined on
// Server: address arithmetic, locking, paging control, logging, and
// ExecuteTransaction. Routine names follow the paper.

// VirtualAddress is a data server's view of a location in its recoverable
// segment: a byte offset from the segment base, exactly as TABS servers
// computed cell addresses by adding offsets to the base of the mapped
// segment (§4.1).
type VirtualAddress uint32

// ReadPermanentData maps the server's recoverable data into (virtual)
// memory and returns its base address and size (Table 3-1). The base is
// always offset zero of the segment.
func (s *Server) ReadPermanentData() (VirtualAddress, uint32, error) {
	pages, err := s.k.SegmentPages(s.seg)
	if err != nil {
		return 0, 0, err
	}
	return 0, pages * types.PageSize, nil
}

// CreateObjectID converts a virtual address and length into an ObjectID
// (Table 3-1): data servers work with virtual addresses, the log manager
// with the disk addresses ObjectIDs carry.
func (s *Server) CreateObjectID(va VirtualAddress, length uint32) types.ObjectID {
	return types.ObjectID{Segment: s.seg, Offset: uint32(va), Length: length}
}

// ConvertObjectIDToVirtualAddress recovers the virtual address inside an
// ObjectID (Table 3-1).
func (s *Server) ConvertObjectIDToVirtualAddress(obj types.ObjectID) VirtualAddress {
	return VirtualAddress(obj.Offset)
}

// --- Locking -----------------------------------------------------------------

// LockObject acquires a lock, waiting if it is unavailable (Table 3-1).
// The wait is a coroutine switch: other operations run meanwhile. A
// time-out is reported as an error; TABS resolves deadlock by time-outs
// (§2.1.3), and the caller normally aborts the transaction.
func (s *Server) LockObject(tid types.TransID, obj types.ObjectID, mode lock.Mode) error {
	s.ensureJoined(tid)
	// Append-formatted annotations: this span is begun on every object
	// access, and fmt-based formatting here dominated whole-node profiles.
	sp := trace.SetTIDAppend(s.tr.Begin("lock", "acquire"), tid)
	trace.AnnotateAppend(sp, "obj=", obj)
	trace.AnnotateAppend(sp, "mode=", mode)
	if s.locks.TryLock(tid, obj, mode) {
		sp.End()
		return nil
	}
	err := s.await(func() error { return s.locks.Lock(tid, obj, mode) })
	sp.Annotate("waited=true").EndErr(err)
	return err
}

// ConditionallyLockObject attempts a lock and returns false immediately if
// unavailable (Table 3-1; added for the weak queue server, §4.2).
func (s *Server) ConditionallyLockObject(tid types.TransID, obj types.ObjectID, mode lock.Mode) bool {
	s.ensureJoined(tid)
	return s.locks.TryLock(tid, obj, mode)
}

// IsObjectLocked reports whether any lock is set on obj (Table 3-1). The
// weak queue and IO servers use it to observe other transactions'
// progress (§4.2, §4.3).
func (s *Server) IsObjectLocked(obj types.ObjectID) bool {
	return s.locks.IsLocked(obj)
}

// --- Paging control ------------------------------------------------------------

// PinObject prevents the kernel from paging the object to secondary
// storage (Table 3-1), ensuring its permanent representation is not
// changed before all modifications to it have been logged.
func (s *Server) PinObject(obj types.ObjectID) error {
	if err := s.k.Pin(obj); err != nil {
		return err
	}
	s.smu.Lock()
	for _, p := range obj.Pages() {
		s.pins[p]++
	}
	s.smu.Unlock()
	return nil
}

// UnPinObject releases one pin on the object (Table 3-1).
func (s *Server) UnPinObject(obj types.ObjectID) error {
	s.smu.Lock()
	for _, p := range obj.Pages() {
		if s.pins[p] > 0 {
			s.pins[p]--
			if s.pins[p] == 0 {
				delete(s.pins, p)
			}
		}
	}
	s.smu.Unlock()
	return s.k.Unpin(obj)
}

// UnPinAllObjects drops every pin this server holds (Table 3-1).
func (s *Server) UnPinAllObjects() error {
	s.smu.Lock()
	pages := make(map[types.PageID]int, len(s.pins))
	for p, n := range s.pins {
		pages[p] = n
	}
	s.pins = make(map[types.PageID]int)
	s.smu.Unlock()
	for p, n := range pages {
		obj := types.ObjectID{Segment: p.Segment, Offset: p.Page * types.PageSize, Length: types.PageSize}
		for i := 0; i < n; i++ {
			if err := s.k.Unpin(obj); err != nil {
				return err
			}
		}
	}
	return nil
}

// --- Reading and writing recoverable data ---------------------------------------

// Read copies the object's current bytes out of the recoverable segment.
func (s *Server) Read(obj types.ObjectID) ([]byte, error) {
	return s.k.Read(obj)
}

// Write modifies the object in the mapped segment. The object's pages must
// be pinned — the write-ahead discipline requires that a modified page not
// reach disk before its log records, and the pin is what holds the page
// (§3.1.1). Unpinned writes are rejected to catch server bugs.
func (s *Server) Write(obj types.ObjectID, data []byte) error {
	s.smu.Lock()
	for _, p := range obj.Pages() {
		if s.pins[p] == 0 {
			s.smu.Unlock()
			return fmt.Errorf("%w: %v", ErrNotPinned, obj)
		}
	}
	s.smu.Unlock()
	return s.k.Write(obj, data)
}

// --- Logging (value logging with paging-control side effects) -------------------

// PinAndBuffer pins the object and copies its existing (old) value into a
// buffer in anticipation of a modification (Table 3-1).
func (s *Server) PinAndBuffer(tid types.TransID, obj types.ObjectID) error {
	s.ensureJoined(tid)
	if err := s.PinObject(obj); err != nil {
		return err
	}
	old, err := s.k.Read(obj)
	if err != nil {
		_ = s.UnPinObject(obj)
		return err
	}
	s.smu.Lock()
	b := s.buffers[tid]
	if b == nil {
		b = make(map[types.ObjectID][]byte)
		s.buffers[tid] = b
	}
	if _, dup := b[obj]; !dup {
		b[obj] = old
	}
	s.smu.Unlock()
	return nil
}

// LogAndUnPin sends the buffered old value and the existing (new) value to
// the Recovery Manager and unpins the object (Table 3-1). Objects spanning
// multiple pages are split into per-page records, keeping each record's
// values within the one-page limit of value logging (§2.1.3).
func (s *Server) LogAndUnPin(tid types.TransID, obj types.ObjectID) error {
	s.smu.Lock()
	b := s.buffers[tid]
	old, ok := b[obj]
	if ok {
		delete(b, obj)
	}
	s.smu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %v", ErrNotBuffered, obj)
	}
	cur, err := s.k.Read(obj)
	if err != nil {
		return err
	}
	if err := s.logValue(tid, obj, old, cur); err != nil {
		return err
	}
	return s.UnPinObject(obj)
}

// logValue writes value record(s) for obj, splitting at page boundaries.
func (s *Server) logValue(tid types.TransID, obj types.ObjectID, old, cur []byte) error {
	start := uint32(0)
	for start < obj.Length {
		off := obj.Offset + start
		pageEnd := (off/types.PageSize + 1) * types.PageSize
		n := pageEnd - off
		if start+n > obj.Length {
			n = obj.Length - start
		}
		piece := types.ObjectID{Segment: obj.Segment, Offset: off, Length: n}
		u := &wal.UpdateBody{Object: piece, Old: old[start : start+n], New: cur[start : start+n]}
		if _, err := s.rm.LogUpdate(tid, s.id, u); err != nil {
			return err
		}
		start += n
	}
	return nil
}

// --- Marked-object protocol ------------------------------------------------------

// LockAndMark locks the object and enqueues it on the transaction's
// "to be modified" queue (Table 3-1). The checkpoint protocol requires
// that data servers not wait while objects are pinned; setting all locks
// before pinning anything — which these three routines automate — meets
// that requirement (§3.1.1). The B-tree server was ported onto them with
// most of its pre-TABS code intact (§4.4).
func (s *Server) LockAndMark(tid types.TransID, obj types.ObjectID, mode lock.Mode) error {
	if err := s.LockObject(tid, obj, mode); err != nil {
		return err
	}
	s.smu.Lock()
	s.marked[tid] = append(s.marked[tid], obj)
	s.smu.Unlock()
	return nil
}

// PinAndBufferMarkedObjects pins every marked object and buffers its
// current value (Table 3-1). After it returns, the server must not wait
// until LogAndUnPinMarkedObjects.
func (s *Server) PinAndBufferMarkedObjects(tid types.TransID) error {
	s.smu.Lock()
	queue := append([]types.ObjectID(nil), s.marked[tid]...)
	s.smu.Unlock()
	for _, obj := range queue {
		if err := s.PinAndBuffer(tid, obj); err != nil {
			return err
		}
	}
	return nil
}

// LogAndUnPinMarkedObjects logs old/new values for every marked object,
// unpins them all, and deletes the queue (Table 3-1).
func (s *Server) LogAndUnPinMarkedObjects(tid types.TransID) error {
	s.smu.Lock()
	queue := s.marked[tid]
	delete(s.marked, tid)
	s.smu.Unlock()
	var firstErr error
	for _, obj := range queue {
		if err := s.LogAndUnPin(tid, obj); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// MarkedObjects returns the transaction's current to-be-modified queue.
func (s *Server) MarkedObjects(tid types.TransID) []types.ObjectID {
	s.smu.Lock()
	defer s.smu.Unlock()
	return append([]types.ObjectID(nil), s.marked[tid]...)
}

// --- Transaction management from inside a server ----------------------------------

// ExecuteTransaction runs proc within a new top-level transaction
// (Table 3-1): commit if proc returns nil, abort otherwise. The IO server
// uses this to make output permanent independently of the client
// transaction's fate (§4.3). It must be called from within an operation
// (the monitor held): proc runs as part of the calling coroutine, while
// the begin/commit/abort interactions with the Transaction Manager are
// coroutine switches.
func (s *Server) ExecuteTransaction(proc func(tid types.TransID) error) error {
	var tid types.TransID
	if err := s.await(func() error {
		var err error
		tid, err = s.tm.Begin(types.NilTransID)
		return err
	}); err != nil {
		return err
	}
	if err := proc(tid); err != nil {
		if aerr := s.await(func() error { return s.tm.Abort(tid) }); aerr != nil {
			return fmt.Errorf("srvlib: abort after %v failed: %w", err, aerr)
		}
		return err
	}
	var committed bool
	if err := s.await(func() error {
		var err error
		committed, err = s.tm.End(tid)
		return err
	}); err != nil {
		return err
	}
	if !committed {
		return fmt.Errorf("srvlib: ExecuteTransaction %v did not commit", tid)
	}
	return nil
}

// Await exposes the coroutine-switch primitive to data server code that
// must block for reasons of its own (e.g. calling a remote server).
func (s *Server) Await(f func() error) error { return s.await(f) }
