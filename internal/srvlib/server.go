// Package srvlib is the TABS server library (paper §3.1.1, Table 3-1): the
// toolkit with which data servers are written. It provides
// shared/exclusive (and type-specific) locking, value logging, paging
// control, the lightweight-process (coroutine) mechanism, and automatic
// participation in transaction commit, abort, checkpoint and crash
// recovery.
//
// A data server is a single-threaded monitor: the library treats each
// incoming request as a separate coroutine and performs a coroutine switch
// only when an operation waits — for a lock, for a remote call, or to
// start a transaction (§3.1.1). The weak queue server's correctness
// depends on exactly these monitor semantics (§4.2).
package srvlib

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"tabs/internal/kernel"
	"tabs/internal/lock"
	"tabs/internal/port"
	"tabs/internal/recovery"
	"tabs/internal/stats"
	"tabs/internal/trace"
	"tabs/internal/txn"
	"tabs/internal/types"
	"tabs/internal/wal"
)

// Request is one operation request delivered to a data server's dispatch
// function. Matchmaker would have generated typed stubs (§2.1.1); here the
// dispatch function switches on Op and decodes Body itself.
type Request struct {
	Op   string
	TID  types.TransID
	Body []byte
	From types.NodeID // originating node, for remote requests
}

// DispatchFunc executes one operation and returns the response body.
type DispatchFunc func(req *Request) ([]byte, error)

// OpFunc applies one logged operation's script arguments against the
// server's recoverable data; used for redo and undo in operation logging.
type OpFunc func(tid types.TransID, args []byte) error

// Errors.
var (
	ErrNotPinned   = errors.New("srvlib: object modified while not pinned")
	ErrNoSuchOp    = errors.New("srvlib: unregistered operation in log script")
	ErrMarkedPins  = errors.New("srvlib: marked objects already pinned")
	ErrServerDown  = errors.New("srvlib: server shut down")
	ErrNotBuffered = errors.New("srvlib: LogAndUnPin without PinAndBuffer")
)

// Config parameterizes a data server.
type Config struct {
	ID     types.ServerID
	Kernel *kernel.Kernel
	RM     *recovery.Manager
	TM     *txn.Manager
	Rec    *stats.Recorder
	// Segment is the server's recoverable segment (its permanent data
	// mapped into virtual memory, §3.2.1).
	Segment types.SegmentID
	// LockCompat installs a type-specific lock compatibility relation;
	// nil selects standard read/write locking (§2.1.3).
	LockCompat lock.Compat
	// LockTimeout bounds lock waits (deadlock resolution by time-out).
	LockTimeout time.Duration
	// Trace receives lock-acquire spans; nil disables tracing.
	Trace *trace.Tracer
}

// Server is one data server instance.
type Server struct {
	id          types.ServerID
	k           *kernel.Kernel
	rm          *recovery.Manager
	tm          *txn.Manager
	rec         *stats.Recorder
	seg         types.SegmentID
	lockCompat  lock.Compat
	lockTimeout time.Duration
	tr          *trace.Tracer

	// monitor serializes coroutines: exactly one operation executes at a
	// time; blocking points release it (coroutine switch).
	monitor sync.Mutex

	locks *lock.Manager
	reqs  *port.Port

	// smu guards the per-transaction bookkeeping below; it is distinct
	// from the monitor because the Transaction and Recovery Managers call
	// in from outside the coroutine world.
	smu sync.Mutex
	// buffers holds PinAndBuffer's saved old values per transaction.
	buffers map[types.TransID]map[types.ObjectID][]byte
	// marked holds LockAndMark's to-be-modified queues per transaction.
	marked map[types.TransID][]types.ObjectID
	// joined records transactions for which the first-operation message
	// has been sent to the Transaction Manager (§3.2.3).
	joined map[types.TransID]bool
	// byTop indexes every TID seen, by top-level transaction, so commit
	// can release a whole tree's locks.
	byTop map[types.TransID]map[types.TransID]bool
	// pins tracks the server's page pins so writes can be validated.
	pins map[types.PageID]int
	// ops is the operation-logging interpreter table.
	ops map[string]OpFunc
	// dispatch is the operation dispatcher installed by AcceptRequests;
	// Invoke runs requests through it synchronously.
	dispatch DispatchFunc

	closed bool
}

// New creates a data server (InitServer of Table 3-1).
func New(cfg Config) *Server {
	s := &Server{
		id:          cfg.ID,
		k:           cfg.Kernel,
		rm:          cfg.RM,
		tm:          cfg.TM,
		rec:         cfg.Rec,
		seg:         cfg.Segment,
		lockCompat:  cfg.LockCompat,
		lockTimeout: cfg.LockTimeout,
		tr:          cfg.Trace,
		locks:       lock.NewTyped(cfg.LockCompat, cfg.LockTimeout),
		reqs:        port.New(string(cfg.ID), cfg.Rec),
		buffers:     make(map[types.TransID]map[types.ObjectID][]byte),
		marked:      make(map[types.TransID][]types.ObjectID),
		joined:      make(map[types.TransID]bool),
		byTop:       make(map[types.TransID]map[types.TransID]bool),
		pins:        make(map[types.PageID]int),
		ops:         make(map[string]OpFunc),
	}
	s.locks.AttachTracer(s.tr)
	return s
}

// ID returns the server's identifier.
func (s *Server) ID() types.ServerID { return s.id }

// Segment returns the server's recoverable segment.
func (s *Server) Segment() types.SegmentID { return s.seg }

// Locks exposes the server's lock manager (tests and ablations).
func (s *Server) Locks() *lock.Manager { return s.locks }

// Port returns the server's request port; the node routes operation
// requests to it.
func (s *Server) Port() *port.Port { return s.reqs }

// RecoverServer registers the server's undo/redo code with the Recovery
// Manager (Table 3-1: RecoverServer "accepts the log records that the
// Recovery Manager reads from the log" and "calls the server library's
// undo/redo code"). It must run before the node performs crash recovery.
func (s *Server) RecoverServer() {
	s.rm.RegisterUndoer(s.id, s)
}

// AcceptRequests starts the request loop: each incoming request becomes a
// coroutine dispatched through fn (Table 3-1). The loop runs until the
// port closes. It also installs fn as the dispatcher Invoke uses for the
// same-node fast path.
func (s *Server) AcceptRequests(fn DispatchFunc) {
	s.smu.Lock()
	s.dispatch = fn
	s.smu.Unlock()
	go func() {
		for {
			msg, err := s.reqs.Receive()
			if err != nil {
				return
			}
			go s.serve(msg, fn)
		}
	}()
}

// Invoke runs one operation synchronously on the caller's goroutine,
// entering the monitor directly instead of routing a message through the
// request port and a fresh serving goroutine. The monitor semantics are
// identical to the port path — the request is one coroutine, blocking
// points inside the operation release the monitor via await — but the
// per-request reply port, channel hops, goroutine spawn and its stack
// growth are gone, which is most of the local Data Server Call's CPU cost.
// The Data Server Call primitive is charged by the caller (core.Node), as
// on the port path.
func (s *Server) Invoke(op string, tid types.TransID, body []byte) ([]byte, error) {
	s.smu.Lock()
	fn := s.dispatch
	closed := s.closed
	s.smu.Unlock()
	if closed || fn == nil {
		return nil, ErrServerDown
	}
	s.monitor.Lock()
	defer s.monitor.Unlock()
	s.ensureJoined(tid)
	req := &Request{Op: op, TID: tid, Body: body}
	return s.dispatchSafely(fn, req)
}

// serve runs one request as a coroutine inside the monitor. A panicking
// operation is confined to its own request — the caller gets an error and
// the server keeps serving, the way a TABS server survived a misbehaving
// operation rather than taking the node with it.
func (s *Server) serve(msg *port.Message, fn DispatchFunc) {
	s.monitor.Lock()
	defer s.monitor.Unlock()
	s.ensureJoined(msg.TID)
	req := &Request{Op: msg.Op, TID: msg.TID, Body: msg.Body}
	out, err := s.dispatchSafely(fn, req)
	if msg.ReplyTo != nil {
		reply := &port.Message{Op: msg.Op, TID: msg.TID, Body: out}
		if err != nil {
			reply.Err = err.Error()
		}
		_ = msg.ReplyTo.SendQuiet(reply)
	}
}

// dispatchSafely converts a handler panic into an operation error.
func (s *Server) dispatchSafely(fn DispatchFunc, req *Request) (out []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			out = nil
			err = fmt.Errorf("srvlib: operation %q panicked: %v", req.Op, r)
		}
	}()
	return fn(req)
}

// await performs a coroutine switch: the monitor is released while f
// blocks, letting other operations run, and re-acquired before returning
// (§3.1.1: "a coroutine switch is performed only when an operation
// waits").
func (s *Server) await(f func() error) error {
	s.monitor.Unlock()
	defer s.monitor.Lock()
	return f()
}

// ensureJoined sends the Transaction Manager the first-operation message
// for tid, once (§3.2.3).
func (s *Server) ensureJoined(tid types.TransID) {
	if tid.IsNil() {
		return
	}
	s.smu.Lock()
	already := s.joined[tid]
	if !already {
		s.joined[tid] = true
		top := tid.TopLevel()
		set := s.byTop[top]
		if set == nil {
			set = make(map[types.TransID]bool)
			s.byTop[top] = set
		}
		set[tid] = true
	}
	s.smu.Unlock()
	if !already && s.tm != nil {
		s.tm.JoinServer(tid, s.id, s)
	}
}

// --- txn.Participant -------------------------------------------------------

// CommitTrans releases the locks and volatile state of the top-level
// transaction and every local subtransaction of it. Unlocking at commit is
// automatic (§3.1.1).
func (s *Server) CommitTrans(top types.TransID) {
	s.smu.Lock()
	tids := make([]types.TransID, 0, 4)
	for tid := range s.byTop[top] {
		tids = append(tids, tid)
	}
	delete(s.byTop, top)
	for _, tid := range tids {
		delete(s.joined, tid)
		delete(s.buffers, tid)
		delete(s.marked, tid)
	}
	s.smu.Unlock()
	for _, tid := range tids {
		s.locks.ReleaseAll(tid)
	}
}

// AbortTrans releases the locks and volatile state of exactly the given
// (sub)transaction, after the Recovery Manager has undone its effects.
func (s *Server) AbortTrans(tid types.TransID) {
	s.smu.Lock()
	delete(s.joined, tid)
	delete(s.buffers, tid)
	delete(s.marked, tid)
	if set := s.byTop[tid.TopLevel()]; set != nil {
		delete(set, tid)
		if len(set) == 0 {
			delete(s.byTop, tid.TopLevel())
		}
	}
	s.smu.Unlock()
	s.locks.ReleaseAll(tid)
}

// --- recovery.Undoer --------------------------------------------------------

// UndoUpdate installs the old value of a value-logging record.
func (s *Server) UndoUpdate(_ types.TransID, u *wal.UpdateBody) error {
	if uint32(len(u.Old)) != u.Object.Length {
		return fmt.Errorf("srvlib: undo length mismatch for %v", u.Object)
	}
	return s.k.Write(u.Object, u.Old)
}

// UndoOperation runs the operation record's undo script.
func (s *Server) UndoOperation(tid types.TransID, o *wal.OperationBody) error {
	return s.RunScript(tid, o.UndoArgs)
}

// RedoOperation runs the operation record's redo script.
func (s *Server) RedoOperation(tid types.TransID, o *wal.OperationBody) error {
	return s.RunScript(tid, o.RedoArgs)
}

// --- operation logging -------------------------------------------------------

// RegisterOp installs fn as the interpreter for op in redo/undo scripts.
// Operation logging with type-specific locking is the paper's announced
// extension path (§7); the library here supports it fully.
func (s *Server) RegisterOp(op string, fn OpFunc) {
	s.smu.Lock()
	defer s.smu.Unlock()
	s.ops[op] = fn
}

// Script builds a self-contained redo or undo script invoking op with
// args.
func Script(op string, args []byte) []byte {
	b := binary.BigEndian.AppendUint16(make([]byte, 0, 2+len(op)+len(args)), uint16(len(op)))
	b = append(b, op...)
	return append(b, args...)
}

// RunScript interprets a script against the registered operation table.
func (s *Server) RunScript(tid types.TransID, script []byte) error {
	if len(script) < 2 {
		return fmt.Errorf("%w: short script", ErrNoSuchOp)
	}
	n := int(binary.BigEndian.Uint16(script))
	if len(script) < 2+n {
		return fmt.Errorf("%w: truncated script", ErrNoSuchOp)
	}
	op := string(script[2 : 2+n])
	s.smu.Lock()
	fn := s.ops[op]
	s.smu.Unlock()
	if fn == nil {
		return fmt.Errorf("%w: %q", ErrNoSuchOp, op)
	}
	return fn(tid, script[2+n:])
}

// LogOperation performs operation logging for a change the server has
// already applied (while pinned): it writes one record whose redo and undo
// scripts can re-invoke or reverse the operation, covering all the pages
// the operation touched — the paper highlights that "operations on
// multi-page objects can be recorded in one log record" (§2.1.3).
func (s *Server) LogOperation(tid types.TransID, redoScript, undoScript []byte, objs ...types.ObjectID) error {
	seen := make(map[types.PageID]bool)
	body := &wal.OperationBody{Op: scriptOp(redoScript), RedoArgs: redoScript, UndoArgs: undoScript}
	for _, obj := range objs {
		for _, p := range obj.Pages() {
			if !seen[p] {
				seen[p] = true
				body.Pages = append(body.Pages, wal.PageSeq{Page: p})
			}
		}
	}
	_, err := s.rm.LogOperation(tid, s.id, body)
	return err
}

func scriptOp(script []byte) string {
	if len(script) < 2 {
		return "?"
	}
	n := int(binary.BigEndian.Uint16(script))
	if len(script) < 2+n {
		return "?"
	}
	return string(script[2 : 2+n])
}

// Close shuts the server down.
func (s *Server) Close() {
	s.smu.Lock()
	s.closed = true
	s.smu.Unlock()
	s.reqs.Close()
	s.locks.Close()
}

// Crash models the loss of the server's volatile state with the node.
func (s *Server) Crash() {
	s.smu.Lock()
	s.buffers = make(map[types.TransID]map[types.ObjectID][]byte)
	s.marked = make(map[types.TransID][]types.ObjectID)
	s.joined = make(map[types.TransID]bool)
	s.byTop = make(map[types.TransID]map[types.TransID]bool)
	s.pins = make(map[types.PageID]int)
	s.smu.Unlock()
	s.locks.Close()
	s.locks = lock.NewTyped(s.lockCompat, s.lockTimeout)
	s.locks.AttachTracer(s.tr)
}

// Stats exposes the underlying recorder (may be nil).
func (s *Server) Stats() *stats.Recorder { return s.rec }

// ensure interface satisfaction.
var (
	_ txn.Participant = (*Server)(nil)
	_ recovery.Undoer = (*Server)(nil)
)
