package srvlib_test

import (
	"encoding/binary"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tabs/internal/disk"
	"tabs/internal/kernel"
	"tabs/internal/lock"
	"tabs/internal/port"
	"tabs/internal/recovery"
	"tabs/internal/srvlib"
	"tabs/internal/txn"
	"tabs/internal/types"
	"tabs/internal/wal"
)

// fixture assembles the components a data server needs, without a full
// node.
type fixture struct {
	k  *kernel.Kernel
	rm *recovery.Manager
	tm *txn.Manager
	s  *srvlib.Server
}

func newFixture(t *testing.T, compat lock.Compat) *fixture {
	t.Helper()
	d := disk.New(disk.DefaultGeometry(512))
	k := kernel.New(kernel.Config{Disk: d, PoolPages: 32})
	if err := k.AddSegment(1, 128, 16); err != nil {
		t.Fatal(err)
	}
	lg, err := wal.Open(wal.Config{Disk: d, Base: 0, Sectors: 64})
	if err != nil {
		t.Fatal(err)
	}
	rm := recovery.New(recovery.Config{Log: lg, Kernel: k, CheckpointEvery: 1 << 30})
	tm := txn.New("n", rm, nil, nil)
	s := srvlib.New(srvlib.Config{
		ID: "srv", Kernel: k, RM: rm, TM: tm,
		Segment: 1, LockCompat: compat, LockTimeout: 200 * time.Millisecond,
	})
	s.RecoverServer()
	return &fixture{k: k, rm: rm, tm: tm, s: s}
}

func (f *fixture) begin(t *testing.T) types.TransID {
	t.Helper()
	tid, err := f.tm.Begin(types.NilTransID)
	if err != nil {
		t.Fatal(err)
	}
	return tid
}

func TestAddressArithmetic(t *testing.T) {
	f := newFixture(t, nil)
	base, size, err := f.s.ReadPermanentData()
	if err != nil {
		t.Fatal(err)
	}
	if base != 0 || size != 16*types.PageSize {
		t.Errorf("base %d size %d", base, size)
	}
	obj := f.s.CreateObjectID(100, 8)
	if obj.Segment != 1 || obj.Offset != 100 || obj.Length != 8 {
		t.Errorf("obj %v", obj)
	}
	if va := f.s.ConvertObjectIDToVirtualAddress(obj); va != 100 {
		t.Errorf("va %d", va)
	}
}

func TestWriteRequiresPin(t *testing.T) {
	f := newFixture(t, nil)
	obj := f.s.CreateObjectID(0, 4)
	if err := f.s.Write(obj, []byte("nope")); !errors.Is(err, srvlib.ErrNotPinned) {
		t.Fatalf("unpinned write: %v", err)
	}
	if err := f.s.PinObject(obj); err != nil {
		t.Fatal(err)
	}
	if err := f.s.Write(obj, []byte("yes!")); err != nil {
		t.Fatalf("pinned write: %v", err)
	}
	if err := f.s.UnPinObject(obj); err != nil {
		t.Fatal(err)
	}
}

func TestPinBufferLogCycle(t *testing.T) {
	f := newFixture(t, nil)
	tid := f.begin(t)
	obj := f.s.CreateObjectID(0, 4)
	if err := f.s.LockObject(tid, obj, lock.ModeWrite); err != nil {
		t.Fatal(err)
	}
	if err := f.s.PinAndBuffer(tid, obj); err != nil {
		t.Fatal(err)
	}
	if err := f.s.Write(obj, []byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := f.s.LogAndUnPin(tid, obj); err != nil {
		t.Fatal(err)
	}
	if !f.rm.HasLogged(tid) {
		t.Error("update not logged")
	}
	// Locks are released automatically at commit (§3.1.1).
	if ok, err := f.tm.End(tid); err != nil || !ok {
		t.Fatalf("commit: %v", err)
	}
	if f.s.Locks().IsLocked(obj) {
		t.Error("lock survived commit")
	}
}

func TestLogAndUnPinWithoutBufferFails(t *testing.T) {
	f := newFixture(t, nil)
	tid := f.begin(t)
	obj := f.s.CreateObjectID(0, 4)
	if err := f.s.LogAndUnPin(tid, obj); !errors.Is(err, srvlib.ErrNotBuffered) {
		t.Fatalf("got %v", err)
	}
}

func TestMarkedObjectsProtocol(t *testing.T) {
	f := newFixture(t, nil)
	tid := f.begin(t)
	objs := []types.ObjectID{
		f.s.CreateObjectID(0, 4),
		f.s.CreateObjectID(types.PageSize, 4),
		f.s.CreateObjectID(2*types.PageSize, 4),
	}
	for _, o := range objs {
		if err := f.s.LockAndMark(tid, o, lock.ModeWrite); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(f.s.MarkedObjects(tid)); got != 3 {
		t.Fatalf("marked %d", got)
	}
	if err := f.s.PinAndBufferMarkedObjects(tid); err != nil {
		t.Fatal(err)
	}
	for i, o := range objs {
		if err := f.s.Write(o, []byte{byte(i), 0, 0, 0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.s.LogAndUnPinMarkedObjects(tid); err != nil {
		t.Fatal(err)
	}
	if got := len(f.s.MarkedObjects(tid)); got != 0 {
		t.Errorf("queue not deleted: %d", got)
	}
	if f.k.PinnedPages() != 0 {
		t.Errorf("%d pages still pinned", f.k.PinnedPages())
	}
	// Abort must restore all three via the logged values.
	if err := f.tm.Abort(tid); err != nil {
		t.Fatal(err)
	}
	for _, o := range objs {
		got, err := f.s.Read(o)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != 0 {
			t.Errorf("object %v not undone: %v", o, got)
		}
	}
}

func TestCoroutineMonitorSemantics(t *testing.T) {
	// Two requests: the first blocks on a lock; the monitor must switch
	// to the second (coroutine switch on wait), which releases the lock
	// path by completing.
	f := newFixture(t, nil)
	obj := f.s.CreateObjectID(0, 4)

	blocker := f.begin(t)
	if err := f.s.LockObject(blocker, obj, lock.ModeWrite); err != nil {
		t.Fatal(err)
	}

	var order atomic.Int32
	f.s.AcceptRequests(func(req *srvlib.Request) ([]byte, error) {
		switch req.Op {
		case "blocked":
			// Waits for the lock: a coroutine switch point.
			err := f.s.LockObject(req.TID, obj, lock.ModeRead)
			order.CompareAndSwap(1, 2)
			return nil, err
		case "fast":
			order.CompareAndSwap(0, 1)
			return nil, nil
		}
		return nil, errors.New("?")
	})

	t1, t2 := f.begin(t), f.begin(t)
	reply1 := port.New("r1", nil)
	defer reply1.Close()
	if err := f.s.Port().SendQuiet(&port.Message{Op: "blocked", TID: t1, ReplyTo: reply1}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let "blocked" enter its wait
	reply2 := port.New("r2", nil)
	defer reply2.Close()
	if err := f.s.Port().SendQuiet(&port.Message{Op: "fast", TID: t2, ReplyTo: reply2}); err != nil {
		t.Fatal(err)
	}
	if _, err := reply2.Receive(); err != nil {
		t.Fatal(err)
	}
	if order.Load() != 1 {
		t.Errorf("fast request did not run while blocked request waited (order=%d)", order.Load())
	}
	// Release the blocker; the waiting coroutine finishes.
	if err := f.tm.Abort(blocker); err != nil {
		t.Fatal(err)
	}
	if _, err := reply1.Receive(); err != nil {
		t.Fatal(err)
	}
	if order.Load() != 2 {
		t.Errorf("blocked request never completed (order=%d)", order.Load())
	}
}

func TestExecuteTransaction(t *testing.T) {
	f := newFixture(t, nil)
	obj := f.s.CreateObjectID(0, 4)
	var ran atomic.Bool
	f.s.AcceptRequests(func(req *srvlib.Request) ([]byte, error) {
		// Inside an operation, write permanent data under a server-owned
		// top-level transaction (the IO server's trick, §4.3).
		err := f.s.ExecuteTransaction(func(tid types.TransID) error {
			if err := f.s.LockObject(tid, obj, lock.ModeWrite); err != nil {
				return err
			}
			if err := f.s.PinAndBuffer(tid, obj); err != nil {
				return err
			}
			if err := f.s.Write(obj, []byte("exec")); err != nil {
				return err
			}
			return f.s.LogAndUnPin(tid, obj)
		})
		ran.Store(true)
		return nil, err
	})
	reply := port.New("r", nil)
	defer reply.Close()
	if err := f.s.Port().SendQuiet(&port.Message{Op: "go", TID: f.begin(t), ReplyTo: reply}); err != nil {
		t.Fatal(err)
	}
	resp, err := reply.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if resp.Err != "" {
		t.Fatalf("op error: %s", resp.Err)
	}
	got, err := f.s.Read(obj)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "exec" {
		t.Errorf("got %q", got)
	}
}

func TestOperationScripts(t *testing.T) {
	f := newFixture(t, nil)
	var total int64
	f.s.RegisterOp("bump", func(_ types.TransID, args []byte) error {
		total += int64(binary.BigEndian.Uint64(args))
		return nil
	})
	script := srvlib.Script("bump", binary.BigEndian.AppendUint64(nil, 5))
	if err := f.s.RunScript(types.NilTransID, script); err != nil {
		t.Fatal(err)
	}
	if total != 5 {
		t.Errorf("total %d", total)
	}
	if err := f.s.RunScript(types.NilTransID, srvlib.Script("missing", nil)); !errors.Is(err, srvlib.ErrNoSuchOp) {
		t.Errorf("missing op: %v", err)
	}
	if err := f.s.RunScript(types.NilTransID, []byte{0}); !errors.Is(err, srvlib.ErrNoSuchOp) {
		t.Errorf("short script: %v", err)
	}
}

func TestUnPinAllObjects(t *testing.T) {
	f := newFixture(t, nil)
	for i := uint32(0); i < 3; i++ {
		if err := f.s.PinObject(f.s.CreateObjectID(srvlib.VirtualAddress(i*types.PageSize), 4)); err != nil {
			t.Fatal(err)
		}
	}
	if f.k.PinnedPages() != 3 {
		t.Fatalf("pinned %d", f.k.PinnedPages())
	}
	if err := f.s.UnPinAllObjects(); err != nil {
		t.Fatal(err)
	}
	if f.k.PinnedPages() != 0 {
		t.Errorf("pinned %d after UnPinAll", f.k.PinnedPages())
	}
}

func TestSubTransactionLockRelease(t *testing.T) {
	f := newFixture(t, nil)
	top := f.begin(t)
	sub, err := f.tm.Begin(top)
	if err != nil {
		t.Fatal(err)
	}
	obj := f.s.CreateObjectID(0, 4)
	if err := f.s.LockObject(sub, obj, lock.ModeWrite); err != nil {
		t.Fatal(err)
	}
	// Abort only the subtransaction: its lock goes, the parent lives.
	if err := f.tm.Abort(sub); err != nil {
		t.Fatal(err)
	}
	if f.s.Locks().IsLocked(obj) {
		t.Error("sub lock survived sub abort")
	}
	if ok, err := f.tm.End(top); err != nil || !ok {
		t.Fatalf("parent commit after sub abort: %v", err)
	}
}

// TestPanicConfinedToOperation: a handler panic becomes an error reply;
// the server keeps serving subsequent requests.
func TestPanicConfinedToOperation(t *testing.T) {
	f := newFixture(t, nil)
	f.s.AcceptRequests(func(req *srvlib.Request) ([]byte, error) {
		if req.Op == "explode" {
			panic("handler bug")
		}
		return []byte("fine"), nil
	})
	call := func(op string) (*port.Message, error) {
		reply := port.New("r", nil)
		defer reply.Close()
		if err := f.s.Port().SendQuiet(&port.Message{Op: op, TID: f.begin(t), ReplyTo: reply}); err != nil {
			return nil, err
		}
		return reply.Receive()
	}
	resp, err := call("explode")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Err == "" || !strings.Contains(resp.Err, "panicked") {
		t.Errorf("panic not surfaced: %+v", resp)
	}
	resp, err = call("ok")
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "fine" {
		t.Errorf("server dead after panic: %+v", resp)
	}
}
