// Package stats instruments the primitive operations of the TABS
// performance methodology (paper §5.1).
//
// Every component records the primitive operations it performs into a
// Recorder. Counts are kept in two scopes — pre-commit and commit — because
// the paper reports them separately (Tables 5-2 and 5-3) and because the
// commit phase of a distributed transaction executes partly in parallel,
// which the paper models with fractional datagram counts on the longest
// path. The benchmark harness snapshots counters around each benchmark and
// multiplies them by a simclock.CostModel to regenerate the "System Time
// Predicted by Primitives" column of Table 5-4.
package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"tabs/internal/simclock"
)

// Phase distinguishes the two accounting scopes of the paper's analysis.
type Phase int

const (
	// PreCommit covers everything from BeginTransaction until the commit
	// protocol starts (Table 5-2).
	PreCommit Phase = iota
	// Commit covers the commit (or abort) protocol itself (Table 5-3).
	Commit
	numPhases
)

// String returns a short label for the phase.
func (p Phase) String() string {
	switch p {
	case PreCommit:
		return "pre-commit"
	case Commit:
		return "commit"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Counts holds fractional counts of each primitive operation. Fractional
// values appear only in commit-phase accounting, where the paper charges
// one-half datagram for a send that proceeds in parallel with another.
type Counts [simclock.NumPrimitives]float64

// Add returns the element-wise sum of c and d.
func (c Counts) Add(d Counts) Counts {
	var out Counts
	for i := range c {
		out[i] = c[i] + d[i]
	}
	return out
}

// Sub returns the element-wise difference c - d.
func (c Counts) Sub(d Counts) Counts {
	var out Counts
	for i := range c {
		out[i] = c[i] - d[i]
	}
	return out
}

// Scale returns c with every element multiplied by f.
func (c Counts) Scale(f float64) Counts {
	var out Counts
	for i := range c {
		out[i] = c[i] * f
	}
	return out
}

// Predict returns the predicted latency in milliseconds under the given
// cost model: the sum of the primitive counts weighted by the primitive
// times, exactly as in the paper's Table 5-4 first column.
func (c Counts) Predict(m *simclock.CostModel) float64 {
	var ms float64
	for i := range c {
		ms += c[i] * m.Times[i]
	}
	return ms
}

// IsZero reports whether every count is zero.
func (c Counts) IsZero() bool {
	for _, v := range c {
		if v != 0 {
			return false
		}
	}
	return true
}

// String formats the non-zero counts compactly, in primitive order.
func (c Counts) String() string {
	var b strings.Builder
	for i, v := range c {
		if v == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%g", simclock.Primitive(i), v)
	}
	if b.Len() == 0 {
		return "(none)"
	}
	return b.String()
}

// Recorder accumulates primitive counts per phase, charges a virtual clock
// if one is attached, and is safe for concurrent use.
type Recorder struct {
	mu     sync.Mutex
	counts [numPhases]Counts
	phase  Phase
	clock  *simclock.Clock
	model  *simclock.CostModel
	// extra accumulates modelled per-component CPU time (TABS process
	// time, §5.2) in milliseconds, outside the primitive accounting.
	extra float64
}

// NewRecorder returns a Recorder in the PreCommit phase with no clock.
func NewRecorder() *Recorder { return &Recorder{} }

// AttachClock makes the recorder charge every recorded primitive's cost
// under model to clock. Passing nil detaches.
func (r *Recorder) AttachClock(clock *simclock.Clock, model *simclock.CostModel) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.clock = clock
	r.model = model
}

// SetPhase switches the accounting scope for subsequent Record calls.
func (r *Recorder) SetPhase(p Phase) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.phase = p
}

// Phase returns the current accounting scope.
func (r *Recorder) Phase() Phase {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.phase
}

// Record notes one execution of primitive p in the current phase.
func (r *Recorder) Record(p simclock.Primitive) { r.RecordN(p, 1) }

// RecordN notes n executions of primitive p (n may be fractional; the paper
// charges half datagrams for parallel sends during commit).
func (r *Recorder) RecordN(p simclock.Primitive, n float64) {
	r.mu.Lock()
	r.counts[r.phase][p] += n
	clock, model := r.clock, r.model
	r.mu.Unlock()
	if clock != nil && model != nil {
		clock.Advance(time.Duration(float64(model.Cost(p)) * n))
	}
}

// RecordProcessMillis adds modelled TABS system-process CPU time (ms),
// which the paper reports separately from primitive-predicted time.
func (r *Recorder) RecordProcessMillis(ms float64) {
	r.mu.Lock()
	r.extra += ms
	clock, model := r.clock, r.model
	r.mu.Unlock()
	if clock != nil && model != nil {
		clock.Advance(time.Duration(ms * float64(time.Millisecond)))
	}
}

// ProcessMillis returns accumulated modelled process time in milliseconds.
func (r *Recorder) ProcessMillis() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.extra
}

// Snapshot returns the accumulated counts for phase p.
func (r *Recorder) Snapshot(p Phase) Counts {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counts[p]
}

// Total returns pre-commit plus commit counts.
func (r *Recorder) Total() Counts {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counts[PreCommit].Add(r.counts[Commit])
}

// Reset zeroes all counts and modelled process time and returns the
// recorder to the PreCommit phase.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.counts {
		r.counts[i] = Counts{}
	}
	r.extra = 0
	r.phase = PreCommit
}

// Registry aggregates the recorders of several components (or nodes) so a
// benchmark can snapshot the whole system at once.
type Registry struct {
	mu        sync.Mutex
	recorders map[string]*Recorder
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{recorders: make(map[string]*Recorder)}
}

// Recorder returns the recorder registered under name, creating it if
// needed.
func (g *Registry) Recorder(name string) *Recorder {
	g.mu.Lock()
	defer g.mu.Unlock()
	r, ok := g.recorders[name]
	if !ok {
		r = NewRecorder()
		g.recorders[name] = r
	}
	return r
}

// Names returns the registered recorder names, sorted.
func (g *Registry) Names() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	names := make([]string, 0, len(g.recorders))
	for n := range g.recorders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TotalCounts sums the counts for phase p across every recorder.
func (g *Registry) TotalCounts(p Phase) Counts {
	g.mu.Lock()
	defer g.mu.Unlock()
	var total Counts
	for _, r := range g.recorders {
		total = total.Add(r.Snapshot(p))
	}
	return total
}

// NamedCounts returns each recorder's counts for phase p, keyed by
// recorder name. The benchmark projections use this to drop exactly the
// messages a merged-component architecture would eliminate (paper §5.3).
func (g *Registry) NamedCounts(p Phase) map[string]Counts {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[string]Counts, len(g.recorders))
	for n, r := range g.recorders {
		out[n] = r.Snapshot(p)
	}
	return out
}

// TotalProcessMillis sums modelled process time across every recorder.
func (g *Registry) TotalProcessMillis() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	var total float64
	for _, r := range g.recorders {
		total += r.ProcessMillis()
	}
	return total
}

// SetPhaseAll switches every recorder to phase p.
func (g *Registry) SetPhaseAll(p Phase) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, r := range g.recorders {
		r.SetPhase(p)
	}
}

// ResetAll resets every recorder.
func (g *Registry) ResetAll() {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, r := range g.recorders {
		r.Reset()
	}
}
