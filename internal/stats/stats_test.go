package stats

import (
	"sync"
	"testing"
	"time"

	"tabs/internal/simclock"
)

func TestPhaseScoping(t *testing.T) {
	r := NewRecorder()
	r.Record(simclock.SmallMsg)
	r.SetPhase(Commit)
	r.Record(simclock.Datagram)
	r.RecordN(simclock.Datagram, 0.5)
	pre := r.Snapshot(PreCommit)
	com := r.Snapshot(Commit)
	if pre[simclock.SmallMsg] != 1 || pre[simclock.Datagram] != 0 {
		t.Errorf("pre %v", pre)
	}
	if com[simclock.Datagram] != 1.5 {
		t.Errorf("commit %v", com)
	}
	total := r.Total()
	if total[simclock.SmallMsg] != 1 || total[simclock.Datagram] != 1.5 {
		t.Errorf("total %v", total)
	}
}

func TestPredict(t *testing.T) {
	var c Counts
	c[simclock.DataServerCall] = 1
	c[simclock.SmallMsg] = 4
	// 26.1 + 4×3.0 = 38.1 ms — the paper's "1 Local Read" pre-commit sum.
	got := c.Predict(simclock.PerqT2())
	if got < 38.0 || got > 38.2 {
		t.Errorf("predict %v", got)
	}
}

func TestCountsArithmetic(t *testing.T) {
	var a, b Counts
	a[0], b[0] = 2, 3
	if a.Add(b)[0] != 5 || b.Sub(a)[0] != 1 || a.Scale(2)[0] != 4 {
		t.Error("arithmetic broken")
	}
	if !((Counts{}).IsZero()) || a.IsZero() {
		t.Error("IsZero broken")
	}
}

func TestClockCharging(t *testing.T) {
	r := NewRecorder()
	clock := simclock.NewClock()
	r.AttachClock(clock, simclock.PerqT2())
	r.Record(simclock.StableWrite) // 79 ms
	r.RecordN(simclock.Datagram, 0.5)
	want := 79*time.Millisecond + 12500*time.Microsecond
	if clock.Now() != want {
		t.Errorf("clock %v, want %v", clock.Now(), want)
	}
}

func TestProcessMillis(t *testing.T) {
	r := NewRecorder()
	r.RecordProcessMillis(36)
	r.RecordProcessMillis(5)
	if r.ProcessMillis() != 41 {
		t.Errorf("process ms %v", r.ProcessMillis())
	}
	r.Reset()
	if r.ProcessMillis() != 0 {
		t.Error("reset left process time")
	}
}

func TestRegistry(t *testing.T) {
	g := NewRegistry()
	g.Recorder("n1/kernel").Record(simclock.SmallMsg)
	g.Recorder("n1/tm").Record(simclock.SmallMsg)
	g.Recorder("n2/kernel").Record(simclock.Datagram)
	total := g.TotalCounts(PreCommit)
	if total[simclock.SmallMsg] != 2 || total[simclock.Datagram] != 1 {
		t.Errorf("total %v", total)
	}
	named := g.NamedCounts(PreCommit)
	if named["n1/kernel"][simclock.SmallMsg] != 1 {
		t.Errorf("named %v", named)
	}
	names := g.Names()
	if len(names) != 3 || names[0] != "n1/kernel" {
		t.Errorf("names %v", names)
	}
	g.SetPhaseAll(Commit)
	g.Recorder("n1/tm").Record(simclock.Datagram)
	if g.TotalCounts(Commit)[simclock.Datagram] != 1 {
		t.Error("phase switch not applied to all recorders")
	}
	g.ResetAll()
	if !g.TotalCounts(PreCommit).IsZero() || !g.TotalCounts(Commit).IsZero() {
		t.Error("reset incomplete")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Record(simclock.SmallMsg)
			}
		}()
	}
	wg.Wait()
	if got := r.Total()[simclock.SmallMsg]; got != 8000 {
		t.Errorf("count %v", got)
	}
}

func TestCountsString(t *testing.T) {
	var c Counts
	if c.String() != "(none)" {
		t.Errorf("zero counts string %q", c.String())
	}
	c[simclock.SmallMsg] = 2
	if c.String() == "(none)" {
		t.Error("non-zero counts rendered empty")
	}
}
