// Package trace is the transaction-level observability layer: a
// low-overhead, per-node structured event substrate threaded through the
// hot paths of every TABS component. It complements internal/stats — which
// counts the paper's primitive operations to regenerate Tables 5-1..5-5 —
// with the *where did the time go* view the paper's methodology cannot
// give: per-phase commit-protocol spans, lock blocking with the holding
// transaction, WAL force latency, retransmissions and backoff rounds.
//
// Two kinds of data are kept:
//
//   - Spans: named, timestamped intervals with free-form annotations,
//     stored in a fixed-capacity ring buffer (old spans are overwritten;
//     observability must never grow without bound on a production node).
//
//   - Metrics: a typed registry of named counters, gauges and histograms,
//     cheap enough to bump on every append/force/fault.
//
// A nil *Tracer is fully functional and free: every method has a nil fast
// path that performs no allocation and no locking, mirroring how a nil
// stats.Recorder is plumbed through the same components. Components
// therefore take a *Tracer unconditionally and never test for enablement
// themselves.
package trace

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultSpanCapacity is the ring size used when a Tracer is constructed
// with capacity 0: enough for several thousand transactions' worth of
// commit-path spans without unbounded growth.
const DefaultSpanCapacity = 4096

// Span is one completed traced interval.
type Span struct {
	ID        uint64    `json:"id"`
	Node      string    `json:"node,omitempty"`
	Component string    `json:"component"`
	Name      string    `json:"name"`
	TID       string    `json:"tid,omitempty"`
	Start     time.Time `json:"start"`
	End       time.Time `json:"end"`
	Attrs     []string  `json:"attrs,omitempty"`
	Err       string    `json:"err,omitempty"`
}

// Duration returns the span's elapsed time.
func (s Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// String formats the span compactly for tabsctl-style display.
func (s Span) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %10.3fms", s.Component+"."+s.Name, float64(s.Duration().Microseconds())/1000)
	if s.TID != "" {
		fmt.Fprintf(&b, " tid=%s", s.TID)
	}
	for _, a := range s.Attrs {
		b.WriteByte(' ')
		b.WriteString(a)
	}
	if s.Err != "" {
		fmt.Fprintf(&b, " err=%q", s.Err)
	}
	return b.String()
}

// ActiveSpan is an in-progress span handle. A nil *ActiveSpan (from a nil
// Tracer) accepts every method as a no-op, so callers never branch.
//
// Handles are pooled: End/EndErr recycles the span, so a handle must not
// be used after it ends. Double-End is tolerated as a no-op.
type ActiveSpan struct {
	t    *Tracer
	span Span
	buf  []byte // scratch for append-formatted annotations
}

// spanPool recycles ActiveSpans (and their annotation backing arrays)
// across Begin/End cycles; spans are begun on every lock acquire and every
// commit-protocol phase, so the per-span allocation is hot-path cost.
var spanPool = sync.Pool{New: func() any { return new(ActiveSpan) }}

// histogram accumulates a streaming summary of observations.
type histogram struct {
	count    uint64
	sum      float64
	min, max float64
}

// MetricValue is one metric's snapshot. Kind is "counter", "gauge" or
// "histogram"; counters and gauges use Value, histograms use the summary
// fields.
type MetricValue struct {
	Kind  string  `json:"kind"`
	Value float64 `json:"value,omitempty"`
	Count uint64  `json:"count,omitempty"`
	Sum   float64 `json:"sum,omitempty"`
	Min   float64 `json:"min,omitempty"`
	Max   float64 `json:"max,omitempty"`
	Mean  float64 `json:"mean,omitempty"`
}

// Tracer is one node's span ring and metrics registry. Safe for concurrent
// use; the nil Tracer is valid and records nothing.
type Tracer struct {
	node string

	mu       sync.Mutex
	capacity int
	ring     []Span // circular once len == capacity
	next     int    // write cursor when the ring is full
	seq      uint64 // span ids
	dropped  uint64 // spans overwritten by ring wrap
	counters map[string]float64
	gauges   map[string]float64
	hists    map[string]*histogram
	handles  map[string]*Counter
}

// Counter is a pre-registered atomic counter handle. Hot paths that bump
// the same counter on every operation (lock grants, WAL appends) hold a
// *Counter instead of calling Tracer.Count, avoiding the tracer mutex and
// name lookup per event. A nil *Counter ignores Add, mirroring the nil
// Tracer contract.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Counter returns (creating if needed) the atomic handle for the named
// counter. The handle stays valid across Reset — Reset zeroes it rather
// than dropping it, so components may cache handles for their lifetime.
// The name is shared with Count: MetricsSnapshot sums both sources.
func (t *Tracer) Counter(name string) *Counter {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	c := t.handles[name]
	if c == nil {
		c = new(Counter)
		t.handles[name] = c
	}
	return c
}

// New returns a Tracer for node with the given span ring capacity
// (0 selects DefaultSpanCapacity).
func New(node string, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	return &Tracer{
		node:     node,
		capacity: capacity,
		counters: make(map[string]float64),
		gauges:   make(map[string]float64),
		hists:    make(map[string]*histogram),
		handles:  make(map[string]*Counter),
	}
}

// Node returns the owning node's name ("" for a nil tracer).
func (t *Tracer) Node() string {
	if t == nil {
		return ""
	}
	return t.node
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// Begin starts a span. On a nil tracer it returns nil, and every
// ActiveSpan method on nil is a no-op — the disabled path allocates
// nothing.
func (t *Tracer) Begin(component, name string) *ActiveSpan {
	if t == nil {
		return nil
	}
	s := spanPool.Get().(*ActiveSpan)
	attrs := s.span.Attrs[:0]
	s.t = t
	s.span = Span{Component: component, Name: name, Start: time.Now(), Attrs: attrs}
	return s
}

// Event records an instantaneous span (Start == End) with optional
// annotations.
func (t *Tracer) Event(component, name string, attrs ...string) {
	if t == nil {
		return
	}
	now := time.Now()
	t.push(&Span{Component: component, Name: name, Start: now, End: now, Attrs: attrs})
}

// SetTID labels the span with the owning transaction.
func (s *ActiveSpan) SetTID(tid fmt.Stringer) *ActiveSpan {
	if s == nil {
		return nil
	}
	s.span.TID = tid.String()
	return s
}

// TIDAppender is the append-based formatter the hot paths use in place of
// fmt.Stringer: types.TransID and types.ObjectID implement it.
type TIDAppender interface {
	AppendString([]byte) []byte
}

// SetTIDAppend labels the span with the owning transaction using its
// append-based formatter, bypassing fmt. Generic so the identifier is not
// boxed into an interface on the way in.
func SetTIDAppend[T TIDAppender](s *ActiveSpan, tid T) *ActiveSpan {
	if s == nil {
		return nil
	}
	s.buf = tid.AppendString(s.buf[:0])
	s.span.TID = string(s.buf)
	return s
}

// Annotate appends a preformatted "key=value" annotation.
func (s *ActiveSpan) Annotate(kv string) *ActiveSpan {
	if s == nil {
		return nil
	}
	s.span.Attrs = append(s.span.Attrs, kv)
	return s
}

// Annotatef appends a formatted annotation.
func (s *ActiveSpan) Annotatef(format string, args ...any) *ActiveSpan {
	if s == nil {
		return nil
	}
	s.span.Attrs = append(s.span.Attrs, fmt.Sprintf(format, args...))
	return s
}

// AnnotateAppend appends a "prefix<value>" annotation where the value
// comes from an append-based formatter; the fmt-free analogue of
// Annotatef("obj=%v", obj) for per-operation spans.
func AnnotateAppend[T TIDAppender](s *ActiveSpan, prefix string, v T) *ActiveSpan {
	if s == nil {
		return nil
	}
	s.buf = append(s.buf[:0], prefix...)
	s.buf = v.AppendString(s.buf)
	s.span.Attrs = append(s.span.Attrs, string(s.buf))
	return s
}

// End completes the span, commits it to the ring, and recycles the handle;
// the span must not be touched afterwards. End on an already-ended span is
// a no-op.
func (s *ActiveSpan) End() {
	if s == nil || s.t == nil {
		return
	}
	s.span.End = time.Now()
	t := s.t
	s.t = nil
	t.push(&s.span)
	spanPool.Put(s)
}

// EndErr completes the span, recording err (nil err behaves like End).
func (s *ActiveSpan) EndErr(err error) {
	if s == nil || s.t == nil {
		return
	}
	if err != nil {
		s.span.Err = err.Error()
	}
	s.End()
}

// push commits a finished span into the ring. The caller's Attrs backing
// array is recycled with its ActiveSpan, so the ring takes its own copy.
func (t *Tracer) push(sp *Span) {
	attrs := sp.Attrs
	if len(attrs) > 0 {
		attrs = append(make([]string, 0, len(attrs)), attrs...)
	} else {
		attrs = nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	sp.ID = t.seq
	cp := *sp
	cp.Node = t.node
	cp.Attrs = attrs
	if len(t.ring) < t.capacity {
		t.ring = append(t.ring, cp)
		return
	}
	t.ring[t.next] = cp
	t.next = (t.next + 1) % t.capacity
	t.dropped++
}

// --- metrics ---------------------------------------------------------------

// Count adds delta to the named counter.
func (t *Tracer) Count(name string, delta float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.counters[name] += delta
	t.mu.Unlock()
}

// Gauge sets the named gauge to v.
func (t *Tracer) Gauge(name string, v float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.gauges[name] = v
	t.mu.Unlock()
}

// Observe records one observation of the named histogram.
func (t *Tracer) Observe(name string, v float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	h := t.hists[name]
	if h == nil {
		h = &histogram{min: v, max: v}
		t.hists[name] = h
	}
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	t.mu.Unlock()
}

// ObserveSince records the milliseconds elapsed since start in the named
// histogram; the canonical latency-recording call.
func (t *Tracer) ObserveSince(name string, start time.Time) {
	if t == nil {
		return
	}
	t.Observe(name, float64(time.Since(start).Nanoseconds())/1e6)
}

// --- snapshots -------------------------------------------------------------

// TraceSnapshot returns the retained spans, oldest first.
func (t *Tracer) TraceSnapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.ring))
	if len(t.ring) < t.capacity {
		out = append(out, t.ring...)
		return out
	}
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Dropped returns how many spans the ring has overwritten.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// MetricsSnapshot returns every registered metric by name.
func (t *Tracer) MetricsSnapshot() map[string]MetricValue {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]MetricValue, len(t.counters)+len(t.gauges)+len(t.hists)+len(t.handles))
	for n, v := range t.counters {
		out[n] = MetricValue{Kind: "counter", Value: v}
	}
	for n, c := range t.handles {
		if v := c.v.Load(); v != 0 || out[n].Kind == "" {
			mv := out[n]
			out[n] = MetricValue{Kind: "counter", Value: mv.Value + float64(v)}
		}
	}
	for n, v := range t.gauges {
		out[n] = MetricValue{Kind: "gauge", Value: v}
	}
	for n, h := range t.hists {
		mv := MetricValue{Kind: "histogram", Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
		if h.count > 0 {
			mv.Mean = h.sum / float64(h.count)
		}
		out[n] = mv
	}
	return out
}

// Reset clears the span ring and every metric.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ring = t.ring[:0]
	t.next = 0
	t.dropped = 0
	t.counters = make(map[string]float64)
	t.gauges = make(map[string]float64)
	t.hists = make(map[string]*histogram)
	// Handles are cached by components for their lifetime: zero, don't drop.
	for _, c := range t.handles {
		c.v.Store(0)
	}
}

// --- export ---------------------------------------------------------------

// Export is the JSON shape tabsctl and tabsbench exchange and emit.
type Export struct {
	Node    string                 `json:"node"`
	Taken   time.Time              `json:"taken"`
	Dropped uint64                 `json:"dropped_spans,omitempty"`
	Metrics map[string]MetricValue `json:"metrics,omitempty"`
	Spans   []Span                 `json:"spans,omitempty"`
}

// Export snapshots the tracer; withSpans selects whether the span ring is
// included (metric dumps usually omit it).
func (t *Tracer) Export(withSpans bool) Export {
	e := Export{Node: t.Node(), Taken: time.Now(), Dropped: t.Dropped(), Metrics: t.MetricsSnapshot()}
	if withSpans {
		e.Spans = t.TraceSnapshot()
	}
	return e
}

// MarshalExports renders a set of per-node exports as indented JSON.
func MarshalExports(exports []Export) ([]byte, error) {
	return json.MarshalIndent(exports, "", "  ")
}

// FormatMetrics renders a metrics snapshot as aligned text, sorted by
// name, for tabsctl metrics.
func FormatMetrics(m map[string]MetricValue) string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		v := m[n]
		switch v.Kind {
		case "histogram":
			fmt.Fprintf(&b, "%-36s count=%d mean=%.3f min=%.3f max=%.3f sum=%.3f\n",
				n, v.Count, v.Mean, v.Min, v.Max, v.Sum)
		default:
			fmt.Fprintf(&b, "%-36s %g\n", n, v.Value)
		}
	}
	return b.String()
}
