package trace

import (
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

type fakeTID string

func (f fakeTID) String() string { return string(f) }

func TestNilTracerIsFreeAndSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	sp := tr.Begin("txn", "commit")
	if sp != nil {
		t.Fatal("nil tracer returned a non-nil span")
	}
	// Every method must be a no-op on the nil handles.
	sp.SetTID(fakeTID("t1")).Annotate("k=v").Annotatef("n=%d", 1)
	sp.End()
	sp.EndErr(errors.New("boom"))
	tr.Event("txn", "abort")
	tr.Count("x", 1)
	tr.Gauge("y", 2)
	tr.Observe("z", 3)
	tr.ObserveSince("w", time.Now())
	tr.Reset()
	if got := tr.TraceSnapshot(); got != nil {
		t.Fatalf("nil snapshot = %v", got)
	}
	if got := tr.MetricsSnapshot(); got != nil {
		t.Fatalf("nil metrics = %v", got)
	}
	if tr.Node() != "" || tr.Dropped() != 0 {
		t.Fatal("nil accessors not zero")
	}
}

func TestSpanLifecycle(t *testing.T) {
	tr := New("nodeA", 0)
	sp := tr.Begin("txn", "commit").SetTID(fakeTID("T:1")).Annotate("children=2")
	sp.Annotatef("round=%d", 1)
	sp.End()
	tr.Event("txn", "abort", "reason=timeout")

	spans := tr.TraceSnapshot()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	got := spans[0]
	if got.Component != "txn" || got.Name != "commit" || got.TID != "T:1" {
		t.Fatalf("span mismatch: %+v", got)
	}
	if got.Node != "nodeA" {
		t.Fatalf("node = %q", got.Node)
	}
	if len(got.Attrs) != 2 || got.Attrs[0] != "children=2" || got.Attrs[1] != "round=1" {
		t.Fatalf("attrs = %v", got.Attrs)
	}
	if got.End.Before(got.Start) {
		t.Fatal("span end precedes start")
	}
	if spans[1].ID <= spans[0].ID {
		t.Fatal("span ids not monotonic")
	}
	if s := got.String(); !strings.Contains(s, "txn.commit") || !strings.Contains(s, "tid=T:1") {
		t.Fatalf("String() = %q", s)
	}
}

func TestEndErrRecordsError(t *testing.T) {
	tr := New("n", 4)
	tr.Begin("wal", "force").EndErr(errors.New("disk gone"))
	tr.Begin("wal", "force").EndErr(nil)
	spans := tr.TraceSnapshot()
	if spans[0].Err != "disk gone" {
		t.Fatalf("err = %q", spans[0].Err)
	}
	if spans[1].Err != "" {
		t.Fatalf("nil err recorded as %q", spans[1].Err)
	}
}

func TestRingWrapKeepsNewestOldestFirst(t *testing.T) {
	tr := New("n", 4)
	for i := 0; i < 10; i++ {
		tr.Event("c", "e", "i="+string(rune('0'+i)))
	}
	spans := tr.TraceSnapshot()
	if len(spans) != 4 {
		t.Fatalf("len = %d, want 4", len(spans))
	}
	// Oldest-first: ids 7,8,9,10.
	for i, sp := range spans {
		if want := uint64(7 + i); sp.ID != want {
			t.Fatalf("spans[%d].ID = %d, want %d", i, sp.ID, want)
		}
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
}

func TestMetrics(t *testing.T) {
	tr := New("n", 4)
	tr.Count("wal.append.bytes", 100)
	tr.Count("wal.append.bytes", 28)
	tr.Gauge("pool.pinned", 3)
	tr.Gauge("pool.pinned", 1)
	tr.Observe("wal.force.ms", 2)
	tr.Observe("wal.force.ms", 6)
	tr.Observe("wal.force.ms", 4)

	m := tr.MetricsSnapshot()
	if c := m["wal.append.bytes"]; c.Kind != "counter" || c.Value != 128 {
		t.Fatalf("counter = %+v", c)
	}
	if g := m["pool.pinned"]; g.Kind != "gauge" || g.Value != 1 {
		t.Fatalf("gauge = %+v", g)
	}
	h := m["wal.force.ms"]
	if h.Kind != "histogram" || h.Count != 3 || h.Sum != 12 || h.Min != 2 || h.Max != 6 || h.Mean != 4 {
		t.Fatalf("histogram = %+v", h)
	}

	out := FormatMetrics(m)
	if !strings.Contains(out, "wal.append.bytes") || !strings.Contains(out, "count=3") {
		t.Fatalf("FormatMetrics output:\n%s", out)
	}

	tr.Reset()
	if len(tr.MetricsSnapshot()) != 0 || len(tr.TraceSnapshot()) != 0 {
		t.Fatal("Reset left state behind")
	}
}

func TestExportJSONRoundTrip(t *testing.T) {
	tr := New("nodeB", 8)
	tr.Begin("lock", "acquire").SetTID(fakeTID("T:9")).End()
	tr.Count("lock.grants", 1)

	data, err := MarshalExports([]Export{tr.Export(true)})
	if err != nil {
		t.Fatal(err)
	}
	var back []Export
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Node != "nodeB" {
		t.Fatalf("round trip = %+v", back)
	}
	if len(back[0].Spans) != 1 || back[0].Spans[0].TID != "T:9" {
		t.Fatalf("spans = %+v", back[0].Spans)
	}
	if back[0].Metrics["lock.grants"].Value != 1 {
		t.Fatalf("metrics = %+v", back[0].Metrics)
	}
}

func TestConcurrentUse(t *testing.T) {
	tr := New("n", 64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := tr.Begin("c", "op")
				tr.Count("ops", 1)
				tr.Observe("lat", float64(i))
				sp.End()
				_ = tr.TraceSnapshot()
			}
		}()
	}
	wg.Wait()
	if v := tr.MetricsSnapshot()["ops"].Value; v != 1600 {
		t.Fatalf("ops = %v, want 1600", v)
	}
}
