package txn

import (
	"errors"
	"testing"

	"tabs/internal/types"
	"tabs/internal/wal"
)

// rmStub is a minimal in-package RecoveryManager for white-box tests.
type rmStub struct {
	commits, aborts int
	logged          map[types.TransID]bool
}

func (r *rmStub) LogCommit(types.TransID) error                    { r.commits++; return nil }
func (r *rmStub) LogPrepare(types.TransID, *wal.PrepareBody) error { return nil }
func (r *rmStub) Abort(types.TransID) error                        { r.aborts++; return nil }
func (r *rmStub) HasLogged(tid types.TransID) bool                 { return r.logged[tid] }

// TestAbortTreeRefusesCommittedTransaction pins the guard against the
// dueling-resolver race: two resolvers (the orphan sweeper and the
// one-shot resolveWhenStuck goroutine) can work the same prepared
// in-doubt transaction concurrently. The first decides Commit, applies
// it, and — with every participant acked — tells the acceptors to
// forget; the second's recovery ballot then runs against blank acceptors
// and concludes the Aborted sentinel. When that stale verdict reaches
// abortTree the transaction is already committed; honoring it used to
// flip the recorded outcome to Aborted while the committed effects stood
// (the undo chain closes at the commit record), breaking atomicity.
func TestAbortTreeRefusesCommittedTransaction(t *testing.T) {
	rm := &rmStub{logged: map[types.TransID]bool{}}
	m := New("solo", rm, nil, nil)
	top, err := m.Begin(types.NilTransID)
	if err != nil {
		t.Fatal(err)
	}
	rm.logged[top] = true

	// The racing resolver grabbed its localTrans pointer before commit.
	m.mu.Lock()
	lt := m.trans[top]
	m.mu.Unlock()
	if lt == nil {
		t.Fatal("no localTrans after Begin")
	}

	if ok, err := m.End(top); err != nil || !ok {
		t.Fatalf("commit: ok=%v err=%v", ok, err)
	}
	if st := m.Status(top); st != types.StatusCommitted {
		t.Fatalf("status after commit: %v", st)
	}

	// Now the stale Aborted verdict lands, exactly as resolveWhenStuck
	// would deliver it.
	m.mu.Lock()
	lt.resolvedAbort = true
	m.mu.Unlock()
	if err := m.abortTree(lt, false); err != nil {
		t.Fatalf("abortTree on committed txn errored: %v", err)
	}

	if st := m.Status(top); st != types.StatusCommitted {
		t.Fatalf("stale abort flipped a committed transaction to %v", st)
	}
	if rm.aborts != 0 {
		t.Fatalf("stale abort ran %d undo passes against a committed transaction", rm.aborts)
	}
}

// TestAbortTreeStillAbortsPrepared makes sure the committed-state guard
// did not widen: an authoritative abort of a merely prepared transaction
// must still tear it down.
func TestAbortTreeStillAbortsPrepared(t *testing.T) {
	rm := &rmStub{logged: map[types.TransID]bool{}}
	m := New("solo", rm, nil, nil)
	top, err := m.Begin(types.NilTransID)
	if err != nil {
		t.Fatal(err)
	}
	rm.logged[top] = true
	m.mu.Lock()
	lt := m.trans[top]
	lt.state = stPrepared
	lt.prep = &wal.PrepareBody{Acceptors: []types.NodeID{"a", "b", "c"}}
	m.mu.Unlock()

	// Without an authoritative outcome the in-doubt guard refuses.
	if err := m.abortTree(lt, false); !errors.Is(err, ErrInDoubt) {
		t.Fatalf("presumed abort of replicated-prepared txn: %v", err)
	}
	m.mu.Lock()
	lt.resolvedAbort = true
	m.mu.Unlock()
	if err := m.abortTree(lt, false); err != nil {
		t.Fatalf("authoritative abort failed: %v", err)
	}
	if st := m.Status(top); st != types.StatusAborted {
		t.Fatalf("status after authoritative abort: %v", st)
	}
	if rm.aborts == 0 {
		t.Fatal("authoritative abort never ran undo")
	}
}
