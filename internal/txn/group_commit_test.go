package txn_test

import (
	"fmt"
	"sync"
	"testing"

	"tabs/internal/disk"
	"tabs/internal/kernel"
	"tabs/internal/recovery"
	"tabs/internal/stats"
	"tabs/internal/txn"
	"tabs/internal/types"
	"tabs/internal/wal"
)

// TestConcurrentCommitsThroughRealLog drives many transactions through the
// real Transaction Manager → Recovery Manager → wal.Log stack from
// concurrent goroutines. The TM releases its mutex around LogCommit and
// the RM forces the log outside its own, so these commits genuinely race
// into the group-commit path; every one must come back committed with its
// records durable.
func TestConcurrentCommitsThroughRealLog(t *testing.T) {
	const workers, perWorker = 8, 10
	d := disk.New(disk.DefaultGeometry(4096))
	k := kernel.New(kernel.Config{Disk: d, PoolPages: 64})
	if err := k.AddSegment(1, 2048, 32); err != nil {
		t.Fatal(err)
	}
	lg, err := wal.Open(wal.Config{Disk: d, Base: 0, Sectors: 1024})
	if err != nil {
		t.Fatal(err)
	}
	rm := recovery.New(recovery.Config{Log: lg, Kernel: k, CheckpointEvery: 1 << 30})
	tm := txn.New("n", rm, nil, stats.NewRecorder())

	var wg sync.WaitGroup
	committed := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker updates its own object; contention is only on
			// the log and the managers' internal locks.
			obj := types.ObjectID{Segment: 1, Offset: uint32(w) * 8, Length: 8}
			val := []byte(fmt.Sprintf("w%06d", w))
			for i := 0; i < perWorker; i++ {
				tid, err := tm.Begin(types.NilTransID)
				if err != nil {
					t.Errorf("worker %d: begin: %v", w, err)
					return
				}
				if _, err := rm.LogUpdate(tid, "srv", &wal.UpdateBody{Object: obj, Old: val, New: val}); err != nil {
					t.Errorf("worker %d: log update: %v", w, err)
					return
				}
				ok, err := tm.End(tid)
				if err != nil {
					t.Errorf("worker %d: end: %v", w, err)
					return
				}
				if ok {
					committed[w]++
				}
			}
		}(w)
	}
	wg.Wait()

	for w, n := range committed {
		if n != perWorker {
			t.Errorf("worker %d: %d/%d transactions committed", w, n, perWorker)
		}
	}
	// Every End returned only after its commit record was forced; with all
	// workers done there can be no unforced tail.
	if lg.DurableLSN() != lg.NextLSN() {
		t.Errorf("unforced log tail after all commits acked: durable=%d next=%d",
			lg.DurableLSN(), lg.NextLSN())
	}
	// The durable log must contain exactly one commit record per committed
	// transaction.
	commits := 0
	if err := lg.ScanForward(lg.LowLSN(), func(r *wal.Record) (bool, error) {
		if r.Type == wal.RecCommit {
			commits++
		}
		return true, nil
	}); err != nil {
		t.Fatal(err)
	}
	if commits != workers*perWorker {
		t.Errorf("%d commit records in the log, want %d", commits, workers*perWorker)
	}
}
