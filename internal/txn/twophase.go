package txn

import (
	"encoding/binary"
	"fmt"
	"time"

	"tabs/internal/acp"
	"tabs/internal/comm"
	"tabs/internal/simclock"
	"tabs/internal/trace"
	"tabs/internal/types"
	"tabs/internal/wal"
)

// Datagram message kinds for the tree-structured two-phase commit. The
// payload is two bytes: kind and (for status replies) a status code. A
// prepare sent under a replicated commit protocol appends the acceptor
// set (uint16 count, then length-prefixed node names) so every
// participant's prepare record names the quorum it must resolve against.
const (
	dgPrepare      uint8 = iota + 1 // parent -> child: phase 1
	dgVoteCommit                    // child -> parent: prepared
	dgVoteReadOnly                  // child -> parent: no updates, done
	dgVoteAbort                     // child -> parent: cannot commit
	dgCommit                        // parent -> child: phase 2 commit
	dgAbort                         // parent -> child: abort
	dgAck                           // child -> parent: phase 2 complete
	dgStatusQ                       // child -> coordinator: in-doubt query
	dgStatusR                       // coordinator -> child: outcome
)

// Waiter classes for reply correlation.
const (
	clsVote uint8 = iota + 1
	clsAck
	clsStatus
)

type dgMsg struct {
	kind      uint8
	status    types.Status
	from      types.NodeID
	acceptors []types.NodeID // dgPrepare only; nil under plain 2PC
}

func encodeDG(kind uint8, st types.Status) []byte {
	return []byte{kind, byte(st)}
}

// acceptorTail encodes the acceptor set appended to a dgPrepare payload;
// nil when the set is empty, so plain 2PC datagrams are byte-identical to
// the pre-acp wire format.
func acceptorTail(acceptors []types.NodeID) []byte {
	if len(acceptors) == 0 {
		return nil
	}
	b := binary.BigEndian.AppendUint16(nil, uint16(len(acceptors)))
	for _, a := range acceptors {
		b = comm.AppendLenString(b, string(a))
	}
	return b
}

// dgName names a datagram kind for trace spans.
func dgName(kind uint8) string {
	switch kind {
	case dgPrepare:
		return "prepare"
	case dgCommit:
		return "commit"
	case dgAbort:
		return "abort"
	case dgStatusQ:
		return "statusq"
	default:
		return fmt.Sprintf("kind%d", kind)
	}
}

func decodeDG(from types.NodeID, payload []byte) (dgMsg, bool) {
	if len(payload) < 2 {
		return dgMsg{}, false
	}
	msg := dgMsg{kind: payload[0], status: types.Status(payload[1]), from: from}
	rest := payload[2:]
	if msg.kind == dgPrepare && len(rest) > 0 {
		if len(rest) < 2 {
			return dgMsg{}, false
		}
		n := int(binary.BigEndian.Uint16(rest))
		rest = rest[2:]
		for i := 0; i < n; i++ {
			name, r, err := comm.TakeLenString(rest)
			if err != nil {
				return dgMsg{}, false
			}
			msg.acceptors = append(msg.acceptors, types.NodeID(name))
			rest = r
		}
	}
	if len(rest) != 0 {
		return dgMsg{}, false
	}
	return msg, true
}

// handleDatagram is the Communication Manager dispatch entry for the txn
// service. It runs on the delivery goroutine; the prepare/commit/abort
// flows may block (they message further nodes), which is safe because
// every delivery has its own goroutine.
func (m *Manager) handleDatagram(from types.NodeID, tid types.TransID, payload []byte) ([]byte, error) {
	msg, ok := decodeDG(from, payload)
	if !ok {
		return nil, fmt.Errorf("txn: malformed commit datagram from %s", from)
	}
	switch msg.kind {
	case dgVoteCommit, dgVoteReadOnly, dgVoteAbort:
		m.route(waitKey{tid: tid.TopLevel(), from: from, kind: clsVote}, msg)
	case dgAck:
		m.route(waitKey{tid: tid.TopLevel(), from: from, kind: clsAck}, msg)
	case dgStatusR:
		m.route(waitKey{tid: tid.TopLevel(), from: from, kind: clsStatus}, msg)
	case dgPrepare:
		m.participantPrepare(from, tid.TopLevel(), msg.acceptors)
	case dgCommit:
		m.participantCommit(from, tid.TopLevel())
	case dgAbort:
		m.participantAbort(from, tid.TopLevel())
	case dgStatusQ:
		m.answerStatusQuery(from, tid.TopLevel())
	}
	return nil, nil
}

// route hands an inbound reply to its registered waiter, dropping
// duplicates (at-most-once at the protocol level: retransmitted votes and
// acks are harmless).
func (m *Manager) route(k waitKey, msg dgMsg) {
	m.mu.Lock()
	ch := m.waiters[k]
	m.mu.Unlock()
	if ch != nil {
		select {
		case ch <- msg:
		default:
		}
	}
}

// await registers a waiter for one reply.
func (m *Manager) await(k waitKey) chan dgMsg {
	ch := make(chan dgMsg, 1)
	m.mu.Lock()
	m.waiters[k] = ch
	m.mu.Unlock()
	return ch
}

func (m *Manager) unawait(k waitKey) {
	m.mu.Lock()
	delete(m.waiters, k)
	m.mu.Unlock()
}

// sendRound transmits kind (payload extended by tail, which may be nil) to
// every child, charging the paper's longest-path datagram fractions: the
// first send is a full datagram, the rest — transmitted in parallel — one
// half each (Table 5-3 notes).
func (m *Manager) sendRound(tid types.TransID, children []types.NodeID, kind uint8, tail []byte) {
	payload := append(encodeDG(kind, types.StatusUnknown), tail...)
	for i, c := range children {
		charge := 1.0
		if i > 0 {
			charge = 0.5
		}
		_ = m.cm.SendDatagram(c, Service, tid, payload, charge)
	}
}

// collectRound sends kind to children and gathers one reply of class cls
// from each, retransmitting to laggards. Missing replies after all retries
// are reported with kind 0.
func (m *Manager) collectRound(tid types.TransID, children []types.NodeID, kind uint8, cls uint8, tail []byte) map[types.NodeID]dgMsg {
	results := make(map[types.NodeID]dgMsg, len(children))
	chans := make(map[types.NodeID]chan dgMsg, len(children))
	for _, c := range children {
		chans[c] = m.await(waitKey{tid: tid, from: c, kind: cls})
	}
	defer func() {
		for _, c := range children {
			m.unawait(waitKey{tid: tid, from: c, kind: cls})
		}
	}()
	sp := m.tr.Begin("txn", "round."+dgName(kind)).SetTID(tid).Annotatef("children=%d", len(children))
	m.sendRound(tid, children, kind, tail)
	vote, attempts, _ := m.timing()
	if attempts < 1 {
		attempts = 1
	}
	for try := 0; try < attempts; try++ {
		// One absolute deadline per round: a time.After channel fires
		// once, so sharing it across the per-child selects would leave
		// every child after the first timing-out child blocked forever.
		deadline := time.Now().Add(vote)
		for _, c := range children {
			if _, done := results[c]; done {
				continue
			}
			remaining := time.Until(deadline)
			if remaining <= 0 {
				// The round has expired; poll without blocking.
				select {
				case msg := <-chans[c]:
					results[c] = msg
				default:
				}
				continue
			}
			select {
			case msg := <-chans[c]:
				results[c] = msg
			case <-time.After(remaining):
			}
		}
		if len(results) == len(children) {
			break
		}
		// Retransmit to children that have not answered.
		sp.Annotatef("retry=%d missing=%d", try+1, len(children)-len(results))
		m.tr.Count("txn.round.retransmits", 1)
		for _, c := range children {
			if _, done := results[c]; !done {
				_ = m.cm.SendDatagram(c, Service, tid, append(encodeDG(kind, types.StatusUnknown), tail...), 0)
			}
		}
	}
	// One datagram arrival on the longest path covers the whole reply
	// round (replies travel in parallel).
	if m.rec != nil && len(children) > 0 {
		m.rec.RecordN(simclock.Datagram, 1)
	}
	if len(results) < len(children) {
		sp.Annotatef("unanswered=%d", len(children)-len(results))
	}
	sp.End()
	return results
}

// localWrote reports whether any local work of the transaction reached the
// log; if not, the read-only optimization applies: no commit record, no
// force (Table 5-3 shows no Stable Storage Write for read-only commits).
func (m *Manager) localWrote(lt *localTrans) bool {
	for _, tid := range localTIDs(lt) {
		if m.rm.HasLogged(tid) {
			return true
		}
	}
	return false
}

// autoCommitSubs marks still-active subtransactions committed: "when a
// parent transaction commits or aborts, its subtransactions are committed
// or aborted as well" (§3.2.3).
func (m *Manager) autoCommitSubs(lt *localTrans) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for sub, st := range lt.subs {
		if st == types.StatusActive {
			lt.subs[sub] = types.StatusCommitted
		}
	}
}

// notifyCommit tells every joined server to finalize and unlock.
func (m *Manager) notifyCommit(lt *localTrans) {
	for _, p := range participants(lt) {
		m.recordMsgs(1)
		p.CommitTrans(lt.top)
	}
}

// commitTree runs the commit protocol with this node as (root)
// coordinator.
func (m *Manager) commitTree(lt *localTrans) (bool, error) {
	m.mu.Lock()
	if lt.state != stActive {
		st := lt.state
		m.mu.Unlock()
		return st == stCommitted, fmt.Errorf("%w: %v", ErrNotActive, lt.top)
	}
	lt.state = stPreparing
	m.mu.Unlock()
	m.autoCommitSubs(lt)

	sp := m.tr.Begin("txn", "commit").SetTID(lt.top)
	var children []types.NodeID
	if m.cm != nil {
		_, _, children = m.cm.Tree(lt.top)
	}
	sp.Annotatef("children=%d", len(children))
	// The commit-tree fan-out distribution: with sharded placement it
	// shows how many shard homes a transaction actually touched (the
	// child set is built from session traffic, never from the placement).
	m.tr.Observe("txn.commit.children", float64(len(children)))
	// Snapshot the commit protocol and its acceptor set once: the same set
	// rides every prepare datagram and lands in every prepare record, so
	// all participants of this transaction resolve against one quorum even
	// if the configured set changes mid-flight.
	prot := m.getProtocol()
	var acceptors []types.NodeID
	if prot.Replicated() {
		acceptors = prot.Acceptors()
	}
	var writers []types.NodeID
	if len(children) > 0 {
		votes := m.collectRound(lt.top, children, dgPrepare, clsVote, acceptorTail(acceptors))
		abort := false
		for _, c := range children {
			v, ok := votes[c]
			if !ok || v.kind == dgVoteAbort {
				abort = true
				continue
			}
			if v.kind == dgVoteCommit {
				writers = append(writers, c)
			}
		}
		if abort {
			sp.Annotate("outcome=abort").End()
			if err := m.abortTree(lt, true); err != nil {
				return false, err
			}
			return false, nil
		}
	}

	wrote := m.localWrote(lt)
	if !wrote && len(writers) == 0 {
		// Entirely read-only: nothing to log, nothing to force.
		m.mu.Lock()
		lt.state = stCommitted
		m.mu.Unlock()
		m.notifyCommit(lt)
		m.finishLocal(lt, types.StatusCommitted)
		m.tr.Count("txn.commits.readonly", 1)
		sp.Annotate("outcome=committed_readonly").End()
		return true, nil
	}

	m.fireHook(lt.top, "decide")

	if prot.Replicated() {
		return m.commitReplicated(lt, sp, prot, acceptors, writers)
	}

	// The commit record under the root TID decides the whole tree; it is
	// forced before any effect is exposed (§2.1.3). Under heavy concurrent
	// commit traffic this force is where group commit amortizes: many
	// committing trees share one log write (wal.Log's leader/follower
	// batching).
	if err := m.rm.LogCommit(lt.top); err != nil {
		sp.Annotate("outcome=abort").EndErr(err)
		if aerr := m.abortTree(lt, true); aerr != nil {
			return false, fmt.Errorf("txn: commit force failed (%v); abort also failed: %w", err, aerr)
		}
		return false, nil
	}
	m.fireHook(lt.top, "decided")
	m.mu.Lock()
	lt.state = stCommitted
	m.mu.Unlock()
	if len(writers) > 0 {
		m.collectRound(lt.top, writers, dgCommit, clsAck, nil)
	}
	m.notifyCommit(lt)
	m.finishLocal(lt, types.StatusCommitted)
	m.tr.Count("txn.commits", 1)
	sp.Annotate("outcome=committed").End()
	return true, nil
}

// commitReplicated finishes commitTree under a replicated commit protocol
// (Paxos Commit). The decision point moves off this node: the root first
// forces its own prepare record naming the acceptor quorum — making its
// local effects durable and telling a restarted root to resolve against
// the quorum instead of presuming abort — then asks the protocol to
// establish the Committed outcome at the acceptors. From the moment
// DecideCommit is attempted the root may no longer unilaterally abort: an
// error leaves the transaction prepared in doubt (a competing recovery
// proposer may have decided either way) and the in-doubt machinery
// resolves it, exactly as for a participant.
func (m *Manager) commitReplicated(lt *localTrans, sp *trace.ActiveSpan, prot acp.Protocol, acceptors, writers []types.NodeID) (bool, error) {
	rootPrep := &wal.PrepareBody{Children: writers, Acceptors: acceptors}
	if err := m.rm.LogPrepare(lt.top, rootPrep); err != nil {
		// Nothing proposed yet: aborting is still this node's privilege.
		sp.Annotate("outcome=abort").EndErr(err)
		if aerr := m.abortTree(lt, true); aerr != nil {
			return false, fmt.Errorf("txn: root prepare failed (%v); abort also failed: %w", err, aerr)
		}
		return false, nil
	}
	m.mu.Lock()
	lt.state = stPrepared
	lt.prep = rootPrep
	m.mu.Unlock()

	members := writers
	if m.localWrote(lt) {
		members = append([]types.NodeID{m.node}, writers...)
	}
	if err := prot.DecideCommit(lt.top, members); err != nil {
		// In doubt, not aborted: the quorum may hold a decision this node
		// could not learn. Stay prepared, let the resolver and the orphan
		// sweeper consult the acceptors, and surface ErrInDoubt so the
		// application polls Status instead of assuming an outcome.
		m.mu.Lock()
		lt.touch()
		m.mu.Unlock()
		m.tr.Count("txn.commit.indoubt", 1)
		sp.Annotate("outcome=indoubt").EndErr(err)
		go m.resolveWhenStuck(lt, "")
		return false, fmt.Errorf("%w: %v", ErrInDoubt, err)
	}
	m.fireHook(lt.top, "decided")

	// The outcome is durable at the acceptors; the local commit record
	// (forced, closing this node's in-doubt window) follows it. If the
	// force fails the transaction is still committed cluster-wide — fall
	// back to the in-doubt path, which re-learns Committed and retries.
	if err := m.rm.LogCommit(lt.top); err != nil {
		m.mu.Lock()
		lt.touch()
		m.mu.Unlock()
		m.tr.Count("txn.commit.indoubt", 1)
		sp.Annotate("outcome=indoubt_logfail").EndErr(err)
		go m.resolveWhenStuck(lt, "")
		return false, fmt.Errorf("%w: %v", ErrInDoubt, err)
	}
	m.mu.Lock()
	lt.state = stCommitted
	m.mu.Unlock()
	allAcked := true
	if len(writers) > 0 {
		acks := m.collectRound(lt.top, writers, dgCommit, clsAck, nil)
		allAcked = len(acks) == len(writers)
	}
	m.notifyCommit(lt)
	m.finishLocal(lt, types.StatusCommitted)
	if allAcked {
		// Every writer acked — and an ack implies its forced commit record,
		// closing its in-doubt window — so the acceptors may discard this
		// transaction's decision state.
		prot.Finished(lt.top, acceptors)
	} else {
		// A writer never acked: it may be partitioned through the whole
		// retry window and still needs to learn the outcome from the
		// acceptors. Telling them to forget now would make its recovery
		// ballot conclude Abort for a committed transaction. Leave the
		// entries in place; the acceptor table's TTL-gated eviction is the
		// backstop if the laggard never returns.
		m.tr.Count("txn.finished.deferred", 1)
	}
	m.tr.Count("txn.commits", 1)
	sp.Annotate("outcome=committed").End()
	return true, nil
}

// abortTree aborts the local portion of the transaction and propagates
// the abort to every child subtree.
//
// The undo phase may fail partway (a log or disk error inside rm.Abort);
// the transaction is then left in state stAborted with undone unset, still
// registered in m.trans, and the orphan sweeper retries the whole routine.
// That retry is safe because rm.Abort's undo is idempotent — CLRs chain
// into the transaction's backchain, so a re-undo skips every record the
// first attempt already compensated — and server AbortTrans / lock
// releases are no-ops the second time. Before this restructure a failed
// undo flipped the state to stAborted and every later call returned
// immediately, stranding the transaction's locks forever.
func (m *Manager) abortTree(lt *localTrans, _ bool) error {
	m.mu.Lock()
	if (lt.state == stAborted && lt.undone) || lt.aborting {
		m.mu.Unlock()
		return nil
	}
	if lt.state == stCommitted {
		// Once this node committed, the transaction IS committed — the
		// decision that drove the commit was authoritative (forced commit
		// record, or quorum resolution). A late Aborted outcome can still
		// arrive here: two resolvers (the orphan sweeper and the one-shot
		// resolveWhenStuck goroutine) may race on the same in-doubt
		// transaction, the first deciding Commit, applying it, and telling
		// the acceptors to forget — after which the second's recovery
		// ballot runs against blank acceptors and concludes the Aborted
		// sentinel. That verdict is stale, not authoritative; honoring it
		// would flip the recorded outcome to Aborted while the committed
		// effects stand (the undo chain is closed), breaking atomicity.
		m.mu.Unlock()
		m.tr.Count("txn.abort.refused_committed", 1)
		return nil
	}
	if lt.state == stPrepared && lt.prep != nil && len(lt.prep.Acceptors) > 0 && !lt.resolvedAbort {
		// Prepared under a replicated protocol: the decision lives at the
		// acceptor quorum, so presumed abort is unsound here. Only an
		// authoritative Aborted outcome (coordinator phase-2 instruction
		// or quorum resolution, both of which set resolvedAbort) may tear
		// this transaction down.
		m.mu.Unlock()
		m.tr.Count("txn.abort.refused_indoubt", 1)
		return ErrInDoubt
	}
	retry := lt.state == stAborted // a previous undo failed partway
	lt.state = stAborted
	lt.aborting = true
	sp := m.tr.Begin("txn", "abort").SetTID(lt.top)
	if retry {
		sp.Annotate("retry=true")
	}
	doomed := make([]types.TransID, 0, len(lt.subs)+1)
	for sub, st := range lt.subs {
		// On retry, re-doom every sub: the first attempt already marked
		// them aborted, but some may not have been undone yet.
		if st != types.StatusAborted || retry {
			doomed = append(doomed, sub)
			lt.subs[sub] = types.StatusAborted
		}
	}
	doomed = append(doomed, lt.top)
	servers := participants(lt)
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		lt.aborting = false
		m.mu.Unlock()
	}()

	var children []types.NodeID
	if m.cm != nil {
		_, _, children = m.cm.Tree(lt.top)
	}
	for _, tid := range doomed {
		if err := m.rm.Abort(tid); err != nil {
			m.tr.Count("txn.abort.incomplete", 1)
			sp.EndErr(err)
			return err
		}
		for _, p := range servers {
			m.recordMsgs(1)
			p.AbortTrans(tid)
		}
	}
	m.mu.Lock()
	lt.undone = true
	m.mu.Unlock()
	if len(children) > 0 {
		m.collectRound(lt.top, children, dgAbort, clsAck, nil)
	}
	m.finishLocal(lt, types.StatusAborted)
	m.tr.Count("txn.aborts", 1)
	sp.End()
	return nil
}

// participantPrepare handles phase 1 at a non-root node: recursively
// prepare the subtree below, then prepare locally and vote. acceptors is
// the replica set from the prepare datagram (empty under plain 2PC); it is
// relayed to the subtree and recorded in the prepare record so in-doubt
// resolution — before or after a crash — knows which quorum decides.
func (m *Manager) participantPrepare(parent types.NodeID, top types.TransID, acceptors []types.NodeID) {
	m.mu.Lock()
	lt := m.trans[top]
	if lt == nil {
		// No state: either we never worked for this transaction or we
		// already finished. Answer from the outcomes table.
		st := m.outcomes[top]
		m.mu.Unlock()
		switch st {
		case types.StatusCommitted:
			// Read-only participant that already finished.
			_ = m.cm.SendDatagram(parent, Service, top, encodeDG(dgVoteReadOnly, st), 0)
		default:
			_ = m.cm.SendDatagram(parent, Service, top, encodeDG(dgVoteAbort, st), 0)
		}
		return
	}
	switch lt.state {
	case stPreparing:
		m.mu.Unlock()
		return // duplicate prepare while the first is in progress
	case stPrepared:
		m.mu.Unlock()
		_ = m.cm.SendDatagram(parent, Service, top, encodeDG(dgVoteCommit, types.StatusUnknown), 0)
		return
	case stAborted:
		m.mu.Unlock()
		_ = m.cm.SendDatagram(parent, Service, top, encodeDG(dgVoteAbort, types.StatusUnknown), 0)
		return
	case stCommitted:
		m.mu.Unlock()
		_ = m.cm.SendDatagram(parent, Service, top, encodeDG(dgVoteReadOnly, types.StatusUnknown), 0)
		return
	}
	lt.state = stPreparing
	m.mu.Unlock()
	m.autoCommitSubs(lt)

	sp := m.tr.Begin("txn", "prepare").SetTID(top).Annotatef("parent=%s", parent)
	vote := func(kind uint8) {
		m.tr.Begin("txn", "vote").SetTID(top).Annotatef("vote=%s", voteName(kind)).End()
		_ = m.cm.SendDatagram(parent, Service, top, encodeDG(kind, types.StatusUnknown), 0)
	}

	_, _, children := m.cm.Tree(top)
	var writers []types.NodeID
	abort := false
	if len(children) > 0 {
		votes := m.collectRound(top, children, dgPrepare, clsVote, acceptorTail(acceptors))
		for _, c := range children {
			v, ok := votes[c]
			if !ok || v.kind == dgVoteAbort {
				abort = true
				continue
			}
			if v.kind == dgVoteCommit {
				writers = append(writers, c)
			}
		}
	}
	if abort {
		_ = m.abortTree(lt, false)
		sp.Annotate("vote=abort").End()
		vote(dgVoteAbort)
		return
	}

	wrote := m.localWrote(lt)
	if !wrote && len(writers) == 0 {
		// Read-only subtree: finished now, drops out of phase 2.
		m.mu.Lock()
		lt.state = stCommitted
		m.mu.Unlock()
		m.notifyCommit(lt)
		m.finishLocal(lt, types.StatusCommitted)
		sp.Annotate("vote=readonly").End()
		vote(dgVoteReadOnly)
		return
	}

	prep := &wal.PrepareBody{Parent: parent, Children: writers, Acceptors: acceptors}
	if err := m.rm.LogPrepare(top, prep); err != nil {
		_ = m.abortTree(lt, false)
		sp.Annotate("vote=abort").EndErr(err)
		vote(dgVoteAbort)
		return
	}
	m.mu.Lock()
	lt.state = stPrepared
	lt.prep = prep
	m.mu.Unlock()
	sp.Annotate("vote=commit").End()
	vote(dgVoteCommit)
	// In-doubt self-resolution: if the outcome never arrives (lost
	// datagrams, coordinator crash), ask the parent.
	go m.resolveWhenStuck(lt, parent)
}

// voteName names a vote datagram kind for trace spans.
func voteName(kind uint8) string {
	switch kind {
	case dgVoteCommit:
		return "commit"
	case dgVoteReadOnly:
		return "readonly"
	case dgVoteAbort:
		return "abort"
	default:
		return fmt.Sprintf("kind%d", kind)
	}
}

// participantCommit handles phase 2 at a prepared node: relay to the
// prepared children, commit locally (forced — the ack releases the
// coordinator from remembering us), unlock, ack.
func (m *Manager) participantCommit(parent types.NodeID, top types.TransID) {
	m.mu.Lock()
	lt := m.trans[top]
	if lt == nil {
		// No volatile state. Recovery restores a localTrans for every
		// transaction still prepared in the log (RestorePrepared), so no
		// state means we either already finished this transaction — a
		// retransmitted commit; re-ack so the coordinator can forget us —
		// or never prepared it and owe it no durable effects. Either way
		// acking is safe. (Before the restore fix, a participant that
		// crashed after voting would land here and ack away a commit it
		// had not applied.)
		m.mu.Unlock()
		_ = m.cm.SendDatagram(parent, Service, top, encodeDG(dgAck, types.StatusUnknown), 0)
		return
	}
	if lt.state != stPrepared {
		m.mu.Unlock()
		return
	}
	lt.state = stCommitted
	prep := lt.prep
	m.mu.Unlock()

	allAcked := true
	if prep != nil && len(prep.Children) > 0 {
		acks := m.collectRound(top, prep.Children, dgCommit, clsAck, nil)
		allAcked = len(acks) == len(prep.Children)
	}
	if err := m.rm.LogCommit(top); err != nil {
		// Forced commit record failed; stay prepared and let resolution
		// retry. Do not ack.
		m.mu.Lock()
		lt.state = stPrepared
		m.mu.Unlock()
		return
	}
	m.notifyCommit(lt)
	m.finishLocal(lt, types.StatusCommitted)
	if prep != nil && prep.Parent == "" {
		// This was the root's own prepared-in-doubt state, resolved here
		// (parent is this node or empty, never a real coordinator): no one
		// to ack, but once every child acked — each ack implying a forced
		// commit record — the acceptors may forget the decision. With a
		// laggard child outstanding the entries must stay: it still has to
		// learn the outcome from the quorum.
		if len(prep.Acceptors) > 0 && allAcked {
			m.getProtocol().Finished(top, prep.Acceptors)
		} else if len(prep.Acceptors) > 0 {
			m.tr.Count("txn.finished.deferred", 1)
		}
		return
	}
	_ = m.cm.SendDatagram(parent, Service, top, encodeDG(dgAck, types.StatusUnknown), 0)
}

// participantAbort handles an abort instruction from the parent. The
// instruction is an authoritative outcome — under a replicated protocol
// the coordinator only sends it before proposing commit, and recovery
// proposers can then only decide abort — so it clears the in-doubt guard.
func (m *Manager) participantAbort(parent types.NodeID, top types.TransID) {
	m.mu.Lock()
	lt := m.trans[top]
	if lt != nil {
		lt.resolvedAbort = true
	}
	m.mu.Unlock()
	if lt != nil {
		_ = m.abortTree(lt, false)
	}
	_ = m.cm.SendDatagram(parent, Service, top, encodeDG(dgAck, types.StatusUnknown), 0)
}

// answerStatusQuery reports a transaction's outcome to an in-doubt child.
// Unknown transactions are presumed aborted: the coordinator forces its
// commit record before releasing anything, so a missing record after a
// crash proves the transaction did not commit.
func (m *Manager) answerStatusQuery(from types.NodeID, top types.TransID) {
	m.mu.Lock()
	st, known := m.outcomes[top]
	if !known {
		if lt := m.trans[top]; lt != nil {
			switch lt.state {
			case stCommitted:
				st, known = types.StatusCommitted, true
			case stAborted:
				st, known = types.StatusAborted, true
			default:
				st, known = types.StatusPrepared, true // still in progress
			}
		}
	}
	m.mu.Unlock()
	if !known {
		st = types.StatusAborted // presumed abort
	}
	if m.rec != nil {
		m.rec.Record(simclock.Datagram)
	}
	_ = m.cm.SendDatagram(from, Service, top, encodeDG(dgStatusR, st), 0)
}

// resolveWhenStuck waits for the prepared transaction to resolve; if it
// stays in doubt, it queries the parent and applies the answer.
//
// The wait is one absolute deadline — the same total grace period as the
// old fixed sleep of (retries+2)×vote — but polled with capped exponential
// backoff, so the goroutine notices a normally-delivered outcome within a
// fraction of the vote timeout instead of holding its state for the full
// worst case. Each backoff round is visible on the txn.resolve span.
func (m *Manager) resolveWhenStuck(lt *localTrans, parent types.NodeID) {
	vote, retries, _ := m.timing()
	deadline := time.Now().Add(time.Duration(retries+2) * vote)
	sp := m.tr.Begin("txn", "resolve").SetTID(lt.top).Annotatef("parent=%s", parent)
	backoff := vote / 8
	if backoff < time.Millisecond {
		backoff = time.Millisecond
	}
	for round := 1; ; round++ {
		m.mu.Lock()
		stuck := lt.state == stPrepared
		m.mu.Unlock()
		if !stuck {
			sp.Annotate("resolved=normally").End()
			return
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			break
		}
		wait := backoff
		if wait > remaining {
			wait = remaining
		}
		sp.Annotatef("round=%d backoff=%s", round, wait)
		select {
		case <-time.After(wait):
		case <-m.stopSweep:
			sp.Annotate("stopped=true").End()
			return
		}
		backoff *= 2
		if backoff > vote {
			backoff = vote
		}
	}
	// Still in doubt past the deadline: resolve with whoever owns the
	// decision — the acceptor quorum named in the prepare record, or the
	// coordinator under plain 2PC.
	st := m.resolveOutcome(lt, parent)
	sp.Annotatef("queried=%v", st).End()
	switch st {
	case types.StatusCommitted:
		m.participantCommit(parent, lt.top)
	case types.StatusAborted:
		m.mu.Lock()
		lt.resolvedAbort = true
		m.mu.Unlock()
		_ = m.abortTree(lt, false)
	}
}

// resolveOutcome determines the outcome of a prepared in-doubt
// transaction. Transactions prepared under a replicated protocol (their
// prepare record names an acceptor set) resolve against the acceptor
// quorum, which can decide even with the coordinator permanently dead;
// everything else falls back to the paper's coordinator status query. The
// returned status keeps queryStatus semantics: StatusPrepared means "stay
// in doubt", StatusUnknown means "nobody answered".
func (m *Manager) resolveOutcome(lt *localTrans, parent types.NodeID) types.Status {
	m.mu.Lock()
	prep := lt.prep
	prot := m.protocol
	m.mu.Unlock()
	if prep != nil && len(prep.Acceptors) > 0 && prot.Replicated() {
		return prot.ResolveInDoubt(lt.top, prep)
	}
	if parent == "" || m.cm == nil {
		return types.StatusPrepared
	}
	return m.queryStatus(lt.top, parent)
}

// queryStatus asks peer for top's outcome, with retries. It returns
// StatusPrepared when the coordinator explicitly answered "still in
// progress", and StatusUnknown when no answer arrived at all — callers
// treat those differently: a prepared participant must stay in doubt, but
// an active (never-prepared) orphan may be aborted unilaterally.
// The query runs against one absolute deadline (the old per-attempt budget,
// attempts×vote, in total) with capped exponential backoff between
// retransmissions, so an early answer returns immediately and a dead
// coordinator costs no more than before. Each retransmission round is
// annotated on the txn.statusq span.
func (m *Manager) queryStatus(top types.TransID, peer types.NodeID) types.Status {
	k := waitKey{tid: top, from: peer, kind: clsStatus}
	ch := m.await(k)
	defer m.unawait(k)
	vote, attempts, _ := m.timing()
	if attempts < 1 {
		attempts = 1
	}
	sp := m.tr.Begin("txn", "statusq").SetTID(top).Annotatef("peer=%s", peer)
	deadline := time.Now().Add(time.Duration(attempts) * vote)
	backoff := vote / 4
	if backoff < time.Millisecond {
		backoff = time.Millisecond
	}
	heard := false
	for round := 1; ; round++ {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			break
		}
		if round > 1 {
			sp.Annotatef("round=%d backoff=%s", round, backoff)
			m.tr.Count("txn.statusq.retransmits", 1)
		}
		_ = m.cm.SendDatagram(peer, Service, top, encodeDG(dgStatusQ, types.StatusUnknown), 1)
		wait := backoff
		if wait > remaining {
			wait = remaining
		}
		timer := time.NewTimer(wait)
		select {
		case msg := <-ch:
			timer.Stop()
			if msg.status == types.StatusPrepared {
				// Coordinator still deciding; pause, then ask again.
				heard = true
				select {
				case <-time.After(wait):
				case <-m.stopSweep:
					sp.Annotate("stopped=true").End()
					return types.StatusPrepared
				}
			} else {
				sp.Annotatef("status=%v", msg.status).End()
				return msg.status
			}
		case <-timer.C:
		case <-m.stopSweep:
			timer.Stop()
			sp.Annotate("stopped=true").End()
			if heard {
				return types.StatusPrepared
			}
			return types.StatusUnknown
		}
		backoff *= 2
		if backoff > vote {
			backoff = vote
		}
	}
	if heard {
		sp.Annotate("status=prepared").End()
		return types.StatusPrepared
	}
	sp.Annotate("status=unknown").End()
	return types.StatusUnknown
}

// ResolveStatus implements recovery.TransStatusSource for crash restart:
// an in-doubt prepared transaction found in the log is resolved by asking
// the parent recorded in its prepare record (§3.2.2) — or, when the record
// names an acceptor set, by the quorum, which answers even if the
// coordinator never comes back.
func (m *Manager) ResolveStatus(tid types.TransID, prep *wal.PrepareBody) types.Status {
	if prep != nil && len(prep.Acceptors) > 0 && m.cm != nil {
		if prot := m.getProtocol(); prot.Replicated() {
			return prot.ResolveInDoubt(tid.TopLevel(), prep)
		}
	}
	if prep == nil || prep.Parent == "" || m.cm == nil {
		return types.StatusPrepared
	}
	st := m.queryStatus(tid.TopLevel(), prep.Parent)
	if st == types.StatusUnknown {
		// Unreachable coordinator: a prepared transaction must stay in
		// doubt (the 2PC blocking window the paper acknowledges).
		return types.StatusPrepared
	}
	return st
}

// RestoreTransRecord implements recovery.TransStatusSource: during the
// analysis pass the Recovery Manager passes transaction-management records
// back to the Transaction Manager (§3.2.2), which rebuilds its outcomes
// table so it can answer status queries from other nodes after a crash.
func (m *Manager) RestoreTransRecord(r *wal.Record) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch r.Type {
	case wal.RecCommit:
		m.outcomes[r.TID.TopLevel()] = types.StatusCommitted
	case wal.RecAbort:
		if r.TID.IsTopLevel() {
			m.outcomes[r.TID] = types.StatusAborted
		}
	}
}

// Crash drops all volatile Transaction Manager state and stops the
// orphan sweeper.
func (m *Manager) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.trans = make(map[types.TransID]*localTrans)
	m.outcomes = make(map[types.TransID]types.Status)
	m.waiters = make(map[waitKey]chan dgMsg)
	select {
	case <-m.stopSweep:
	default:
		close(m.stopSweep)
	}
}
