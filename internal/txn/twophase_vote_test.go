package txn

import (
	"errors"
	"sync"
	"testing"
	"time"

	"tabs/internal/types"
	"tabs/internal/wal"
)

// fakeRM counts Recovery Manager calls.
type fakeRM struct {
	mu         sync.Mutex
	logCommits int
	logPrepare int
	aborts     int
	failAbort  error // returned by Abort until cleared
}

func (r *fakeRM) LogCommit(types.TransID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.logCommits++
	return nil
}
func (r *fakeRM) LogPrepare(types.TransID, *wal.PrepareBody) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.logPrepare++
	return nil
}
func (r *fakeRM) Abort(types.TransID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.aborts++
	return r.failAbort
}
func (r *fakeRM) HasLogged(types.TransID) bool { return true }

func (r *fakeRM) counts() (commits, aborts int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.logCommits, r.aborts
}

// fakeCM is a scripted Communication Manager: SendDatagram invokes the
// script synchronously, which typically feeds replies straight back into
// the manager's handleDatagram — a zero-latency network whose behavior
// (duplicate votes, lost acks, silence) each test controls exactly.
type fakeCM struct {
	node     types.NodeID
	children []types.NodeID
	script   func(peer types.NodeID, tid types.TransID, kind uint8)

	mu   sync.Mutex
	sent map[types.NodeID]map[uint8]int
}

func newFakeCM(node types.NodeID, children ...types.NodeID) *fakeCM {
	return &fakeCM{node: node, children: children, sent: make(map[types.NodeID]map[uint8]int)}
}

func (f *fakeCM) Node() types.NodeID { return f.node }
func (f *fakeCM) Tree(types.TransID) (types.NodeID, bool, []types.NodeID) {
	return "", false, f.children
}
func (f *fakeCM) ForgetTree(types.TransID) {}
func (f *fakeCM) RegisterService(string, func(types.NodeID, types.TransID, []byte) ([]byte, error)) {
}
func (f *fakeCM) SendDatagram(peer types.NodeID, _ string, tid types.TransID, payload []byte, _ float64) error {
	kind := payload[0]
	f.mu.Lock()
	if f.sent[peer] == nil {
		f.sent[peer] = make(map[uint8]int)
	}
	f.sent[peer][kind]++
	script := f.script
	f.mu.Unlock()
	if script != nil {
		script(peer, tid, kind)
	}
	return nil
}

func (f *fakeCM) sentCount(peer types.NodeID, kind uint8) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.sent[peer][kind]
}

// reply feeds a datagram from peer back into the manager under test.
func reply(m *Manager, peer types.NodeID, tid types.TransID, kind uint8, st types.Status) {
	_, _ = m.handleDatagram(peer, tid, encodeDG(kind, st))
}

// TestCoordinatorVoteHandling drives the coordinator side of tree commit
// through scripted vote deliveries: duplicated votes must not double-count
// toward the quorum, and a vote that arrives after the decision must not
// resurrect the transaction.
func TestCoordinatorVoteHandling(t *testing.T) {
	cases := []struct {
		name string
		// votes[peer] is the sequence of vote kinds the child answers each
		// dgPrepare with (all delivered immediately, in order — so lists
		// longer than 1 are duplicates). A missing entry keeps the child
		// silent.
		votes         map[types.NodeID][]uint8
		wantCommitted bool
		wantLogged    int // LogCommit calls
		wantAborted   int // minimum rm.Abort calls
	}{
		{
			name: "all commit",
			votes: map[types.NodeID][]uint8{
				"b": {dgVoteCommit}, "c": {dgVoteCommit},
			},
			wantCommitted: true,
			wantLogged:    1,
		},
		{
			name: "duplicate commit votes count once",
			votes: map[types.NodeID][]uint8{
				"b": {dgVoteCommit, dgVoteCommit, dgVoteCommit}, "c": {dgVoteCommit},
			},
			wantCommitted: true,
			wantLogged:    1,
		},
		{
			name: "one abort vote dooms the tree despite duplicates",
			votes: map[types.NodeID][]uint8{
				"b": {dgVoteAbort, dgVoteCommit}, "c": {dgVoteCommit, dgVoteCommit},
			},
			wantCommitted: false,
			wantLogged:    0,
			wantAborted:   1,
		},
		{
			name: "read-only children skip phase two",
			votes: map[types.NodeID][]uint8{
				"b": {dgVoteReadOnly}, "c": {dgVoteReadOnly},
			},
			wantCommitted: true,
			wantLogged:    1, // local work still commits
		},
		{
			name: "silent child times out to abort",
			votes: map[types.NodeID][]uint8{
				"b": {dgVoteCommit},
			},
			wantCommitted: false,
			wantLogged:    0,
			wantAborted:   1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rm := &fakeRM{}
			cm := newFakeCM("a", "b", "c")
			m := New("a", rm, cm, nil)
			defer m.Crash()
			m.Configure(10*time.Millisecond, 2, time.Hour)
			cm.script = func(peer types.NodeID, tid types.TransID, kind uint8) {
				switch kind {
				case dgPrepare:
					for _, v := range tc.votes[peer] {
						reply(m, peer, tid, v, types.StatusUnknown)
					}
				case dgCommit, dgAbort:
					reply(m, peer, tid, dgAck, types.StatusUnknown)
				}
			}
			tid, err := m.Begin(types.NilTransID)
			if err != nil {
				t.Fatal(err)
			}
			committed, err := m.End(tid)
			if committed != tc.wantCommitted {
				t.Fatalf("committed = %v (err %v), want %v", committed, err, tc.wantCommitted)
			}
			commits, aborts := rm.counts()
			if commits != tc.wantLogged {
				t.Fatalf("LogCommit called %d times, want %d", commits, tc.wantLogged)
			}
			if aborts < tc.wantAborted {
				t.Fatalf("rm.Abort called %d times, want at least %d", aborts, tc.wantAborted)
			}
			// A straggler vote after the decision must not resurrect or
			// re-decide anything.
			reply(m, "b", tid, dgVoteCommit, types.StatusUnknown)
			if c2, _ := rm.counts(); c2 != commits {
				t.Fatalf("late vote changed LogCommit count %d -> %d", commits, c2)
			}
			wantSt := types.StatusAborted
			if tc.wantCommitted {
				wantSt = types.StatusCommitted
			}
			if st := m.Status(tid); st != wantSt {
				t.Fatalf("status after late vote = %v, want %v", st, wantSt)
			}
		})
	}
}

// TestSilentChildRetransmits checks the coordinator retransmits the
// prepare to a silent child before giving up.
func TestSilentChildRetransmits(t *testing.T) {
	rm := &fakeRM{}
	cm := newFakeCM("a", "b")
	m := New("a", rm, cm, nil)
	defer m.Crash()
	m.Configure(5*time.Millisecond, 3, time.Hour)
	tid, err := m.Begin(types.NilTransID)
	if err != nil {
		t.Fatal(err)
	}
	if committed, _ := m.End(tid); committed {
		t.Fatal("committed with a silent child")
	}
	if n := cm.sentCount("b", dgPrepare); n < 3 {
		t.Fatalf("prepare sent %d times to silent child, want >= 3", n)
	}
}

// remoteTID builds a TID rooted at another node, as a participant sees.
func remoteTID(root types.NodeID, seq uint64) types.TransID {
	return types.TransID{Node: root, Seq: seq, RootNode: root, RootSeq: seq}
}

// TestParticipantDuplicatePhase2 drives the participant side: a duplicated
// commit instruction must log exactly one commit record but re-ack, and a
// duplicated abort must undo exactly once.
func TestParticipantDuplicatePhase2(t *testing.T) {
	for _, commit := range []bool{true, false} {
		name := "commit"
		if !commit {
			name = "abort"
		}
		t.Run(name, func(t *testing.T) {
			rm := &fakeRM{}
			cm := newFakeCM("p") // leaf participant: no children
			m := New("p", rm, cm, nil)
			defer m.Crash()
			m.Configure(10*time.Millisecond, 2, time.Hour)
			tid := remoteTID("coord", 1)
			m.NoteRemote(tid)
			m.participantPrepare("coord", tid, nil)
			if n := cm.sentCount("coord", dgVoteCommit); n != 1 {
				t.Fatalf("vote sent %d times, want 1", n)
			}
			if commit {
				m.participantCommit("coord", tid)
				m.participantCommit("coord", tid) // duplicate
				if commits, _ := rm.counts(); commits != 1 {
					t.Fatalf("LogCommit called %d times for duplicated commit, want 1", commits)
				}
				if n := cm.sentCount("coord", dgAck); n != 2 {
					t.Fatalf("acks sent %d, want 2 (one per instruction)", n)
				}
				if st := m.Status(tid); st != types.StatusCommitted {
					t.Fatalf("status = %v, want committed", st)
				}
			} else {
				m.participantAbort("coord", tid)
				_, aborts := rm.counts()
				m.participantAbort("coord", tid) // duplicate
				if _, aborts2 := rm.counts(); aborts2 != aborts {
					t.Fatalf("duplicate abort re-ran undo: %d -> %d rm.Abort calls", aborts, aborts2)
				}
				if n := cm.sentCount("coord", dgAck); n != 2 {
					t.Fatalf("acks sent %d, want 2 (one per instruction)", n)
				}
				if st := m.Status(tid); st != types.StatusAborted {
					t.Fatalf("status = %v, want aborted", st)
				}
			}
		})
	}
}

// TestAbortRetriesAfterUndoFailure: an abort whose undo fails (injected
// log error) must leave the transaction retryable, and the retry must
// complete the undo — the sweeper-driven fix for stranded locks.
func TestAbortRetriesAfterUndoFailure(t *testing.T) {
	rm := &fakeRM{failAbort: errors.New("injected undo failure")}
	cm := newFakeCM("a")
	m := New("a", rm, cm, nil)
	defer m.Crash()
	m.Configure(10*time.Millisecond, 2, time.Hour)
	tid, err := m.Begin(types.NilTransID)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Abort(tid); err == nil {
		t.Fatal("abort should surface the undo failure")
	}
	if m.LiveTransactions() != 1 {
		t.Fatalf("failed abort dropped the transaction: %d live, want 1", m.LiveTransactions())
	}
	// Before the undone/aborting restructure this second call returned nil
	// immediately (state already aborted) without ever undoing.
	rm.mu.Lock()
	rm.failAbort = nil
	rm.mu.Unlock()
	lt, err := m.lookup(tid)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.abortTree(lt, false); err != nil {
		t.Fatalf("retry abort: %v", err)
	}
	if m.LiveTransactions() != 0 {
		t.Fatalf("retried abort left %d live transactions", m.LiveTransactions())
	}
	if _, aborts := rm.counts(); aborts < 2 {
		t.Fatalf("undo ran %d times, want >= 2 (original + retry)", aborts)
	}
	if st := m.Status(tid); st != types.StatusAborted {
		t.Fatalf("status = %v, want aborted", st)
	}
}

// TestRestorePrepared: after a participant crash, recovery hands the
// still-prepared transaction back; the restored state must answer a
// retransmitted commit by actually committing, not blind-acking.
func TestRestorePrepared(t *testing.T) {
	rm := &fakeRM{}
	cm := newFakeCM("p")
	m := New("p", rm, cm, nil)
	defer m.Crash()
	m.Configure(10*time.Millisecond, 2, time.Hour)
	tid := remoteTID("coord", 9)
	prep := &wal.PrepareBody{Parent: "coord"}
	m.RestorePrepared(tid, prep)
	m.RestorePrepared(tid, prep) // idempotent
	if m.LiveTransactions() != 1 {
		t.Fatalf("restored %d live transactions, want 1", m.LiveTransactions())
	}
	if st := m.Status(tid); st != types.StatusPrepared {
		t.Fatalf("restored status = %v, want prepared", st)
	}
	m.participantCommit("coord", tid)
	if commits, _ := rm.counts(); commits != 1 {
		t.Fatalf("commit after restore logged %d commit records, want 1", commits)
	}
	if st := m.Status(tid); st != types.StatusCommitted {
		t.Fatalf("status = %v, want committed", st)
	}
	if m.LiveTransactions() != 0 {
		t.Fatalf("%d live transactions after commit, want 0", m.LiveTransactions())
	}
}
